#include "backend/RegAlloc.h"

#include "backend/MachineCFG.h"

#include <algorithm>
#include <map>
#include <set>

using namespace wario;

namespace {

/// Spilled operands of call pseudos are encoded as -2 - slot until
/// expansion (they cannot use the generic scratch-reload path: four
/// arguments would exceed the scratch pool).
int encodeSlot(int Slot) { return -2 - Slot; }
bool isEncodedSlot(int V) { return V <= -2; }
int decodeSlot(int V) { return -2 - V; }

struct UseDef {
  std::vector<int> Uses;
  int Def = -1;
};

UseDef collectUseDef(const MInst &I) {
  UseDef UD;
  for (int S : I.Src)
    if (S >= 0)
      UD.Uses.push_back(S);
  for (int A : I.CallArgs)
    UD.Uses.push_back(A);
  if (I.Dst >= 0)
    UD.Def = I.Dst;
  return UD;
}

struct Interval {
  int VReg = -1;
  int Start = INT32_MAX;
  int End = -1;
  bool CrossesCall = false;
  int Reg = -1;  // Assigned PReg, or -1.
  int Slot = -1; // Spill slot, or -1.
  // Rematerialization: a vreg defined once by a constant-producing
  // instruction is recomputed at each use instead of living in a slot.
  bool Remat = false;
  bool Evicted = false;
  double Weight = 0.0; // Loop-depth-weighted use density (spill cost).
  MOp RematOp = MOp::Nop;
  int64_t RematImm = 0;
  const GlobalVariable *RematGlobal = nullptr;

  bool spilled() const { return Evicted; }
};

/// Call-pseudo encoding for remat operands: -1000000 - vreg.
int encodeRemat(int VReg) { return -1000000 - VReg; }
bool isEncodedRemat(int V) { return V <= -1000000; }
int decodeRemat(int V) { return -1000000 - V; }

} // namespace

namespace {

/// One allocation attempt with \p NumRegs allocatable registers (the
/// rest of r10-r12 serve as spill scratch). Returns false when rewrite
/// would need more scratch registers than are reserved — the caller
/// retries with a smaller allocatable pool.
bool allocateOnce(MFunction &F, const RegAllocOptions &Opts,
                  unsigned NumRegs, RegAllocStats &Stats) {
  unsigned NumScratch = 13 - NumRegs;
  const PReg Scratch[3] = {PReg(R0 + NumRegs), PReg(R0 + NumRegs + 1),
                           R12};
  Stats = RegAllocStats();
  Stats.VRegs = F.NumVRegs;
  unsigned NV = F.NumVRegs;

  // --- Linearization -------------------------------------------------------
  std::vector<int> BlockFirst(F.Blocks.size()), BlockLast(F.Blocks.size());
  int Pos = 0;
  std::vector<const MInst *> ByPos;
  for (unsigned B = 0; B != F.Blocks.size(); ++B) {
    BlockFirst[B] = Pos;
    for (const MInst &I : F.Blocks[B].Insts) {
      ByPos.push_back(&I);
      ++Pos;
    }
    BlockLast[B] = Pos - 1;
  }

  // --- Block-level liveness --------------------------------------------------
  std::vector<std::set<int>> Use(F.Blocks.size()), Def(F.Blocks.size());
  for (unsigned B = 0; B != F.Blocks.size(); ++B) {
    for (const MInst &I : F.Blocks[B].Insts) {
      UseDef UD = collectUseDef(I);
      for (int U : UD.Uses)
        if (!Def[B].count(U))
          Use[B].insert(U);
      if (UD.Def >= 0)
        Def[B].insert(UD.Def);
    }
  }
  std::vector<std::set<int>> LiveIn(F.Blocks.size()),
      LiveOut(F.Blocks.size());
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int B = int(F.Blocks.size()) - 1; B >= 0; --B) {
      std::set<int> Out;
      for (int S : F.successors(B))
        Out.insert(LiveIn[S].begin(), LiveIn[S].end());
      std::set<int> In = Use[B];
      for (int V : Out)
        if (!Def[B].count(V))
          In.insert(V);
      if (Out != LiveOut[B] || In != LiveIn[B]) {
        LiveOut[B] = std::move(Out);
        LiveIn[B] = std::move(In);
        Changed = true;
      }
    }
  }

  // --- Intervals ---------------------------------------------------------------
  std::vector<unsigned> LoopDepth = computeMachineLoopDepth(F);
  std::vector<Interval> Ivs(NV);
  for (unsigned V = 0; V != NV; ++V)
    Ivs[V].VReg = int(V);
  Pos = 0;
  std::vector<int> CallPositions;
  for (unsigned B = 0; B != F.Blocks.size(); ++B) {
    double BlockWeight = 1.0;
    for (unsigned D = 0; D != std::min(LoopDepth[B], 6u); ++D)
      BlockWeight *= 8.0;
    for (const MInst &I : F.Blocks[B].Insts) {
      UseDef UD = collectUseDef(I);
      for (int U : UD.Uses) {
        Ivs[U].Start = std::min(Ivs[U].Start, Pos);
        Ivs[U].End = std::max(Ivs[U].End, Pos);
        Ivs[U].Weight += BlockWeight;
      }
      if (UD.Def >= 0) {
        Ivs[UD.Def].Start = std::min(Ivs[UD.Def].Start, Pos);
        Ivs[UD.Def].End = std::max(Ivs[UD.Def].End, Pos);
        Ivs[UD.Def].Weight += BlockWeight;
      }
      if (I.Op == MOp::CallPseudo)
        CallPositions.push_back(Pos);
      ++Pos;
    }
    for (int V : LiveIn[B]) {
      Ivs[V].Start = std::min(Ivs[V].Start, BlockFirst[B]);
      Ivs[V].End = std::max(Ivs[V].End, BlockFirst[B]);
    }
    for (int V : LiveOut[B])
      Ivs[V].End = std::max(Ivs[V].End, BlockLast[B]);
  }
  for (Interval &Iv : Ivs)
    for (int P : CallPositions)
      if (Iv.Start < P && P < Iv.End)
        Iv.CrossesCall = true;

  // Rematerialization candidates: exactly one def, and it is a cheap
  // constant producer. Spilling such a value needs no slot (and thus can
  // never create a spill WAR).
  {
    std::vector<int> DefCount(NV, 0);
    std::vector<const MInst *> DefInst(NV, nullptr);
    for (const MBasicBlock &BB : F.Blocks)
      for (const MInst &I : BB.Insts)
        if (I.Dst >= 0) {
          ++DefCount[I.Dst];
          DefInst[I.Dst] = &I;
        }
    for (unsigned V = 0; V != NV; ++V) {
      if (DefCount[V] != 1 || !DefInst[V])
        continue;
      const MInst &D = *DefInst[V];
      if (D.Op == MOp::MovImm) {
        Ivs[V].Remat = true;
        Ivs[V].RematOp = MOp::MovImm;
        Ivs[V].RematImm = D.Imm;
      } else if (D.Op == MOp::MovGlobal) {
        Ivs[V].Remat = true;
        Ivs[V].RematOp = MOp::MovGlobal;
        Ivs[V].RematGlobal = D.Global;
      }
    }
  }

  // --- Linear scan ----------------------------------------------------------------
  std::vector<Interval *> Order;
  for (Interval &Iv : Ivs)
    if (Iv.End >= 0)
      Order.push_back(&Iv);
  std::sort(Order.begin(), Order.end(), [](Interval *A, Interval *B) {
    if (A->Start != B->Start)
      return A->Start < B->Start;
    return A->VReg < B->VReg;
  });

  // Caller-saved first for short intervals, callee-saved (r4-r10) for
  // intervals live across calls.
  std::vector<int> AllPool, CalleePool;
  for (unsigned R = R0; R != R0 + NumRegs; ++R) {
    AllPool.push_back(int(R));
    if (R >= R4)
      CalleePool.push_back(int(R));
  }

  std::vector<Interval *> Active;
  std::vector<Interval *> Spills;
  auto RegInUse = [&](int R) {
    for (Interval *A : Active)
      if (A->Reg == R)
        return true;
    return false;
  };

  for (Interval *Iv : Order) {
    // Expire.
    Active.erase(std::remove_if(Active.begin(), Active.end(),
                                [&](Interval *A) {
                                  return A->End <= Iv->Start;
                                }),
                 Active.end());
    auto Pool = Iv->CrossesCall
                    ? std::pair(CalleePool.data(), CalleePool.size())
                    : std::pair(AllPool.data(), AllPool.size());
    int Free = -1;
    for (size_t J = 0; J != Pool.second && Free < 0; ++J)
      if (!RegInUse(Pool.first[J]))
        Free = Pool.first[J];
    if (Free >= 0) {
      Iv->Reg = Free;
      Active.push_back(Iv);
      continue;
    }
    // Spill the cheapest candidate among the compatible active intervals
    // and the new one: loop-resident values stay in registers (spill code
    // inside loops both costs cycles and breeds back-end WARs), and
    // rematerializable constants spill for free.
    auto SpillCost = [](const Interval *I) {
      double Density = I->Weight / double(I->End - I->Start + 1);
      return I->Remat ? Density * 0.25 : Density;
    };
    Interval *Victim = nullptr;
    for (Interval *A : Active) {
      bool Compatible = false;
      for (size_t J = 0; J != Pool.second; ++J)
        if (Pool.first[J] == A->Reg)
          Compatible = true;
      if (!Compatible)
        continue;
      if (!Victim || SpillCost(A) < SpillCost(Victim) ||
          (SpillCost(A) == SpillCost(Victim) && A->End > Victim->End))
        Victim = A;
    }
    if (Victim && SpillCost(Victim) < SpillCost(Iv)) {
      Iv->Reg = Victim->Reg;
      Victim->Reg = -1;
      Victim->Evicted = true;
      Spills.push_back(Victim);
      Active.erase(std::find(Active.begin(), Active.end(), Victim));
      Active.push_back(Iv);
    } else {
      Iv->Evicted = true;
      Spills.push_back(Iv);
    }
  }

  // --- Spill slot assignment --------------------------------------------------------
  std::sort(Spills.begin(), Spills.end(), [](Interval *A, Interval *B) {
    if (A->Start != B->Start)
      return A->Start < B->Start;
    return A->VReg < B->VReg;
  });
  // (slot, end-of-current-holder) pool for the sharing mode.
  std::vector<std::pair<int, int>> SlotPool;
  for (Interval *S : Spills) {
    if (S->Remat) {
      ++Stats.Spilled; // Counted as spilled, but lives nowhere.
      continue;
    }
    int Slot = -1;
    if (Opts.StackSlotSharing) {
      for (auto &[Sl, End] : SlotPool)
        if (End <= S->Start) {
          Slot = Sl;
          End = S->End;
          break;
        }
    }
    if (Slot < 0) {
      Slot = int(F.Slots.size());
      F.Slots.push_back({FrameSlot::Kind::Spill, 4, -1});
      SlotPool.push_back({Slot, S->End});
      ++Stats.SpillSlots;
    }
    S->Slot = Slot;
    ++Stats.Spilled;
  }

  // --- Rewrite ------------------------------------------------------------------------
  auto LocOf = [&](int V) -> const Interval & { return Ivs[V]; };

  for (MBasicBlock &BB : F.Blocks) {
    std::vector<MInst> Out;
    Out.reserve(BB.Insts.size() + 8);
    for (MInst I : BB.Insts) {
      if (I.Op == MOp::ArgGet) {
        // Like CallPseudo: encode the location; the expansion phase
        // resolves all ArgGets of the entry block as one parallel move
        // (a naive per-arg mov could clobber r0-r3 before they are read).
        const Interval &Iv = LocOf(I.Dst);
        I.Dst = Iv.spilled() ? encodeSlot(Iv.Slot) : Iv.Reg;
        Out.push_back(std::move(I));
        continue;
      }
      if (I.Op == MOp::CallPseudo) {
        // Encode operand locations; expanded below.
        for (int &A : I.CallArgs) {
          const Interval &Iv = LocOf(A);
          if (Iv.spilled())
            A = Iv.Remat ? encodeRemat(Iv.VReg) : encodeSlot(Iv.Slot);
          else
            A = Iv.Reg;
        }
        if (I.Dst >= 0) {
          const Interval &Iv = LocOf(I.Dst);
          I.Dst = Iv.spilled() ? encodeSlot(Iv.Slot) : Iv.Reg;
        }
        Out.push_back(std::move(I));
        continue;
      }
      // A rematerialized value's single def simply disappears.
      if (I.Dst >= 0 && LocOf(I.Dst).spilled() && LocOf(I.Dst).Remat)
        continue;
      unsigned NumScratchUsed = 0;
      for (int &S : I.Src) {
        if (S < 0)
          continue;
        const Interval &Iv = LocOf(S);
        if (Iv.spilled()) {
          if (NumScratchUsed >= NumScratch)
            return false; // Retry with more scratch registers.
          MInst Reload;
          if (Iv.Remat) {
            Reload.Op = Iv.RematOp;
            Reload.Imm = Iv.RematImm;
            Reload.Global = Iv.RematGlobal;
          } else {
            Reload.Op = MOp::LdrSlot;
            Reload.Slot = Iv.Slot;
          }
          Reload.Dst = Scratch[NumScratchUsed];
          Out.push_back(Reload);
          S = Scratch[NumScratchUsed++];
        } else {
          S = Iv.Reg;
        }
      }
      bool DstSpilled = false;
      int DstSlot = -1;
      if (I.Dst >= 0) {
        const Interval &Iv = LocOf(I.Dst);
        if (Iv.spilled()) {
          DstSpilled = true;
          DstSlot = Iv.Slot;
          I.Dst = Scratch[0];
        } else {
          I.Dst = Iv.Reg;
        }
      }
      Out.push_back(I);
      if (DstSpilled) {
        MInst Save;
        Save.Op = MOp::StrSlot;
        Save.Src[0] = Scratch[0];
        Save.Slot = DstSlot;
        Out.push_back(Save);
      }
    }
    BB.Insts = std::move(Out);
  }

  // --- Pseudo expansion -----------------------------------------------------------------
  for (MBasicBlock &BB : F.Blocks) {
    std::vector<MInst> Out;
    Out.reserve(BB.Insts.size() + 8);
    for (size_t Idx = 0; Idx != BB.Insts.size(); ++Idx) {
      MInst I = BB.Insts[Idx];
      switch (I.Op) {
      case MOp::ArgGet: {
        // Gather the whole consecutive ArgGet group and resolve it as a
        // parallel move from r0..rN. Spilled args store first (reads
        // only), then register targets move with r12 breaking cycles.
        std::vector<MInst> Group{I};
        while (Idx + 1 < BB.Insts.size() &&
               BB.Insts[Idx + 1].Op == MOp::ArgGet)
          Group.push_back(BB.Insts[++Idx]);
        struct Move {
          int DstReg;
          int SrcReg;
        };
        std::vector<Move> Pending;
        for (const MInst &AG : Group) {
          int SrcReg = R0 + int(AG.Imm);
          if (isEncodedSlot(AG.Dst)) {
            MInst Sv;
            Sv.Op = MOp::StrSlot;
            Sv.Src[0] = SrcReg;
            Sv.Slot = decodeSlot(AG.Dst);
            Out.push_back(Sv);
          } else if (AG.Dst != SrcReg) {
            Pending.push_back({AG.Dst, SrcReg});
          }
        }
        while (!Pending.empty()) {
          bool Emitted = false;
          for (auto It = Pending.begin(); It != Pending.end(); ++It) {
            bool DstIsPendingSrc = false;
            for (const Move &O : Pending)
              if (O.SrcReg == It->DstReg && &O != &*It)
                DstIsPendingSrc = true;
            if (DstIsPendingSrc)
              continue;
            MInst Mv;
            Mv.Op = MOp::Mov;
            Mv.Dst = It->DstReg;
            Mv.Src[0] = It->SrcReg;
            Out.push_back(Mv);
            Pending.erase(It);
            Emitted = true;
            break;
          }
          if (!Emitted) {
            Move &M = Pending.front();
            MInst Mv;
            Mv.Op = MOp::Mov;
            Mv.Dst = R12;
            Mv.Src[0] = M.SrcReg;
            Out.push_back(Mv);
            for (Move &O : Pending)
              if (O.SrcReg == Mv.Src[0])
                O.SrcReg = R12;
          }
        }
        break;
      }
      case MOp::Ret: {
        if (I.Src[0] >= 0 && I.Src[0] != R0) {
          MInst Mv;
          Mv.Op = MOp::Mov;
          Mv.Dst = R0;
          Mv.Src[0] = I.Src[0];
          Out.push_back(Mv);
        }
        I.Src[0] = -1;
        Out.push_back(I);
        break;
      }
      case MOp::CallPseudo: {
        // Parallel move of arguments into r0..r3. Slot sources load
        // directly into their target register; cycles among registers are
        // broken with r12 (free at call boundaries).
        struct Move {
          int DstReg;
          int Src; // PReg or encoded slot.
        };
        std::vector<Move> Pending;
        std::vector<std::pair<int, int>> Remats; // (dst reg, vreg).
        for (unsigned A = 0; A != I.CallArgs.size(); ++A) {
          if (isEncodedRemat(I.CallArgs[A])) {
            Remats.emplace_back(int(R0 + A), decodeRemat(I.CallArgs[A]));
            continue;
          }
          if (I.CallArgs[A] != int(R0 + A))
            Pending.push_back({int(R0 + A), I.CallArgs[A]});
        }
        while (!Pending.empty()) {
          bool Emitted = false;
          for (auto It = Pending.begin(); It != Pending.end(); ++It) {
            bool DstIsPendingSrc = false;
            for (const Move &O : Pending)
              if (!isEncodedSlot(O.Src) && O.Src == It->DstReg &&
                  &O != &*It)
                DstIsPendingSrc = true;
            if (DstIsPendingSrc)
              continue;
            MInst Mv;
            if (isEncodedSlot(It->Src)) {
              Mv.Op = MOp::LdrSlot;
              Mv.Dst = It->DstReg;
              Mv.Slot = decodeSlot(It->Src);
            } else {
              Mv.Op = MOp::Mov;
              Mv.Dst = It->DstReg;
              Mv.Src[0] = It->Src;
            }
            Out.push_back(Mv);
            Pending.erase(It);
            Emitted = true;
            break;
          }
          if (!Emitted) {
            // Pure register cycle: rotate through r12.
            Move &M = Pending.front();
            MInst Mv;
            Mv.Op = MOp::Mov;
            Mv.Dst = R12;
            Mv.Src[0] = M.Src;
            Out.push_back(Mv);
            for (Move &O : Pending)
              if (!isEncodedSlot(O.Src) && O.Src == Mv.Src[0])
                O.Src = R12;
          }
        }
        for (auto &[DstReg, VReg] : Remats) {
          const Interval &Iv = Ivs[unsigned(VReg)];
          MInst Mv;
          Mv.Op = Iv.RematOp;
          Mv.Dst = DstReg;
          Mv.Imm = Iv.RematImm;
          Mv.Global = Iv.RematGlobal;
          Out.push_back(Mv);
        }
        MInst Call;
        Call.Op = MOp::Bl;
        Call.Callee = I.Callee;
        Out.push_back(Call);
        if (I.Dst != -1) {
          if (isEncodedSlot(I.Dst)) {
            MInst Sv;
            Sv.Op = MOp::StrSlot;
            Sv.Src[0] = R0;
            Sv.Slot = decodeSlot(I.Dst);
            Out.push_back(Sv);
          } else if (I.Dst != R0) {
            MInst Mv;
            Mv.Op = MOp::Mov;
            Mv.Dst = I.Dst;
            Mv.Src[0] = R0;
            Out.push_back(Mv);
          }
        }
        break;
      }
      default:
        Out.push_back(std::move(I));
        break;
      }
    }
    BB.Insts = std::move(Out);
  }

  // Record callee-saved registers that now appear in the code.
  uint16_t Saved = 0;
  for (const MBasicBlock &BB : F.Blocks)
    for (const MInst &I : BB.Insts) {
      auto Mark = [&](int R) {
        if (R >= R4 && R <= R10)
          Saved |= uint16_t(1u << R);
      };
      Mark(I.Dst);
      for (int S : I.Src)
        Mark(S);
    }
  F.SavedRegMask = Saved;
  F.PostRA = true;
  return true;
}

} // namespace

RegAllocStats wario::allocateRegisters(MFunction &F,
                                       const RegAllocOptions &Opts) {
  assert(!F.PostRA && "function already allocated");
  RegAllocStats Stats;
  // Prefer 11 allocatable registers (r0-r10) with two scratch; fall back
  // to 10 + three scratch for the rare function where some instruction
  // (a select) carries three spilled sources.
  MFunction Backup = F;
  if (allocateOnce(F, Opts, 11, Stats))
    return Stats;
  F = std::move(Backup);
  bool Ok = allocateOnce(F, Opts, 10, Stats);
  assert(Ok && "allocation with three scratch registers cannot fail");
  (void)Ok;
  return Stats;
}
