//===----------------------------------------------------------------------===//
///
/// \file
/// Linear-scan register allocation for the modeled Cortex-M target.
///
/// r0-r9 are allocatable (intervals live across calls are restricted to
/// callee-saved r4-r9); r10-r12 are reserved as spill scratch. Spilled
/// virtual registers receive frame slots; the paper-relevant knob is
/// StackSlotSharing: WARio compiles with "-no-stack-slot-sharing" so only
/// loops can create spill-slot WARs (Section 4.4), while the legacy
/// baseline shares slots and relies on per-write checkpoints.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_BACKEND_REGALLOC_H
#define WARIO_BACKEND_REGALLOC_H

#include "backend/MIR.h"

namespace wario {

struct RegAllocOptions {
  /// Reuse spill slots between non-overlapping live ranges.
  bool StackSlotSharing = false;
};

struct RegAllocStats {
  unsigned VRegs = 0;
  unsigned Spilled = 0;
  unsigned SpillSlots = 0;
};

/// Allocates \p F in place: every vreg reference becomes a PReg, spill
/// code is inserted, and Call/Arg/Ret pseudos are expanded to the register
/// calling convention. Sets F.PostRA.
RegAllocStats allocateRegisters(MFunction &F, const RegAllocOptions &Opts);

} // namespace wario

#endif // WARIO_BACKEND_REGALLOC_H
