//===----------------------------------------------------------------------===//
///
/// \file
/// Stack Spill Checkpoint Inserter (paper Sections 3.1.3 / 4.4): resolves
/// WAR violations on register-spill stack slots that only materialize in
/// the back end. Two placements are provided:
///
///  - Basic (Ratchet 4.1): a checkpoint immediately before every spill
///    store that completes an unresolved WAR.
///  - Hitting set (WARio contribution #2): the same greedy minimum
///    hitting set as the middle end, driven by stack-slot identities
///    instead of the PDG (which no longer exists at this stage), weighted
///    by machine-loop depth.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_BACKEND_SPILLCHECKPOINT_H
#define WARIO_BACKEND_SPILLCHECKPOINT_H

#include "backend/MIR.h"

namespace wario {

struct SpillCheckpointOptions {
  /// Use the hitting-set placement (WARio) instead of per-write (Ratchet).
  bool HittingSet = true;
};

struct SpillCheckpointStats {
  unsigned WarsFound = 0;
  unsigned Inserted = 0;
};

/// Inserts BackendSpill checkpoints into \p F (must be frame-lowered).
SpillCheckpointStats
insertSpillCheckpoints(MFunction &F, const SpillCheckpointOptions &Opts);

} // namespace wario

#endif // WARIO_BACKEND_SPILLCHECKPOINT_H
