#include "backend/MIR.h"

#include <bit>
#include <sstream>

using namespace wario;

const char *wario::pregName(PReg R) {
  static const char *Names[] = {"r0", "r1", "r2",  "r3",  "r4", "r5",
                                "r6", "r7", "r8",  "r9",  "r10", "r11",
                                "r12", "sp", "lr", "pc"};
  return R < NumPRegs ? Names[R] : "r?";
}

const char *wario::mopName(MOp Op) {
  switch (Op) {
  case MOp::MovImm: return "movimm";
  case MOp::MovGlobal: return "movglobal";
  case MOp::Mov: return "mov";
  case MOp::Add: return "add";
  case MOp::Sub: return "sub";
  case MOp::Mul: return "mul";
  case MOp::UDiv: return "udiv";
  case MOp::SDiv: return "sdiv";
  case MOp::And: return "and";
  case MOp::Orr: return "orr";
  case MOp::Eor: return "eor";
  case MOp::Lsl: return "lsl";
  case MOp::Lsr: return "lsr";
  case MOp::Asr: return "asr";
  case MOp::AddImm: return "addimm";
  case MOp::SetCond: return "setcond";
  case MOp::SelectR: return "select";
  case MOp::Ldr: return "ldr";
  case MOp::Str: return "str";
  case MOp::LdrSlot: return "ldrslot";
  case MOp::StrSlot: return "strslot";
  case MOp::FrameAddr: return "frameaddr";
  case MOp::CallPseudo: return "callpseudo";
  case MOp::ArgGet: return "argget";
  case MOp::Bl: return "bl";
  case MOp::B: return "b";
  case MOp::CBr: return "cbr";
  case MOp::Ret: return "ret";
  case MOp::Push: return "push";
  case MOp::Pop: return "pop";
  case MOp::PopLoads: return "poploads";
  case MOp::SpAdjust: return "spadjust";
  case MOp::Checkpoint: return "checkpoint";
  case MOp::Out: return "out";
  case MOp::IntMask: return "intmask";
  case MOp::IntUnmask: return "intunmask";
  case MOp::Nop: return "nop";
  }
  return "<bad mop>";
}

unsigned MInst::sizeInBytes() const {
  switch (Op) {
  case MOp::MovImm:
    // movw, plus movt when the constant needs the high half.
    return (uint64_t(Imm) & 0xFFFF0000u) ? 8 : 4;
  case MOp::MovGlobal:
    return 8; // movw+movt of a link-time address.
  case MOp::Mov:
  case MOp::Nop:
  case MOp::IntMask:
  case MOp::IntUnmask:
    return 2;
  case MOp::Add:
  case MOp::Sub:
  case MOp::And:
  case MOp::Orr:
  case MOp::Eor:
  case MOp::Lsl:
  case MOp::Lsr:
  case MOp::Asr:
    return 2; // Narrow encodings dominate for low registers.
  case MOp::Mul:
  case MOp::UDiv:
  case MOp::SDiv:
  case MOp::SetCond:   // cmp + ite + movs.
  case MOp::SelectR:
    return 4;
  case MOp::AddImm:
  case MOp::Ldr:
  case MOp::Str:
  case MOp::LdrSlot:
  case MOp::StrSlot:
  case MOp::FrameAddr:
    return 4;
  case MOp::CallPseudo:
  case MOp::ArgGet:
  case MOp::Bl:
  case MOp::Checkpoint: // A BL to the checkpoint routine.
    return 4;
  case MOp::B:
    return 2;
  case MOp::CBr:
    return 4; // cbz/cmp+bcc.
  case MOp::Ret:
    return 2; // bx lr.
  case MOp::Push:
  case MOp::Pop:
  case MOp::PopLoads:
    return std::popcount(RegList) > 8 ? 4 : 2;
  case MOp::SpAdjust:
    return 2;
  case MOp::Out:
    return 4; // str to MMIO.
  }
  return 4;
}

namespace {

void printReg(std::ostringstream &OS, int R, bool PostRA) {
  if (R < 0) {
    OS << "<none>";
    return;
  }
  if (PostRA)
    OS << pregName(PReg(R));
  else
    OS << "%v" << R;
}

void printInst(std::ostringstream &OS, const MInst &I, const MFunction &F) {
  OS << mopName(I.Op);
  auto Reg = [&](int R) { printReg(OS, R, F.PostRA); };
  switch (I.Op) {
  case MOp::MovImm:
    OS << ' ';
    Reg(I.Dst);
    OS << ", #" << I.Imm;
    break;
  case MOp::MovGlobal:
    OS << ' ';
    Reg(I.Dst);
    OS << ", @" << I.Global->getName();
    break;
  case MOp::Mov:
    OS << ' ';
    Reg(I.Dst);
    OS << ", ";
    Reg(I.Src[0]);
    break;
  case MOp::AddImm:
    OS << ' ';
    Reg(I.Dst);
    OS << ", ";
    Reg(I.Src[0]);
    OS << ", #" << I.Imm;
    break;
  case MOp::SetCond:
    OS << '.' << predName(I.Pred) << ' ';
    Reg(I.Dst);
    OS << ", ";
    Reg(I.Src[0]);
    OS << ", ";
    Reg(I.Src[1]);
    break;
  case MOp::SelectR:
    OS << ' ';
    Reg(I.Dst);
    OS << ", ";
    Reg(I.Src[0]);
    OS << " ? ";
    Reg(I.Src[1]);
    OS << " : ";
    Reg(I.Src[2]);
    break;
  case MOp::Ldr:
    OS << (I.Size == 4 ? "" : I.Size == 2 ? "h" : "b") << ' ';
    Reg(I.Dst);
    OS << ", [";
    Reg(I.Src[0]);
    OS << ", #" << I.Imm << ']';
    break;
  case MOp::Str:
    OS << (I.Size == 4 ? "" : I.Size == 2 ? "h" : "b") << ' ';
    Reg(I.Src[0]);
    OS << ", [";
    Reg(I.Src[1]);
    OS << ", #" << I.Imm << ']';
    if (I.Logged)
      OS << " !log"; // Speculative-strategy undo-logged WAR write.
    break;
  case MOp::LdrSlot:
    OS << ' ';
    Reg(I.Dst);
    OS << ", slot" << I.Slot;
    break;
  case MOp::StrSlot:
    OS << ' ';
    Reg(I.Src[0]);
    OS << ", slot" << I.Slot;
    break;
  case MOp::FrameAddr:
    OS << ' ';
    Reg(I.Dst);
    OS << ", slot" << I.Slot;
    break;
  case MOp::CallPseudo: {
    OS << ' ';
    if (I.Dst >= 0) {
      Reg(I.Dst);
      OS << " = ";
    }
    OS << '@' << I.Callee->getName() << '(';
    for (unsigned J = 0; J != I.CallArgs.size(); ++J) {
      if (J)
        OS << ", ";
      Reg(I.CallArgs[J]);
    }
    OS << ')';
    break;
  }
  case MOp::Bl:
    OS << " @" << I.Callee->getName();
    break;
  case MOp::B:
    OS << ' ' << F.Blocks[I.Target[0]].Name;
    break;
  case MOp::CBr:
    OS << ' ';
    Reg(I.Src[0]);
    OS << ", " << F.Blocks[I.Target[0]].Name << ", "
       << F.Blocks[I.Target[1]].Name;
    break;
  case MOp::Push:
  case MOp::Pop:
  case MOp::PopLoads: {
    OS << " {";
    bool First = true;
    for (unsigned R = 0; R != NumPRegs; ++R)
      if (I.RegList & (1u << R)) {
        if (!First)
          OS << ", ";
        OS << pregName(PReg(R));
        First = false;
      }
    OS << '}';
    break;
  }
  case MOp::SpAdjust:
    OS << " #" << I.Imm;
    break;
  case MOp::Checkpoint:
    OS << " (" << checkpointCauseName(I.Cause) << ')';
    break;
  case MOp::Out:
    OS << ' ';
    Reg(I.Src[0]);
    break;
  default:
    if (I.Dst >= 0 || I.Src[0] >= 0) {
      OS << ' ';
      Reg(I.Dst);
      OS << ", ";
      Reg(I.Src[0]);
      OS << ", ";
      Reg(I.Src[1]);
    }
    break;
  }
}

} // namespace

std::string wario::printMFunction(const MFunction &F) {
  std::ostringstream OS;
  OS << "mfunc @" << F.Name << " (vregs=" << F.NumVRegs
     << ", slots=" << F.Slots.size() << ")\n";
  for (const MBasicBlock &BB : F.Blocks) {
    OS << BB.Name << ":\n";
    for (const MInst &I : BB.Insts) {
      OS << "  ";
      printInst(OS, I, F);
      OS << '\n';
    }
  }
  return OS.str();
}

std::string wario::printMModule(const MModule &M) {
  std::string S;
  for (const MFunction &F : M.Functions)
    S += printMFunction(F) + "\n";
  return S;
}
