//===----------------------------------------------------------------------===//
///
/// \file
/// Frame lowering: prologue/epilog generation, idempotent stack pop
/// conversion, and the epilog optimizer (paper Section 3.1.3).
///
/// Conventions of the modeled intermittent-safe ABI:
///  - Every function starts with a FunctionEntry checkpoint. It guards the
///    prologue's pushes (writes to stack addresses whose last reads — a
///    previous frame's pops — happened in an earlier region) and makes
///    every call a region cut, which the middle-end WAR analysis assumes.
///  - A pop is converted into loads + checkpoint + SP adjustment (Ratchet
///    Section 4.1): after the adjustment, the freed bytes have only been
///    read *before* a checkpoint, so a later (interrupt or prologue) push
///    cannot complete a WAR.
///  - Basic epilogs checkpoint before every SP-raising step: spill-area
///    release, alloca-area release, and the final pop — up to three
///    FunctionExit checkpoints, matching the paper's Thumb-2 observation.
///  - The optimized epilog masks interrupts, performs all loads, places
///    one checkpoint, releases the stack, and unmasks — a single
///    FunctionExit checkpoint.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_BACKEND_FRAME_H
#define WARIO_BACKEND_FRAME_H

#include "backend/MIR.h"

namespace wario {

struct FrameOptions {
  /// Apply the Epilog Optimizer (one exit checkpoint instead of up to 3).
  bool EpilogOptimizer = false;
  /// Emit checkpoints at all (false for the uninstrumented-C build).
  bool InsertCheckpoints = true;
};

/// Lowers the frame of \p F in place (must be PostRA). Sets FrameLowered
/// and fills in slot offsets and FrameSize.
void lowerFrame(MFunction &F, const FrameOptions &Opts);

} // namespace wario

#endif // WARIO_BACKEND_FRAME_H
