#include "backend/SpillCheckpoint.h"

#include "backend/MachineCFG.h"

#include <algorithm>
#include <map>
#include <set>

using namespace wario;

namespace {

/// A program point: before Insts[Index] of block Block.
struct MPos {
  int Block;
  int Index;
  bool operator<(const MPos &O) const {
    return std::tie(Block, Index) < std::tie(O.Block, O.Index);
  }
  bool operator==(const MPos &O) const {
    return Block == O.Block && Index == O.Index;
  }
};

bool isCut(const MInst &I) {
  return I.Op == MOp::Checkpoint || I.Op == MOp::Bl;
}

/// Exact "is every load->store path cut" check, mirroring the middle-end
/// warIsCut at MIR granularity.
bool warIsCut(const MFunction &F, MPos Load, MPos Store) {
  enum ScanResult { FoundStore, Blocked, FellThrough };
  auto Scan = [&](int Block, int From) {
    const auto &Insts = F.Blocks[Block].Insts;
    for (int I = From; I < int(Insts.size()); ++I) {
      if (Block == Store.Block && I == Store.Index)
        return FoundStore;
      if (isCut(Insts[I]))
        return Blocked;
    }
    return FellThrough;
  };

  std::vector<int> Work;
  std::set<int> Visited;
  switch (Scan(Load.Block, Load.Index + 1)) {
  case FoundStore:
    return false;
  case Blocked:
    return true;
  case FellThrough:
    for (int S : F.successors(Load.Block))
      if (Visited.insert(S).second)
        Work.push_back(S);
    break;
  }
  while (!Work.empty()) {
    int B = Work.back();
    Work.pop_back();
    switch (Scan(B, 0)) {
    case FoundStore:
      return false;
    case Blocked:
      continue;
    case FellThrough:
      for (int S : F.successors(B))
        if (Visited.insert(S).second)
          Work.push_back(S);
      break;
    }
  }
  return true;
}

/// Program points at which a checkpoint provably resolves (Load, Store);
/// same structure as the middle-end resolvingPoints.
std::vector<MPos> resolvingPoints(const MFunction &F, MPos Load,
                                  MPos Store) {
  std::vector<MPos> Points;
  if (Load.Block == Store.Block) {
    if (Load.Index < Store.Index) {
      for (int I = Load.Index + 1; I <= Store.Index; ++I)
        Points.push_back({Load.Block, I});
      return Points;
    }
    int N = int(F.Blocks[Load.Block].Insts.size());
    for (int I = Load.Index + 1; I < N; ++I)
      Points.push_back({Load.Block, I});
    for (int I = 0; I <= Store.Index; ++I)
      Points.push_back({Load.Block, I});
    return Points;
  }
  // Cross-block: blocks are entered only at their head, so every point up
  // to the store within its block lies on all load->store paths.
  for (int I = 0; I <= Store.Index; ++I)
    Points.push_back({Store.Block, I});
  return Points;
}

} // namespace

SpillCheckpointStats
wario::insertSpillCheckpoints(MFunction &F,
                              const SpillCheckpointOptions &Opts) {
  assert(F.FrameLowered && "run after frame lowering");
  SpillCheckpointStats Stats;

  // Collect slot accesses.
  struct Access {
    MPos Pos;
    int Slot;
    bool IsStore;
  };
  std::vector<Access> Accesses;
  for (int B = 0; B != int(F.Blocks.size()); ++B)
    for (int I = 0; I != int(F.Blocks[B].Insts.size()); ++I) {
      const MInst &MI = F.Blocks[B].Insts[I];
      if (MI.Op == MOp::LdrSlot)
        Accesses.push_back({{B, I}, MI.Slot, false});
      else if (MI.Op == MOp::StrSlot)
        Accesses.push_back({{B, I}, MI.Slot, true});
    }
  if (Accesses.empty())
    return Stats;

  // WAR pairs: a slot load that can reach a same-slot store uncut.
  std::vector<std::pair<MPos, MPos>> Wars;
  for (const Access &L : Accesses) {
    if (L.IsStore)
      continue;
    for (const Access &S : Accesses) {
      if (!S.IsStore || S.Slot != L.Slot)
        continue;
      if (!warIsCut(F, L.Pos, S.Pos))
        Wars.emplace_back(L.Pos, S.Pos);
    }
  }
  Stats.WarsFound = unsigned(Wars.size());
  if (Wars.empty())
    return Stats;

  std::vector<MPos> InsertAt;
  if (!Opts.HittingSet) {
    std::set<MPos> Done;
    for (auto &[L, S] : Wars)
      if (Done.insert(S).second)
        InsertAt.push_back(S);
  } else {
    std::vector<unsigned> Depth = computeMachineLoopDepth(F);
    std::map<MPos, std::vector<unsigned>> Covers;
    for (unsigned Idx = 0; Idx != Wars.size(); ++Idx)
      for (const MPos &P : resolvingPoints(F, Wars[Idx].first,
                                           Wars[Idx].second))
        Covers[P].push_back(Idx);
    auto CostOf = [&](const MPos &P) {
      unsigned D = std::min(Depth[P.Block], 8u);
      double C = 1.0;
      for (unsigned I = 0; I != D; ++I)
        C *= 4.0;
      return C;
    };
    std::vector<bool> Resolved(Wars.size(), false);
    unsigned Remaining = unsigned(Wars.size());
    while (Remaining) {
      const MPos *Best = nullptr;
      double BestScore = -1.0;
      for (auto &[P, Ws] : Covers) {
        unsigned Count = 0;
        for (unsigned Idx : Ws)
          if (!Resolved[Idx])
            ++Count;
        if (!Count)
          continue;
        double Score = double(Count) / CostOf(P);
        if (Score > BestScore) {
          BestScore = Score;
          Best = &P;
        }
      }
      assert(Best && "hitting set failed to cover spill WARs");
      InsertAt.push_back(*Best);
      for (unsigned Idx : Covers[*Best])
        if (!Resolved[Idx]) {
          Resolved[Idx] = true;
          --Remaining;
        }
    }
  }

  // Apply insertions bottom-up per block so indices stay valid.
  std::sort(InsertAt.begin(), InsertAt.end());
  for (auto It = InsertAt.rbegin(); It != InsertAt.rend(); ++It) {
    MInst C;
    C.Op = MOp::Checkpoint;
    C.Cause = CheckpointCause::BackendSpill;
    auto &Insts = F.Blocks[It->Block].Insts;
    Insts.insert(Insts.begin() + It->Index, C);
    ++Stats.Inserted;
  }
  return Stats;
}
