//===----------------------------------------------------------------------===//
///
/// \file
/// Back-end driver: IR module -> allocated, frame-lowered, WAR-protected
/// machine module ready for the emulator.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_BACKEND_BACKEND_H
#define WARIO_BACKEND_BACKEND_H

#include "backend/RegAlloc.h"
#include "backend/SpillCheckpoint.h"

namespace wario {

struct BackendOptions {
  /// False builds the uninstrumented reference binary (plain C).
  bool InsertCheckpoints = true;
  /// Paper contribution #3 (single masked exit checkpoint).
  bool EpilogOptimizer = false;
  /// Paper contribution #2 (hitting-set spill checkpoints); false uses
  /// Ratchet's checkpoint-per-spill-write.
  bool HittingSetSpill = true;
  /// Legacy slot reuse (Ratchet); WARio forces -no-stack-slot-sharing.
  bool StackSlotSharing = false;
  /// Active checkpoint strategy, stamped into the MModule so the
  /// emulator selects the matching runtime (docs/STRATEGIES.md).
  /// Differential additionally skips spill-WAR checkpoints — the
  /// dirty-page journal rolls spill slots back like any other NVM state.
  CheckpointStrategy Strat = CheckpointStrategy::Idempotent;
  /// Negative-control knob for the differential runtime, carried through
  /// to the MModule (canonically true for other strategies).
  bool DiffFullRollback = true;
};

struct BackendStats {
  unsigned VRegs = 0;
  unsigned Spilled = 0;
  unsigned SpillSlots = 0;
  unsigned SpillWars = 0;
  unsigned SpillCheckpoints = 0;
};

/// Lowers \p M through instruction selection, register allocation, frame
/// lowering, and back-end WAR protection.
MModule runBackend(const Module &M, const BackendOptions &Opts,
                   BackendStats *Stats = nullptr);

} // namespace wario

#endif // WARIO_BACKEND_BACKEND_H
