#include "backend/Backend.h"

#include "backend/Frame.h"
#include "backend/ISel.h"
#include "ir/MemoryLayout.h"

using namespace wario;

MModule wario::runBackend(const Module &M, const BackendOptions &Opts,
                          BackendStats *Stats) {
  MModule MM = selectModule(M);
  MM.Strat = Opts.Strat;
  MM.DiffFullRollback = Opts.DiffFullRollback;

  RegAllocOptions RAOpts;
  RAOpts.StackSlotSharing = Opts.StackSlotSharing;
  FrameOptions FOpts;
  FOpts.EpilogOptimizer = Opts.EpilogOptimizer;
  FOpts.InsertCheckpoints = Opts.InsertCheckpoints;
  SpillCheckpointOptions SCOpts;
  SCOpts.HittingSet = Opts.HittingSetSpill;

  for (MFunction &F : MM.Functions) {
    RegAllocStats RA = allocateRegisters(F, RAOpts);
    lowerFrame(F, FOpts);
    SpillCheckpointStats SC;
    // Differential needs no spill-WAR checkpoints: spill slots live in
    // NVM and the dirty-page journal rolls them back like any other
    // uncommitted write. (Speculative keeps them — the undo log covers
    // only the middle-end-marked WAR stores.)
    if (Opts.InsertCheckpoints &&
        Opts.Strat != CheckpointStrategy::Differential)
      SC = insertSpillCheckpoints(F, SCOpts);
    if (Stats) {
      Stats->VRegs += RA.VRegs;
      Stats->Spilled += RA.Spilled;
      Stats->SpillSlots += RA.SpillSlots;
      Stats->SpillWars += SC.WarsFound;
      Stats->SpillCheckpoints += SC.Inserted;
    }
  }

  // Link step: resolve IR references so the machine module outlives the
  // IR module. Global addresses become immediates, call targets become
  // function indices, and the initialized data segment is snapshotted.
  MemoryLayout Layout(M);
  MM.DataEnd = Layout.getDataEnd();
  MM.InitImage.assign(MM.DataEnd, 0);
  Layout.materialize(M, MM.InitImage);
  for (MFunction &F : MM.Functions) {
    for (MBasicBlock &BB : F.Blocks) {
      for (MInst &I : BB.Insts) {
        if (I.Op == MOp::MovGlobal) {
          I.Op = MOp::MovImm;
          I.Imm = Layout.addressOf(I.Global);
          I.Global = nullptr;
        }
        if (I.Op == MOp::Bl) {
          for (unsigned FI = 0; FI != MM.Functions.size(); ++FI)
            if (MM.Functions[FI].Name == I.Callee->getName())
              I.CalleeIdx = int(FI);
          assert(I.CalleeIdx >= 0 && "call to a function with no body");
          I.Callee = nullptr;
        }
      }
    }
  }
  return MM;
}
