#include "backend/ISel.h"

#include <unordered_map>

using namespace wario;

namespace {

class Selector {
public:
  explicit Selector(const Function &F) : F(F) {}

  MFunction run() {
    MF.Name = F.getName();

    // Block numbering.
    int Idx = 0;
    for (const BasicBlock *BB : F) {
      BlockIndex[BB] = Idx++;
      MF.Blocks.push_back({BB->getName(), {}});
    }

    // Argument pseudos at entry.
    assert(F.getNumParams() <= MaxRegArgs &&
           "register-only calling convention supports at most 4 args");
    Cur = &MF.Blocks[0];
    for (unsigned I = 0; I != F.getNumParams(); ++I) {
      MInst MI;
      MI.Op = MOp::ArgGet;
      MI.Dst = vregFor(F.getArg(I));
      MI.Imm = I;
      emit(MI);
    }

    // Pre-assign a result vreg and a staging vreg to every phi.
    for (const BasicBlock *BB : F)
      for (const Instruction *I : *BB) {
        if (I->getOpcode() != Opcode::Phi)
          break;
        PhiTmp[I] = newVReg();
        (void)vregFor(I);
      }

    for (const BasicBlock *BB : F)
      lowerBlock(BB);

    MF.NumVRegs = NextVReg;
    return std::move(MF);
  }

private:
  int newVReg() { return NextVReg++; }

  /// The vreg holding an instruction or argument value.
  int vregFor(const Value *V) {
    auto It = ValueReg.find(V);
    if (It != ValueReg.end())
      return It->second;
    int R = newVReg();
    ValueReg[V] = R;
    return R;
  }

  void emit(MInst MI) { Cur->Insts.push_back(std::move(MI)); }

  /// Materializes any IR value into a vreg at the current point.
  /// Constants and global addresses are rematerialized per use (with a
  /// tiny per-block cache).
  int useOf(const Value *V) {
    if (const auto *C = dyn_cast<Constant>(V)) {
      auto Key = std::make_pair(Cur, int64_t(C->getValue()));
      auto It = ConstCache.find(Key);
      if (It != ConstCache.end())
        return It->second;
      MInst MI;
      MI.Op = MOp::MovImm;
      MI.Dst = newVReg();
      MI.Imm = uint32_t(C->getValue());
      emit(MI);
      ConstCache[Key] = MI.Dst;
      return MI.Dst;
    }
    if (const auto *G = dyn_cast<GlobalVariable>(V)) {
      auto Key = std::make_pair(Cur, G);
      auto It = GlobalCache.find(Key);
      if (It != GlobalCache.end())
        return It->second;
      MInst MI;
      MI.Op = MOp::MovGlobal;
      MI.Dst = newVReg();
      MI.Global = G;
      emit(MI);
      GlobalCache[Key] = MI.Dst;
      return MI.Dst;
    }
    return vregFor(V);
  }

  void emitBinary(MOp Op, int Dst, int A, int B) {
    MInst MI;
    MI.Op = Op;
    MI.Dst = Dst;
    MI.Src[0] = A;
    MI.Src[1] = B;
    emit(MI);
  }

  /// Remainder expands to div + mul + sub (Cortex-M has no remainder).
  void lowerRem(const Instruction *I, bool IsSigned) {
    int A = useOf(I->getOperand(0));
    int B = useOf(I->getOperand(1));
    int Q = newVReg(), P = newVReg();
    emitBinary(IsSigned ? MOp::SDiv : MOp::UDiv, Q, A, B);
    emitBinary(MOp::Mul, P, Q, B);
    emitBinary(MOp::Sub, vregFor(I), A, P);
  }

  void lowerGep(const Instruction *I) {
    int Addr = useOf(I->getGepBase());
    if (const Value *Index = I->getGepIndex()) {
      int Idx = useOf(Index);
      int32_t Scale = I->getGepScale();
      int Scaled;
      if (Scale == 1) {
        Scaled = Idx;
      } else if ((Scale & (Scale - 1)) == 0 && Scale > 0) {
        // Power of two: shift.
        MInst Sh;
        Sh.Op = MOp::MovImm;
        Sh.Dst = newVReg();
        int32_t Log = 0;
        for (int32_t S = Scale; S > 1; S >>= 1)
          ++Log;
        Sh.Imm = Log;
        emit(Sh);
        Scaled = newVReg();
        emitBinary(MOp::Lsl, Scaled, Idx, Sh.Dst);
      } else {
        MInst MI;
        MI.Op = MOp::MovImm;
        MI.Dst = newVReg();
        MI.Imm = Scale;
        emit(MI);
        Scaled = newVReg();
        emitBinary(MOp::Mul, Scaled, Idx, MI.Dst);
      }
      int Sum = newVReg();
      emitBinary(MOp::Add, Sum, Addr, Scaled);
      Addr = Sum;
    }
    // The result must land in the gep's pre-assignable vreg: uses in other
    // blocks may already have been lowered against it.
    int Dst = vregFor(I);
    if (I->getGepOffset() != 0) {
      MInst MI;
      MI.Op = MOp::AddImm;
      MI.Dst = Dst;
      MI.Src[0] = Addr;
      MI.Imm = I->getGepOffset();
      emit(MI);
    } else {
      MInst MI;
      MI.Op = MOp::Mov;
      MI.Dst = Dst;
      MI.Src[0] = Addr;
      emit(MI);
    }
  }

  /// Emits the phi staging copies for every successor of \p BB, then the
  /// terminator itself.
  void lowerTerminator(const BasicBlock *BB, const Instruction *T) {
    for (unsigned S = 0, E = T->getNumBlockOperands(); S != E; ++S) {
      const BasicBlock *Succ = T->getBlockOperand(S);
      for (const Instruction *Phi : Succ->phis()) {
        const Value *In = Phi->getPhiIncomingFor(BB);
        MInst MI;
        MI.Op = MOp::Mov;
        MI.Dst = PhiTmp.at(Phi);
        MI.Src[0] = useOf(In);
        emit(MI);
      }
    }
    switch (T->getOpcode()) {
    case Opcode::Jmp: {
      MInst MI;
      MI.Op = MOp::B;
      MI.Target[0] = BlockIndex.at(T->getBlockOperand(0));
      emit(MI);
      break;
    }
    case Opcode::Br: {
      MInst MI;
      MI.Op = MOp::CBr;
      MI.Src[0] = useOf(T->getOperand(0));
      MI.Target[0] = BlockIndex.at(T->getBlockOperand(0));
      MI.Target[1] = BlockIndex.at(T->getBlockOperand(1));
      emit(MI);
      break;
    }
    case Opcode::Ret: {
      MInst MI;
      MI.Op = MOp::Ret;
      if (T->getNumOperands() > 0)
        MI.Src[0] = useOf(T->getOperand(0));
      emit(MI);
      break;
    }
    default:
      assert(false && "unknown terminator");
    }
  }

  void lowerBlock(const BasicBlock *BB) {
    Cur = &MF.Blocks[BlockIndex.at(BB)];
    for (const Instruction *I : *BB) {
      if (I->isTerminator()) {
        lowerTerminator(BB, I);
        continue;
      }
      switch (I->getOpcode()) {
      case Opcode::Phi: {
        MInst MI;
        MI.Op = MOp::Mov;
        MI.Dst = vregFor(I);
        MI.Src[0] = PhiTmp.at(I);
        emit(MI);
        break;
      }
      case Opcode::Alloca: {
        int Slot = int(MF.Slots.size());
        MF.Slots.push_back({FrameSlot::Kind::Alloca,
                            (I->getAllocaSize() + 3u) & ~3u, -1});
        MInst MI;
        MI.Op = MOp::FrameAddr;
        MI.Dst = vregFor(I);
        MI.Slot = Slot;
        emit(MI);
        break;
      }
      case Opcode::Load: {
        MInst MI;
        MI.Op = MOp::Ldr;
        MI.Dst = vregFor(I);
        MI.Src[0] = useOf(I->getOperand(0));
        MI.Size = I->getAccessSize();
        MI.Signed = I->isSignedLoad();
        emit(MI);
        break;
      }
      case Opcode::Store: {
        MInst MI;
        MI.Op = MOp::Str;
        MI.Src[0] = useOf(I->getOperand(0));
        MI.Src[1] = useOf(I->getOperand(1));
        MI.Size = I->getAccessSize();
        MI.Logged = I->isSpecLogged();
        emit(MI);
        break;
      }
      case Opcode::Gep:
        lowerGep(I);
        break;
      case Opcode::ICmp: {
        MInst MI;
        MI.Op = MOp::SetCond;
        MI.Dst = vregFor(I);
        MI.Src[0] = useOf(I->getOperand(0));
        MI.Src[1] = useOf(I->getOperand(1));
        MI.Pred = I->getPredicate();
        emit(MI);
        break;
      }
      case Opcode::Select: {
        MInst MI;
        MI.Op = MOp::SelectR;
        MI.Dst = vregFor(I);
        MI.Src[0] = useOf(I->getOperand(0));
        MI.Src[1] = useOf(I->getOperand(1));
        MI.Src[2] = useOf(I->getOperand(2));
        emit(MI);
        break;
      }
      case Opcode::Call: {
        MInst MI;
        MI.Op = MOp::CallPseudo;
        MI.Callee = I->getCallee();
        assert(I->getNumOperands() <= MaxRegArgs &&
               "register-only calling convention supports at most 4 args");
        for (unsigned J = 0, E = I->getNumOperands(); J != E; ++J)
          MI.CallArgs.push_back(useOf(I->getOperand(J)));
        if (I->producesValue())
          MI.Dst = vregFor(I);
        emit(MI);
        break;
      }
      case Opcode::Out: {
        MInst MI;
        MI.Op = MOp::Out;
        MI.Src[0] = useOf(I->getOperand(0));
        emit(MI);
        break;
      }
      case Opcode::Checkpoint: {
        MInst MI;
        MI.Op = MOp::Checkpoint;
        MI.Cause = I->getCheckpointCause();
        emit(MI);
        break;
      }
      case Opcode::URem:
        lowerRem(I, false);
        break;
      case Opcode::SRem:
        lowerRem(I, true);
        break;
      default: {
        assert(I->isBinaryOp() && "unhandled opcode in ISel");
        static const std::unordered_map<Opcode, MOp> BinMap = {
            {Opcode::Add, MOp::Add},   {Opcode::Sub, MOp::Sub},
            {Opcode::Mul, MOp::Mul},   {Opcode::UDiv, MOp::UDiv},
            {Opcode::SDiv, MOp::SDiv}, {Opcode::And, MOp::And},
            {Opcode::Or, MOp::Orr},    {Opcode::Xor, MOp::Eor},
            {Opcode::Shl, MOp::Lsl},   {Opcode::LShr, MOp::Lsr},
            {Opcode::AShr, MOp::Asr},
        };
        int A = useOf(I->getOperand(0));
        int B = useOf(I->getOperand(1));
        emitBinary(BinMap.at(I->getOpcode()), vregFor(I), A, B);
        break;
      }
      }
    }
  }

  struct PairHash {
    template <typename A, typename B>
    size_t operator()(const std::pair<A, B> &P) const {
      return std::hash<const void *>()(
                 reinterpret_cast<const void *>(P.first)) *
                 31 ^
             std::hash<B>()(P.second);
    }
  };

  const Function &F;
  MFunction MF;
  MBasicBlock *Cur = nullptr;
  int NextVReg = 0;
  std::unordered_map<const BasicBlock *, int> BlockIndex;
  std::unordered_map<const Value *, int> ValueReg;
  std::unordered_map<const Instruction *, int> PhiTmp;
  std::unordered_map<std::pair<MBasicBlock *, int64_t>, int, PairHash>
      ConstCache;
  std::unordered_map<std::pair<MBasicBlock *, const GlobalVariable *>, int,
                     PairHash>
      GlobalCache;
};

} // namespace

MFunction wario::selectInstructions(const Function &F) {
  assert(!F.isDeclaration() && "cannot select a declaration");
  Selector S(F);
  return S.run();
}

MModule wario::selectModule(const Module &M) {
  MModule MM;
  MM.Name = M.getName();
  for (const auto &F : M.functions())
    if (!F->isDeclaration())
      MM.Functions.push_back(selectInstructions(*F));
  return MM;
}
