//===----------------------------------------------------------------------===//
///
/// \file
/// Instruction selection: WARio IR -> virtual-register machine IR.
///
/// Phi nodes are lowered with the classic two-stage copy scheme (a fresh
/// temporary per phi, written in every predecessor and read at the block
/// head), which is immune to the swap/lost-copy problems without critical
/// edge splitting. Calls and argument reads stay pseudo instructions until
/// after register allocation.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_BACKEND_ISEL_H
#define WARIO_BACKEND_ISEL_H

#include "backend/MIR.h"

namespace wario {

/// Maximum arguments passed in registers (r0-r3). The front end rejects
/// functions with more parameters.
inline constexpr unsigned MaxRegArgs = 4;

/// Lowers one IR function (which must be phi-grouped, verified IR) to
/// pre-RA machine IR.
MFunction selectInstructions(const Function &F);

/// Lowers a whole module.
MModule selectModule(const Module &M);

} // namespace wario

#endif // WARIO_BACKEND_ISEL_H
