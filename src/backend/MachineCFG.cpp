#include "backend/MachineCFG.h"

#include <vector>

using namespace wario;

/// Machine-loop depth per block: back edges found via dominators computed
/// with a dense iterative bitset algorithm (block counts are small).
std::vector<unsigned> wario::computeMachineLoopDepth(const MFunction &F) {
  unsigned N = unsigned(F.Blocks.size());
  std::vector<std::vector<int>> Preds(N);
  for (unsigned B = 0; B != N; ++B)
    for (int S : F.successors(int(B)))
      Preds[S].push_back(int(B));

  // Dom[b] = bitset of blocks dominating b.
  std::vector<std::vector<bool>> Dom(N, std::vector<bool>(N, true));
  Dom[0].assign(N, false);
  Dom[0][0] = true;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B = 1; B != N; ++B) {
      std::vector<bool> New(N, true);
      if (Preds[B].empty())
        New.assign(N, false); // Unreachable.
      for (int P : Preds[B])
        for (unsigned K = 0; K != N; ++K)
          New[K] = New[K] && Dom[P][K];
      New[B] = true;
      if (New != Dom[B]) {
        Dom[B] = std::move(New);
        Changed = true;
      }
    }
  }

  // Natural loop bodies per back edge; depth = number of enclosing loops.
  std::vector<unsigned> Depth(N, 0);
  for (unsigned U = 0; U != N; ++U) {
    for (int H : F.successors(int(U))) {
      if (!Dom[U][H])
        continue; // Not a back edge.
      // Collect the natural loop of U -> H.
      std::vector<bool> InLoop(N, false);
      InLoop[H] = true;
      std::vector<int> Work{int(U)};
      while (!Work.empty()) {
        int B = Work.back();
        Work.pop_back();
        if (InLoop[B])
          continue;
        InLoop[B] = true;
        for (int P : Preds[B])
          Work.push_back(P);
      }
      for (unsigned B = 0; B != N; ++B)
        if (InLoop[B])
          ++Depth[B];
    }
  }
  return Depth;
}

