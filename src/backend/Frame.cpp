#include "backend/Frame.h"

#include <bit>

using namespace wario;

namespace {

MInst makeCheckpoint(CheckpointCause Cause) {
  MInst I;
  I.Op = MOp::Checkpoint;
  I.Cause = Cause;
  return I;
}

MInst makeSpAdjust(int64_t Imm) {
  MInst I;
  I.Op = MOp::SpAdjust;
  I.Imm = Imm;
  return I;
}

} // namespace

void wario::lowerFrame(MFunction &F, const FrameOptions &Opts) {
  assert(F.PostRA && !F.FrameLowered && "frame lowering order violated");

  // --- Slot layout: spills first, then allocas, from the post-prologue SP.
  uint32_t SpillArea = 0, AllocaArea = 0;
  for (const FrameSlot &S : F.Slots)
    (S.SlotKind == FrameSlot::Kind::Spill ? SpillArea : AllocaArea) +=
        S.SizeBytes;
  uint32_t SpillCursor = 0, AllocaCursor = SpillArea;
  for (FrameSlot &S : F.Slots) {
    if (S.SlotKind == FrameSlot::Kind::Spill) {
      S.Offset = int32_t(SpillCursor);
      SpillCursor += S.SizeBytes;
    } else {
      S.Offset = int32_t(AllocaCursor);
      AllocaCursor += S.SizeBytes;
    }
  }
  F.FrameSize = SpillArea + AllocaArea;

  // --- Saved registers: callee-saved in use, plus lr when we call out.
  bool HasCalls = F.countOpcode(MOp::Bl) != 0;
  uint16_t PushMask = F.SavedRegMask;
  if (HasCalls)
    PushMask |= uint16_t(1u << LR);

  // --- Prologue (entry block front).
  {
    std::vector<MInst> Pro;
    if (Opts.InsertCheckpoints)
      Pro.push_back(makeCheckpoint(CheckpointCause::FunctionEntry));
    if (PushMask) {
      MInst Push;
      Push.Op = MOp::Push;
      Push.RegList = PushMask;
      Pro.push_back(Push);
    }
    if (F.FrameSize)
      Pro.push_back(makeSpAdjust(-int64_t(F.FrameSize)));
    auto &Entry = F.Blocks[0].Insts;
    Entry.insert(Entry.begin(), Pro.begin(), Pro.end());
  }

  // --- Epilogs: rewrite every Ret.
  for (MBasicBlock &BB : F.Blocks) {
    std::vector<MInst> Out;
    for (MInst I : BB.Insts) {
      if (I.Op != MOp::Ret) {
        Out.push_back(std::move(I));
        continue;
      }
      if (!Opts.InsertCheckpoints) {
        // Uninstrumented build: release the stack and return.
        if (F.FrameSize)
          Out.push_back(makeSpAdjust(F.FrameSize));
        if (PushMask) {
          MInst Loads;
          Loads.Op = MOp::PopLoads;
          Loads.RegList = PushMask;
          Out.push_back(Loads);
          Out.push_back(
              makeSpAdjust(4 * std::popcount(unsigned(PushMask))));
        }
        Out.push_back(I);
        continue;
      }
      if (F.FrameSize == 0 && PushMask == 0) {
        // Stack-free leaf: no pops to convert, but the exit checkpoint is
        // still mandatory — it closes the region containing this
        // function's reads, so a caller's write after the return cannot
        // complete a WAR with them. (Dropping it is unsound: the
        // middle-end analysis is intraprocedural and counts every call
        // as a full region cut.)
        Out.push_back(makeCheckpoint(CheckpointCause::FunctionExit));
        Out.push_back(I);
        continue;
      }
      if (!Opts.EpilogOptimizer) {
        // Basic epilog: checkpoint before every SP-raising step.
        if (SpillArea) {
          Out.push_back(makeCheckpoint(CheckpointCause::FunctionExit));
          Out.push_back(makeSpAdjust(SpillArea));
        }
        if (AllocaArea) {
          Out.push_back(makeCheckpoint(CheckpointCause::FunctionExit));
          Out.push_back(makeSpAdjust(AllocaArea));
        }
        if (PushMask) {
          MInst Loads;
          Loads.Op = MOp::PopLoads;
          Loads.RegList = PushMask;
          Out.push_back(Loads);
          // Idempotent pop conversion: loads, checkpoint, then adjust.
          Out.push_back(makeCheckpoint(CheckpointCause::FunctionExit));
          Out.push_back(
              makeSpAdjust(4 * std::popcount(unsigned(PushMask))));
        }
        Out.push_back(I);
        continue;
      }
      // Optimized epilog: interrupts held, all reads done, one
      // checkpoint, then the (now write-free) stack release.
      MInst Mask;
      Mask.Op = MOp::IntMask;
      Out.push_back(Mask);
      if (F.FrameSize)
        Out.push_back(makeSpAdjust(F.FrameSize));
      int64_t PopBytes = 0;
      if (PushMask) {
        MInst Loads;
        Loads.Op = MOp::PopLoads;
        Loads.RegList = PushMask;
        Out.push_back(Loads);
        PopBytes = 4 * std::popcount(unsigned(PushMask));
      }
      Out.push_back(makeCheckpoint(CheckpointCause::FunctionExit));
      if (PopBytes)
        Out.push_back(makeSpAdjust(PopBytes));
      MInst Unmask;
      Unmask.Op = MOp::IntUnmask;
      Out.push_back(Unmask);
      Out.push_back(I);
    }
    BB.Insts = std::move(Out);
  }

  F.FrameLowered = true;
}
