//===----------------------------------------------------------------------===//
///
/// \file
/// Small machine-CFG analyses shared by the register allocator and the
/// spill checkpoint inserter.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_BACKEND_MACHINECFG_H
#define WARIO_BACKEND_MACHINECFG_H

#include "backend/MIR.h"

namespace wario {

/// Natural-loop nesting depth per block (0 = outside any loop), computed
/// from dominator-identified back edges with a dense iterative algorithm
/// (machine functions are small).
std::vector<unsigned> computeMachineLoopDepth(const MFunction &F);

} // namespace wario

#endif // WARIO_BACKEND_MACHINECFG_H
