//===----------------------------------------------------------------------===//
///
/// \file
/// Machine IR for the modeled Thumb-2 / Cortex-M target.
///
/// The back end lowers WARio IR to this register-machine form: virtual
/// registers before allocation, physical registers r0-r12/sp/lr/pc after.
/// The emulator executes MIR directly; every instruction carries enough
/// payload (access sizes, frame slots, checkpoint causes) for the cycle
/// model, the code-size model, and the WAR monitor.
///
/// Deviations from real Thumb-2, chosen to keep the model tractable and
/// documented in DESIGN.md: compares materialize a 0/1 register instead of
/// NZCV flags; conditional execution uses an explicit select; rem is
/// expanded to div+mul+sub like on real Cortex-M (no hardware remainder).
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_BACKEND_MIR_H
#define WARIO_BACKEND_MIR_H

#include "ir/Module.h"

namespace wario {

/// Physical registers of the modeled core.
enum PReg : uint8_t {
  R0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10, R11, R12,
  SP, LR, PC,
  NumPRegs,
};

/// r0..r9 are allocatable; r10-r12 are reserved as spill scratch (a
/// select needs up to three reloaded sources).
inline constexpr unsigned NumAllocatable = 10;
inline constexpr PReg ScratchRegs[3] = {R10, R11, R12};
/// r0-r3 and r12 are clobbered by calls (AAPCS caller-saved).
inline constexpr uint16_t CallerSavedMask =
    (1u << R0) | (1u << R1) | (1u << R2) | (1u << R3) | (1u << R12);

const char *pregName(PReg R);

/// Machine opcodes.
enum class MOp : uint8_t {
  MovImm,    ///< dst = imm.
  MovGlobal, ///< dst = address of Global.
  Mov,       ///< dst = src0.
  // Three-address ALU: dst = src0 op src1.
  Add, Sub, Mul, UDiv, SDiv, And, Orr, Eor, Lsl, Lsr, Asr,
  AddImm,    ///< dst = src0 + imm.
  SetCond,   ///< dst = (src0 PRED src1) ? 1 : 0.
  SelectR,   ///< dst = src0 ? src1 : src2 (IT-block conditional move).
  Ldr,       ///< dst = mem[src0 + imm], Size/Signed.
  Str,       ///< mem[src1 + imm] = src0, Size.
  LdrSlot,   ///< dst = mem[sp + offsetof(Slot)] (spill reload).
  StrSlot,   ///< mem[sp + offsetof(Slot)] = src0 (spill store).
  FrameAddr, ///< dst = sp + offsetof(Slot) (alloca address).
  CallPseudo,///< Pre-expansion call: CallArgs vregs, dst = result vreg.
  ArgGet,    ///< Pre-expansion: dst = incoming argument #Imm (in r0-r3).
  Bl,        ///< Branch-and-link to Callee (args already in r0-r3).
  B,         ///< Unconditional branch to Target[0].
  CBr,       ///< if (src0 != 0) goto Target[0] else Target[1].
  Ret,       ///< Return via lr; result (if any) in r0.
  Push,      ///< Push RegList (descending), sp -= 4*n.
  Pop,       ///< Pop RegList into registers, sp += 4*n.
  PopLoads,  ///< The loads of a converted pop; sp unchanged.
  SpAdjust,  ///< sp += imm (negative allocates).
  Checkpoint,///< Save registers to NVM (double-buffered); Cause payload.
  Out,       ///< Write src0 to the output port.
  IntMask,   ///< PRIMASK=1: hold pending interrupts.
  IntUnmask, ///< PRIMASK=0: deliver pending interrupts.
  Nop,
};

const char *mopName(MOp Op);

/// One machine instruction. Register fields hold virtual register indices
/// before allocation and PReg values afterwards (MFunction::PostRA says
/// which). -1 means "none".
struct MInst {
  MOp Op = MOp::Nop;
  int Dst = -1;
  int Src[3] = {-1, -1, -1};
  int64_t Imm = 0;
  const GlobalVariable *Global = nullptr;
  uint8_t Size = 4;
  bool Signed = false;
  CmpPred Pred = CmpPred::EQ;
  const Function *Callee = nullptr; ///< Valid until the link step.
  int CalleeIdx = -1;               ///< Resolved by the link step.
  int Target[2] = {-1, -1};
  CheckpointCause Cause = CheckpointCause::MiddleEndWar;
  uint16_t RegList = 0;
  int Slot = -1;
  /// Str only: speculative-strategy undo-logged WAR write (lowered from
  /// Instruction::isSpecLogged; the emulator journals the old value).
  bool Logged = false;
  std::vector<int> CallArgs;

  bool isTerminator() const {
    return Op == MOp::B || Op == MOp::CBr || Op == MOp::Ret;
  }
  /// Modeled encoding size in bytes (Thumb-2-style 2/4-byte mix).
  unsigned sizeInBytes() const;
};

/// A machine basic block; branch targets are indices into the parent
/// MFunction's block vector.
struct MBasicBlock {
  std::string Name;
  std::vector<MInst> Insts;
};

/// A frame slot: either an alloca carried over from the IR or a register
/// spill created by the allocator.
struct FrameSlot {
  enum class Kind { Alloca, Spill };
  Kind SlotKind;
  uint32_t SizeBytes;
  /// Byte offset from the post-prologue SP; set by frame lowering.
  int32_t Offset = -1;
};

/// A machine function.
struct MFunction {
  std::string Name;
  std::vector<MBasicBlock> Blocks;
  unsigned NumVRegs = 0;
  bool PostRA = false;
  bool FrameLowered = false;
  std::vector<FrameSlot> Slots;
  uint32_t FrameSize = 0;       ///< Bytes of slot storage (after layout).
  uint16_t SavedRegMask = 0;    ///< Callee-saved registers pushed.

  /// Successor block indices of block \p B.
  std::vector<int> successors(int B) const {
    std::vector<int> S;
    if (Blocks[B].Insts.empty())
      return S;
    const MInst &T = Blocks[B].Insts.back();
    for (int I = 0; I != 2; ++I)
      if (T.Target[I] >= 0 &&
          (T.Op == MOp::B || T.Op == MOp::CBr))
        S.push_back(T.Target[I]);
    return S;
  }

  unsigned countOpcode(MOp Op) const {
    unsigned N = 0;
    for (const MBasicBlock &BB : Blocks)
      for (const MInst &I : BB.Insts)
        if (I.Op == Op)
          ++N;
    return N;
  }

  /// Modeled .text contribution in bytes.
  unsigned sizeInBytes() const {
    unsigned N = 0;
    for (const MBasicBlock &BB : Blocks)
      for (const MInst &I : BB.Insts)
        N += I.sizeInBytes();
    return N;
  }
};

/// A lowered, linked program. After runBackend's link step the module is
/// fully self-contained: global addresses are resolved into immediates,
/// call targets into function indices, and the initialized data segment
/// is captured as a byte image — the IR module may be destroyed.
struct MModule {
  std::string Name;
  std::vector<MFunction> Functions;
  /// One past the last initialized data byte (the data segment image).
  uint32_t DataEnd = 0;
  std::vector<uint8_t> InitImage;
  /// Checkpoint strategy this module was compiled for; the emulator
  /// selects the matching runtime (journal / undo log / none).
  CheckpointStrategy Strat = CheckpointStrategy::Idempotent;
  /// Differential negative control (see PipelineOptions::DiffFullRollback).
  bool DiffFullRollback = true;

  MFunction *getFunction(const std::string &FnName) {
    for (MFunction &F : Functions)
      if (F.Name == FnName)
        return &F;
    return nullptr;
  }
  const MFunction *getFunction(const std::string &FnName) const {
    for (const MFunction &F : Functions)
      if (F.Name == FnName)
        return &F;
    return nullptr;
  }

  unsigned textSizeBytes() const {
    unsigned N = 0;
    for (const MFunction &F : Functions)
      N += F.sizeInBytes();
    return N;
  }
};

/// Renders a machine function as text (for tests and debugging).
std::string printMFunction(const MFunction &F);
std::string printMModule(const MModule &M);

} // namespace wario

#endif // WARIO_BACKEND_MIR_H
