//===----------------------------------------------------------------------===//
///
/// \file
/// Module: the whole-program unit the WARio pipeline operates on. Mirrors
/// the paper's front end, which links all translation units into a single
/// combined IR before any transformation runs.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_IR_MODULE_H
#define WARIO_IR_MODULE_H

#include "ir/Function.h"

#include <map>
#include <memory>

namespace wario {

/// Owns all functions, global variables, and uniqued integer constants of
/// one program.
class Module {
public:
  explicit Module(std::string Name) : Name(std::move(Name)) {}
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  const std::string &getName() const { return Name; }

  // -- Functions ---------------------------------------------------------------
  Function *createFunction(std::string FnName, unsigned NumParams,
                           bool ReturnsVal);
  Function *getFunction(const std::string &FnName) const;
  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }

  // -- Globals ------------------------------------------------------------------
  GlobalVariable *createGlobal(std::string GlobalName, uint32_t SizeBytes,
                               std::vector<uint8_t> Init = {});
  GlobalVariable *getGlobal(const std::string &GlobalName) const;
  const std::vector<std::unique_ptr<GlobalVariable>> &globals() const {
    return Globals;
  }

  // -- Constants -----------------------------------------------------------------
  /// Returns the uniqued Constant for \p V.
  Constant *getConstant(int32_t V);
  /// All uniqued constants, ordered by value (cloneModule walks these).
  const std::map<int32_t, std::unique_ptr<Constant>> &constants() const {
    return Constants;
  }

private:
  std::string Name;
  // Destruction order matters: functions reference constants and globals
  // through instruction use lists, so they must be destroyed first (members
  // are destroyed in reverse declaration order).
  std::map<int32_t, std::unique_ptr<Constant>> Constants;
  std::vector<std::unique_ptr<GlobalVariable>> Globals;
  std::vector<std::unique_ptr<Function>> Functions;
};

} // namespace wario

#endif // WARIO_IR_MODULE_H
