//===----------------------------------------------------------------------===//
///
/// \file
/// Module: the whole-program unit the WARio pipeline operates on. Mirrors
/// the paper's front end, which links all translation units into a single
/// combined IR before any transformation runs.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_IR_MODULE_H
#define WARIO_IR_MODULE_H

#include "ir/Function.h"
#include "ir/IRContext.h"

#include <map>
#include <memory>
#include <vector>

namespace wario {

/// Owns all functions, global variables, and interned integer constants of
/// one program — physically, everything lives in the IRContext's arenas,
/// and dropping the Module releases those arenas wholesale (no per-node
/// destruction).
class Module {
public:
  explicit Module(std::string Name)
      : Name(std::move(Name)), Ctx(std::make_unique<IRContext>()) {}
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  const std::string &getName() const { return Name; }

  IRContext &getContext() const { return *Ctx; }

  // -- Functions ---------------------------------------------------------------
  Function *createFunction(std::string FnName, unsigned NumParams,
                           bool ReturnsVal);
  Function *getFunction(const std::string &FnName) const;
  const std::vector<Function *> &functions() const { return Functions; }

  // -- Globals ------------------------------------------------------------------
  GlobalVariable *createGlobal(std::string GlobalName, uint32_t SizeBytes,
                               const std::vector<uint8_t> &Init = {});
  GlobalVariable *getGlobal(const std::string &GlobalName) const;
  const std::vector<GlobalVariable *> &globals() const { return Globals; }

  // -- Constants -----------------------------------------------------------------
  /// Returns the interned Constant for \p V.
  Constant *getConstant(int32_t V) { return Ctx->getConstant(V); }
  /// All interned constants, ordered by value (cloneModule walks these).
  const std::map<int32_t, Constant *> &constants() const {
    return Ctx->constants();
  }

private:
  friend struct ModuleCloner;

  std::string Name;
  std::unique_ptr<IRContext> Ctx;
  std::vector<GlobalVariable *> Globals;
  std::vector<Function *> Functions;
};

} // namespace wario

#endif // WARIO_IR_MODULE_H
