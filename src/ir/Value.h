//===----------------------------------------------------------------------===//
///
/// \file
/// Value hierarchy for the WARio intermediate representation.
///
/// The IR models a 32-bit embedded target (ARM Cortex-M class): every SSA
/// value is a 32-bit integer, and pointers are plain 32-bit addresses.
/// Memory accesses carry an explicit access size (1, 2 or 4 bytes) instead
/// of the values being typed. This matches what the WARio transformations
/// need: they reason about *memory dependencies*, not about types.
///
/// Every Value lives in a bump arena owned by its module's IRContext and
/// is trivially destructible: names are pointers into the process-wide
/// string interner, and all growable lists are ArenaVecs. That layout is
/// what lets cloneModule bulk-copy arenas and lets module teardown be a
/// handful of slab releases.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_IR_VALUE_H
#define WARIO_IR_VALUE_H

#include "ir/Type.h"
#include "support/Arena.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace wario {

class Instruction;

/// Base class of everything an instruction can reference as an operand.
///
/// Uses hand-rolled LLVM-style RTTI: each subclass has a fixed ValueKind,
/// and isa<>/cast<>/dyn_cast<> dispatch on it.
class Value {
public:
  enum class ValueKind : uint8_t {
    Constant,
    GlobalVariable,
    Argument,
    Instruction,
  };

  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;

  ValueKind getKind() const { return Kind; }
  const Type *getType() const { return Ty; }

  const std::string &getName() const { return *Name; }
  void setName(std::string N) { Name = &internedName(std::move(N)); }

  /// Whether this value maintains a user list. Function-local values
  /// (instructions, arguments) do; constants and globals are shared across
  /// functions and do not — parallel per-function passes would race on the
  /// list, and no transformation needs it.
  bool tracksUsers() const {
    return Kind == ValueKind::Instruction || Kind == ValueKind::Argument;
  }

  /// All instructions that use this value as an operand. An instruction
  /// appears once per use (so it can appear multiple times). Only valid
  /// for values that track users; passes iterate this list, and its order
  /// is part of the deterministic-compile contract.
  const ArenaVec<Instruction *> &users() const {
    assert(tracksUsers() && "this value kind does not track users");
    return Users;
  }
  bool hasUsers() const { return !Users.empty(); }

  /// Rewrites every use of this value to use \p New instead. Only valid
  /// for values that track users.
  void replaceAllUsesWith(Value *New);

protected:
  Value(ValueKind K, const Type *Ty)
      : Kind(K), Ty(Ty), Name(&internedName(std::string())) {}

  void setType(const Type *T) { Ty = T; }

private:
  friend class Instruction;
  friend struct ModuleCloner;

  void addUser(Instruction *I);
  void removeUser(Instruction *I);

  ValueKind Kind;
  const Type *Ty;
  const std::string *Name;
  ArenaVec<Instruction *> Users;
};

/// LLVM-style RTTI helpers.
template <typename To> bool isa(const Value *V) {
  return To::classof(V);
}
template <typename To> To *cast(Value *V) {
  assert(V && isa<To>(V) && "cast to incompatible value kind");
  return static_cast<To *>(V);
}
template <typename To> const To *cast(const Value *V) {
  assert(V && isa<To>(V) && "cast to incompatible value kind");
  return static_cast<const To *>(V);
}
template <typename To> To *dyn_cast(Value *V) {
  return V && isa<To>(V) ? static_cast<To *>(V) : nullptr;
}
template <typename To> const To *dyn_cast(const Value *V) {
  return V && isa<To>(V) ? static_cast<const To *>(V) : nullptr;
}

/// A 32-bit integer constant. Constants are interned per IRContext: equal
/// values are pointer-equal within a module.
class Constant : public Value {
public:
  Constant(const Type *Ty, int32_t V)
      : Value(ValueKind::Constant, Ty), Val(V) {}

  int32_t getValue() const { return Val; }
  uint32_t getZExtValue() const { return static_cast<uint32_t>(Val); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Constant;
  }

private:
  int32_t Val;
};

/// A module-level variable living in non-volatile main memory.
///
/// Its value as an SSA operand is its (link-time) address, so its SSA type
/// is ptr; the storage shape is an interned array type. The initializer is
/// a raw byte image; zero-initialized variables keep \c Init empty and use
/// \c SizeBytes.
class GlobalVariable : public Value {
public:
  GlobalVariable(const Type *PtrTy, const Type *ValueTy, std::string Name)
      : Value(ValueKind::GlobalVariable, PtrTy), ValueTy(ValueTy) {
    setName(std::move(Name));
  }

  uint32_t getSizeBytes() const { return ValueTy->getArrayBytes(); }
  /// The interned array type describing this global's storage.
  const Type *getValueType() const { return ValueTy; }
  const ArenaVec<uint8_t> &getInit() const { return Init; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::GlobalVariable;
  }

private:
  friend class Module;
  friend struct ModuleCloner;

  const Type *ValueTy;
  ArenaVec<uint8_t> Init;
};

class Function;

/// A formal parameter of a Function.
class Argument : public Value {
public:
  Argument(const Type *Ty, Function *Parent, unsigned Index)
      : Value(ValueKind::Argument, Ty), Parent(Parent), Index(Index) {}

  Function *getParent() const { return Parent; }
  unsigned getIndex() const { return Index; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Argument;
  }

private:
  friend struct ModuleCloner;

  Function *Parent;
  unsigned Index;
};

} // namespace wario

#endif // WARIO_IR_VALUE_H
