//===----------------------------------------------------------------------===//
///
/// \file
/// Value hierarchy for the WARio intermediate representation.
///
/// The IR models a 32-bit embedded target (ARM Cortex-M class): every SSA
/// value is a 32-bit integer, and pointers are plain 32-bit addresses.
/// Memory accesses carry an explicit access size (1, 2 or 4 bytes) instead
/// of the values being typed. This matches what the WARio transformations
/// need: they reason about *memory dependencies*, not about types.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_IR_VALUE_H
#define WARIO_IR_VALUE_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace wario {

class Instruction;

/// Base class of everything an instruction can reference as an operand.
///
/// Uses hand-rolled LLVM-style RTTI: each subclass has a fixed ValueKind,
/// and isa<>/cast<>/dyn_cast<> dispatch on it.
class Value {
public:
  enum class ValueKind : uint8_t {
    Constant,
    GlobalVariable,
    Argument,
    Instruction,
  };

  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;
  virtual ~Value() = default;

  ValueKind getKind() const { return Kind; }

  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  /// All instructions that use this value as an operand. An instruction
  /// appears once per use (so it can appear multiple times).
  const std::vector<Instruction *> &users() const { return Users; }
  bool hasUsers() const { return !Users.empty(); }

  /// Rewrites every use of this value to use \p New instead.
  void replaceAllUsesWith(Value *New);

  /// Replaces the user list with \p Order, which must be a permutation of
  /// the current list (asserted). Only cloneModule uses this, to reproduce
  /// the source module's historical user order — passes iterate user lists,
  /// so clones must present them in the same order to compile identically.
  void setUserOrder(std::vector<Instruction *> Order);

protected:
  explicit Value(ValueKind K) : Kind(K) {}

private:
  friend class Instruction;

  void addUser(Instruction *I) { Users.push_back(I); }
  void removeUser(Instruction *I);

  ValueKind Kind;
  std::string Name;
  std::vector<Instruction *> Users;
};

/// LLVM-style RTTI helpers.
template <typename To> bool isa(const Value *V) {
  return To::classof(V);
}
template <typename To> To *cast(Value *V) {
  assert(V && isa<To>(V) && "cast to incompatible value kind");
  return static_cast<To *>(V);
}
template <typename To> const To *cast(const Value *V) {
  assert(V && isa<To>(V) && "cast to incompatible value kind");
  return static_cast<const To *>(V);
}
template <typename To> To *dyn_cast(Value *V) {
  return V && isa<To>(V) ? static_cast<To *>(V) : nullptr;
}
template <typename To> const To *dyn_cast(const Value *V) {
  return V && isa<To>(V) ? static_cast<const To *>(V) : nullptr;
}

/// A 32-bit integer constant. Constants are uniqued per Module.
class Constant : public Value {
public:
  explicit Constant(int32_t V) : Value(ValueKind::Constant), Val(V) {}

  int32_t getValue() const { return Val; }
  uint32_t getZExtValue() const { return static_cast<uint32_t>(Val); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Constant;
  }

private:
  int32_t Val;
};

/// A module-level variable living in non-volatile main memory.
///
/// Its value as an SSA operand is its (link-time) address. The initializer
/// is a raw byte image; zero-initialized variables keep \c Init empty and
/// use \c SizeBytes.
class GlobalVariable : public Value {
public:
  GlobalVariable(std::string Name, uint32_t SizeBytes,
                 std::vector<uint8_t> Init = {})
      : Value(ValueKind::GlobalVariable), SizeBytes(SizeBytes),
        Init(std::move(Init)) {
    assert(this->Init.empty() || this->Init.size() == SizeBytes);
    setName(std::move(Name));
  }

  uint32_t getSizeBytes() const { return SizeBytes; }
  const std::vector<uint8_t> &getInit() const { return Init; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::GlobalVariable;
  }

private:
  uint32_t SizeBytes;
  std::vector<uint8_t> Init;
};

class Function;

/// A formal parameter of a Function.
class Argument : public Value {
public:
  Argument(Function *Parent, unsigned Index)
      : Value(ValueKind::Argument), Parent(Parent), Index(Index) {}

  Function *getParent() const { return Parent; }
  unsigned getIndex() const { return Index; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Argument;
  }

private:
  Function *Parent;
  unsigned Index;
};

} // namespace wario

#endif // WARIO_IR_VALUE_H
