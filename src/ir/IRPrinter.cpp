#include "ir/IRPrinter.h"

#include "ir/Module.h"

#include <sstream>
#include <unordered_map>

using namespace wario;

namespace {

/// Function-unique block labels: block names may repeat after cloning
/// transformations, so repeated names get a "_N" disambiguator.
using BlockLabels = std::unordered_map<const BasicBlock *, std::string>;

BlockLabels makeLabels(const Function &F) {
  BlockLabels Labels;
  std::unordered_map<std::string, unsigned> Seen;
  for (const BasicBlock *BB : F) {
    unsigned N = Seen[BB->getName()]++;
    Labels[BB] = N == 0 ? BB->getName()
                        : BB->getName() + "_" + std::to_string(N);
  }
  return Labels;
}

std::string valueRef(const Value *V) {
  if (const auto *C = dyn_cast<Constant>(V))
    return std::to_string(C->getValue());
  if (const auto *G = dyn_cast<GlobalVariable>(V))
    return "@" + G->getName();
  if (const auto *A = dyn_cast<Argument>(V))
    return "%" + A->getName();
  const auto *I = cast<Instruction>(V);
  std::string Name = I->getName().empty() ? "v" : I->getName();
  return "%" + Name + "." + std::to_string(I->getId());
}

void printInst(std::ostringstream &OS, const Instruction &I,
               const BlockLabels *Labels = nullptr) {
  auto Label = [&](const BasicBlock *BB) {
    if (Labels) {
      auto It = Labels->find(BB);
      if (It != Labels->end())
        return It->second;
    }
    return BB->getName();
  };
  if (I.producesValue())
    OS << valueRef(&I) << " = ";
  OS << opcodeName(I.getOpcode());

  switch (I.getOpcode()) {
  case Opcode::Alloca:
    OS << ' ' << I.getAllocaSize();
    return;
  case Opcode::Load:
    OS << 'i' << unsigned(I.getAccessSize()) * 8
       << (I.getAccessSize() < 4 && I.isSignedLoad() ? "s" : "") << ' '
       << valueRef(I.getOperand(0));
    return;
  case Opcode::Store:
    OS << 'i' << unsigned(I.getAccessSize()) * 8 << ' '
       << valueRef(I.getOperand(0)) << ", " << valueRef(I.getOperand(1));
    if (I.isSpecLogged())
      OS << " !log"; // Speculative-strategy undo-logged WAR write.
    return;
  case Opcode::Gep:
    OS << ' ' << valueRef(I.getGepBase());
    if (Value *Idx = I.getGepIndex())
      OS << " + " << valueRef(Idx) << " * " << I.getGepScale();
    if (I.getGepOffset() != 0)
      OS << " + " << I.getGepOffset();
    return;
  case Opcode::ICmp:
    OS << ' ' << predName(I.getPredicate()) << ' '
       << valueRef(I.getOperand(0)) << ", " << valueRef(I.getOperand(1));
    return;
  case Opcode::Call: {
    OS << " @" << I.getCallee()->getName() << '(';
    for (unsigned J = 0, E = I.getNumOperands(); J != E; ++J) {
      if (J)
        OS << ", ";
      OS << valueRef(I.getOperand(J));
    }
    OS << ')';
    return;
  }
  case Opcode::Br:
    OS << ' ' << valueRef(I.getOperand(0)) << ", "
       << Label(I.getBlockOperand(0)) << ", "
       << Label(I.getBlockOperand(1));
    return;
  case Opcode::Jmp:
    OS << ' ' << Label(I.getBlockOperand(0));
    return;
  case Opcode::Phi: {
    for (unsigned J = 0, E = I.getNumOperands(); J != E; ++J) {
      OS << (J ? ", " : " ") << '[' << valueRef(I.getOperand(J)) << ", "
         << Label(I.getBlockOperand(J)) << ']';
    }
    return;
  }
  case Opcode::Checkpoint:
    OS << " (" << checkpointCauseName(I.getCheckpointCause()) << ')';
    return;
  default: {
    for (unsigned J = 0, E = I.getNumOperands(); J != E; ++J)
      OS << (J ? ", " : " ") << valueRef(I.getOperand(J));
    return;
  }
  }
}

} // namespace

std::string wario::printInstruction(const Instruction &I) {
  std::ostringstream OS;
  printInst(OS, I);
  return OS.str();
}

std::string wario::printFunction(const Function &F) {
  std::ostringstream OS;
  OS << "func @" << F.getName() << '(';
  for (unsigned I = 0, E = F.getNumParams(); I != E; ++I) {
    if (I)
      OS << ", ";
    OS << '%' << F.getArg(I)->getName();
  }
  OS << ')' << (F.returnsValue() ? " -> i32" : "") << " {\n";
  BlockLabels Labels = makeLabels(F);
  for (const BasicBlock *BB : F) {
    OS << Labels[BB] << ":\n";
    for (const Instruction *I : *BB) {
      OS << "  ";
      printInst(OS, *I, &Labels);
      OS << '\n';
    }
  }
  OS << "}\n";
  return OS.str();
}

std::string wario::printModule(const Module &M) {
  std::ostringstream OS;
  for (const auto &G : M.globals())
    OS << "global @" << G->getName() << " : " << G->getSizeBytes()
       << " bytes" << (G->getInit().empty() ? " zeroinit" : "") << '\n';
  if (!M.globals().empty())
    OS << '\n';
  for (const auto &F : M.functions()) {
    if (F->isDeclaration()) {
      OS << "declare @" << F->getName() << '\n';
      continue;
    }
    OS << printFunction(*F) << '\n';
  }
  return OS.str();
}
