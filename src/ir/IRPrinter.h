//===----------------------------------------------------------------------===//
///
/// \file
/// Textual printing of the WARio IR, for tests and debugging.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_IR_IRPRINTER_H
#define WARIO_IR_IRPRINTER_H

#include <string>

namespace wario {

class Module;
class Function;
class Instruction;

/// Renders \p M in a textual form similar to LLVM assembly.
std::string printModule(const Module &M);
/// Renders a single function.
std::string printFunction(const Function &F);
/// Renders a single instruction (one line, no newline).
std::string printInstruction(const Instruction &I);

} // namespace wario

#endif // WARIO_IR_IRPRINTER_H
