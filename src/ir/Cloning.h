//===----------------------------------------------------------------------===//
///
/// \file
/// Cloning primitives for the WARio IR: the value-remapping table and
/// single-instruction clone shared by the loop unroller and the inliner,
/// plus whole-module deep copying (cloneModule).
///
/// cloneModule exists so one expensive front-half compilation (frontend +
/// inline + mem2reg + cleanup) can be reused across every pipeline
/// configuration of the experiment matrix: the cached module stays
/// pristine and each configuration mutates its own clone.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_IR_CLONING_H
#define WARIO_IR_CLONING_H

#include "ir/Module.h"

#include <memory>
#include <unordered_map>

namespace wario {

/// Remapping table from original values to their clones. Values absent
/// from the table map to themselves (constants, globals, out-of-region
/// definitions).
class ValueMapper {
public:
  void map(const Value *From, Value *To) { Table[From] = To; }

  Value *lookup(Value *V) const {
    auto It = Table.find(V);
    return It == Table.end() ? V : It->second;
  }

  bool contains(const Value *V) const { return Table.count(V) != 0; }

private:
  std::unordered_map<const Value *, Value *> Table;
};

/// Creates a detached copy of \p I (same opcode, payload, and name) inside
/// \p F's arena, with operands remapped through \p VM. Block operands are
/// copied verbatim; the caller retargets them.
Instruction *cloneInstruction(const Instruction *I, Function &F,
                              const ValueMapper &VM);

/// Copies \p M wholesale: every node of a module lives in its IRContext's
/// bump arenas, so the clone memcpys the arena slabs and rewrites each
/// interior pointer through a slab remap table. The clone shares no
/// Value, BasicBlock, or Function pointer with the source.
///
/// The copy is behaviorally indistinguishable from the source *by
/// construction*: instruction ids, the per-function id counters, block
/// order, and even the order of every value's user list are byte-copies
/// of the original. Passes use ids and user lists for deterministic
/// iteration, so a weaker clone could compile to a different (equally
/// correct) machine module — which would break the experiment harness's
/// guarantee that cached-and-cloned builds emit byte-identical numbers.
std::unique_ptr<Module> cloneModule(const Module &M);

} // namespace wario

#endif // WARIO_IR_CLONING_H
