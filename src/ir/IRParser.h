//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the textual IR form produced by IRPrinter — the
/// printModule/parseModule pair round-trips, which tests exploit for
/// golden transform cases and persistence.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_IR_IRPARSER_H
#define WARIO_IR_IRPARSER_H

#include "ir/Module.h"
#include "support/Diagnostics.h"

#include <memory>

namespace wario {

/// Parses the textual IR in \p Text. Returns null after reporting
/// diagnostics on malformed input.
///
/// Accepted grammar (exactly what printModule emits):
///
///   global @name : SIZE bytes [zeroinit]
///   func @name(%arg0, ...) [-> i32] {
///   label:
///     %v.N = OPCODE operands...
///     ...
///   }
///
/// Note: initializer bytes are not part of the textual form; parsed
/// globals are zero-initialized.
std::unique_ptr<Module> parseModule(const std::string &Text,
                                    DiagnosticEngine &Diags);

} // namespace wario

#endif // WARIO_IR_IRPARSER_H
