//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the core IR classes (Value, Instruction, BasicBlock,
/// Function, Module).
///
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include <algorithm>

using namespace wario;

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

void Value::removeUser(Instruction *I) {
  auto It = std::find(Users.begin(), Users.end(), I);
  assert(It != Users.end() && "removing a user that was never added");
  Users.erase(It);
}

void Value::setUserOrder(std::vector<Instruction *> Order) {
#ifndef NDEBUG
  // Must be a permutation: same users, same per-user multiplicity.
  std::vector<Instruction *> A = Users, B = Order;
  std::sort(A.begin(), A.end());
  std::sort(B.begin(), B.end());
  assert(A == B && "setUserOrder with a non-permutation of the user list");
#endif
  Users = std::move(Order);
}

void Value::replaceAllUsesWith(Value *New) {
  assert(New != this && "replacing a value with itself");
  // Copy: setOperand mutates the user list.
  std::vector<Instruction *> Snapshot = Users;
  for (Instruction *U : Snapshot)
    for (unsigned I = 0, E = U->getNumOperands(); I != E; ++I)
      if (U->getOperand(I) == this)
        U->setOperand(I, New);
  assert(Users.empty() && "stale uses after replaceAllUsesWith");
}

//===----------------------------------------------------------------------===//
// Instruction
//===----------------------------------------------------------------------===//

const char *wario::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Alloca: return "alloca";
  case Opcode::Load: return "load";
  case Opcode::Store: return "store";
  case Opcode::Gep: return "gep";
  case Opcode::Add: return "add";
  case Opcode::Sub: return "sub";
  case Opcode::Mul: return "mul";
  case Opcode::UDiv: return "udiv";
  case Opcode::SDiv: return "sdiv";
  case Opcode::URem: return "urem";
  case Opcode::SRem: return "srem";
  case Opcode::And: return "and";
  case Opcode::Or: return "or";
  case Opcode::Xor: return "xor";
  case Opcode::Shl: return "shl";
  case Opcode::LShr: return "lshr";
  case Opcode::AShr: return "ashr";
  case Opcode::ICmp: return "icmp";
  case Opcode::Select: return "select";
  case Opcode::Call: return "call";
  case Opcode::Out: return "out";
  case Opcode::Checkpoint: return "checkpoint";
  case Opcode::Br: return "br";
  case Opcode::Jmp: return "jmp";
  case Opcode::Ret: return "ret";
  case Opcode::Phi: return "phi";
  }
  return "<bad opcode>";
}

const char *wario::checkpointCauseName(CheckpointCause C) {
  switch (C) {
  case CheckpointCause::MiddleEndWar: return "middle-end-war";
  case CheckpointCause::BackendSpill: return "backend-spill";
  case CheckpointCause::FunctionEntry: return "function-entry";
  case CheckpointCause::FunctionExit: return "function-exit";
  }
  return "<bad cause>";
}

const char *wario::predName(CmpPred P) {
  switch (P) {
  case CmpPred::EQ: return "eq";
  case CmpPred::NE: return "ne";
  case CmpPred::ULT: return "ult";
  case CmpPred::ULE: return "ule";
  case CmpPred::UGT: return "ugt";
  case CmpPred::UGE: return "uge";
  case CmpPred::SLT: return "slt";
  case CmpPred::SLE: return "sle";
  case CmpPred::SGT: return "sgt";
  case CmpPred::SGE: return "sge";
  }
  return "<bad pred>";
}

Instruction::Instruction(Opcode Op, std::vector<Value *> Ops)
    : Value(ValueKind::Instruction), Op(Op) {
  for (Value *V : Ops)
    addOperand(V);
}

Instruction::~Instruction() { dropAllOperands(); }

void Instruction::setOperand(unsigned I, Value *V) {
  assert(I < Operands.size() && "operand index out of range");
  assert(V && "operand must not be null");
  if (Operands[I] == V)
    return;
  if (Operands[I])
    Operands[I]->removeUser(this);
  Operands[I] = V;
  V->addUser(this);
}

void Instruction::addOperand(Value *V) {
  assert(V && "operand must not be null");
  Operands.push_back(V);
  V->addUser(this);
}

void Instruction::removeOperand(unsigned I) {
  assert(I < Operands.size() && "operand index out of range");
  Operands[I]->removeUser(this);
  Operands.erase(Operands.begin() + I);
}

void Instruction::removeBlockOperand(unsigned I) {
  assert(I < BlockOps.size() && "block operand index out of range");
  BlockOps.erase(BlockOps.begin() + I);
  if (Parent)
    Parent->getParent()->invalidateCFG();
}

void Instruction::removePhiIncomingFor(const BasicBlock *Pred) {
  assert(Op == Opcode::Phi && "not a phi");
  for (unsigned I = 0, E = BlockOps.size(); I != E; ++I) {
    if (BlockOps[I] == Pred) {
      removeOperand(I);
      removeBlockOperand(I);
      return;
    }
  }
  assert(false && "phi has no incoming entry for this block");
}

Value *Instruction::getPhiIncomingFor(const BasicBlock *Pred) const {
  assert(Op == Opcode::Phi && "not a phi");
  for (unsigned I = 0, E = BlockOps.size(); I != E; ++I)
    if (BlockOps[I] == Pred)
      return Operands[I];
  assert(false && "phi has no incoming entry for this block");
  return nullptr;
}

void Instruction::dropAllOperands() {
  for (Value *V : Operands)
    if (V)
      V->removeUser(this);
  Operands.clear();
}

void Instruction::setBlockOperand(unsigned I, BasicBlock *BB) {
  assert(I < BlockOps.size() && "block operand index out of range");
  BlockOps[I] = BB;
  if (Parent)
    Parent->getParent()->invalidateCFG();
}

void Instruction::addBlockOperand(BasicBlock *BB) {
  BlockOps.push_back(BB);
  if (Parent)
    Parent->getParent()->invalidateCFG();
}

bool Instruction::producesValue() const {
  switch (Op) {
  case Opcode::Store:
  case Opcode::Out:
  case Opcode::Checkpoint:
  case Opcode::Br:
  case Opcode::Jmp:
  case Opcode::Ret:
    return false;
  case Opcode::Call:
    return Callee && Callee->returnsValue();
  default:
    return true;
  }
}

bool Instruction::mayReadMemory() const {
  // Calls may transitively read; checkpoints only write their own NVM
  // buffer, which no program load can observe.
  return Op == Opcode::Load || Op == Opcode::Call;
}

bool Instruction::mayWriteMemory() const {
  return Op == Opcode::Store || Op == Opcode::Call;
}

Function *Instruction::getFunction() const {
  return Parent ? Parent->getParent() : nullptr;
}

void Instruction::removeFromParent() {
  assert(Parent && "instruction is not attached to a block");
  Parent->remove(this);
}

void Instruction::moveBefore(Instruction *Other) {
  assert(Other->Parent && "target instruction is detached");
  if (Parent)
    removeFromParent();
  BasicBlock *BB = Other->Parent;
  BB->insert(Other->SelfIt, this);
}

void Instruction::moveBeforeTerminator(BasicBlock *BB) {
  if (Parent)
    removeFromParent();
  Instruction *Term = BB->getTerminator();
  if (Term && !isTerminator())
    BB->insert(Term->SelfIt, this);
  else
    BB->push_back(this);
}

//===----------------------------------------------------------------------===//
// BasicBlock
//===----------------------------------------------------------------------===//

BasicBlock::iterator BasicBlock::insert(iterator Pos, Instruction *I) {
  assert(!I->Parent && "instruction already attached to a block");
  I->Parent = this;
  I->SelfIt = Insts.insert(Pos, I);
  if (I->isTerminator())
    Parent->invalidateCFG();
  return I->SelfIt;
}

void BasicBlock::remove(Instruction *I) {
  assert(I->Parent == this && "instruction not attached to this block");
  if (I->isTerminator())
    Parent->invalidateCFG();
  Insts.erase(I->SelfIt);
  I->Parent = nullptr;
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  std::vector<BasicBlock *> Succs;
  if (const Instruction *Term = getTerminator())
    for (unsigned I = 0, E = Term->getNumBlockOperands(); I != E; ++I)
      Succs.push_back(Term->getBlockOperand(I));
  return Succs;
}

const std::vector<BasicBlock *> &BasicBlock::predecessors() const {
  Parent->ensureCFG();
  return Preds;
}

BasicBlock::iterator BasicBlock::firstNonPhi() {
  iterator It = Insts.begin();
  while (It != Insts.end() && (*It)->getOpcode() == Opcode::Phi)
    ++It;
  return It;
}

std::vector<Instruction *> BasicBlock::phis() const {
  std::vector<Instruction *> Result;
  for (Instruction *I : Insts) {
    if (I->getOpcode() != Opcode::Phi)
      break;
    Result.push_back(I);
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Function
//===----------------------------------------------------------------------===//

Function::Function(Module *Parent, std::string Name, unsigned NumParams,
                   bool ReturnsVal)
    : Parent(Parent), Name(std::move(Name)), ReturnsVal(ReturnsVal) {
  for (unsigned I = 0; I != NumParams; ++I) {
    auto Arg = std::make_unique<Argument>(this, I);
    Arg->setName("arg" + std::to_string(I));
    Args.push_back(std::move(Arg));
  }
}

Function::~Function() {
  // Instructions reference each other through use lists; drop all operands
  // first so destruction order does not matter.
  for (auto &I : InstArena)
    I->dropAllOperands();
}

BasicBlock *Function::createBlock(std::string BlockName) {
  auto BB = std::make_unique<BasicBlock>(this, std::move(BlockName));
  BasicBlock *Raw = BB.get();
  BlockArena.push_back(std::move(BB));
  Blocks.push_back(Raw);
  invalidateCFG();
  return Raw;
}

BasicBlock *Function::createBlockAfter(BasicBlock *After,
                                       std::string BlockName) {
  auto BB = std::make_unique<BasicBlock>(this, std::move(BlockName));
  BasicBlock *Raw = BB.get();
  BlockArena.push_back(std::move(BB));
  auto It = std::find(Blocks.begin(), Blocks.end(), After);
  assert(It != Blocks.end() && "anchor block not in this function");
  Blocks.insert(std::next(It), Raw);
  invalidateCFG();
  return Raw;
}

void Function::eraseBlock(BasicBlock *BB) {
  assert(BB->predecessors().empty() && "erasing a block with predecessors");
  // Detach all instructions, dropping operands so no dangling uses remain.
  while (!BB->empty()) {
    Instruction *I = BB->back();
    BB->remove(I);
    I->dropAllOperands();
    assert(!I->hasUsers() && "erased block defines a live value");
  }
  Blocks.remove(BB);
  invalidateCFG();
}

Instruction *Function::adopt(std::unique_ptr<Instruction> I) {
  I->Id = NextInstId++;
  Instruction *Raw = I.get();
  InstArena.push_back(std::move(I));
  return Raw;
}

Instruction *Function::adopt(std::unique_ptr<Instruction> I, unsigned Id) {
  I->Id = Id;
  NextInstId = std::max(NextInstId, Id + 1);
  Instruction *Raw = I.get();
  InstArena.push_back(std::move(I));
  return Raw;
}

void Function::eraseInstruction(Instruction *I) {
  assert(!I->hasUsers() && "erasing an instruction that still has users");
  if (I->getParent())
    I->removeFromParent();
  I->dropAllOperands();
}

void Function::ensureCFG() const {
  if (!CFGDirty)
    return;
  for (BasicBlock *BB : Blocks)
    BB->Preds.clear();
  for (BasicBlock *BB : Blocks)
    if (const Instruction *Term = BB->getTerminator())
      for (unsigned I = 0, E = Term->getNumBlockOperands(); I != E; ++I)
        Term->getBlockOperand(I)->Preds.push_back(BB);
  CFGDirty = false;
}

unsigned Function::countInstructions() const {
  unsigned N = 0;
  for (const BasicBlock *BB : Blocks)
    N += BB->size();
  return N;
}

//===----------------------------------------------------------------------===//
// Module
//===----------------------------------------------------------------------===//

Function *Module::createFunction(std::string FnName, unsigned NumParams,
                                 bool ReturnsVal) {
  assert(!getFunction(FnName) && "duplicate function name");
  Functions.push_back(std::make_unique<Function>(this, std::move(FnName),
                                                 NumParams, ReturnsVal));
  return Functions.back().get();
}

Function *Module::getFunction(const std::string &FnName) const {
  for (const auto &F : Functions)
    if (F->getName() == FnName)
      return F.get();
  return nullptr;
}

GlobalVariable *Module::createGlobal(std::string GlobalName,
                                     uint32_t SizeBytes,
                                     std::vector<uint8_t> Init) {
  assert(!getGlobal(GlobalName) && "duplicate global name");
  Globals.push_back(std::make_unique<GlobalVariable>(std::move(GlobalName),
                                                     SizeBytes,
                                                     std::move(Init)));
  return Globals.back().get();
}

GlobalVariable *Module::getGlobal(const std::string &GlobalName) const {
  for (const auto &G : Globals)
    if (G->getName() == GlobalName)
      return G.get();
  return nullptr;
}

Constant *Module::getConstant(int32_t V) {
  auto It = Constants.find(V);
  if (It != Constants.end())
    return It->second.get();
  auto C = std::make_unique<Constant>(V);
  Constant *Raw = C.get();
  Constants.emplace(V, std::move(C));
  return Raw;
}
