//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the core IR classes (Value, Instruction, BasicBlock,
/// Function, Module, IRContext).
///
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include <algorithm>

using namespace wario;

// Arena teardown never runs destructors, so every arena-resident node must
// be trivially destructible — this is also what entitles cloneModule to
// duplicate them with memcpy.
static_assert(std::is_trivially_destructible_v<Constant>);
static_assert(std::is_trivially_destructible_v<GlobalVariable>);
static_assert(std::is_trivially_destructible_v<Argument>);
static_assert(std::is_trivially_destructible_v<Instruction>);
static_assert(std::is_trivially_destructible_v<BasicBlock>);
static_assert(std::is_trivially_destructible_v<Function>);

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

void Value::addUser(Instruction *I) {
  if (!tracksUsers())
    return;
  Users.push_back(I->arena(), I);
}

void Value::removeUser(Instruction *I) {
  if (!tracksUsers())
    return;
  for (size_t J = 0, E = Users.size(); J != E; ++J) {
    if (Users[J] == I) {
      Users.erase(J); // Order-preserving, like the old vector::erase.
      return;
    }
  }
  assert(false && "removing a user that was never added");
}

void Value::replaceAllUsesWith(Value *New) {
  assert(New != this && "replacing a value with itself");
  assert(tracksUsers() && "value kind does not track users");
  // Copy: setOperand mutates the user list.
  std::vector<Instruction *> Snapshot(Users.begin(), Users.end());
  for (Instruction *U : Snapshot)
    for (unsigned I = 0, E = U->getNumOperands(); I != E; ++I)
      if (U->getOperand(I) == this)
        U->setOperand(I, New);
  assert(Users.empty() && "stale uses after replaceAllUsesWith");
}

//===----------------------------------------------------------------------===//
// Instruction
//===----------------------------------------------------------------------===//

const char *wario::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Alloca: return "alloca";
  case Opcode::Load: return "load";
  case Opcode::Store: return "store";
  case Opcode::Gep: return "gep";
  case Opcode::Add: return "add";
  case Opcode::Sub: return "sub";
  case Opcode::Mul: return "mul";
  case Opcode::UDiv: return "udiv";
  case Opcode::SDiv: return "sdiv";
  case Opcode::URem: return "urem";
  case Opcode::SRem: return "srem";
  case Opcode::And: return "and";
  case Opcode::Or: return "or";
  case Opcode::Xor: return "xor";
  case Opcode::Shl: return "shl";
  case Opcode::LShr: return "lshr";
  case Opcode::AShr: return "ashr";
  case Opcode::ICmp: return "icmp";
  case Opcode::Select: return "select";
  case Opcode::Call: return "call";
  case Opcode::Out: return "out";
  case Opcode::Checkpoint: return "checkpoint";
  case Opcode::Br: return "br";
  case Opcode::Jmp: return "jmp";
  case Opcode::Ret: return "ret";
  case Opcode::Phi: return "phi";
  }
  return "<bad opcode>";
}

const char *wario::checkpointCauseName(CheckpointCause C) {
  switch (C) {
  case CheckpointCause::MiddleEndWar: return "middle-end-war";
  case CheckpointCause::BackendSpill: return "backend-spill";
  case CheckpointCause::FunctionEntry: return "function-entry";
  case CheckpointCause::FunctionExit: return "function-exit";
  }
  return "<bad cause>";
}

const char *wario::checkpointStrategyName(CheckpointStrategy S) {
  switch (S) {
  case CheckpointStrategy::Idempotent: return "idempotent";
  case CheckpointStrategy::Differential: return "differential";
  case CheckpointStrategy::Speculative: return "speculative";
  }
  return "<bad strategy>";
}

bool wario::checkpointStrategyFromName(const std::string &Name,
                                       CheckpointStrategy &Out) {
  static const struct {
    const char *Alias;
    CheckpointStrategy S;
  } Table[] = {
      {"idempotent", CheckpointStrategy::Idempotent},
      {"differential", CheckpointStrategy::Differential},
      {"diff", CheckpointStrategy::Differential},
      {"speculative", CheckpointStrategy::Speculative},
      {"spec", CheckpointStrategy::Speculative},
  };
  for (const auto &Row : Table)
    if (Name == Row.Alias) {
      Out = Row.S;
      return true;
    }
  return false;
}

const char *wario::predName(CmpPred P) {
  switch (P) {
  case CmpPred::EQ: return "eq";
  case CmpPred::NE: return "ne";
  case CmpPred::ULT: return "ult";
  case CmpPred::ULE: return "ule";
  case CmpPred::UGT: return "ugt";
  case CmpPred::UGE: return "uge";
  case CmpPred::SLT: return "slt";
  case CmpPred::SLE: return "sle";
  case CmpPred::SGT: return "sgt";
  case CmpPred::SGE: return "sge";
  }
  return "<bad pred>";
}

namespace {
const Type *typeForOpcode(const IRContext &Ctx, Opcode Op) {
  switch (Op) {
  case Opcode::Store:
  case Opcode::Out:
  case Opcode::Checkpoint:
  case Opcode::Br:
  case Opcode::Jmp:
  case Opcode::Ret:
  case Opcode::Call: // Refined by setCallee.
    return Ctx.getVoidType();
  default:
    return Ctx.getI32Type();
  }
}
} // namespace

Instruction::Instruction(Function *F, Opcode Op)
    : Value(ValueKind::Instruction,
            typeForOpcode(F->getParent()->getContext(), Op)),
      Op(Op), Func(F) {}

Arena &Instruction::arena() const { return Func->localArena(); }

void Instruction::setOperand(unsigned I, Value *V) {
  assert(I < Operands.size() && "operand index out of range");
  assert(V && "operand must not be null");
  if (Operands[I] == V)
    return;
  if (Operands[I])
    Operands[I]->removeUser(this);
  Operands[I] = V;
  V->addUser(this);
}

void Instruction::addOperand(Value *V) {
  assert(V && "operand must not be null");
  Operands.push_back(arena(), V);
  V->addUser(this);
}

void Instruction::removeOperand(unsigned I) {
  assert(I < Operands.size() && "operand index out of range");
  Operands[I]->removeUser(this);
  Operands.erase(I);
}

void Instruction::removeBlockOperand(unsigned I) {
  assert(I < BlockOps.size() && "block operand index out of range");
  BlockOps.erase(I);
  if (Parent)
    Parent->getParent()->invalidateCFG();
}

void Instruction::removePhiIncomingFor(const BasicBlock *Pred) {
  assert(Op == Opcode::Phi && "not a phi");
  for (unsigned I = 0, E = unsigned(BlockOps.size()); I != E; ++I) {
    if (BlockOps[I] == Pred) {
      removeOperand(I);
      removeBlockOperand(I);
      return;
    }
  }
  assert(false && "phi has no incoming entry for this block");
}

Value *Instruction::getPhiIncomingFor(const BasicBlock *Pred) const {
  assert(Op == Opcode::Phi && "not a phi");
  for (unsigned I = 0, E = unsigned(BlockOps.size()); I != E; ++I)
    if (BlockOps[I] == Pred)
      return Operands[I];
  assert(false && "phi has no incoming entry for this block");
  return nullptr;
}

void Instruction::dropAllOperands() {
  for (Value *V : Operands)
    if (V)
      V->removeUser(this);
  Operands.clear();
}

void Instruction::setBlockOperand(unsigned I, BasicBlock *BB) {
  assert(I < BlockOps.size() && "block operand index out of range");
  BlockOps[I] = BB;
  if (Parent)
    Parent->getParent()->invalidateCFG();
}

void Instruction::addBlockOperand(BasicBlock *BB) {
  BlockOps.push_back(arena(), BB);
  if (Parent)
    Parent->getParent()->invalidateCFG();
}

void Instruction::setCallee(Function *F) {
  Callee = F;
  const IRContext &Ctx = Func->getParent()->getContext();
  setType(F && F->returnsValue() ? Ctx.getI32Type() : Ctx.getVoidType());
}

bool Instruction::producesValue() const {
  switch (Op) {
  case Opcode::Store:
  case Opcode::Out:
  case Opcode::Checkpoint:
  case Opcode::Br:
  case Opcode::Jmp:
  case Opcode::Ret:
    return false;
  case Opcode::Call:
    return Callee && Callee->returnsValue();
  default:
    return true;
  }
}

bool Instruction::mayReadMemory() const {
  // Calls may transitively read; checkpoints only write their own NVM
  // buffer, which no program load can observe.
  return Op == Opcode::Load || Op == Opcode::Call;
}

bool Instruction::mayWriteMemory() const {
  return Op == Opcode::Store || Op == Opcode::Call;
}

void Instruction::removeFromParent() {
  assert(Parent && "instruction is not attached to a block");
  Parent->remove(this);
}

void Instruction::moveBefore(Instruction *Other) {
  assert(Other->Parent && "target instruction is detached");
  if (Parent)
    removeFromParent();
  BasicBlock *BB = Other->Parent;
  BB->insert(BasicBlock::iterator(Other, BB), this);
}

void Instruction::moveBeforeTerminator(BasicBlock *BB) {
  if (Parent)
    removeFromParent();
  Instruction *Term = BB->getTerminator();
  if (Term && !isTerminator())
    BB->insert(BasicBlock::iterator(Term, BB), this);
  else
    BB->push_back(this);
}

//===----------------------------------------------------------------------===//
// BasicBlock
//===----------------------------------------------------------------------===//

BasicBlock::iterator BasicBlock::insert(iterator Pos, Instruction *I) {
  assert(!I->Parent && "instruction already attached to a block");
  assert(I->Func == Parent && "instruction belongs to another function");
  Instruction *Next = Pos.Cur;
  Instruction *Prev = Next ? Next->PrevI : ILast;
  I->Parent = this;
  I->PrevI = Prev;
  I->NextI = Next;
  (Prev ? Prev->NextI : IFirst) = I;
  (Next ? Next->PrevI : ILast) = I;
  ++NumInsts;
  if (I->isTerminator())
    Parent->invalidateCFG();
  return iterator(I, this);
}

void BasicBlock::remove(Instruction *I) {
  assert(I->Parent == this && "instruction not attached to this block");
  if (I->isTerminator())
    Parent->invalidateCFG();
  (I->PrevI ? I->PrevI->NextI : IFirst) = I->NextI;
  (I->NextI ? I->NextI->PrevI : ILast) = I->PrevI;
  I->PrevI = I->NextI = nullptr;
  I->Parent = nullptr;
  --NumInsts;
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  std::vector<BasicBlock *> Succs;
  if (const Instruction *Term = getTerminator())
    for (unsigned I = 0, E = Term->getNumBlockOperands(); I != E; ++I)
      Succs.push_back(Term->getBlockOperand(I));
  return Succs;
}

const ArenaVec<BasicBlock *> &BasicBlock::predecessors() const {
  Parent->ensureCFG();
  return Preds;
}

BasicBlock::iterator BasicBlock::firstNonPhi() const {
  iterator It = begin();
  while (It != end() && (*It)->getOpcode() == Opcode::Phi)
    ++It;
  return It;
}

std::vector<Instruction *> BasicBlock::phis() const {
  std::vector<Instruction *> Result;
  for (Instruction *I : *this) {
    if (I->getOpcode() != Opcode::Phi)
      break;
    Result.push_back(I);
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Function
//===----------------------------------------------------------------------===//

Function::Function(Module *Parent, Arena *A, std::string Name,
                   unsigned NumParams, bool ReturnsVal)
    : Parent(Parent), A(A), Name(&internedName(std::move(Name))),
      ReturnsVal(ReturnsVal) {
  const Type *I32 = Parent->getContext().getI32Type();
  for (unsigned I = 0; I != NumParams; ++I) {
    Argument *Arg = A->create<Argument>(I32, this, I);
    Arg->setName("arg" + std::to_string(I));
    Args.push_back(*A, Arg);
  }
}

BasicBlock *Function::createBlock(std::string BlockName) {
  BasicBlock *BB = A->create<BasicBlock>(this, std::move(BlockName));
  AllBlocks.push_back(*A, BB);
  BB->PrevB = BLast;
  (BLast ? BLast->NextB : BFirst) = BB;
  BLast = BB;
  ++NumBlocks;
  invalidateCFG();
  return BB;
}

BasicBlock *Function::createBlockAfter(BasicBlock *After,
                                       std::string BlockName) {
  assert(After && After->Parent == this && "anchor block not in this function");
  BasicBlock *BB = A->create<BasicBlock>(this, std::move(BlockName));
  AllBlocks.push_back(*A, BB);
  BB->PrevB = After;
  BB->NextB = After->NextB;
  (After->NextB ? After->NextB->PrevB : BLast) = BB;
  After->NextB = BB;
  ++NumBlocks;
  invalidateCFG();
  return BB;
}

void Function::eraseBlock(BasicBlock *BB) {
  assert(BB->predecessors().empty() && "erasing a block with predecessors");
  // Detach all instructions, dropping operands so no dangling uses remain.
  while (!BB->empty()) {
    Instruction *I = BB->back();
    BB->remove(I);
    I->dropAllOperands();
    assert(!I->hasUsers() && "erased block defines a live value");
  }
  (BB->PrevB ? BB->PrevB->NextB : BFirst) = BB->NextB;
  (BB->NextB ? BB->NextB->PrevB : BLast) = BB->PrevB;
  BB->PrevB = BB->NextB = nullptr;
  --NumBlocks;
  invalidateCFG();
}

Instruction *Function::createInstruction(Opcode Op,
                                         const std::vector<Value *> &Ops) {
  Instruction *I = A->create<Instruction>(this, Op);
  I->Id = NextInstId++;
  AllInsts.push_back(*A, I);
  for (Value *V : Ops)
    I->addOperand(V);
  return I;
}

void Function::eraseInstruction(Instruction *I) {
  assert(!I->hasUsers() && "erasing an instruction that still has users");
  if (I->getParent())
    I->removeFromParent();
  I->dropAllOperands();
}

void Function::ensureCFG() const {
  if (!CFGDirty)
    return;
  for (BasicBlock *BB : *this)
    BB->Preds.clear();
  for (BasicBlock *BB : *this)
    if (const Instruction *Term = BB->getTerminator())
      for (unsigned I = 0, E = Term->getNumBlockOperands(); I != E; ++I)
        Term->getBlockOperand(I)->Preds.push_back(*A, BB);
  CFGDirty = false;
}

unsigned Function::countInstructions() const {
  unsigned N = 0;
  for (const BasicBlock *BB : *this)
    N += unsigned(BB->size());
  return N;
}

//===----------------------------------------------------------------------===//
// Module
//===----------------------------------------------------------------------===//

Function *Module::createFunction(std::string FnName, unsigned NumParams,
                                 bool ReturnsVal) {
  assert(!getFunction(FnName) && "duplicate function name");
  Arena &FA = Ctx->newFunctionArena();
  Function *F =
      FA.create<Function>(this, &FA, std::move(FnName), NumParams, ReturnsVal);
  Functions.push_back(F);
  return F;
}

Function *Module::getFunction(const std::string &FnName) const {
  for (Function *F : Functions)
    if (F->getName() == FnName)
      return F;
  return nullptr;
}

GlobalVariable *Module::createGlobal(std::string GlobalName,
                                     uint32_t SizeBytes,
                                     const std::vector<uint8_t> &Init) {
  assert(!getGlobal(GlobalName) && "duplicate global name");
  assert((Init.empty() || Init.size() == SizeBytes) &&
         "initializer size mismatch");
  Arena &MA = Ctx->moduleArena();
  GlobalVariable *G = MA.create<GlobalVariable>(
      Ctx->getPtrType(), Ctx->getArrayType(SizeBytes), std::move(GlobalName));
  if (!Init.empty())
    G->Init.assign(MA, Init.data(), Init.data() + Init.size());
  Globals.push_back(G);
  return G;
}

GlobalVariable *Module::getGlobal(const std::string &GlobalName) const {
  for (GlobalVariable *G : Globals)
    if (G->getName() == GlobalName)
      return G;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// IRContext
//===----------------------------------------------------------------------===//

const Type *IRContext::getArrayType(uint32_t Bytes) {
  std::lock_guard<std::mutex> Lock(InternMutex);
  auto It = ArrayTypes.find(Bytes);
  if (It != ArrayTypes.end())
    return It->second;
  void *Mem = ModArena.allocate(sizeof(Type), alignof(Type));
  Type *T = new (Mem) Type(Type::Kind::Array, Bytes);
  ArrayTypes.emplace(Bytes, T);
  return T;
}

Constant *IRContext::getConstant(int32_t V) {
  std::lock_guard<std::mutex> Lock(InternMutex);
  auto It = Constants.find(V);
  if (It != Constants.end())
    return It->second;
  void *Mem = ModArena.allocate(sizeof(Constant), alignof(Constant));
  Constant *C = new (Mem) Constant(&I32Ty, V);
  Constants.emplace(V, C);
  return C;
}
