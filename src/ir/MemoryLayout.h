//===----------------------------------------------------------------------===//
///
/// \file
/// Address-space layout of the modeled MCU, shared by the IR interpreter,
/// the back end, and the emulator.
///
/// The modeled part is the on-chip byte-addressable non-volatile main
/// memory (FRAM/MRAM, as on the Ambiq Apollo4 class of devices the paper
/// targets): globals at the bottom, a full-descending stack at the top,
/// and a write-only output port outside the RAM range.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_IR_MEMORYLAYOUT_H
#define WARIO_IR_MEMORYLAYOUT_H

#include "ir/Module.h"

#include <unordered_map>

namespace wario {

/// Fixed address-space constants for the modeled device.
namespace memmap {
/// First byte of the global data segment.
inline constexpr uint32_t GlobalBase = 0x00001000;
/// Initial stack pointer (full descending stack).
inline constexpr uint32_t StackTop = 0x00100000;
/// Total bytes of modeled NVM (addresses [0, MemSize)).
inline constexpr uint32_t MemSize = 0x00100000;
/// Write-only MMIO output port; writes are captured as program output and
/// are exempt from WAR analysis (they can never be read back).
inline constexpr uint32_t OutPort = 0xFFFF0000;
} // namespace memmap

/// Assigns every global variable of a module a fixed NVM address.
class MemoryLayout {
public:
  explicit MemoryLayout(const Module &M) {
    uint32_t Addr = memmap::GlobalBase;
    for (const GlobalVariable *G : M.globals()) {
      Addr = (Addr + 3u) & ~3u; // 4-byte alignment.
      Addresses[G] = Addr;
      Addr += G->getSizeBytes();
    }
    DataEnd = Addr;
    assert(DataEnd < memmap::StackTop && "global segment overflows memory");
  }

  uint32_t addressOf(const GlobalVariable *G) const {
    auto It = Addresses.find(G);
    assert(It != Addresses.end() && "global not in layout");
    return It->second;
  }

  /// One past the last byte of initialized/zeroed global data.
  uint32_t getDataEnd() const { return DataEnd; }

  /// Copies the initializers of all globals into \p Mem (zero-filling
  /// variables without an explicit image). \p Mem must cover the data
  /// segment.
  void materialize(const Module &M, std::vector<uint8_t> &Mem) const {
    for (const GlobalVariable *G : M.globals()) {
      uint32_t Addr = addressOf(G);
      assert(Addr + G->getSizeBytes() <= Mem.size());
      const ArenaVec<uint8_t> &Init = G->getInit();
      for (uint32_t I = 0; I != G->getSizeBytes(); ++I)
        Mem[Addr + I] = I < Init.size() ? Init[I] : 0;
    }
  }

private:
  std::unordered_map<const GlobalVariable *, uint32_t> Addresses;
  uint32_t DataEnd;
};

} // namespace wario

#endif // WARIO_IR_MEMORYLAYOUT_H
