//===----------------------------------------------------------------------===//
///
/// \file
/// BasicBlock: a straight-line instruction sequence ended by a terminator.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_IR_BASICBLOCK_H
#define WARIO_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <list>
#include <string>
#include <vector>

namespace wario {

class Function;

/// A basic block. Instructions are owned by the parent Function's arena;
/// the block holds an ordered list of attached instructions. Instructions
/// may only branch at the terminator, so any path leaving the block passes
/// through every instruction after a given point — a property the WAR
/// resolution-set computation relies on.
class BasicBlock {
public:
  using iterator = std::list<Instruction *>::iterator;
  using const_iterator = std::list<Instruction *>::const_iterator;

  BasicBlock(Function *Parent, std::string Name)
      : Parent(Parent), Name(std::move(Name)) {}
  BasicBlock(const BasicBlock &) = delete;
  BasicBlock &operator=(const BasicBlock &) = delete;

  Function *getParent() const { return Parent; }
  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  iterator begin() { return Insts.begin(); }
  iterator end() { return Insts.end(); }
  const_iterator begin() const { return Insts.begin(); }
  const_iterator end() const { return Insts.end(); }
  bool empty() const { return Insts.empty(); }
  size_t size() const { return Insts.size(); }
  Instruction *front() const { return Insts.front(); }
  Instruction *back() const { return Insts.back(); }

  /// Inserts \p I before \p Pos. \p I must be detached.
  iterator insert(iterator Pos, Instruction *I);
  /// Appends \p I at the end of the block.
  void push_back(Instruction *I) { insert(end(), I); }
  /// Unlinks \p I from this block (does not destroy it).
  void remove(Instruction *I);

  /// The block terminator, or nullptr if the block is not yet terminated.
  Instruction *getTerminator() const {
    if (Insts.empty() || !Insts.back()->isTerminator())
      return nullptr;
    return Insts.back();
  }

  /// Successor blocks, read off the terminator.
  std::vector<BasicBlock *> successors() const;
  /// Predecessor blocks (maintained lazily by the parent Function).
  const std::vector<BasicBlock *> &predecessors() const;

  /// First non-phi position; phi nodes must be grouped at the block head.
  iterator firstNonPhi();

  /// All phi instructions at the head of the block.
  std::vector<Instruction *> phis() const;

private:
  friend class Function;

  Function *Parent;
  std::string Name;
  std::list<Instruction *> Insts;
  mutable std::vector<BasicBlock *> Preds; // Cache; see Function::ensureCFG.
};

} // namespace wario

#endif // WARIO_IR_BASICBLOCK_H
