//===----------------------------------------------------------------------===//
///
/// \file
/// BasicBlock: a straight-line instruction sequence ended by a terminator.
///
/// The instruction list is intrusive (prev/next pointers inside
/// Instruction) so blocks stay trivially copyable for cloneModule's bulk
/// copy. The iterator keeps std::list semantics where passes rely on them:
/// dereferencing yields `Instruction *`, inserting before a held iterator
/// keeps it valid, and end() can be decremented.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_IR_BASICBLOCK_H
#define WARIO_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <iterator>
#include <string>
#include <vector>

namespace wario {

class Function;

/// A basic block. Instructions are owned by the parent Function's arena;
/// the block holds an ordered list of attached instructions. Instructions
/// may only branch at the terminator, so any path leaving the block passes
/// through every instruction after a given point — a property the WAR
/// resolution-set computation relies on.
class BasicBlock {
public:
  /// Bidirectional iterator over the intrusive instruction list. Like a
  /// std::list<Instruction *> iterator, `*it` is the Instruction pointer
  /// and a held iterator survives inserts before it.
  class iterator {
  public:
    using iterator_category = std::bidirectional_iterator_tag;
    using value_type = Instruction *;
    using difference_type = std::ptrdiff_t;
    using pointer = Instruction *const *;
    using reference = Instruction *;

    iterator() = default;
    iterator(Instruction *I, const BasicBlock *BB) : Cur(I), BB(BB) {}

    Instruction *operator*() const { return Cur; }
    iterator &operator++() {
      Cur = Cur->NextI;
      return *this;
    }
    iterator operator++(int) {
      iterator T = *this;
      ++*this;
      return T;
    }
    iterator &operator--() {
      Cur = Cur ? Cur->PrevI : BB->ILast;
      return *this;
    }
    iterator operator--(int) {
      iterator T = *this;
      --*this;
      return T;
    }
    bool operator==(const iterator &O) const { return Cur == O.Cur; }
    bool operator!=(const iterator &O) const { return Cur != O.Cur; }

  private:
    friend class BasicBlock;
    Instruction *Cur = nullptr;
    const BasicBlock *BB = nullptr;
  };
  /// Const iteration still yields mutable Instruction pointers, exactly as
  /// a const std::list<Instruction *> did.
  using const_iterator = iterator;

  BasicBlock(Function *Parent, std::string Name) : Parent(Parent) {
    setName(std::move(Name));
  }
  BasicBlock(const BasicBlock &) = delete;
  BasicBlock &operator=(const BasicBlock &) = delete;

  Function *getParent() const { return Parent; }
  const std::string &getName() const { return *Name; }
  void setName(std::string N) { Name = &internedName(std::move(N)); }

  iterator begin() const { return iterator(IFirst, this); }
  iterator end() const { return iterator(nullptr, this); }
  bool empty() const { return NumInsts == 0; }
  size_t size() const { return NumInsts; }
  Instruction *front() const {
    assert(IFirst && "front() on empty block");
    return IFirst;
  }
  Instruction *back() const {
    assert(ILast && "back() on empty block");
    return ILast;
  }

  /// Inserts \p I before \p Pos. \p I must be detached.
  iterator insert(iterator Pos, Instruction *I);
  /// Appends \p I at the end of the block.
  void push_back(Instruction *I) { insert(end(), I); }
  /// Unlinks \p I from this block (does not destroy it).
  void remove(Instruction *I);

  /// The block terminator, or nullptr if the block is not yet terminated.
  Instruction *getTerminator() const {
    if (!ILast || !ILast->isTerminator())
      return nullptr;
    return ILast;
  }

  /// Successor blocks, read off the terminator.
  std::vector<BasicBlock *> successors() const;
  /// Predecessor blocks (maintained lazily by the parent Function).
  const ArenaVec<BasicBlock *> &predecessors() const;

  /// First non-phi position; phi nodes must be grouped at the block head.
  iterator firstNonPhi() const;

  /// All phi instructions at the head of the block.
  std::vector<Instruction *> phis() const;

private:
  friend class Function;
  friend struct ModuleCloner;

  Function *Parent;
  const std::string *Name;
  Instruction *IFirst = nullptr;
  Instruction *ILast = nullptr;
  uint32_t NumInsts = 0;
  BasicBlock *PrevB = nullptr; ///< Intrusive function block list links.
  BasicBlock *NextB = nullptr;
  mutable ArenaVec<BasicBlock *> Preds; // Cache; see Function::ensureCFG.
};

} // namespace wario

#endif // WARIO_IR_BASICBLOCK_H
