//===----------------------------------------------------------------------===//
///
/// \file
/// IRContext: per-module home of the arenas and the interning tables.
///
/// One IRContext backs one Module. It owns the module arena (globals,
/// constants, array types, global initializers) and one arena per
/// function (blocks, instructions, operand/user lists). Node allocation
/// is pointer-bump; dropping the module releases whole slabs back to the
/// global pool; and because every owning pointer leads into these arenas,
/// cloneModule can duplicate the module by memcpying slabs and fixing
/// pointers up.
///
/// Interning tables (integer constants, array types) are mutex-guarded:
/// parallel per-function passes may request constants concurrently. Both
/// tables are ordered by *value*, so the iteration order observable by
/// printing or cloning is independent of creation order — one of the
/// invariants behind byte-identical results at any WARIO_JOBS.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_IR_IRCONTEXT_H
#define WARIO_IR_IRCONTEXT_H

#include "ir/Type.h"
#include "ir/Value.h"
#include "support/Arena.h"

#include <deque>
#include <map>
#include <mutex>

namespace wario {

class IRContext {
public:
  IRContext() = default;
  IRContext(const IRContext &) = delete;
  IRContext &operator=(const IRContext &) = delete;

  // -- Arenas -----------------------------------------------------------------
  /// The arena for module-scoped nodes: globals, constants, array types.
  Arena &moduleArena() { return ModArena; }
  /// Creates the arena for a new function. Arenas live in a deque so their
  /// addresses are stable.
  Arena &newFunctionArena() { return FnArenas.emplace_back(); }

  // -- Types (interned; equal types are pointer-equal) ------------------------
  const Type *getVoidType() const { return &VoidTy; }
  const Type *getI32Type() const { return &I32Ty; }
  const Type *getPtrType() const { return &PtrTy; }
  /// The interned array-of-\p Bytes type (storage shape of a global).
  const Type *getArrayType(uint32_t Bytes);

  /// Total bytes bump-allocated across the module arena and every
  /// function arena. An upper bound on the live IR footprint (abandoned
  /// ArenaVec blocks count too), which is exactly what a byte-budgeted
  /// artifact cache wants to account.
  size_t bytesUsed() const {
    size_t N = ModArena.bytesUsed();
    for (const Arena &A : FnArenas)
      N += A.bytesUsed();
    return N;
  }

  // -- Constants (interned) ---------------------------------------------------
  /// Returns the interned Constant for \p V. Thread-safe: parallel
  /// per-function passes may materialize constants concurrently.
  Constant *getConstant(int32_t V);
  /// All interned constants, ordered by value (printing and cloning walk
  /// these, so the order must not depend on creation order).
  const std::map<int32_t, Constant *> &constants() const { return Constants; }

private:
  friend struct ModuleCloner;

  Arena ModArena;
  std::deque<Arena> FnArenas;

  // The three singleton types live inline (not in the arena): they are
  // plain data, and the clone fixup maps them as three tiny ranges.
  Type VoidTy{Type::Kind::Void};
  Type I32Ty{Type::Kind::I32};
  Type PtrTy{Type::Kind::Ptr};
  std::map<uint32_t, Type *> ArrayTypes;
  std::map<int32_t, Constant *> Constants;
  std::mutex InternMutex;
};

} // namespace wario

#endif // WARIO_IR_IRCONTEXT_H
