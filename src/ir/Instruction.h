//===----------------------------------------------------------------------===//
///
/// \file
/// Instruction class of the WARio IR.
///
/// A single concrete Instruction class carries an opcode plus a small
/// payload instead of a deep subclass hierarchy; accessors assert that the
/// opcode matches. Operands are Value pointers with def-use maintenance;
/// control-flow targets and phi incoming blocks are kept in a separate
/// block-operand list.
///
/// Instructions are bump-allocated in their function's arena and linked
/// into blocks through intrusive prev/next pointers, so the whole node is
/// trivially copyable for cloneModule's bulk copy.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_IR_INSTRUCTION_H
#define WARIO_IR_INSTRUCTION_H

#include "ir/Value.h"

namespace wario {

class BasicBlock;
class Function;

/// Instruction opcodes. All arithmetic is 32-bit; loads/stores carry an
/// explicit access size.
enum class Opcode : uint8_t {
  // Memory.
  Alloca, ///< Reserve bytes in the (non-volatile) stack frame.
  Load,   ///< Read 1/2/4 bytes, zero- or sign-extended to 32 bits.
  Store,  ///< Write the low 1/2/4 bytes of a value.
  Gep,    ///< Address arithmetic: base + index * scale + offset.
  // Arithmetic / logic.
  Add, Sub, Mul, UDiv, SDiv, URem, SRem,
  And, Or, Xor, Shl, LShr, AShr,
  ICmp,   ///< Integer compare, produces 0 or 1.
  Select, ///< cond ? tval : fval.
  // Calls and intrinsics.
  Call,       ///< Direct call.
  Out,        ///< Write a word to the emulated output port (write-only MMIO).
  Checkpoint, ///< Save the volatile register state (inserted by passes).
  // Terminators.
  Br,  ///< Conditional branch.
  Jmp, ///< Unconditional branch.
  Ret, ///< Return, with optional value.
  // SSA.
  Phi,
};

/// Predicates for ICmp.
enum class CmpPred : uint8_t {
  EQ, NE, ULT, ULE, UGT, UGE, SLT, SLE, SGT, SGE,
};

/// Why a checkpoint was inserted. Carried through the back end to the
/// emulator so Figure 5 (checkpoint-cause breakdown) can be reproduced.
enum class CheckpointCause : uint8_t {
  MiddleEndWar,  ///< Resolves an IR-level WAR violation (PDG inserter).
  BackendSpill,  ///< Resolves a register-spill stack-slot WAR.
  FunctionEntry, ///< Guards the prologue's stack pushes.
  FunctionExit,  ///< Guards the epilog's pops / SP adjustments.
};

/// Returns a printable name for \p C.
const char *checkpointCauseName(CheckpointCause C);

/// How a compiled program survives power failures (the bench matrix's
/// strategy axis, orthogonal to the Environment axis). Carried from
/// PipelineOptions through the backend into MModule so the emulator
/// applies the matching commit/rollback semantics.
enum class CheckpointStrategy : uint8_t {
  /// WARio/Ratchet-style idempotence: every WAR violation is broken by
  /// a register checkpoint; NVM state is never rolled back.
  Idempotent,
  /// DiCA-style differential checkpointing (arXiv 2308.12819): WARs are
  /// left unbroken, the runtime journals pages dirtied since the last
  /// commit, a commit pays per-dirty-page cost, and a reboot discards
  /// (rolls back) all uncommitted dirty pages.
  Differential,
  /// Compiler-directed speculative intermittent computation
  /// (arXiv 2006.11479): stores that complete a WAR execute
  /// speculatively with a word-granular undo log; a reboot unwinds the
  /// log back to the last committed checkpoint.
  Speculative,
};

/// Returns a printable name for \p S ("idempotent" / "differential" /
/// "speculative").
const char *checkpointStrategyName(CheckpointStrategy S);

/// Reverse lookup for CLI and wire use. Returns false on unknown names.
bool checkpointStrategyFromName(const std::string &Name,
                                CheckpointStrategy &Out);

/// Returns a printable mnemonic for \p Op.
const char *opcodeName(Opcode Op);
/// Returns a printable mnemonic for \p P.
const char *predName(CmpPred P);

/// One IR instruction. Owned by its parent Function's arena; linked into a
/// BasicBlock's instruction list while attached.
class Instruction : public Value {
public:
  /// Instructions are created through Function::createInstruction (or
  /// IRBuilder); the constructor only wires the owning function so operand
  /// bookkeeping has an arena from the first addOperand on.
  Instruction(Function *F, Opcode Op);

  Opcode getOpcode() const { return Op; }
  BasicBlock *getParent() const { return Parent; }
  /// The owning function. Valid even while detached from any block.
  Function *getFunction() const { return Func; }

  /// Monotonically increasing creation index within the parent function;
  /// used for deterministic iteration orders.
  unsigned getId() const { return Id; }

  // -- Operands ------------------------------------------------------------
  unsigned getNumOperands() const { return unsigned(Operands.size()); }
  Value *getOperand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  void setOperand(unsigned I, Value *V);
  void addOperand(Value *V);
  /// Removes operand \p I (shifting later operands down). For phis, the
  /// caller must remove the matching block operand too.
  void removeOperand(unsigned I);
  /// Drops all operands (removing this from their user lists).
  void dropAllOperands();

  // -- Block operands (branch targets / phi incoming blocks) ---------------
  unsigned getNumBlockOperands() const { return unsigned(BlockOps.size()); }
  BasicBlock *getBlockOperand(unsigned I) const {
    assert(I < BlockOps.size() && "block operand index out of range");
    return BlockOps[I];
  }
  void setBlockOperand(unsigned I, BasicBlock *BB);
  void addBlockOperand(BasicBlock *BB);
  void removeBlockOperand(unsigned I);

  // -- Phi helpers -----------------------------------------------------------
  /// Removes the first incoming entry whose block is \p Pred.
  void removePhiIncomingFor(const BasicBlock *Pred);
  /// The incoming value for predecessor \p Pred (first match).
  Value *getPhiIncomingFor(const BasicBlock *Pred) const;

  // -- Classification -------------------------------------------------------
  bool isTerminator() const {
    return Op == Opcode::Br || Op == Opcode::Jmp || Op == Opcode::Ret;
  }
  bool isBinaryOp() const {
    return Op >= Opcode::Add && Op <= Opcode::AShr;
  }
  /// True if the instruction defines an SSA value other instructions can use.
  bool producesValue() const;
  bool mayReadMemory() const;
  bool mayWriteMemory() const;
  /// Loads and stores; the instructions memory dependence analysis tracks.
  bool isMemoryAccess() const {
    return Op == Opcode::Load || Op == Opcode::Store;
  }

  // -- Payload accessors -----------------------------------------------------
  /// Alloca: reserved size in bytes.
  uint32_t getAllocaSize() const {
    assert(Op == Opcode::Alloca);
    return AllocaSize;
  }
  void setAllocaSize(uint32_t S) {
    assert(Op == Opcode::Alloca);
    AllocaSize = S;
  }

  /// Load/Store: access size in bytes (1, 2 or 4).
  uint8_t getAccessSize() const {
    assert(Op == Opcode::Load || Op == Opcode::Store);
    return AccessSize;
  }
  void setAccessSize(uint8_t S) {
    assert((S == 1 || S == 2 || S == 4) && "invalid access size");
    AccessSize = S;
  }
  /// Load: whether a sub-word load sign-extends.
  bool isSignedLoad() const {
    assert(Op == Opcode::Load);
    return SignedLoad;
  }
  void setSignedLoad(bool S) { SignedLoad = S; }
  /// Store: marked by the speculative-strategy checkpoint inserter as
  /// completing an unresolved WAR — the emulator undo-logs its old value
  /// instead of a checkpoint breaking the hazard.
  bool isSpecLogged() const {
    assert(Op == Opcode::Store);
    return SpecLogged;
  }
  void setSpecLogged(bool L) {
    assert(Op == Opcode::Store);
    SpecLogged = L;
  }

  /// Load: the address operand. Store: value is operand 0, address operand 1.
  Value *getAddressOperand() const {
    assert(isMemoryAccess());
    return Op == Opcode::Load ? getOperand(0) : getOperand(1);
  }
  Value *getStoredValue() const {
    assert(Op == Opcode::Store);
    return getOperand(0);
  }

  /// Gep: compile-time scale and byte offset.
  int32_t getGepScale() const {
    assert(Op == Opcode::Gep);
    return GepScale;
  }
  int32_t getGepOffset() const {
    assert(Op == Opcode::Gep);
    return GepOffset;
  }
  void setGepScale(int32_t S) { GepScale = S; }
  void setGepOffset(int32_t O) { GepOffset = O; }
  /// Gep: base address operand.
  Value *getGepBase() const {
    assert(Op == Opcode::Gep);
    return getOperand(0);
  }
  /// Gep: optional index operand (nullptr if the offset is constant-only).
  Value *getGepIndex() const {
    assert(Op == Opcode::Gep);
    return getNumOperands() > 1 ? getOperand(1) : nullptr;
  }

  CmpPred getPredicate() const {
    assert(Op == Opcode::ICmp);
    return Pred;
  }
  void setPredicate(CmpPred P) { Pred = P; }

  Function *getCallee() const {
    assert(Op == Opcode::Call);
    return Callee;
  }
  void setCallee(Function *F);

  CheckpointCause getCheckpointCause() const {
    assert(Op == Opcode::Checkpoint);
    return CkptCause;
  }
  void setCheckpointCause(CheckpointCause C) {
    assert(Op == Opcode::Checkpoint);
    CkptCause = C;
  }

  // -- Placement -------------------------------------------------------------
  /// Unlinks this instruction from its parent block (ownership stays with
  /// the function arena).
  void removeFromParent();
  /// Moves this instruction immediately before \p Other (possibly in a
  /// different block of the same function).
  void moveBefore(Instruction *Other);
  /// Moves this instruction to the end of \p BB, before its terminator if
  /// one exists and this instruction is not itself a terminator.
  void moveBeforeTerminator(BasicBlock *BB);

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Instruction;
  }

private:
  friend class BasicBlock;
  friend class Function;
  friend class Value; // addUser/removeUser need the arena.
  friend struct ModuleCloner;

  /// The owning function's arena — where operand/user lists grow.
  Arena &arena() const;

  Opcode Op;
  ArenaVec<Value *> Operands;
  ArenaVec<BasicBlock *> BlockOps;
  BasicBlock *Parent = nullptr;
  Instruction *PrevI = nullptr; ///< Intrusive block list links.
  Instruction *NextI = nullptr;
  Function *Func;
  unsigned Id = 0;

  // Payload (interpretation depends on Op).
  uint32_t AllocaSize = 0;
  uint8_t AccessSize = 4;
  bool SignedLoad = false;
  bool SpecLogged = false;
  CmpPred Pred = CmpPred::EQ;
  int32_t GepScale = 1;
  int32_t GepOffset = 0;
  Function *Callee = nullptr;
  CheckpointCause CkptCause = CheckpointCause::MiddleEndWar;
};

} // namespace wario

#endif // WARIO_IR_INSTRUCTION_H
