//===----------------------------------------------------------------------===//
///
/// \file
/// IR cloning. cloneInstruction is a conventional per-node copy used by
/// the unroller and inliner. cloneModule is a bulk arena copy: every node
/// of a module lives in its IRContext's arenas, so the clone memcpys the
/// slabs wholesale and then rewrites each interior pointer through a
/// sorted slab-remap table. Ids, list orders, user-list orders, and the
/// per-function id counters are copied *bytewise*, so the clone is
/// behaviorally indistinguishable by construction — no per-field
/// reconstruction, no user-order restoration pass.
///
//===----------------------------------------------------------------------===//

#include "ir/Cloning.h"

#include <algorithm>

using namespace wario;

namespace {

/// Copies the opcode-specific payload of \p I onto \p NI. The Call callee
/// is copied verbatim; callers remap it if needed.
void copyPayload(Instruction *NI, const Instruction *I) {
  switch (I->getOpcode()) {
  case Opcode::Alloca:
    NI->setAllocaSize(I->getAllocaSize());
    break;
  case Opcode::Load:
    NI->setAccessSize(I->getAccessSize());
    NI->setSignedLoad(I->isSignedLoad());
    break;
  case Opcode::Store:
    NI->setAccessSize(I->getAccessSize());
    NI->setSpecLogged(I->isSpecLogged());
    break;
  case Opcode::Gep:
    NI->setGepScale(I->getGepScale());
    NI->setGepOffset(I->getGepOffset());
    break;
  case Opcode::ICmp:
    NI->setPredicate(I->getPredicate());
    break;
  case Opcode::Call:
    NI->setCallee(I->getCallee());
    break;
  case Opcode::Checkpoint:
    NI->setCheckpointCause(I->getCheckpointCause());
    break;
  default:
    break;
  }
}

} // namespace

Instruction *wario::cloneInstruction(const Instruction *I, Function &F,
                                     const ValueMapper &VM) {
  std::vector<Value *> Ops;
  Ops.reserve(I->getNumOperands());
  for (unsigned J = 0, E = I->getNumOperands(); J != E; ++J)
    Ops.push_back(VM.lookup(I->getOperand(J)));

  Instruction *NI = F.createInstruction(I->getOpcode(), Ops);
  NI->setName(I->getName());
  copyPayload(NI, I);
  for (unsigned J = 0, E = I->getNumBlockOperands(); J != E; ++J)
    NI->addBlockOperand(I->getBlockOperand(J));
  return NI;
}

namespace wario {

/// The bulk-copy engine. Friend of every IR class so it can rewrite
/// private pointer fields in place.
struct ModuleCloner {
  /// One contiguous source→destination byte range. Ranges cover every
  /// arena slab of the source module plus the three inline singleton
  /// types of its context.
  struct Range {
    const char *SrcBase;
    char *DstBase;
    size_t Size;
  };

  const Module &Src;
  Module &Dst;
  std::vector<Range> Ranges;
  /// Last range a remap resolved to. The fixup walks nodes in
  /// allocation order, so consecutive lookups almost always land in the
  /// same slab; this turns the binary search into one range check.
  mutable const Range *LastHit = nullptr;

  ModuleCloner(const Module &Src, Module &Dst) : Src(Src), Dst(Dst) {}

  void addRange(const void *SrcBase, void *DstBase, size_t Size) {
    if (Size)
      Ranges.push_back(
          {static_cast<const char *>(SrcBase), static_cast<char *>(DstBase),
           Size});
  }

  /// Copies every arena of Src's context into Dst's (empty) context and
  /// records the address ranges.
  void copyArenas() {
    IRContext &SC = Src.getContext();
    IRContext &DC = Dst.getContext();

    auto CopyOne = [&](const Arena &From, Arena &To) {
      To.adoptCopyOf(From);
      const auto &FS = From.slabs();
      const auto &TS = To.slabs();
      assert(FS.size() == TS.size());
      for (size_t I = 0; I != FS.size(); ++I)
        addRange(FS[I].Base, TS[I].Base, FS[I].Used);
    };

    CopyOne(SC.ModArena, DC.ModArena);
    for (const Arena &FA : SC.FnArenas)
      CopyOne(FA, DC.newFunctionArena());

    // The singleton types live inline in the context object, not in an
    // arena; map them as three one-object ranges.
    addRange(&SC.VoidTy, &DC.VoidTy, sizeof(Type));
    addRange(&SC.I32Ty, &DC.I32Ty, sizeof(Type));
    addRange(&SC.PtrTy, &DC.PtrTy, sizeof(Type));

    std::sort(Ranges.begin(), Ranges.end(),
              [](const Range &A, const Range &B) {
                return A.SrcBase < B.SrcBase;
              });
  }

  /// Maps a pointer into the source module onto its clone. The Module
  /// object itself is the only heap object nodes point at; everything
  /// else must fall inside a copied range. Pointers that are not part of
  /// the module (interned name strings) must not be passed here.
  template <typename T> T *remap(const T *P) const {
    if (!P)
      return nullptr;
    if (static_cast<const void *>(P) == static_cast<const void *>(&Src))
      return reinterpret_cast<T *>(const_cast<Module *>(&Dst));
    const char *CP = reinterpret_cast<const char *>(P);
    if (LastHit && CP >= LastHit->SrcBase &&
        CP < LastHit->SrcBase + LastHit->Size)
      return reinterpret_cast<T *>(LastHit->DstBase +
                                   (CP - LastHit->SrcBase));
    auto It = std::upper_bound(Ranges.begin(), Ranges.end(), CP,
                               [](const char *V, const Range &R) {
                                 return V < R.SrcBase;
                               });
    assert(It != Ranges.begin() &&
           "clone fixup: pointer does not map into the source module");
    const Range &R = *std::prev(It);
    assert(CP < R.SrcBase + R.Size &&
           "clone fixup: pointer does not map into the source module");
    LastHit = &R;
    return reinterpret_cast<T *>(R.DstBase + (CP - R.SrcBase));
  }

  /// Rewrites an ArenaVec whose storage was bulk-copied: \p DstVec is
  /// the clone's vec (already located by the caller via its remapped
  /// parent node); its Data pointer and each pointer element are
  /// remapped in place. Sizes/capacities came along bytewise.
  template <typename T>
  void fixVec(ArenaVec<T *> &DstVec, const ArenaVec<T *> &SrcVec) const {
    DstVec.Data = remap(SrcVec.Data);
    for (size_t I = 0, E = SrcVec.Sz; I != E; ++I)
      DstVec.Data[I] = remap(SrcVec.Data[I]);
  }

  /// Same for a plain byte vec (global initializers): only the Data
  /// pointer needs remapping.
  void fixBytes(ArenaVec<uint8_t> &DstVec,
                const ArenaVec<uint8_t> &SrcVec) const {
    DstVec.Data = remap(SrcVec.Data);
  }

  void fixValueCommon(Value *NV, const Value &V) const {
    NV->Ty = remap(V.Ty);
    // Name is an interned-string pointer — process-global, shared as-is.
    fixVec(NV->Users, V.Users);
  }

  void fixInstruction(Instruction *NI, const Instruction &I) const {
    fixValueCommon(NI, I);
    fixVec(NI->Operands, I.Operands);
    fixVec(NI->BlockOps, I.BlockOps);
    NI->Parent = remap(I.Parent);
    NI->PrevI = remap(I.PrevI);
    NI->NextI = remap(I.NextI);
    NI->Func = remap(I.Func);
    NI->Callee = remap(I.Callee);
  }

  void fixBlock(BasicBlock *NB, const BasicBlock &BB) const {
    NB->Parent = remap(BB.Parent);
    NB->IFirst = remap(BB.IFirst);
    NB->ILast = remap(BB.ILast);
    NB->PrevB = remap(BB.PrevB);
    NB->NextB = remap(BB.NextB);
    fixVec(NB->Preds, BB.Preds);
  }

  void fixFunction(Function *NF, const Function &F) const {
    NF->Parent = &Dst;
    // NF->A is fixed separately (fixArenaPointers): arenas live in the
    // context's deque, not in any copied byte range.
    fixVec(NF->Args, F.Args);
    NF->BFirst = remap(F.BFirst);
    NF->BLast = remap(F.BLast);
    fixVec(NF->AllBlocks, F.AllBlocks);
    fixVec(NF->AllInsts, F.AllInsts);
    for (size_t I = 0, E = F.Args.Sz; I != E; ++I) {
      Argument *NArg = NF->Args.Data[I];
      fixValueCommon(NArg, *F.Args.Data[I]);
      NArg->Parent = NF;
    }
    // Walk the full enumeration lists, not just attached nodes: detached
    // instructions and erased blocks were copied too and may still hold
    // pointers a later pass resurrects. The dst lists were remapped just
    // above, so they pair index-wise with the source lists.
    for (size_t I = 0, E = F.AllBlocks.Sz; I != E; ++I)
      fixBlock(NF->AllBlocks.Data[I], *F.AllBlocks.Data[I]);
    for (size_t I = 0, E = F.AllInsts.Sz; I != E; ++I)
      fixInstruction(NF->AllInsts.Data[I], *F.AllInsts.Data[I]);
  }

  /// Remap the Arena::A pointers: function arenas live in the context's
  /// deque (heap), so they are not covered by byte ranges. Resolved by
  /// index instead.
  void fixArenaPointers() const {
    IRContext &SC = Src.getContext();
    IRContext &DC = Dst.getContext();
    assert(SC.FnArenas.size() == DC.FnArenas.size());
    for (size_t I = 0, E = SC.FnArenas.size(); I != E; ++I) {
      const Arena *From = &SC.FnArenas[I];
      Arena *To = &DC.FnArenas[I];
      for (Function *SF : Src.Functions)
        if (SF->A == From)
          remap(SF)->A = To;
    }
  }

  void run() {
    copyArenas();

    IRContext &SC = Src.getContext();
    IRContext &DC = Dst.getContext();

    // Rebuild the module- and context-level tables by remapping the
    // source's entries (both are std::maps on the heap, not arena bytes).
    for (const auto &[Bytes, T] : SC.ArrayTypes)
      DC.ArrayTypes.emplace(Bytes, remap(T));
    for (const auto &[Val, C] : SC.Constants) {
      Constant *NC = remap(C);
      DC.Constants.emplace(Val, NC);
      fixValueCommon(NC, *C);
    }
    for (GlobalVariable *G : Src.Globals) {
      GlobalVariable *NG = remap(G);
      fixValueCommon(NG, *G);
      NG->ValueTy = remap(G->ValueTy);
      fixBytes(NG->Init, G->Init);
      Dst.Globals.push_back(NG);
    }
    for (Function *F : Src.Functions) {
      Function *NF = remap(F);
      fixFunction(NF, *F);
      Dst.Functions.push_back(NF);
    }
    fixArenaPointers();
  }
};

} // namespace wario

std::unique_ptr<Module> wario::cloneModule(const Module &M) {
  auto NewM = std::make_unique<Module>(M.getName());
  ModuleCloner(M, *NewM).run();
  return NewM;
}
