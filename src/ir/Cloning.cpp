#include "ir/Cloning.h"

using namespace wario;

namespace {

/// Copies the opcode-specific payload of \p I onto \p NI. The Call callee
/// is copied verbatim; cloneModule remaps it afterwards.
void copyPayload(Instruction *NI, const Instruction *I) {
  switch (I->getOpcode()) {
  case Opcode::Alloca:
    NI->setAllocaSize(I->getAllocaSize());
    break;
  case Opcode::Load:
    NI->setAccessSize(I->getAccessSize());
    NI->setSignedLoad(I->isSignedLoad());
    break;
  case Opcode::Store:
    NI->setAccessSize(I->getAccessSize());
    break;
  case Opcode::Gep:
    NI->setGepScale(I->getGepScale());
    NI->setGepOffset(I->getGepOffset());
    break;
  case Opcode::ICmp:
    NI->setPredicate(I->getPredicate());
    break;
  case Opcode::Call:
    NI->setCallee(I->getCallee());
    break;
  case Opcode::Checkpoint:
    NI->setCheckpointCause(I->getCheckpointCause());
    break;
  default:
    break;
  }
}

} // namespace

Instruction *wario::cloneInstruction(const Instruction *I, Function &F,
                                     const ValueMapper &VM) {
  std::vector<Value *> Ops;
  Ops.reserve(I->getNumOperands());
  for (unsigned J = 0, E = I->getNumOperands(); J != E; ++J)
    Ops.push_back(VM.lookup(I->getOperand(J)));

  auto NI = std::make_unique<Instruction>(I->getOpcode(), std::move(Ops));
  NI->setName(I->getName());
  copyPayload(NI.get(), I);
  for (unsigned J = 0, E = I->getNumBlockOperands(); J != E; ++J)
    NI->addBlockOperand(I->getBlockOperand(J));
  return F.adopt(std::move(NI));
}

std::unique_ptr<Module> wario::cloneModule(const Module &M) {
  auto NewM = std::make_unique<Module>(M.getName());
  ValueMapper VM;
  std::unordered_map<const Function *, Function *> FnMap;
  std::unordered_map<const BasicBlock *, BasicBlock *> BlockMap;

  // Globals and uniqued constants, in the source's creation/value order.
  for (const auto &G : M.globals())
    VM.map(G.get(),
           NewM->createGlobal(G->getName(), G->getSizeBytes(), G->getInit()));
  for (const auto &[Val, C] : M.constants())
    VM.map(C.get(), NewM->getConstant(Val));

  // Declare every function (and map its arguments) before cloning bodies,
  // so calls and cross-function references resolve in one pass.
  for (const auto &F : M.functions()) {
    Function *NF = NewM->createFunction(F->getName(), F->getNumParams(),
                                        F->returnsValue());
    FnMap[F.get()] = NF;
    for (unsigned I = 0, E = F->getNumParams(); I != E; ++I) {
      NF->getArg(I)->setName(F->getArg(I)->getName());
      VM.map(F->getArg(I), NF->getArg(I));
    }
  }

  for (const auto &F : M.functions()) {
    Function *NF = FnMap[F.get()];

    // Blocks first (branch targets may be forward references).
    for (const BasicBlock *BB : *F)
      BlockMap[BB] = NF->createBlock(BB->getName());

    // Materialize every attached instruction operand-less, preserving its
    // id (passes iterate in id order; a renumbered clone could compile
    // differently).
    for (const BasicBlock *BB : *F) {
      for (const Instruction *I : *BB) {
        auto NI = std::make_unique<Instruction>(I->getOpcode(),
                                                std::vector<Value *>{});
        NI->setName(I->getName());
        copyPayload(NI.get(), I);
        Instruction *Raw = NF->adopt(std::move(NI), I->getId());
        if (I->getOpcode() == Opcode::Call)
          Raw->setCallee(FnMap.at(I->getCallee()));
        BlockMap.at(BB)->push_back(Raw);
        VM.map(I, Raw);
      }
    }
    NF->reserveInstIds(F->nextInstId());

    // Second pass: connect operands and block operands through the maps.
    // Every operand must resolve into the clone — an unmapped value would
    // silently tie the clone to the source module.
    for (const BasicBlock *BB : *F) {
      for (const Instruction *I : *BB) {
        Instruction *NI = cast<Instruction>(VM.lookup(const_cast<Instruction *>(I)));
        for (unsigned J = 0, E = I->getNumOperands(); J != E; ++J) {
          Value *Mapped = VM.lookup(I->getOperand(J));
          assert(Mapped != I->getOperand(J) &&
                 "module clone operand still points into the source");
          NI->addOperand(Mapped);
        }
        for (unsigned J = 0, E = I->getNumBlockOperands(); J != E; ++J)
          NI->addBlockOperand(BlockMap.at(I->getBlockOperand(J)));
      }
    }
  }

  // The operand pass above built user lists in program order, but the
  // source's lists are in historical (creation/mutation) order, and some
  // passes iterate them. Reproduce the source order exactly.
  auto RestoreUserOrder = [&](const Value *Old) {
    Value *New = VM.lookup(const_cast<Value *>(Old));
    assert(New != Old && "value was never cloned");
    std::vector<Instruction *> Order;
    Order.reserve(Old->users().size());
    for (Instruction *U : Old->users())
      Order.push_back(cast<Instruction>(VM.lookup(U)));
    New->setUserOrder(std::move(Order));
  };
  for (const auto &G : M.globals())
    RestoreUserOrder(G.get());
  for (const auto &[Val, C] : M.constants())
    RestoreUserOrder(C.get());
  for (const auto &F : M.functions()) {
    for (unsigned I = 0, E = F->getNumParams(); I != E; ++I)
      RestoreUserOrder(F->getArg(I));
    for (const BasicBlock *BB : *F)
      for (const Instruction *I : *BB)
        RestoreUserOrder(I);
  }

  return NewM;
}
