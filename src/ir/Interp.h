//===----------------------------------------------------------------------===//
///
/// \file
/// Reference interpreter for the WARio IR.
///
/// Used as the semantic oracle in differential tests: the output of every
/// transformed module — and of the compiled machine code under any power
/// schedule — must match what this interpreter produces for the original
/// module under continuous power.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_IR_INTERP_H
#define WARIO_IR_INTERP_H

#include "ir/MemoryLayout.h"

#include <optional>

namespace wario {

/// Result of interpreting a module.
struct InterpResult {
  bool Ok = false;            ///< False on trap (bad memory, div0, fuel).
  std::string Error;          ///< Trap description when !Ok.
  int32_t ReturnValue = 0;    ///< Value returned from the entry function.
  std::vector<int32_t> Output; ///< Words written to the output port.
  uint64_t StepsExecuted = 0;
};

/// Executes \p Entry (default: "main") with no arguments.
///
/// \p Fuel bounds the number of executed instructions so that a transform
/// bug that produces an infinite loop fails a test instead of hanging it.
InterpResult interpretModule(const Module &M,
                             const std::string &Entry = "main",
                             uint64_t Fuel = 200'000'000);

} // namespace wario

#endif // WARIO_IR_INTERP_H
