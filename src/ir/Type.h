//===----------------------------------------------------------------------===//
///
/// \file
/// Interned types for the WARio IR.
///
/// The IR models a 32-bit target where every SSA value is a 32-bit
/// integer, so the type lattice is deliberately tiny: void (instructions
/// that produce no value), i32 (everything else), ptr (the SSA value of a
/// global — a link-time address), and byte arrays (the storage shape of a
/// global). Types are interned per IRContext: equal types are
/// pointer-equal, so passes compare with `==` and clones remap a handful
/// of pointers instead of copying type graphs.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_IR_TYPE_H
#define WARIO_IR_TYPE_H

#include <cassert>
#include <cstdint>

namespace wario {

class IRContext;
struct ModuleCloner;

class Type {
public:
  enum class Kind : uint8_t {
    Void,  ///< No SSA value (stores, branches, ...).
    I32,   ///< 32-bit integer, the universal value type.
    Ptr,   ///< A 32-bit address (SSA value of a global).
    Array, ///< Byte-array storage shape of a global variable.
  };

  Kind getKind() const { return K; }
  bool isVoid() const { return K == Kind::Void; }
  bool isI32() const { return K == Kind::I32; }
  bool isPtr() const { return K == Kind::Ptr; }
  bool isArray() const { return K == Kind::Array; }

  /// Array only: storage size in bytes.
  uint32_t getArrayBytes() const {
    assert(K == Kind::Array && "not an array type");
    return Bytes;
  }

private:
  friend class IRContext;
  friend struct ModuleCloner;

  explicit Type(Kind K, uint32_t Bytes = 0) : K(K), Bytes(Bytes) {}

  Kind K;
  uint32_t Bytes;
};

} // namespace wario

#endif // WARIO_IR_TYPE_H
