#include "ir/Interp.h"

#include "ir/ConstEval.h"

#include <unordered_map>

using namespace wario;

namespace {

/// Interpreter engine; one instance per interpretModule call.
class Interpreter {
public:
  Interpreter(const Module &M, uint64_t Fuel)
      : M(M), Layout(M), Fuel(Fuel), Mem(memmap::MemSize, 0) {
    Layout.materialize(M, Mem);
  }

  InterpResult run(const std::string &Entry) {
    InterpResult R;
    Function *F = M.getFunction(Entry);
    if (!F || F->isDeclaration()) {
      R.Error = "entry function '" + Entry + "' not found";
      return R;
    }
    SP = memmap::StackTop;
    std::optional<int32_t> Ret = callFunction(F, {});
    R.StepsExecuted = Steps;
    R.Output = std::move(Out);
    if (!Trap.empty()) {
      R.Error = Trap;
      return R;
    }
    R.Ok = true;
    R.ReturnValue = Ret.value_or(0);
    return R;
  }

private:
  using Frame = std::unordered_map<const Value *, uint32_t>;

  uint32_t eval(const Frame &Fr, const Value *V) {
    if (const auto *C = dyn_cast<Constant>(V))
      return C->getZExtValue();
    if (const auto *G = dyn_cast<GlobalVariable>(V))
      return Layout.addressOf(G);
    auto It = Fr.find(V);
    assert(It != Fr.end() && "use of undefined value");
    return It->second;
  }

  bool loadMem(uint32_t Addr, uint8_t Size, bool Signed, uint32_t &Result) {
    if (Addr > memmap::MemSize - Size) {
      Trap = "load out of bounds at 0x" + toHex(Addr);
      return false;
    }
    uint32_t V = 0;
    for (unsigned I = 0; I != Size; ++I)
      V |= uint32_t(Mem[Addr + I]) << (8 * I);
    if (Signed && Size < 4) {
      uint32_t SignBit = 1u << (Size * 8 - 1);
      if (V & SignBit)
        V |= ~((SignBit << 1) - 1);
    }
    Result = V;
    return true;
  }

  bool storeMem(uint32_t Addr, uint8_t Size, uint32_t V) {
    if (Addr == memmap::OutPort) {
      Out.push_back(static_cast<int32_t>(V));
      return true;
    }
    if (Addr > memmap::MemSize - Size) {
      Trap = "store out of bounds at 0x" + toHex(Addr);
      return false;
    }
    for (unsigned I = 0; I != Size; ++I)
      Mem[Addr + I] = uint8_t(V >> (8 * I));
    return true;
  }

  static std::string toHex(uint32_t V) {
    static const char *Digits = "0123456789abcdef";
    std::string S;
    for (int I = 28; I >= 0; I -= 4)
      S += Digits[(V >> I) & 0xF];
    return S;
  }

  uint32_t evalBinary(Opcode Op, uint32_t A, uint32_t B) {
    std::optional<uint32_t> R = constEvalBinary(Op, A, B);
    if (!R) {
      Trap = "division or remainder by zero";
      return 0;
    }
    return *R;
  }

  static bool evalPred(CmpPred P, uint32_t A, uint32_t B) {
    return constEvalPred(P, A, B);
  }

  /// Executes \p F; returns its return value (nullopt for void or trap).
  std::optional<int32_t> callFunction(Function *F,
                                      const std::vector<uint32_t> &Args) {
    assert(!F->isDeclaration() && "calling a declaration");
    if (CallDepth > 500) {
      Trap = "call depth limit exceeded (runaway recursion?)";
      return std::nullopt;
    }
    ++CallDepth;
    uint32_t SavedSP = SP;

    Frame Fr;
    for (unsigned I = 0; I != F->getNumParams(); ++I)
      Fr[F->getArg(I)] = I < Args.size() ? Args[I] : 0;

    BasicBlock *BB = F->getEntryBlock();
    BasicBlock *PrevBB = nullptr;
    std::optional<int32_t> RetVal;

    while (Trap.empty()) {
      // Phi nodes are evaluated in parallel on block entry.
      std::vector<std::pair<const Instruction *, uint32_t>> PhiVals;
      for (const Instruction *I : *BB) {
        if (I->getOpcode() != Opcode::Phi)
          break;
        bool Found = false;
        for (unsigned J = 0, E = I->getNumBlockOperands(); J != E; ++J) {
          if (I->getBlockOperand(J) == PrevBB) {
            PhiVals.emplace_back(I, eval(Fr, I->getOperand(J)));
            Found = true;
            break;
          }
        }
        if (!Found) {
          Trap = "phi in block '" + BB->getName() +
                 "' has no incoming value for predecessor";
          break;
        }
      }
      for (auto &[Phi, V] : PhiVals)
        Fr[Phi] = V;
      if (!Trap.empty())
        break;

      BasicBlock *NextBB = nullptr;
      bool Returned = false;

      for (auto It = BB->firstNonPhi(); It != BB->end(); ++It) {
        const Instruction *I = *It;
        if (Steps++ >= Fuel) {
          Trap = "instruction fuel exhausted";
          break;
        }
        switch (I->getOpcode()) {
        case Opcode::Alloca: {
          uint32_t Size = (I->getAllocaSize() + 3u) & ~3u;
          SP -= Size;
          if (SP < Layout.getDataEnd()) {
            Trap = "stack overflow";
            break;
          }
          Fr[I] = SP;
          break;
        }
        case Opcode::Load: {
          uint32_t V;
          if (loadMem(eval(Fr, I->getOperand(0)), I->getAccessSize(),
                      I->isSignedLoad(), V))
            Fr[I] = V;
          break;
        }
        case Opcode::Store:
          storeMem(eval(Fr, I->getOperand(1)), I->getAccessSize(),
                   eval(Fr, I->getOperand(0)));
          break;
        case Opcode::Gep: {
          uint32_t Base = eval(Fr, I->getGepBase());
          uint32_t Index = I->getGepIndex() ? eval(Fr, I->getGepIndex()) : 0;
          Fr[I] = Base + Index * uint32_t(I->getGepScale()) +
                  uint32_t(I->getGepOffset());
          break;
        }
        case Opcode::ICmp:
          Fr[I] = evalPred(I->getPredicate(), eval(Fr, I->getOperand(0)),
                           eval(Fr, I->getOperand(1)))
                      ? 1
                      : 0;
          break;
        case Opcode::Select:
          Fr[I] = eval(Fr, I->getOperand(0)) != 0
                      ? eval(Fr, I->getOperand(1))
                      : eval(Fr, I->getOperand(2));
          break;
        case Opcode::Call: {
          std::vector<uint32_t> CallArgs;
          for (unsigned J = 0, E = I->getNumOperands(); J != E; ++J)
            CallArgs.push_back(eval(Fr, I->getOperand(J)));
          std::optional<int32_t> R = callFunction(I->getCallee(), CallArgs);
          if (I->producesValue() && Trap.empty())
            Fr[I] = uint32_t(R.value_or(0));
          break;
        }
        case Opcode::Out:
          Out.push_back(static_cast<int32_t>(eval(Fr, I->getOperand(0))));
          break;
        case Opcode::Checkpoint:
          break; // Semantically a no-op under continuous power.
        case Opcode::Br:
          NextBB = eval(Fr, I->getOperand(0)) != 0 ? I->getBlockOperand(0)
                                                   : I->getBlockOperand(1);
          break;
        case Opcode::Jmp:
          NextBB = I->getBlockOperand(0);
          break;
        case Opcode::Ret:
          if (I->getNumOperands() > 0)
            RetVal = static_cast<int32_t>(eval(Fr, I->getOperand(0)));
          Returned = true;
          break;
        case Opcode::Phi:
          Trap = "phi after non-phi instruction";
          break;
        default: // Binary ops.
          Fr[I] = evalBinary(I->getOpcode(), eval(Fr, I->getOperand(0)),
                             eval(Fr, I->getOperand(1)));
          break;
        }
        if (!Trap.empty() || NextBB || Returned)
          break;
      }

      if (!Trap.empty() || Returned)
        break;
      if (!NextBB) {
        Trap = "block '" + BB->getName() + "' fell off the end";
        break;
      }
      PrevBB = BB;
      BB = NextBB;
    }

    SP = SavedSP;
    --CallDepth;
    return RetVal;
  }

  const Module &M;
  MemoryLayout Layout;
  uint64_t Fuel;
  uint64_t Steps = 0;
  std::vector<uint8_t> Mem;
  std::vector<int32_t> Out;
  std::string Trap;
  uint32_t SP = memmap::StackTop;
  unsigned CallDepth = 0;
};

} // namespace

InterpResult wario::interpretModule(const Module &M, const std::string &Entry,
                                    uint64_t Fuel) {
  Interpreter I(M, Fuel);
  return I.run(Entry);
}
