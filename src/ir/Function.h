//===----------------------------------------------------------------------===//
///
/// \file
/// Function: a CFG of basic blocks plus the arenas owning blocks and
/// instructions.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_IR_FUNCTION_H
#define WARIO_IR_FUNCTION_H

#include "ir/BasicBlock.h"

#include <algorithm>
#include <memory>

namespace wario {

class Module;

/// A function definition (or declaration, when it has no blocks).
///
/// Blocks and instructions are arena-owned by the function: detaching an
/// instruction from a block does not destroy it, which lets passes move
/// instructions around freely (the write-clustering passes depend on this).
class Function {
public:
  Function(Module *Parent, std::string Name, unsigned NumParams,
           bool ReturnsVal);
  Function(const Function &) = delete;
  Function &operator=(const Function &) = delete;
  ~Function();

  Module *getParent() const { return Parent; }
  const std::string &getName() const { return Name; }

  unsigned getNumParams() const { return Args.size(); }
  Argument *getArg(unsigned I) const {
    assert(I < Args.size() && "argument index out of range");
    return Args[I].get();
  }
  bool returnsValue() const { return ReturnsVal; }

  bool isDeclaration() const { return Blocks.empty(); }

  // -- Blocks ----------------------------------------------------------------
  using block_iterator = std::list<BasicBlock *>::iterator;
  using const_block_iterator = std::list<BasicBlock *>::const_iterator;

  block_iterator begin() { return Blocks.begin(); }
  block_iterator end() { return Blocks.end(); }
  const_block_iterator begin() const { return Blocks.begin(); }
  const_block_iterator end() const { return Blocks.end(); }
  size_t size() const { return Blocks.size(); }

  BasicBlock *getEntryBlock() const {
    assert(!Blocks.empty() && "function has no body");
    return Blocks.front();
  }

  /// Creates a new block appended to the block list.
  BasicBlock *createBlock(std::string BlockName);
  /// Creates a new block inserted after \p After in the block list.
  BasicBlock *createBlockAfter(BasicBlock *After, std::string BlockName);
  /// Unlinks \p BB from the block list and detaches its instructions.
  /// The block must have no predecessors.
  void eraseBlock(BasicBlock *BB);

  // -- Instruction arena -------------------------------------------------------
  /// Takes ownership of \p I; returns the raw pointer for insertion into a
  /// block. Assigns the per-function instruction id.
  Instruction *adopt(std::unique_ptr<Instruction> I);

  /// adopt() with an explicit id instead of the next free one; the id
  /// counter is raised past \p Id. cloneModule uses this to reproduce the
  /// source function's ids (passes iterate in id order).
  Instruction *adopt(std::unique_ptr<Instruction> I, unsigned Id);

  /// The id the next adopted instruction would receive.
  unsigned nextInstId() const { return NextInstId; }
  /// Raises the id counter to at least \p Next (no-op if already past).
  /// cloneModule uses this to reproduce the source's counter even when
  /// the highest-id instructions were erased before the clone.
  void reserveInstIds(unsigned Next) { NextInstId = std::max(NextInstId, Next); }

  /// Detaches \p I from its block and drops its operands. The value must
  /// have no remaining users. Memory is reclaimed when the function dies.
  void eraseInstruction(Instruction *I);

  // -- CFG cache ----------------------------------------------------------------
  /// Marks predecessor caches stale. Called by mutation APIs; passes that
  /// mutate terminators through raw setters must call it themselves.
  void invalidateCFG() { CFGDirty = true; }
  /// Recomputes predecessor lists if stale.
  void ensureCFG() const;

  /// Total number of instructions currently attached to blocks.
  unsigned countInstructions() const;

private:
  Module *Parent;
  std::string Name;
  bool ReturnsVal;

  std::vector<std::unique_ptr<Argument>> Args;
  std::list<BasicBlock *> Blocks;
  std::vector<std::unique_ptr<BasicBlock>> BlockArena;
  std::vector<std::unique_ptr<Instruction>> InstArena;
  unsigned NextInstId = 0;
  mutable bool CFGDirty = true;
};

} // namespace wario

#endif // WARIO_IR_FUNCTION_H
