//===----------------------------------------------------------------------===//
///
/// \file
/// Function: a CFG of basic blocks plus the per-function bump arena owning
/// every block and instruction.
///
/// Each function has its own arena so parallel per-function passes can
/// create instructions lock-free; all enumeration lists (AllBlocks,
/// AllInsts) are function-local too. The function object itself lives in
/// its arena, which keeps the whole ownership graph inside IRContext's
/// slab set — that is what cloneModule bulk-copies.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_IR_FUNCTION_H
#define WARIO_IR_FUNCTION_H

#include "ir/BasicBlock.h"

#include <iterator>
#include <string>
#include <vector>

namespace wario {

class Module;

/// A function definition (or declaration, when it has no blocks).
///
/// Blocks and instructions are arena-owned by the function: detaching an
/// instruction from a block does not destroy it, which lets passes move
/// instructions around freely (the write-clustering passes depend on this).
class Function {
public:
  Function(Module *Parent, Arena *A, std::string Name, unsigned NumParams,
           bool ReturnsVal);
  Function(const Function &) = delete;
  Function &operator=(const Function &) = delete;

  Module *getParent() const { return Parent; }
  const std::string &getName() const { return *Name; }

  unsigned getNumParams() const { return unsigned(Args.size()); }
  Argument *getArg(unsigned I) const {
    assert(I < Args.size() && "argument index out of range");
    return Args[I];
  }
  bool returnsValue() const { return ReturnsVal; }

  bool isDeclaration() const { return NumBlocks == 0; }

  /// The arena every node of this function lives in. Per-function so
  /// parallel passes allocate without locks.
  Arena &localArena() const { return *A; }

  // -- Blocks ----------------------------------------------------------------
  /// Bidirectional iterator over the intrusive block list; `*it` is the
  /// BasicBlock pointer, matching the old std::list<BasicBlock *>.
  class block_iterator {
  public:
    using iterator_category = std::bidirectional_iterator_tag;
    using value_type = BasicBlock *;
    using difference_type = std::ptrdiff_t;
    using pointer = BasicBlock *const *;
    using reference = BasicBlock *;

    block_iterator() = default;
    block_iterator(BasicBlock *BB, const Function *F) : Cur(BB), F(F) {}

    BasicBlock *operator*() const { return Cur; }
    block_iterator &operator++() {
      Cur = Cur->NextB;
      return *this;
    }
    block_iterator operator++(int) {
      block_iterator T = *this;
      ++*this;
      return T;
    }
    block_iterator &operator--() {
      Cur = Cur ? Cur->PrevB : F->BLast;
      return *this;
    }
    block_iterator operator--(int) {
      block_iterator T = *this;
      --*this;
      return T;
    }
    bool operator==(const block_iterator &O) const { return Cur == O.Cur; }
    bool operator!=(const block_iterator &O) const { return Cur != O.Cur; }

  private:
    BasicBlock *Cur = nullptr;
    const Function *F = nullptr;
  };
  using const_block_iterator = block_iterator;

  block_iterator begin() const { return block_iterator(BFirst, this); }
  block_iterator end() const { return block_iterator(nullptr, this); }
  size_t size() const { return NumBlocks; }

  BasicBlock *getEntryBlock() const {
    assert(BFirst && "function has no body");
    return BFirst;
  }

  /// Creates a new block appended to the block list.
  BasicBlock *createBlock(std::string BlockName);
  /// Creates a new block inserted after \p After in the block list.
  BasicBlock *createBlockAfter(BasicBlock *After, std::string BlockName);
  /// Unlinks \p BB from the block list and detaches its instructions.
  /// The block must have no predecessors.
  void eraseBlock(BasicBlock *BB);

  // -- Instructions -----------------------------------------------------------
  /// Bump-allocates a detached instruction in this function's arena,
  /// assigns the next per-function id, and attaches the operands. The
  /// caller inserts it into a block.
  Instruction *createInstruction(Opcode Op,
                                 const std::vector<Value *> &Ops = {});

  /// The id the next created instruction would receive.
  unsigned nextInstId() const { return NextInstId; }

  /// Detaches \p I from its block and drops its operands. The value must
  /// have no remaining users. Memory is reclaimed when the module dies.
  void eraseInstruction(Instruction *I);

  // -- CFG cache ----------------------------------------------------------------
  /// Marks predecessor caches stale. Called by mutation APIs; passes that
  /// mutate terminators through raw setters must call it themselves.
  void invalidateCFG() { CFGDirty = true; }
  /// Recomputes predecessor lists if stale.
  void ensureCFG() const;

  /// Total number of instructions currently attached to blocks.
  unsigned countInstructions() const;

private:
  friend class Module;
  friend struct ModuleCloner;

  Module *Parent;
  Arena *A;
  const std::string *Name;
  bool ReturnsVal;

  ArenaVec<Argument *> Args;
  BasicBlock *BFirst = nullptr;
  BasicBlock *BLast = nullptr;
  uint32_t NumBlocks = 0;
  /// Every block/instruction ever created, attached or not — the clone
  /// fixup walk and teardown-free ownership both need full enumeration.
  ArenaVec<BasicBlock *> AllBlocks;
  ArenaVec<Instruction *> AllInsts;
  unsigned NextInstId = 0;
  mutable bool CFGDirty = true;
};

} // namespace wario

#endif // WARIO_IR_FUNCTION_H
