//===----------------------------------------------------------------------===//
///
/// \file
/// Compile-time evaluation of IR arithmetic, shared by the interpreter,
/// the constant folder, and the emulator so all three agree on semantics
/// (wrap-around 32-bit arithmetic, shift clamping, INT_MIN/-1 division).
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_IR_CONSTEVAL_H
#define WARIO_IR_CONSTEVAL_H

#include "ir/Instruction.h"

#include <optional>

namespace wario {

/// Evaluates a binary opcode on 32-bit values. Returns nullopt for
/// division or remainder by zero (a trap, not a value).
inline std::optional<uint32_t> constEvalBinary(Opcode Op, uint32_t A,
                                               uint32_t B) {
  int32_t SA = static_cast<int32_t>(A), SB = static_cast<int32_t>(B);
  switch (Op) {
  case Opcode::Add: return A + B;
  case Opcode::Sub: return A - B;
  case Opcode::Mul: return A * B;
  case Opcode::UDiv:
    if (B == 0)
      return std::nullopt;
    return A / B;
  case Opcode::SDiv:
    if (B == 0)
      return std::nullopt;
    if (SA == INT32_MIN && SB == -1)
      return uint32_t(INT32_MIN);
    return uint32_t(SA / SB);
  case Opcode::URem:
    if (B == 0)
      return std::nullopt;
    return A % B;
  case Opcode::SRem:
    if (B == 0)
      return std::nullopt;
    if (SA == INT32_MIN && SB == -1)
      return 0u;
    return uint32_t(SA % SB);
  case Opcode::And: return A & B;
  case Opcode::Or: return A | B;
  case Opcode::Xor: return A ^ B;
  case Opcode::Shl: return B >= 32 ? 0u : A << B;
  case Opcode::LShr: return B >= 32 ? 0u : A >> B;
  case Opcode::AShr:
    if (B >= 32)
      return SA < 0 ? ~0u : 0u;
    return uint32_t(SA >> B);
  default:
    assert(false && "not a binary opcode");
    return std::nullopt;
  }
}

/// Evaluates an ICmp predicate on 32-bit values.
inline bool constEvalPred(CmpPred P, uint32_t A, uint32_t B) {
  int32_t SA = static_cast<int32_t>(A), SB = static_cast<int32_t>(B);
  switch (P) {
  case CmpPred::EQ: return A == B;
  case CmpPred::NE: return A != B;
  case CmpPred::ULT: return A < B;
  case CmpPred::ULE: return A <= B;
  case CmpPred::UGT: return A > B;
  case CmpPred::UGE: return A >= B;
  case CmpPred::SLT: return SA < SB;
  case CmpPred::SLE: return SA <= SB;
  case CmpPred::SGT: return SA > SB;
  case CmpPred::SGE: return SA >= SB;
  }
  return false;
}

} // namespace wario

#endif // WARIO_IR_CONSTEVAL_H
