//===----------------------------------------------------------------------===//
///
/// \file
/// IRBuilder: convenience factory for creating instructions at an insertion
/// point, in the style of llvm::IRBuilder.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_IR_IRBUILDER_H
#define WARIO_IR_IRBUILDER_H

#include "ir/Module.h"

#include <algorithm>

namespace wario {

/// Creates instructions and inserts them at a movable insertion point.
class IRBuilder {
public:
  explicit IRBuilder(Module *M) : M(M) {}

  Module *getModule() const { return M; }

  /// Sets the insertion point to the end of \p BB.
  void setInsertPoint(BasicBlock *BB) {
    InsertBB = BB;
    InsertPos = BB->end();
  }
  /// Sets the insertion point immediately before \p I.
  void setInsertPoint(Instruction *I) {
    InsertBB = I->getParent();
    assert(InsertBB && "cannot insert before a detached instruction");
    InsertPos = std::find(InsertBB->begin(), InsertBB->end(), I);
  }
  BasicBlock *getInsertBlock() const { return InsertBB; }

  Constant *getInt(int32_t V) { return M->getConstant(V); }

  // -- Memory -----------------------------------------------------------------
  Instruction *createAlloca(uint32_t SizeBytes, const std::string &Name) {
    Instruction *I = create(Opcode::Alloca, {});
    I->setAllocaSize(SizeBytes);
    I->setName(Name);
    return I;
  }

  Instruction *createLoad(Value *Addr, uint8_t Size = 4, bool Signed = false,
                          const std::string &Name = "ld") {
    Instruction *I = create(Opcode::Load, {Addr});
    I->setAccessSize(Size);
    I->setSignedLoad(Signed);
    I->setName(Name);
    return I;
  }

  Instruction *createStore(Value *Val, Value *Addr, uint8_t Size = 4) {
    Instruction *I = create(Opcode::Store, {Val, Addr});
    I->setAccessSize(Size);
    return I;
  }

  /// Address arithmetic: Base + Index * Scale + Offset. Pass Index=nullptr
  /// for a constant-only offset.
  Instruction *createGep(Value *Base, Value *Index, int32_t Scale,
                         int32_t Offset = 0, const std::string &Name = "gep") {
    std::vector<Value *> Ops{Base};
    if (Index)
      Ops.push_back(Index);
    Instruction *I = create(Opcode::Gep, std::move(Ops));
    I->setGepScale(Scale);
    I->setGepOffset(Offset);
    I->setName(Name);
    return I;
  }

  // -- Arithmetic ---------------------------------------------------------------
  Instruction *createBinary(Opcode Op, Value *A, Value *B,
                            const std::string &Name = "t") {
    assert(Op >= Opcode::Add && Op <= Opcode::AShr && "not a binary opcode");
    Instruction *I = create(Op, {A, B});
    I->setName(Name);
    return I;
  }
  Instruction *createAdd(Value *A, Value *B, const std::string &N = "add") {
    return createBinary(Opcode::Add, A, B, N);
  }
  Instruction *createSub(Value *A, Value *B, const std::string &N = "sub") {
    return createBinary(Opcode::Sub, A, B, N);
  }
  Instruction *createMul(Value *A, Value *B, const std::string &N = "mul") {
    return createBinary(Opcode::Mul, A, B, N);
  }

  Instruction *createICmp(CmpPred P, Value *A, Value *B,
                          const std::string &Name = "cmp") {
    Instruction *I = create(Opcode::ICmp, {A, B});
    I->setPredicate(P);
    I->setName(Name);
    return I;
  }

  Instruction *createSelect(Value *Cond, Value *TVal, Value *FVal,
                            const std::string &Name = "sel") {
    Instruction *I = create(Opcode::Select, {Cond, TVal, FVal});
    I->setName(Name);
    return I;
  }

  // -- Calls / intrinsics ----------------------------------------------------------
  Instruction *createCall(Function *Callee, std::vector<Value *> Args,
                          const std::string &Name = "call") {
    assert(Args.size() == Callee->getNumParams() && "call arity mismatch");
    Instruction *I = create(Opcode::Call, std::move(Args));
    I->setCallee(Callee);
    if (Callee->returnsValue())
      I->setName(Name);
    return I;
  }

  Instruction *createOut(Value *V) { return create(Opcode::Out, {V}); }

  Instruction *createCheckpoint() { return create(Opcode::Checkpoint, {}); }

  // -- Control flow ------------------------------------------------------------------
  Instruction *createBr(Value *Cond, BasicBlock *Then, BasicBlock *Else) {
    Instruction *I = create(Opcode::Br, {Cond});
    I->addBlockOperand(Then);
    I->addBlockOperand(Else);
    return I;
  }

  Instruction *createJmp(BasicBlock *Dest) {
    Instruction *I = create(Opcode::Jmp, {});
    I->addBlockOperand(Dest);
    return I;
  }

  Instruction *createRet(Value *V = nullptr) {
    return create(Opcode::Ret, V ? std::vector<Value *>{V}
                                 : std::vector<Value *>{});
  }

  Instruction *createPhi(const std::string &Name = "phi") {
    Instruction *I = create(Opcode::Phi, {});
    I->setName(Name);
    return I;
  }

  /// Adds an incoming (value, predecessor) pair to a phi.
  static void addPhiIncoming(Instruction *Phi, Value *V, BasicBlock *Pred) {
    assert(Phi->getOpcode() == Opcode::Phi && "not a phi");
    Phi->addOperand(V);
    Phi->addBlockOperand(Pred);
  }

private:
  Instruction *create(Opcode Op, const std::vector<Value *> &Ops) {
    assert(InsertBB && "no insertion point set");
    Function *F = InsertBB->getParent();
    Instruction *I = F->createInstruction(Op, Ops);
    InsertBB->insert(InsertPos, I);
    return I;
  }

  Module *M;
  BasicBlock *InsertBB = nullptr;
  BasicBlock::iterator InsertPos;
};

} // namespace wario

#endif // WARIO_IR_IRBUILDER_H
