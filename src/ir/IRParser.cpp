#include "ir/IRParser.h"

#include "ir/IRBuilder.h"

#include <cctype>
#include <sstream>
#include <unordered_map>

using namespace wario;

namespace {

/// Line-oriented recursive-descent parser over the printer's output.
class IRParserImpl {
public:
  IRParserImpl(const std::string &Text, DiagnosticEngine &Diags)
      : Diags(Diags) {
    std::istringstream SS(Text);
    std::string L;
    while (std::getline(SS, L))
      Lines.push_back(L);
  }

  std::unique_ptr<Module> run() {
    M = std::make_unique<Module>("parsed");
    while (Cur < Lines.size() && !Diags.hasErrors()) {
      const std::string &L = trimmed();
      if (L.empty()) {
        ++Cur;
        continue;
      }
      if (L.rfind("global @", 0) == 0) {
        parseGlobal(L);
        ++Cur;
      } else if (L.rfind("declare @", 0) == 0) {
        // Declarations round-trip as 0-ary void declarations.
        M->createFunction(L.substr(9), 0, false);
        ++Cur;
      } else if (L.rfind("func @", 0) == 0) {
        parseFunction();
      } else {
        error("unexpected top-level line: '" + L + "'");
        ++Cur;
      }
    }
    if (Diags.hasErrors())
      return nullptr;
    return std::move(M);
  }

private:
  void error(const std::string &Msg) {
    Diags.error({uint32_t(Cur + 1), 1}, Msg);
  }

  std::string trimmed() const {
    const std::string &L = Lines[Cur];
    size_t B = L.find_first_not_of(" \t");
    size_t E = L.find_last_not_of(" \t\r");
    if (B == std::string::npos)
      return "";
    return L.substr(B, E - B + 1);
  }

  // --- Token scanning within one line --------------------------------------
  struct Scanner {
    const std::string &S;
    size_t P = 0;

    void skipWs() {
      while (P < S.size() && (S[P] == ' ' || S[P] == '\t'))
        ++P;
    }
    bool eat(const std::string &Lit) {
      skipWs();
      if (S.compare(P, Lit.size(), Lit) == 0) {
        P += Lit.size();
        return true;
      }
      return false;
    }
    bool atEnd() {
      skipWs();
      return P >= S.size();
    }
    /// An identifier-ish token: letters, digits, '_', '.'.
    std::string ident() {
      skipWs();
      size_t B = P;
      while (P < S.size() &&
             (std::isalnum(static_cast<unsigned char>(S[P])) ||
              S[P] == '_' || S[P] == '.'))
        ++P;
      return S.substr(B, P - B);
    }
    bool number(int64_t &Out) {
      skipWs();
      size_t B = P;
      if (P < S.size() && S[P] == '-')
        ++P;
      size_t DigitsBegin = P;
      while (P < S.size() && std::isdigit(static_cast<unsigned char>(S[P])))
        ++P;
      if (P == DigitsBegin) {
        P = B;
        return false;
      }
      Out = std::stoll(S.substr(B, P - B));
      return true;
    }
  };

  // --- Top-level pieces -------------------------------------------------------
  void parseGlobal(const std::string &L) {
    Scanner Sc{L};
    Sc.eat("global @");
    std::string Name = Sc.ident();
    int64_t Size = 0;
    if (!Sc.eat(" :") || !Sc.number(Size) || !Sc.eat(" bytes")) {
      // Retry in one sweep with flexible spacing.
      Scanner Sc2{L};
      Sc2.eat("global @");
      Name = Sc2.ident();
      Sc2.eat(":");
      if (!Sc2.number(Size)) {
        error("malformed global line");
        return;
      }
    }
    M->createGlobal(Name, uint32_t(Size));
  }

  void parseFunction() {
    std::string Header = trimmed();
    Scanner Sc{Header};
    Sc.eat("func @");
    std::string Name = Sc.ident();
    if (!Sc.eat("(")) {
      error("expected '(' in function header");
      ++Cur;
      return;
    }
    std::vector<std::string> Params;
    if (!Sc.eat(")")) {
      do {
        if (!Sc.eat("%")) {
          error("expected parameter");
          break;
        }
        Params.push_back(Sc.ident());
      } while (Sc.eat(","));
      Sc.eat(")");
    }
    bool ReturnsVal = Sc.eat(" -> i32") || Sc.eat("-> i32");
    Function *F = M->getFunction(Name);
    if (F) {
      error("duplicate function @" + Name);
      ++Cur;
      return;
    }
    F = M->createFunction(Name, unsigned(Params.size()), ReturnsVal);
    for (unsigned I = 0; I != Params.size(); ++I)
      F->getArg(I)->setName(Params[I]);
    ++Cur;

    // First pass: find the block labels up to the closing brace.
    Values.clear();
    Blocks.clear();
    Fixups.clear();
    for (unsigned I = 0; I != Params.size(); ++I)
      Values["%" + Params[I]] = F->getArg(I);

    size_t BodyStart = Cur;
    for (size_t I = Cur; I < Lines.size(); ++I) {
      std::string L = Lines[I];
      size_t B = L.find_first_not_of(" \t");
      if (B == std::string::npos)
        continue;
      size_t E = L.find_last_not_of(" \t\r");
      std::string T = L.substr(B, E - B + 1);
      if (T == "}")
        break;
      if (T.back() == ':' && B == 0)
        Blocks[T.substr(0, T.size() - 1)] =
            F->createBlock(T.substr(0, T.size() - 1));
    }

    // Second pass: instructions.
    Cur = BodyStart;
    IRBuilder IRB(M.get());
    BasicBlock *BB = nullptr;
    while (Cur < Lines.size() && !Diags.hasErrors()) {
      std::string T = trimmed();
      if (T == "}") {
        ++Cur;
        break;
      }
      if (T.empty()) {
        ++Cur;
        continue;
      }
      if (T.back() == ':' && Lines[Cur].find_first_not_of(" \t") == 0) {
        BB = Blocks[T.substr(0, T.size() - 1)];
        IRB.setInsertPoint(BB);
        ++Cur;
        continue;
      }
      if (!BB) {
        error("instruction outside any block");
        return;
      }
      parseInstruction(IRB, T);
      ++Cur;
    }

    // Resolve forward references.
    for (auto &[I, OpIdx, Token] : Fixups) {
      auto It = Values.find(Token);
      if (It == Values.end()) {
        error("use of undefined value " + Token);
        return;
      }
      I->setOperand(OpIdx, It->second);
    }
  }

  // --- Operands --------------------------------------------------------------------
  /// Parses one value operand; may register a fixup on \p Pending if the
  /// token is not defined yet.
  Value *parseValue(Scanner &Sc, std::vector<std::string> *PendingToken) {
    Sc.skipWs();
    if (Sc.eat("%")) {
      std::string Token = "%" + Sc.ident();
      auto It = Values.find(Token);
      if (It != Values.end())
        return It->second;
      if (PendingToken) {
        PendingToken->push_back(Token);
        return M->getConstant(0); // Placeholder; patched by fixups.
      }
      error("use of undefined value " + Token);
      return M->getConstant(0);
    }
    if (Sc.eat("@")) {
      std::string Name = Sc.ident();
      if (GlobalVariable *G = M->getGlobal(Name))
        return G;
      error("unknown global @" + Name);
      return M->getConstant(0);
    }
    int64_t N = 0;
    if (Sc.number(N))
      return M->getConstant(int32_t(N));
    error("expected an operand");
    return M->getConstant(0);
  }

  /// Wraps parseValue: operand I of instruction (to be attached) gets a
  /// fixup when the token is forward-referenced.
  void operand(Instruction *I, unsigned Idx, Scanner &Sc) {
    std::vector<std::string> Pending;
    Value *V = parseValue(Sc, &Pending);
    I->setOperand(Idx, V);
    if (!Pending.empty())
      Fixups.emplace_back(I, Idx, Pending.front());
  }

  BasicBlock *blockRef(Scanner &Sc) {
    std::string Name = Sc.ident();
    auto It = Blocks.find(Name);
    if (It == Blocks.end()) {
      error("unknown block '" + Name + "'");
      return nullptr;
    }
    return It->second;
  }

  /// Strips the printer's ".id" suffix to recover the base name.
  static std::string baseName(const std::string &Token) {
    size_t Dot = Token.rfind('.');
    if (Dot == std::string::npos || Dot + 1 >= Token.size())
      return Token;
    for (size_t I = Dot + 1; I < Token.size(); ++I)
      if (!std::isdigit(static_cast<unsigned char>(Token[I])))
        return Token;
    return Token.substr(0, Dot);
  }

  void define(const std::string &Token, Instruction *I) {
    I->setName(baseName(Token.substr(1)));
    Values[Token] = I;
  }

  // --- Instructions ----------------------------------------------------------------
  void parseInstruction(IRBuilder &IRB, const std::string &T) {
    Scanner Sc{T};
    std::string DefToken;
    if (Sc.eat("%")) {
      DefToken = "%" + Sc.ident();
      if (!Sc.eat(" =") && !Sc.eat("=")) {
        error("expected '=' after result name");
        return;
      }
    }
    Sc.skipWs();
    std::string Op = Sc.ident();

    auto DefineIf = [&](Instruction *I) {
      if (!DefToken.empty())
        define(DefToken, I);
    };

    if (Op == "alloca") {
      int64_t N = 0;
      Sc.number(N);
      DefineIf(IRB.createAlloca(uint32_t(N), "a"));
      return;
    }
    if (Op.rfind("loadi", 0) == 0) {
      unsigned Bits = Op.find("32") != std::string::npos  ? 32
                      : Op.find("16") != std::string::npos ? 16
                                                           : 8;
      bool Signed = Op.back() == 's';
      Instruction *I = IRB.createLoad(M->getConstant(0), uint8_t(Bits / 8),
                                      Signed, "l");
      operand(I, 0, Sc);
      DefineIf(I);
      return;
    }
    if (Op.rfind("storei", 0) == 0) {
      unsigned Bits = Op.find("32") != std::string::npos  ? 32
                      : Op.find("16") != std::string::npos ? 16
                                                           : 8;
      Instruction *I = IRB.createStore(M->getConstant(0), M->getConstant(0),
                                       uint8_t(Bits / 8));
      operand(I, 0, Sc);
      Sc.eat(",");
      operand(I, 1, Sc);
      if (Sc.eat("!log"))
        I->setSpecLogged(true);
      return;
    }
    if (Op == "gep") {
      // base [+ index * scale] [+ offset]
      std::vector<std::string> Pending;
      Value *Base = parseValue(Sc, &Pending);
      Value *Index = nullptr;
      int64_t Scale = 1, Offset = 0, N = 0;
      std::string IdxToken;
      if (Sc.eat("+")) {
        size_t SaveP = Sc.P;
        if (Sc.number(N)) {
          Offset = N; // "+ constant" straight to the offset.
        } else {
          Sc.P = SaveP;
          std::vector<std::string> IdxPending;
          Index = parseValue(Sc, &IdxPending);
          if (!IdxPending.empty())
            IdxToken = IdxPending.front();
          if (Sc.eat("*"))
            Sc.number(Scale);
          if (Sc.eat("+") && Sc.number(N))
            Offset = N;
        }
      }
      Instruction *I = IRB.createGep(Base, Index, int32_t(Scale),
                                     int32_t(Offset), "g");
      if (!Pending.empty())
        Fixups.emplace_back(I, 0, Pending.front());
      if (!IdxToken.empty())
        Fixups.emplace_back(I, 1, IdxToken);
      DefineIf(I);
      return;
    }
    if (Op == "icmp") {
      std::string P = Sc.ident();
      static const std::unordered_map<std::string, CmpPred> Preds = {
          {"eq", CmpPred::EQ},   {"ne", CmpPred::NE},
          {"ult", CmpPred::ULT}, {"ule", CmpPred::ULE},
          {"ugt", CmpPred::UGT}, {"uge", CmpPred::UGE},
          {"slt", CmpPred::SLT}, {"sle", CmpPred::SLE},
          {"sgt", CmpPred::SGT}, {"sge", CmpPred::SGE}};
      auto It = Preds.find(P);
      if (It == Preds.end()) {
        error("unknown icmp predicate '" + P + "'");
        return;
      }
      Instruction *I = IRB.createICmp(It->second, M->getConstant(0),
                                      M->getConstant(0), "c");
      operand(I, 0, Sc);
      Sc.eat(",");
      operand(I, 1, Sc);
      DefineIf(I);
      return;
    }
    if (Op == "select") {
      Instruction *I =
          IRB.createSelect(M->getConstant(0), M->getConstant(0),
                           M->getConstant(0), "s");
      operand(I, 0, Sc);
      Sc.eat(",");
      operand(I, 1, Sc);
      Sc.eat(",");
      operand(I, 2, Sc);
      DefineIf(I);
      return;
    }
    if (Op == "call") {
      Sc.eat("@");
      std::string Callee = Sc.ident();
      Function *CF = M->getFunction(Callee);
      if (!CF) {
        error("call to unknown function @" + Callee);
        return;
      }
      Sc.eat("(");
      std::vector<Value *> Args;
      std::vector<std::pair<unsigned, std::string>> ArgFixups;
      if (!Sc.eat(")")) {
        do {
          std::vector<std::string> Pending;
          Value *V = parseValue(Sc, &Pending);
          if (!Pending.empty())
            ArgFixups.emplace_back(unsigned(Args.size()), Pending.front());
          Args.push_back(V);
        } while (Sc.eat(","));
        Sc.eat(")");
      }
      if (Args.size() != CF->getNumParams()) {
        error("call arity mismatch for @" + Callee);
        return;
      }
      Instruction *I = IRB.createCall(CF, std::move(Args), "r");
      for (auto &[Idx, Tok] : ArgFixups)
        Fixups.emplace_back(I, Idx, Tok);
      DefineIf(I);
      return;
    }
    if (Op == "out") {
      Instruction *I = IRB.createOut(M->getConstant(0));
      operand(I, 0, Sc);
      return;
    }
    if (Op == "checkpoint") {
      Instruction *I = IRB.createCheckpoint();
      if (Sc.eat("(")) {
        std::string Cause;
        while (!Sc.atEnd() && !Sc.eat(")")) {
          std::string Piece = Sc.ident();
          if (Piece.empty()) {
            ++Sc.P;
            Cause += "-";
            continue;
          }
          Cause += Piece;
        }
        if (Cause.find("backend") != std::string::npos)
          I->setCheckpointCause(CheckpointCause::BackendSpill);
        else if (Cause.find("entry") != std::string::npos)
          I->setCheckpointCause(CheckpointCause::FunctionEntry);
        else if (Cause.find("exit") != std::string::npos)
          I->setCheckpointCause(CheckpointCause::FunctionExit);
      }
      return;
    }
    if (Op == "br") {
      Instruction *I = IRB.createBr(M->getConstant(0), nullptr, nullptr);
      operand(I, 0, Sc);
      Sc.eat(",");
      I->setBlockOperand(0, blockRef(Sc));
      Sc.eat(",");
      I->setBlockOperand(1, blockRef(Sc));
      return;
    }
    if (Op == "jmp") {
      BasicBlock *Dest = blockRef(Sc);
      if (Dest)
        IRB.createJmp(Dest);
      return;
    }
    if (Op == "ret") {
      if (Sc.atEnd()) {
        IRB.createRet();
        return;
      }
      Instruction *I = IRB.createRet(M->getConstant(0));
      operand(I, 0, Sc);
      return;
    }
    if (Op == "phi") {
      Instruction *I = IRB.createPhi("p");
      while (Sc.eat("[")) {
        std::vector<std::string> Pending;
        Value *V = parseValue(Sc, &Pending);
        Sc.eat(",");
        BasicBlock *In = blockRef(Sc);
        Sc.eat("]");
        IRBuilder::addPhiIncoming(I, V, In);
        if (!Pending.empty())
          Fixups.emplace_back(I, I->getNumOperands() - 1, Pending.front());
        if (!Sc.eat(","))
          break;
      }
      DefineIf(I);
      return;
    }

    // Binary operators.
    static const std::unordered_map<std::string, Opcode> Bins = {
        {"add", Opcode::Add},   {"sub", Opcode::Sub},
        {"mul", Opcode::Mul},   {"udiv", Opcode::UDiv},
        {"sdiv", Opcode::SDiv}, {"urem", Opcode::URem},
        {"srem", Opcode::SRem}, {"and", Opcode::And},
        {"or", Opcode::Or},     {"xor", Opcode::Xor},
        {"shl", Opcode::Shl},   {"lshr", Opcode::LShr},
        {"ashr", Opcode::AShr}};
    auto It = Bins.find(Op);
    if (It != Bins.end()) {
      Instruction *I = IRB.createBinary(It->second, M->getConstant(0),
                                        M->getConstant(0), "b");
      operand(I, 0, Sc);
      Sc.eat(",");
      operand(I, 1, Sc);
      DefineIf(I);
      return;
    }
    error("unknown instruction '" + Op + "'");
  }

  DiagnosticEngine &Diags;
  std::vector<std::string> Lines;
  size_t Cur = 0;
  std::unique_ptr<Module> M;
  std::unordered_map<std::string, Value *> Values;
  std::unordered_map<std::string, BasicBlock *> Blocks;
  std::vector<std::tuple<Instruction *, unsigned, std::string>> Fixups;
};

} // namespace

std::unique_ptr<Module> wario::parseModule(const std::string &Text,
                                           DiagnosticEngine &Diags) {
  IRParserImpl P(Text, Diags);
  return P.run();
}
