#include "support/Arena.h"

#include <map>
#include <mutex>
#include <new>
#include <shared_mutex>
#include <unordered_set>

using namespace wario;

namespace {

/// Process-wide recycling pool of arena slabs, keyed by (quantized) size.
/// Module lifetimes in the experiment harness are short and bursty —
/// clone, mutate, measure, drop — so slabs cycle through here instead of
/// the system allocator.
class SlabPool {
public:
  static SlabPool &get() {
    static SlabPool Pool;
    return Pool;
  }

  char *acquire(size_t Size) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      auto It = Free.find(Size);
      if (It != Free.end() && !It->second.empty()) {
        char *Base = It->second.back();
        It->second.pop_back();
        FreeBytes -= Size;
        return Base;
      }
    }
    return static_cast<char *>(::operator new(Size));
  }

  void release(char *Base, size_t Size) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Free[Size].push_back(Base);
    FreeBytes += Size;
  }

  size_t freeBytes() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return FreeBytes;
  }

  ~SlabPool() {
    for (auto &[Size, List] : Free)
      for (char *Base : List)
        ::operator delete(Base);
  }

private:
  mutable std::mutex Mutex;
  std::map<size_t, std::vector<char *>> Free;
  size_t FreeBytes = 0;
};

size_t quantize(size_t Bytes) {
  return (Bytes + Arena::SlabQuantum - 1) / Arena::SlabQuantum *
         Arena::SlabQuantum;
}

} // namespace

Arena::~Arena() {
  for (const Slab &S : Slabs)
    SlabPool::get().release(S.Base, S.Size);
}

void *Arena::allocate(size_t Bytes, size_t Align) {
  assert(Align && (Align & (Align - 1)) == 0 && "alignment not a power of 2");
  assert(Align <= alignof(std::max_align_t) && "over-aligned arena request");
  if (!Slabs.empty()) {
    Slab &S = Slabs.back();
    size_t Aligned = (S.Used + Align - 1) & ~(Align - 1);
    if (Aligned + Bytes <= S.Size) {
      S.Used = Aligned + Bytes;
      return S.Base + Aligned;
    }
  }
  size_t SlabSize = quantize(Bytes);
  Slabs.push_back({SlabPool::get().acquire(SlabSize), SlabSize, Bytes});
  return Slabs.back().Base;
}

size_t Arena::bytesUsed() const {
  size_t N = 0;
  for (const Slab &S : Slabs)
    N += S.Used;
  return N;
}

void Arena::adoptCopyOf(const Arena &Src) {
  assert(Slabs.empty() && "adoptCopyOf target must be a fresh arena");
  Slabs.reserve(Src.Slabs.size());
  for (const Slab &S : Src.Slabs) {
    char *Base = SlabPool::get().acquire(S.Size);
    std::memcpy(Base, S.Base, S.Used);
    Slabs.push_back({Base, S.Size, S.Used});
  }
}

size_t Arena::pooledBytes() { return SlabPool::get().freeBytes(); }

const std::string &wario::internedName(std::string S) {
  // std::unordered_set never moves elements, so the returned reference is
  // stable for the life of the process.
  static std::shared_mutex Mutex;
  static std::unordered_set<std::string> Table;
  {
    std::shared_lock<std::shared_mutex> Lock(Mutex);
    auto It = Table.find(S);
    if (It != Table.end())
      return *It;
  }
  std::unique_lock<std::shared_mutex> Lock(Mutex);
  return *Table.insert(std::move(S)).first;
}
