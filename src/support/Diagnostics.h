//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic reporting shared by the front end, the pass pipeline, and the
/// emulator. Diagnostics are collected into a DiagnosticEngine so library
/// code never writes to stderr or terminates the process on user-input
/// errors; tools decide how to render them.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_SUPPORT_DIAGNOSTICS_H
#define WARIO_SUPPORT_DIAGNOSTICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace wario {

/// A location in a front-end source buffer. Line and column are 1-based;
/// a value of 0 means "unknown".
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  bool isValid() const { return Line != 0; }
};

/// Severity of a diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported diagnostic: severity, optional location, message.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics produced while processing one input.
///
/// The engine never prints; callers inspect \c diagnostics() or render them
/// with \c formatAll(). Errors are sticky: once an error is reported,
/// \c hasErrors() stays true.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void error(std::string Message) { error(SourceLoc(), std::move(Message)); }

  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
  }

  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics as "line:col: severity: message" lines.
  std::string formatAll() const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace wario

#endif // WARIO_SUPPORT_DIAGNOSTICS_H
