//===----------------------------------------------------------------------===//
///
/// \file
/// Bump-pointer arena allocation for the IR core, plus the process-wide
/// string interner.
///
/// An Arena hands out memory by bumping a cursor through fixed-quantum
/// slabs; nothing is freed individually, and destroying the arena returns
/// every slab to a global SlabPool for reuse by the next module. Because
/// slab sizes are quantized, a recycled slab is byte-for-byte the same
/// shape as a fresh one — which is what lets cloneModule duplicate an
/// arena with plain memcpy (Arena::adoptCopyOf) and fix pointers up
/// afterwards.
///
/// ArenaVec is the growable-array companion: a trivially-copyable
/// {data, size, capacity} triple whose storage lives in an arena. IR nodes
/// use it for operand, user, and predecessor lists so that whole nodes
/// stay trivially copyable for the bulk clone.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_SUPPORT_ARENA_H
#define WARIO_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

namespace wario {

struct ModuleCloner;

/// A bump-pointer allocator over pooled slabs. Not thread-safe: each IR
/// function gets its own arena precisely so parallel per-function passes
/// can allocate without synchronization (the shared SlabPool underneath is
/// mutex-guarded).
class Arena {
public:
  /// Slab quantum. Every slab is a multiple of this, so the global pool's
  /// size-keyed free lists actually get hits.
  static constexpr size_t SlabQuantum = 1u << 16; // 64 KiB

  struct Slab {
    char *Base;
    size_t Size; ///< Total capacity in bytes (multiple of SlabQuantum).
    size_t Used; ///< Bump cursor.
  };

  Arena() = default;
  ~Arena();
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Bump-allocates \p Bytes with \p Align (power of two).
  void *allocate(size_t Bytes, size_t Align);

  /// Placement-constructs a T in the arena. T must be trivially
  /// destructible: arena teardown never runs destructors.
  template <typename T, typename... ArgTs> T *create(ArgTs &&...Args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena-allocated types must not need destructors");
    return new (allocate(sizeof(T), alignof(T)))
        T(std::forward<ArgTs>(Args)...);
  }

  const std::vector<Slab> &slabs() const { return Slabs; }

  /// Total bytes handed out so far (sum of every slab's cursor).
  size_t bytesUsed() const;

  /// Clone support: this arena must be empty; afterwards it holds slabs of
  /// exactly the same sizes and cursors as \p Src, with identical
  /// contents. Interior pointers still point into \p Src — the caller
  /// (ModuleCloner) rewrites them.
  void adoptCopyOf(const Arena &Src);

  /// Bytes currently parked in the global slab pool, available for reuse.
  /// Exposed so tests can observe that dropping a module recycles its
  /// memory instead of returning it to the OS.
  static size_t pooledBytes();

private:
  std::vector<Slab> Slabs;
};

/// Interns \p S into a process-wide, thread-safe table and returns a
/// reference that lives until process exit. Equal strings yield the same
/// address, so IR nodes store `const std::string *` names — trivially
/// copyable, clone-invariant, and free to compare.
const std::string &internedName(std::string S);

/// A growable array of trivially-copyable elements with arena-backed
/// storage. Growth allocates a fresh block and abandons the old one (bump
/// arenas do not free); mutation APIs therefore take the Arena explicitly.
template <typename T> class ArenaVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaVec elements must be trivially copyable");

public:
  ArenaVec() = default;
  ArenaVec(const ArenaVec &) = delete;
  ArenaVec &operator=(const ArenaVec &) = delete;

  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;

  T *begin() { return Data; }
  T *end() { return Data + Sz; }
  const T *begin() const { return Data; }
  const T *end() const { return Data + Sz; }

  size_t size() const { return Sz; }
  bool empty() const { return Sz == 0; }

  T &operator[](size_t I) {
    assert(I < Sz && "ArenaVec index out of range");
    return Data[I];
  }
  const T &operator[](size_t I) const {
    assert(I < Sz && "ArenaVec index out of range");
    return Data[I];
  }
  T &front() { return (*this)[0]; }
  T &back() { return (*this)[Sz - 1]; }
  const T &front() const { return (*this)[0]; }
  const T &back() const { return (*this)[Sz - 1]; }

  void push_back(Arena &A, const T &V) {
    if (Sz == Cap)
      grow(A, Sz + 1);
    Data[Sz++] = V;
  }

  void pop_back() {
    assert(Sz && "pop_back on empty ArenaVec");
    --Sz;
  }

  /// Drops all elements but keeps the storage (the predecessor caches are
  /// rebuilt over and over; this keeps that churn allocation-free).
  void clear() { Sz = 0; }

  /// Removes element \p I, shifting later elements down — order-preserving,
  /// like std::vector::erase. User lists rely on this: passes iterate them
  /// and the order is part of the deterministic-compile contract.
  void erase(size_t I) {
    assert(I < Sz && "ArenaVec erase out of range");
    std::memmove(Data + I, Data + I + 1, (Sz - I - 1) * sizeof(T));
    --Sz;
  }

  void reserve(Arena &A, size_t N) {
    if (N > Cap)
      grow(A, N);
  }

  void assign(Arena &A, const T *First, const T *Last) {
    Sz = 0;
    reserve(A, size_t(Last - First));
    std::memcpy(Data, First, size_t(Last - First) * sizeof(T));
    Sz = uint32_t(Last - First);
  }

private:
  friend struct ModuleCloner;

  void grow(Arena &A, size_t MinCap) {
    size_t NewCap = Cap ? Cap * 2 : 4;
    if (NewCap < MinCap)
      NewCap = MinCap;
    T *NewData = static_cast<T *>(A.allocate(NewCap * sizeof(T), alignof(T)));
    if (Sz)
      std::memcpy(NewData, Data, Sz * sizeof(T));
    Data = NewData;
    Cap = uint32_t(NewCap);
  }

  T *Data = nullptr;
  uint32_t Sz = 0;
  uint32_t Cap = 0;
};

} // namespace wario

#endif // WARIO_SUPPORT_ARENA_H
