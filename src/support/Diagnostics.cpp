#include "support/Diagnostics.h"

#include <sstream>

using namespace wario;

std::string DiagnosticEngine::formatAll() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    if (D.Loc.isValid())
      OS << D.Loc.Line << ':' << D.Loc.Col << ": ";
    switch (D.Kind) {
    case DiagKind::Error:
      OS << "error: ";
      break;
    case DiagKind::Warning:
      OS << "warning: ";
      break;
    case DiagKind::Note:
      OS << "note: ";
      break;
    }
    OS << D.Message << '\n';
  }
  return OS.str();
}
