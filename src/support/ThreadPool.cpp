#include "support/ThreadPool.h"

#include <atomic>
#include <cstdlib>

using namespace wario;

unsigned wario::defaultJobs() {
  if (const char *Env = std::getenv("WARIO_JOBS")) {
    char *End = nullptr;
    long V = std::strtol(Env, &End, 10);
    if (End != Env && *End == '\0' && V > 0)
      return unsigned(V);
  }
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

ThreadPool::ThreadPool(unsigned Jobs) : NumJobs(Jobs ? Jobs : defaultJobs()) {
  // One job: the caller drains the queue itself in wait(); spawning a
  // single worker would only add scheduling noise.
  for (unsigned I = 1; I < NumJobs; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  wait();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  TaskReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Tasks.push(std::move(Task));
  }
  TaskReady.notify_one();
}

bool ThreadPool::runOneTask(std::unique_lock<std::mutex> &Lock) {
  if (Tasks.empty())
    return false;
  std::function<void()> Task = std::move(Tasks.front());
  Tasks.pop();
  ++Running;
  Lock.unlock();
  Task();
  Lock.lock();
  --Running;
  if (Tasks.empty() && Running == 0)
    AllDone.notify_all();
  return true;
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> Lock(Mutex);
  while (true) {
    if (runOneTask(Lock))
      continue;
    if (Stopping)
      return;
    TaskReady.wait(Lock);
  }
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  while (true) {
    if (runOneTask(Lock))
      continue;
    if (Running == 0)
      return;
    AllDone.wait(Lock);
  }
}

void wario::parallelFor(size_t N, const std::function<void(size_t)> &Body,
                        unsigned Jobs) {
  if (N == 0)
    return;
  unsigned J = Jobs ? Jobs : defaultJobs();
  if (J <= 1 || N == 1) {
    for (size_t I = 0; I != N; ++I)
      Body(I);
    return;
  }
  std::atomic<size_t> Next{0};
  auto Drain = [&] {
    for (size_t I = Next.fetch_add(1); I < N; I = Next.fetch_add(1))
      Body(I);
  };
  ThreadPool Pool(std::min<size_t>(J, N));
  for (unsigned W = 1; W < Pool.jobCount(); ++W)
    Pool.submit(Drain);
  Drain(); // The caller is worker 0.
  Pool.wait();
}
