//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal concurrency layer for the experiment harness: a fixed-size
/// ThreadPool, a chunk-free parallelFor, and job-count sizing from
/// std::thread::hardware_concurrency with a WARIO_JOBS environment
/// override. Deliberately work-stealing-free: experiment cells are
/// coarse (one full compile + emulation each), so an atomic grab
/// counter balances load with no queue machinery.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_SUPPORT_THREADPOOL_H
#define WARIO_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace wario {

/// Number of worker threads to use: the WARIO_JOBS environment variable
/// when set to a positive integer, otherwise hardware_concurrency
/// (minimum 1).
unsigned defaultJobs();

/// A fixed-size pool of worker threads draining one FIFO task queue.
/// Tasks must not throw. The destructor drains outstanding work.
class ThreadPool {
public:
  /// Spawns \p Jobs workers (0 = defaultJobs()). A pool of one job runs
  /// every task on the caller's thread at wait() time — no thread is
  /// spawned, which keeps WARIO_JOBS=1 runs exactly sequential.
  explicit ThreadPool(unsigned Jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned jobCount() const { return NumJobs; }

  /// Enqueues one task.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished. The calling thread
  /// helps execute queued tasks instead of idling.
  void wait();

private:
  bool runOneTask(std::unique_lock<std::mutex> &Lock);
  void workerLoop();

  unsigned NumJobs;
  std::vector<std::thread> Workers;
  std::mutex Mutex;
  std::condition_variable TaskReady;
  std::condition_variable AllDone;
  std::queue<std::function<void()>> Tasks;
  size_t Running = 0;
  bool Stopping = false;
};

/// Runs Body(0) .. Body(N-1) across \p Jobs threads (0 = defaultJobs()).
/// Iterations are claimed one at a time through an atomic counter, so
/// coarse, unevenly-sized iterations still balance. Blocks until all
/// iterations complete. With one job (or N <= 1) everything runs on the
/// calling thread in index order.
void parallelFor(size_t N, const std::function<void(size_t)> &Body,
                 unsigned Jobs = 0);

} // namespace wario

#endif // WARIO_SUPPORT_THREADPOOL_H
