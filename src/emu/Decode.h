//===----------------------------------------------------------------------===//
///
/// \file
/// The emulator's dense pre-decoded program representation, shared by
/// the interpreter (Emulator.cpp), the superinstruction fusion pass
/// (Fusion.cpp), and the threaded execution engine (ThreadedEngine.cpp).
/// Every per-step map lookup of a naive interpreter — function entry,
/// block start, MOp->Opcode, frame-slot offset — is resolved into this
/// form once per module, before execution starts.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_EMU_DECODE_H
#define WARIO_EMU_DECODE_H

#include "backend/MIR.h"
#include "ir/MemoryLayout.h"

namespace wario::emu_detail {

/// Layout inside the reserved checkpoint range (the public extent lives
/// in Emulator.h as ckpt::Base/ckpt::End so the fault injector can mask
/// it out of differential end-state comparisons).
constexpr uint32_t CkptBase = 0x100;
constexpr uint32_t CkptActiveWord = CkptBase;       // 0 or 1.
constexpr uint32_t CkptBuf0 = CkptBase + 0x10;      // 17 words.
constexpr uint32_t CkptBuf1 = CkptBase + 0x60;
constexpr uint32_t CkptEnd = CkptBase + 0x100;
static_assert(CkptBuf1 + 17 * 4 <= CkptEnd);
constexpr uint32_t CodeAddrBit = 0x80000000u;
constexpr uint32_t LrSentinel = 0xFFFFFFFEu;
constexpr uint32_t BadTarget = 0xFFFFFFFFu;

/// A position in the flattened code image (kept alongside the decoded
/// program for diagnostics: WAR reports name the function and block).
struct CodeRef {
  const MFunction *F;
  int Block;
  int Index;
};

/// ALU opcode for a binary MOp (replaces the per-step MOp->Opcode map).
inline Opcode aluOpcode(MOp Op) {
  switch (Op) {
  case MOp::Add: return Opcode::Add;
  case MOp::Sub: return Opcode::Sub;
  case MOp::Mul: return Opcode::Mul;
  case MOp::And: return Opcode::And;
  case MOp::Orr: return Opcode::Or;
  case MOp::Eor: return Opcode::Xor;
  case MOp::Lsl: return Opcode::Shl;
  case MOp::Lsr: return Opcode::LShr;
  case MOp::Asr: return Opcode::AShr;
  default: return Opcode::Add; // Unused for non-ALU ops.
  }
}

/// One pre-decoded instruction. Branch and call targets are absolute
/// indices into the decoded program; frame-slot operands carry the
/// resolved SP-relative byte offset.
struct DecodedInst {
  MOp Op;
  Opcode Alu;         ///< Pre-mapped ALU opcode for binary ops.
  uint8_t Size;
  bool Signed;
  uint8_t MovCost;    ///< Pre-computed MovImm cycle cost (1 or 2).
  CmpPred Pred;
  CheckpointCause Cause;
  int16_t Dst;
  int16_t Src[3];
  int32_t Slot;
  int32_t SlotOff;    ///< Resolved frame-slot offset (LdrSlot/StrSlot/FrameAddr).
  uint16_t RegList;
  bool Logged;        ///< Str only: speculative undo-logged WAR write.
  uint32_t Imm;       ///< Truncated immediate (all uses are 32-bit).
  uint32_t Target[2]; ///< Branch targets / Bl callee entry, pre-resolved.
  const MFunction *F; ///< Owning function (diagnostics).
};

} // namespace wario::emu_detail

#endif // WARIO_EMU_DECODE_H
