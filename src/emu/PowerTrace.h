//===----------------------------------------------------------------------===//
///
/// \file
/// Power schedules for intermittent execution (paper Section 5.1.4):
/// continuous power, fixed on-period patterns, and synthetic energy-
/// harvester traces standing in for the Mementos RF traces (which are not
/// redistributable here; see DESIGN.md for the substitution rationale).
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_EMU_POWERTRACE_H
#define WARIO_EMU_POWERTRACE_H

#include <cstdint>
#include <string>
#include <vector>

namespace wario {

/// Decides how long each boot's on-period lasts, in CPU cycles.
class PowerSchedule {
public:
  /// Continuous power: never fails.
  static PowerSchedule continuous() { return PowerSchedule(); }

  /// Fixed on-period of \p Cycles per boot.
  static PowerSchedule fixed(uint64_t Cycles) {
    PowerSchedule P;
    P.Period = Cycles;
    return P;
  }

  /// Trace-driven: on-periods cycle through \p Durations.
  static PowerSchedule trace(std::vector<uint64_t> Durations,
                             std::string Name = "trace") {
    PowerSchedule P;
    P.Durations = std::move(Durations);
    P.TraceName = std::move(Name);
    return P;
  }

  bool isContinuous() const { return Period == 0 && Durations.empty(); }

  /// On-period of the \p Boot-th power-up (0-based). UINT64_MAX when
  /// continuous.
  uint64_t onDuration(unsigned Boot) const {
    if (isContinuous())
      return UINT64_MAX;
    if (!Durations.empty())
      return Durations[Boot % Durations.size()];
    return Period;
  }

  const std::string &name() const { return TraceName; }

  /// Wire-format accessors (src/serve's framed protocol serializes
  /// schedules field-by-field and must reconstruct them exactly).
  uint64_t fixedPeriod() const { return Period; }
  const std::vector<uint64_t> &traceDurations() const { return Durations; }

  /// Schedules are ordered/compared by their full configuration so caches
  /// can key on them (bench/Harness.cpp derives cache keys from option
  /// fields rather than caller-provided tags).
  auto operator<=>(const PowerSchedule &) const = default;

private:
  PowerSchedule() = default;
  uint64_t Period = 0;
  std::vector<uint64_t> Durations;
  std::string TraceName = "fixed";
};

/// Synthetic RF-harvester trace "alpha": bursty — many short on-periods
/// with occasional long charges, as seen in the Mementos RFID traces.
/// Deterministic (seeded xorshift).
PowerSchedule harvesterTraceAlpha(unsigned Periods = 4096);

/// Synthetic harvester trace "beta": quasi-periodic with jitter, as from
/// a rotating/vibration source.
PowerSchedule harvesterTraceBeta(unsigned Periods = 4096);

} // namespace wario

#endif // WARIO_EMU_POWERTRACE_H
