//===----------------------------------------------------------------------===//
///
/// \file
/// Hot-trace superblock layer of the trace engine (DESIGN.md §7.9).
///
/// The threaded engine's back-edge dispatches feed per-target heat
/// counters; when a target crosses TraceHotThreshold the engine starts
/// recording the concrete path of *control transfers* — every branch
/// target the run takes, at block granularity (between two transfers
/// execution is pure fall-through, so the interior group heads are
/// reconstructible from the static stream). Recording costs nothing on
/// the straight-line dispatch path; only the cold trace_edge funnel
/// sees it. The path ends when it closes back on its head a few times
/// (loop unrolling) or runs too long. The builder then re-walks each
/// recorded block in the merged stream and stitches the whole path
/// into one straight-line FastInst run:
///
///  - adjacent groups on the path are re-fused against the same pair
///    catalog as the static pass, but under TraceRefuseCostLimit — the
///    aggregate worst-case cost of the whole superblock is margin-
///    checked once at entry (Machine::fastLimit), so interior
///    boundaries never need the per-dispatch event guarantee;
///  - conditional branches become direction guards: the recorded side
///    continues in the superblock, the other side exits through an
///    FK_TraceExit stub back into the merged stream;
///  - frame-slot accesses the path provably re-touches are marked for
///    WAR-stamp elision (FastInst::Aux == 1 inside superblock code
///    only): a re-loaded slot's stamps are already read-stamped and a
///    re-stored slot's stamps are already all-WantW, so the SWAR check
///    is skipped and the access collapses to the raw memory move.
///
/// Superblock code is private to the Machine that built it; the merged
/// stream, snapshots, and every result stay byte-identical across
/// engines (tests/EngineEquivalenceTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_EMU_TRACE_H
#define WARIO_EMU_TRACE_H

#include "emu/Fusion.h"

#include <memory>

namespace wario::emu_detail {

/// Back-edge dispatches of a target before recording starts. Low enough
/// that short campaigns still compile their loops, high enough that
/// cold paths never pay the builder. Doubles as the heat-counter funnel
/// period: the engine's inline edge check only leaves the straight path
/// when a target's counter reaches this value, so per-edge policy cost
/// is one increment-and-compare amortized over the period.
constexpr uint32_t TraceHotThreshold = 64;

/// SBIdx sentinels (values < 0): no superblock yet, and never-retry for
/// heads that aborted recording or failed to build. Blacklisted heads
/// keep counting heat and re-enter the funnel once per threshold period
/// — a dead branch there, not a policy change.
constexpr int32_t SBNone = -1;
constexpr int32_t SBBlacklisted = -2;

/// Path closures (revisits of the trace head) before the recorder stops
/// and builds — the superblock carries this many unrolled iterations.
constexpr unsigned TraceMaxClosures = 1;

/// Recorded block entries (control-transfer targets) before the
/// recorder gives up (builds if the path closed at least once, aborts
/// otherwise).
constexpr unsigned TraceMaxPath = 256;

/// Total merged-stream records a stitched superblock may carry (bounds
/// builder work and superblock code size).
constexpr unsigned TraceMaxRecords = 4096;

/// Preferred superblock size: a looping path is truncated back to the
/// largest closure that fits this many records. 20-byte FastInst
/// records put 1024 of them at ~20 KiB — the superblock's code plus
/// the workload's own hot data stay L1-resident, where an unrolled
/// multi-thousand-record block would stream through L2 on every entry.
/// Paths whose single iteration exceeds the cap keep one full closure.
constexpr unsigned TraceSoftRecordCap = 1024;

/// Superblocks per machine per run (heat map stops feeding the builder
/// beyond this; hot loops are few in every workload we model).
constexpr unsigned TraceMaxBlocks = 64;

/// Component cap for one refused superblock group (Len is a uint8_t in
/// FastInst; leave headroom under 255).
constexpr unsigned TraceMaxGroupLen = 120;

/// One stitched hot path: straight-line FastInst code ending in trace
/// stubs (FK_TraceExit / FK_TraceFall / FK_TraceLoop), plus the mapping
/// back to the merged stream for flush/bail.
struct Superblock {
  /// Merged-stream index of the trace head (the hot back-edge target).
  uint32_t Head = 0;
  /// The stitched run. Operand fields are verbatim copies of the merged
  /// stream's records (so handlers index components identically);
  /// Kind/Len/Cost of group heads are rewritten by refusion, branch
  /// targets are rewired to superblock indices, and Aux on LdrSlot /
  /// StrSlot records is repurposed as the stamp-elision flag.
  std::vector<FastInst> Code;
  /// Parallel to Code: the merged-stream index each record came from
  /// (for stubs: the merged-stream resume target). flush() maps through
  /// this so Pc is always a merged-stream index.
  std::vector<uint32_t> Orig;
  /// Aggregate worst-case cycle cost of one full pass over the path.
  /// Entry requires Active + WorstCost < fastLimit margin, after which
  /// the per-dispatch limit check is disabled until exit.
  uint64_t WorstCost = 0;
  /// Entry / guard-exit tallies feeding deoptimization: a block whose
  /// recorded path almost never survives (exits exceed 7/8 of entries
  /// after TraceHotThreshold entries) is paying entry and exit overhead
  /// for nothing — the funnel blacklists its head and execution stays
  /// on the merged stream.
  uint32_t Entries = 0;
  uint32_t Exits = 0;
};

/// Per-step answer of the trace recorder.
enum class RecordVerdict : uint8_t {
  Continue, ///< Path extended; keep recording.
  Build,    ///< Path complete; stitch it (current index is the successor).
  Abort,    ///< Unrecordable op or hopeless path; blacklist the head.
};

/// Per-Machine trace state. Sized lazily against the merged stream on
/// first trace-engine entry; reset whenever the program size changes
/// (machines are per-module, so in practice: once).
struct TraceState {
  /// Back-edge heat per merged-stream index, counted by the engine's
  /// inline edge check; policy runs only when a counter crosses
  /// TraceHotThreshold (the funnel resets it: to zero for cold and
  /// blacklisted heads, to threshold-minus-one for superblock heads so
  /// those funnel every visit).
  std::vector<uint32_t> Hot;
  /// Superblock index per merged-stream head; SBNone / SBBlacklisted
  /// when there is none.
  std::vector<int32_t> SBIdx;
  /// Built superblocks. unique_ptr so Code/Orig storage is stable while
  /// the engine holds raw pointers across dispatches.
  std::vector<std::unique_ptr<Superblock>> Blocks;

  /// Recording state (live only while the engine's RecOn flag is set).
  uint32_t Head = 0;
  unsigned Closures = 0;
  /// Merged-stream indices of the taken control-transfer targets (block
  /// entries), in order. The head itself is Path[0].
  std::vector<uint32_t> Path;

  void ensureSized(size_t N) {
    if (SBIdx.size() != N) {
      Hot.assign(N, 0);
      SBIdx.assign(N, SBNone);
      Blocks.clear();
    }
  }

  void beginRecording(uint32_t H) {
    Head = H;
    Closures = 0;
    Path.clear();
    Path.push_back(H);
  }
};

/// Advances the recorder by the control-transfer target \p Target the
/// run is about to dispatch. On Build, the caller stitches with the
/// same \p Target as the path's final successor.
RecordVerdict traceRecordStep(TraceState &TS, uint32_t Target);

/// Stitches the recorded path into a superblock and registers it under
/// the trace head. \p FinalSucc is the merged-stream index executed
/// after the last recorded group. Returns null (and leaves no trace)
/// when the path can't be carried: caller blacklists the head.
const Superblock *buildSuperblock(TraceState &TS,
                                  const std::vector<DecodedInst> &Prog,
                                  const std::vector<FastInst> &Fast,
                                  uint32_t FinalSucc);

} // namespace wario::emu_detail

#endif // WARIO_EMU_TRACE_H
