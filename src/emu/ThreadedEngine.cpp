//===----------------------------------------------------------------------===//
///
/// \file
/// The direct-threaded execution engine (DESIGN.md §7.7).
///
/// Machine::runThreaded executes the merged FastInst stream with one
/// dispatch per group: computed goto under GCC/Clang, a plain switch
/// loop elsewhere (the handler bodies are shared; only the OP_CASE /
/// DISPATCH macros change). The hot machine state — the stream cursor,
/// the active cycle counter, the instruction counter, the WAR stamp
/// pattern — is kept in locals and synced with the Machine members only
/// at the rare points that need them (bail-outs, push/pop, checkpoint
/// commits, loop exit).
///
/// Correctness contract with the interpreter (the byte-identity bar):
///  - The caller (Machine::run) enters only while the next
///    interpreter-visible event — power failure, interrupt delivery,
///    stop point, trace window, cycle-budget exhaustion — is at least
///    FusedCostLimit cycles away, and every group costs less than that,
///    so no event cycle can land at a group-interior boundary. The
///    loop exits at the margin and the interpreter walks the final
///    approach, checking events at every boundary exactly as before.
///  - Every handler replicates step()'s transition bit for bit
///    (ConstEval semantics, cycle costs, WAR stamping, StoreCycles
///    stamps at the storing component's pre-instruction cycle).
///  - Anything rare or irregular — out-of-bounds access, WAR
///    violation, OutPort store, division by zero, push/pop-time
///    failures, unlinked pseudos, the final Ret — *bails*: the handler
///    backs out before mutating the offending component (components
///    already completed stay completed, with pc and counters advanced
///    past them), syncs state, and lets step() execute that one
///    instruction through the interpreter's own code.
///
/// Handler bodies are composed from per-component WB_* macros: WB_X(k)
/// executes component k of the group the cursor points at, reading its
/// operands from J[k] (the merged stream keeps every pc's decoded
/// fields even inside a group, so interior components are one indexed
/// load away). A component that cannot complete invokes
/// WARIO_PARTIAL(k): retire the k-component prefix and bail.
///
//===----------------------------------------------------------------------===//

#include "emu/ThreadedEngine.h"

#include "emu/Machine.h"
#include "ir/ConstEval.h"

#include <bit>
#include <cstdlib>
#include <cstring>

using namespace wario;
using namespace wario::emu_detail;

EngineKind wario::resolveEngine(EngineKind Requested) {
  if (Requested != EngineKind::Auto)
    return Requested;
  // Read fresh on every call so tests can flip the kill switch with
  // setenv between runs.
  if (const char *E = std::getenv("WARIO_ENGINE"))
    if (std::strcmp(E, "interp") == 0 || std::strcmp(E, "interpreter") == 0)
      return EngineKind::Interp;
  return EngineKind::Threaded;
}

const char *wario::engineName(EngineKind K) {
  switch (K) {
  case EngineKind::Auto: return "auto";
  case EngineKind::Interp: return "interp";
  case EngineKind::Threaded: return "threaded";
  }
  return "?";
}

namespace {

/// AShr with the interpreter's clamp semantics (ConstEval.h).
inline uint32_t evalAsr(uint32_t A, uint32_t B) {
  int32_t SA = int32_t(A);
  if (B >= 32)
    return SA < 0 ? ~0u : 0u;
  return uint32_t(SA >> B);
}

/// SDiv with the INT_MIN / -1 clamp (divisor checked by the caller).
inline uint32_t evalSDiv(uint32_t A, uint32_t B) {
  int32_t SA = int32_t(A), SB = int32_t(B);
  if (SA == INT32_MIN && SB == -1)
    return uint32_t(SA);
  return uint32_t(SA / SB);
}

/// Cycle cost of the \p N-component retired prefix of a group, read
/// from the decoded program (the merged stream's interior Kind fields
/// describe the group *starting* there, not the component). Cold: only
/// partial-completion bails reach this.
__attribute__((noinline)) uint64_t retiredPrefix(const DecodedInst *I,
                                                 unsigned N) {
  uint64_t C = 0;
  for (unsigned K = 0; K != N; ++K) {
    switch (I[K].Op) {
    case MOp::MovImm:
      C += I[K].MovCost;
      break;
    case MOp::SetCond:
    case MOp::Ldr:
    case MOp::Str:
    case MOp::LdrSlot:
    case MOp::StrSlot:
      C += 2;
      break;
    default:
      C += 1; // Mov / single-cycle ALU; branches never precede a bail.
      break;
    }
  }
  return C;
}

/// Cold stamp maintenance for monitored word accesses, kept out of
/// line: the hot loop inlines the access fast paths at every component
/// site of every handler, so slow-path bytes multiply across the whole
/// engine and directly tax its I-cache footprint. Only the first touch
/// of a word per idempotent region (plus the rare mixed-stamp case)
/// lands here.
__attribute__((noinline)) void restampRead(uint16_t *A, uint32_t WantR) {
  for (unsigned K = 0; K != 4; ++K)
    if ((A[K] & ~1u) != WantR)
      A[K] = uint16_t(WantR);
}

} // namespace

// Per-op ALU evaluation, kept in lockstep with constEvalBinary. The
// macro form lets the X-macro handler families bake the operation into
// each handler instead of re-dispatching on an opcode.
#define WARIO_EVAL_Add(A, B) ((A) + (B))
#define WARIO_EVAL_Sub(A, B) ((A) - (B))
#define WARIO_EVAL_Mul(A, B) ((A) * (B))
#define WARIO_EVAL_And(A, B) ((A) & (B))
#define WARIO_EVAL_Orr(A, B) ((A) | (B))
#define WARIO_EVAL_Eor(A, B) ((A) ^ (B))
#define WARIO_EVAL_Lsl(A, B) ((B) >= 32 ? 0u : (A) << (B))
#define WARIO_EVAL_Lsr(A, B) ((B) >= 32 ? 0u : (A) >> (B))
#define WARIO_EVAL_Asr(A, B) evalAsr((A), (B))

#if defined(__GNUC__) || defined(__clang__)
#define WARIO_THREADED_GOTO 1
#define WARIO_ALWAYS_INLINE __attribute__((always_inline))
#else
#define WARIO_THREADED_GOTO 0
#define WARIO_ALWAYS_INLINE
#endif

#if WARIO_THREADED_GOTO
#define OP_CASE(N) H_Op_##N:
// Fused-group entry resets the in-group forwarding mirror (see fwdSrc):
// inside a group the producer is one component back (a hit), across
// groups it rarely is — a live cross-group FwdD just makes the hit
// branch unpredictable (measured ~15% worse on AES).
#define FK_CASE(N) H_FK_##N: FwdD = -1;
#define DISPATCH()                                                             \
  do {                                                                         \
    if (Active >= Limit)                                                       \
      goto out;                                                                \
    ++St.Dispatches;                                                           \
    goto *Tbl[J->Kind];                                                        \
  } while (0)
#else
#define OP_CASE(N) case uint16_t(MOp::N):
#define FK_CASE(N) case uint16_t(FK_##N): FwdD = -1;
#define DISPATCH() goto dispatch
#endif

// Group retirement: cycles from the precomputed group cost (read BEFORE
// the cursor moves), then the cursor past every component.
#define WARIO_RETIRE(n)                                                        \
  do {                                                                         \
    Active += J->Cost;                                                         \
    Insts += (n);                                                              \
    J += (n);                                                                  \
    ++St.FusedDispatches;                                                      \
    St.FusedInstructions += (n);                                               \
  } while (0)

// Branch-ending group retirement: the tail component is a CBr at index
// n-1; the whole group's cost (branch included) was precomputed. The
// condition and both targets are read before the cursor is reassigned.
#define WARIO_RETIRE_BR(n)                                                     \
  do {                                                                         \
    uint32_t T_ =                                                              \
        fwdSrc(J[(n)-1].Src0, FwdD, FwdV, R) != 0 ? J[(n)-1].T0 : J[(n)-1].A;  \
    Active += J->Cost;                                                         \
    Insts += (n);                                                              \
    ++St.FusedDispatches;                                                      \
    St.FusedInstructions += (n);                                               \
    J = Fast + T_;                                                             \
  } while (0)

// Unconditional-branch-ending group retirement: the tail component is
// a B at index n-1.
#define WARIO_RETIRE_B(n)                                                      \
  do {                                                                         \
    uint32_t T_ = J[(n)-1].T0;                                                 \
    Active += J->Cost;                                                         \
    Insts += (n);                                                              \
    ++St.FusedDispatches;                                                      \
    St.FusedInstructions += (n);                                               \
    J = Fast + T_;                                                             \
  } while (0)

// Component k of the current group could not complete: retire the
// k-component prefix (cycle costs come from the decoded program — the
// merged stream's interior entries describe the group starting there,
// not the component) and hand the offender to step().
#define WARIO_PARTIAL(k)                                                       \
  do {                                                                         \
    if ((k) != 0) {                                                            \
      Active += retiredPrefix(Prog + (J - Fast), (k));                         \
      Insts += (k);                                                            \
      J += (k);                                                                \
    }                                                                          \
    goto bail;                                                                 \
  } while (0)

// --- Per-component transition bodies (component k of the group at J) -----
//
// Dependent components are the latency floor of a fused group: each one
// reads the register its predecessor just stored, and on typical hosts
// that register-file round trip is a multi-cycle store-to-load forward.
// (FwdD, FwdV) mirror the last register written inside the current
// group; a source matching FwdD reads the mirror — already in a host
// register — instead of R[]. FwdD resets to -1 at every group entry
// (FK_CASE), since identity handlers write registers without
// maintaining the mirror.
WARIO_ALWAYS_INLINE static inline uint32_t
fwdSrc(int32_t S, int32_t FwdD, uint32_t FwdV, const uint32_t *R) {
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_expect(S == FwdD, 1))
    return FwdV;
  // The empty asm keeps this a real (well-predicted) branch: if-converting
  // to a conditional move would put the R[] load back on the critical path.
  asm("");
  return R[S];
#else
  return S == FwdD ? FwdV : R[S];
#endif
}
#define WB_SRC0(k) fwdSrc(J[k].Src0, FwdD, FwdV, R)
#define WB_SRC1(k) fwdSrc(J[k].Src1, FwdD, FwdV, R)
#define WB_SET(k, V) (FwdV = (V), FwdD = J[k].Dst, R[FwdD] = FwdV)
#define WB_MovImm(k) WB_SET(k, J[k].A);
#define WB_Mov(k) WB_SET(k, WB_SRC0(k));
#define WB_Alu(k, OP) WB_SET(k, WARIO_EVAL_##OP(WB_SRC0(k), WB_SRC1(k)));
#define WB_SetCond(k)                                                          \
  WB_SET(k, constEvalPred(CmpPred(J[k].Aux), WB_SRC0(k), WB_SRC1(k)) ? 1 : 0);
#define WB_LdrSlot(k)                                                          \
  {                                                                            \
    uint32_t V_;                                                               \
    if (!fastLoad(R[SP] + J[k].A, 4, false, V_))                               \
      WARIO_PARTIAL(k);                                                        \
    WB_SET(k, V_);                                                             \
  }
#define WB_Ldr(k)                                                              \
  {                                                                            \
    uint32_t V_;                                                               \
    if (!fastLoad(WB_SRC0(k) + J[k].A, J[k].Aux & 0xFF,                        \
                  (J[k].Aux & 0x100) != 0, V_))                                \
      WARIO_PARTIAL(k);                                                        \
    WB_SET(k, V_);                                                             \
  }
// PRE = pre-summed cycle cost of components [0, k) (the StoreCycles
// stamp base for the storing component). Static per pattern, except a
// J[i].Aux term when a MovImm precedes the store.
#define WB_StrSlot(k, PRE)                                                     \
  if (!fastStore(R[SP] + J[k].A, 4, WB_SRC0(k), Active + (PRE)))               \
    WARIO_PARTIAL(k);
#define WB_Str(k, PRE)                                                         \
  if (!fastStore(WB_SRC1(k) + J[k].A, J[k].Aux & 0xFF, WB_SRC0(k),             \
                 Active + (PRE)))                                              \
    WARIO_PARTIAL(k);

void Machine::runThreaded(uint64_t Limit) {
  const FastInst *const Fast = P.Fast.data();
  const DecodedInst *const Prog = P.Prog.data(); // Cold paths only.
  uint32_t *const R = Regs;
  uint8_t *const Mem = Scr.Mem.data();
  uint16_t *const Acc = Scr.Access.data();
  const bool Trace = Opts.CollectEventTrace;
  const bool TW = TrackWrites;
  // Checkpoint commits may stay in-loop (no flush/member-call round
  // trip) only when nothing observes the intermediate machine state:
  // no snapshot recorder or splicer, and no per-region collection.
  const bool FastCommit = !ExitOnCommit && !Chain && !Plan &&
                          !Opts.CollectRegionSizes && !Opts.CollectEventTrace;

  // Hot state mirrored into locals. TotalCycles and CyclesSinceIrq
  // advance in lockstep with ActiveSinceBoot inside the loop, so one
  // local cycle counter plus a sync baseline covers all three.
  uint64_t Active = ActiveSinceBoot;
  uint64_t LastSync = Active;
  uint64_t Insts = Res.InstructionsExecuted;
  const uint64_t Insts0 = Insts;
  uint32_t WantR = Scr.Epoch << 1; ///< Read-this-epoch stamp.
  uint32_t WantW = WantR | 1u;     ///< Write-this-epoch stamp.

  EngineStats St;
  uint64_t BailSteps = 0;
  // In-group register forwarding mirror (see fwdSrc above).
  int32_t FwdD = -1;
  uint32_t FwdV = 0;
  // The program counter is the single cursor J into the merged stream;
  // every handler advances it so dispatch itself is just a bounds check
  // and one indirect jump.
  const FastInst *J = Fast + (Pc & ~CodeAddrBit);

  auto flush = [&] {
    Pc = CodeAddrBit | uint32_t(J - Fast);
    uint64_t D = Active - LastSync;
    Res.TotalCycles += D;
    CyclesSinceIrq += D;
    ActiveSinceBoot = Active;
    Res.InstructionsExecuted = Insts;
    LastSync = Active;
  };
  auto reload = [&] {
    J = Fast + (Pc & ~CodeAddrBit);
    Active = ActiveSinceBoot;
    LastSync = Active;
    Insts = Res.InstructionsExecuted;
    WantR = Scr.Epoch << 1;
    WantW = WantR | 1u;
    FwdD = -1; // Member code may have rewritten any register.
  };

  /// Page-grain write tracking with the already-marked page as the
  /// fast case (one predictable load per store once warm).
  auto noteW = [&](uint32_t Addr, unsigned Size) WARIO_ALWAYS_INLINE {
    if (!TW)
      return;
    uint32_t P0 = Addr >> snapshot::PageShift;
    uint32_t P1 = (Addr + Size - 1) >> snapshot::PageShift;
    if (P0 == P1 && Scr.TouchedMark[P0] && (!Chain || SnapMark[P0]))
      return;
    noteWrite(Addr, Size);
  };

  /// Monitored load, replicating loadMem minus the failure paths.
  /// False = bail (out of bounds, or a checkpoint-range access that
  /// recordAccess would exempt — step() reproduces either exactly).
  auto fastLoad = [&](uint32_t Addr, unsigned Size, bool SignExtend,
                      uint32_t &V) WARIO_ALWAYS_INLINE -> bool {
    if (Addr > memmap::MemSize - Size || Addr - CkptBase < CkptEnd - CkptBase)
      return false;
    if (Size == 4) {
      // SWAR read-stamp: 4 bytes = 4 half-word stamps = one u64 compare.
      // Epoch bits (stamp & ~1) matching WantR on every byte means the
      // whole word was already touched this epoch — nothing to stamp.
      uint64_t S;
      std::memcpy(&S, Acc + Addr, 8);
      const uint64_t RP = 0x0001000100010001ull * WantR;
      if (((S ^ RP) & 0xFFFEFFFEFFFEFFFEull) != 0)
        restampRead(Acc + Addr, WantR);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
      std::memcpy(&V, Mem + Addr, 4);
#else
      V = uint32_t(Mem[Addr]) | uint32_t(Mem[Addr + 1]) << 8 |
          uint32_t(Mem[Addr + 2]) << 16 | uint32_t(Mem[Addr + 3]) << 24;
#endif
      return true;
    }
    for (unsigned K = 0; K != Size; ++K) {
      if ((Acc[Addr + K] & ~1u) != WantR)
        Acc[Addr + K] = uint16_t(WantR);
    }
    V = 0;
    for (unsigned K = 0; K != Size; ++K)
      V |= uint32_t(Mem[Addr + K]) << (8 * K);
    if (SignExtend && Size < 4) {
      uint32_t SignBit = 1u << (Size * 8 - 1);
      if (V & SignBit)
        V |= ~((SignBit << 1) - 1);
    }
    return true;
  };

  /// Monitored store, replicating storeMem minus the irregular paths.
  /// \p ActivePre is the storing *component's* pre-execution cycle (the
  /// StoreCycles stamp base). False = bail, with nothing mutated:
  /// OutPort / out of bounds / checkpoint range, or a WAR violation
  /// (step() redoes the counting, reporting, and fatal handling; the
  /// stamp state is untouched so recordAccess sees what it would have).
  auto fastStore = [&](uint32_t Addr, unsigned Size, uint32_t V,
                       uint64_t ActivePre) WARIO_ALWAYS_INLINE -> bool {
    if (Addr > memmap::MemSize - Size || Addr - CkptBase < CkptEnd - CkptBase)
      return false;
    if (Size == 4) {
      uint64_t S;
      std::memcpy(&S, Acc + Addr, 8);
      const uint64_t RP = 0x0001000100010001ull * WantR;
      const uint64_t X = S ^ RP;
      const uint64_t L = 0x0001000100010001ull;
      // All four bytes already written this epoch (the steady state of a
      // loop rewriting its slots): no violation possible, stamps already
      // final — nothing to check or store.
      if ((X ^ L) != 0) {
        // Any lane exactly == WantR (read-first this epoch) is a WAR
        // violation: zero-lane detect on the XORed stamps. Borrow
        // propagation can only misfire toward a false positive, and a
        // bail just hands the store to step() for the exact verdict.
        if (((X - L) & ~X & 0x8000800080008000ull) != 0)
          return false;
        const uint64_t WP = RP | L;
        std::memcpy(Acc + Addr, &WP, 8);
      }
    } else {
      for (unsigned K = 0; K != Size; ++K)
        if (Acc[Addr + K] == WantR)
          return false;
      for (unsigned K = 0; K != Size; ++K)
        Acc[Addr + K] = uint16_t(WantW);
    }
    if (Trace && (Res.StoreCycles.empty() ||
                  Res.StoreCycles.back() != ActivePre + 1))
      Res.StoreCycles.push_back(ActivePre + 1);
    noteW(Addr, Size);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    if (Size == 4)
      std::memcpy(Mem + Addr, &V, 4);
    else
#endif
      for (unsigned K = 0; K != Size; ++K)
        Mem[Addr + K] = uint8_t(V >> (8 * K));
    return true;
  };

  // The next step() (or fused handler) makes the region stale exactly
  // like the interpreter's step() would; setting it up front keeps the
  // outer loop's region-fresh consumers (snapshot cadence, splice
  // matching) in lockstep even when this loop exits at the margin.
  RegionFresh = false;

#if WARIO_THREADED_GOTO
  // Dispatch table, indexed by FastInst::Kind. [0, 37): identity
  // groups in MOp declaration order; [37, 64): unreachable padding;
  // [64, FK_KindLimit): fused kinds in declaration order — the base
  // catalog, then the 9x9 Alu2 family, then the second-level pairs.
  static const void *const Tbl[] = {
      &&H_Op_MovImm, &&H_Op_MovGlobal, &&H_Op_Mov,
      &&H_Op_Add, &&H_Op_Sub, &&H_Op_Mul, &&H_Op_UDiv, &&H_Op_SDiv,
      &&H_Op_And, &&H_Op_Orr, &&H_Op_Eor, &&H_Op_Lsl, &&H_Op_Lsr,
      &&H_Op_Asr, &&H_Op_AddImm, &&H_Op_SetCond, &&H_Op_SelectR,
      &&H_Op_Ldr, &&H_Op_Str, &&H_Op_LdrSlot, &&H_Op_StrSlot,
      &&H_Op_FrameAddr, &&H_Op_CallPseudo, &&H_Op_ArgGet, &&H_Op_Bl,
      &&H_Op_B, &&H_Op_CBr, &&H_Op_Ret, &&H_Op_Push, &&H_Op_Pop,
      &&H_Op_PopLoads, &&H_Op_SpAdjust, &&H_Op_Checkpoint, &&H_Op_Out,
      &&H_Op_IntMask, &&H_Op_IntUnmask, &&H_Op_Nop,
      // Padding up to FK_FirstFused.
      &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad,
      &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad,
      &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad,
      &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad,
#define WARIO_TBL_X(NAME) &&H_FK_##NAME,
#define WARIO_TBL_A(FAM, OP) &&H_FK_##FAM##_##OP,
#define WARIO_TBL_A2(OP0, OP1) &&H_FK_Alu2_##OP0##_##OP1,
#define WARIO_TBL_P(NAME, K1, K2) &&H_FK_##NAME,
      WARIO_EMU_FUSED_KINDS(WARIO_TBL_X, WARIO_TBL_A)
      WARIO_EMU_ALU81(WARIO_TBL_A2)
      WARIO_EMU_PAIR_KINDS(WARIO_TBL_P)
#undef WARIO_TBL_X
#undef WARIO_TBL_A
#undef WARIO_TBL_A2
#undef WARIO_TBL_P
  };
  static_assert(sizeof(Tbl) / sizeof(Tbl[0]) == FK_KindLimit,
                "dispatch table out of sync with the kind numbering");
  static_assert(int(MOp::Nop) == 36, "identity block out of sync with MOp");

  DISPATCH();
#else
dispatch:
  if (Active >= Limit)
    goto out;
  ++St.Dispatches;
  switch (J->Kind) {
#endif

  // --- Identity groups (one instruction; step()'s transition inlined) ------

  OP_CASE(MovImm) {
    WB_MovImm(0)
    Active += J->Aux; // Pre-decoded MovImm cycle cost (1 or 2).
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(Mov) {
    WB_Mov(0)
    Active += 1;
    ++Insts;
    ++J;
  }
  DISPATCH();

#define WARIO_H_ALUOP(_, OP)                                                   \
  OP_CASE(OP) {                                                                \
    WB_Alu(0, OP)                                                              \
    Active += 1;                                                               \
    ++Insts;                                                                   \
    ++J;                                                                       \
  }                                                                            \
  DISPATCH();
  WARIO_EMU_ALU9(WARIO_H_ALUOP, _)
#undef WARIO_H_ALUOP

  OP_CASE(UDiv)
  OP_CASE(SDiv) {
    uint32_t B = R[J->Src1];
    if (B == 0)
      goto bail; // Division by zero: step() raises the trap.
    uint32_t A = R[J->Src0];
    WB_SET(0, J->Kind == uint16_t(MOp::UDiv) ? A / B : evalSDiv(A, B));
    Active += 6;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(AddImm) {
    WB_SET(0, WB_SRC0(0) + J->A);
    Active += 1;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(SetCond) {
    WB_SetCond(0)
    Active += 2;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(SelectR) {
    WB_SET(0, R[J->Src0] != 0 ? R[J->Src1] : R[J->Aux]);
    Active += 2;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(Ldr) {
    WB_Ldr(0)
    Active += 2;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(Str) {
    WB_Str(0, 0)
    Active += 2;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(LdrSlot) {
    WB_LdrSlot(0)
    Active += 2;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(StrSlot) {
    WB_StrSlot(0, 0)
    Active += 2;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(FrameAddr) {
    WB_SET(0, R[SP] + J->A);
    Active += 1;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(Bl) {
    uint32_t T = J->T0;
    if (T == BadTarget)
      goto bail; // Unlinked call: step() reports it.
    R[LR] = CodeAddrBit | J->A; // Pre-encoded return link (own pc + 1).
    FwdD = -1;                  // lr write bypasses the mirror.
    J = Fast + T;
    Active += 1 + cycles::PipelineRefill;
    ++Insts;
  }
  DISPATCH();

  OP_CASE(B) {
    J = Fast + J->T0;
    Active += 1 + cycles::PipelineRefill;
    ++Insts;
  }
  DISPATCH();

  OP_CASE(CBr) {
    J = Fast + (R[J->Src0] != 0 ? J->T0 : J->A);
    Active += 1 + cycles::PipelineRefill;
    ++Insts;
  }
  DISPATCH();

  OP_CASE(Ret) {
    uint32_t L = R[LR];
    if (L == LrSentinel || !(L & CodeAddrBit))
      goto bail; // Program end (or corrupt lr): step() finishes it.
    J = Fast + (L & ~CodeAddrBit);
    Active += 1 + cycles::PipelineRefill;
    ++Insts;
  }
  DISPATCH();

  // Push/pop stay on the access fast paths (the member round trip is
  // ~1/8 of call-heavy workloads). Any irregularity — WAR violation,
  // out of bounds — bails so step() redoes the *whole* instruction
  // through the member paths: partial fast-path effects are idempotent
  // (same bytes, blanket stamps, deduped StoreCycles), so the redo is
  // bit-exact including the failure handling.
  OP_CASE(Push) {
    unsigned N = unsigned(std::popcount(unsigned(J->Aux)));
    uint32_t Base = R[SP] - 4 * N;
    unsigned Idx = 0;
    for (int Rn = 0; Rn != NumPRegs; ++Rn)
      if (J->Aux & (1u << Rn))
        if (!fastStore(Base + 4 * Idx++, 4, R[Rn], Active))
          goto bail;
    R[SP] = Base;
    FwdD = -1; // Direct sp write bypasses the mirror.
    Active += 1 + N;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(Pop)
  OP_CASE(PopLoads) {
    unsigned N = unsigned(std::popcount(unsigned(J->Aux)));
    unsigned Idx = 0;
    for (int Rn = 0; Rn != NumPRegs; ++Rn)
      if (J->Aux & (1u << Rn)) {
        uint32_t V;
        if (!fastLoad(R[SP] + 4 * Idx++, 4, false, V))
          goto bail;
        R[Rn] = V;
      }
    if (J->Kind == uint16_t(MOp::Pop))
      R[SP] += 4 * N;
    FwdD = -1; // Popped registers bypass the mirror.
    Active += 1 + N;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(SpAdjust) {
    R[SP] += J->A;
    FwdD = -1; // Direct sp write bypasses the mirror.
    Active += 1;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(Checkpoint) {
    CheckpointCause C = CheckpointCause(J->Aux);
    ++Insts;
    ++J; // The committed resume point is *after* this instruction.
    if (FastCommit) {
      // Inline commit in lockstep with commitCheckpoint(): the member
      // routine plus its flush/reload round trip costs ~1/5 of
      // call-heavy workloads (measured on AES). Only reachable when
      // nobody observes the intermediate state (no recorder, splicer,
      // region-size or event collection), so the flush can wait.
      uint32_t AW;
      std::memcpy(&AW, Mem + CkptActiveWord, 4);
      const uint32_t Buf = (AW == 1) ? CkptBuf1 : CkptBuf0;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
      std::memcpy(Mem + Buf, R, 15 * 4);
#else
      for (int Ri = 0; Ri != 15; ++Ri)
        for (unsigned B = 0; B != 4; ++B)
          Mem[Buf + 4 * unsigned(Ri) + B] = uint8_t(R[Ri] >> (8 * B));
#endif
      const uint32_t RPc = CodeAddrBit | uint32_t(J - Fast);
      const uint32_t NewAW = (AW == 1) ? 2u : 1u;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
      std::memcpy(Mem + Buf + 60, &RPc, 4);
      std::memcpy(Mem + CkptActiveWord, &NewAW, 4);
#else
      for (unsigned B = 0; B != 4; ++B) {
        Mem[Buf + 60 + B] = uint8_t(RPc >> (8 * B));
        Mem[CkptActiveWord + B] = uint8_t(NewAW >> (8 * B));
      }
#endif
      noteW(Buf, 64);            // Same pages rawStore would dirty.
      noteW(CkptActiveWord, 4);
      // flush()'s delta plus spend(cycles::Checkpoint), folded.
      const uint64_t D = Active - LastSync + cycles::Checkpoint;
      Active += cycles::Checkpoint;
      Res.TotalCycles += D;
      CyclesSinceIrq += D;
      LastSync = Active;
      ++Res.CheckpointsExecuted;
      switch (C) {
      case CheckpointCause::MiddleEndWar: ++Res.Causes.MiddleEndWar; break;
      case CheckpointCause::BackendSpill: ++Res.Causes.BackendSpill; break;
      case CheckpointCause::FunctionEntry: ++Res.Causes.FunctionEntry; break;
      case CheckpointCause::FunctionExit: ++Res.Causes.FunctionExit; break;
      }
      RegionStartCycles = Res.TotalCycles;
      // clearFirstAccess() inline, plus the stamp-key refresh reload()
      // would have done.
      if (++Scr.Epoch >= 0x8000u) {
        std::fill(Scr.Access.begin(), Scr.Access.end(), uint16_t(0));
        Scr.Epoch = 1;
      }
      WantR = Scr.Epoch << 1;
      WantW = WantR | 1u;
      ProgressThisBoot = true;
      // RegionFresh stays false: unobserved under the FastCommit gate,
      // and the next dispatch makes it stale anyway.
    } else {
      flush();
      commitCheckpoint(C);
      reload(); // Commit cycles + the fresh region epoch.
      if (ExitOnCommit)
        goto out; // Snapshot cadence / splice matching run out there.
      // Unobserved between here and the next instruction (no recorder,
      // no splicer), and the next dispatch makes it stale anyway.
      RegionFresh = false;
    }
  }
  DISPATCH();

  OP_CASE(Out) {
    Res.Output.push_back(int32_t(R[J->Src0]));
    Active += 2;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(IntMask) {
    // Masking can only *delay* the interrupt bound Limit already
    // accounts for; keeping the tighter limit is safe.
    Primask = true;
    Active += 1;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(IntUnmask) {
    Primask = false;
    Active += 1;
    ++Insts;
    ++J;
    // Unmasking can make an interrupt deliverable at the very next
    // boundary — beyond what Limit accounted for. Hand back.
    if (Opts.InterruptPeriod)
      goto out;
  }
  DISPATCH();

  OP_CASE(Nop) {
    Active += 1;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(MovGlobal)
  OP_CASE(CallPseudo)
  OP_CASE(ArgGet)
  goto bail; // Unlinked/unexpanded: step() raises the proper error.

  // --- Fused groups (components retire strictly in order) ------------------

#define WARIO_H_MovImm_Alu(_, OP)                                              \
  FK_CASE(MovImm_Alu_##OP) {                                                   \
    WB_MovImm(0)                                                               \
    WB_Alu(1, OP)                                                              \
    WARIO_RETIRE(2);                                                           \
  }                                                                            \
  DISPATCH();
  WARIO_EMU_ALU9(WARIO_H_MovImm_Alu, _)
#undef WARIO_H_MovImm_Alu

#define WARIO_H_Alu_Mov(_, OP)                                                 \
  FK_CASE(Alu_Mov_##OP) {                                                      \
    WB_Alu(0, OP)                                                              \
    WB_Mov(1)                                                                  \
    WARIO_RETIRE(2);                                                           \
  }                                                                            \
  DISPATCH();
  WARIO_EMU_ALU9(WARIO_H_Alu_Mov, _)
#undef WARIO_H_Alu_Mov

#define WARIO_H_Alu_MovImm(_, OP)                                              \
  FK_CASE(Alu_MovImm_##OP) {                                                   \
    WB_Alu(0, OP)                                                              \
    WB_MovImm(1)                                                               \
    WARIO_RETIRE(2);                                                           \
  }                                                                            \
  DISPATCH();
  WARIO_EMU_ALU9(WARIO_H_Alu_MovImm, _)
#undef WARIO_H_Alu_MovImm

#define WARIO_H_LdrSlot_Alu(_, OP)                                             \
  FK_CASE(LdrSlot_Alu_##OP) {                                                  \
    WB_LdrSlot(0)                                                              \
    WB_Alu(1, OP)                                                              \
    WARIO_RETIRE(2);                                                           \
  }                                                                            \
  DISPATCH();
  WARIO_EMU_ALU9(WARIO_H_LdrSlot_Alu, _)
#undef WARIO_H_LdrSlot_Alu

#define WARIO_H_Alu_StrSlot(_, OP)                                             \
  FK_CASE(Alu_StrSlot_##OP) {                                                  \
    WB_Alu(0, OP)                                                              \
    WB_StrSlot(1, 1)                                                           \
    WARIO_RETIRE(2);                                                           \
  }                                                                            \
  DISPATCH();
  WARIO_EMU_ALU9(WARIO_H_Alu_StrSlot, _)
#undef WARIO_H_Alu_StrSlot

#define WARIO_H_LdrSlot_Alu_StrSlot(_, OP)                                     \
  FK_CASE(LdrSlot_Alu_StrSlot_##OP) {                                          \
    WB_LdrSlot(0)                                                              \
    WB_Alu(1, OP)                                                              \
    WB_StrSlot(2, 3)                                                           \
    WARIO_RETIRE(3);                                                           \
  }                                                                            \
  DISPATCH();
  WARIO_EMU_ALU9(WARIO_H_LdrSlot_Alu_StrSlot, _)
#undef WARIO_H_LdrSlot_Alu_StrSlot

#define WARIO_H_MovImm_LdrSlot_Alu(_, OP)                                      \
  FK_CASE(MovImm_LdrSlot_Alu_##OP) {                                           \
    WB_MovImm(0)                                                               \
    WB_LdrSlot(1)                                                              \
    WB_Alu(2, OP)                                                              \
    WARIO_RETIRE(3);                                                           \
  }                                                                            \
  DISPATCH();
  WARIO_EMU_ALU9(WARIO_H_MovImm_LdrSlot_Alu, _)
#undef WARIO_H_MovImm_LdrSlot_Alu

  FK_CASE(MovImm_MovImm) {
    WB_MovImm(0)
    WB_MovImm(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(MovImm_Mov) {
    WB_MovImm(0)
    WB_Mov(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(Mov_MovImm) {
    WB_Mov(0)
    WB_MovImm(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(Mov_Mov) {
    WB_Mov(0)
    WB_Mov(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(MovImm_LdrSlot) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(LdrSlot_Mov) {
    WB_LdrSlot(0)
    WB_Mov(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(Mov_LdrSlot) {
    WB_Mov(0)
    WB_LdrSlot(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(LdrSlot_LdrSlot) {
    WB_LdrSlot(0)
    WB_LdrSlot(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(StrSlot_MovImm) {
    WB_StrSlot(0, 0)
    WB_MovImm(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(StrSlot_Mov) {
    WB_StrSlot(0, 0)
    WB_Mov(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(Mov_StrSlot) {
    WB_Mov(0)
    WB_StrSlot(1, 1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(StrSlot_LdrSlot) {
    WB_StrSlot(0, 0)
    WB_LdrSlot(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(LdrSlot_Str) {
    WB_LdrSlot(0)
    WB_Str(1, 2)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(Str_LdrSlot) {
    WB_Str(0, 0)
    WB_LdrSlot(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(Mov_Ldr) {
    WB_Mov(0)
    WB_Ldr(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(Mov_Str) {
    WB_Mov(0)
    WB_Str(1, 1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

#define WARIO_H_AA(NAME, OP0, OP1)                                             \
  FK_CASE(NAME) {                                                              \
    WB_Alu(0, OP0)                                                             \
    WB_Alu(1, OP1)                                                             \
    WARIO_RETIRE(2);                                                           \
  }                                                                            \
  DISPATCH();
  WARIO_H_AA(Lsl_Lsr, Lsl, Lsr)
  WARIO_H_AA(Lsr_Lsl, Lsr, Lsl)
  WARIO_H_AA(Lsl_Add, Lsl, Add)
  WARIO_H_AA(Mul_Add, Mul, Add)
  WARIO_H_AA(Eor_Lsl, Eor, Lsl)
  WARIO_H_AA(Add_Add, Add, Add)
#undef WARIO_H_AA

  FK_CASE(SetCond_CBr) {
    WB_SetCond(0)
    WARIO_RETIRE_BR(2);
  }
  DISPATCH();

  FK_CASE(MovImm_SetCond_CBr) {
    WB_MovImm(0)
    WB_SetCond(1)
    WARIO_RETIRE_BR(3);
  }
  DISPATCH();

  FK_CASE(Lsl_Lsr_StrSlot) {
    WB_Alu(0, Lsl)
    WB_Alu(1, Lsr)
    WB_StrSlot(2, 2)
    WARIO_RETIRE(3);
  }
  DISPATCH();

  FK_CASE(Add_Mov_Ldr) {
    WB_Alu(0, Add)
    WB_Mov(1)
    WB_Ldr(2)
    WARIO_RETIRE(3);
  }
  DISPATCH();

  // --- Second-level concatenations (9x9 ALU family + pair catalog) ---------

#define WARIO_H_A2(OP0, OP1)                                                   \
  FK_CASE(Alu2_##OP0##_##OP1) {                                                \
    WB_Alu(0, OP0)                                                             \
    WB_Alu(1, OP1)                                                             \
    WARIO_RETIRE(2);                                                           \
  }                                                                            \
  DISPATCH();
  WARIO_EMU_ALU81(WARIO_H_A2)
#undef WARIO_H_A2

  FK_CASE(Str_LdrSlot_Str_LdrSlot) {
    WB_Str(0, 0)
    WB_LdrSlot(1)
    WB_Str(2, 4)
    WB_LdrSlot(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Mov_CBr) {
    WB_Mov(0)
    WARIO_RETIRE_BR(2);
  }
  DISPATCH();

  FK_CASE(SetCond_Mov_CBr) {
    WB_SetCond(0)
    WB_Mov(1)
    WARIO_RETIRE_BR(3);
  }
  DISPATCH();

  FK_CASE(LdrSlot_SetCond_CBr) {
    WB_LdrSlot(0)
    WB_SetCond(1)
    WARIO_RETIRE_BR(3);
  }
  DISPATCH();

  FK_CASE(Add_Mov_Ldr_Eor_MovImm) {
    WB_Alu(0, Add)
    WB_Mov(1)
    WB_Ldr(2)
    WB_Alu(3, Eor)
    WB_MovImm(4)
    WARIO_RETIRE(5);
  }
  DISPATCH();

  FK_CASE(Add_Mov_Ldr_MovImm_Lsr) {
    WB_Alu(0, Add)
    WB_Mov(1)
    WB_Ldr(2)
    WB_MovImm(3)
    WB_Alu(4, Lsr)
    WARIO_RETIRE(5);
  }
  DISPATCH();

  FK_CASE(Eor_MovImm_And_MovImm) {
    WB_Alu(0, Eor)
    WB_MovImm(1)
    WB_Alu(2, And)
    WB_MovImm(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(And_MovImm_MovImm_Lsl) {
    WB_Alu(0, And)
    WB_MovImm(1)
    WB_MovImm(2)
    WB_Alu(3, Lsl)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(MovImm_Lsl_Add_Mov_Ldr) {
    WB_MovImm(0)
    WB_Alu(1, Lsl)
    WB_Alu(2, Add)
    WB_Mov(3)
    WB_Ldr(4)
    WARIO_RETIRE(5);
  }
  DISPATCH();

  FK_CASE(MovImm_Add_Mov_MovImm) {
    WB_MovImm(0)
    WB_Alu(1, Add)
    WB_Mov(2)
    WB_MovImm(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Str_MovImm_Add) {
    WB_Str(0, 0)
    WB_MovImm(1)
    WB_Alu(2, Add)
    WARIO_RETIRE(3);
  }
  DISPATCH();

  FK_CASE(MovImm_Add_LdrSlot) {
    WB_MovImm(0)
    WB_Alu(1, Add)
    WB_LdrSlot(2)
    WARIO_RETIRE(3);
  }
  DISPATCH();

  FK_CASE(Str_Str) {
    WB_Str(0, 0)
    WB_Str(1, 2)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(MovImm_LdrSlot_Lsr_LdrSlot_Eor_StrSlot) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WB_Alu(2, Lsr)
    WB_LdrSlot(3)
    WB_Alu(4, Eor)
    WB_StrSlot(5, J[0].Aux + 6)
    WARIO_RETIRE(6);
  }
  DISPATCH();

  FK_CASE(MovImm_LdrSlot_Lsl_LdrSlot_Eor_StrSlot) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WB_Alu(2, Lsl)
    WB_LdrSlot(3)
    WB_Alu(4, Eor)
    WB_StrSlot(5, J[0].Aux + 6)
    WARIO_RETIRE(6);
  }
  DISPATCH();

  FK_CASE(LdrSlot_Eor_StrSlot_MovImm_LdrSlot_Lsl) {
    WB_LdrSlot(0)
    WB_Alu(1, Eor)
    WB_StrSlot(2, 3)
    WB_MovImm(3)
    WB_LdrSlot(4)
    WB_Alu(5, Lsl)
    WARIO_RETIRE(6);
  }
  DISPATCH();

  FK_CASE(LdrSlot_Mov_LdrSlot_Mov) {
    WB_LdrSlot(0)
    WB_Mov(1)
    WB_LdrSlot(2)
    WB_Mov(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(StrSlot_Mov_StrSlot_Mov) {
    WB_StrSlot(0, 0)
    WB_Mov(1)
    WB_StrSlot(2, 3)
    WB_Mov(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Lsl_MovImm_Lsr) {
    WB_Alu(0, Lsl)
    WB_MovImm(1)
    WB_Alu(2, Lsr)
    WARIO_RETIRE(3);
  }
  DISPATCH();

  FK_CASE(Lsl_Add_Mov_Ldr) {
    WB_Alu(0, Lsl)
    WB_Alu(1, Add)
    WB_Mov(2)
    WB_Ldr(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Mov_Ldr_Eor_MovImm) {
    WB_Mov(0)
    WB_Ldr(1)
    WB_Alu(2, Eor)
    WB_MovImm(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Sub_MovImm_Lsl_Add) {
    WB_Alu(0, Sub)
    WB_MovImm(1)
    WB_Alu(2, Lsl)
    WB_Alu(3, Add)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Eor_MovImm_Sub_MovImm) {
    WB_Alu(0, Eor)
    WB_MovImm(1)
    WB_Alu(2, Sub)
    WB_MovImm(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Mov_Mov_Mov_Mov) {
    WB_Mov(0)
    WB_Mov(1)
    WB_Mov(2)
    WB_Mov(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Add_MovImm_MovImm_Lsl) {
    WB_Alu(0, Add)
    WB_MovImm(1)
    WB_MovImm(2)
    WB_Alu(3, Lsl)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(MovImm_Sub_MovImm_Lsl) {
    WB_MovImm(0)
    WB_Alu(1, Sub)
    WB_MovImm(2)
    WB_Alu(3, Lsl)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(LdrSlot_LdrSlot_Str_LdrSlot) {
    WB_LdrSlot(0)
    WB_LdrSlot(1)
    WB_Str(2, 4)
    WB_LdrSlot(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Str_LdrSlot_LdrSlot_Str) {
    WB_Str(0, 0)
    WB_LdrSlot(1)
    WB_LdrSlot(2)
    WB_Str(3, 6)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Eor_Lsl_Lsr_Lsl) {
    WB_Alu(0, Eor)
    WB_Alu(1, Lsl)
    WB_Alu(2, Lsr)
    WB_Alu(3, Lsl)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(LdrSlot_Str_LdrSlot_LdrSlot) {
    WB_LdrSlot(0)
    WB_Str(1, 2)
    WB_LdrSlot(2)
    WB_LdrSlot(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Add_MovImm_SetCond_CBr) {
    WB_Alu(0, Add)
    WB_MovImm(1)
    WB_SetCond(2)
    WARIO_RETIRE_BR(4);
  }
  DISPATCH();

  FK_CASE(Lsr_Lsl_Lsr_StrSlot) {
    WB_Alu(0, Lsr)
    WB_Alu(1, Lsl)
    WB_Alu(2, Lsr)
    WB_StrSlot(3, 3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(LdrSlot_Str_LdrSlot_Str) {
    WB_LdrSlot(0)
    WB_Str(1, 2)
    WB_LdrSlot(2)
    WB_Str(3, 6)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(MovImm_LdrSlot_Lsr_MovImm_Mul) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WB_Alu(2, Lsr)
    WB_MovImm(3)
    WB_Alu(4, Mul)
    WARIO_RETIRE(5);
  }
  DISPATCH();

  FK_CASE(Lsr_StrSlot_MovImm_LdrSlot_Lsl) {
    WB_Alu(0, Lsr)
    WB_StrSlot(1, 1)
    WB_MovImm(2)
    WB_LdrSlot(3)
    WB_Alu(4, Lsl)
    WARIO_RETIRE(5);
  }
  DISPATCH();

  FK_CASE(MovImm_LdrSlot_Lsl_MovImm_LdrSlot_Lsr) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WB_Alu(2, Lsl)
    WB_MovImm(3)
    WB_LdrSlot(4)
    WB_Alu(5, Lsr)
    WARIO_RETIRE(6);
  }
  DISPATCH();

  FK_CASE(MovImm_Mul_Eor_Lsl) {
    WB_MovImm(0)
    WB_Alu(1, Mul)
    WB_Alu(2, Eor)
    WB_Alu(3, Lsl)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(MovImm_LdrSlot_And_MovImm_SetCond_CBr) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WB_Alu(2, And)
    WB_MovImm(3)
    WB_SetCond(4)
    WARIO_RETIRE_BR(6);
  }
  DISPATCH();

  FK_CASE(Lsl_Lsr_StrSlot_Add_MovImm) {
    WB_Alu(0, Lsl)
    WB_Alu(1, Lsr)
    WB_StrSlot(2, 2)
    WB_Alu(3, Add)
    WB_MovImm(4)
    WARIO_RETIRE(5);
  }
  DISPATCH();

  FK_CASE(Lsr_StrSlot_LdrSlot_Lsr) {
    WB_Alu(0, Lsr)
    WB_StrSlot(1, 1)
    WB_LdrSlot(2)
    WB_Alu(3, Lsr)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(LdrSlot_Lsr_Lsl_Lsr_StrSlot) {
    WB_LdrSlot(0)
    WB_Alu(1, Lsr)
    WB_Alu(2, Lsl)
    WB_Alu(3, Lsr)
    WB_StrSlot(4, 5)
    WARIO_RETIRE(5);
  }
  DISPATCH();

  FK_CASE(LdrSlot_Ldr) {
    WB_LdrSlot(0)
    WB_Ldr(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  // --- Round-2 chain superinstructions: whole loop bodies ------------------

  FK_CASE(CrcA1) {
    WB_Alu(0, Add)
    WB_Mov(1)
    WB_Ldr(2)
    WB_Alu(3, Eor)
    WB_MovImm(4)
    WB_Alu(5, And)
    WB_MovImm(6)
    WB_MovImm(7)
    WB_Alu(8, Lsl)
    WARIO_RETIRE(9);
  }
  DISPATCH();

  FK_CASE(CrcA2) {
    WB_Alu(0, Add)
    WB_Mov(1)
    WB_Ldr(2)
    WB_Alu(3, Eor)
    WB_MovImm(4)
    WB_Alu(5, And)
    WB_MovImm(6)
    WB_MovImm(7)
    WB_Alu(8, Lsl)
    WB_Alu(9, Add)
    WB_Mov(10)
    WB_Ldr(11)
    WB_MovImm(12)
    WB_Alu(13, Lsr)
    WARIO_RETIRE(14);
  }
  DISPATCH();

  FK_CASE(CrcA3) {
    WB_Alu(0, Add)
    WB_Mov(1)
    WB_Ldr(2)
    WB_Alu(3, Eor)
    WB_MovImm(4)
    WB_Alu(5, And)
    WB_MovImm(6)
    WB_MovImm(7)
    WB_Alu(8, Lsl)
    WB_Alu(9, Add)
    WB_Mov(10)
    WB_Ldr(11)
    WB_MovImm(12)
    WB_Alu(13, Lsr)
    WB_Alu(14, Eor)
    WB_MovImm(15)
    WARIO_RETIRE(16);
  }
  DISPATCH();

  FK_CASE(CrcA4) {
    WB_Alu(0, Add)
    WB_Mov(1)
    WB_Ldr(2)
    WB_Alu(3, Eor)
    WB_MovImm(4)
    WB_Alu(5, And)
    WB_MovImm(6)
    WB_MovImm(7)
    WB_Alu(8, Lsl)
    WB_Alu(9, Add)
    WB_Mov(10)
    WB_Ldr(11)
    WB_MovImm(12)
    WB_Alu(13, Lsr)
    WB_Alu(14, Eor)
    WB_MovImm(15)
    WB_Alu(16, Add)
    WARIO_RETIRE(17);
  }
  DISPATCH();

  FK_CASE(Add_SetCond_Mov_CBr) {
    WB_Alu(0, Add)
    WB_SetCond(1)
    WB_Mov(2)
    WARIO_RETIRE_BR(4);
  }
  DISPATCH();

  FK_CASE(StrLdr2) {
    WB_Str(0, 0)
    WB_LdrSlot(1)
    WB_Str(2, 4)
    WB_LdrSlot(3)
    WB_Str(4, 8)
    WB_LdrSlot(5)
    WB_Str(6, 12)
    WB_LdrSlot(7)
    WARIO_RETIRE(8);
  }
  DISPATCH();

  FK_CASE(CrcB1) {
    WB_MovImm(0)
    WB_Alu(1, Add)
    WB_Mov(2)
    WB_MovImm(3)
    WB_LdrSlot(4)
    WB_Alu(5, Lsl)
    WARIO_RETIRE(6);
  }
  DISPATCH();

  FK_CASE(CrcB2) {
    WB_MovImm(0)
    WB_Alu(1, Add)
    WB_Mov(2)
    WB_MovImm(3)
    WB_LdrSlot(4)
    WB_Alu(5, Lsl)
    WB_LdrSlot(6)
    WB_Alu(7, Eor)
    WB_StrSlot(8, J[0].Aux + J[3].Aux + 8)
    WARIO_RETIRE(9);
  }
  DISPATCH();

  FK_CASE(CrcB3) {
    WB_MovImm(0)
    WB_Alu(1, Add)
    WB_Mov(2)
    WB_MovImm(3)
    WB_LdrSlot(4)
    WB_Alu(5, Lsl)
    WB_LdrSlot(6)
    WB_Alu(7, Eor)
    WB_StrSlot(8, J[0].Aux + J[3].Aux + 8)
    WB_MovImm(9)
    WB_LdrSlot(10)
    WB_Alu(11, Lsr)
    WB_LdrSlot(12)
    WB_Alu(13, Eor)
    WB_StrSlot(14, J[0].Aux + J[3].Aux + J[9].Aux + 16)
    WARIO_RETIRE(15);
  }
  DISPATCH();

  FK_CASE(CrcC1) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WB_Alu(2, Lsl)
    WB_LdrSlot(3)
    WB_Alu(4, Eor)
    WB_StrSlot(5, J[0].Aux + 6)
    WB_LdrSlot(6)
    WB_Alu(7, Lsr)
    WARIO_RETIRE(8);
  }
  DISPATCH();

  FK_CASE(CrcC2) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WB_Alu(2, Lsl)
    WB_LdrSlot(3)
    WB_Alu(4, Eor)
    WB_StrSlot(5, J[0].Aux + 6)
    WB_LdrSlot(6)
    WB_Alu(7, Lsr)
    WB_MovImm(8)
    WB_Alu(9, Lsl)
    WARIO_RETIRE(10);
  }
  DISPATCH();

  FK_CASE(CrcC3) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WB_Alu(2, Lsl)
    WB_LdrSlot(3)
    WB_Alu(4, Eor)
    WB_StrSlot(5, J[0].Aux + 6)
    WB_LdrSlot(6)
    WB_Alu(7, Lsr)
    WB_MovImm(8)
    WB_Alu(9, Lsl)
    WB_Alu(10, Lsr)
    WB_Alu(11, Lsl)
    WARIO_RETIRE(12);
  }
  DISPATCH();

  FK_CASE(CrcC4) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WB_Alu(2, Lsl)
    WB_LdrSlot(3)
    WB_Alu(4, Eor)
    WB_StrSlot(5, J[0].Aux + 6)
    WB_LdrSlot(6)
    WB_Alu(7, Lsr)
    WB_MovImm(8)
    WB_Alu(9, Lsl)
    WB_Alu(10, Lsr)
    WB_Alu(11, Lsl)
    WB_Alu(12, Lsr)
    WARIO_RETIRE(13);
  }
  DISPATCH();

  FK_CASE(CrcC5) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WB_Alu(2, Lsl)
    WB_LdrSlot(3)
    WB_Alu(4, Eor)
    WB_StrSlot(5, J[0].Aux + 6)
    WB_LdrSlot(6)
    WB_Alu(7, Lsr)
    WB_MovImm(8)
    WB_Alu(9, Lsl)
    WB_Alu(10, Lsr)
    WB_Alu(11, Lsl)
    WB_Alu(12, Lsr)
    WB_Str(13, J[0].Aux + J[8].Aux + 15)
    WB_MovImm(14)
    WB_Alu(15, Add)
    WARIO_RETIRE(16);
  }
  DISPATCH();

  FK_CASE(Str_MovImm_Add_LdrSlot_SetCond_CBr) {
    WB_Str(0, 0)
    WB_MovImm(1)
    WB_Alu(2, Add)
    WB_LdrSlot(3)
    WB_SetCond(4)
    WARIO_RETIRE_BR(6);
  }
  DISPATCH();

  FK_CASE(Lsl_Lsr_Lsl_Lsr) {
    WB_Alu(0, Lsl)
    WB_Alu(1, Lsr)
    WB_Alu(2, Lsl)
    WB_Alu(3, Lsr)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Lsl_Lsr_Str_MovImm_Add) {
    WB_Alu(0, Lsl)
    WB_Alu(1, Lsr)
    WB_Str(2, 2)
    WB_MovImm(3)
    WB_Alu(4, Add)
    WARIO_RETIRE(5);
  }
  DISPATCH();

  FK_CASE(Lsr_MovImm_Lsl_Lsr) {
    WB_Alu(0, Lsr)
    WB_MovImm(1)
    WB_Alu(2, Lsl)
    WB_Alu(3, Lsr)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(ShaA1) {
    WB_Alu(0, Sub)
    WB_MovImm(1)
    WB_Alu(2, Lsl)
    WB_Alu(3, Add)
    WB_Mov(4)
    WB_Ldr(5)
    WB_Alu(6, Eor)
    WB_MovImm(7)
    WARIO_RETIRE(8);
  }
  DISPATCH();

  FK_CASE(Mov_Mov_Mov_Mov_B) {
    WB_Mov(0)
    WB_Mov(1)
    WB_Mov(2)
    WB_Mov(3)
    WARIO_RETIRE_B(5);
  }
  DISPATCH();

  FK_CASE(Mov_MovImm_SetCond_CBr) {
    WB_Mov(0)
    WB_MovImm(1)
    WB_SetCond(2)
    WARIO_RETIRE_BR(4);
  }
  DISPATCH();

  FK_CASE(StrSlot_B) {
    WB_StrSlot(0, 0)
    WARIO_RETIRE_B(2);
  }
  DISPATCH();

  FK_CASE(LdrMov4x2) {
    WB_LdrSlot(0)
    WB_Mov(1)
    WB_LdrSlot(2)
    WB_Mov(3)
    WB_LdrSlot(4)
    WB_Mov(5)
    WB_LdrSlot(6)
    WB_Mov(7)
    WARIO_RETIRE(8);
  }
  DISPATCH();

  FK_CASE(LdrSlot_Mov_StrSlot_LdrSlot) {
    WB_LdrSlot(0)
    WB_Mov(1)
    WB_StrSlot(2, 3)
    WB_LdrSlot(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(MovImm_Mov_B) {
    WB_MovImm(0)
    WB_Mov(1)
    WARIO_RETIRE_B(3);
  }
  DISPATCH();

  FK_CASE(ShaB1) {
    WB_Alu(0, Add)
    WB_MovImm(1)
    WB_MovImm(2)
    WB_Alu(3, Lsl)
    WB_Alu(4, Add)
    WB_Mov(5)
    WB_Ldr(6)
    WARIO_RETIRE(7);
  }
  DISPATCH();

  FK_CASE(ShaB2) {
    WB_Alu(0, Add)
    WB_MovImm(1)
    WB_MovImm(2)
    WB_Alu(3, Lsl)
    WB_Alu(4, Add)
    WB_Mov(5)
    WB_Ldr(6)
    WB_Alu(7, Add)
    WB_MovImm(8)
    WARIO_RETIRE(9);
  }
  DISPATCH();

  FK_CASE(Lsl_MovImm_Lsr_Orr_MovImm) {
    WB_Alu(0, Lsl)
    WB_MovImm(1)
    WB_Alu(2, Lsr)
    WB_Alu(3, Orr)
    WB_MovImm(4)
    WARIO_RETIRE(5);
  }
  DISPATCH();

  FK_CASE(StrMov4x2) {
    WB_StrSlot(0, 0)
    WB_Mov(1)
    WB_StrSlot(2, 3)
    WB_Mov(3)
    WB_StrSlot(4, 6)
    WB_Mov(5)
    WB_StrSlot(6, 9)
    WB_Mov(7)
    WARIO_RETIRE(8);
  }
  DISPATCH();

  FK_CASE(StrMov4_StrMov) {
    WB_StrSlot(0, 0)
    WB_Mov(1)
    WB_StrSlot(2, 3)
    WB_Mov(3)
    WB_StrSlot(4, 6)
    WB_Mov(5)
    WARIO_RETIRE(6);
  }
  DISPATCH();

  FK_CASE(StrSlot_Mov_StrSlot) {
    WB_StrSlot(0, 0)
    WB_Mov(1)
    WB_StrSlot(2, 3)
    WARIO_RETIRE(3);
  }
  DISPATCH();

  FK_CASE(Orr_Add_LdrSlot_Add) {
    WB_Alu(0, Orr)
    WB_Alu(1, Add)
    WB_LdrSlot(2)
    WB_Alu(3, Add)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Mov_Mov_MovImm_Lsl) {
    WB_Mov(0)
    WB_Mov(1)
    WB_MovImm(2)
    WB_Alu(3, Lsl)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(AesA1) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WB_Alu(2, Lsl)
    WB_Alu(3, Lsr)
    WB_StrSlot(4, J[0].Aux + 4)
    WB_MovImm(5)
    WB_LdrSlot(6)
    WB_Alu(7, Lsl)
    WARIO_RETIRE(8);
  }
  DISPATCH();

  FK_CASE(AesA2) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WB_Alu(2, Lsl)
    WB_Alu(3, Lsr)
    WB_StrSlot(4, J[0].Aux + 4)
    WB_MovImm(5)
    WB_LdrSlot(6)
    WB_Alu(7, Lsl)
    WB_MovImm(8)
    WB_LdrSlot(9)
    WB_Alu(10, Lsr)
    WB_MovImm(11)
    WB_Alu(12, Mul)
    WARIO_RETIRE(13);
  }
  DISPATCH();

  FK_CASE(AesB1) {
    WB_Alu(0, Eor)
    WB_Alu(1, Lsl)
    WB_Alu(2, Lsr)
    WB_Alu(3, Lsl)
    WB_Alu(4, Lsr)
    WB_StrSlot(5, 5)
    WB_LdrSlot(6)
    WB_Alu(7, Lsr)
    WARIO_RETIRE(8);
  }
  DISPATCH();

  FK_CASE(AesC1) {
    WB_Alu(0, Lsl)
    WB_Alu(1, Lsr)
    WB_StrSlot(2, 2)
    WB_Alu(3, Add)
    WB_MovImm(4)
    WB_SetCond(5)
    WARIO_RETIRE_BR(7);
  }
  DISPATCH();

  FK_CASE(AesD1) {
    WB_LdrSlot(0)
    WB_LdrSlot(1)
    WB_Str(2, 4)
    WB_LdrSlot(3)
    WB_LdrSlot(4)
    WB_Str(5, 10)
    WB_LdrSlot(6)
    WB_LdrSlot(7)
    WARIO_RETIRE(8);
  }
  DISPATCH();

  FK_CASE(AesE1) {
    WB_LdrSlot(0)
    WB_Str(1, 2)
    WB_LdrSlot(2)
    WB_Str(3, 6)
    WB_LdrSlot(4)
    WB_Str(5, 10)
    WB_LdrSlot(6)
    WB_Str(7, 14)
    WARIO_RETIRE(8);
  }
  DISPATCH();

  FK_CASE(MovImm_Add_Mov_Ldr) {
    WB_MovImm(0)
    WB_Alu(1, Add)
    WB_Mov(2)
    WB_Ldr(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(LdrSlot_Mov_MovImm_SetCond_CBr) {
    WB_LdrSlot(0)
    WB_Mov(1)
    WB_MovImm(2)
    WB_SetCond(3)
    WARIO_RETIRE_BR(5);
  }
  DISPATCH();

  FK_CASE(Mov_StrSlot_B) {
    WB_Mov(0)
    WB_StrSlot(1, 1)
    WARIO_RETIRE_B(3);
  }
  DISPATCH();

  FK_CASE(Lsr_MovImm_Mul) {
    WB_Alu(0, Lsr)
    WB_MovImm(1)
    WB_Alu(2, Mul)
    WARIO_RETIRE(3);
  }
  DISPATCH();

  FK_CASE(Eor_Lsl_Lsr_Lsl_Lsr) {
    WB_Alu(0, Eor)
    WB_Alu(1, Lsl)
    WB_Alu(2, Lsr)
    WB_Alu(3, Lsl)
    WB_Alu(4, Lsr)
    WARIO_RETIRE(5);
  }
  DISPATCH();

  FK_CASE(Lsr_MovImm_Lsl_MovImm) {
    WB_Alu(0, Lsr)
    WB_MovImm(1)
    WB_Alu(2, Lsl)
    WB_MovImm(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Lsl_MovImm_Lsr_MovImm) {
    WB_Alu(0, Lsl)
    WB_MovImm(1)
    WB_Alu(2, Lsr)
    WB_MovImm(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

#if WARIO_THREADED_GOTO
H_Bad:
  assert(false && "padding kind dispatched");
  goto bail;
#else
  default:
    assert(false && "unknown kind dispatched");
    goto bail;
  }
#endif

bail:
  // Something irregular at the current pc (counters already advanced
  // past any retired components): sync, let the interpreter execute
  // exactly one instruction through its own code, and resume. No
  // outer-loop event can fire before that boundary — the caller's
  // margin guarantees it — so going straight back to dispatch is
  // exactly the interpreter's own sequencing.
  flush();
  ++BailSteps;
  step();
  reload();
  if (Done || Failed)
    goto out;
  DISPATCH();

out:
  flush();
  St.ThreadedInstructions = (Insts - Insts0) - BailSteps;
  if (Stats)
    *Stats += St;
}
