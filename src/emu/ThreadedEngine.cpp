//===----------------------------------------------------------------------===//
///
/// \file
/// The direct-threaded execution engine (DESIGN.md §7.7).
///
/// Machine::runThreaded executes the merged FastInst stream with one
/// dispatch per group: computed goto under GCC/Clang, a plain switch
/// loop elsewhere (the handler bodies are shared; only the OP_CASE /
/// DISPATCH macros change). The hot machine state — the stream cursor,
/// the active cycle counter, the instruction counter, the WAR stamp
/// pattern — is kept in locals and synced with the Machine members only
/// at the rare points that need them (bail-outs, push/pop, checkpoint
/// commits, loop exit).
///
/// Correctness contract with the interpreter (the byte-identity bar):
///  - The caller (Machine::run) enters only while the next
///    interpreter-visible event — power failure, interrupt delivery,
///    stop point, trace window, cycle-budget exhaustion — is at least
///    FusedCostLimit cycles away, and every group costs less than that,
///    so no event cycle can land at a group-interior boundary. The
///    loop exits at the margin and the interpreter walks the final
///    approach, checking events at every boundary exactly as before.
///  - Every handler replicates step()'s transition bit for bit
///    (ConstEval semantics, cycle costs, WAR stamping, StoreCycles
///    stamps at the storing component's pre-instruction cycle).
///  - Anything rare or irregular — out-of-bounds access, WAR
///    violation, OutPort store, division by zero, push/pop-time
///    failures, unlinked pseudos, the final Ret — *bails*: the handler
///    backs out before mutating the offending component (components
///    already completed stay completed, with pc and counters advanced
///    past them), syncs state, and lets step() execute that one
///    instruction through the interpreter's own code.
///
/// Handler bodies are composed from per-component WB_* macros: WB_X(k)
/// executes component k of the group the cursor points at, reading its
/// operands from J[k] (the merged stream keeps every pc's decoded
/// fields even inside a group, so interior components are one indexed
/// load away). A component that cannot complete invokes
/// WARIO_PARTIAL(k): retire the k-component prefix and bail.
///
//===----------------------------------------------------------------------===//

#include "emu/ThreadedEngine.h"

#include "emu/Machine.h"
#include "ir/ConstEval.h"

#include <bit>
#include <cstdlib>
#include <cstring>

using namespace wario;
using namespace wario::emu_detail;

EngineKind wario::resolveEngine(EngineKind Requested) {
  if (Requested != EngineKind::Auto)
    return Requested;
  // Read fresh on every call so tests can flip the kill switch with
  // setenv between runs.
  if (const char *E = std::getenv("WARIO_ENGINE")) {
    if (std::strcmp(E, "interp") == 0 || std::strcmp(E, "interpreter") == 0)
      return EngineKind::Interp;
    if (std::strcmp(E, "threaded") == 0)
      return EngineKind::Threaded;
  }
  return EngineKind::Trace;
}

const char *wario::engineName(EngineKind K) {
  switch (K) {
  case EngineKind::Auto: return "auto";
  case EngineKind::Interp: return "interp";
  case EngineKind::Threaded: return "threaded";
  case EngineKind::Trace: return "trace";
  }
  return "?";
}

namespace {

/// AShr with the interpreter's clamp semantics (ConstEval.h).
inline uint32_t evalAsr(uint32_t A, uint32_t B) {
  int32_t SA = int32_t(A);
  if (B >= 32)
    return SA < 0 ? ~0u : 0u;
  return uint32_t(SA >> B);
}

/// SDiv with the INT_MIN / -1 clamp (divisor checked by the caller).
inline uint32_t evalSDiv(uint32_t A, uint32_t B) {
  int32_t SA = int32_t(A), SB = int32_t(B);
  if (SA == INT32_MIN && SB == -1)
    return uint32_t(SA);
  return uint32_t(SA / SB);
}

/// Cycle cost of the \p N-component retired prefix of a group, read
/// from the decoded program (the merged stream's interior Kind fields
/// describe the group *starting* there, not the component). Cold: only
/// partial-completion bails reach this.
__attribute__((noinline)) uint64_t retiredPrefix(const DecodedInst *I,
                                                 unsigned N) {
  uint64_t C = 0;
  for (unsigned K = 0; K != N; ++K) {
    switch (I[K].Op) {
    case MOp::MovImm:
      C += I[K].MovCost;
      break;
    case MOp::SetCond:
    case MOp::Ldr:
    case MOp::Str:
    case MOp::LdrSlot:
    case MOp::StrSlot:
      C += 2;
      break;
    default:
      C += 1; // Mov / single-cycle ALU; branches never precede a bail.
      break;
    }
  }
  return C;
}

/// Cold stamp maintenance for monitored word accesses, kept out of
/// line: the hot loop inlines the access fast paths at every component
/// site of every handler, so slow-path bytes multiply across the whole
/// engine and directly tax its I-cache footprint. Only the first touch
/// of a word per idempotent region (plus the rare mixed-stamp case)
/// lands here.
__attribute__((noinline)) void restampRead(uint16_t *A, uint32_t WantR) {
  for (unsigned K = 0; K != 4; ++K)
    if ((A[K] & ~1u) != WantR)
      A[K] = uint16_t(WantR);
}

} // namespace

// Per-op ALU evaluation, kept in lockstep with constEvalBinary. The
// macro form lets the X-macro handler families bake the operation into
// each handler instead of re-dispatching on an opcode.
#define WARIO_EVAL_Add(A, B) ((A) + (B))
#define WARIO_EVAL_Sub(A, B) ((A) - (B))
#define WARIO_EVAL_Mul(A, B) ((A) * (B))
#define WARIO_EVAL_And(A, B) ((A) & (B))
#define WARIO_EVAL_Orr(A, B) ((A) | (B))
#define WARIO_EVAL_Eor(A, B) ((A) ^ (B))
#define WARIO_EVAL_Lsl(A, B) ((B) >= 32 ? 0u : (A) << (B))
#define WARIO_EVAL_Lsr(A, B) ((B) >= 32 ? 0u : (A) >> (B))
#define WARIO_EVAL_Asr(A, B) evalAsr((A), (B))

#if defined(__GNUC__) || defined(__clang__)
#define WARIO_THREADED_GOTO 1
#define WARIO_ALWAYS_INLINE __attribute__((always_inline))
#else
#define WARIO_THREADED_GOTO 0
#define WARIO_ALWAYS_INLINE
#endif

#if WARIO_THREADED_GOTO
#define OP_CASE(N) H_Op_##N:
// Fused-group entry resets the in-group forwarding mirror (see fwdSrc):
// inside a group the producer is one component back (a hit), across
// groups it rarely is — a live cross-group FwdD just makes the hit
// branch unpredictable (measured ~15% worse on AES).
#define FK_CASE(N) H_FK_##N: FwdD = -1;
// CurLimit is the per-dispatch bound: Limit on the merged stream, ~0
// inside a superblock (the trace engine pays the aggregate margin check
// once at entry instead). The dispatch path itself is engine-blind —
// all trace policy (superblock entry, heat, path recording) lives on
// the cold trace_edge funnel that WARIO_SETJ routes transfers through.
#define DISPATCH()                                                             \
  do {                                                                         \
    if (Active >= CurLimit)                                                    \
      goto out;                                                                \
    ++St.Dispatches;                                                           \
    goto *Tbl[J->Kind];                                                        \
  } while (0)
// Dispatch with the limit check already performed (superblock entry
// pre-checks the aggregate margin).
#define WARIO_DISPATCH_NOHOOK()                                                \
  do {                                                                         \
    ++St.Dispatches;                                                           \
    goto *Tbl[J->Kind];                                                        \
  } while (0)
#else
#define OP_CASE(N) case uint16_t(MOp::N):
#define FK_CASE(N) case uint16_t(FK_##N): FwdD = -1;
#define DISPATCH() goto dispatch
#define WARIO_DISPATCH_NOHOOK() goto dispatch_direct
#endif

// Group retirement: cycles from the precomputed group cost (read BEFORE
// the cursor moves), then the cursor past every component.
#define WARIO_RETIRE(n)                                                        \
  do {                                                                         \
    Active += J->Cost;                                                         \
    Insts += (n);                                                              \
    J += (n);                                                                  \
    ++St.FusedDispatches;                                                      \
    St.FusedInstructions += (n);                                               \
  } while (0)

// Branch-ending group retirement: the tail component is a CBr at index
// n-1; the whole group's cost (branch included) was precomputed. The
// condition and both targets are read before the cursor is reassigned.
#define WARIO_RETIRE_BR(n)                                                     \
  do {                                                                         \
    uint32_t T_ =                                                              \
        fwdSrc(J[(n)-1].Src0, FwdD, FwdV, R) != 0 ? J[(n)-1].T0 : J[(n)-1].A;  \
    Active += J->Cost;                                                         \
    Insts += (n);                                                              \
    ++St.FusedDispatches;                                                      \
    St.FusedInstructions += (n);                                               \
    WARIO_SETJ(T_);                                                            \
  } while (0)

// Unconditional-branch-ending group retirement: the tail component is
// a B at index n-1.
#define WARIO_RETIRE_B(n)                                                      \
  do {                                                                         \
    uint32_t T_ = J[(n)-1].T0;                                                 \
    Active += J->Cost;                                                         \
    Insts += (n);                                                              \
    ++St.FusedDispatches;                                                      \
    St.FusedInstructions += (n);                                               \
    WARIO_SETJ(T_);                                                            \
  } while (0)

// Control-transfer cursor reassignment, evaluated after the branch's
// own counters are retired (the old J must survive until here: the
// trace engine's back-edge test compares the target against it). On the
// merged stream the trace engine keeps its edge bookkeeping inline and
// almost free: forward transfers cost one register compare, backward
// transfers one heat-counter increment, and only a counter crossing
// TraceHotThreshold leaves for the cold trace_edge funnel, where all
// policy (superblock entry, recording triggers, blacklists) lives —
// superblock heads are pinned at the threshold so they funnel every
// visit, cold and blacklisted heads once per period. While the recorder
// is armed every transfer funnels (the path needs each target). Inside
// a superblock the builder already rewired targets to superblock
// indices, so the transfer stays direct; the plain engine compiles down
// to the PR-6 `J = Fast + T`.
#define WARIO_SETJ(T)                                                          \
  do {                                                                         \
    uint32_t Tj_ = (T);                                                        \
    if (TraceMode && !SOrig) {                                                 \
      if (RecOn ||                                                             \
          (Tj_ <= uint32_t(J - Fast) &&                                        \
           ++TS.Hot[Tj_] >= TraceHotThreshold)) {                              \
        EdgeT = Tj_;                                                           \
        goto trace_edge;                                                       \
      }                                                                        \
    }                                                                          \
    J = SBase + Tj_;                                                           \
  } while (0)

// Component k of the current group could not complete: retire the
// k-component prefix (cycle costs come from the decoded program — the
// merged stream's interior entries describe the group starting there,
// not the component; refused superblock segments are contiguous, so
// mapping the head through Orig names the same components) and hand the
// offender to step().
#define WARIO_PARTIAL(k)                                                       \
  do {                                                                         \
    if ((k) != 0) {                                                            \
      Active += retiredPrefix(                                                 \
          Prog + (TraceMode && SOrig ? SOrig[J - SBase] : uint32_t(J - Fast)), \
          (k));                                                                \
      Insts += (k);                                                            \
      J += (k);                                                                \
    }                                                                          \
    goto bail;                                                                 \
  } while (0)

// --- Per-component transition bodies (component k of the group at J) -----
//
// Dependent components are the latency floor of a fused group: each one
// reads the register its predecessor just stored, and on typical hosts
// that register-file round trip is a multi-cycle store-to-load forward.
// (FwdD, FwdV) mirror the last register written inside the current
// group; a source matching FwdD reads the mirror — already in a host
// register — instead of R[]. FwdD resets to -1 at every group entry
// (FK_CASE), since identity handlers write registers without
// maintaining the mirror.
WARIO_ALWAYS_INLINE static inline uint32_t
fwdSrc(int32_t S, int32_t FwdD, uint32_t FwdV, const uint32_t *R) {
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_expect(S == FwdD, 1))
    return FwdV;
  // The empty asm keeps this a real (well-predicted) branch: if-converting
  // to a conditional move would put the R[] load back on the critical path.
  asm("");
  return R[S];
#else
  return S == FwdD ? FwdV : R[S];
#endif
}
#define WB_SRC0(k) fwdSrc(J[k].Src0, FwdD, FwdV, R)
#define WB_SRC1(k) fwdSrc(J[k].Src1, FwdD, FwdV, R)
#define WB_SET(k, V) (FwdV = (V), FwdD = J[k].Dst, R[FwdD] = FwdV)
#define WB_MovImm(k) WB_SET(k, J[k].A);
#define WB_Mov(k) WB_SET(k, WB_SRC0(k));
#define WB_Alu(k, OP) WB_SET(k, WARIO_EVAL_##OP(WB_SRC0(k), WB_SRC1(k)));
#define WB_SetCond(k)                                                          \
  WB_SET(k, constEvalPred(CmpPred(J[k].Aux), WB_SRC0(k), WB_SRC1(k)) ? 1 : 0);
// Superblock stamp elision (Trace.h): a slot record whose Aux flag the
// builder set is a re-touch — its stamps are provably already what the
// SWAR check would leave, so the access collapses to the raw memory
// move (elidedLoad / elidedStore). Merged-stream slot records always
// carry Aux == 0, and the plain engine folds the branch away.
#define WB_LdrSlot(k)                                                          \
  {                                                                            \
    uint32_t V_;                                                               \
    if (TraceMode && J[k].Aux != 0)                                            \
      V_ = elidedLoad(R[SP] + J[k].A);                                         \
    else if (!fastLoad(R[SP] + J[k].A, 4, false, V_))                          \
      WARIO_PARTIAL(k);                                                        \
    WB_SET(k, V_);                                                             \
  }
#define WB_Ldr(k)                                                              \
  {                                                                            \
    uint32_t V_;                                                               \
    if (!fastLoad(WB_SRC0(k) + J[k].A, J[k].Aux & 0xFF,                        \
                  (J[k].Aux & 0x100) != 0, V_))                                \
      WARIO_PARTIAL(k);                                                        \
    WB_SET(k, V_);                                                             \
  }
// PRE = pre-summed cycle cost of components [0, k) (the StoreCycles
// stamp base for the storing component). Static per pattern, except a
// J[i].Aux term when a MovImm precedes the store.
#define WB_StrSlot(k, PRE)                                                     \
  if (TraceMode && J[k].Aux != 0)                                              \
    elidedStore(R[SP] + J[k].A, WB_SRC0(k), Active + (PRE));                   \
  else if (!fastStore(R[SP] + J[k].A, 4, WB_SRC0(k), Active + (PRE)))          \
    WARIO_PARTIAL(k);
#define WB_Str(k, PRE)                                                         \
  if (!fastStore(WB_SRC1(k) + J[k].A, J[k].Aux & 0xFF, WB_SRC0(k),             \
                 Active + (PRE)))                                              \
    WARIO_PARTIAL(k);
// Interior direction guard (superblock code only; Trace.h guard
// merging): a recorded CBr carried in the middle of a refused group.
// The builder rewired both directions to superblock indices with the
// on-path side pointing at the very next record, so staying on the
// recorded path is a fall-through to component k+1. Going off-path
// retires the prefix — PRE is the cycle cost of components [0, k),
// compile-time per pattern — plus the branch itself, then leaves for
// the rewired target (an FK_TraceExit stub, or on-path code when the
// branch was rewired into the block). Kinds whose handlers use this
// macro are superblock-private: neither the static pass nor the
// refusion fixpoint merges across a branch tail.
#define WB_GUARD(k, PRE)                                                       \
  {                                                                            \
    uint32_t D_ = WB_SRC0(k) != 0 ? J[k].T0 : J[k].A;                          \
    if (D_ != uint32_t(J - SBase) + (k) + 1) {                                 \
      Active += (PRE) + 1 + cycles::PipelineRefill;                            \
      Insts += (k) + 1;                                                        \
      ++St.FusedDispatches;                                                    \
      St.FusedInstructions += (k) + 1;                                         \
      J = SBase + D_;                                                          \
      DISPATCH();                                                              \
    }                                                                          \
  }

template <bool TraceMode> void Machine::runThreadedT(uint64_t Limit) {
  const FastInst *const Fast = P.Fast.data();
  const DecodedInst *const Prog = P.Prog.data(); // Cold paths only.
  uint32_t *const R = Regs;
  uint8_t *const Mem = Scr.Mem.data();
  uint16_t *const Acc = Scr.Access.data();
  const bool Trace = Opts.CollectEventTrace;
  const bool TW = TrackWrites;
  // Checkpoint commits may stay in-loop (no flush/member-call round
  // trip) only when nothing observes the intermediate machine state:
  // no snapshot recorder or splicer, and no per-region collection.
  const bool FastCommit = !ExitOnCommit && !Chain && !Plan &&
                          !Opts.CollectRegionSizes && !Opts.CollectEventTrace;

  // Hot state mirrored into locals. TotalCycles and CyclesSinceIrq
  // advance in lockstep with ActiveSinceBoot inside the loop, so one
  // local cycle counter plus a sync baseline covers all three.
  uint64_t Active = ActiveSinceBoot;
  uint64_t LastSync = Active;
  uint64_t Insts = Res.InstructionsExecuted;
  const uint64_t Insts0 = Insts;
  uint32_t WantR = Scr.Epoch << 1; ///< Read-this-epoch stamp.
  uint32_t WantW = WantR | 1u;     ///< Write-this-epoch stamp.

  EngineStats St;
  uint64_t BailSteps = 0;
  // In-group register forwarding mirror (see fwdSrc above).
  int32_t FwdD = -1;
  uint32_t FwdV = 0;
  // The program counter is the single cursor J into the merged stream;
  // every handler advances it so dispatch itself is just a bounds check
  // and one indirect jump.
  const FastInst *J = Fast + (Pc & ~CodeAddrBit);

  // Trace-engine state (dead constants in the <false> instantiation).
  // SBase/SOrig swap between the merged stream and the current
  // superblock's private code; CurLimit is the per-dispatch bound — ~0
  // inside a superblock, whose aggregate worst-case cost was already
  // margin-checked at entry.
  const FastInst *SBase = Fast;
  const uint32_t *SOrig = nullptr;
  Superblock *CurSB = nullptr;
  uint64_t CurLimit = Limit;
  bool RecOn = false;
  uint32_t EdgeT = 0;
  // The SWAR stamp pattern, hoisted out of every access: it only
  // changes with the epoch (reload and in-loop checkpoint commits).
  uint64_t RPat = 0x0001000100010001ull * WantR;
  if (TraceMode)
    TS.ensureSized(P.Fast.size());

  auto flush = [&] {
    uint32_t Idx = uint32_t(J - SBase);
    if (TraceMode && SOrig)
      Idx = SOrig[Idx]; // Superblock cursor -> merged-stream pc.
    Pc = CodeAddrBit | Idx;
    uint64_t D = Active - LastSync;
    Res.TotalCycles += D;
    CyclesSinceIrq += D;
    ActiveSinceBoot = Active;
    Res.InstructionsExecuted = Insts;
    LastSync = Active;
  };
  auto reload = [&] {
    if (TraceMode && SOrig) {
      // Member code ran under us (bail, slow-path commit, exit): the
      // straight-line assumptions are gone — abandon the superblock and
      // resume on the merged stream at the flushed pc.
      ++St.Invalidations;
      SBase = Fast;
      SOrig = nullptr;
      CurSB = nullptr;
      CurLimit = Limit;
    }
    J = Fast + (Pc & ~CodeAddrBit);
    Active = ActiveSinceBoot;
    LastSync = Active;
    Insts = Res.InstructionsExecuted;
    WantR = Scr.Epoch << 1;
    WantW = WantR | 1u;
    RPat = 0x0001000100010001ull * WantR;
    FwdD = -1; // Member code may have rewritten any register.
  };

  /// Page-grain write tracking with the already-marked page as the
  /// fast case (one predictable load per store once warm).
  auto noteW = [&](uint32_t Addr, unsigned Size) WARIO_ALWAYS_INLINE {
    if (!TW)
      return;
    uint32_t P0 = Addr >> snapshot::PageShift;
    uint32_t P1 = (Addr + Size - 1) >> snapshot::PageShift;
    if (P0 == P1 && Scr.TouchedMark[P0] && (!Chain || SnapMark[P0]))
      return;
    noteWrite(Addr, Size);
  };

  /// Monitored load, replicating loadMem minus the failure paths.
  /// False = bail (out of bounds, or a checkpoint-range access that
  /// recordAccess would exempt — step() reproduces either exactly).
  auto fastLoad = [&](uint32_t Addr, unsigned Size, bool SignExtend,
                      uint32_t &V) WARIO_ALWAYS_INLINE -> bool {
    if (Addr > memmap::MemSize - Size || Addr - CkptBase < CkptEnd - CkptBase)
      return false;
    if (Size == 4) {
      // SWAR read-stamp: 4 bytes = 4 half-word stamps = one u64 compare.
      // Epoch bits (stamp & ~1) matching WantR on every byte means the
      // whole word was already touched this epoch — nothing to stamp.
      uint64_t S;
      std::memcpy(&S, Acc + Addr, 8);
      const uint64_t RP = RPat;
      if (((S ^ RP) & 0xFFFEFFFEFFFEFFFEull) != 0)
        restampRead(Acc + Addr, WantR);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
      std::memcpy(&V, Mem + Addr, 4);
#else
      V = uint32_t(Mem[Addr]) | uint32_t(Mem[Addr + 1]) << 8 |
          uint32_t(Mem[Addr + 2]) << 16 | uint32_t(Mem[Addr + 3]) << 24;
#endif
      return true;
    }
    for (unsigned K = 0; K != Size; ++K) {
      if ((Acc[Addr + K] & ~1u) != WantR)
        Acc[Addr + K] = uint16_t(WantR);
    }
    V = 0;
    for (unsigned K = 0; K != Size; ++K)
      V |= uint32_t(Mem[Addr + K]) << (8 * K);
    if (SignExtend && Size < 4) {
      uint32_t SignBit = 1u << (Size * 8 - 1);
      if (V & SignBit)
        V |= ~((SignBit << 1) - 1);
    }
    return true;
  };

  /// Monitored store, replicating storeMem minus the irregular paths.
  /// \p ActivePre is the storing *component's* pre-execution cycle (the
  /// StoreCycles stamp base). False = bail, with nothing mutated:
  /// OutPort / out of bounds / checkpoint range, or a WAR violation
  /// (step() redoes the counting, reporting, and fatal handling; the
  /// stamp state is untouched so recordAccess sees what it would have).
  auto fastStore = [&](uint32_t Addr, unsigned Size, uint32_t V,
                       uint64_t ActivePre) WARIO_ALWAYS_INLINE -> bool {
    if (Addr > memmap::MemSize - Size || Addr - CkptBase < CkptEnd - CkptBase)
      return false;
    if (Size == 4) {
      uint64_t S;
      std::memcpy(&S, Acc + Addr, 8);
      const uint64_t RP = RPat;
      const uint64_t X = S ^ RP;
      const uint64_t L = 0x0001000100010001ull;
      // All four bytes already written this epoch (the steady state of a
      // loop rewriting its slots): no violation possible, stamps already
      // final — nothing to check or store.
      if ((X ^ L) != 0) {
        // Any lane exactly == WantR (read-first this epoch) is a WAR
        // violation: zero-lane detect on the XORed stamps. Borrow
        // propagation can only misfire toward a false positive, and a
        // bail just hands the store to step() for the exact verdict.
        if (((X - L) & ~X & 0x8000800080008000ull) != 0)
          return false;
        const uint64_t WP = RP | L;
        std::memcpy(Acc + Addr, &WP, 8);
      }
    } else {
      for (unsigned K = 0; K != Size; ++K)
        if (Acc[Addr + K] == WantR)
          return false;
      for (unsigned K = 0; K != Size; ++K)
        Acc[Addr + K] = uint16_t(WantW);
    }
    if (Trace && (Res.StoreCycles.empty() ||
                  Res.StoreCycles.back() != ActivePre + 1))
      Res.StoreCycles.push_back(ActivePre + 1);
    noteW(Addr, Size);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    if (Size == 4)
      std::memcpy(Mem + Addr, &V, 4);
    else
#endif
      for (unsigned K = 0; K != Size; ++K)
        Mem[Addr + K] = uint8_t(V >> (8 * K));
    return true;
  };

  /// Superblock re-touch accesses (WB_LdrSlot / WB_StrSlot with the
  /// builder's elision flag set): the same word was accessed earlier on
  /// the straight-line path with no SP change or epoch bump between, so
  /// bounds are proven and the stamps are exactly what the SWAR check
  /// would leave — only the raw memory move (and, for stores, the event
  /// bookkeeping fastStore would do after its checks) remains.
  auto elidedLoad = [&](uint32_t Addr) WARIO_ALWAYS_INLINE -> uint32_t {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    uint32_t V;
    std::memcpy(&V, Mem + Addr, 4);
    return V;
#else
    return uint32_t(Mem[Addr]) | uint32_t(Mem[Addr + 1]) << 8 |
           uint32_t(Mem[Addr + 2]) << 16 | uint32_t(Mem[Addr + 3]) << 24;
#endif
  };
  auto elidedStore = [&](uint32_t Addr, uint32_t V,
                         uint64_t ActivePre) WARIO_ALWAYS_INLINE {
    if (Trace && (Res.StoreCycles.empty() ||
                  Res.StoreCycles.back() != ActivePre + 1))
      Res.StoreCycles.push_back(ActivePre + 1);
    noteW(Addr, 4);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    std::memcpy(Mem + Addr, &V, 4);
#else
    for (unsigned K = 0; K != 4; ++K)
      Mem[Addr + K] = uint8_t(V >> (8 * K));
#endif
  };
  // The next step() (or fused handler) makes the region stale exactly
  // like the interpreter's step() would; setting it up front keeps the
  // outer loop's region-fresh consumers (snapshot cadence, splice
  // matching) in lockstep even when this loop exits at the margin.
  RegionFresh = false;

#if WARIO_THREADED_GOTO
  // Dispatch table, indexed by FastInst::Kind. [0, 37): identity
  // groups in MOp declaration order; [37, 64): unreachable padding;
  // [64, FK_KindLimit): fused kinds in declaration order — the base
  // catalog, then the 9x9 Alu2 family, then the second-level pairs.
  static const void *const Tbl[] = {
      &&H_Op_MovImm, &&H_Op_MovGlobal, &&H_Op_Mov,
      &&H_Op_Add, &&H_Op_Sub, &&H_Op_Mul, &&H_Op_UDiv, &&H_Op_SDiv,
      &&H_Op_And, &&H_Op_Orr, &&H_Op_Eor, &&H_Op_Lsl, &&H_Op_Lsr,
      &&H_Op_Asr, &&H_Op_AddImm, &&H_Op_SetCond, &&H_Op_SelectR,
      &&H_Op_Ldr, &&H_Op_Str, &&H_Op_LdrSlot, &&H_Op_StrSlot,
      &&H_Op_FrameAddr, &&H_Op_CallPseudo, &&H_Op_ArgGet, &&H_Op_Bl,
      &&H_Op_B, &&H_Op_CBr, &&H_Op_Ret, &&H_Op_Push, &&H_Op_Pop,
      &&H_Op_PopLoads, &&H_Op_SpAdjust, &&H_Op_Checkpoint, &&H_Op_Out,
      &&H_Op_IntMask, &&H_Op_IntUnmask, &&H_Op_Nop,
      // Padding up to FK_FirstFused.
      &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad,
      &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad,
      &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad,
      &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad, &&H_Bad,
#define WARIO_TBL_X(NAME) &&H_FK_##NAME,
#define WARIO_TBL_A(FAM, OP) &&H_FK_##FAM##_##OP,
#define WARIO_TBL_A2(OP0, OP1) &&H_FK_Alu2_##OP0##_##OP1,
#define WARIO_TBL_P(NAME, K1, K2) &&H_FK_##NAME,
      WARIO_EMU_FUSED_KINDS(WARIO_TBL_X, WARIO_TBL_A)
      WARIO_EMU_ALU81(WARIO_TBL_A2)
      WARIO_EMU_PAIR_KINDS(WARIO_TBL_P)
#undef WARIO_TBL_X
#undef WARIO_TBL_A
#undef WARIO_TBL_A2
#undef WARIO_TBL_P
      // Trace-engine stubs (superblock code only).
      &&H_FK_TraceExit, &&H_FK_TraceFall, &&H_FK_TraceLoop, &&H_FK_TraceRet,
  };
  static_assert(sizeof(Tbl) / sizeof(Tbl[0]) == FK_KindLimit,
                "dispatch table out of sync with the kind numbering");
  static_assert(int(MOp::Nop) == 36, "identity block out of sync with MOp");

  DISPATCH();
#else
dispatch:
  if (Active >= CurLimit)
    goto out;
dispatch_direct:
  ++St.Dispatches;
  switch (J->Kind) {
#endif

  // --- Identity groups (one instruction; step()'s transition inlined) ------

  OP_CASE(MovImm) {
    WB_MovImm(0)
    Active += J->Aux; // Pre-decoded MovImm cycle cost (1 or 2).
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(Mov) {
    WB_Mov(0)
    Active += 1;
    ++Insts;
    ++J;
  }
  DISPATCH();

#define WARIO_H_ALUOP(_, OP)                                                   \
  OP_CASE(OP) {                                                                \
    WB_Alu(0, OP)                                                              \
    Active += 1;                                                               \
    ++Insts;                                                                   \
    ++J;                                                                       \
  }                                                                            \
  DISPATCH();
  WARIO_EMU_ALU9(WARIO_H_ALUOP, _)
#undef WARIO_H_ALUOP

  OP_CASE(UDiv)
  OP_CASE(SDiv) {
    uint32_t B = R[J->Src1];
    if (B == 0)
      goto bail; // Division by zero: step() raises the trap.
    uint32_t A = R[J->Src0];
    WB_SET(0, J->Kind == uint16_t(MOp::UDiv) ? A / B : evalSDiv(A, B));
    Active += 6;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(AddImm) {
    WB_SET(0, WB_SRC0(0) + J->A);
    Active += 1;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(SetCond) {
    WB_SetCond(0)
    Active += 2;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(SelectR) {
    WB_SET(0, R[J->Src0] != 0 ? R[J->Src1] : R[J->Aux]);
    Active += 2;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(Ldr) {
    WB_Ldr(0)
    Active += 2;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(Str) {
    WB_Str(0, 0)
    Active += 2;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(LdrSlot) {
    WB_LdrSlot(0)
    Active += 2;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(StrSlot) {
    WB_StrSlot(0, 0)
    Active += 2;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(FrameAddr) {
    WB_SET(0, R[SP] + J->A);
    Active += 1;
    ++Insts;
    ++J;
  }
  DISPATCH();

  // Control transfers retire counters first and move the cursor last
  // through WARIO_SETJ — the trace engine's edge bookkeeping needs the
  // branching pc to still be in J when the target is taken.
  OP_CASE(Bl) {
    uint32_t T = J->T0;
    if (T == BadTarget)
      goto bail; // Unlinked call: step() reports it.
    R[LR] = CodeAddrBit | J->A; // Pre-encoded return link (own pc + 1).
    FwdD = -1;                  // lr write bypasses the mirror.
    Active += 1 + cycles::PipelineRefill;
    ++Insts;
    WARIO_SETJ(T);
  }
  DISPATCH();

  OP_CASE(B) {
    uint32_t T = J->T0;
    Active += 1 + cycles::PipelineRefill;
    ++Insts;
    WARIO_SETJ(T);
  }
  DISPATCH();

  OP_CASE(CBr) {
    uint32_t T = R[J->Src0] != 0 ? J->T0 : J->A;
    Active += 1 + cycles::PipelineRefill;
    ++Insts;
    WARIO_SETJ(T);
  }
  DISPATCH();

  OP_CASE(Ret) {
    uint32_t L = R[LR];
    if (L == LrSentinel || !(L & CodeAddrBit))
      goto bail; // Program end (or corrupt lr): step() finishes it.
    Active += 1 + cycles::PipelineRefill;
    ++Insts;
    WARIO_SETJ(L & ~CodeAddrBit);
  }
  DISPATCH();

  // Push/pop stay on the access fast paths (the member round trip is
  // ~1/8 of call-heavy workloads). Any irregularity — WAR violation,
  // out of bounds — bails so step() redoes the *whole* instruction
  // through the member paths: partial fast-path effects are idempotent
  // (same bytes, blanket stamps, deduped StoreCycles), so the redo is
  // bit-exact including the failure handling.
  OP_CASE(Push) {
    unsigned N = unsigned(std::popcount(unsigned(J->Aux)));
    uint32_t Base = R[SP] - 4 * N;
    unsigned Idx = 0;
    for (int Rn = 0; Rn != NumPRegs; ++Rn)
      if (J->Aux & (1u << Rn))
        if (!fastStore(Base + 4 * Idx++, 4, R[Rn], Active))
          goto bail;
    R[SP] = Base;
    FwdD = -1; // Direct sp write bypasses the mirror.
    Active += 1 + N;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(Pop)
  OP_CASE(PopLoads) {
    unsigned N = unsigned(std::popcount(unsigned(J->Aux)));
    unsigned Idx = 0;
    for (int Rn = 0; Rn != NumPRegs; ++Rn)
      if (J->Aux & (1u << Rn)) {
        uint32_t V;
        if (!fastLoad(R[SP] + 4 * Idx++, 4, false, V))
          goto bail;
        R[Rn] = V;
      }
    if (J->Kind == uint16_t(MOp::Pop))
      R[SP] += 4 * N;
    FwdD = -1; // Popped registers bypass the mirror.
    Active += 1 + N;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(SpAdjust) {
    R[SP] += J->A;
    FwdD = -1; // Direct sp write bypasses the mirror.
    Active += 1;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(Checkpoint) {
    CheckpointCause C = CheckpointCause(J->Aux);
    ++Insts;
    ++J; // The committed resume point is *after* this instruction.
    if (FastCommit) {
      // Inline commit in lockstep with commitCheckpoint(): the member
      // routine plus its flush/reload round trip costs ~1/5 of
      // call-heavy workloads (measured on AES). Only reachable when
      // nobody observes the intermediate state (no recorder, splicer,
      // region-size or event collection), so the flush can wait.
      uint32_t AW;
      std::memcpy(&AW, Mem + CkptActiveWord, 4);
      const uint32_t Buf = (AW == 1) ? CkptBuf1 : CkptBuf0;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
      std::memcpy(Mem + Buf, R, 15 * 4);
#else
      for (int Ri = 0; Ri != 15; ++Ri)
        for (unsigned B = 0; B != 4; ++B)
          Mem[Buf + 4 * unsigned(Ri) + B] = uint8_t(R[Ri] >> (8 * B));
#endif
      uint32_t RIdx = uint32_t(J - SBase);
      if (TraceMode && SOrig)
        RIdx = SOrig[RIdx]; // Resume point is a merged-stream pc.
      const uint32_t RPc = CodeAddrBit | RIdx;
      const uint32_t NewAW = (AW == 1) ? 2u : 1u;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
      std::memcpy(Mem + Buf + 60, &RPc, 4);
      std::memcpy(Mem + CkptActiveWord, &NewAW, 4);
#else
      for (unsigned B = 0; B != 4; ++B) {
        Mem[Buf + 60 + B] = uint8_t(RPc >> (8 * B));
        Mem[CkptActiveWord + B] = uint8_t(NewAW >> (8 * B));
      }
#endif
      noteW(Buf, 64);            // Same pages rawStore would dirty.
      noteW(CkptActiveWord, 4);
      // flush()'s delta plus spend(cycles::Checkpoint), folded.
      const uint64_t D = Active - LastSync + cycles::Checkpoint;
      Active += cycles::Checkpoint;
      Res.TotalCycles += D;
      CyclesSinceIrq += D;
      LastSync = Active;
      ++Res.CheckpointsExecuted;
      switch (C) {
      case CheckpointCause::MiddleEndWar: ++Res.Causes.MiddleEndWar; break;
      case CheckpointCause::BackendSpill: ++Res.Causes.BackendSpill; break;
      case CheckpointCause::FunctionEntry: ++Res.Causes.FunctionEntry; break;
      case CheckpointCause::FunctionExit: ++Res.Causes.FunctionExit; break;
      }
      RegionStartCycles = Res.TotalCycles;
      // clearFirstAccess() inline, plus the stamp-key refresh reload()
      // would have done.
      if (++Scr.Epoch >= 0x8000u) {
        std::fill(Scr.Access.begin(), Scr.Access.end(), uint16_t(0));
        Scr.Epoch = 1;
      }
      WantR = Scr.Epoch << 1;
      WantW = WantR | 1u;
      RPat = 0x0001000100010001ull * WantR;
      ProgressThisBoot = true;
      // RegionFresh stays false: unobserved under the FastCommit gate,
      // and the next dispatch makes it stale anyway.
    } else {
      flush();
      commitCheckpoint(C);
      reload(); // Commit cycles + the fresh region epoch.
      if (ExitOnCommit)
        goto out; // Snapshot cadence / splice matching run out there.
      // Unobserved between here and the next instruction (no recorder,
      // no splicer), and the next dispatch makes it stale anyway.
      RegionFresh = false;
    }
  }
  DISPATCH();

  OP_CASE(Out) {
    Res.Output.push_back(int32_t(R[J->Src0]));
    Active += 2;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(IntMask) {
    // Masking can only *delay* the interrupt bound Limit already
    // accounts for; keeping the tighter limit is safe.
    Primask = true;
    Active += 1;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(IntUnmask) {
    Primask = false;
    Active += 1;
    ++Insts;
    ++J;
    // Unmasking can make an interrupt deliverable at the very next
    // boundary — beyond what Limit accounted for. Hand back.
    if (Opts.InterruptPeriod)
      goto out;
  }
  DISPATCH();

  OP_CASE(Nop) {
    Active += 1;
    ++Insts;
    ++J;
  }
  DISPATCH();

  OP_CASE(MovGlobal)
  OP_CASE(CallPseudo)
  OP_CASE(ArgGet)
  goto bail; // Unlinked/unexpanded: step() raises the proper error.

  // --- Fused groups (components retire strictly in order) ------------------

#define WARIO_H_MovImm_Alu(_, OP)                                              \
  FK_CASE(MovImm_Alu_##OP) {                                                   \
    WB_MovImm(0)                                                               \
    WB_Alu(1, OP)                                                              \
    WARIO_RETIRE(2);                                                           \
  }                                                                            \
  DISPATCH();
  WARIO_EMU_ALU9(WARIO_H_MovImm_Alu, _)
#undef WARIO_H_MovImm_Alu

#define WARIO_H_Alu_Mov(_, OP)                                                 \
  FK_CASE(Alu_Mov_##OP) {                                                      \
    WB_Alu(0, OP)                                                              \
    WB_Mov(1)                                                                  \
    WARIO_RETIRE(2);                                                           \
  }                                                                            \
  DISPATCH();
  WARIO_EMU_ALU9(WARIO_H_Alu_Mov, _)
#undef WARIO_H_Alu_Mov

#define WARIO_H_Alu_MovImm(_, OP)                                              \
  FK_CASE(Alu_MovImm_##OP) {                                                   \
    WB_Alu(0, OP)                                                              \
    WB_MovImm(1)                                                               \
    WARIO_RETIRE(2);                                                           \
  }                                                                            \
  DISPATCH();
  WARIO_EMU_ALU9(WARIO_H_Alu_MovImm, _)
#undef WARIO_H_Alu_MovImm

#define WARIO_H_LdrSlot_Alu(_, OP)                                             \
  FK_CASE(LdrSlot_Alu_##OP) {                                                  \
    WB_LdrSlot(0)                                                              \
    WB_Alu(1, OP)                                                              \
    WARIO_RETIRE(2);                                                           \
  }                                                                            \
  DISPATCH();
  WARIO_EMU_ALU9(WARIO_H_LdrSlot_Alu, _)
#undef WARIO_H_LdrSlot_Alu

#define WARIO_H_Alu_StrSlot(_, OP)                                             \
  FK_CASE(Alu_StrSlot_##OP) {                                                  \
    WB_Alu(0, OP)                                                              \
    WB_StrSlot(1, 1)                                                           \
    WARIO_RETIRE(2);                                                           \
  }                                                                            \
  DISPATCH();
  WARIO_EMU_ALU9(WARIO_H_Alu_StrSlot, _)
#undef WARIO_H_Alu_StrSlot

#define WARIO_H_LdrSlot_Alu_StrSlot(_, OP)                                     \
  FK_CASE(LdrSlot_Alu_StrSlot_##OP) {                                          \
    WB_LdrSlot(0)                                                              \
    WB_Alu(1, OP)                                                              \
    WB_StrSlot(2, 3)                                                           \
    WARIO_RETIRE(3);                                                           \
  }                                                                            \
  DISPATCH();
  WARIO_EMU_ALU9(WARIO_H_LdrSlot_Alu_StrSlot, _)
#undef WARIO_H_LdrSlot_Alu_StrSlot

#define WARIO_H_MovImm_LdrSlot_Alu(_, OP)                                      \
  FK_CASE(MovImm_LdrSlot_Alu_##OP) {                                           \
    WB_MovImm(0)                                                               \
    WB_LdrSlot(1)                                                              \
    WB_Alu(2, OP)                                                              \
    WARIO_RETIRE(3);                                                           \
  }                                                                            \
  DISPATCH();
  WARIO_EMU_ALU9(WARIO_H_MovImm_LdrSlot_Alu, _)
#undef WARIO_H_MovImm_LdrSlot_Alu

  FK_CASE(MovImm_MovImm) {
    WB_MovImm(0)
    WB_MovImm(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(MovImm_Mov) {
    WB_MovImm(0)
    WB_Mov(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(Mov_MovImm) {
    WB_Mov(0)
    WB_MovImm(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(Mov_Mov) {
    WB_Mov(0)
    WB_Mov(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(MovImm_LdrSlot) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(LdrSlot_Mov) {
    WB_LdrSlot(0)
    WB_Mov(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(Mov_LdrSlot) {
    WB_Mov(0)
    WB_LdrSlot(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(LdrSlot_LdrSlot) {
    WB_LdrSlot(0)
    WB_LdrSlot(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(StrSlot_MovImm) {
    WB_StrSlot(0, 0)
    WB_MovImm(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(StrSlot_Mov) {
    WB_StrSlot(0, 0)
    WB_Mov(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(Mov_StrSlot) {
    WB_Mov(0)
    WB_StrSlot(1, 1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(StrSlot_LdrSlot) {
    WB_StrSlot(0, 0)
    WB_LdrSlot(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(LdrSlot_Str) {
    WB_LdrSlot(0)
    WB_Str(1, 2)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(Str_LdrSlot) {
    WB_Str(0, 0)
    WB_LdrSlot(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(Mov_Ldr) {
    WB_Mov(0)
    WB_Ldr(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(Mov_Str) {
    WB_Mov(0)
    WB_Str(1, 1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

#define WARIO_H_AA(NAME, OP0, OP1)                                             \
  FK_CASE(NAME) {                                                              \
    WB_Alu(0, OP0)                                                             \
    WB_Alu(1, OP1)                                                             \
    WARIO_RETIRE(2);                                                           \
  }                                                                            \
  DISPATCH();
  WARIO_H_AA(Lsl_Lsr, Lsl, Lsr)
  WARIO_H_AA(Lsr_Lsl, Lsr, Lsl)
  WARIO_H_AA(Lsl_Add, Lsl, Add)
  WARIO_H_AA(Mul_Add, Mul, Add)
  WARIO_H_AA(Eor_Lsl, Eor, Lsl)
  WARIO_H_AA(Add_Add, Add, Add)
#undef WARIO_H_AA

  FK_CASE(SetCond_CBr) {
    WB_SetCond(0)
    WARIO_RETIRE_BR(2);
  }
  DISPATCH();

  FK_CASE(MovImm_SetCond_CBr) {
    WB_MovImm(0)
    WB_SetCond(1)
    WARIO_RETIRE_BR(3);
  }
  DISPATCH();

  FK_CASE(Lsl_Lsr_StrSlot) {
    WB_Alu(0, Lsl)
    WB_Alu(1, Lsr)
    WB_StrSlot(2, 2)
    WARIO_RETIRE(3);
  }
  DISPATCH();

  FK_CASE(Add_Mov_Ldr) {
    WB_Alu(0, Add)
    WB_Mov(1)
    WB_Ldr(2)
    WARIO_RETIRE(3);
  }
  DISPATCH();

  // --- Second-level concatenations (9x9 ALU family + pair catalog) ---------

#define WARIO_H_A2(OP0, OP1)                                                   \
  FK_CASE(Alu2_##OP0##_##OP1) {                                                \
    WB_Alu(0, OP0)                                                             \
    WB_Alu(1, OP1)                                                             \
    WARIO_RETIRE(2);                                                           \
  }                                                                            \
  DISPATCH();
  WARIO_EMU_ALU81(WARIO_H_A2)
#undef WARIO_H_A2

  FK_CASE(Str_LdrSlot_Str_LdrSlot) {
    WB_Str(0, 0)
    WB_LdrSlot(1)
    WB_Str(2, 4)
    WB_LdrSlot(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Mov_CBr) {
    WB_Mov(0)
    WARIO_RETIRE_BR(2);
  }
  DISPATCH();

  FK_CASE(SetCond_Mov_CBr) {
    WB_SetCond(0)
    WB_Mov(1)
    WARIO_RETIRE_BR(3);
  }
  DISPATCH();

  FK_CASE(LdrSlot_SetCond_CBr) {
    WB_LdrSlot(0)
    WB_SetCond(1)
    WARIO_RETIRE_BR(3);
  }
  DISPATCH();

  FK_CASE(Add_Mov_Ldr_Eor_MovImm) {
    WB_Alu(0, Add)
    WB_Mov(1)
    WB_Ldr(2)
    WB_Alu(3, Eor)
    WB_MovImm(4)
    WARIO_RETIRE(5);
  }
  DISPATCH();

  FK_CASE(Add_Mov_Ldr_MovImm_Lsr) {
    WB_Alu(0, Add)
    WB_Mov(1)
    WB_Ldr(2)
    WB_MovImm(3)
    WB_Alu(4, Lsr)
    WARIO_RETIRE(5);
  }
  DISPATCH();

  FK_CASE(Eor_MovImm_And_MovImm) {
    WB_Alu(0, Eor)
    WB_MovImm(1)
    WB_Alu(2, And)
    WB_MovImm(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(And_MovImm_MovImm_Lsl) {
    WB_Alu(0, And)
    WB_MovImm(1)
    WB_MovImm(2)
    WB_Alu(3, Lsl)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(MovImm_Lsl_Add_Mov_Ldr) {
    WB_MovImm(0)
    WB_Alu(1, Lsl)
    WB_Alu(2, Add)
    WB_Mov(3)
    WB_Ldr(4)
    WARIO_RETIRE(5);
  }
  DISPATCH();

  FK_CASE(MovImm_Add_Mov_MovImm) {
    WB_MovImm(0)
    WB_Alu(1, Add)
    WB_Mov(2)
    WB_MovImm(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Str_MovImm_Add) {
    WB_Str(0, 0)
    WB_MovImm(1)
    WB_Alu(2, Add)
    WARIO_RETIRE(3);
  }
  DISPATCH();

  FK_CASE(MovImm_Add_LdrSlot) {
    WB_MovImm(0)
    WB_Alu(1, Add)
    WB_LdrSlot(2)
    WARIO_RETIRE(3);
  }
  DISPATCH();

  FK_CASE(Str_Str) {
    WB_Str(0, 0)
    WB_Str(1, 2)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  FK_CASE(MovImm_LdrSlot_Lsr_LdrSlot_Eor_StrSlot) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WB_Alu(2, Lsr)
    WB_LdrSlot(3)
    WB_Alu(4, Eor)
    WB_StrSlot(5, J[0].Aux + 6)
    WARIO_RETIRE(6);
  }
  DISPATCH();

  FK_CASE(MovImm_LdrSlot_Lsl_LdrSlot_Eor_StrSlot) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WB_Alu(2, Lsl)
    WB_LdrSlot(3)
    WB_Alu(4, Eor)
    WB_StrSlot(5, J[0].Aux + 6)
    WARIO_RETIRE(6);
  }
  DISPATCH();

  FK_CASE(LdrSlot_Eor_StrSlot_MovImm_LdrSlot_Lsl) {
    WB_LdrSlot(0)
    WB_Alu(1, Eor)
    WB_StrSlot(2, 3)
    WB_MovImm(3)
    WB_LdrSlot(4)
    WB_Alu(5, Lsl)
    WARIO_RETIRE(6);
  }
  DISPATCH();

  FK_CASE(LdrSlot_Mov_LdrSlot_Mov) {
    WB_LdrSlot(0)
    WB_Mov(1)
    WB_LdrSlot(2)
    WB_Mov(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(StrSlot_Mov_StrSlot_Mov) {
    WB_StrSlot(0, 0)
    WB_Mov(1)
    WB_StrSlot(2, 3)
    WB_Mov(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Lsl_MovImm_Lsr) {
    WB_Alu(0, Lsl)
    WB_MovImm(1)
    WB_Alu(2, Lsr)
    WARIO_RETIRE(3);
  }
  DISPATCH();

  FK_CASE(Lsl_Add_Mov_Ldr) {
    WB_Alu(0, Lsl)
    WB_Alu(1, Add)
    WB_Mov(2)
    WB_Ldr(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Mov_Ldr_Eor_MovImm) {
    WB_Mov(0)
    WB_Ldr(1)
    WB_Alu(2, Eor)
    WB_MovImm(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Sub_MovImm_Lsl_Add) {
    WB_Alu(0, Sub)
    WB_MovImm(1)
    WB_Alu(2, Lsl)
    WB_Alu(3, Add)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Eor_MovImm_Sub_MovImm) {
    WB_Alu(0, Eor)
    WB_MovImm(1)
    WB_Alu(2, Sub)
    WB_MovImm(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Mov_Mov_Mov_Mov) {
    WB_Mov(0)
    WB_Mov(1)
    WB_Mov(2)
    WB_Mov(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Add_MovImm_MovImm_Lsl) {
    WB_Alu(0, Add)
    WB_MovImm(1)
    WB_MovImm(2)
    WB_Alu(3, Lsl)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(MovImm_Sub_MovImm_Lsl) {
    WB_MovImm(0)
    WB_Alu(1, Sub)
    WB_MovImm(2)
    WB_Alu(3, Lsl)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(LdrSlot_LdrSlot_Str_LdrSlot) {
    WB_LdrSlot(0)
    WB_LdrSlot(1)
    WB_Str(2, 4)
    WB_LdrSlot(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Str_LdrSlot_LdrSlot_Str) {
    WB_Str(0, 0)
    WB_LdrSlot(1)
    WB_LdrSlot(2)
    WB_Str(3, 6)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Eor_Lsl_Lsr_Lsl) {
    WB_Alu(0, Eor)
    WB_Alu(1, Lsl)
    WB_Alu(2, Lsr)
    WB_Alu(3, Lsl)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(LdrSlot_Str_LdrSlot_LdrSlot) {
    WB_LdrSlot(0)
    WB_Str(1, 2)
    WB_LdrSlot(2)
    WB_LdrSlot(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Add_MovImm_SetCond_CBr) {
    WB_Alu(0, Add)
    WB_MovImm(1)
    WB_SetCond(2)
    WARIO_RETIRE_BR(4);
  }
  DISPATCH();

  FK_CASE(Lsr_Lsl_Lsr_StrSlot) {
    WB_Alu(0, Lsr)
    WB_Alu(1, Lsl)
    WB_Alu(2, Lsr)
    WB_StrSlot(3, 3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(LdrSlot_Str_LdrSlot_Str) {
    WB_LdrSlot(0)
    WB_Str(1, 2)
    WB_LdrSlot(2)
    WB_Str(3, 6)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(MovImm_LdrSlot_Lsr_MovImm_Mul) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WB_Alu(2, Lsr)
    WB_MovImm(3)
    WB_Alu(4, Mul)
    WARIO_RETIRE(5);
  }
  DISPATCH();

  FK_CASE(Lsr_StrSlot_MovImm_LdrSlot_Lsl) {
    WB_Alu(0, Lsr)
    WB_StrSlot(1, 1)
    WB_MovImm(2)
    WB_LdrSlot(3)
    WB_Alu(4, Lsl)
    WARIO_RETIRE(5);
  }
  DISPATCH();

  FK_CASE(MovImm_LdrSlot_Lsl_MovImm_LdrSlot_Lsr) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WB_Alu(2, Lsl)
    WB_MovImm(3)
    WB_LdrSlot(4)
    WB_Alu(5, Lsr)
    WARIO_RETIRE(6);
  }
  DISPATCH();

  FK_CASE(MovImm_Mul_Eor_Lsl) {
    WB_MovImm(0)
    WB_Alu(1, Mul)
    WB_Alu(2, Eor)
    WB_Alu(3, Lsl)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(MovImm_LdrSlot_And_MovImm_SetCond_CBr) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WB_Alu(2, And)
    WB_MovImm(3)
    WB_SetCond(4)
    WARIO_RETIRE_BR(6);
  }
  DISPATCH();

  FK_CASE(Lsl_Lsr_StrSlot_Add_MovImm) {
    WB_Alu(0, Lsl)
    WB_Alu(1, Lsr)
    WB_StrSlot(2, 2)
    WB_Alu(3, Add)
    WB_MovImm(4)
    WARIO_RETIRE(5);
  }
  DISPATCH();

  FK_CASE(Lsr_StrSlot_LdrSlot_Lsr) {
    WB_Alu(0, Lsr)
    WB_StrSlot(1, 1)
    WB_LdrSlot(2)
    WB_Alu(3, Lsr)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(LdrSlot_Lsr_Lsl_Lsr_StrSlot) {
    WB_LdrSlot(0)
    WB_Alu(1, Lsr)
    WB_Alu(2, Lsl)
    WB_Alu(3, Lsr)
    WB_StrSlot(4, 5)
    WARIO_RETIRE(5);
  }
  DISPATCH();

  FK_CASE(LdrSlot_Ldr) {
    WB_LdrSlot(0)
    WB_Ldr(1)
    WARIO_RETIRE(2);
  }
  DISPATCH();

  // --- Round-2 chain superinstructions: whole loop bodies ------------------

  FK_CASE(CrcA1) {
    WB_Alu(0, Add)
    WB_Mov(1)
    WB_Ldr(2)
    WB_Alu(3, Eor)
    WB_MovImm(4)
    WB_Alu(5, And)
    WB_MovImm(6)
    WB_MovImm(7)
    WB_Alu(8, Lsl)
    WARIO_RETIRE(9);
  }
  DISPATCH();

  FK_CASE(CrcA2) {
    WB_Alu(0, Add)
    WB_Mov(1)
    WB_Ldr(2)
    WB_Alu(3, Eor)
    WB_MovImm(4)
    WB_Alu(5, And)
    WB_MovImm(6)
    WB_MovImm(7)
    WB_Alu(8, Lsl)
    WB_Alu(9, Add)
    WB_Mov(10)
    WB_Ldr(11)
    WB_MovImm(12)
    WB_Alu(13, Lsr)
    WARIO_RETIRE(14);
  }
  DISPATCH();

  FK_CASE(CrcA3) {
    WB_Alu(0, Add)
    WB_Mov(1)
    WB_Ldr(2)
    WB_Alu(3, Eor)
    WB_MovImm(4)
    WB_Alu(5, And)
    WB_MovImm(6)
    WB_MovImm(7)
    WB_Alu(8, Lsl)
    WB_Alu(9, Add)
    WB_Mov(10)
    WB_Ldr(11)
    WB_MovImm(12)
    WB_Alu(13, Lsr)
    WB_Alu(14, Eor)
    WB_MovImm(15)
    WARIO_RETIRE(16);
  }
  DISPATCH();

  FK_CASE(CrcA4) {
    WB_Alu(0, Add)
    WB_Mov(1)
    WB_Ldr(2)
    WB_Alu(3, Eor)
    WB_MovImm(4)
    WB_Alu(5, And)
    WB_MovImm(6)
    WB_MovImm(7)
    WB_Alu(8, Lsl)
    WB_Alu(9, Add)
    WB_Mov(10)
    WB_Ldr(11)
    WB_MovImm(12)
    WB_Alu(13, Lsr)
    WB_Alu(14, Eor)
    WB_MovImm(15)
    WB_Alu(16, Add)
    WARIO_RETIRE(17);
  }
  DISPATCH();

  FK_CASE(Add_SetCond_Mov_CBr) {
    WB_Alu(0, Add)
    WB_SetCond(1)
    WB_Mov(2)
    WARIO_RETIRE_BR(4);
  }
  DISPATCH();

  FK_CASE(StrLdr2) {
    WB_Str(0, 0)
    WB_LdrSlot(1)
    WB_Str(2, 4)
    WB_LdrSlot(3)
    WB_Str(4, 8)
    WB_LdrSlot(5)
    WB_Str(6, 12)
    WB_LdrSlot(7)
    WARIO_RETIRE(8);
  }
  DISPATCH();

  FK_CASE(CrcB1) {
    WB_MovImm(0)
    WB_Alu(1, Add)
    WB_Mov(2)
    WB_MovImm(3)
    WB_LdrSlot(4)
    WB_Alu(5, Lsl)
    WARIO_RETIRE(6);
  }
  DISPATCH();

  FK_CASE(CrcB2) {
    WB_MovImm(0)
    WB_Alu(1, Add)
    WB_Mov(2)
    WB_MovImm(3)
    WB_LdrSlot(4)
    WB_Alu(5, Lsl)
    WB_LdrSlot(6)
    WB_Alu(7, Eor)
    WB_StrSlot(8, J[0].Aux + J[3].Aux + 8)
    WARIO_RETIRE(9);
  }
  DISPATCH();

  FK_CASE(CrcB3) {
    WB_MovImm(0)
    WB_Alu(1, Add)
    WB_Mov(2)
    WB_MovImm(3)
    WB_LdrSlot(4)
    WB_Alu(5, Lsl)
    WB_LdrSlot(6)
    WB_Alu(7, Eor)
    WB_StrSlot(8, J[0].Aux + J[3].Aux + 8)
    WB_MovImm(9)
    WB_LdrSlot(10)
    WB_Alu(11, Lsr)
    WB_LdrSlot(12)
    WB_Alu(13, Eor)
    WB_StrSlot(14, J[0].Aux + J[3].Aux + J[9].Aux + 16)
    WARIO_RETIRE(15);
  }
  DISPATCH();

  FK_CASE(CrcC1) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WB_Alu(2, Lsl)
    WB_LdrSlot(3)
    WB_Alu(4, Eor)
    WB_StrSlot(5, J[0].Aux + 6)
    WB_LdrSlot(6)
    WB_Alu(7, Lsr)
    WARIO_RETIRE(8);
  }
  DISPATCH();

  FK_CASE(CrcC2) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WB_Alu(2, Lsl)
    WB_LdrSlot(3)
    WB_Alu(4, Eor)
    WB_StrSlot(5, J[0].Aux + 6)
    WB_LdrSlot(6)
    WB_Alu(7, Lsr)
    WB_MovImm(8)
    WB_Alu(9, Lsl)
    WARIO_RETIRE(10);
  }
  DISPATCH();

  FK_CASE(CrcC3) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WB_Alu(2, Lsl)
    WB_LdrSlot(3)
    WB_Alu(4, Eor)
    WB_StrSlot(5, J[0].Aux + 6)
    WB_LdrSlot(6)
    WB_Alu(7, Lsr)
    WB_MovImm(8)
    WB_Alu(9, Lsl)
    WB_Alu(10, Lsr)
    WB_Alu(11, Lsl)
    WARIO_RETIRE(12);
  }
  DISPATCH();

  FK_CASE(CrcC4) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WB_Alu(2, Lsl)
    WB_LdrSlot(3)
    WB_Alu(4, Eor)
    WB_StrSlot(5, J[0].Aux + 6)
    WB_LdrSlot(6)
    WB_Alu(7, Lsr)
    WB_MovImm(8)
    WB_Alu(9, Lsl)
    WB_Alu(10, Lsr)
    WB_Alu(11, Lsl)
    WB_Alu(12, Lsr)
    WARIO_RETIRE(13);
  }
  DISPATCH();

  FK_CASE(CrcC5) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WB_Alu(2, Lsl)
    WB_LdrSlot(3)
    WB_Alu(4, Eor)
    WB_StrSlot(5, J[0].Aux + 6)
    WB_LdrSlot(6)
    WB_Alu(7, Lsr)
    WB_MovImm(8)
    WB_Alu(9, Lsl)
    WB_Alu(10, Lsr)
    WB_Alu(11, Lsl)
    WB_Alu(12, Lsr)
    WB_Str(13, J[0].Aux + J[8].Aux + 15)
    WB_MovImm(14)
    WB_Alu(15, Add)
    WARIO_RETIRE(16);
  }
  DISPATCH();

  FK_CASE(Str_MovImm_Add_LdrSlot_SetCond_CBr) {
    WB_Str(0, 0)
    WB_MovImm(1)
    WB_Alu(2, Add)
    WB_LdrSlot(3)
    WB_SetCond(4)
    WARIO_RETIRE_BR(6);
  }
  DISPATCH();

  FK_CASE(Lsl_Lsr_Lsl_Lsr) {
    WB_Alu(0, Lsl)
    WB_Alu(1, Lsr)
    WB_Alu(2, Lsl)
    WB_Alu(3, Lsr)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Lsl_Lsr_Str_MovImm_Add) {
    WB_Alu(0, Lsl)
    WB_Alu(1, Lsr)
    WB_Str(2, 2)
    WB_MovImm(3)
    WB_Alu(4, Add)
    WARIO_RETIRE(5);
  }
  DISPATCH();

  FK_CASE(Lsr_MovImm_Lsl_Lsr) {
    WB_Alu(0, Lsr)
    WB_MovImm(1)
    WB_Alu(2, Lsl)
    WB_Alu(3, Lsr)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(ShaA1) {
    WB_Alu(0, Sub)
    WB_MovImm(1)
    WB_Alu(2, Lsl)
    WB_Alu(3, Add)
    WB_Mov(4)
    WB_Ldr(5)
    WB_Alu(6, Eor)
    WB_MovImm(7)
    WARIO_RETIRE(8);
  }
  DISPATCH();

  FK_CASE(Mov_Mov_Mov_Mov_B) {
    WB_Mov(0)
    WB_Mov(1)
    WB_Mov(2)
    WB_Mov(3)
    WARIO_RETIRE_B(5);
  }
  DISPATCH();

  FK_CASE(Mov_MovImm_SetCond_CBr) {
    WB_Mov(0)
    WB_MovImm(1)
    WB_SetCond(2)
    WARIO_RETIRE_BR(4);
  }
  DISPATCH();

  FK_CASE(StrSlot_B) {
    WB_StrSlot(0, 0)
    WARIO_RETIRE_B(2);
  }
  DISPATCH();

  FK_CASE(LdrMov4x2) {
    WB_LdrSlot(0)
    WB_Mov(1)
    WB_LdrSlot(2)
    WB_Mov(3)
    WB_LdrSlot(4)
    WB_Mov(5)
    WB_LdrSlot(6)
    WB_Mov(7)
    WARIO_RETIRE(8);
  }
  DISPATCH();

  FK_CASE(LdrSlot_Mov_StrSlot_LdrSlot) {
    WB_LdrSlot(0)
    WB_Mov(1)
    WB_StrSlot(2, 3)
    WB_LdrSlot(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(MovImm_Mov_B) {
    WB_MovImm(0)
    WB_Mov(1)
    WARIO_RETIRE_B(3);
  }
  DISPATCH();

  FK_CASE(ShaB1) {
    WB_Alu(0, Add)
    WB_MovImm(1)
    WB_MovImm(2)
    WB_Alu(3, Lsl)
    WB_Alu(4, Add)
    WB_Mov(5)
    WB_Ldr(6)
    WARIO_RETIRE(7);
  }
  DISPATCH();

  FK_CASE(ShaB2) {
    WB_Alu(0, Add)
    WB_MovImm(1)
    WB_MovImm(2)
    WB_Alu(3, Lsl)
    WB_Alu(4, Add)
    WB_Mov(5)
    WB_Ldr(6)
    WB_Alu(7, Add)
    WB_MovImm(8)
    WARIO_RETIRE(9);
  }
  DISPATCH();

  FK_CASE(Lsl_MovImm_Lsr_Orr_MovImm) {
    WB_Alu(0, Lsl)
    WB_MovImm(1)
    WB_Alu(2, Lsr)
    WB_Alu(3, Orr)
    WB_MovImm(4)
    WARIO_RETIRE(5);
  }
  DISPATCH();

  FK_CASE(StrMov4x2) {
    WB_StrSlot(0, 0)
    WB_Mov(1)
    WB_StrSlot(2, 3)
    WB_Mov(3)
    WB_StrSlot(4, 6)
    WB_Mov(5)
    WB_StrSlot(6, 9)
    WB_Mov(7)
    WARIO_RETIRE(8);
  }
  DISPATCH();

  FK_CASE(StrMov4_StrMov) {
    WB_StrSlot(0, 0)
    WB_Mov(1)
    WB_StrSlot(2, 3)
    WB_Mov(3)
    WB_StrSlot(4, 6)
    WB_Mov(5)
    WARIO_RETIRE(6);
  }
  DISPATCH();

  FK_CASE(StrSlot_Mov_StrSlot) {
    WB_StrSlot(0, 0)
    WB_Mov(1)
    WB_StrSlot(2, 3)
    WARIO_RETIRE(3);
  }
  DISPATCH();

  FK_CASE(Orr_Add_LdrSlot_Add) {
    WB_Alu(0, Orr)
    WB_Alu(1, Add)
    WB_LdrSlot(2)
    WB_Alu(3, Add)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Mov_Mov_MovImm_Lsl) {
    WB_Mov(0)
    WB_Mov(1)
    WB_MovImm(2)
    WB_Alu(3, Lsl)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(AesA1) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WB_Alu(2, Lsl)
    WB_Alu(3, Lsr)
    WB_StrSlot(4, J[0].Aux + 4)
    WB_MovImm(5)
    WB_LdrSlot(6)
    WB_Alu(7, Lsl)
    WARIO_RETIRE(8);
  }
  DISPATCH();

  FK_CASE(AesA2) {
    WB_MovImm(0)
    WB_LdrSlot(1)
    WB_Alu(2, Lsl)
    WB_Alu(3, Lsr)
    WB_StrSlot(4, J[0].Aux + 4)
    WB_MovImm(5)
    WB_LdrSlot(6)
    WB_Alu(7, Lsl)
    WB_MovImm(8)
    WB_LdrSlot(9)
    WB_Alu(10, Lsr)
    WB_MovImm(11)
    WB_Alu(12, Mul)
    WARIO_RETIRE(13);
  }
  DISPATCH();

  FK_CASE(AesB1) {
    WB_Alu(0, Eor)
    WB_Alu(1, Lsl)
    WB_Alu(2, Lsr)
    WB_Alu(3, Lsl)
    WB_Alu(4, Lsr)
    WB_StrSlot(5, 5)
    WB_LdrSlot(6)
    WB_Alu(7, Lsr)
    WARIO_RETIRE(8);
  }
  DISPATCH();

  FK_CASE(AesC1) {
    WB_Alu(0, Lsl)
    WB_Alu(1, Lsr)
    WB_StrSlot(2, 2)
    WB_Alu(3, Add)
    WB_MovImm(4)
    WB_SetCond(5)
    WARIO_RETIRE_BR(7);
  }
  DISPATCH();

  FK_CASE(AesD1) {
    WB_LdrSlot(0)
    WB_LdrSlot(1)
    WB_Str(2, 4)
    WB_LdrSlot(3)
    WB_LdrSlot(4)
    WB_Str(5, 10)
    WB_LdrSlot(6)
    WB_LdrSlot(7)
    WARIO_RETIRE(8);
  }
  DISPATCH();

  FK_CASE(AesE1) {
    WB_LdrSlot(0)
    WB_Str(1, 2)
    WB_LdrSlot(2)
    WB_Str(3, 6)
    WB_LdrSlot(4)
    WB_Str(5, 10)
    WB_LdrSlot(6)
    WB_Str(7, 14)
    WARIO_RETIRE(8);
  }
  DISPATCH();

  FK_CASE(MovImm_Add_Mov_Ldr) {
    WB_MovImm(0)
    WB_Alu(1, Add)
    WB_Mov(2)
    WB_Ldr(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(LdrSlot_Mov_MovImm_SetCond_CBr) {
    WB_LdrSlot(0)
    WB_Mov(1)
    WB_MovImm(2)
    WB_SetCond(3)
    WARIO_RETIRE_BR(5);
  }
  DISPATCH();

  FK_CASE(Mov_StrSlot_B) {
    WB_Mov(0)
    WB_StrSlot(1, 1)
    WARIO_RETIRE_B(3);
  }
  DISPATCH();

  FK_CASE(Lsr_MovImm_Mul) {
    WB_Alu(0, Lsr)
    WB_MovImm(1)
    WB_Alu(2, Mul)
    WARIO_RETIRE(3);
  }
  DISPATCH();

  FK_CASE(Eor_Lsl_Lsr_Lsl_Lsr) {
    WB_Alu(0, Eor)
    WB_Alu(1, Lsl)
    WB_Alu(2, Lsr)
    WB_Alu(3, Lsl)
    WB_Alu(4, Lsr)
    WARIO_RETIRE(5);
  }
  DISPATCH();

  FK_CASE(Lsr_MovImm_Lsl_MovImm) {
    WB_Alu(0, Lsr)
    WB_MovImm(1)
    WB_Alu(2, Lsl)
    WB_MovImm(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(Lsl_MovImm_Lsr_MovImm) {
    WB_Alu(0, Lsl)
    WB_MovImm(1)
    WB_Alu(2, Lsr)
    WB_MovImm(3)
    WARIO_RETIRE(4);
  }
  DISPATCH();

  // --- Round-3 chain superinstructions: hot-trace iteration bodies ---------
  //
  // These kinds mostly exceed FusedCostLimit, so they exist only inside
  // superblocks, where the refusion fixpoint (Trace.cpp) grows each
  // recorded loop iteration into one or two of them. Handlers compose
  // the WBODY_* macros below: a body is the flat WB_* line sequence of
  // an existing kind shifted to base component index B, with PRE the
  // pre-summed cycle cost of everything before it (store stamps need
  // the component-accurate StoreCycles base). WCOST_* mirrors a body's
  // own cost the same way the builder's identity/fused sums do.

#define WBODY_CrcA3(B)                                                         \
    WB_Alu((B) + 0, Add)                                                       \
    WB_Mov((B) + 1)                                                            \
    WB_Ldr((B) + 2)                                                            \
    WB_Alu((B) + 3, Eor)                                                       \
    WB_MovImm((B) + 4)                                                         \
    WB_Alu((B) + 5, And)                                                       \
    WB_MovImm((B) + 6)                                                         \
    WB_MovImm((B) + 7)                                                         \
    WB_Alu((B) + 8, Lsl)                                                       \
    WB_Alu((B) + 9, Add)                                                       \
    WB_Mov((B) + 10)                                                           \
    WB_Ldr((B) + 11)                                                           \
    WB_MovImm((B) + 12)                                                        \
    WB_Alu((B) + 13, Lsr)                                                      \
    WB_Alu((B) + 14, Eor)                                                      \
    WB_MovImm((B) + 15)

  FK_CASE(TrCrc0) {
    WB_Mov(0)
    WB_Mov(1)
    WB_SetCond(2)
    WB_Mov(3)
    WARIO_RETIRE_BR(5);
  }
  DISPATCH();

  FK_CASE(TrCrc1) {
    WBODY_CrcA3(0)
    WB_Alu(16, Add)
    WB_SetCond(17)
    WB_Mov(18)
    WARIO_RETIRE_BR(20);
  }
  DISPATCH();

#define WBODY_TrCrc2                                                           \
    WBODY_CrcA3(0)                                                             \
    WB_Alu(16, Add)                                                            \
    WB_Mov(17)

  FK_CASE(TrCrc2) {
    WBODY_TrCrc2
    WARIO_RETIRE(18);
  }
  DISPATCH();

  FK_CASE(TrCrc3) {
    WBODY_TrCrc2
    WB_Mov(18)
    WARIO_RETIRE(19);
  }
  DISPATCH();

  FK_CASE(TrCrc4) {
    WBODY_TrCrc2
    WB_Mov(18)
    WARIO_RETIRE_B(20);
  }
  DISPATCH();

#define WBODY_CrcB3(B, PRE)                                                    \
    WB_MovImm((B) + 0)                                                         \
    WB_Alu((B) + 1, Add)                                                       \
    WB_Mov((B) + 2)                                                            \
    WB_MovImm((B) + 3)                                                         \
    WB_LdrSlot((B) + 4)                                                        \
    WB_Alu((B) + 5, Lsl)                                                       \
    WB_LdrSlot((B) + 6)                                                        \
    WB_Alu((B) + 7, Eor)                                                       \
    WB_StrSlot((B) + 8, (PRE) + J[(B) + 0].Aux + J[(B) + 3].Aux + 8)           \
    WB_MovImm((B) + 9)                                                         \
    WB_LdrSlot((B) + 10)                                                       \
    WB_Alu((B) + 11, Lsr)                                                      \
    WB_LdrSlot((B) + 12)                                                       \
    WB_Alu((B) + 13, Eor)                                                      \
    WB_StrSlot((B) + 14,                                                       \
               (PRE) + J[(B) + 0].Aux + J[(B) + 3].Aux + J[(B) + 9].Aux + 16)
#define WCOST_CrcB3(B) (J[(B) + 0].Aux + J[(B) + 3].Aux + J[(B) + 9].Aux + 19)

#define WBODY_CrcC4(B, PRE)                                                    \
    WB_MovImm((B) + 0)                                                         \
    WB_LdrSlot((B) + 1)                                                        \
    WB_Alu((B) + 2, Lsl)                                                       \
    WB_LdrSlot((B) + 3)                                                        \
    WB_Alu((B) + 4, Eor)                                                       \
    WB_StrSlot((B) + 5, (PRE) + J[(B) + 0].Aux + 6)                            \
    WB_LdrSlot((B) + 6)                                                        \
    WB_Alu((B) + 7, Lsr)                                                       \
    WB_MovImm((B) + 8)                                                         \
    WB_Alu((B) + 9, Lsl)                                                       \
    WB_Alu((B) + 10, Lsr)                                                      \
    WB_Alu((B) + 11, Lsl)                                                      \
    WB_Alu((B) + 12, Lsr)
#define WCOST_CrcC4(B) (J[(B) + 0].Aux + J[(B) + 8].Aux + 15)

#define WBODY_TrCrc5                                                           \
    WBODY_CrcB3(0, 0)                                                          \
    WBODY_CrcC4(15, WCOST_CrcB3(0))
#define WCOST_TrCrc5 (WCOST_CrcB3(0) + WCOST_CrcC4(15))

  FK_CASE(TrCrc5) {
    WBODY_TrCrc5
    WARIO_RETIRE(28);
  }
  DISPATCH();

  FK_CASE(TrCrc6) {
    WBODY_TrCrc5
    WB_Str(28, WCOST_TrCrc5)
    WB_MovImm(29)
    WB_Alu(30, Add)
    WB_LdrSlot(31)
    WB_SetCond(32)
    WARIO_RETIRE_BR(34);
  }
  DISPATCH();

#define WBODY_ShaB2(B)                                                         \
    WB_Alu((B) + 0, Add)                                                       \
    WB_MovImm((B) + 1)                                                         \
    WB_MovImm((B) + 2)                                                         \
    WB_Alu((B) + 3, Lsl)                                                       \
    WB_Alu((B) + 4, Add)                                                       \
    WB_Mov((B) + 5)                                                            \
    WB_Ldr((B) + 6)                                                            \
    WB_Alu((B) + 7, Add)                                                       \
    WB_MovImm((B) + 8)

#define WBODY_TrSha1                                                           \
    WB_Mov(0)                                                                  \
    WB_Mov(1)                                                                  \
    WB_MovImm(2)                                                               \
    WB_Alu(3, Lsl)                                                             \
    WB_MovImm(4)                                                               \
    WB_Alu(5, Lsr)

  FK_CASE(TrSha1) {
    WBODY_TrSha1
    WARIO_RETIRE(6);
  }
  DISPATCH();

#define WBODY_TrSha2                                                           \
    WBODY_TrSha1                                                               \
    WB_Alu(6, Orr)                                                             \
    WB_Alu(7, Add)                                                             \
    WB_LdrSlot(8)                                                              \
    WB_Alu(9, Add)

  FK_CASE(TrSha2) {
    WBODY_TrSha2
    WARIO_RETIRE(10);
  }
  DISPATCH();

  FK_CASE(TrSha3) {
    WBODY_TrSha2
    WBODY_ShaB2(10)
    WARIO_RETIRE(19);
  }
  DISPATCH();

#define WBODY_TrSha4                                                           \
    WBODY_TrSha2                                                               \
    WBODY_ShaB2(10)                                                            \
    WB_Alu(19, Lsl)                                                            \
    WB_MovImm(20)                                                              \
    WB_Alu(21, Lsr)                                                            \
    WB_Alu(22, Orr)                                                            \
    WB_MovImm(23)

  FK_CASE(TrSha4) {
    WBODY_TrSha4
    WARIO_RETIRE(24);
  }
  DISPATCH();

#define WBODY_TrSha5                                                           \
    WBODY_TrSha4                                                               \
    WB_Alu(24, Add)                                                            \
    WB_Mov(25)
#define WCOST_TrSha5                                                           \
    (21 + J[2].Aux + J[4].Aux + J[11].Aux + J[12].Aux + J[18].Aux +            \
     J[20].Aux + J[23].Aux)

  FK_CASE(TrSha5) {
    WBODY_TrSha5
    WARIO_RETIRE(26);
  }
  DISPATCH();

#define WBODY_TrSha6                                                           \
    WBODY_TrSha5                                                               \
    WB_StrSlot(26, WCOST_TrSha5)                                               \
    WB_Mov(27)                                                                 \
    WB_StrSlot(28, WCOST_TrSha5 + 3)                                           \
    WB_Mov(29)                                                                 \
    WB_StrSlot(30, WCOST_TrSha5 + 6)                                           \
    WB_Mov(31)                                                                 \
    WB_StrSlot(32, WCOST_TrSha5 + 9)                                           \
    WB_Mov(33)

  FK_CASE(TrSha6) {
    WBODY_TrSha6
    WARIO_RETIRE(34);
  }
  DISPATCH();

#define WBODY_TrSha7                                                           \
    WBODY_TrSha6                                                               \
    WB_StrSlot(34, WCOST_TrSha5 + 12)                                          \
    WB_Mov(35)                                                                 \
    WB_StrSlot(36, WCOST_TrSha5 + 15)

  FK_CASE(TrSha7) {
    WBODY_TrSha7
    WARIO_RETIRE(37);
  }
  DISPATCH();

  FK_CASE(TrSha8) {
    WBODY_TrSha7
    WARIO_RETIRE_B(38);
  }
  DISPATCH();

#define WBODY_TrSha9                                                           \
    WB_LdrSlot(0)                                                              \
    WB_Mov(1)                                                                  \
    WB_LdrSlot(2)                                                              \
    WB_Mov(3)                                                                  \
    WB_LdrSlot(4)                                                              \
    WB_Mov(5)                                                                  \
    WB_LdrSlot(6)                                                              \
    WB_Mov(7)                                                                  \
    WB_LdrSlot(8)                                                              \
    WB_Mov(9)                                                                  \
    WB_StrSlot(10, 15)                                                         \
    WB_LdrSlot(11)

  FK_CASE(TrSha9) {
    WBODY_TrSha9
    WARIO_RETIRE(12);
  }
  DISPATCH();

  FK_CASE(TrSha10) {
    WBODY_TrSha9
    WB_Mov(12)
    WB_MovImm(13)
    WB_SetCond(14)
    WARIO_RETIRE_BR(16);
  }
  DISPATCH();

#define WBODY_TrSha11                                                          \
    WB_Alu(0, And)                                                             \
    WB_Alu(1, And)                                                             \
    WB_Alu(2, Orr)                                                             \
    WB_Alu(3, And)

  FK_CASE(TrSha11) {
    WBODY_TrSha11
    WARIO_RETIRE(4);
  }
  DISPATCH();

  FK_CASE(TrSha12) {
    WBODY_TrSha11
    WB_Alu(4, Orr)
    WB_Mov(5)
    WARIO_RETIRE(6);
  }
  DISPATCH();

  FK_CASE(TrSha13) {
    WBODY_TrSha11
    WB_Alu(4, Orr)
    WB_Mov(5)
    WB_MovImm(6)
    WB_Mov(7)
    WARIO_RETIRE_B(9);
  }
  DISPATCH();

#define WBODY_SchedXor(B, PRE)                                                 \
    WB_MovImm((B) + 0)                                                         \
    WB_LdrSlot((B) + 1)                                                        \
    WB_Alu((B) + 2, Lsl)                                                       \
    WB_LdrSlot((B) + 3)                                                        \
    WB_Alu((B) + 4, Eor)                                                       \
    WB_StrSlot((B) + 5, (PRE) + J[(B) + 0].Aux + 6)
#define WCOST_SchedXor(B) (J[(B) + 0].Aux + 8)

#define WBODY_TrSha14                                                          \
    WBODY_CrcB3(0, 0)                                                          \
    WBODY_SchedXor(15, WCOST_CrcB3(0))
#define WCOST_TrSha14 (WCOST_CrcB3(0) + WCOST_SchedXor(15))

  FK_CASE(TrSha14) {
    WBODY_TrSha14
    WARIO_RETIRE(21);
  }
  DISPATCH();

#define WBODY_TrSha15                                                          \
    WBODY_TrSha14                                                              \
    WB_MovImm(21)                                                              \
    WB_LdrSlot(22)                                                             \
    WB_Alu(23, Lsr)

  FK_CASE(TrSha15) {
    WBODY_TrSha15
    WARIO_RETIRE(24);
  }
  DISPATCH();

#define WBODY_TrSha16                                                          \
    WBODY_TrSha15                                                              \
    WB_MovImm(24)                                                              \
    WB_Alu(25, Lsl)

  FK_CASE(TrSha16) {
    WBODY_TrSha16
    WARIO_RETIRE(26);
  }
  DISPATCH();

#define WBODY_TrSha17                                                          \
    WBODY_TrSha16                                                              \
    WB_Alu(26, Lsr)                                                            \
    WB_Alu(27, Lsl)

  FK_CASE(TrSha17) {
    WBODY_TrSha17
    WARIO_RETIRE(28);
  }
  DISPATCH();

#define WBODY_TrSha18                                                          \
    WBODY_TrSha17                                                              \
    WB_Alu(28, Lsr)
#define WCOST_TrSha18 (WCOST_TrSha14 + J[21].Aux + J[24].Aux + 8)

  FK_CASE(TrSha18) {
    WBODY_TrSha18
    WARIO_RETIRE(29);
  }
  DISPATCH();

#define WBODY_TrSha19                                                          \
    WBODY_TrSha18                                                              \
    WB_Str(29, WCOST_TrSha18)                                                  \
    WB_MovImm(30)                                                              \
    WB_Alu(31, Add)

  FK_CASE(TrSha19) {
    WBODY_TrSha19
    WARIO_RETIRE(32);
  }
  DISPATCH();

  FK_CASE(TrSha20) {
    WBODY_TrSha19
    WB_MovImm(32)
    WB_SetCond(33)
    WARIO_RETIRE_BR(35);
  }
  DISPATCH();

  // --- Guard chains: whole loop iterations behind interior guards ----------
  //
  // Built only by the guard-merging pass (Trace.cpp): a recorded CBr
  // becomes a WB_GUARD component whose on-path side falls through to
  // the next component. Each guard's PRE is the cycle cost of every
  // component before it, written incrementally from the WCOST_* sums —
  // evaluated only on the (rare) off-path exit.

// CrcA3's own cost: 11 unit-cost ALU/Mov components, two 2-cycle Ldrs,
// five immediate-cost MovImms.
#define WCOST_CrcA3(B)                                                         \
  (13 + J[(B) + 4].Aux + J[(B) + 6].Aux + J[(B) + 7].Aux +                     \
   J[(B) + 12].Aux + J[(B) + 15].Aux)
// TrCrc1 minus its trailing CBr: CrcA3 then Add, SetCond, Mov.
#define WBODY_TrCrc1Q(B)                                                       \
    WBODY_CrcA3(B)                                                             \
    WB_Alu((B) + 16, Add)                                                      \
    WB_SetCond((B) + 17)                                                       \
    WB_Mov((B) + 18)
// TrCrc0 minus its trailing CBr, at components 0-3 (cost 5).
#define WBODY_TrCrc0Q                                                          \
    WB_Mov(0)                                                                  \
    WB_Mov(1)                                                                  \
    WB_SetCond(2)                                                              \
    WB_Mov(3)

  FK_CASE(TrCrcIt1) {
    WBODY_TrCrc0Q
    WB_GUARD(4, 5)
    WBODY_TrCrc1Q(5)
    WARIO_RETIRE_BR(25);
  }
  DISPATCH();

  FK_CASE(TrCrcIt2) {
    WBODY_TrCrc0Q
    WB_GUARD(4, 5)
    WBODY_TrCrc1Q(5)
    WB_GUARD(24, 12 + WCOST_CrcA3(5))
    WBODY_TrCrc1Q(25)
    WARIO_RETIRE_BR(45);
  }
  DISPATCH();

  FK_CASE(TrCrcIt3) {
    WBODY_TrCrc0Q
    WB_GUARD(4, 5)
    WBODY_TrCrc1Q(5)
    WB_GUARD(24, 12 + WCOST_CrcA3(5))
    WBODY_TrCrc1Q(25)
    WB_GUARD(44, 19 + WCOST_CrcA3(5) + WCOST_CrcA3(25))
    WBODY_TrCrc1Q(45)
    WARIO_RETIRE_BR(65);
  }
  DISPATCH();

  FK_CASE(TrCrcIt4) {
    WBODY_TrCrc0Q
    WB_GUARD(4, 5)
    WBODY_TrCrc1Q(5)
    WB_GUARD(24, 12 + WCOST_CrcA3(5))
    WBODY_TrCrc1Q(25)
    WB_GUARD(44, 19 + WCOST_CrcA3(5) + WCOST_CrcA3(25))
    WBODY_TrCrc1Q(45)
    WB_GUARD(64,
             26 + WCOST_CrcA3(5) + WCOST_CrcA3(25) + WCOST_CrcA3(45))
    WBODY_CrcA3(65)
    WB_Alu(81, Add)
    WB_Mov(82)
    WB_Mov(83)
    WARIO_RETIRE_B(85);
  }
  DISPATCH();

// TrSha10 minus its trailing CBr: TrSha9 then Mov, MovImm, SetCond
// (cost 22 plus the immediate).
#define WBODY_TrSha10Q                                                         \
    WBODY_TrSha9                                                               \
    WB_Mov(12)                                                                 \
    WB_MovImm(13)                                                              \
    WB_SetCond(14)

  FK_CASE(TrShaR1) {
    WBODY_TrSha10Q
    WB_GUARD(15, 22 + J[13].Aux)
    WB_MovImm(16)
    WB_SetCond(17)
    WARIO_RETIRE_BR(19);
  }
  DISPATCH();

  FK_CASE(TrShaR2) {
    WBODY_TrSha10Q
    WB_GUARD(15, 22 + J[13].Aux)
    WB_MovImm(16)
    WB_SetCond(17)
    WB_GUARD(18, 27 + J[13].Aux + J[16].Aux)
    WB_MovImm(19)
    WB_SetCond(20)
    WARIO_RETIRE_BR(22);
  }
  DISPATCH();

  FK_CASE(TrShaR3) {
    WBODY_TrSha10Q
    WB_GUARD(15, 22 + J[13].Aux)
    WB_MovImm(16)
    WB_SetCond(17)
    WB_GUARD(18, 27 + J[13].Aux + J[16].Aux)
    WB_MovImm(19)
    WB_SetCond(20)
    WB_GUARD(21, 32 + J[13].Aux + J[16].Aux + J[19].Aux)
    WB_MovImm(22)
    WB_SetCond(23)
    WARIO_RETIRE_BR(25);
  }
  DISPATCH();

  // --- Trace-engine stubs (superblock code only; Trace.h) -------------------
  // Stubs are free: the branch or fall-through that reached them already
  // retired its own cycles and instruction count.

  FK_CASE(TraceExit) {
    // A direction guard left the recorded path: resume the merged
    // stream at the off-path target.
    if (TraceMode) {
      ++St.SideExits;
      ++CurSB->Exits;
      uint32_t T = J->A;
      SBase = Fast;
      SOrig = nullptr;
      CurSB = nullptr;
      CurLimit = Limit;
      J = Fast + T;
      DISPATCH();
    }
    goto bail; // Unreachable outside the trace engine.
  }

  FK_CASE(TraceFall) {
    // Fell off the end of a non-looping trace: resume the merged stream.
    if (TraceMode) {
      uint32_t T = J->A;
      SBase = Fast;
      SOrig = nullptr;
      CurSB = nullptr;
      CurLimit = Limit;
      J = Fast + T;
      DISPATCH();
    }
    goto bail;
  }

  FK_CASE(TraceRet) {
    // Guarded return (a recorded Ret): on the recorded link, continue
    // straight-line; on a foreign (but valid) link, side-exit to the
    // actual return target; on a sentinel/corrupt link, bail with the
    // superblock still current so flush maps this record to the Ret's
    // merged pc and step() finishes the program exactly like the
    // identity handler would.
    if (TraceMode) {
      uint32_t L = R[LR];
      if (L == LrSentinel || !(L & CodeAddrBit))
        goto bail;
      Active += 1 + cycles::PipelineRefill;
      ++Insts;
      if (L == J->A) {
        J = SBase + J->T0;
        DISPATCH();
      }
      ++St.SideExits;
      ++CurSB->Exits;
      SBase = Fast;
      SOrig = nullptr;
      CurSB = nullptr;
      CurLimit = Limit;
      J = Fast + (L & ~CodeAddrBit);
      DISPATCH();
    }
    goto bail;
  }

  FK_CASE(TraceLoop) {
    // Back edge to the trace head: re-enter when a whole further pass
    // still fits under the event margin, else hand the loop back to the
    // merged stream.
    if (TraceMode) {
      if (Active + CurSB->WorstCost < Limit) {
        ++St.SuperblockDispatches;
        ++CurSB->Entries;
        J = SBase;
        DISPATCH();
      }
      ++St.Invalidations;
      uint32_t T = J->A;
      SBase = Fast;
      SOrig = nullptr;
      CurSB = nullptr;
      CurLimit = Limit;
      J = Fast + T;
      DISPATCH();
    }
    goto bail;
  }

#if WARIO_THREADED_GOTO
H_Bad:
  assert(false && "padding kind dispatched");
  goto bail;
#else
  default:
    assert(false && "unknown kind dispatched");
    goto bail;
  }
#endif

trace_edge:
  // The trace engine's cold policy edge. WARIO_SETJ sends a transfer
  // here only when the recorder is armed (every taken target extends
  // the path — block granularity, fall-through interiors reconstructed
  // by the builder) or when a back-edge target's heat counter crossed
  // TraceHotThreshold. A crossing means: enter the head's superblock if
  // one is ready and a full pass fits the margin, arm the recorder on a
  // cold head, or re-zero a blacklisted one (the counter keeps running
  // so blacklisted heads cost one funnel trip per threshold period).
  if (TraceMode) {
    if (RecOn) {
      switch (traceRecordStep(TS, EdgeT)) {
      case RecordVerdict::Continue:
        break;
      case RecordVerdict::Build:
        if (buildSuperblock(TS, P.Prog, P.Fast, EdgeT)) {
          ++St.TracesBuilt;
          // Pin the head at the threshold so its next visit funnels
          // straight into the new superblock.
          TS.Hot[TS.Head] = TraceHotThreshold - 1;
        } else {
          TS.SBIdx[TS.Head] = SBBlacklisted;
        }
        RecOn = false;
        break;
      case RecordVerdict::Abort:
        TS.SBIdx[TS.Head] = SBBlacklisted;
        RecOn = false;
        break;
      }
    } else {
      int32_t SI = TS.SBIdx[EdgeT];
      if (SI >= 0) {
        TS.Hot[EdgeT] = TraceHotThreshold - 1; // Funnel again next visit.
        Superblock *SB = TS.Blocks[size_t(SI)].get();
        if (SB->Entries >= TraceHotThreshold &&
            SB->Exits * 8 > SB->Entries * 7) {
          // Deoptimize: the recorded path almost never survives, so
          // entry and exit overhead buy nothing. Stay merged for good.
          TS.SBIdx[EdgeT] = SBBlacklisted;
          TS.Hot[EdgeT] = 0;
          ++St.Invalidations;
        } else if (Active + SB->WorstCost < Limit) {
          CurSB = SB;
          SBase = SB->Code.data();
          SOrig = SB->Orig.data();
          CurLimit = ~uint64_t(0);
          ++St.SuperblockDispatches;
          ++SB->Entries;
          J = SBase;
          WARIO_DISPATCH_NOHOOK();
        } else {
          ++St.Invalidations; // Margin says no: stay on the merged stream.
        }
      } else {
        TS.Hot[EdgeT] = 0;
        if (SI == SBNone) {
          RecOn = true;
          TS.beginRecording(EdgeT);
        }
      }
    }
    J = Fast + EdgeT;
    DISPATCH();
  }
  goto bail; // Unreachable: WARIO_SETJ funnels here in trace mode only.

bail:
  // Something irregular at the current pc (counters already advanced
  // past any retired components): sync, let the interpreter execute
  // exactly one instruction through its own code, and resume. No
  // outer-loop event can fire before that boundary — the caller's
  // margin guarantees it — so going straight back to dispatch is
  // exactly the interpreter's own sequencing.
  if (TraceMode && RecOn) {
    // The bailed instruction runs through step() below — a gap the
    // recorded path cannot represent. Abandon it and never retry.
    RecOn = false;
    TS.SBIdx[TS.Head] = SBBlacklisted;
  }
  flush();
  ++BailSteps;
  step();
  reload();
  if (Done || Failed)
    goto out;
  DISPATCH();

out:
  flush();
  St.ThreadedInstructions = (Insts - Insts0) - BailSteps;
  if (Stats)
    *Stats += St;
}

template void Machine::runThreadedT<false>(uint64_t);
template void Machine::runThreadedT<true>(uint64_t);

void Machine::runThreaded(uint64_t Limit) {
  if (UseTrace)
    runThreadedT<true>(Limit);
  else
    runThreadedT<false>(Limit);
}
