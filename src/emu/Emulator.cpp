#include "emu/Emulator.h"

#include "ir/ConstEval.h"

#include <algorithm>

#include <bit>
#include <sstream>
#include <unordered_map>

using namespace wario;

namespace {

/// Reserved NVM range for the double-buffered checkpoint (exempt from WAR
/// monitoring: the checkpoint routine itself is incorruptible by design,
/// Section 4.5).
constexpr uint32_t CkptBase = 0x100;
constexpr uint32_t CkptActiveWord = CkptBase;       // 0 or 1.
constexpr uint32_t CkptBuf0 = CkptBase + 0x10;      // 17 words.
constexpr uint32_t CkptBuf1 = CkptBase + 0x60;
constexpr uint32_t CkptEnd = CkptBase + 0x100;
constexpr uint32_t CodeAddrBit = 0x80000000u;
constexpr uint32_t LrSentinel = 0xFFFFFFFEu;

/// A position in the flattened code image.
struct CodeRef {
  const MFunction *F;
  int Block;
  int Index;
};

class Machine {
public:
  Machine(const MModule &M, const EmulatorOptions &Opts)
      : M(M), Opts(Opts), Mem(memmap::MemSize, 0) {
    assert(!M.InitImage.empty() || M.DataEnd == 0);
    std::copy(M.InitImage.begin(), M.InitImage.end(), Mem.begin());
    // Flatten code and record block entry addresses.
    for (const MFunction &F : M.Functions) {
      FuncEntry[&F] = uint32_t(Code.size());
      std::vector<uint32_t> &Starts = BlockStart[&F];
      for (int B = 0; B != int(F.Blocks.size()); ++B) {
        Starts.push_back(uint32_t(Code.size()));
        for (int I = 0; I != int(F.Blocks[B].Insts.size()); ++I)
          Code.push_back({&F, B, I});
      }
    }
  }

  EmulatorResult run(const std::string &Entry) {
    EmulatorResult R;
    const MFunction *Main = M.getFunction(Entry);
    if (!Main) {
      R.Error = "entry function '" + Entry + "' not found";
      return R;
    }

    coldStart(Main);
    unsigned StalledBoots = 0;

    while (true) {
      if (Res.TotalCycles >= Opts.MaxCycles) {
        fail("cycle budget exhausted (runaway program?)");
        break;
      }
      if (!Failed && Done)
        break;
      if (Failed)
        break;

      // Power failure?
      uint64_t OnBudget = Opts.Power.onDuration(Res.PowerFailures);
      if (ActiveSinceBoot >= OnBudget) {
        ++Res.PowerFailures;
        if (!ProgressThisBoot) {
          if (++StalledBoots >= Opts.MaxStalledBoots) {
            fail("no forward progress across " +
                 std::to_string(StalledBoots) + " boots");
            break;
          }
        } else {
          StalledBoots = 0;
        }
        reboot(Main);
        continue;
      }

      // Interrupt delivery at instruction boundaries. The inter-arrival
      // clock restarts when the handler *returns* (resetting before it
      // runs would re-pend immediately whenever the service cost exceeds
      // the period — an interrupt storm that starves user code).
      if (Opts.InterruptPeriod && !Primask &&
          (Pending || CyclesSinceIrq >= Opts.InterruptPeriod)) {
        Pending = false;
        serviceInterrupt();
        CyclesSinceIrq = 0;
        if (Failed)
          break;
        continue;
      }

      step();
    }

    R = std::move(Res);
    R.FinalMemory = std::move(Mem);
    R.Ok = !Failed;
    if (Failed)
      R.Error = ErrorMsg;
    return R;
  }

private:
  // --- Helpers ---------------------------------------------------------------
  void fail(std::string Msg) {
    if (!Failed) {
      Failed = true;
      ErrorMsg = std::move(Msg);
    }
  }

  void spend(uint64_t C) {
    Res.TotalCycles += C;
    ActiveSinceBoot += C;
    CyclesSinceIrq += C;
  }

  uint32_t &reg(int R) {
    assert(R >= 0 && R < NumPRegs);
    return Regs[R];
  }

  // --- Memory with WAR monitoring ----------------------------------------------
  enum class Access : uint8_t { Read, Write };

  bool monitored(uint32_t Addr) const {
    if (Addr >= CkptBase && Addr < CkptEnd)
      return false; // Checkpoint buffers are incorruptible by design.
    return true;
  }

  void recordAccess(uint32_t Addr, unsigned Size, Access Kind) {
    if (!monitored(Addr))
      return;
    bool CountedThisAccess = false;
    for (unsigned I = 0; I != Size; ++I) {
      uint32_t A = Addr + I;
      auto It = FirstAccess.find(A);
      if (It == FirstAccess.end()) {
        FirstAccess.emplace(A, Kind);
        continue;
      }
      if (Kind == Access::Write && It->second == Access::Read) {
        // One violation per offending store, not per overlapping byte.
        if (!CountedThisAccess)
          ++Res.WarViolations;
        CountedThisAccess = true;
        if (Res.WarReports.size() < 8) {
          std::ostringstream OS;
          OS << "WAR violation: write to 0x" << std::hex << A
             << " first read in the same idempotent region (function @"
             << Cur().F->Name << ", block "
             << Cur().F->Blocks[Cur().Block].Name << ")";
          Res.WarReports.push_back(OS.str());
        }
        if (Opts.WarIsFatal)
          fail(Res.WarReports.empty() ? "WAR violation"
                                      : Res.WarReports.back());
        // Record as write so each spot reports once.
        It->second = Access::Write;
      }
    }
  }

  uint32_t loadMem(uint32_t Addr, unsigned Size, bool SignExtend) {
    if (Addr > memmap::MemSize - Size) {
      fail("load out of bounds");
      return 0;
    }
    recordAccess(Addr, Size, Access::Read);
    uint32_t V = 0;
    for (unsigned I = 0; I != Size; ++I)
      V |= uint32_t(Mem[Addr + I]) << (8 * I);
    if (SignExtend && Size < 4) {
      uint32_t SignBit = 1u << (Size * 8 - 1);
      if (V & SignBit)
        V |= ~((SignBit << 1) - 1);
    }
    return V;
  }

  void storeMem(uint32_t Addr, unsigned Size, uint32_t V) {
    if (Addr == memmap::OutPort) {
      Res.Output.push_back(int32_t(V));
      return;
    }
    if (Addr > memmap::MemSize - Size) {
      fail("store out of bounds");
      return;
    }
    recordAccess(Addr, Size, Access::Write);
    for (unsigned I = 0; I != Size; ++I)
      Mem[Addr + I] = uint8_t(V >> (8 * I));
  }

  /// Raw word access bypassing the monitor (checkpoint machinery).
  uint32_t rawLoad(uint32_t Addr) {
    uint32_t V = 0;
    for (unsigned I = 0; I != 4; ++I)
      V |= uint32_t(Mem[Addr + I]) << (8 * I);
    return V;
  }
  void rawStore(uint32_t Addr, uint32_t V) {
    for (unsigned I = 0; I != 4; ++I)
      Mem[Addr + I] = uint8_t(V >> (8 * I));
  }

  // --- Power / checkpoints -------------------------------------------------------
  void coldStart(const MFunction *Main) {
    for (uint32_t &R : Regs)
      R = 0;
    Regs[SP] = memmap::StackTop;
    Regs[LR] = LrSentinel;
    Pc = CodeAddrBit | FuncEntry.at(Main);
    Primask = false;
    Pending = false;
    FirstAccess.clear();
    RegionStartCycles = Res.TotalCycles;
    ActiveSinceBoot = 0;
    ProgressThisBoot = false;
    spend(cycles::Boot);
    CyclesSinceIrq = 0; // The interrupt timer restarts on power-up.
  }

  void reboot(const MFunction *Main) {
    // Volatile state is lost; PRIMASK resets; NVM persists.
    ActiveSinceBoot = 0;
    ProgressThisBoot = false;
    Primask = false;
    Pending = false;
    spend(cycles::Boot);
    CyclesSinceIrq = 0; // The interrupt timer restarts on power-up.
    // Restore the last committed checkpoint, if any.
    uint32_t Active = rawLoad(CkptActiveWord);
    if (Active == 0) {
      // Never checkpointed: restart from scratch (registers only; any
      // NVM mutations persist, which is exactly what the WAR monitor
      // checks for).
      for (uint32_t &R : Regs)
        R = 0;
      Regs[SP] = memmap::StackTop;
      Regs[LR] = LrSentinel;
      Pc = CodeAddrBit | FuncEntry.at(Main);
      FirstAccess.clear();
      RegionStartCycles = Res.TotalCycles;
      return;
    }
    uint32_t Buf = (Active == 1) ? CkptBuf0 : CkptBuf1;
    for (int R = 0; R != 15; ++R)
      Regs[R] = rawLoad(Buf + 4 * unsigned(R));
    Pc = rawLoad(Buf + 4 * 15);
    spend(cycles::Restore);
    // Re-execution starts a fresh idempotent region attempt.
    FirstAccess.clear();
    RegionStartCycles = Res.TotalCycles;
  }

  void commitCheckpoint(CheckpointCause Cause) {
    uint32_t Active = rawLoad(CkptActiveWord);
    uint32_t Buf = (Active == 1) ? CkptBuf1 : CkptBuf0;
    for (int R = 0; R != 15; ++R)
      rawStore(Buf + 4 * unsigned(R), Regs[R]);
    rawStore(Buf + 4 * 15, Pc); // Resume after this instruction.
    rawStore(CkptActiveWord, (Active == 1) ? 2 : 1);
    spend(cycles::Checkpoint);

    ++Res.CheckpointsExecuted;
    switch (Cause) {
    case CheckpointCause::MiddleEndWar: ++Res.Causes.MiddleEndWar; break;
    case CheckpointCause::BackendSpill: ++Res.Causes.BackendSpill; break;
    case CheckpointCause::FunctionEntry: ++Res.Causes.FunctionEntry; break;
    case CheckpointCause::FunctionExit: ++Res.Causes.FunctionExit; break;
    }
    if (Opts.CollectRegionSizes)
      Res.RegionSizes.push_back(Res.TotalCycles - RegionStartCycles);
    RegionStartCycles = Res.TotalCycles;
    FirstAccess.clear();
    ProgressThisBoot = true;
  }

  void serviceInterrupt() {
    ++Res.InterruptsTaken;
    // Hardware-assisted entry checkpoint (see DESIGN.md): closes the
    // region so the exception stacking below cannot complete a WAR.
    commitCheckpoint(CheckpointCause::FunctionEntry);
    // Exception stacking: {r0-r3, r12, lr, pc, xpsr} below SP.
    uint32_t SPv = Regs[SP] - 32;
    static const int Stacked[] = {R0, R1, R2, R3, R12, LR};
    for (int I = 0; I != 6; ++I)
      storeMem(SPv + 4 * unsigned(I), 4, Regs[Stacked[I]]);
    storeMem(SPv + 24, 4, Pc);
    storeMem(SPv + 28, 4, 0x01000000); // xPSR.
    // Handler body is modeled as a fixed-cost register-only routine.
    // Unstacking (reads).
    for (int I = 0; I != 6; ++I)
      Regs[Stacked[I]] = loadMem(SPv + 4 * unsigned(I), 4, false);
    (void)loadMem(SPv + 24, 4, false);
    (void)loadMem(SPv + 28, 4, false);
    spend(cycles::IsrOverhead);
  }

  // --- Execution --------------------------------------------------------------------
  const CodeRef &Cur() const { return Code[Pc & ~CodeAddrBit]; }

  void jumpToBlock(const MFunction *F, int Block) {
    Pc = CodeAddrBit | BlockStart.at(F)[unsigned(Block)];
  }

  uint32_t slotAddress(const MFunction *F, int Slot) const {
    assert(F->FrameLowered && Slot >= 0 && Slot < int(F->Slots.size()));
    return Regs[SP] + uint32_t(F->Slots[unsigned(Slot)].Offset);
  }

  void step() {
    const CodeRef CR = Cur();
    const MInst &I = CR.F->Blocks[CR.Block].Insts[unsigned(CR.Index)];
    ++Res.InstructionsExecuted;
    uint32_t NextPc = Pc + 1;

    switch (I.Op) {
    case MOp::MovImm:
      reg(I.Dst) = uint32_t(I.Imm);
      spend((uint64_t(I.Imm) & 0xFFFF0000u) ? 2 : 1);
      break;
    case MOp::MovGlobal:
      fail("unlinked MovGlobal reached the emulator");
      return;
    case MOp::Mov:
      reg(I.Dst) = reg(I.Src[0]);
      spend(1);
      break;
    case MOp::Add: case MOp::Sub: case MOp::Mul: case MOp::And:
    case MOp::Orr: case MOp::Eor: case MOp::Lsl: case MOp::Lsr:
    case MOp::Asr: {
      static const std::unordered_map<MOp, Opcode> Map = {
          {MOp::Add, Opcode::Add}, {MOp::Sub, Opcode::Sub},
          {MOp::Mul, Opcode::Mul}, {MOp::And, Opcode::And},
          {MOp::Orr, Opcode::Or},  {MOp::Eor, Opcode::Xor},
          {MOp::Lsl, Opcode::Shl}, {MOp::Lsr, Opcode::LShr},
          {MOp::Asr, Opcode::AShr}};
      reg(I.Dst) = *constEvalBinary(Map.at(I.Op), reg(I.Src[0]),
                                    reg(I.Src[1]));
      spend(1);
      break;
    }
    case MOp::UDiv:
    case MOp::SDiv: {
      auto V = constEvalBinary(I.Op == MOp::UDiv ? Opcode::UDiv
                                                 : Opcode::SDiv,
                               reg(I.Src[0]), reg(I.Src[1]));
      if (!V) {
        fail("division by zero");
        return;
      }
      reg(I.Dst) = *V;
      spend(6);
      break;
    }
    case MOp::AddImm:
      reg(I.Dst) = reg(I.Src[0]) + uint32_t(I.Imm);
      spend(1);
      break;
    case MOp::SetCond:
      reg(I.Dst) =
          constEvalPred(I.Pred, reg(I.Src[0]), reg(I.Src[1])) ? 1 : 0;
      spend(2);
      break;
    case MOp::SelectR:
      reg(I.Dst) = reg(I.Src[0]) != 0 ? reg(I.Src[1]) : reg(I.Src[2]);
      spend(2);
      break;
    case MOp::Ldr:
      reg(I.Dst) = loadMem(reg(I.Src[0]) + uint32_t(I.Imm), I.Size,
                           I.Signed);
      spend(2);
      break;
    case MOp::Str:
      storeMem(reg(I.Src[1]) + uint32_t(I.Imm), I.Size, reg(I.Src[0]));
      spend(2);
      break;
    case MOp::LdrSlot:
      reg(I.Dst) = loadMem(slotAddress(CR.F, I.Slot), 4, false);
      spend(2);
      break;
    case MOp::StrSlot:
      storeMem(slotAddress(CR.F, I.Slot), 4, reg(I.Src[0]));
      spend(2);
      break;
    case MOp::FrameAddr:
      reg(I.Dst) = slotAddress(CR.F, I.Slot);
      spend(1);
      break;
    case MOp::Bl: {
      if (I.CalleeIdx < 0 || I.CalleeIdx >= int(M.Functions.size())) {
        fail("call through an unlinked or bad function index");
        return;
      }
      const MFunction *Callee = &M.Functions[unsigned(I.CalleeIdx)];
      Regs[LR] = NextPc;
      Pc = CodeAddrBit | FuncEntry.at(Callee);
      spend(1 + cycles::PipelineRefill);
      return;
    }
    case MOp::B:
      jumpToBlock(CR.F, I.Target[0]);
      spend(1 + cycles::PipelineRefill);
      return;
    case MOp::CBr:
      if (reg(I.Src[0]) != 0) {
        jumpToBlock(CR.F, I.Target[0]);
        spend(1 + cycles::PipelineRefill);
      } else {
        jumpToBlock(CR.F, I.Target[1]);
        spend(1 + cycles::PipelineRefill);
      }
      return;
    case MOp::Ret:
      if (Regs[LR] == LrSentinel) {
        Done = true;
        Res.ReturnValue = int32_t(Regs[R0]);
        spend(1 + cycles::PipelineRefill);
        return;
      }
      if (!(Regs[LR] & CodeAddrBit)) {
        fail("return to a non-code address (corrupt lr)");
        return;
      }
      Pc = Regs[LR];
      spend(1 + cycles::PipelineRefill);
      return;
    case MOp::Push: {
      unsigned N = unsigned(std::popcount(unsigned(I.RegList)));
      uint32_t Base = Regs[SP] - 4 * N;
      unsigned Idx = 0;
      for (int R = 0; R != NumPRegs; ++R)
        if (I.RegList & (1u << R))
          storeMem(Base + 4 * Idx++, 4, Regs[R]);
      Regs[SP] = Base;
      spend(1 + N);
      break;
    }
    case MOp::Pop:
    case MOp::PopLoads: {
      unsigned N = unsigned(std::popcount(unsigned(I.RegList)));
      unsigned Idx = 0;
      for (int R = 0; R != NumPRegs; ++R)
        if (I.RegList & (1u << R))
          Regs[R] = loadMem(Regs[SP] + 4 * Idx++, 4, false);
      if (I.Op == MOp::Pop)
        Regs[SP] += 4 * N;
      spend(1 + N);
      break;
    }
    case MOp::SpAdjust:
      Regs[SP] += uint32_t(int32_t(I.Imm));
      spend(1);
      break;
    case MOp::Checkpoint:
      // Commit with the resume point after this instruction.
      Pc = NextPc;
      commitCheckpoint(I.Cause);
      return;
    case MOp::Out:
      Res.Output.push_back(int32_t(reg(I.Src[0])));
      spend(2);
      break;
    case MOp::IntMask:
      Primask = true;
      spend(1);
      break;
    case MOp::IntUnmask:
      Primask = false;
      spend(1);
      break;
    case MOp::Nop:
      spend(1);
      break;
    case MOp::CallPseudo:
    case MOp::ArgGet:
      fail("unexpanded pseudo instruction reached the emulator");
      return;
    }
    Pc = NextPc;
  }

  const MModule &M;
  EmulatorOptions Opts;
  std::vector<uint8_t> Mem;
  std::vector<CodeRef> Code;
  std::unordered_map<const MFunction *, uint32_t> FuncEntry;
  std::unordered_map<const MFunction *, std::vector<uint32_t>> BlockStart;

  uint32_t Regs[NumPRegs] = {};
  uint32_t Pc = 0;
  bool Primask = false;
  bool Pending = false;
  bool Done = false;
  bool Failed = false;
  std::string ErrorMsg;

  std::unordered_map<uint32_t, Access> FirstAccess;
  uint64_t RegionStartCycles = 0;
  uint64_t ActiveSinceBoot = 0;
  uint64_t CyclesSinceIrq = 0;
  bool ProgressThisBoot = false;

  EmulatorResult Res;
};

} // namespace

EmulatorResult wario::emulate(const MModule &M, const EmulatorOptions &Opts,
                              const std::string &Entry) {
  Machine Mach(M, Opts);
  return Mach.run(Entry);
}
