#include "emu/Emulator.h"

#include "emu/Machine.h"
#include "emu/ThreadedEngine.h"
#include "ir/ConstEval.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <sstream>

using namespace wario;
using namespace wario::emu_detail;

static uint64_t nextEmulatorUid() {
  static std::atomic<uint64_t> Counter{0};
  return ++Counter; // Ids start at 1; 0 marks a never-primed scratch.
}

Emulator::Impl::Impl(const MModule &M)
    : M(M), Uid(nextEmulatorUid()), BaseImage(memmap::MemSize, 0) {
  assert(!M.InitImage.empty() || M.DataEnd == 0);
  std::copy(M.InitImage.begin(), M.InitImage.end(), BaseImage.begin());

  // Pass 1: flatten code, recording function entries and block starts.
  FuncEntry.reserve(M.Functions.size());
  std::vector<std::vector<uint32_t>> BlockStart(M.Functions.size());
  for (size_t FI = 0; FI != M.Functions.size(); ++FI) {
    const MFunction &F = M.Functions[FI];
    FuncEntry.push_back(uint32_t(Code.size()));
    for (int B = 0; B != int(F.Blocks.size()); ++B) {
      BlockStart[FI].push_back(uint32_t(Code.size()));
      for (int I = 0; I != int(F.Blocks[B].Insts.size()); ++I)
        Code.push_back({&F, B, I});
    }
  }

  // Pass 2: decode into the dense program with resolved targets.
  Prog.reserve(Code.size());
  for (size_t FI = 0; FI != M.Functions.size(); ++FI) {
    const MFunction &F = M.Functions[FI];
    for (const MBasicBlock &BB : F.Blocks) {
      for (const MInst &I : BB.Insts) {
        DecodedInst D;
        D.Op = I.Op;
        D.Alu = aluOpcode(I.Op);
        D.Size = I.Size;
        D.Signed = I.Signed;
        D.MovCost = (uint64_t(I.Imm) & 0xFFFF0000u) ? 2 : 1;
        D.Pred = I.Pred;
        D.Cause = I.Cause;
        D.Dst = int16_t(I.Dst);
        for (int S = 0; S != 3; ++S)
          D.Src[S] = int16_t(I.Src[S]);
        D.Slot = I.Slot;
        D.SlotOff = 0;
        if ((I.Op == MOp::LdrSlot || I.Op == MOp::StrSlot ||
             I.Op == MOp::FrameAddr) &&
            I.Slot >= 0 && I.Slot < int(F.Slots.size()))
          D.SlotOff = F.Slots[unsigned(I.Slot)].Offset;
        D.RegList = I.RegList;
        D.Logged = I.Logged;
        D.Imm = uint32_t(I.Imm);
        D.Target[0] = D.Target[1] = BadTarget;
        if (I.Op == MOp::B || I.Op == MOp::CBr) {
          for (int T = 0; T != 2; ++T)
            if (I.Target[T] >= 0)
              D.Target[T] = BlockStart[FI][unsigned(I.Target[T])];
        } else if (I.Op == MOp::Bl) {
          if (I.CalleeIdx >= 0 && I.CalleeIdx < int(M.Functions.size()))
            D.Target[0] = FuncEntry[unsigned(I.CalleeIdx)];
        }
        D.F = &F;
        Prog.push_back(D);
      }
    }
  }

  // Lower the decoded program into the fused-group stream and then into
  // the merged per-pc records the threaded engine dispatches over (one
  // entry per pc; identity groups included).
  Fused = fuseProgram(Prog);
  Fast = buildFastProgram(Prog, Fused);
}

namespace wario::emu_detail {

EmulatorResult Machine::run(const std::string &Entry) {
  const MFunction *Main = P.M.getFunction(Entry);
  if (!Main) {
    EmulatorResult R;
    R.Error = "entry function '" + Entry + "' not found";
    return R;
  }
  MainEntry = P.FuncEntry[unsigned(Main - P.M.Functions.data())];
  CurEntry = Entry;
  prepareScratch();

  // The threaded engine's fused store paths know nothing about the
  // strategy journals, so the rollback strategies always run on the
  // interpreter — every engine setting is trivially byte-identical.
  const EngineKind EK = resolveEngine(Opts.Engine);
  UseThreaded = EK != EngineKind::Interp && !P.Fast.empty() &&
                Strat == CheckpointStrategy::Idempotent;
  UseTrace = UseThreaded && EK == EngineKind::Trace;
  if (Strat == CheckpointStrategy::Differential)
    DiffMark.assign(snapshot::NumPages, 0);

  if (Chain) {
    Chain->clear();
    Chain->Module = &P.M;
    Chain->Entry = Entry;
    Chain->RecordedEO = Opts;
    Chain->PerPage.resize(snapshot::NumPages);
    SnapMark.assign(snapshot::NumPages, 0);
    EffInterval = Sched.IntervalCycles ? Sched.IntervalCycles : 1024;
    AutoTune = Sched.IntervalCycles == 0;
    GrowAt = 2048;
  }

  // Resume decision: the run is byte-identical to a cold run up to
  // the earliest cycle where options can make it diverge from the
  // recorded golden run — the first power failure, the start of a
  // requested trace window, or the stop point — so the governing
  // snapshot at or before that cycle is a safe entry.
  int ResumeIdx = -1;
  if (Plan && Plan->Chain && compatible(*Plan->Chain)) {
    uint64_t Target = UINT64_MAX;
    uint64_t First = Opts.Power.onDuration(0);
    if (First != UINT64_MAX)
      Target = std::min(Target, First);
    if (Opts.TraceWindowHi)
      Target = std::min(Target, Opts.TraceWindowLo);
    if (StopAt)
      Target = std::min(Target, StopAt);
    ResumeIdx = Plan->Chain->governing(Target);
  }
  if (Out) {
    Out->Resumed = ResumeIdx >= 0;
    Out->ResumeSnapshot = ResumeIdx;
  }

  SpliceEnabled = Plan && Plan->AllowTailSplice && StopAt == 0 &&
                  Plan->Chain && compatible(*Plan->Chain) &&
                  Plan->Chain->Final.Ok && !Opts.CollectEventTrace &&
                  Opts.TraceWindowHi == 0 && Opts.InterruptPeriod == 0;
  TrackWrites = Persistent || Chain != nullptr || ResumeIdx >= 0 ||
                SpliceEnabled;
  // Snapshot cadence and splice matching live in the outer loop, so
  // the threaded loop must hand back at every region boundary when
  // either consumer is active.
  ExitOnCommit = Chain != nullptr || SpliceEnabled;

  if (ResumeIdx >= 0) {
    restoreFrom(*Plan->Chain, ResumeIdx);
    ResumeLogEnd = Plan->Chain->Snaps[unsigned(ResumeIdx)].PageLogEnd;
  } else {
    coldStart();
  }
  unsigned StalledBoots = 0;

  while (true) {
    if (Res.TotalCycles >= Opts.MaxCycles) {
      fail("cycle budget exhausted (runaway program?)");
      break;
    }
    if (!Failed && Done)
      break;
    if (Failed)
      break;
    if (StopAt && ActiveSinceBoot >= StopAt) {
      Stopped = true;
      break;
    }
    if (Chain && RegionFresh)
      maybeSnapshot();

    // Power failure?
    uint64_t OnBudget = Opts.Power.onDuration(Res.PowerFailures);
    if (ActiveSinceBoot >= OnBudget) {
      ++Res.PowerFailures;
      if (!ProgressThisBoot) {
        if (++StalledBoots >= Opts.MaxStalledBoots) {
          std::ostringstream OS;
          OS << "no forward progress across " << StalledBoots
             << " consecutive boots (limit " << Opts.MaxStalledBoots
             << "): " << Res.CheckpointsExecuted
             << " checkpoints committed so far, last committed "
                "checkpoint id ";
          if (Res.CheckpointsExecuted)
            OS << (Res.CheckpointsExecuted - 1);
          else
            OS << "none (re-executing from cold start)";
          OS << ", on-period budget " << OnBudget << " cycles";
          fail(OS.str());
          break;
        }
      } else {
        StalledBoots = 0;
      }
      reboot();
      continue;
    }

    // Interrupt delivery at instruction boundaries. The inter-arrival
    // clock restarts when the handler *returns* (resetting before it
    // runs would re-pend immediately whenever the service cost exceeds
    // the period — an interrupt storm that starves user code).
    if (Opts.InterruptPeriod && !Primask &&
        (Pending || CyclesSinceIrq >= Opts.InterruptPeriod)) {
      Pending = false;
      serviceInterrupt();
      CyclesSinceIrq = 0;
      if (Failed)
        break;
      continue;
    }

    // Tail splice: once no further power failures are pending, a
    // region-fresh state that exactly matches a recorded snapshot
    // evolves identically to the golden run from here on.
    if (SpliceEnabled && SpliceAttempts && RegionFresh &&
        OnBudget == UINT64_MAX && trySplice())
      break;

    // Threaded fast path: dispatch fused groups while no event above
    // can fire, keeping a FusedCostLimit margin so no event cycle can
    // land inside a dispatched group (step() handles the boundary
    // approach exactly; see DESIGN.md §7.7).
    if (UseThreaded) {
      uint64_t Limit = fastLimit(OnBudget);
      if (ActiveSinceBoot + FusedCostLimit < Limit) {
        runThreaded(Limit - FusedCostLimit);
        continue;
      }
    }

    step();
  }

  EmulatorResult R = std::move(Res);
  if (Spliced) {
    R.Ok = true;
    if (!Plan->OmitFinalMemoryOnSplice)
      R.FinalMemory = Plan->Chain->Final.FinalMemory;
  } else {
    if (Persistent)
      R.FinalMemory = Scr.Mem; // Copy: the scratch stays reusable.
    else
      R.FinalMemory = std::move(Scr.Mem);
    R.Ok = !Failed;
    if (Failed)
      R.Error = ErrorMsg;
  }
  if (Chain) {
    // Only a completed, successful run yields a usable chain.
    if (R.Ok && !Stopped)
      Chain->Final = R;
    else
      Chain->clear();
  }
  return R;
}

// --- Scratch / page tracking --------------------------------------------------
/// Brings the scratch arrays to the module's initial state: a full
/// (re)initialization when the scratch last served a different
/// Emulator, otherwise an O(touched pages) patch from the base image.
void Machine::prepareScratch() {
  if (Scr.Owner != P.Uid) {
    Scr.Mem.assign(P.BaseImage.begin(), P.BaseImage.end());
    Scr.Access.assign(memmap::MemSize, 0);
    Scr.Epoch = 0;
    Scr.TouchedMark.assign(snapshot::NumPages, 0);
    Scr.Touched.clear();
    Scr.Owner = P.Uid;
    Scr.Trace = emu_detail::TraceState{}; // Superblocks are per-module.
    return;
  }
  for (uint32_t Pg : Scr.Touched) {
    std::copy_n(P.BaseImage.begin() + size_t(Pg) * snapshot::PageSize,
                snapshot::PageSize,
                Scr.Mem.begin() + size_t(Pg) * snapshot::PageSize);
    Scr.TouchedMark[Pg] = 0;
  }
  Scr.Touched.clear();
}

// --- Memory with WAR monitoring -----------------------------------------------
void Machine::recordAccess(uint32_t Addr, unsigned Size, Access Kind,
                           bool Logged) {
  if (!monitored(Addr))
    return;
  // Differential does not rely on idempotent re-execution at all — the
  // page journal rolls every uncommitted write back — so WAR monitoring
  // is meaningless (and off) for it.
  if (Strat == CheckpointStrategy::Differential)
    return;
  const uint32_t WantR = Scr.Epoch << 1;
  bool CountedThisAccess = false;
  for (unsigned I = 0; I != Size; ++I) {
    uint32_t A = Addr + I;
    uint32_t S = Scr.Access[A];
    if ((S >> 1) != Scr.Epoch) {
      // First access of this byte in the region: stamp epoch + kind.
      Scr.Access[A] = uint16_t(WantR | uint32_t(Kind));
      continue;
    }
    if (Kind == Access::Write && Logged) {
      // Undo-logged speculative store: a WAR here is harmless (the log
      // restores the read value at rollback). Record the write so the
      // byte stops looking read-first, but count nothing.
      Scr.Access[A] = uint16_t(S | 1u);
      continue;
    }
    if (Kind == Access::Write && (S & 1u) == 0) {
      // One violation per offending store, not per overlapping byte.
      if (!CountedThisAccess)
        ++Res.WarViolations;
      CountedThisAccess = true;
      if (Res.WarReports.size() < 8) {
        std::ostringstream OS;
        OS << "WAR violation: write to 0x" << std::hex << A
           << " first read in the same idempotent region (function @"
           << Cur().F->Name << ", block "
           << Cur().F->Blocks[Cur().Block].Name << ")";
        Res.WarReports.push_back(OS.str());
      }
      if (Opts.WarIsFatal)
        fail(Res.WarReports.empty() ? "WAR violation"
                                    : Res.WarReports.back());
      // Record as write so each spot reports once.
      Scr.Access[A] = uint16_t(S | 1u);
    }
  }
}

uint32_t Machine::loadMem(uint32_t Addr, unsigned Size, bool SignExtend) {
  if (Addr > memmap::MemSize - Size) {
    fail("load out of bounds");
    return 0;
  }
  recordAccess(Addr, Size, Access::Read);
  uint32_t V = 0;
  for (unsigned I = 0; I != Size; ++I)
    V |= uint32_t(Scr.Mem[Addr + I]) << (8 * I);
  if (SignExtend && Size < 4) {
    uint32_t SignBit = 1u << (Size * 8 - 1);
    if (V & SignBit)
      V |= ~((SignBit << 1) - 1);
  }
  return V;
}

void Machine::storeMem(uint32_t Addr, unsigned Size, uint32_t V,
                       bool Logged) {
  if (Addr == memmap::OutPort) {
    Res.Output.push_back(int32_t(V));
    return;
  }
  if (Addr > memmap::MemSize - Size) {
    fail("store out of bounds");
    return;
  }
  recordAccess(Addr, Size, Access::Write, Logged);
  // Stamp ActiveSinceBoot + 1: the store's own cycles are spent after
  // storeMem returns, so this is the smallest on-period budget whose
  // first power-failure check lands at the instruction boundary right
  // *after* this store (the adversarial crash point).
  if (Opts.CollectEventTrace && monitored(Addr) &&
      (Res.StoreCycles.empty() ||
       Res.StoreCycles.back() != ActiveSinceBoot + 1))
    Res.StoreCycles.push_back(ActiveSinceBoot + 1);
  if (monitored(Addr)) {
    if (Strat == CheckpointStrategy::Differential) {
      diffJournal(Addr, Size);
    } else if (Strat == CheckpointStrategy::Speculative && Logged) {
      // Copy the old value out before it is overwritten; reverse-order
      // replay at rollback then restores the oldest (= last-committed)
      // value no matter how often the address is re-logged.
      uint32_t Old = 0;
      for (unsigned I = 0; I != Size; ++I)
        Old |= uint32_t(Scr.Mem[Addr + I]) << (8 * I);
      SpecLog.push_back({Addr, uint8_t(Size), Old});
      spend(cycles::SpecLogStore);
    }
  }
  noteWrite(Addr, Size);
  for (unsigned I = 0; I != Size; ++I)
    Scr.Mem[Addr + I] = uint8_t(V >> (8 * I));
}

uint32_t Machine::rawLoad(uint32_t Addr) {
  uint32_t V = 0;
  for (unsigned I = 0; I != 4; ++I)
    V |= uint32_t(Scr.Mem[Addr + I]) << (8 * I);
  return V;
}

void Machine::rawStore(uint32_t Addr, uint32_t V) {
  noteWrite(Addr, 4);
  for (unsigned I = 0; I != 4; ++I)
    Scr.Mem[Addr + I] = uint8_t(V >> (8 * I));
}

// --- Snapshots -----------------------------------------------------------------
/// A chain's recorded configuration serves a replay under Opts when
/// every option that influences the pre-divergence execution prefix
/// matches, and every result vector the replay collects was also
/// collected while recording (prefix restoration). The engine choice is
/// deliberately absent: both engines produce identical journals, so
/// chains recorded under one engine replay under the other.
bool Machine::compatible(const SnapshotChain &C) const {
  const EmulatorOptions &R = C.RecordedEO;
  return C.valid() && C.Module == &P.M && C.Entry == CurEntry &&
         R.InterruptPeriod == Opts.InterruptPeriod &&
         R.MaxCycles == Opts.MaxCycles &&
         R.MaxStalledBoots == Opts.MaxStalledBoots &&
         R.WarIsFatal == Opts.WarIsFatal &&
         (!Opts.CollectEventTrace || R.CollectEventTrace) &&
         (!Opts.CollectRegionSizes || R.CollectRegionSizes);
}

void Machine::maybeSnapshot() {
  if (Chain->Snaps.size() >= Sched.MaxSnapshots)
    return;
  if (!Chain->Snaps.empty() &&
      ActiveSinceBoot - Chain->Snaps.back().ActiveCycle < EffInterval)
    return;
  takeSnapshot();
}

void Machine::takeSnapshot() {
  // Journal the pages dirtied since the previous snapshot (ascending
  // page order keeps the chain deterministic).
  std::sort(SnapDirty.begin(), SnapDirty.end());
  for (uint32_t Pg : SnapDirty) {
    SnapMark[Pg] = 0;
    uint32_t Off = uint32_t(Chain->Blob.size());
    const uint8_t *Page = Scr.Mem.data() + size_t(Pg) * snapshot::PageSize;
    Chain->Blob.insert(Chain->Blob.end(), Page, Page + snapshot::PageSize);
    if (Chain->PerPage[Pg].empty())
      Chain->JournaledPages.push_back(Pg);
    Chain->PageLog.push_back({Pg, Off});
    Chain->PerPage[Pg].push_back({uint32_t(Chain->Snaps.size()), Off});
  }
  SnapDirty.clear();

  SnapshotChain::Snap S;
  S.ActiveCycle = ActiveSinceBoot;
  S.TotalCycles = Res.TotalCycles;
  S.Instructions = Res.InstructionsExecuted;
  S.Checkpoints = Res.CheckpointsExecuted;
  S.InterruptsTaken = Res.InterruptsTaken;
  S.WarViolations = Res.WarViolations;
  S.CyclesSinceIrq = CyclesSinceIrq;
  S.RegionStartCycles = RegionStartCycles;
  S.Causes = Res.Causes;
  std::copy(Regs, Regs + NumPRegs, S.Regs);
  S.Pc = Pc;
  S.Primask = Primask;
  S.ProgressThisBoot = ProgressThisBoot;
  S.CommitAligned = Res.CheckpointsExecuted > 0;
  S.OutputLen = uint32_t(Res.Output.size());
  S.RegionSizesLen = uint32_t(Res.RegionSizes.size());
  S.WarReportsLen = uint32_t(Res.WarReports.size());
  S.CommitsLen = uint32_t(Res.Commits.size());
  S.StoreCyclesLen = uint32_t(Res.StoreCycles.size());
  S.PageLogEnd = uint32_t(Chain->PageLog.size());
  Chain->Snaps.push_back(S);

  // Auto-tuned interval: back off geometrically as the recording
  // grows so arbitrarily long programs stay under the snapshot cap.
  if (AutoTune && Chain->Snaps.size() >= GrowAt) {
    EffInterval *= 2;
    GrowAt += 2048;
  }
}

/// Rebuilds the exact machine state of snapshot \p K: counters and
/// registers from the Snap record, result vectors as prefixes of the
/// recorded finals, memory as base image + journal, and an empty WAR
/// live set (snapshots are only taken at region-fresh boundaries).
void Machine::restoreFrom(const SnapshotChain &C, int K) {
  const SnapshotChain::Snap &S = C.Snaps[unsigned(K)];
  const EmulatorResult &F = C.Final;
  Res.TotalCycles = S.TotalCycles;
  Res.InstructionsExecuted = S.Instructions;
  Res.CheckpointsExecuted = S.Checkpoints;
  Res.Causes = S.Causes;
  Res.InterruptsTaken = S.InterruptsTaken;
  Res.WarViolations = S.WarViolations;
  Res.Output.assign(F.Output.begin(), F.Output.begin() + S.OutputLen);
  Res.WarReports.assign(F.WarReports.begin(),
                        F.WarReports.begin() + S.WarReportsLen);
  if (Opts.CollectRegionSizes)
    Res.RegionSizes.assign(F.RegionSizes.begin(),
                           F.RegionSizes.begin() + S.RegionSizesLen);
  if (Opts.CollectEventTrace) {
    Res.Commits.assign(F.Commits.begin(), F.Commits.begin() + S.CommitsLen);
    Res.StoreCycles.assign(F.StoreCycles.begin(),
                           F.StoreCycles.begin() + S.StoreCyclesLen);
  }
  std::copy(S.Regs, S.Regs + NumPRegs, Regs);
  Pc = S.Pc;
  Primask = S.Primask;
  Pending = false;
  ActiveSinceBoot = S.ActiveCycle;
  CyclesSinceIrq = S.CyclesSinceIrq;
  RegionStartCycles = S.RegionStartCycles;
  ProgressThisBoot = S.ProgressThisBoot;
  for (uint32_t Pg : C.JournaledPages) {
    const uint8_t *Src = C.pageAt(Pg, K);
    if (!Src)
      continue;
    std::copy_n(Src, snapshot::PageSize,
                Scr.Mem.begin() + size_t(Pg) * snapshot::PageSize);
    touchPage(Pg);
  }
  clearFirstAccess();
  clearStrategyJournals(); // Snapshots are taken at region-fresh points.
  RegionFresh = true;
}

/// Attempts to end the run by splicing the recorded golden tail: at a
/// region-fresh boundary with commit count N, an exact register +
/// memory match against the commit-aligned snapshot with N commits
/// means the remainder of this run is, by determinism, identical to
/// the remainder of the golden run — so its counters, output, and
/// return value can be adopted wholesale (as deltas).
bool Machine::trySplice() {
  const SnapshotChain &C = *Plan->Chain;
  auto It = std::lower_bound(
      C.Snaps.begin(), C.Snaps.end(), Res.CheckpointsExecuted,
      [](const SnapshotChain::Snap &S, uint64_t N) {
        return S.Checkpoints < N;
      });
  if (It == C.Snaps.end() || It->Checkpoints != Res.CheckpointsExecuted ||
      !It->CommitAligned)
    return false;
  int K = int(It - C.Snaps.begin());
  const SnapshotChain::Snap &S = *It;

  // Splicing must not mask a cycle-budget exhaustion the real run
  // would hit. The synthesized total equals the real run's total, so
  // one failed check disqualifies every later candidate too.
  uint64_t TailCycles = C.Final.TotalCycles - S.TotalCycles;
  if (Res.TotalCycles + TailCycles >= Opts.MaxCycles) {
    SpliceAttempts = 0;
    return false;
  }

  if (!std::equal(S.Regs, S.Regs + NumPRegs, Regs) || Pc != S.Pc ||
      Primask != S.Primask) {
    --SpliceAttempts;
    return false;
  }
  // Memory: pages this run wrote (or restored) are compared against
  // the golden image at K; pages only the *golden* run dirtied in
  // (resume, K] must still equal the base image here. Everything else
  // equals the base image on both sides.
  for (uint32_t Pg : Scr.Touched) {
    const uint8_t *G = C.pageAt(Pg, K);
    if (!G)
      G = P.BaseImage.data() + size_t(Pg) * snapshot::PageSize;
    if (std::memcmp(Scr.Mem.data() + size_t(Pg) * snapshot::PageSize, G,
                    snapshot::PageSize) != 0) {
      --SpliceAttempts;
      return false;
    }
  }
  for (uint32_t LI = ResumeLogEnd; LI != S.PageLogEnd; ++LI) {
    uint32_t Pg = C.PageLog[LI].Page;
    if (Scr.TouchedMark[Pg])
      continue; // Compared above.
    const uint8_t *G = C.pageAt(Pg, K);
    if (G &&
        std::memcmp(P.BaseImage.data() + size_t(Pg) * snapshot::PageSize,
                    G, snapshot::PageSize) != 0) {
      --SpliceAttempts;
      return false;
    }
  }

  // Exact match: adopt the golden tail.
  const EmulatorResult &F = C.Final;
  Res.TotalCycles += TailCycles;
  Res.InstructionsExecuted += F.InstructionsExecuted - S.Instructions;
  Res.CheckpointsExecuted += F.CheckpointsExecuted - S.Checkpoints;
  Res.Causes.MiddleEndWar += F.Causes.MiddleEndWar - S.Causes.MiddleEndWar;
  Res.Causes.BackendSpill += F.Causes.BackendSpill - S.Causes.BackendSpill;
  Res.Causes.FunctionEntry += F.Causes.FunctionEntry - S.Causes.FunctionEntry;
  Res.Causes.FunctionExit += F.Causes.FunctionExit - S.Causes.FunctionExit;
  Res.InterruptsTaken += F.InterruptsTaken - S.InterruptsTaken;
  Res.WarViolations += F.WarViolations - S.WarViolations;
  Res.Output.insert(Res.Output.end(), F.Output.begin() + S.OutputLen,
                    F.Output.end());
  if (Opts.CollectRegionSizes)
    Res.RegionSizes.insert(Res.RegionSizes.end(),
                           F.RegionSizes.begin() + S.RegionSizesLen,
                           F.RegionSizes.end());
  for (size_t I = S.WarReportsLen;
       I < F.WarReports.size() && Res.WarReports.size() < 8; ++I)
    Res.WarReports.push_back(F.WarReports[I]);
  Res.ReturnValue = F.ReturnValue;
  Spliced = true;
  if (Out) {
    Out->Spliced = true;
    Out->SpliceSnapshot = K;
  }
  return true;
}

// --- Power / checkpoints --------------------------------------------------------
/// Strategy rollback at a reboot boundary: undoes every NVM write since
/// the last committed checkpoint, then clears the journals. Runs before
/// the register restore (the firmware repairs memory first, then
/// resumes), in both reboot paths — uncommitted writes exist whether or
/// not a checkpoint was ever committed.
void Machine::rollbackUncommitted() {
  if (Strat == CheckpointStrategy::Differential) {
    // Negative control: drop the journal without restoring any page, so
    // every uncommitted write survives the reboot.
    size_t N = P.M.DiffFullRollback ? DiffPages.size() : 0;
    for (size_t J = 0; J != N; ++J) {
      uint32_t Pg = DiffPages[J];
      std::copy_n(DiffBlob.begin() + J * snapshot::PageSize,
                  snapshot::PageSize,
                  Scr.Mem.begin() + size_t(Pg) * snapshot::PageSize);
      noteWrite(uint32_t(Pg << snapshot::PageShift), snapshot::PageSize);
      spend(cycles::DiffPageCommit);
    }
  } else if (Strat == CheckpointStrategy::Speculative) {
    for (size_t J = SpecLog.size(); J-- != 0;) {
      const SpecEntry &E = SpecLog[J];
      for (unsigned I = 0; I != E.Size; ++I)
        Scr.Mem[E.Addr + I] = uint8_t(E.Old >> (8 * I));
      noteWrite(E.Addr, E.Size);
      spend(cycles::SpecUndo);
    }
  }
  clearStrategyJournals();
}

void Machine::coldStart() {
  for (uint32_t &R : Regs)
    R = 0;
  Regs[SP] = memmap::StackTop;
  Regs[LR] = LrSentinel;
  Pc = CodeAddrBit | MainEntry;
  Primask = false;
  Pending = false;
  clearFirstAccess();
  clearStrategyJournals();
  RegionStartCycles = Res.TotalCycles;
  ActiveSinceBoot = 0;
  ProgressThisBoot = false;
  spend(cycles::Boot);
  CyclesSinceIrq = 0; // The interrupt timer restarts on power-up.
  RegionFresh = true;
}

void Machine::reboot() {
  // Volatile state is lost; PRIMASK resets; NVM persists.
  ActiveSinceBoot = 0;
  ProgressThisBoot = false;
  Primask = false;
  Pending = false;
  spend(cycles::Boot);
  CyclesSinceIrq = 0; // The interrupt timer restarts on power-up.
  rollbackUncommitted();
  // Restore the last committed checkpoint, if any.
  uint32_t Active = rawLoad(CkptActiveWord);
  if (Active == 0) {
    // Never checkpointed: restart from scratch (registers only; any
    // NVM mutations persist, which is exactly what the WAR monitor
    // checks for).
    for (uint32_t &R : Regs)
      R = 0;
    Regs[SP] = memmap::StackTop;
    Regs[LR] = LrSentinel;
    Pc = CodeAddrBit | MainEntry;
    clearFirstAccess();
    RegionStartCycles = Res.TotalCycles;
    RegionFresh = true;
    return;
  }
  uint32_t Buf = (Active == 1) ? CkptBuf0 : CkptBuf1;
  for (int R = 0; R != 15; ++R)
    Regs[R] = rawLoad(Buf + 4 * unsigned(R));
  Pc = rawLoad(Buf + 4 * 15);
  spend(cycles::Restore);
  // Re-execution starts a fresh idempotent region attempt.
  clearFirstAccess();
  RegionStartCycles = Res.TotalCycles;
  RegionFresh = true;
}

void Machine::commitCheckpoint(CheckpointCause Cause) {
  uint64_t CommitBegin = ActiveSinceBoot;
  uint32_t Active = rawLoad(CkptActiveWord);
  uint32_t Buf = (Active == 1) ? CkptBuf1 : CkptBuf0;
  for (int R = 0; R != 15; ++R)
    rawStore(Buf + 4 * unsigned(R), Regs[R]);
  rawStore(Buf + 4 * 15, Pc); // Resume after this instruction.
  rawStore(CkptActiveWord, (Active == 1) ? 2 : 1);
  spend(cycles::Checkpoint);
  if (Strat == CheckpointStrategy::Differential) {
    // Commit only what the region dirtied: one flush per journal page
    // on top of the register save, then the journal resets.
    spend(uint64_t(DiffPages.size()) * cycles::DiffPageCommit);
  }
  clearStrategyJournals();

  ++Res.CheckpointsExecuted;
  switch (Cause) {
  case CheckpointCause::MiddleEndWar: ++Res.Causes.MiddleEndWar; break;
  case CheckpointCause::BackendSpill: ++Res.Causes.BackendSpill; break;
  case CheckpointCause::FunctionEntry: ++Res.Causes.FunctionEntry; break;
  case CheckpointCause::FunctionExit: ++Res.Causes.FunctionExit; break;
  }
  if (Opts.CollectRegionSizes)
    Res.RegionSizes.push_back(Res.TotalCycles - RegionStartCycles);
  if (Opts.CollectEventTrace)
    Res.Commits.push_back({CommitBegin, ActiveSinceBoot, Cause});
  RegionStartCycles = Res.TotalCycles;
  clearFirstAccess();
  ProgressThisBoot = true;
  RegionFresh = true;
}

void Machine::serviceInterrupt() {
  ++Res.InterruptsTaken;
  // Hardware-assisted entry checkpoint (see DESIGN.md): closes the
  // region so the exception stacking below cannot complete a WAR.
  commitCheckpoint(CheckpointCause::FunctionEntry);
  // Exception stacking: {r0-r3, r12, lr, pc, xpsr} below SP.
  uint32_t SPv = Regs[SP] - 32;
  static const int Stacked[] = {R0, R1, R2, R3, R12, LR};
  for (int I = 0; I != 6; ++I)
    storeMem(SPv + 4 * unsigned(I), 4, Regs[Stacked[I]]);
  storeMem(SPv + 24, 4, Pc);
  storeMem(SPv + 28, 4, 0x01000000); // xPSR.
  // Handler body is modeled as a fixed-cost register-only routine.
  // Unstacking (reads).
  for (int I = 0; I != 6; ++I)
    Regs[Stacked[I]] = loadMem(SPv + 4 * unsigned(I), 4, false);
  (void)loadMem(SPv + 24, 4, false);
  (void)loadMem(SPv + 28, 4, false);
  spend(cycles::IsrOverhead);
  RegionFresh = false; // The stacking touched the fresh region.
}

// --- Interpreter step ------------------------------------------------------------
void Machine::step() {
  const DecodedInst &I = P.Prog[Pc & ~CodeAddrBit];
  RegionFresh = false;
  ++Res.InstructionsExecuted;
  if (Opts.TraceWindowHi && ActiveSinceBoot >= Opts.TraceWindowLo &&
      ActiveSinceBoot <= Opts.TraceWindowHi) {
    const CodeRef &C = Cur();
    std::ostringstream OS;
    OS << "cycle " << ActiveSinceBoot << ": " << C.F->Name << "/"
       << C.F->Blocks[C.Block].Name << " " << mopName(I.Op);
    Res.Window.push_back(OS.str());
  }
  uint32_t NextPc = Pc + 1;

  switch (I.Op) {
  case MOp::MovImm:
    reg(I.Dst) = I.Imm;
    spend(I.MovCost);
    break;
  case MOp::MovGlobal:
    fail("unlinked MovGlobal reached the emulator");
    return;
  case MOp::Mov:
    reg(I.Dst) = reg(I.Src[0]);
    spend(1);
    break;
  case MOp::Add: case MOp::Sub: case MOp::Mul: case MOp::And:
  case MOp::Orr: case MOp::Eor: case MOp::Lsl: case MOp::Lsr:
  case MOp::Asr:
    reg(I.Dst) = *constEvalBinary(I.Alu, reg(I.Src[0]), reg(I.Src[1]));
    spend(1);
    break;
  case MOp::UDiv:
  case MOp::SDiv: {
    auto V = constEvalBinary(I.Op == MOp::UDiv ? Opcode::UDiv : Opcode::SDiv,
                             reg(I.Src[0]), reg(I.Src[1]));
    if (!V) {
      fail("division by zero");
      return;
    }
    reg(I.Dst) = *V;
    spend(6);
    break;
  }
  case MOp::AddImm:
    reg(I.Dst) = reg(I.Src[0]) + I.Imm;
    spend(1);
    break;
  case MOp::SetCond:
    reg(I.Dst) = constEvalPred(I.Pred, reg(I.Src[0]), reg(I.Src[1])) ? 1 : 0;
    spend(2);
    break;
  case MOp::SelectR:
    reg(I.Dst) = reg(I.Src[0]) != 0 ? reg(I.Src[1]) : reg(I.Src[2]);
    spend(2);
    break;
  case MOp::Ldr:
    reg(I.Dst) = loadMem(reg(I.Src[0]) + I.Imm, I.Size, I.Signed);
    spend(2);
    break;
  case MOp::Str:
    storeMem(reg(I.Src[1]) + I.Imm, I.Size, reg(I.Src[0]), I.Logged);
    spend(2);
    break;
  case MOp::LdrSlot:
    reg(I.Dst) = loadMem(Regs[SP] + uint32_t(I.SlotOff), 4, false);
    spend(2);
    break;
  case MOp::StrSlot:
    storeMem(Regs[SP] + uint32_t(I.SlotOff), 4, reg(I.Src[0]));
    spend(2);
    break;
  case MOp::FrameAddr:
    reg(I.Dst) = Regs[SP] + uint32_t(I.SlotOff);
    spend(1);
    break;
  case MOp::Bl:
    if (I.Target[0] == BadTarget) {
      fail("call through an unlinked or bad function index");
      return;
    }
    Regs[LR] = NextPc;
    Pc = CodeAddrBit | I.Target[0];
    spend(1 + cycles::PipelineRefill);
    return;
  case MOp::B:
    Pc = CodeAddrBit | I.Target[0];
    spend(1 + cycles::PipelineRefill);
    return;
  case MOp::CBr:
    Pc = CodeAddrBit | I.Target[reg(I.Src[0]) != 0 ? 0 : 1];
    spend(1 + cycles::PipelineRefill);
    return;
  case MOp::Ret:
    if (Regs[LR] == LrSentinel) {
      Done = true;
      Res.ReturnValue = int32_t(Regs[R0]);
      spend(1 + cycles::PipelineRefill);
      return;
    }
    if (!(Regs[LR] & CodeAddrBit)) {
      fail("return to a non-code address (corrupt lr)");
      return;
    }
    Pc = Regs[LR];
    spend(1 + cycles::PipelineRefill);
    return;
  case MOp::Push: {
    unsigned N = unsigned(std::popcount(unsigned(I.RegList)));
    uint32_t Base = Regs[SP] - 4 * N;
    unsigned Idx = 0;
    for (int R = 0; R != NumPRegs; ++R)
      if (I.RegList & (1u << R))
        storeMem(Base + 4 * Idx++, 4, Regs[R]);
    Regs[SP] = Base;
    spend(1 + N);
    break;
  }
  case MOp::Pop:
  case MOp::PopLoads: {
    unsigned N = unsigned(std::popcount(unsigned(I.RegList)));
    unsigned Idx = 0;
    for (int R = 0; R != NumPRegs; ++R)
      if (I.RegList & (1u << R))
        Regs[R] = loadMem(Regs[SP] + 4 * Idx++, 4, false);
    if (I.Op == MOp::Pop)
      Regs[SP] += 4 * N;
    spend(1 + N);
    break;
  }
  case MOp::SpAdjust:
    Regs[SP] += I.Imm;
    spend(1);
    break;
  case MOp::Checkpoint:
    // Commit with the resume point after this instruction.
    Pc = NextPc;
    commitCheckpoint(I.Cause);
    return;
  case MOp::Out:
    Res.Output.push_back(int32_t(reg(I.Src[0])));
    spend(2);
    break;
  case MOp::IntMask:
    Primask = true;
    spend(1);
    break;
  case MOp::IntUnmask:
    Primask = false;
    spend(1);
    break;
  case MOp::Nop:
    spend(1);
    break;
  case MOp::CallPseudo:
  case MOp::ArgGet:
    fail("unexpanded pseudo instruction reached the emulator");
    return;
  }
  Pc = NextPc;
}

} // namespace wario::emu_detail

Emulator::Emulator(const MModule &M) : I(std::make_unique<Impl>(M)) {}
Emulator::~Emulator() = default;

const MModule &Emulator::module() const { return I->M; }

EmulatorResult Emulator::run(const EmulatorOptions &Opts,
                             const std::string &Entry,
                             EmulatorScratch *Scratch,
                             EngineStats *Stats) const {
  if (Scratch) {
    Machine Mach(*I, Opts, *Scratch, /*Persistent=*/true);
    Mach.setStats(Stats);
    return Mach.run(Entry);
  }
  EmulatorScratch Local;
  Machine Mach(*I, Opts, Local, /*Persistent=*/false);
  Mach.setStats(Stats);
  return Mach.run(Entry);
}

EmulatorResult Emulator::record(const EmulatorOptions &Opts,
                                const SnapshotSchedule &Sched,
                                SnapshotChain &Chain,
                                const std::string &Entry,
                                EmulatorScratch *Scratch,
                                EngineStats *Stats) const {
  if (!Opts.Power.isContinuous() || Opts.TraceWindowHi != 0) {
    // Snapshots index the continuous-power timeline; anything else
    // records nothing but still runs correctly.
    Chain.clear();
    return run(Opts, Entry, Scratch, Stats);
  }
  if (Scratch) {
    Machine Mach(*I, Opts, *Scratch, /*Persistent=*/true);
    Mach.enableRecord(&Chain, Sched);
    Mach.setStats(Stats);
    return Mach.run(Entry);
  }
  EmulatorScratch Local;
  Machine Mach(*I, Opts, Local, /*Persistent=*/false);
  Mach.enableRecord(&Chain, Sched);
  Mach.setStats(Stats);
  return Mach.run(Entry);
}

EmulatorResult Emulator::replay(const EmulatorOptions &Opts,
                                const ReplayPlan &Plan,
                                const std::string &Entry,
                                EmulatorScratch *Scratch,
                                ReplayOutcome *Outcome,
                                EngineStats *Stats) const {
  if (Outcome)
    *Outcome = ReplayOutcome{};
  if (Scratch) {
    Machine Mach(*I, Opts, *Scratch, /*Persistent=*/true);
    Mach.enableReplay(Plan, Outcome);
    Mach.setStats(Stats);
    return Mach.run(Entry);
  }
  EmulatorScratch Local;
  Machine Mach(*I, Opts, Local, /*Persistent=*/false);
  Mach.enableReplay(Plan, Outcome);
  Mach.setStats(Stats);
  return Mach.run(Entry);
}

EmulatorResult wario::emulate(const MModule &M, const EmulatorOptions &Opts,
                              const std::string &Entry) {
  Emulator E(M);
  return E.run(Opts, Entry);
}
