#include "emu/Emulator.h"

#include "ir/ConstEval.h"

#include <algorithm>

#include <bit>
#include <sstream>

using namespace wario;

namespace {

/// Layout inside the reserved checkpoint range (the public extent lives
/// in Emulator.h as ckpt::Base/ckpt::End so the fault injector can mask
/// it out of differential end-state comparisons).
constexpr uint32_t CkptBase = ckpt::Base;
constexpr uint32_t CkptActiveWord = CkptBase;       // 0 or 1.
constexpr uint32_t CkptBuf0 = CkptBase + 0x10;      // 17 words.
constexpr uint32_t CkptBuf1 = CkptBase + 0x60;
constexpr uint32_t CkptEnd = ckpt::End;
static_assert(CkptBuf1 + 17 * 4 <= CkptEnd);
constexpr uint32_t CodeAddrBit = 0x80000000u;
constexpr uint32_t LrSentinel = 0xFFFFFFFEu;
constexpr uint32_t BadTarget = 0xFFFFFFFFu;

/// A position in the flattened code image (kept alongside the decoded
/// program for diagnostics: WAR reports name the function and block).
struct CodeRef {
  const MFunction *F;
  int Block;
  int Index;
};

/// ALU opcode for a binary MOp (replaces the per-step MOp->Opcode map).
Opcode aluOpcode(MOp Op) {
  switch (Op) {
  case MOp::Add: return Opcode::Add;
  case MOp::Sub: return Opcode::Sub;
  case MOp::Mul: return Opcode::Mul;
  case MOp::And: return Opcode::And;
  case MOp::Orr: return Opcode::Or;
  case MOp::Eor: return Opcode::Xor;
  case MOp::Lsl: return Opcode::Shl;
  case MOp::Lsr: return Opcode::LShr;
  case MOp::Asr: return Opcode::AShr;
  default: return Opcode::Add; // Unused for non-ALU ops.
  }
}

/// One pre-decoded instruction: every per-step map lookup of the naive
/// interpreter (function entry, block start, MOp->Opcode) is resolved
/// into this dense form once, before execution starts. Branch and call
/// targets are absolute indices into the decoded program.
struct DecodedInst {
  MOp Op;
  Opcode Alu;         ///< Pre-mapped ALU opcode for binary ops.
  uint8_t Size;
  bool Signed;
  uint8_t MovCost;    ///< Pre-computed MovImm cycle cost (1 or 2).
  CmpPred Pred;
  CheckpointCause Cause;
  int16_t Dst;
  int16_t Src[3];
  int32_t Slot;
  uint16_t RegList;
  uint32_t Imm;       ///< Truncated immediate (all uses are 32-bit).
  uint32_t Target[2]; ///< Branch targets / Bl callee entry, pre-resolved.
  const MFunction *F; ///< Owning function (frame-slot addressing).
};

class Machine {
public:
  Machine(const MModule &M, const EmulatorOptions &Opts)
      : M(M), Opts(Opts), Mem(memmap::MemSize, 0),
        AccessEpoch(memmap::MemSize, 0), AccessKind(memmap::MemSize, 0) {
    assert(!M.InitImage.empty() || M.DataEnd == 0);
    std::copy(M.InitImage.begin(), M.InitImage.end(), Mem.begin());

    // Pass 1: flatten code, recording function entries and block starts.
    FuncEntry.reserve(M.Functions.size());
    std::vector<std::vector<uint32_t>> BlockStart(M.Functions.size());
    for (size_t FI = 0; FI != M.Functions.size(); ++FI) {
      const MFunction &F = M.Functions[FI];
      FuncEntry.push_back(uint32_t(Code.size()));
      for (int B = 0; B != int(F.Blocks.size()); ++B) {
        BlockStart[FI].push_back(uint32_t(Code.size()));
        for (int I = 0; I != int(F.Blocks[B].Insts.size()); ++I)
          Code.push_back({&F, B, I});
      }
    }

    // Pass 2: decode into the dense program with resolved targets.
    Prog.reserve(Code.size());
    for (size_t FI = 0; FI != M.Functions.size(); ++FI) {
      const MFunction &F = M.Functions[FI];
      for (const MBasicBlock &BB : F.Blocks) {
        for (const MInst &I : BB.Insts) {
          DecodedInst D;
          D.Op = I.Op;
          D.Alu = aluOpcode(I.Op);
          D.Size = I.Size;
          D.Signed = I.Signed;
          D.MovCost = (uint64_t(I.Imm) & 0xFFFF0000u) ? 2 : 1;
          D.Pred = I.Pred;
          D.Cause = I.Cause;
          D.Dst = int16_t(I.Dst);
          for (int S = 0; S != 3; ++S)
            D.Src[S] = int16_t(I.Src[S]);
          D.Slot = I.Slot;
          D.RegList = I.RegList;
          D.Imm = uint32_t(I.Imm);
          D.Target[0] = D.Target[1] = BadTarget;
          if (I.Op == MOp::B || I.Op == MOp::CBr) {
            for (int T = 0; T != 2; ++T)
              if (I.Target[T] >= 0)
                D.Target[T] = BlockStart[FI][unsigned(I.Target[T])];
          } else if (I.Op == MOp::Bl) {
            if (I.CalleeIdx >= 0 && I.CalleeIdx < int(M.Functions.size()))
              D.Target[0] = FuncEntry[unsigned(I.CalleeIdx)];
          }
          D.F = &F;
          Prog.push_back(D);
        }
      }
    }
  }

  EmulatorResult run(const std::string &Entry) {
    EmulatorResult R;
    const MFunction *Main = M.getFunction(Entry);
    if (!Main) {
      R.Error = "entry function '" + Entry + "' not found";
      return R;
    }
    MainEntry = FuncEntry[unsigned(Main - M.Functions.data())];

    coldStart();
    unsigned StalledBoots = 0;

    while (true) {
      if (Res.TotalCycles >= Opts.MaxCycles) {
        fail("cycle budget exhausted (runaway program?)");
        break;
      }
      if (!Failed && Done)
        break;
      if (Failed)
        break;

      // Power failure?
      uint64_t OnBudget = Opts.Power.onDuration(Res.PowerFailures);
      if (ActiveSinceBoot >= OnBudget) {
        ++Res.PowerFailures;
        if (!ProgressThisBoot) {
          if (++StalledBoots >= Opts.MaxStalledBoots) {
            std::ostringstream OS;
            OS << "no forward progress across " << StalledBoots
               << " consecutive boots (limit " << Opts.MaxStalledBoots
               << "): " << Res.CheckpointsExecuted
               << " checkpoints committed so far, last committed "
                  "checkpoint id ";
            if (Res.CheckpointsExecuted)
              OS << (Res.CheckpointsExecuted - 1);
            else
              OS << "none (re-executing from cold start)";
            OS << ", on-period budget " << OnBudget << " cycles";
            fail(OS.str());
            break;
          }
        } else {
          StalledBoots = 0;
        }
        reboot();
        continue;
      }

      // Interrupt delivery at instruction boundaries. The inter-arrival
      // clock restarts when the handler *returns* (resetting before it
      // runs would re-pend immediately whenever the service cost exceeds
      // the period — an interrupt storm that starves user code).
      if (Opts.InterruptPeriod && !Primask &&
          (Pending || CyclesSinceIrq >= Opts.InterruptPeriod)) {
        Pending = false;
        serviceInterrupt();
        CyclesSinceIrq = 0;
        if (Failed)
          break;
        continue;
      }

      step();
    }

    R = std::move(Res);
    R.FinalMemory = std::move(Mem);
    R.Ok = !Failed;
    if (Failed)
      R.Error = ErrorMsg;
    return R;
  }

private:
  // --- Helpers ---------------------------------------------------------------
  void fail(std::string Msg) {
    if (!Failed) {
      Failed = true;
      ErrorMsg = std::move(Msg);
    }
  }

  void spend(uint64_t C) {
    Res.TotalCycles += C;
    ActiveSinceBoot += C;
    CyclesSinceIrq += C;
  }

  uint32_t &reg(int R) {
    assert(R >= 0 && R < NumPRegs);
    return Regs[R];
  }

  // --- Memory with WAR monitoring ----------------------------------------------
  enum class Access : uint8_t { Read, Write };

  bool monitored(uint32_t Addr) const {
    if (Addr >= CkptBase && Addr < CkptEnd)
      return false; // Checkpoint buffers are incorruptible by design.
    return true;
  }

  /// Starts a fresh idempotent region: previous first-access records are
  /// invalidated by bumping the epoch instead of clearing a map, so a
  /// region reset is O(1).
  void clearFirstAccess() {
    if (++Epoch == 0) { // Epoch wrapped: lazily-stale entries are invalid.
      std::fill(AccessEpoch.begin(), AccessEpoch.end(), 0u);
      Epoch = 1;
    }
  }

  void recordAccess(uint32_t Addr, unsigned Size, Access Kind) {
    if (!monitored(Addr))
      return;
    bool CountedThisAccess = false;
    for (unsigned I = 0; I != Size; ++I) {
      uint32_t A = Addr + I;
      if (AccessEpoch[A] != Epoch) {
        AccessEpoch[A] = Epoch;
        AccessKind[A] = uint8_t(Kind);
        continue;
      }
      if (Kind == Access::Write && Access(AccessKind[A]) == Access::Read) {
        // One violation per offending store, not per overlapping byte.
        if (!CountedThisAccess)
          ++Res.WarViolations;
        CountedThisAccess = true;
        if (Res.WarReports.size() < 8) {
          std::ostringstream OS;
          OS << "WAR violation: write to 0x" << std::hex << A
             << " first read in the same idempotent region (function @"
             << Cur().F->Name << ", block "
             << Cur().F->Blocks[Cur().Block].Name << ")";
          Res.WarReports.push_back(OS.str());
        }
        if (Opts.WarIsFatal)
          fail(Res.WarReports.empty() ? "WAR violation"
                                      : Res.WarReports.back());
        // Record as write so each spot reports once.
        AccessKind[A] = uint8_t(Access::Write);
      }
    }
  }

  uint32_t loadMem(uint32_t Addr, unsigned Size, bool SignExtend) {
    if (Addr > memmap::MemSize - Size) {
      fail("load out of bounds");
      return 0;
    }
    recordAccess(Addr, Size, Access::Read);
    uint32_t V = 0;
    for (unsigned I = 0; I != Size; ++I)
      V |= uint32_t(Mem[Addr + I]) << (8 * I);
    if (SignExtend && Size < 4) {
      uint32_t SignBit = 1u << (Size * 8 - 1);
      if (V & SignBit)
        V |= ~((SignBit << 1) - 1);
    }
    return V;
  }

  void storeMem(uint32_t Addr, unsigned Size, uint32_t V) {
    if (Addr == memmap::OutPort) {
      Res.Output.push_back(int32_t(V));
      return;
    }
    if (Addr > memmap::MemSize - Size) {
      fail("store out of bounds");
      return;
    }
    recordAccess(Addr, Size, Access::Write);
    // Stamp ActiveSinceBoot + 1: the store's own cycles are spent after
    // storeMem returns, so this is the smallest on-period budget whose
    // first power-failure check lands at the instruction boundary right
    // *after* this store (the adversarial crash point).
    if (Opts.CollectEventTrace && monitored(Addr) &&
        (Res.StoreCycles.empty() ||
         Res.StoreCycles.back() != ActiveSinceBoot + 1))
      Res.StoreCycles.push_back(ActiveSinceBoot + 1);
    for (unsigned I = 0; I != Size; ++I)
      Mem[Addr + I] = uint8_t(V >> (8 * I));
  }

  /// Raw word access bypassing the monitor (checkpoint machinery).
  uint32_t rawLoad(uint32_t Addr) {
    uint32_t V = 0;
    for (unsigned I = 0; I != 4; ++I)
      V |= uint32_t(Mem[Addr + I]) << (8 * I);
    return V;
  }
  void rawStore(uint32_t Addr, uint32_t V) {
    for (unsigned I = 0; I != 4; ++I)
      Mem[Addr + I] = uint8_t(V >> (8 * I));
  }

  // --- Power / checkpoints -------------------------------------------------------
  void coldStart() {
    for (uint32_t &R : Regs)
      R = 0;
    Regs[SP] = memmap::StackTop;
    Regs[LR] = LrSentinel;
    Pc = CodeAddrBit | MainEntry;
    Primask = false;
    Pending = false;
    clearFirstAccess();
    RegionStartCycles = Res.TotalCycles;
    ActiveSinceBoot = 0;
    ProgressThisBoot = false;
    spend(cycles::Boot);
    CyclesSinceIrq = 0; // The interrupt timer restarts on power-up.
  }

  void reboot() {
    // Volatile state is lost; PRIMASK resets; NVM persists.
    ActiveSinceBoot = 0;
    ProgressThisBoot = false;
    Primask = false;
    Pending = false;
    spend(cycles::Boot);
    CyclesSinceIrq = 0; // The interrupt timer restarts on power-up.
    // Restore the last committed checkpoint, if any.
    uint32_t Active = rawLoad(CkptActiveWord);
    if (Active == 0) {
      // Never checkpointed: restart from scratch (registers only; any
      // NVM mutations persist, which is exactly what the WAR monitor
      // checks for).
      for (uint32_t &R : Regs)
        R = 0;
      Regs[SP] = memmap::StackTop;
      Regs[LR] = LrSentinel;
      Pc = CodeAddrBit | MainEntry;
      clearFirstAccess();
      RegionStartCycles = Res.TotalCycles;
      return;
    }
    uint32_t Buf = (Active == 1) ? CkptBuf0 : CkptBuf1;
    for (int R = 0; R != 15; ++R)
      Regs[R] = rawLoad(Buf + 4 * unsigned(R));
    Pc = rawLoad(Buf + 4 * 15);
    spend(cycles::Restore);
    // Re-execution starts a fresh idempotent region attempt.
    clearFirstAccess();
    RegionStartCycles = Res.TotalCycles;
  }

  void commitCheckpoint(CheckpointCause Cause) {
    uint64_t CommitBegin = ActiveSinceBoot;
    uint32_t Active = rawLoad(CkptActiveWord);
    uint32_t Buf = (Active == 1) ? CkptBuf1 : CkptBuf0;
    for (int R = 0; R != 15; ++R)
      rawStore(Buf + 4 * unsigned(R), Regs[R]);
    rawStore(Buf + 4 * 15, Pc); // Resume after this instruction.
    rawStore(CkptActiveWord, (Active == 1) ? 2 : 1);
    spend(cycles::Checkpoint);

    ++Res.CheckpointsExecuted;
    switch (Cause) {
    case CheckpointCause::MiddleEndWar: ++Res.Causes.MiddleEndWar; break;
    case CheckpointCause::BackendSpill: ++Res.Causes.BackendSpill; break;
    case CheckpointCause::FunctionEntry: ++Res.Causes.FunctionEntry; break;
    case CheckpointCause::FunctionExit: ++Res.Causes.FunctionExit; break;
    }
    if (Opts.CollectRegionSizes)
      Res.RegionSizes.push_back(Res.TotalCycles - RegionStartCycles);
    if (Opts.CollectEventTrace)
      Res.Commits.push_back({CommitBegin, ActiveSinceBoot, Cause});
    RegionStartCycles = Res.TotalCycles;
    clearFirstAccess();
    ProgressThisBoot = true;
  }

  void serviceInterrupt() {
    ++Res.InterruptsTaken;
    // Hardware-assisted entry checkpoint (see DESIGN.md): closes the
    // region so the exception stacking below cannot complete a WAR.
    commitCheckpoint(CheckpointCause::FunctionEntry);
    // Exception stacking: {r0-r3, r12, lr, pc, xpsr} below SP.
    uint32_t SPv = Regs[SP] - 32;
    static const int Stacked[] = {R0, R1, R2, R3, R12, LR};
    for (int I = 0; I != 6; ++I)
      storeMem(SPv + 4 * unsigned(I), 4, Regs[Stacked[I]]);
    storeMem(SPv + 24, 4, Pc);
    storeMem(SPv + 28, 4, 0x01000000); // xPSR.
    // Handler body is modeled as a fixed-cost register-only routine.
    // Unstacking (reads).
    for (int I = 0; I != 6; ++I)
      Regs[Stacked[I]] = loadMem(SPv + 4 * unsigned(I), 4, false);
    (void)loadMem(SPv + 24, 4, false);
    (void)loadMem(SPv + 28, 4, false);
    spend(cycles::IsrOverhead);
  }

  // --- Execution --------------------------------------------------------------------
  const CodeRef &Cur() const { return Code[Pc & ~CodeAddrBit]; }

  uint32_t slotAddress(const MFunction *F, int Slot) const {
    assert(F->FrameLowered && Slot >= 0 && Slot < int(F->Slots.size()));
    return Regs[SP] + uint32_t(F->Slots[unsigned(Slot)].Offset);
  }

  void step() {
    const DecodedInst &I = Prog[Pc & ~CodeAddrBit];
    ++Res.InstructionsExecuted;
    if (Opts.TraceWindowHi && ActiveSinceBoot >= Opts.TraceWindowLo &&
        ActiveSinceBoot <= Opts.TraceWindowHi) {
      const CodeRef &C = Cur();
      std::ostringstream OS;
      OS << "cycle " << ActiveSinceBoot << ": " << C.F->Name << "/"
         << C.F->Blocks[C.Block].Name << " " << mopName(I.Op);
      Res.Window.push_back(OS.str());
    }
    uint32_t NextPc = Pc + 1;

    switch (I.Op) {
    case MOp::MovImm:
      reg(I.Dst) = I.Imm;
      spend(I.MovCost);
      break;
    case MOp::MovGlobal:
      fail("unlinked MovGlobal reached the emulator");
      return;
    case MOp::Mov:
      reg(I.Dst) = reg(I.Src[0]);
      spend(1);
      break;
    case MOp::Add: case MOp::Sub: case MOp::Mul: case MOp::And:
    case MOp::Orr: case MOp::Eor: case MOp::Lsl: case MOp::Lsr:
    case MOp::Asr:
      reg(I.Dst) = *constEvalBinary(I.Alu, reg(I.Src[0]), reg(I.Src[1]));
      spend(1);
      break;
    case MOp::UDiv:
    case MOp::SDiv: {
      auto V = constEvalBinary(I.Op == MOp::UDiv ? Opcode::UDiv
                                                 : Opcode::SDiv,
                               reg(I.Src[0]), reg(I.Src[1]));
      if (!V) {
        fail("division by zero");
        return;
      }
      reg(I.Dst) = *V;
      spend(6);
      break;
    }
    case MOp::AddImm:
      reg(I.Dst) = reg(I.Src[0]) + I.Imm;
      spend(1);
      break;
    case MOp::SetCond:
      reg(I.Dst) =
          constEvalPred(I.Pred, reg(I.Src[0]), reg(I.Src[1])) ? 1 : 0;
      spend(2);
      break;
    case MOp::SelectR:
      reg(I.Dst) = reg(I.Src[0]) != 0 ? reg(I.Src[1]) : reg(I.Src[2]);
      spend(2);
      break;
    case MOp::Ldr:
      reg(I.Dst) = loadMem(reg(I.Src[0]) + I.Imm, I.Size, I.Signed);
      spend(2);
      break;
    case MOp::Str:
      storeMem(reg(I.Src[1]) + I.Imm, I.Size, reg(I.Src[0]));
      spend(2);
      break;
    case MOp::LdrSlot:
      reg(I.Dst) = loadMem(slotAddress(I.F, I.Slot), 4, false);
      spend(2);
      break;
    case MOp::StrSlot:
      storeMem(slotAddress(I.F, I.Slot), 4, reg(I.Src[0]));
      spend(2);
      break;
    case MOp::FrameAddr:
      reg(I.Dst) = slotAddress(I.F, I.Slot);
      spend(1);
      break;
    case MOp::Bl:
      if (I.Target[0] == BadTarget) {
        fail("call through an unlinked or bad function index");
        return;
      }
      Regs[LR] = NextPc;
      Pc = CodeAddrBit | I.Target[0];
      spend(1 + cycles::PipelineRefill);
      return;
    case MOp::B:
      Pc = CodeAddrBit | I.Target[0];
      spend(1 + cycles::PipelineRefill);
      return;
    case MOp::CBr:
      Pc = CodeAddrBit | I.Target[reg(I.Src[0]) != 0 ? 0 : 1];
      spend(1 + cycles::PipelineRefill);
      return;
    case MOp::Ret:
      if (Regs[LR] == LrSentinel) {
        Done = true;
        Res.ReturnValue = int32_t(Regs[R0]);
        spend(1 + cycles::PipelineRefill);
        return;
      }
      if (!(Regs[LR] & CodeAddrBit)) {
        fail("return to a non-code address (corrupt lr)");
        return;
      }
      Pc = Regs[LR];
      spend(1 + cycles::PipelineRefill);
      return;
    case MOp::Push: {
      unsigned N = unsigned(std::popcount(unsigned(I.RegList)));
      uint32_t Base = Regs[SP] - 4 * N;
      unsigned Idx = 0;
      for (int R = 0; R != NumPRegs; ++R)
        if (I.RegList & (1u << R))
          storeMem(Base + 4 * Idx++, 4, Regs[R]);
      Regs[SP] = Base;
      spend(1 + N);
      break;
    }
    case MOp::Pop:
    case MOp::PopLoads: {
      unsigned N = unsigned(std::popcount(unsigned(I.RegList)));
      unsigned Idx = 0;
      for (int R = 0; R != NumPRegs; ++R)
        if (I.RegList & (1u << R))
          Regs[R] = loadMem(Regs[SP] + 4 * Idx++, 4, false);
      if (I.Op == MOp::Pop)
        Regs[SP] += 4 * N;
      spend(1 + N);
      break;
    }
    case MOp::SpAdjust:
      Regs[SP] += I.Imm;
      spend(1);
      break;
    case MOp::Checkpoint:
      // Commit with the resume point after this instruction.
      Pc = NextPc;
      commitCheckpoint(I.Cause);
      return;
    case MOp::Out:
      Res.Output.push_back(int32_t(reg(I.Src[0])));
      spend(2);
      break;
    case MOp::IntMask:
      Primask = true;
      spend(1);
      break;
    case MOp::IntUnmask:
      Primask = false;
      spend(1);
      break;
    case MOp::Nop:
      spend(1);
      break;
    case MOp::CallPseudo:
    case MOp::ArgGet:
      fail("unexpanded pseudo instruction reached the emulator");
      return;
    }
    Pc = NextPc;
  }

  const MModule &M;
  EmulatorOptions Opts;
  std::vector<uint8_t> Mem;
  std::vector<CodeRef> Code;       ///< Diagnostics only (WAR reports).
  std::vector<DecodedInst> Prog;   ///< Dense execution representation.
  std::vector<uint32_t> FuncEntry; ///< Entry code index per function.
  uint32_t MainEntry = 0;

  uint32_t Regs[NumPRegs] = {};
  uint32_t Pc = 0;
  bool Primask = false;
  bool Pending = false;
  bool Done = false;
  bool Failed = false;
  std::string ErrorMsg;

  /// First-access tracking for the WAR monitor: a byte's record is live
  /// when its epoch stamp matches the current region epoch.
  std::vector<uint32_t> AccessEpoch;
  std::vector<uint8_t> AccessKind;
  uint32_t Epoch = 0;

  uint64_t RegionStartCycles = 0;
  uint64_t ActiveSinceBoot = 0;
  uint64_t CyclesSinceIrq = 0;
  bool ProgressThisBoot = false;

  EmulatorResult Res;
};

} // namespace

EmulatorResult wario::emulate(const MModule &M, const EmulatorOptions &Opts,
                              const std::string &Entry) {
  Machine Mach(M, Opts);
  return Mach.run(Entry);
}
