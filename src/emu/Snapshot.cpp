#include "emu/Snapshot.h"

#include <algorithm>
#include <cstdlib>

using namespace wario;

void SnapshotChain::clear() {
  Module = nullptr;
  Entry.clear();
  RecordedEO = EmulatorOptions{};
  Snaps.clear();
  PageLog.clear();
  PerPage.clear();
  JournaledPages.clear();
  Blob.clear();
  Final = EmulatorResult{};
}

size_t SnapshotChain::bytes() const {
  size_t N = Snaps.size() * sizeof(Snap) + PageLog.size() * sizeof(PageRef) +
             JournaledPages.size() * sizeof(uint32_t) + Blob.size();
  for (const std::vector<PageEntry> &P : PerPage)
    N += P.size() * sizeof(PageEntry);
  N += Final.FinalMemory.size() + Final.Output.size() * sizeof(int32_t) +
       Final.Commits.size() * sizeof(EmulatorResult::CommitEvent) +
       Final.StoreCycles.size() * sizeof(uint64_t) +
       Final.RegionSizes.size() * sizeof(uint64_t);
  return N;
}

int SnapshotChain::governing(uint64_t Limit) const {
  // Snaps are ordered by strictly increasing ActiveCycle (the recording
  // run is continuous, so boundary active-cycle values never repeat).
  auto It = std::upper_bound(
      Snaps.begin(), Snaps.end(), Limit,
      [](uint64_t L, const Snap &S) { return L < S.ActiveCycle; });
  return int(It - Snaps.begin()) - 1;
}

const uint8_t *SnapshotChain::pageAt(uint32_t Page, int SnapIdx) const {
  if (SnapIdx < 0 || Page >= PerPage.size())
    return nullptr;
  const std::vector<PageEntry> &Entries = PerPage[Page];
  auto It = std::upper_bound(
      Entries.begin(), Entries.end(), uint32_t(SnapIdx),
      [](uint32_t K, const PageEntry &E) { return K < E.SnapIdx; });
  if (It == Entries.begin())
    return nullptr;
  return Blob.data() + (It - 1)->BlobOff;
}

bool wario::snapshotsEnabled() {
  static const bool Enabled = [] {
    const char *E = std::getenv("WARIO_SNAPSHOTS");
    return !(E && E[0] == '0' && E[1] == '\0');
  }();
  return Enabled;
}
