//===----------------------------------------------------------------------===//
///
/// \file
/// Public surface of the direct-threaded execution engine: engine
/// selection (EmulatorOptions::Engine + the WARIO_ENGINE environment
/// kill switch) and the dispatch statistics the engine can report.
///
/// The engine itself lives in ThreadedEngine.cpp as an alternative
/// implementation of Machine's inner loop: the decoded program is
/// lowered once per module into a fused-group stream (Fusion.h), and a
/// computed-goto dispatch loop (portable switch fallback) executes
/// whole groups per dispatch. The interpreter in Emulator.cpp remains
/// the differential oracle — byte-identical results are enforced by
/// tests/EngineEquivalenceTest.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_EMU_THREADEDENGINE_H
#define WARIO_EMU_THREADEDENGINE_H

#include "emu/Emulator.h"

namespace wario {

/// Dispatch statistics of the threaded engine, accumulated across every
/// boot/re-execution of a run (and across runs when one EngineStats is
/// passed to many). All zero under the interpreter. Deliberately not
/// part of EmulatorResult: results stay byte-comparable across engines.
struct EngineStats {
  /// Executed dispatches (groups), fused or identity.
  uint64_t Dispatches = 0;
  /// Executed dispatches of fused (multi-instruction) groups.
  uint64_t FusedDispatches = 0;
  /// Instructions retired inside fused groups.
  uint64_t FusedInstructions = 0;
  /// Instructions retired inside the threaded loop (the remainder up to
  /// EmulatorResult::InstructionsExecuted ran on the interpreter path:
  /// event-boundary single-stepping and rare bail-outs).
  uint64_t ThreadedInstructions = 0;
  /// Hot-trace superblock layer (trace engine only; DESIGN.md §7.9).
  /// Superblocks recorded and stitched this run.
  uint64_t TracesBuilt = 0;
  /// Superblock entries + in-superblock loop re-entries (each one pays
  /// the aggregate event-margin check exactly once).
  uint64_t SuperblockDispatches = 0;
  /// Branch-direction guards that left the recorded path and fell back
  /// to the merged stream.
  uint64_t SideExits = 0;
  /// Superblock entries declined or abandoned because the dispatch
  /// margin or an event boundary intervened (margin-failed entries and
  /// re-entries, plus mid-flight bail/commit abandonments).
  uint64_t Invalidations = 0;

  EngineStats &operator+=(const EngineStats &O) {
    Dispatches += O.Dispatches;
    FusedDispatches += O.FusedDispatches;
    FusedInstructions += O.FusedInstructions;
    ThreadedInstructions += O.ThreadedInstructions;
    TracesBuilt += O.TracesBuilt;
    SuperblockDispatches += O.SuperblockDispatches;
    SideExits += O.SideExits;
    Invalidations += O.Invalidations;
    return *this;
  }
};

/// Resolves Auto against the WARIO_ENGINE environment variable, read
/// fresh on every call so tests can flip it with setenv: "interp" (or
/// "interpreter") forces the oracle, "threaded" forces the plain
/// threaded engine, anything else — including unset — selects the
/// trace engine. Explicit option values win unchanged.
EngineKind resolveEngine(EngineKind Requested);

const char *engineName(EngineKind K);

} // namespace wario

#endif // WARIO_EMU_THREADEDENGINE_H
