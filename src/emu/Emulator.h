//===----------------------------------------------------------------------===//
///
/// \file
/// Cycle-counting emulator for the modeled Cortex-M-class MCU with
/// byte-addressable non-volatile main memory (paper Section 5.1.1).
///
/// Modeled features, mirroring the paper's Unicorn-based emulator:
///  - performance statistics: executed cycles (3-stage-pipeline refill
///    model), checkpoint counts and causes, cycles between checkpoints
///    (idempotent region sizes), instruction counts;
///  - WAR-violation absence verification on every memory access, covering
///    middle-end, back-end, and "assembly" (prologue/epilog/ISR) accesses;
///  - power-failure injection from a PowerSchedule, with double-buffered
///    register checkpoints, boot/restore costs, and re-execution;
///  - optional periodic interrupts with hardware stacking, to exercise
///    the idempotent pop converter and epilog optimizer.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_EMU_EMULATOR_H
#define WARIO_EMU_EMULATOR_H

#include "backend/MIR.h"
#include "emu/PowerTrace.h"
#include "ir/MemoryLayout.h"

#include <memory>

namespace wario {

class SnapshotChain;
struct SnapshotSchedule;
struct EmulatorScratch;
struct ReplayPlan;
struct ReplayOutcome;
struct EngineStats;

/// Which execution engine runs the instruction stream. All engines are
/// byte-identical in every result, counter, event trace, and snapshot
/// journal — the choice only trades dispatch cost (see DESIGN.md §7.7,
/// §7.9). Auto defers to the WARIO_ENGINE environment variable
/// ("interp" | "threaded" | "trace"; anything else, or unset, means
/// trace — the threaded and interpreter engines remain available as
/// kill switches and differential oracles).
enum class EngineKind : uint8_t {
  Auto,     ///< WARIO_ENGINE, defaulting to Trace.
  Interp,   ///< The classic central-switch interpreter (the oracle).
  Threaded, ///< Direct-threaded dispatch over the fused stream.
  Trace,    ///< Threaded dispatch + hot-trace superblocks (DESIGN.md §7.9).
};

/// Cycle-model constants (documented in DESIGN.md; the shape of results,
/// not absolute values, is what matters for reproduction).
namespace cycles {
inline constexpr uint64_t PipelineRefill = 2; ///< Taken-branch penalty.
inline constexpr uint64_t Boot = 1000;        ///< Power-up sequence.
inline constexpr uint64_t Restore = 40;       ///< Checkpoint restoration.
inline constexpr uint64_t Checkpoint = 40;    ///< Save 17 words, flip.
inline constexpr uint64_t IsrOverhead = 60;   ///< Entry+body+exit.
// Strategy runtimes (docs/STRATEGIES.md). Differential commits pay per
// dirty 256 B journal page on top of the register save; speculative
// undo-logged stores pay a copy-out per store and a per-entry replay
// cost when a reboot rolls the log back.
inline constexpr uint64_t DiffPageCommit = 16; ///< Commit one dirty page.
inline constexpr uint64_t SpecLogStore = 4;    ///< Journal old word.
inline constexpr uint64_t SpecUndo = 2;        ///< Replay one log entry.
} // namespace cycles

/// Reserved NVM range for the double-buffered register checkpoint
/// (Section 4.5). The range is exempt from WAR monitoring (the checkpoint
/// routine is incorruptible by design) and must also be excluded from any
/// differential end-state comparison: two runs that took different crash
/// paths legitimately leave different register snapshots here (see
/// src/verify/FaultInjector.h).
namespace ckpt {
inline constexpr uint32_t Base = 0x100;
inline constexpr uint32_t End = Base + 0x100;
} // namespace ckpt

struct EmulatorOptions {
  PowerSchedule Power = PowerSchedule::continuous();
  /// Fire an interrupt every N active cycles (0 = disabled).
  uint64_t InterruptPeriod = 0;
  /// Abort after this many total cycles (runaway guard).
  uint64_t MaxCycles = 40'000'000'000ull;
  /// Abort after this many power failures without a committed checkpoint
  /// advancing (no-forward-progress guard).
  unsigned MaxStalledBoots = 64;
  /// Record every idempotent region size (disable for very long runs).
  bool CollectRegionSizes = true;
  /// Treat a WAR violation as a fatal error (else just count).
  bool WarIsFatal = true;
  /// Record the event trace the crash-consistency fault injector consumes
  /// (EmulatorResult::Commits / StoreCycles): active-cycle stamps of every
  /// committed checkpoint and of every monitored NVM store.
  bool CollectEventTrace = false;
  /// When TraceWindowHi != 0, record the textual form of every executed
  /// instruction whose start falls in [TraceWindowLo, TraceWindowHi]
  /// active-cycles-since-boot (EmulatorResult::Window) — the fault
  /// injector's "surrounding instruction window" for crash reports.
  uint64_t TraceWindowLo = 0;
  uint64_t TraceWindowHi = 0;
  /// Execution engine. Results never depend on it (the equivalence bar
  /// EngineEquivalenceTest enforces), so snapshot chains recorded under
  /// one engine replay under the other; it still participates in
  /// operator<=> so benchmark caches keep per-engine cells distinct.
  EngineKind Engine = EngineKind::Auto;

  /// Ordered by the full configuration so result caches can key on the
  /// actual options (see bench/Harness.cpp).
  auto operator<=>(const EmulatorOptions &) const = default;
};

/// Executed-checkpoint counts by cause (paper Figure 5).
struct CheckpointCauses {
  uint64_t MiddleEndWar = 0;
  uint64_t BackendSpill = 0;
  uint64_t FunctionEntry = 0;
  uint64_t FunctionExit = 0;
  uint64_t total() const {
    return MiddleEndWar + BackendSpill + FunctionEntry + FunctionExit;
  }
  bool operator==(const CheckpointCauses &) const = default;
};

struct EmulatorResult {
  bool Ok = false;
  std::string Error;
  int32_t ReturnValue = 0;
  std::vector<int32_t> Output;

  uint64_t TotalCycles = 0;  ///< All on-time incl. boot/restore/re-exec.
  uint64_t InstructionsExecuted = 0;
  uint64_t CheckpointsExecuted = 0;
  CheckpointCauses Causes;
  unsigned PowerFailures = 0;
  uint64_t InterruptsTaken = 0;
  uint64_t WarViolations = 0;
  std::vector<std::string> WarReports; ///< First few diagnostics.
  std::vector<uint64_t> RegionSizes;   ///< Cycles between checkpoints.

  /// Final NVM image (for checking benchmark result buffers).
  std::vector<uint8_t> FinalMemory;

  /// One committed checkpoint (CollectEventTrace only). Cycle stamps are
  /// active-cycles-since-boot, so on a continuous-power run they equal
  /// TotalCycles and can be replayed as on-duration budgets: a power
  /// schedule whose first on-period is BeginCycle fails immediately
  /// *before* this commit executes; EndCycle fails immediately after it.
  struct CommitEvent {
    uint64_t BeginCycle = 0; ///< Active cycles before the commit executes.
    uint64_t EndCycle = 0;   ///< Active cycles after the commit completes.
    CheckpointCause Cause = CheckpointCause::MiddleEndWar;
    bool operator==(const CommitEvent &) const = default;
  };
  std::vector<CommitEvent> Commits; ///< CollectEventTrace only.
  /// Active-cycle budget that crashes immediately *after* each monitored
  /// NVM store instruction (CollectEventTrace only).
  std::vector<uint64_t> StoreCycles;
  /// Executed instructions inside [TraceWindowLo, TraceWindowHi].
  std::vector<std::string> Window;

  /// Reads the 32-bit little-endian word at \p Addr from the final NVM
  /// image. Out-of-range reads assert in debug builds and return 0 in
  /// release builds (previously: unchecked indexing past FinalMemory).
  uint32_t readWord(uint32_t Addr) const {
    assert(uint64_t(Addr) + 4 <= FinalMemory.size() &&
           "readWord past the final memory image");
    if (uint64_t(Addr) + 4 > FinalMemory.size())
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= uint32_t(FinalMemory[Addr + I]) << (8 * I);
    return V;
  }

  /// Field-wise equality (the snapshot tests assert that resumed and
  /// cold runs are byte-identical on every field).
  bool operator==(const EmulatorResult &) const = default;
};

/// Runs \p Entry (default "main") of the machine module to completion
/// under the given options.
EmulatorResult emulate(const MModule &M, const EmulatorOptions &Opts = {},
                       const std::string &Entry = "main");

/// A machine module prepared for repeated emulation: the program is
/// flattened and pre-decoded once and the initial NVM image is
/// precomputed, so a campaign that re-runs the same module thousands of
/// times pays the setup cost once instead of per run. The free
/// emulate() above wraps a throwaway instance. The module must outlive
/// the Emulator.
class Emulator {
public:
  explicit Emulator(const MModule &M);
  ~Emulator();
  Emulator(const Emulator &) = delete;
  Emulator &operator=(const Emulator &) = delete;

  const MModule &module() const;

  /// Runs \p Entry to completion under \p Opts — identical results to
  /// the free emulate(). \p Scratch, when given, supplies the reusable
  /// per-worker memory arrays (see EmulatorScratch); results do not
  /// depend on whether or how often a scratch was reused. \p Stats,
  /// when given, accumulates engine dispatch statistics (ThreadedEngine.h)
  /// — never part of the result, so engines stay byte-comparable.
  EmulatorResult run(const EmulatorOptions &Opts = {},
                     const std::string &Entry = "main",
                     EmulatorScratch *Scratch = nullptr,
                     EngineStats *Stats = nullptr) const;

  /// Golden-run recording: executes exactly like run() — the returned
  /// result is byte-identical — while journaling periodic snapshots of
  /// the machine state into \p Chain (see Snapshot.h). Requires a
  /// continuous power schedule; \p Chain is cleared (left invalid) if
  /// the run fails.
  EmulatorResult record(const EmulatorOptions &Opts,
                        const SnapshotSchedule &Sched, SnapshotChain &Chain,
                        const std::string &Entry = "main",
                        EmulatorScratch *Scratch = nullptr,
                        EngineStats *Stats = nullptr) const;

  /// Replays under \p Opts, resuming from the governing snapshot of
  /// Plan.Chain when one exists and the chain's recorded options are
  /// compatible — otherwise falls back to a cold run. Either way the
  /// result is byte-identical to run() under the same options (modulo
  /// Plan.StopAtActiveCycle, which truncates the run identically on
  /// both paths). See ReplayPlan for tail splicing.
  EmulatorResult replay(const EmulatorOptions &Opts, const ReplayPlan &Plan,
                        const std::string &Entry = "main",
                        EmulatorScratch *Scratch = nullptr,
                        ReplayOutcome *Outcome = nullptr,
                        EngineStats *Stats = nullptr) const;

  struct Impl; ///< Public so the in-file interpreter can bind to it.

private:
  std::unique_ptr<Impl> I;
};

} // namespace wario

#endif // WARIO_EMU_EMULATOR_H
