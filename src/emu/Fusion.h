//===----------------------------------------------------------------------===//
///
/// \file
/// Superinstruction fusion over the decoded program (DESIGN.md §7.7).
///
/// The threaded engine dispatches *groups* of instructions: a fusion
/// pass runs once per module and assigns every program index a
/// FusedInst — either the identity group (one instruction; Kind is the
/// MOp value itself) or a superinstruction covering 2–3 consecutive
/// instructions matched against a fixed catalog of hot Thumb-2 idioms
/// (load–op–store, compare+branch, immediate-feed ALU chains — the
/// patterns a dynamic pair/triple histogram of the six workloads ranks
/// highest). Groups overlap freely: every pc keeps its own entry, so a
/// branch into the middle of someone else's group simply dispatches the
/// group that *starts* there. Fusion never changes semantics — each
/// component executes exactly the interpreter's transition — it only
/// collapses dispatches.
///
/// The catalog is expanded from the X-macros below in three places (the
/// FusedKind enum, the fusion matcher, and the threaded engine's
/// dispatch table), so the three can never disagree on numbering.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_EMU_FUSION_H
#define WARIO_EMU_FUSION_H

#include "emu/Decode.h"

#include <vector>

namespace wario::emu_detail {

/// The nine single-cycle binary ALU ops that participate in fused
/// families (UDiv/SDiv can trap and are never fused).
#define WARIO_EMU_ALU9(A, FAM)                                                 \
  A(FAM, Add) A(FAM, Sub) A(FAM, Mul) A(FAM, And) A(FAM, Orr)                  \
  A(FAM, Eor) A(FAM, Lsl) A(FAM, Lsr) A(FAM, Asr)

/// The full superinstruction catalog. X(Name) introduces a fixed kind;
/// A(Family, AluOp) introduces one kind per ALU op of a parameterized
/// family. Order here *is* the kind numbering — all three expansions
/// (enum, matcher, dispatch table) consume this list.
#define WARIO_EMU_FUSED_KINDS(X, A)                                            \
  /* ALU-parameterized pairs (value flows left to right). */                   \
  WARIO_EMU_ALU9(A, MovImm_Alu)         /* d0=imm ; d1 = a op b        */      \
  WARIO_EMU_ALU9(A, Alu_Mov)            /* d0 = a op b ; d1 = s        */      \
  WARIO_EMU_ALU9(A, Alu_MovImm)         /* d0 = a op b ; d1 = imm      */      \
  WARIO_EMU_ALU9(A, LdrSlot_Alu)        /* d0 = slot ; d1 = a op b     */      \
  WARIO_EMU_ALU9(A, Alu_StrSlot)        /* d0 = a op b ; slot = s      */      \
  /* ALU-parameterized triples (the CRC/SHA/AES inner-loop shapes). */         \
  WARIO_EMU_ALU9(A, LdrSlot_Alu_StrSlot)                                       \
  WARIO_EMU_ALU9(A, MovImm_LdrSlot_Alu)                                        \
  /* Fixed pairs: register/immediate traffic. */                               \
  X(MovImm_MovImm) X(MovImm_Mov) X(Mov_MovImm) X(Mov_Mov)                      \
  X(MovImm_LdrSlot) X(LdrSlot_Mov) X(Mov_LdrSlot) X(LdrSlot_LdrSlot)           \
  X(StrSlot_MovImm) X(StrSlot_Mov) X(Mov_StrSlot) X(StrSlot_LdrSlot)           \
  X(LdrSlot_Str) X(Str_LdrSlot) X(Mov_Ldr) X(Mov_Str)                          \
  /* Fixed ALU-ALU pairs the histograms rank (shift/accumulate mills). */      \
  X(Lsl_Lsr) X(Lsr_Lsl) X(Lsl_Add) X(Mul_Add) X(Eor_Lsl) X(Add_Add)           \
  /* Compare+branch, and the immediate-compare-branch triple. */               \
  X(SetCond_CBr) X(MovImm_SetCond_CBr)                                         \
  /* Remaining measured triples. */                                           \
  X(Lsl_Lsr_StrSlot) X(Add_Mov_Ldr)

/// The full 9x9 ALU pair family (first op x second op), appended after
/// the base catalog. Covers every back-to-back single-cycle ALU pair
/// the six fixed pairs above miss.
#define WARIO_EMU_ALU81_ROW(P, OP0)                                            \
  P(OP0, Add) P(OP0, Sub) P(OP0, Mul) P(OP0, And) P(OP0, Orr)                  \
  P(OP0, Eor) P(OP0, Lsl) P(OP0, Lsr) P(OP0, Asr)
#define WARIO_EMU_ALU81(P)                                                     \
  WARIO_EMU_ALU81_ROW(P, Add) WARIO_EMU_ALU81_ROW(P, Sub)                      \
  WARIO_EMU_ALU81_ROW(P, Mul) WARIO_EMU_ALU81_ROW(P, And)                      \
  WARIO_EMU_ALU81_ROW(P, Orr) WARIO_EMU_ALU81_ROW(P, Eor)                      \
  WARIO_EMU_ALU81_ROW(P, Lsl) WARIO_EMU_ALU81_ROW(P, Lsr)                      \
  WARIO_EMU_ALU81_ROW(P, Asr)

/// Second-level catalog: concatenations of two first-level groups,
/// curated from dynamic group-pair histograms of the workload suite.
/// P(Name, K1, K2) fuses adjacent groups of kinds K1 and K2 into one
/// superinstruction named Name (components listed left to right in the
/// name). The first group must not end in a branch or a checkpoint —
/// execution must fall through to the second group unconditionally.
#define WARIO_EMU_PAIR_KINDS(P)                                                \
  /* CRC: table-lookup loop body and its epilogue compare/branch. */           \
  P(Str_LdrSlot_Str_LdrSlot, FK_Str_LdrSlot, FK_Str_LdrSlot)                   \
  P(Mov_CBr, uint16_t(MOp::Mov), uint16_t(MOp::CBr))                           \
  P(SetCond_Mov_CBr, uint16_t(MOp::SetCond), FK_Mov_CBr)                       \
  P(LdrSlot_SetCond_CBr, uint16_t(MOp::LdrSlot), FK_SetCond_CBr)               \
  P(Add_Mov_Ldr_Eor_MovImm, FK_Add_Mov_Ldr, FK_Alu_MovImm_Eor)                 \
  P(Add_Mov_Ldr_MovImm_Lsr, FK_Add_Mov_Ldr, FK_MovImm_Alu_Lsr)                 \
  P(Eor_MovImm_And_MovImm, FK_Alu_MovImm_Eor, FK_Alu_MovImm_And)               \
  P(And_MovImm_MovImm_Lsl, FK_Alu_MovImm_And, FK_MovImm_Alu_Lsl)               \
  P(MovImm_Lsl_Add_Mov_Ldr, FK_MovImm_Alu_Lsl, FK_Add_Mov_Ldr)                 \
  P(MovImm_Add_Mov_MovImm, FK_MovImm_Alu_Add, FK_Mov_MovImm)                   \
  P(Str_MovImm_Add, uint16_t(MOp::Str), FK_MovImm_Alu_Add)                     \
  P(MovImm_Add_LdrSlot, FK_MovImm_Alu_Add, uint16_t(MOp::LdrSlot))             \
  P(Str_Str, uint16_t(MOp::Str), uint16_t(MOp::Str))                           \
  P(MovImm_LdrSlot_Lsr_LdrSlot_Eor_StrSlot, FK_MovImm_LdrSlot_Alu_Lsr,         \
    FK_LdrSlot_Alu_StrSlot_Eor)                                                \
  P(MovImm_LdrSlot_Lsl_LdrSlot_Eor_StrSlot, FK_MovImm_LdrSlot_Alu_Lsl,         \
    FK_LdrSlot_Alu_StrSlot_Eor)                                                \
  P(LdrSlot_Eor_StrSlot_MovImm_LdrSlot_Lsl, FK_LdrSlot_Alu_StrSlot_Eor,        \
    FK_MovImm_LdrSlot_Alu_Lsl)                                                 \
  /* SHA: rotate/accumulate mills and the schedule copy loops. */              \
  P(LdrSlot_Mov_LdrSlot_Mov, FK_LdrSlot_Mov, FK_LdrSlot_Mov)                   \
  P(StrSlot_Mov_StrSlot_Mov, FK_StrSlot_Mov, FK_StrSlot_Mov)                   \
  P(Lsl_MovImm_Lsr, FK_Alu_MovImm_Lsl, uint16_t(MOp::Lsr))                     \
  P(Lsl_Add_Mov_Ldr, FK_Lsl_Add, FK_Mov_Ldr)                                   \
  P(Mov_Ldr_Eor_MovImm, FK_Mov_Ldr, FK_Alu_MovImm_Eor)                         \
  P(Sub_MovImm_Lsl_Add, FK_Alu_MovImm_Sub, FK_Lsl_Add)                         \
  P(Eor_MovImm_Sub_MovImm, FK_Alu_MovImm_Eor, FK_Alu_MovImm_Sub)               \
  P(Mov_Mov_Mov_Mov, FK_Mov_Mov, FK_Mov_Mov)                                   \
  P(Add_MovImm_MovImm_Lsl, FK_Alu_MovImm_Add, FK_MovImm_Alu_Lsl)               \
  P(MovImm_Sub_MovImm_Lsl, FK_MovImm_Alu_Sub, FK_MovImm_Alu_Lsl)               \
  /* AES: state loads/stores and the xtime/mix-column shift chains. */         \
  P(LdrSlot_LdrSlot_Str_LdrSlot, FK_LdrSlot_LdrSlot, FK_Str_LdrSlot)           \
  P(Str_LdrSlot_LdrSlot_Str, FK_Str_LdrSlot, FK_LdrSlot_Str)                   \
  P(Eor_Lsl_Lsr_Lsl, FK_Eor_Lsl, FK_Lsr_Lsl)                                   \
  P(LdrSlot_Str_LdrSlot_LdrSlot, FK_LdrSlot_Str, FK_LdrSlot_LdrSlot)           \
  P(Add_MovImm_SetCond_CBr, FK_Alu_MovImm_Add, FK_SetCond_CBr)                 \
  P(Lsr_Lsl_Lsr_StrSlot, FK_Lsr_Lsl, FK_Alu_StrSlot_Lsr)                       \
  P(LdrSlot_Str_LdrSlot_Str, FK_LdrSlot_Str, FK_LdrSlot_Str)                   \
  P(MovImm_LdrSlot_Lsr_MovImm_Mul, FK_MovImm_LdrSlot_Alu_Lsr,                  \
    FK_MovImm_Alu_Mul)                                                         \
  P(Lsr_StrSlot_MovImm_LdrSlot_Lsl, FK_Alu_StrSlot_Lsr,                        \
    FK_MovImm_LdrSlot_Alu_Lsl)                                                 \
  P(MovImm_LdrSlot_Lsl_MovImm_LdrSlot_Lsr, FK_MovImm_LdrSlot_Alu_Lsl,          \
    FK_MovImm_LdrSlot_Alu_Lsr)                                                 \
  P(MovImm_Mul_Eor_Lsl, FK_MovImm_Alu_Mul, FK_Eor_Lsl)                         \
  P(MovImm_LdrSlot_And_MovImm_SetCond_CBr, FK_MovImm_LdrSlot_Alu_And,          \
    FK_MovImm_SetCond_CBr)                                                     \
  P(Lsl_Lsr_StrSlot_Add_MovImm, FK_Lsl_Lsr_StrSlot, FK_Alu_MovImm_Add)         \
  P(Lsr_StrSlot_LdrSlot_Lsr, FK_Alu_StrSlot_Lsr, FK_LdrSlot_Alu_Lsr)           \
  P(LdrSlot_Lsr_Lsl_Lsr_StrSlot, FK_LdrSlot_Alu_Lsr, FK_Lsl_Lsr_StrSlot)       \
  P(LdrSlot_Ldr, uint16_t(MOp::LdrSlot), uint16_t(MOp::Ldr))                    \
  /* Round 2, CRC: the table-walk body absorbed head-first (each entry  */      \
  /* extends the previous chain kind, so the fixpoint builds the full   */      \
  /* body left to right), plus the residual shift/store idioms.         */      \
  P(CrcA1, FK_Add_Mov_Ldr_Eor_MovImm, FK_And_MovImm_MovImm_Lsl)                 \
  P(CrcA2, FK_CrcA1, FK_Add_Mov_Ldr_MovImm_Lsr)                                 \
  P(CrcA3, FK_CrcA2, FK_Alu_MovImm_Eor)                                         \
  P(CrcA4, FK_CrcA3, uint16_t(MOp::Add))                                        \
  P(Add_SetCond_Mov_CBr, uint16_t(MOp::Add), FK_SetCond_Mov_CBr)                \
  P(StrLdr2, FK_Str_LdrSlot_Str_LdrSlot, FK_Str_LdrSlot_Str_LdrSlot)            \
  P(CrcB1, FK_MovImm_Add_Mov_MovImm, FK_LdrSlot_Alu_Lsl)                        \
  P(CrcB2, FK_CrcB1, FK_LdrSlot_Alu_StrSlot_Eor)                                \
  P(CrcB3, FK_CrcB2, FK_MovImm_LdrSlot_Lsr_LdrSlot_Eor_StrSlot)                 \
  P(CrcC1, FK_MovImm_LdrSlot_Lsl_LdrSlot_Eor_StrSlot, FK_LdrSlot_Alu_Lsr)       \
  P(CrcC2, FK_CrcC1, FK_MovImm_Alu_Lsl)                                         \
  P(CrcC3, FK_CrcC2, FK_Lsr_Lsl)                                                \
  P(CrcC4, FK_CrcC3, uint16_t(MOp::Lsr))                                        \
  P(CrcC5, FK_CrcC4, FK_Str_MovImm_Add)                                         \
  P(Str_MovImm_Add_LdrSlot_SetCond_CBr, FK_Str_MovImm_Add,                      \
    FK_LdrSlot_SetCond_CBr)                                                     \
  P(Lsl_Lsr_Lsl_Lsr, FK_Lsl_Lsr, FK_Lsl_Lsr)                                    \
  P(Lsl_Lsr_Str_MovImm_Add, FK_Lsl_Lsr, FK_Str_MovImm_Add)                      \
  P(Lsr_MovImm_Lsl_Lsr, FK_Alu_MovImm_Lsr, FK_Lsl_Lsr)                          \
  /* Round 2, SHA: schedule copies and the rotate/accumulate spine. */          \
  P(ShaA1, FK_Sub_MovImm_Lsl_Add, FK_Mov_Ldr_Eor_MovImm)                        \
  P(Mov_Mov_Mov_Mov_B, FK_Mov_Mov_Mov_Mov, uint16_t(MOp::B))                    \
  P(Mov_MovImm_SetCond_CBr, FK_Mov_MovImm, FK_SetCond_CBr)                      \
  P(StrSlot_B, uint16_t(MOp::StrSlot), uint16_t(MOp::B))                        \
  P(LdrMov4x2, FK_LdrSlot_Mov_LdrSlot_Mov, FK_LdrSlot_Mov_LdrSlot_Mov)          \
  P(LdrSlot_Mov_StrSlot_LdrSlot, FK_LdrSlot_Mov, FK_StrSlot_LdrSlot)            \
  P(MovImm_Mov_B, FK_MovImm_Mov, uint16_t(MOp::B))                              \
  P(ShaB1, FK_Add_MovImm_MovImm_Lsl, FK_Add_Mov_Ldr)                            \
  P(ShaB2, FK_ShaB1, FK_Alu_MovImm_Add)                                         \
  P(Lsl_MovImm_Lsr_Orr_MovImm, FK_Lsl_MovImm_Lsr, FK_Alu_MovImm_Orr)            \
  P(StrMov4x2, FK_StrSlot_Mov_StrSlot_Mov, FK_StrSlot_Mov_StrSlot_Mov)          \
  P(StrMov4_StrMov, FK_StrSlot_Mov_StrSlot_Mov, FK_StrSlot_Mov)                 \
  P(StrSlot_Mov_StrSlot, FK_StrSlot_Mov, uint16_t(MOp::StrSlot))                \
  P(Orr_Add_LdrSlot_Add, FK_Alu2_Orr_Add, FK_LdrSlot_Alu_Add)                   \
  P(Mov_Mov_MovImm_Lsl, FK_Mov_Mov, FK_MovImm_Alu_Lsl)                          \
  /* Round 2, AES: the xtime mill and the state copy loops. */                  \
  P(AesA1, FK_MovImm_LdrSlot_Alu_Lsl, FK_Lsr_StrSlot_MovImm_LdrSlot_Lsl)        \
  P(AesA2, FK_AesA1, FK_MovImm_LdrSlot_Lsr_MovImm_Mul)                          \
  P(AesB1, FK_Eor_Lsl_Lsr_Lsl, FK_Lsr_StrSlot_LdrSlot_Lsr)                      \
  P(AesC1, FK_Lsl_Lsr_StrSlot_Add_MovImm, FK_SetCond_CBr)                       \
  P(AesD1, FK_LdrSlot_LdrSlot_Str_LdrSlot, FK_LdrSlot_Str_LdrSlot_LdrSlot)      \
  P(AesE1, FK_LdrSlot_Str_LdrSlot_Str, FK_LdrSlot_Str_LdrSlot_Str)              \
  P(MovImm_Add_Mov_Ldr, FK_MovImm_Alu_Add, FK_Mov_Ldr)                          \
  P(LdrSlot_Mov_MovImm_SetCond_CBr, FK_LdrSlot_Mov, FK_MovImm_SetCond_CBr)      \
  P(Mov_StrSlot_B, FK_Mov_StrSlot, uint16_t(MOp::B))                            \
  P(Lsr_MovImm_Mul, FK_Alu_MovImm_Lsr, uint16_t(MOp::Mul))                      \
  P(Eor_Lsl_Lsr_Lsl_Lsr, FK_Eor_Lsl_Lsr_Lsl, uint16_t(MOp::Lsr))                \
  P(Lsr_MovImm_Lsl_MovImm, FK_Alu_MovImm_Lsr, FK_Alu_MovImm_Lsl)                \
  P(Lsl_MovImm_Lsr_MovImm, FK_Alu_MovImm_Lsl, FK_Alu_MovImm_Lsr)                \
  /* Round 3: hot-trace iteration chains. Each entry extends the        */      \
  /* previous link so the refusion fixpoint grows a recorded loop       */      \
  /* iteration into one (or a few) dispatches. Links whose combined     */      \
  /* cost reaches FusedCostLimit are trace-only automatically; the      */      \
  /* small early links may also fire in the static pass, which is       */      \
  /* sound (their cost still fits the per-dispatch event margin).       */      \
  /* CRC byte loop: table-walk body + its unroll branch, and the tail.  */      \
  P(TrCrc0, FK_Mov_Mov, FK_SetCond_Mov_CBr)                                     \
  P(TrCrc1, FK_CrcA3, FK_Add_SetCond_Mov_CBr)                                   \
  P(TrCrc2, FK_CrcA3, FK_Alu_Mov_Add)                                           \
  P(TrCrc3, FK_TrCrc2, uint16_t(MOp::Mov))                                      \
  P(TrCrc4, FK_TrCrc3, uint16_t(MOp::B))                                        \
  /* CRC bitwise variant: the full two-byte shift/xor body.             */      \
  P(TrCrc5, FK_CrcB3, FK_CrcC4)                                                 \
  P(TrCrc6, FK_TrCrc5, FK_Str_MovImm_Add_LdrSlot_SetCond_CBr)                   \
  /* SHA round spine: rotate/accumulate mill down to the store burst.   */      \
  P(TrSha1, FK_Mov_Mov_MovImm_Lsl, FK_MovImm_Alu_Lsr)                           \
  P(TrSha2, FK_TrSha1, FK_Orr_Add_LdrSlot_Add)                                  \
  P(TrSha3, FK_TrSha2, FK_ShaB2)                                                \
  P(TrSha4, FK_TrSha3, FK_Lsl_MovImm_Lsr_Orr_MovImm)                            \
  P(TrSha5, FK_TrSha4, FK_Alu_Mov_Add)                                          \
  P(TrSha6, FK_TrSha5, FK_StrMov4x2)                                            \
  P(TrSha7, FK_TrSha6, FK_StrSlot_Mov_StrSlot)                                  \
  P(TrSha8, FK_TrSha7, uint16_t(MOp::B))                                        \
  /* SHA schedule copy + round-entry compare.                           */      \
  P(TrSha9, FK_LdrMov4x2, FK_LdrSlot_Mov_StrSlot_LdrSlot)                       \
  P(TrSha10, FK_TrSha9, FK_Mov_MovImm_SetCond_CBr)                              \
  /* SHA majority/choice combine + round exit.                          */      \
  P(TrSha11, FK_Alu2_And_And, FK_Alu2_Orr_And)                                  \
  P(TrSha12, FK_TrSha11, FK_Alu_Mov_Orr)                                        \
  P(TrSha13, FK_TrSha12, FK_MovImm_Mov_B)                                       \
  /* SHA message-schedule body (shared head with the CRC-B shape).      */      \
  P(TrSha14, FK_CrcB3, FK_MovImm_LdrSlot_Lsl_LdrSlot_Eor_StrSlot)               \
  P(TrSha15, FK_TrSha14, FK_MovImm_LdrSlot_Alu_Lsr)                             \
  P(TrSha16, FK_TrSha15, FK_MovImm_Alu_Lsl)                                     \
  P(TrSha17, FK_TrSha16, FK_Lsr_Lsl)                                            \
  P(TrSha18, FK_TrSha17, uint16_t(MOp::Lsr))                                    \
  P(TrSha19, FK_TrSha18, FK_Str_MovImm_Add)                                     \
  P(TrSha20, FK_TrSha19, FK_MovImm_SetCond_CBr)                                 \
  /* Guard chains (Trace.cpp guard merging only): the left kind ends in
     a conditional branch that becomes an interior WB_GUARD component.
     Neither the static pass nor the refusion fixpoint merges across a
     branch tail, so these kinds appear exclusively in superblock code.
     TrCrcIt* collapse one whole iteration of the CRC inner loop into a
     single dispatch; TrShaR* swallow the SHA round tail's compare
     ladder. */                                                                 \
  P(TrCrcIt1, FK_TrCrc0, FK_TrCrc1)                                             \
  P(TrCrcIt2, FK_TrCrcIt1, FK_TrCrc1)                                           \
  P(TrCrcIt3, FK_TrCrcIt2, FK_TrCrc1)                                           \
  P(TrCrcIt4, FK_TrCrcIt3, FK_TrCrc4)                                           \
  P(TrShaR1, FK_TrSha10, FK_MovImm_SetCond_CBr)                                 \
  P(TrShaR2, FK_TrShaR1, FK_MovImm_SetCond_CBr)                                 \
  P(TrShaR3, FK_TrShaR2, FK_MovImm_SetCond_CBr)

/// Group kinds. Values [0, 64) are identity groups — the kind is the
/// instruction's own MOp value, so the threaded engine's dispatch table
/// doubles as its per-op handler table. Fused kinds start at 64.
enum FusedKind : uint16_t {
  FK_FirstFused = 64,
  FK_Seed_ = FK_FirstFused - 1, // Placeholder so the list starts at 64.
#define WARIO_FK_X(NAME) FK_##NAME,
#define WARIO_FK_A(FAM, OP) FK_##FAM##_##OP,
#define WARIO_FK_A2(OP0, OP1) FK_Alu2_##OP0##_##OP1,
#define WARIO_FK_P(NAME, K1, K2) FK_##NAME,
  WARIO_EMU_FUSED_KINDS(WARIO_FK_X, WARIO_FK_A)
  WARIO_EMU_ALU81(WARIO_FK_A2)
  WARIO_EMU_PAIR_KINDS(WARIO_FK_P)
#undef WARIO_FK_X
#undef WARIO_FK_A
#undef WARIO_FK_A2
#undef WARIO_FK_P
  /// Trace-engine stub kinds (DESIGN.md §7.9). Never produced by the
  /// fusion pass — they exist only inside stitched superblock streams,
  /// where they terminate the straight-line run: a branch-direction
  /// guard that left the recorded path (TraceExit, restores the merged
  /// stream at FastInst::A), the fall-through end of the trace
  /// (TraceFall, same restore), and the back edge to the trace head
  /// (TraceLoop, re-enters the superblock when the aggregate margin
  /// still holds, else restores the merged stream at FastInst::A).
  /// TraceRet replaces a recorded Ret inside superblock code: it
  /// retires the return like the identity handler, then compares the
  /// live link register against the recorded one (FastInst::A holds
  /// the expected CodeAddrBit-encoded link) — a match continues at the
  /// superblock index in FastInst::T0, a mismatch side-exits to the
  /// actual return target on the merged stream.
  FK_TraceExit,
  FK_TraceFall,
  FK_TraceLoop,
  FK_TraceRet,
  FK_KindLimit,
};

static_assert(int(MOp::Nop) < int(FK_FirstFused),
              "identity kinds must not collide with fused kinds");

/// One group in the fused stream (one entry per program index).
struct FusedInst {
  uint16_t Kind; ///< FusedKind, or the MOp value for identity groups.
  uint8_t Len;   ///< Component count (1 for identity).
  uint8_t Cost;  ///< Pre-summed cycle cost of the whole group.
};

/// Interior instruction boundaries of a dispatched group never carry an
/// interpreter-visible event, provided the engine stops dispatching
/// this margin short of the next event cycle (see Machine::fastLimit).
/// Every group's cost must stay below it.
constexpr uint64_t FusedCostLimit = 24;

/// The trace engine re-runs the pair fixpoint over a recorded hot path
/// with this relaxed cap instead: inside a superblock the aggregate
/// worst-case cost is margin-checked once at entry, so interior
/// boundaries never need the per-dispatch event guarantee. Catalog pair
/// entries whose combined cost lands in [FusedCostLimit,
/// TraceRefuseCostLimit) are therefore trace-only automatically — the
/// static fixpoint's cost gate keeps them out of merged streams.
constexpr uint64_t TraceRefuseCostLimit = 200;

struct FusedProgram {
  std::vector<FusedInst> Stream; ///< Parallel to the decoded program.
  uint64_t FusedEntries = 0;     ///< Stream entries with Len > 1.
  uint64_t CoveredInsts = 0;     ///< Sum of Len over fused entries.
};

/// Runs the fusion passes over \p Prog: greedy longest-match against
/// the base catalog, then repeated pairing of adjacent groups against
/// the second-level catalog until nothing else fuses.
FusedProgram fuseProgram(const std::vector<DecodedInst> &Prog);

/// Second-level pair lookup: the fused kind covering adjacent groups of
/// kinds \p K1 then \p K2, or FK_KindLimit when no catalog entry
/// matches. Shared between fuseProgram's fixpoint (capped by
/// FusedCostLimit) and the trace engine's superblock refusion
/// (Trace.cpp, capped by TraceRefuseCostLimit).
uint16_t pairKind(uint16_t K1, uint16_t K2);

/// The threaded engine's execution record: group header and operands
/// merged into one 20-byte entry per program index, so the hot loop
/// walks a single cursor through a single dense stream (the 48-byte
/// DecodedInst array stays the interpreter's form). Operand fields
/// describe the instruction *at* this index; Kind/Len/Cost describe
/// the group *starting* here (interior indices keep their own group
/// heads, so branches into the middle of a group dispatch normally).
struct FastInst {
  uint16_t Kind; ///< FusedKind, or the MOp value for identity groups.
  uint8_t Len;   ///< Component count of the group starting here.
  uint8_t Cost;  ///< Pre-summed cycle cost of that group.
  int16_t Dst;
  int16_t Src0;
  int16_t Src1;
  /// Op-specific: MovImm cost, SetCond/CBr predicate, SelectR's third
  /// register, Ldr/Str size | (signed << 8), push/pop register list,
  /// checkpoint cause.
  uint16_t Aux;
  /// Op-specific: immediate (MovImm/AddImm/Ldr/Str offset/SpAdjust),
  /// frame-slot offset, CBr's false target, Bl's return link index.
  uint32_t A;
  uint32_t T0; ///< Branch target (B/Bl true/CBr taken).
};
static_assert(sizeof(FastInst) == 20, "keep the engine record compact");

/// Builds the engine stream from the decoded program and its groups.
std::vector<FastInst> buildFastProgram(const std::vector<DecodedInst> &Prog,
                                       const FusedProgram &FP);

} // namespace wario::emu_detail

#endif // WARIO_EMU_FUSION_H
