//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy longest-match superinstruction fusion (see Fusion.h). Runs
/// once per module inside Emulator's per-module preparation; the cost
/// of the pass is O(program size) and is amortized across every run.
///
//===----------------------------------------------------------------------===//

#include "emu/Fusion.h"

#include "emu/Emulator.h"

#include <cassert>

using namespace wario;
using namespace wario::emu_detail;

namespace {

/// Index of a fusable single-cycle binary ALU op in WARIO_EMU_ALU9
/// order (Add Sub Mul And Orr Eor Lsl Lsr Asr), or -1.
int aluIdx(MOp Op) {
  switch (Op) {
  case MOp::Add: return 0;
  case MOp::Sub: return 1;
  case MOp::Mul: return 2;
  case MOp::And: return 3;
  case MOp::Orr: return 4;
  case MOp::Eor: return 5;
  case MOp::Lsl: return 6;
  case MOp::Lsr: return 7;
  case MOp::Asr: return 8;
  default: return -1;
  }
}

// The family-base arithmetic below (FK_Fam_Add + aluIdx) requires the
// enum expansion and aluIdx() to agree on the op order.
static_assert(FK_MovImm_Alu_Asr == FK_MovImm_Alu_Add + 8);
static_assert(FK_Alu_Mov_Asr == FK_Alu_Mov_Add + 8);
static_assert(FK_Alu_MovImm_Asr == FK_Alu_MovImm_Add + 8);
static_assert(FK_LdrSlot_Alu_Asr == FK_LdrSlot_Alu_Add + 8);
static_assert(FK_Alu_StrSlot_Asr == FK_Alu_StrSlot_Add + 8);
static_assert(FK_LdrSlot_Alu_StrSlot_Asr == FK_LdrSlot_Alu_StrSlot_Add + 8);
static_assert(FK_MovImm_LdrSlot_Alu_Asr == FK_MovImm_LdrSlot_Alu_Add + 8);

// The pair catalog's base-arithmetic also leans on the Alu2 block.
static_assert(FK_Alu2_Asr_Asr == FK_Alu2_Add_Add + 80);

/// Cycle cost of one fusable component (mirrors Machine::step's spend).
unsigned compCost(const DecodedInst &I) {
  switch (I.Op) {
  case MOp::MovImm: return I.MovCost;
  case MOp::Mov: return 1;
  case MOp::SetCond: return 2;
  case MOp::Ldr: case MOp::Str:
  case MOp::LdrSlot: case MOp::StrSlot: return 2;
  case MOp::B:
  case MOp::CBr: return 1 + unsigned(cycles::PipelineRefill);
  default:
    assert(aluIdx(I.Op) >= 0 && "unexpected fused component");
    return 1;
  }
}

} // namespace

// Defined in Fusion.h: maps two adjacent group kinds to a second-level
// concatenated kind, or FK_KindLimit when the pair isn't in the
// catalog. Any ALU-ALU identity pair that escaped the first pass lands
// in the 9x9 family. Shared with the trace engine's path refusion
// (Trace.cpp), which runs the same fixpoint under the relaxed
// TraceRefuseCostLimit.
uint16_t emu_detail::pairKind(uint16_t K1, uint16_t K2) {
  switch (uint32_t(K1) << 16 | K2) {
#define WARIO_PK(NAME, A, B)                                                   \
  case uint32_t(A) << 16 | (B):                                                \
    return FK_##NAME;
    WARIO_EMU_PAIR_KINDS(WARIO_PK)
#undef WARIO_PK
  default:
    break;
  }
  if (K1 < FK_FirstFused && K2 < FK_FirstFused) {
    int A0 = aluIdx(MOp(K1)), A1 = aluIdx(MOp(K2));
    if (A0 >= 0 && A1 >= 0)
      return uint16_t(FK_Alu2_Add_Add + A0 * 9 + A1);
  }
  return FK_KindLimit;
}

namespace {

/// Cycle cost of the group starting at \p pc (identity entries carry
/// Cost 0 in the stream; their cost is the component's own).
unsigned groupCost(const std::vector<FusedInst> &Stream,
                   const std::vector<DecodedInst> &Prog, size_t pc) {
  return Stream[pc].Len > 1 ? Stream[pc].Cost : compCost(Prog[pc]);
}

/// Matches the longest catalog pattern starting at \p pc. Returns the
/// identity group when nothing matches.
FusedInst matchAt(const DecodedInst *Prog, size_t pc, size_t N) {
  const DecodedInst &I0 = Prog[pc];
  auto make = [&](uint16_t Kind, unsigned Len) {
    unsigned Cost = 0;
    for (unsigned K = 0; K != Len; ++K)
      Cost += compCost(Prog[pc + K]);
    assert(Cost < FusedCostLimit && "group cost exceeds the event margin");
    return FusedInst{Kind, uint8_t(Len), uint8_t(Cost)};
  };

  // Components never span functions: groups stay within the region a
  // WAR diagnostic would attribute them to, and the tail of one
  // function can't speculatively pair with the next one's entry.
  size_t R = 1;
  while (R < 3 && pc + R < N && Prog[pc + R].F == I0.F)
    ++R;

  MOp Op0 = I0.Op;
  int A0 = aluIdx(Op0);
  if (R >= 2) {
    const DecodedInst &I1 = Prog[pc + 1];
    MOp Op1 = I1.Op;
    int A1 = aluIdx(Op1);
    if (R >= 3) {
      const DecodedInst &I2 = Prog[pc + 2];
      MOp Op2 = I2.Op;
      int A2 = aluIdx(Op2);
      if (Op0 == MOp::LdrSlot && A1 >= 0 && Op2 == MOp::StrSlot)
        return make(uint16_t(FK_LdrSlot_Alu_StrSlot_Add + A1), 3);
      if (Op0 == MOp::MovImm && Op1 == MOp::LdrSlot && A2 >= 0)
        return make(uint16_t(FK_MovImm_LdrSlot_Alu_Add + A2), 3);
      if (Op0 == MOp::MovImm && Op1 == MOp::SetCond && Op2 == MOp::CBr)
        return make(FK_MovImm_SetCond_CBr, 3);
      if (Op0 == MOp::Lsl && Op1 == MOp::Lsr && Op2 == MOp::StrSlot)
        return make(FK_Lsl_Lsr_StrSlot, 3);
      if (Op0 == MOp::Add && Op1 == MOp::Mov && Op2 == MOp::Ldr)
        return make(FK_Add_Mov_Ldr, 3);
    }
    // ALU-parameterized pairs.
    if (Op0 == MOp::MovImm && A1 >= 0)
      return make(uint16_t(FK_MovImm_Alu_Add + A1), 2);
    if (A0 >= 0 && Op1 == MOp::Mov)
      return make(uint16_t(FK_Alu_Mov_Add + A0), 2);
    if (A0 >= 0 && Op1 == MOp::MovImm)
      return make(uint16_t(FK_Alu_MovImm_Add + A0), 2);
    if (Op0 == MOp::LdrSlot && A1 >= 0)
      return make(uint16_t(FK_LdrSlot_Alu_Add + A1), 2);
    if (A0 >= 0 && Op1 == MOp::StrSlot)
      return make(uint16_t(FK_Alu_StrSlot_Add + A0), 2);
    // Fixed ALU-ALU pairs.
    if (A0 >= 0 && A1 >= 0) {
      if (Op0 == MOp::Lsl && Op1 == MOp::Lsr) return make(FK_Lsl_Lsr, 2);
      if (Op0 == MOp::Lsr && Op1 == MOp::Lsl) return make(FK_Lsr_Lsl, 2);
      if (Op0 == MOp::Lsl && Op1 == MOp::Add) return make(FK_Lsl_Add, 2);
      if (Op0 == MOp::Mul && Op1 == MOp::Add) return make(FK_Mul_Add, 2);
      if (Op0 == MOp::Eor && Op1 == MOp::Lsl) return make(FK_Eor_Lsl, 2);
      if (Op0 == MOp::Add && Op1 == MOp::Add) return make(FK_Add_Add, 2);
    }
    // Fixed pairs.
    static const struct { MOp A, B; FusedKind K; } FixedPairs[] = {
        {MOp::MovImm, MOp::MovImm, FK_MovImm_MovImm},
        {MOp::MovImm, MOp::Mov, FK_MovImm_Mov},
        {MOp::Mov, MOp::MovImm, FK_Mov_MovImm},
        {MOp::Mov, MOp::Mov, FK_Mov_Mov},
        {MOp::MovImm, MOp::LdrSlot, FK_MovImm_LdrSlot},
        {MOp::LdrSlot, MOp::Mov, FK_LdrSlot_Mov},
        {MOp::Mov, MOp::LdrSlot, FK_Mov_LdrSlot},
        {MOp::LdrSlot, MOp::LdrSlot, FK_LdrSlot_LdrSlot},
        {MOp::StrSlot, MOp::MovImm, FK_StrSlot_MovImm},
        {MOp::StrSlot, MOp::Mov, FK_StrSlot_Mov},
        {MOp::Mov, MOp::StrSlot, FK_Mov_StrSlot},
        {MOp::StrSlot, MOp::LdrSlot, FK_StrSlot_LdrSlot},
        {MOp::LdrSlot, MOp::Str, FK_LdrSlot_Str},
        {MOp::Str, MOp::LdrSlot, FK_Str_LdrSlot},
        {MOp::Mov, MOp::Ldr, FK_Mov_Ldr},
        {MOp::Mov, MOp::Str, FK_Mov_Str},
        {MOp::SetCond, MOp::CBr, FK_SetCond_CBr},
    };
    for (const auto &FX : FixedPairs)
      if (Op0 == FX.A && Op1 == FX.B)
        return make(FX.K, 2);
  }
  // Identity group: the kind is the MOp itself; singles compute their
  // own cycle cost in the engine, so Cost is unused here.
  return {uint16_t(Op0), 1, 0};
}

} // namespace

FusedProgram emu_detail::fuseProgram(const std::vector<DecodedInst> &Prog) {
  FusedProgram FP;
  FP.Stream.reserve(Prog.size());
  for (size_t pc = 0; pc != Prog.size(); ++pc)
    FP.Stream.push_back(matchAt(Prog.data(), pc, Prog.size()));

  // Pass 2: concatenate adjacent groups that the pair catalog knows
  // about. Run to a fixpoint so chains build up ((A,B),C) style --
  // three rounds is typical. Only the head entry is rewritten; the
  // interior entries keep their own groups so a branch into the middle
  // of a superinstruction still lands on a valid head.
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (size_t pc = 0; pc != Prog.size(); ++pc) {
      FusedInst &G1 = FP.Stream[pc];
      size_t q = pc + G1.Len;
      if (q >= Prog.size() || Prog[q].F != Prog[pc].F)
        continue;
      uint16_t K = pairKind(G1.Kind, FP.Stream[q].Kind);
      if (K == FK_KindLimit)
        continue;
      unsigned Cost =
          groupCost(FP.Stream, Prog, pc) + groupCost(FP.Stream, Prog, q);
      if (Cost >= FusedCostLimit)
        continue;
      G1 = FusedInst{K, uint8_t(G1.Len + FP.Stream[q].Len), uint8_t(Cost)};
      Changed = true;
    }
  }

  for (const FusedInst &FI : FP.Stream)
    if (FI.Len > 1) {
      ++FP.FusedEntries;
      FP.CoveredInsts += FI.Len;
    }
  return FP;
}

std::vector<FastInst>
emu_detail::buildFastProgram(const std::vector<DecodedInst> &Prog,
                             const FusedProgram &FP) {
  std::vector<FastInst> Fast;
  Fast.reserve(Prog.size());
  for (size_t pc = 0; pc != Prog.size(); ++pc) {
    const DecodedInst &D = Prog[pc];
    const FusedInst &G = FP.Stream[pc];
    FastInst F{};
    F.Kind = G.Kind;
    F.Len = G.Len;
    F.Cost = G.Cost;
    F.Dst = D.Dst;
    F.Src0 = D.Src[0];
    F.Src1 = D.Src[1];
    switch (D.Op) {
    case MOp::MovImm:
      F.A = D.Imm;
      F.Aux = uint16_t(D.MovCost);
      break;
    case MOp::AddImm:
    case MOp::SpAdjust:
      F.A = D.Imm;
      break;
    case MOp::Ldr:
    case MOp::Str:
      F.A = D.Imm;
      F.Aux = uint16_t(D.Size | (D.Signed ? 0x100 : 0));
      break;
    case MOp::LdrSlot:
    case MOp::StrSlot:
    case MOp::FrameAddr:
      F.A = uint32_t(D.SlotOff);
      break;
    case MOp::SetCond:
      F.Aux = uint16_t(D.Pred);
      break;
    case MOp::SelectR:
      F.Aux = uint16_t(D.Src[2]);
      break;
    case MOp::Push:
    case MOp::Pop:
    case MOp::PopLoads:
      F.Aux = D.RegList;
      break;
    case MOp::Checkpoint:
      F.Aux = uint16_t(D.Cause);
      break;
    case MOp::Bl:
      // The call stores its return link pre-encoded so the hot path
      // never divides a byte offset back down to a stream index.
      F.T0 = D.Target[0];
      F.A = uint32_t(pc + 1);
      break;
    case MOp::B:
      F.T0 = D.Target[0];
      break;
    case MOp::CBr:
      F.T0 = D.Target[0];
      F.A = D.Target[1];
      break;
    default:
      break;
    }
    Fast.push_back(F);
  }
  return Fast;
}
