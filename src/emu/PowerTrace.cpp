#include "emu/PowerTrace.h"

using namespace wario;

namespace {

/// Deterministic xorshift32; traces must be reproducible across runs.
struct XorShift {
  uint32_t State;
  explicit XorShift(uint32_t Seed) : State(Seed ? Seed : 1) {}
  uint32_t next() {
    State ^= State << 13;
    State ^= State >> 17;
    State ^= State << 5;
    return State;
  }
  /// Uniform in [Lo, Hi].
  uint64_t range(uint64_t Lo, uint64_t Hi) {
    return Lo + next() % (Hi - Lo + 1);
  }
};

} // namespace

PowerSchedule wario::harvesterTraceAlpha(unsigned Periods) {
  XorShift Rng(0xA11CE5);
  std::vector<uint64_t> D;
  D.reserve(Periods);
  for (unsigned I = 0; I != Periods; ++I) {
    // 85% short bursts (50k-400k cycles), 15% long charges (1M-6M).
    if (Rng.next() % 100 < 85)
      D.push_back(Rng.range(50'000, 400'000));
    else
      D.push_back(Rng.range(1'000'000, 6'000'000));
  }
  return PowerSchedule::trace(std::move(D), "alpha");
}

PowerSchedule wario::harvesterTraceBeta(unsigned Periods) {
  XorShift Rng(0xBEE5);
  std::vector<uint64_t> D;
  D.reserve(Periods);
  for (unsigned I = 0; I != Periods; ++I) {
    // Quasi-periodic around 2.5M cycles with +-40% jitter.
    uint64_t Base = 2'500'000;
    uint64_t Jitter = Rng.range(0, Base * 4 / 5);
    D.push_back(Base * 3 / 5 + Jitter);
  }
  return PowerSchedule::trace(std::move(D), "beta");
}
