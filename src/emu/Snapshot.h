//===----------------------------------------------------------------------===//
///
/// \file
/// Snapshot/restore engine for the emulator: incremental replay for
/// crash-consistency campaigns and power-schedule sweeps.
///
/// The emulator is fully deterministic, and a crash-injected run is
/// byte-identical to the continuous-power golden run up to the crash
/// point. A SnapshotChain therefore records, during one golden run,
/// periodic machine snapshots — registers, cycle counters, the prefix
/// lengths of every append-only result vector, and memory as a
/// dirty-page copy-on-write journal — so a run that only diverges after
/// active cycle C can resume from the last snapshot at or before C
/// instead of re-executing from boot (Emulator::replay). A snapshot
/// costs O(pages dirtied since the previous snapshot), not O(memory).
///
/// Snapshots are taken only at "region-fresh" instruction boundaries:
/// immediately after a checkpoint commit, or the first boundary after
/// cold boot. At those points the WAR monitor's first-access set is
/// empty by construction, so no live-set capture is needed — restoring
/// is an O(dirty pages) memory patch plus an O(1) epoch bump.
///
/// Journal format: memory is divided into fixed 256-byte pages
/// (snapshot::PageSize). While recording, the machine marks each page
/// dirtied since the last snapshot; at a snapshot, the dirty pages are
/// copied (in ascending page order) into one append-only byte Blob, and
/// (page, blob offset) entries are appended to both a global PageLog
/// (grouped per snapshot — Snap::PageLogEnd delimits the groups) and a
/// per-page index (sorted by snapshot, enabling binary search). The
/// memory image at snapshot k is then: the base image, overlaid with
/// each page's latest journal entry at or before k.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_EMU_SNAPSHOT_H
#define WARIO_EMU_SNAPSHOT_H

#include "emu/Emulator.h"
#include "emu/Trace.h"

namespace wario {

namespace snapshot {
inline constexpr uint32_t PageShift = 8;
inline constexpr uint32_t PageSize = 1u << PageShift;
inline constexpr uint32_t NumPages = memmap::MemSize >> PageShift;
static_assert(memmap::MemSize % PageSize == 0);
} // namespace snapshot

/// When snapshots are taken during a recording run.
struct SnapshotSchedule {
  /// Minimum active cycles between snapshots. 0 = auto-tune: start
  /// dense (1024 cycles) and back off geometrically as the recording
  /// grows, so short programs get fine-grained coverage and long
  /// programs still fit under MaxSnapshots.
  uint64_t IntervalCycles = 0;
  /// Hard cap on recorded snapshots (recording continues past the cap;
  /// later crash points simply resume from the last snapshot).
  unsigned MaxSnapshots = 16384;
};

/// Reusable per-worker emulator state: the NVM image and the WAR
/// monitor's flat per-byte stamp array (3 MiB total). A campaign that
/// re-runs the same module thousands of times hands one scratch per
/// worker thread to Emulator::run/replay; between runs only the pages
/// that diverged from the module's base image are reset (Touched), and
/// the WAR epoch counter keeps increasing so stale access stamps never
/// match. Owner identifies the Emulator the arrays are primed for; a
/// different owner forces a full re-initialization.
struct EmulatorScratch {
  std::vector<uint8_t> Mem;
  /// Per-byte first-access stamp: (epoch << 1) | kind, kind 0 = read,
  /// 1 = write. Epoch and kind share one half-word so the threaded
  /// engine's hot path can test a 4-byte access with a single 8-byte
  /// compare (and the stamp array stays cache-resident: 2 bytes of
  /// stamp per byte of NVM instead of 4).
  std::vector<uint16_t> Access;
  uint32_t Epoch = 0; ///< Current region epoch (15 effective bits).
  std::vector<uint8_t> TouchedMark; ///< Per page: Mem differs from base.
  std::vector<uint32_t> Touched;    ///< Pages with TouchedMark set.
  /// Process-unique id of the owning Emulator (not its address: a
  /// freed Emulator's allocation can be reused for the next module's,
  /// and a thread_local scratch that matched on the address would then
  /// take the incremental-reset path against the wrong base image,
  /// keeping stale pages from the previous module).
  uint64_t Owner = 0;
  /// Trace-engine hot-path state (heat counters and built superblocks,
  /// DESIGN.md §7.9). Living in the scratch, it survives across runs of
  /// the same module: a campaign's second run enters the first run's
  /// superblocks without re-warming. Reset with the rest of the scratch
  /// whenever Owner changes; engines other than trace never touch it.
  emu_detail::TraceState Trace;
};

/// The recorded artifact of one continuous-power golden run: the
/// snapshot sequence, the dirty-page journal, and a full copy of the
/// run's EmulatorResult (so resumed runs can restore result-vector
/// prefixes, and tail-spliced runs can borrow the golden tail).
class SnapshotChain {
public:
  /// One recorded machine state at a region-fresh boundary.
  struct Snap {
    uint64_t ActiveCycle = 0; ///< ActiveSinceBoot at the boundary.
    uint64_t TotalCycles = 0;
    uint64_t Instructions = 0;
    uint64_t Checkpoints = 0;
    uint64_t InterruptsTaken = 0;
    uint64_t WarViolations = 0;
    uint64_t CyclesSinceIrq = 0;
    uint64_t RegionStartCycles = 0;
    CheckpointCauses Causes;
    uint32_t Regs[NumPRegs] = {};
    uint32_t Pc = 0;
    bool Primask = false;
    bool ProgressThisBoot = false;
    /// Taken at the boundary right after a step()-path checkpoint
    /// commit (tail-splice candidates; the cold-boot snapshot is not).
    bool CommitAligned = false;
    /// Prefix lengths of the append-only result vectors at this
    /// boundary (indices into Final's vectors).
    uint32_t OutputLen = 0;
    uint32_t RegionSizesLen = 0;
    uint32_t WarReportsLen = 0;
    uint32_t CommitsLen = 0;
    uint32_t StoreCyclesLen = 0;
    /// PageLog entries [0, PageLogEnd) cover snapshots up to and
    /// including this one.
    uint32_t PageLogEnd = 0;
  };

  /// One journaled page copy: Blob[BlobOff, BlobOff + PageSize).
  struct PageRef {
    uint32_t Page = 0;
    uint32_t BlobOff = 0;
  };
  /// Per-page index entry: the page's content as of snapshot SnapIdx.
  struct PageEntry {
    uint32_t SnapIdx = 0;
    uint32_t BlobOff = 0;
  };

  bool valid() const { return Module != nullptr && !Snaps.empty(); }
  size_t size() const { return Snaps.size(); }
  void clear();
  /// Approximate footprint in bytes (snapshots + journal + final copy).
  size_t bytes() const;

  /// Index of the last snapshot with ActiveCycle <= Limit, or -1. A
  /// crash budget of C is safe to resume from any snapshot at or before
  /// C: loop-boundary active-cycle values are strictly increasing, so
  /// the failure fires at the same boundary either way.
  int governing(uint64_t Limit) const;

  /// The content of \p Page as of snapshot \p SnapIdx: the latest
  /// journal copy at or before it, or nullptr if the page still equals
  /// the base image there.
  const uint8_t *pageAt(uint32_t Page, int SnapIdx) const;

  // Engine-internal data (filled by Emulator::record, read by
  // Emulator::replay; exposed for the snapshot tests and benches).
  const MModule *Module = nullptr;
  std::string Entry;
  EmulatorOptions RecordedEO;
  std::vector<Snap> Snaps;
  std::vector<PageRef> PageLog;
  std::vector<std::vector<PageEntry>> PerPage; ///< snapshot::NumPages.
  std::vector<uint32_t> JournaledPages;        ///< Unique, first-touch order.
  std::vector<uint8_t> Blob;
  EmulatorResult Final;
};

/// How Emulator::replay should use a chain. Every field is advisory in
/// the sense that an invalid or incompatible chain degrades to a cold
/// run with identical results — callers never need their own fallback.
struct ReplayPlan {
  const SnapshotChain *Chain = nullptr;
  /// Stop (Ok, partial result) at the first instruction boundary where
  /// ActiveSinceBoot >= StopAtActiveCycle (0 = run to completion). The
  /// stop point is checked identically on cold and resumed runs.
  uint64_t StopAtActiveCycle = 0;
  /// After the last injected power failure, watch for the machine state
  /// to reconverge exactly with a recorded commit-aligned snapshot; on
  /// an exact match (registers + memory), splice the golden tail's
  /// counters/output instead of re-executing it. Only applies when the
  /// run collects no event trace/window and takes no interrupts.
  bool AllowTailSplice = false;
  /// Spliced runs copy the golden final NVM image by construction; set
  /// this to skip the 1 MiB copy when the caller will not read it.
  bool OmitFinalMemoryOnSplice = false;
};

/// What replay actually did (for stats and tests; results never vary).
struct ReplayOutcome {
  bool Resumed = false;
  bool Spliced = false;
  int ResumeSnapshot = -1;
  int SpliceSnapshot = -1;
};

/// Global kill-switch: WARIO_SNAPSHOTS=0 disables snapshot use in the
/// fault injector and the bench harness (for A/B wall-clock runs; all
/// reports stay byte-identical either way).
bool snapshotsEnabled();

} // namespace wario

#endif // WARIO_EMU_SNAPSHOT_H
