//===----------------------------------------------------------------------===//
///
/// \file
/// Trace recorder and superblock builder (see Trace.h). Both run on the
/// cold side of the engine: the recorder once per dispatched group head
/// while a candidate path is being followed, the builder once per hot
/// head. The engine's hot loop only ever walks the finished Code array.
///
//===----------------------------------------------------------------------===//

#include "emu/Trace.h"

#include "emu/Emulator.h"

#include <bit>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

using namespace wario;
using namespace wario::emu_detail;

namespace {

/// Ops the superblock contract cannot carry: the pseudo ops that
/// unconditionally bail to the interpreter (recording through them
/// would abort at the bail anyway; refusing early keeps the head from
/// wasting a path). Everything else is carried: IntMask only delays
/// the interrupt bound the entry margin already honors, IntUnmask
/// conservatively exits the engine (through the SOrig-mapped flush)
/// whenever interrupts are configured, divides bail only on a zero
/// divisor (and the bail flush maps back through Orig), Bl's link
/// value is pre-encoded in its A field (position-independent), and a
/// recorded Ret becomes an FK_TraceRet guard.
bool traceStopOp(MOp Op) {
  switch (Op) {
  case MOp::MovGlobal:
  case MOp::CallPseudo:
  case MOp::ArgGet:
    return true;
  default:
    return false;
  }
}

/// Cycle cost an identity (Len == 1) record charges when it executes —
/// must mirror the threaded engine's identity handlers exactly, since
/// the sum becomes the superblock's once-per-entry margin check and the
/// Cost byte of refused groups.
uint64_t identityCost(const FastInst &F) {
  switch (MOp(F.Kind)) {
  case MOp::MovImm:
    return F.Aux;
  case MOp::SetCond:
  case MOp::SelectR:
  case MOp::Ldr:
  case MOp::Str:
  case MOp::LdrSlot:
  case MOp::StrSlot:
  case MOp::Out:
    return 2;
  case MOp::B:
  case MOp::CBr:
  case MOp::Bl:
  case MOp::Ret:
    return 1 + cycles::PipelineRefill;
  case MOp::UDiv:
  case MOp::SDiv:
    return 6;
  case MOp::Push:
  case MOp::Pop:
  case MOp::PopLoads:
    return 1 + unsigned(std::popcount(unsigned(F.Aux)));
  case MOp::Checkpoint:
    return cycles::Checkpoint;
  default:
    // ALU ops, Mov, AddImm, FrameAddr, SpAdjust, Nop. Stop ops never
    // reach a recorded path.
    assert(!traceStopOp(MOp(F.Kind)) && "stop op on a recorded path");
    return 1;
  }
}

/// One stitched group of the path under construction. Components are
/// Prog[MIdx] .. Prog[MIdx + Len - 1] (refusion keeps them contiguous).
struct Seg {
  uint32_t MIdx;
  uint16_t Kind;
  uint32_t Len;
  uint64_t Cost;
};

/// WARIO_TRACE_LOG=1 dumps recorder/builder decisions to stderr.
bool traceLogOn() {
  static const bool On = [] {
    const char *E = std::getenv("WARIO_TRACE_LOG");
    return E && *E && *E != '0';
  }();
  return On;
}

} // namespace

RecordVerdict emu_detail::traceRecordStep(TraceState &TS, uint32_t Target) {
  // Closing back on the head is the natural end of a loop trace; keep
  // unrolling until the closure budget is spent.
  if (Target == TS.Head && ++TS.Closures >= TraceMaxClosures)
    return RecordVerdict::Build;
  if (TS.Path.size() >= TraceMaxPath) {
    if (traceLogOn())
      std::fprintf(stderr, "[trace] head=%u path cap, closures=%u -> %s\n",
                   TS.Head, TS.Closures, TS.Closures ? "build" : "abort");
    return TS.Closures ? RecordVerdict::Build : RecordVerdict::Abort;
  }
  TS.Path.push_back(Target);
  return RecordVerdict::Continue;
}

const Superblock *
emu_detail::buildSuperblock(TraceState &TS,
                            const std::vector<DecodedInst> &Prog,
                            const std::vector<FastInst> &Fast,
                            uint32_t FinalSucc) {
  if (TS.Path.empty() || TS.Blocks.size() >= TraceMaxBlocks) {
    if (traceLogOn())
      std::fprintf(stderr, "[trace] head=%u build refused: %s\n", TS.Head,
                   TS.Path.empty() ? "empty path" : "block cap");
    return nullptr;
  }

  // Expand each recorded block entry by walking the static stream:
  // between two recorded transfers execution is pure fall-through, so
  // the interior groups are exactly the stream's groups from the entry
  // to the first branch tail — which must target the next recorded
  // entry (a mismatch would mean an event slipped between two recorded
  // dispatches, or the path crossed an op the contract can't carry).
  // A failure past at least one full closure doesn't kill the trace:
  // the path truncates back to its last revisit of the head and the
  // loop that did fit is stitched (FinalSucc becomes the head itself).
  // Oversized paths truncate the same way even when they walked clean —
  // the largest closure under TraceSoftRecordCap keeps the stitched
  // code L1-resident instead of streaming an 8-way unroll through L2.
  std::vector<Seg> Segs;
  Segs.reserve(TS.Path.size() * 4);
  size_t Records = 0;
  struct Cut {
    size_t Segs;
    size_t Records;
  };
  std::vector<Cut> Closures; // Walk position at each head revisit.
  bool Bad = false, Truncated = false;
  for (size_t I = 0; I != TS.Path.size() && !Bad; ++I) {
    if (I && TS.Path[I] == TS.Head)
      Closures.push_back({Segs.size(), Records});
    uint32_t Next = I + 1 != TS.Path.size() ? TS.Path[I + 1] : FinalSucc;
    uint32_t G = TS.Path[I];
    for (;;) {
      const FastInst &F = Fast[G];
      if (F.Len == 1 && F.Kind < FK_FirstFused && traceStopOp(MOp(F.Kind))) {
        if (traceLogOn())
          std::fprintf(stderr, "[trace] head=%u stop op kind=%u at %u\n",
                       TS.Head, unsigned(F.Kind), G);
        Bad = true;
        break;
      }
      if ((Records += F.Len) > TraceMaxRecords) {
        if (traceLogOn())
          std::fprintf(stderr, "[trace] head=%u record cap\n", TS.Head);
        Bad = true;
        break;
      }
      Segs.push_back(
          {G, F.Kind, F.Len, F.Len > 1 ? uint64_t(F.Cost) : identityCost(F)});
      uint32_t TailIdx = G + F.Len - 1;
      MOp TOp = Prog[TailIdx].Op;
      if (TOp == MOp::B || TOp == MOp::Bl) {
        // Static transfer (an unlinked BadTarget call would have
        // bailed mid-recording): the target must be the recorded one.
        if (Fast[TailIdx].T0 != Next) {
          if (traceLogOn())
            std::fprintf(stderr,
                         "[trace] head=%u transfer at %u -> %u, recorded "
                         "%u\n",
                         TS.Head, TailIdx, Fast[TailIdx].T0, Next);
          Bad = true;
        }
        break;
      }
      if (TOp == MOp::CBr) {
        if (Fast[TailIdx].T0 != Next && Fast[TailIdx].A != Next) {
          if (traceLogOn())
            std::fprintf(stderr,
                         "[trace] head=%u CBr at %u targets %u/%u, "
                         "recorded %u\n",
                         TS.Head, TailIdx, Fast[TailIdx].T0, Fast[TailIdx].A,
                         Next);
          Bad = true;
        }
        break;
      }
      if (TOp == MOp::Ret)
        break; // Dynamic return: the recorded Next becomes a guard.
      G += F.Len; // Fall through to the next group of the same block.
    }
  }
  if (Bad && Closures.empty())
    return nullptr; // Nothing loop-shaped fit; blacklist.
  if (!Closures.empty() && (Bad || Records > TraceSoftRecordCap)) {
    // Largest closure under the soft cap; a single oversized iteration
    // keeps its first (and only complete) closure.
    const Cut *C = &Closures.front();
    for (const Cut &K : Closures)
      if (K.Records <= TraceSoftRecordCap)
        C = &K;
    Segs.resize(C->Segs);
    FinalSucc = TS.Head;
    Truncated = true;
  }

  // Refusion: the same pair-catalog fixpoint as fuseProgram, but across
  // the *recorded* path and under the relaxed TraceRefuseCostLimit —
  // the aggregate margin check at superblock entry covers every
  // interior boundary, so groups may grow past FusedCostLimit.
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (size_t I = 0; I + 1 < Segs.size();) {
      Seg &S = Segs[I];
      const Seg &T = Segs[I + 1];
      MOp Tail = Prog[S.MIdx + S.Len - 1].Op;
      uint16_t K;
      if (Tail != MOp::B && Tail != MOp::CBr &&   // true fall-through
          Tail != MOp::Bl && Tail != MOp::Ret &&  // (calls end segments)
          S.MIdx + S.Len == T.MIdx &&             // contiguous components
          Prog[S.MIdx].F == Prog[T.MIdx].F &&     // same function
          S.Cost + T.Cost < TraceRefuseCostLimit &&
          S.Len + T.Len <= TraceMaxGroupLen &&
          (K = pairKind(S.Kind, T.Kind)) != FK_KindLimit) {
        S.Kind = K;
        S.Len += T.Len;
        S.Cost += T.Cost;
        Segs.erase(Segs.begin() + long(I) + 1);
        Changed = true;
        continue; // Try to grow the same segment further.
      }
      ++I;
    }
  }

  // Layout: copy each segment's records contiguously, rewrite the head
  // with the refused group, and remember where each segment starts so
  // branch tails can be rewired to superblock indices afterwards.
  auto SB = std::make_unique<Superblock>();
  SB->Head = TS.Head;
  size_t NRec = 0;
  for (const Seg &S : Segs)
    NRec += S.Len;
  SB->Code.reserve(NRec + Segs.size() + 1);
  SB->Orig.reserve(NRec + Segs.size() + 1);
  std::vector<uint32_t> Starts;
  Starts.reserve(Segs.size());
  for (const Seg &S : Segs) {
    Starts.push_back(uint32_t(SB->Code.size()));
    for (uint32_t K = 0; K != S.Len; ++K) {
      SB->Code.push_back(Fast[S.MIdx + K]);
      SB->Orig.push_back(S.MIdx + K);
    }
    FastInst &Head = SB->Code[Starts.back()];
    Head.Kind = S.Kind;
    Head.Len = uint8_t(S.Len);
    Head.Cost = uint8_t(S.Len > 1 ? S.Cost : 0);
    SB->WorstCost += S.Cost;
  }

  // Terminal stub: falling off the last segment either loops back to
  // the head (re-checking the margin) or resumes the merged stream.
  auto pushStub = [&SB](uint16_t Kind, uint32_t Target) {
    FastInst Stub = {};
    Stub.Kind = Kind;
    Stub.Len = 1;
    Stub.A = Target;
    uint32_t At = uint32_t(SB->Code.size());
    SB->Code.push_back(Stub);
    SB->Orig.push_back(Target);
    return At;
  };
  uint32_t Terminal =
      pushStub(FinalSucc == TS.Head ? FK_TraceLoop : FK_TraceFall, FinalSucc);

  // Rewire branch tails: the recorded direction continues inside the
  // superblock, the other direction of a CBr exits through a fresh
  // guard stub back into the merged stream. Index-based access only —
  // pushStub may reallocate Code.
  for (size_t I = 0; I != Segs.size(); ++I) {
    const Seg &S = Segs[I];
    uint32_t Succ = I + 1 != Segs.size() ? Segs[I + 1].MIdx : FinalSucc;
    uint32_t Next = I + 1 != Segs.size() ? Starts[I + 1] : Terminal;
    uint32_t TailIdx = Starts[I] + S.Len - 1;
    switch (Prog[S.MIdx + S.Len - 1].Op) {
    case MOp::B:
    case MOp::Bl: // The link value lives in A; only the target moves.
      SB->Code[TailIdx].T0 = Next;
      break;
    case MOp::Ret: {
      // Guarded return: expected link in A, on-trace continuation in
      // T0. Orig keeps the Ret's merged index so a bad-lr bail flushes
      // to the right pc.
      FastInst &Guard = SB->Code[TailIdx];
      Guard.Kind = FK_TraceRet;
      Guard.Len = 1;
      Guard.Cost = 0;
      Guard.A = CodeAddrBit | Succ;
      Guard.T0 = Next;
      break;
    }
    case MOp::CBr: {
      bool Taken = SB->Code[TailIdx].T0 == Succ;
      uint32_t Off = Taken ? SB->Code[TailIdx].A : SB->Code[TailIdx].T0;
      uint32_t Exit = pushStub(FK_TraceExit, Off);
      SB->Code[TailIdx].T0 = Taken ? Next : Exit;
      SB->Code[TailIdx].A = Taken ? Exit : Next;
      break;
    }
    default:
      break; // Fall-through tails need nothing; stitching is adjacency.
    }
  }

  // Stamp-elision marking over the body records, in execution order: a
  // frame slot the path already touched is read-stamped, and one it
  // already stored is fully write-stamped — the engine can skip the
  // SWAR check for the later access (FastInst::Aux == 1, superblock
  // code only; slot records in the merged stream keep Aux == 0). The
  // first touch is never elided: its read stamp is what lets a later
  // store's WAR detection fire. Epoch bumps and SP adjustments
  // invalidate everything known.
  std::unordered_map<uint32_t, bool> SlotStored;
  for (uint32_t R = 0; R != NRec; ++R) {
    FastInst &Rec = SB->Code[R];
    switch (Prog[SB->Orig[R]].Op) {
    case MOp::LdrSlot: {
      auto [It, Fresh] = SlotStored.try_emplace(Rec.A, false);
      (void)It;
      if (!Fresh)
        Rec.Aux = 1;
      break;
    }
    case MOp::StrSlot: {
      auto [It, Fresh] = SlotStored.try_emplace(Rec.A, true);
      if (!Fresh) {
        if (It->second)
          Rec.Aux = 1;
        It->second = true;
      }
      break;
    }
    case MOp::Checkpoint:
    case MOp::Push:
    case MOp::Pop:
    case MOp::PopLoads:
    case MOp::SpAdjust:
      SlotStored.clear();
      break;
    default:
      break;
    }
  }

  // Guard merging: a group whose tail is a rewired direction guard may
  // concatenate with the group laid out right after it, turning the
  // guard into an interior component (WB_GUARD in the engine) that
  // either falls through to the next record or side-exits with the
  // prefix cost. Only the head record's Kind/Len/Cost change — the
  // guard keeps its rewired targets, and its on-path direction is by
  // construction the next record index, which is what WB_GUARD tests.
  // The static pass and the refusion fixpoint above never merge across
  // a branch tail, so every guard-bearing kind is superblock-private.
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (size_t I = 0; I + 1 < Segs.size();) {
      Seg &S = Segs[I];
      const Seg &T = Segs[I + 1];
      uint32_t TailIdx = Starts[I] + S.Len - 1;
      uint16_t K;
      if (Prog[SB->Orig[TailIdx]].Op == MOp::CBr &&
          S.Cost + T.Cost < TraceRefuseCostLimit &&
          S.Len + T.Len <= TraceMaxGroupLen &&
          (K = pairKind(S.Kind, T.Kind)) != FK_KindLimit) {
        S.Kind = K;
        S.Len += T.Len;
        S.Cost += T.Cost;
        FastInst &Head = SB->Code[Starts[I]];
        Head.Kind = K;
        Head.Len = uint8_t(S.Len);
        Head.Cost = uint8_t(S.Cost);
        Segs.erase(Segs.begin() + long(I) + 1);
        Starts.erase(Starts.begin() + long(I) + 1);
        Changed = true;
        continue;
      }
      ++I;
    }
  }

  if (traceLogOn()) {
    std::fprintf(stderr,
                 "[trace] head=%u built: %zu raw -> %zu segs, %zu records, "
                 "worst=%llu, loop=%d, trunc=%d kinds:",
                 TS.Head, TS.Path.size(), Segs.size(), NRec,
                 (unsigned long long)SB->WorstCost, FinalSucc == TS.Head,
                 Truncated);
    for (const Seg &S : Segs)
      std::fprintf(stderr, " %u/%u@%u", unsigned(S.Kind), S.Len, S.MIdx);
    std::fprintf(stderr, "\n");
  }
  TS.SBIdx[TS.Head] = int32_t(TS.Blocks.size());
  TS.Blocks.push_back(std::move(SB));
  return TS.Blocks.back().get();
}
