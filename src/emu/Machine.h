//===----------------------------------------------------------------------===//
///
/// \file
/// The emulated machine: registers, cycle counters, WAR-monitored NVM,
/// the checkpoint/power substrate, and the snapshot/replay hooks —
/// shared by the two execution engines. Emulator.cpp defines the outer
/// event loop and the central-switch interpreter (step); Threaded-
/// Engine.cpp defines the direct-threaded fast loop (runThreaded) over
/// the same state, entered by the outer loop whenever no interpreter-
/// visible event (power failure, interrupt, stop/trace/cycle budget)
/// can fire within the dispatch margin.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_EMU_MACHINE_H
#define WARIO_EMU_MACHINE_H

#include "emu/Emulator.h"
#include "emu/Fusion.h"
#include "emu/Snapshot.h"
#include "emu/Trace.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace wario {

/// The per-module preparation an Emulator instance amortizes across
/// runs: the flattened + decoded program, its fused-group stream, and
/// the initial NVM image.
struct Emulator::Impl {
  const MModule &M;
  /// Process-unique instance id (EmulatorScratch::Owner) — never an
  /// address, so scratch reuse is immune to allocator address reuse
  /// across Emulator lifetimes.
  const uint64_t Uid;
  std::vector<emu_detail::CodeRef> Code; ///< Diagnostics (WAR reports).
  std::vector<emu_detail::DecodedInst> Prog; ///< Dense execution form.
  emu_detail::FusedProgram Fused;  ///< Group stream parallel to Prog.
  std::vector<emu_detail::FastInst> Fast; ///< Merged engine records.
  std::vector<uint32_t> FuncEntry; ///< Entry code index per function.
  std::vector<uint8_t> BaseImage;  ///< Initial NVM (zeros + InitImage).

  explicit Impl(const MModule &M);
};

namespace emu_detail {

class Machine {
public:
  /// \p Persistent: the scratch outlives this run (its arrays must stay
  /// coherent for reuse), so the final NVM image is copied out instead
  /// of moved.
  Machine(const Emulator::Impl &P, const EmulatorOptions &Opts,
          EmulatorScratch &Scr, bool Persistent)
      : P(P), Opts(Opts), Scr(Scr), Persistent(Persistent), TS(Scr.Trace),
        Strat(P.M.Strat) {}

  /// Journals periodic snapshots into \p C while running.
  void enableRecord(SnapshotChain *C, const SnapshotSchedule &S) {
    Chain = C;
    Sched = S;
  }

  /// Resumes from / splices against Plan.Chain per the plan.
  void enableReplay(const ReplayPlan &P, ReplayOutcome *O) {
    Plan = &P;
    Out = O;
    StopAt = P.StopAtActiveCycle;
  }

  /// Accumulates dispatch statistics (ThreadedEngine.h) into \p S.
  void setStats(EngineStats *S) { Stats = S; }

  EmulatorResult run(const std::string &Entry);

  // --- Helpers --------------------------------------------------------------
  void fail(std::string Msg) {
    if (!Failed) {
      Failed = true;
      ErrorMsg = std::move(Msg);
    }
  }

  void spend(uint64_t C) {
    Res.TotalCycles += C;
    ActiveSinceBoot += C;
    CyclesSinceIrq += C;
  }

  uint32_t &reg(int R) {
    assert(R >= 0 && R < NumPRegs);
    return Regs[R];
  }

  // --- Scratch / page tracking ----------------------------------------------
  void prepareScratch();

  void touchPage(uint32_t Pg) {
    if (!Scr.TouchedMark[Pg]) {
      Scr.TouchedMark[Pg] = 1;
      Scr.Touched.push_back(Pg);
    }
  }

  /// Page-grain write tracking: which pages diverged from the base
  /// image (scratch reuse + splice comparison) and which were dirtied
  /// since the last snapshot (the copy-on-write journal). Off — a
  /// single predictable branch — on plain cold runs.
  void noteWrite(uint32_t Addr, unsigned Size) {
    if (!TrackWrites)
      return;
    uint32_t P0 = Addr >> snapshot::PageShift;
    uint32_t P1 = (Addr + Size - 1) >> snapshot::PageShift;
    for (uint32_t Pg = P0; Pg <= P1; ++Pg) {
      touchPage(Pg);
      if (Chain && !SnapMark[Pg]) {
        SnapMark[Pg] = 1;
        SnapDirty.push_back(Pg);
      }
    }
  }

  // --- Memory with WAR monitoring -------------------------------------------
  enum class Access : uint8_t { Read, Write };

  bool monitored(uint32_t Addr) const {
    if (Addr >= CkptBase && Addr < CkptEnd)
      return false; // Checkpoint buffers are incorruptible by design.
    return true;
  }

  /// Starts a fresh idempotent region: previous first-access records are
  /// invalidated by bumping the epoch instead of clearing a map, so a
  /// region reset is O(1). The epoch lives in the scratch and keeps
  /// increasing across runs, which is what makes scratch reuse safe.
  /// Stamps pack (epoch << 1) | kind in 16 bits, so the epoch wraps at
  /// 2^15 (one O(MemSize) refill every 32k regions).
  void clearFirstAccess() {
    if (++Scr.Epoch >= 0x8000u) { // Wrapped: stale entries are invalid.
      std::fill(Scr.Access.begin(), Scr.Access.end(), uint16_t(0));
      Scr.Epoch = 1;
    }
  }

  /// \p Logged: the write is a speculative-strategy undo-logged WAR
  /// store — it may legally target a read-first byte (the undo log
  /// restores the read value at rollback), so the monitor records it
  /// without counting a violation.
  void recordAccess(uint32_t Addr, unsigned Size, Access Kind,
                    bool Logged = false);
  uint32_t loadMem(uint32_t Addr, unsigned Size, bool SignExtend);
  void storeMem(uint32_t Addr, unsigned Size, uint32_t V,
                bool Logged = false);

  /// Raw word access bypassing the monitor (checkpoint machinery).
  uint32_t rawLoad(uint32_t Addr);
  void rawStore(uint32_t Addr, uint32_t V);

  // --- Strategy runtimes (docs/STRATEGIES.md) ---------------------------------
  /// Differential: saves a pristine copy of every page the region is
  /// about to dirty, so an uncommitted region can be rolled back at
  /// reboot. Called from storeMem before the bytes change.
  void diffJournal(uint32_t Addr, unsigned Size) {
    uint32_t P0 = Addr >> snapshot::PageShift;
    uint32_t P1 = (Addr + Size - 1) >> snapshot::PageShift;
    for (uint32_t Pg = P0; Pg <= P1; ++Pg) {
      if (DiffMark[Pg])
        continue;
      DiffMark[Pg] = 1;
      DiffPages.push_back(Pg);
      const uint8_t *Page = Scr.Mem.data() + size_t(Pg) * snapshot::PageSize;
      DiffBlob.insert(DiffBlob.end(), Page, Page + snapshot::PageSize);
    }
  }

  /// Rolls uncommitted state back at a reboot boundary and clears the
  /// journals: differential restores every dirty page from its saved
  /// copy; speculative replays the undo log in reverse. No-ops (beyond
  /// the clears) for the idempotent strategy, whose regions re-execute.
  void rollbackUncommitted();

  /// Drops journaled rollback state without applying it (commit, cold
  /// start, snapshot restore — every point where the region is fresh).
  void clearStrategyJournals() {
    for (uint32_t Pg : DiffPages)
      DiffMark[Pg] = 0;
    DiffPages.clear();
    DiffBlob.clear();
    SpecLog.clear();
  }

  // --- Snapshots -------------------------------------------------------------
  bool compatible(const SnapshotChain &C) const;
  void maybeSnapshot();
  void takeSnapshot();
  void restoreFrom(const SnapshotChain &C, int K);
  bool trySplice();

  // --- Power / checkpoints ----------------------------------------------------
  void coldStart();
  void reboot();
  void commitCheckpoint(CheckpointCause Cause);
  void serviceInterrupt();

  // --- Execution --------------------------------------------------------------
  const CodeRef &Cur() const { return P.Code[Pc & ~CodeAddrBit]; }

  /// One interpreter step (the oracle path; also serves the threaded
  /// engine for event-boundary single-stepping and bail-outs).
  void step();

  /// Direct-threaded fast loop (ThreadedEngine.cpp): executes fused
  /// groups until ActiveSinceBoot would reach \p Limit, the region goes
  /// stale for the outer loop (checkpoint under recording/splicing), or
  /// the run ends. The caller guarantees Limit is at least FusedCostLimit
  /// under the next interpreter-visible event cycle, so no event can
  /// fire at a group-interior instruction boundary.
  void runThreaded(uint64_t Limit);

  /// The loop body behind runThreaded. TraceMode adds the hot-trace
  /// superblock layer (Trace.h): heat counting on back edges, path
  /// recording, and straight-line superblock dispatch with the margin
  /// check hoisted to entry. The \<false\> instantiation folds every
  /// trace hook away and is the plain PR-6 threaded engine.
  template <bool TraceMode> void runThreadedT(uint64_t Limit);

  /// The earliest active-cycle at which an outer-loop event could fire:
  /// the power budget \p OnBudget, the stop point, the interrupt timer,
  /// the cycle budget, or a requested trace window. The threaded engine
  /// may run only while strictly below fastLimit() - FusedCostLimit.
  uint64_t fastLimit(uint64_t OnBudget) const {
    uint64_t L = OnBudget;
    uint64_t Left = Opts.MaxCycles - Res.TotalCycles;
    if (Left <= UINT64_MAX - ActiveSinceBoot)
      L = std::min(L, ActiveSinceBoot + Left);
    if (StopAt)
      L = std::min(L, StopAt);
    if (Opts.InterruptPeriod && !Primask)
      L = std::min(L, ActiveSinceBoot +
                          (Opts.InterruptPeriod - CyclesSinceIrq));
    if (Opts.TraceWindowHi && ActiveSinceBoot <= Opts.TraceWindowHi)
      L = std::min(L, Opts.TraceWindowLo);
    return L;
  }

  // --- State ------------------------------------------------------------------
  const Emulator::Impl &P;
  EmulatorOptions Opts;
  EmulatorScratch &Scr;
  bool Persistent;
  std::string CurEntry;
  uint32_t MainEntry = 0;

  uint32_t Regs[NumPRegs] = {};
  uint32_t Pc = 0;
  bool Primask = false;
  bool Pending = false;
  bool Done = false;
  bool Failed = false;
  bool Stopped = false;
  std::string ErrorMsg;

  uint64_t RegionStartCycles = 0;
  uint64_t ActiveSinceBoot = 0;
  uint64_t CyclesSinceIrq = 0;
  bool ProgressThisBoot = false;
  /// The WAR live set is empty and no instruction has executed since
  /// the last commit/boot — the only states snapshots record and
  /// splices match against.
  bool RegionFresh = false;
  bool TrackWrites = false;
  /// Resolved engine choice for this run (run() sets it; the threaded
  /// loop additionally requires a non-empty fused stream).
  bool UseThreaded = false;
  /// Trace engine: UseThreaded plus the hot-trace superblock layer.
  bool UseTrace = false;
  /// The threaded loop must return to the outer loop at every
  /// checkpoint commit (snapshot cadence under recording, splice
  /// matching under replay); otherwise it may continue in-loop.
  bool ExitOnCommit = false;

  // Recording state.
  SnapshotChain *Chain = nullptr;
  SnapshotSchedule Sched;
  uint64_t EffInterval = 0;
  bool AutoTune = false;
  size_t GrowAt = 0;
  std::vector<uint8_t> SnapMark;   ///< Per page: dirty since last snap.
  std::vector<uint32_t> SnapDirty; ///< Pages with SnapMark set.

  // Replay state.
  const ReplayPlan *Plan = nullptr;
  ReplayOutcome *Out = nullptr;
  uint64_t StopAt = 0;
  uint32_t ResumeLogEnd = 0;
  bool SpliceEnabled = false;
  unsigned SpliceAttempts = 4;
  bool Spliced = false;

  EngineStats *Stats = nullptr;

  /// Hot-trace superblock state (trace engine only; lazily sized on the
  /// first runThreadedT<true> entry). Lives in the scratch so heat and
  /// superblocks survive across runs of the same module — never
  /// snapshotted, never part of any result.
  TraceState &TS;

  // Strategy-runtime state (docs/STRATEGIES.md). The journals are only
  // populated for their strategy and are empty at every region-fresh
  // point, so snapshots and splices need no extra bookkeeping.
  CheckpointStrategy Strat;
  std::vector<uint8_t> DiffMark;   ///< Per page: journaled this region.
  std::vector<uint32_t> DiffPages; ///< Journaled pages, journal order.
  std::vector<uint8_t> DiffBlob;   ///< Saved page copies (parallel).
  struct SpecEntry {
    uint32_t Addr;
    uint8_t Size;
    uint32_t Old;
  };
  std::vector<SpecEntry> SpecLog;  ///< Speculative undo log (append).

  EmulatorResult Res;
};

} // namespace emu_detail
} // namespace wario

#endif // WARIO_EMU_MACHINE_H
