#include "transforms/LoopUnroller.h"

#include "ir/Cloning.h"
#include "transforms/SSAUpdater.h"
#include "transforms/Utils.h"

#include <algorithm>
#include <unordered_set>

using namespace wario;

/// Within one iteration all defs precede their uses in this order, which
/// the unroller's cloning loop relies on.
std::vector<BasicBlock *> wario::loopBodyRPO(Loop &L) {
  BasicBlock *H = L.getHeader();
  std::vector<BasicBlock *> PostOrder;
  std::unordered_set<const BasicBlock *> Visited;
  // Iterative DFS with an explicit stack of (block, next-successor).
  std::vector<std::pair<BasicBlock *, unsigned>> Stack;
  Stack.emplace_back(H, 0);
  Visited.insert(H);
  while (!Stack.empty()) {
    auto &[BB, NextIdx] = Stack.back();
    std::vector<BasicBlock *> Succs = BB->successors();
    if (NextIdx >= Succs.size()) {
      PostOrder.push_back(BB);
      Stack.pop_back();
      continue;
    }
    BasicBlock *S = Succs[NextIdx++];
    if (S == H || !L.contains(S) || Visited.count(S))
      continue;
    Visited.insert(S);
    Stack.emplace_back(S, 0);
  }
  return {PostOrder.rbegin(), PostOrder.rend()};
}

UnrollResult wario::unrollLoop(Loop &L, unsigned N) {
  UnrollResult R;
  assert(N >= 2 && "unroll factor must be at least 2");
  if (!L.getSubLoops().empty())
    return R; // Only innermost loops.
  BasicBlock *LT = L.getLatch();
  if (!LT)
    return R; // Requires a unique latch.
  BasicBlock *H = L.getHeader();
  Function &F = *H->getParent();
  Module *M = F.getParent();

  ensurePreheader(L);
  ensureDedicatedExits(L);

  std::vector<BasicBlock *> Body = loopBodyRPO(L);
  assert(Body.size() == L.blocks().size() &&
         "irreducible control flow inside a natural loop body");
  R.Iterations.push_back(Body);

  // The value each header phi carries around the back edge.
  std::vector<Instruction *> HeaderPhis = H->phis();
  std::unordered_map<const Instruction *, Value *> LatchIncoming;
  for (Instruction *Phi : HeaderPhis)
    LatchIncoming[Phi] = Phi->getPhiIncomingFor(LT);

  // Maps[K] remaps original loop values to replica K's clones (Maps[0] is
  // the identity).
  std::vector<ValueMapper> Maps(1);
  std::vector<BasicBlock *> Latches{LT};
  std::vector<BasicBlock *> Headers{H};
  BasicBlock *InsertAfter = Body.back();

  for (unsigned K = 1; K != N; ++K) {
    ValueMapper &Prev = Maps.back();
    std::string Suffix = ".it" + std::to_string(K);
    std::unordered_map<const BasicBlock *, BasicBlock *> CloneBB;
    for (BasicBlock *BB : Body) {
      BasicBlock *NB = F.createBlockAfter(InsertAfter, BB->getName() + Suffix);
      CloneBB[BB] = NB;
      InsertAfter = NB;
    }

    ValueMapper Cur;
    // Header phis are not cloned: within replica K they denote the value
    // flowing out of replica K-1's latch.
    for (Instruction *Phi : HeaderPhis)
      Cur.map(Phi, Prev.lookup(LatchIncoming[Phi]));

    for (BasicBlock *BB : Body) {
      BasicBlock *NB = CloneBB[BB];
      for (Instruction *I : *BB) {
        if (BB == H && I->getOpcode() == Opcode::Phi)
          continue;
        Instruction *NI = cloneInstruction(I, F, Cur);
        Cur.map(I, NI);
        NB->push_back(NI);

        if (NI->getOpcode() == Opcode::Phi) {
          // Incoming blocks are in-loop predecessors; remap all of them.
          for (unsigned J = 0, E = NI->getNumBlockOperands(); J != E; ++J) {
            BasicBlock *In = NI->getBlockOperand(J);
            assert(L.contains(In) && "phi in body with out-of-loop pred");
            NI->setBlockOperand(J, CloneBB[In]);
          }
          continue;
        }
        if (NI->isTerminator()) {
          for (unsigned J = 0, E = NI->getNumBlockOperands(); J != E; ++J) {
            BasicBlock *T = NI->getBlockOperand(J);
            if (T == H)
              continue; // Back edge; redirected below.
            if (L.contains(T)) {
              NI->setBlockOperand(J, CloneBB[T]);
              continue;
            }
            // Exit edge: the (dedicated) exit block gains this replica's
            // exiting block as a predecessor; extend its phis.
            for (Instruction *XPhi : T->phis()) {
              Value *OV = XPhi->getPhiIncomingFor(BB);
              IRBuilder::addPhiIncoming(XPhi, Cur.lookup(OV), NB);
            }
          }
        }
      }
    }

    Latches.push_back(CloneBB[LT]);
    Headers.push_back(CloneBB[H]);
    std::vector<BasicBlock *> IterBlocks;
    for (BasicBlock *BB : Body)
      IterBlocks.push_back(CloneBB[BB]);
    R.Iterations.push_back(std::move(IterBlocks));
    Maps.push_back(std::move(Cur));
  }

  // Chain the replicas: latch K's back-edge target becomes replica K+1's
  // header; only the last replica's latch branches back to the original
  // header. Deferred until after cloning because replicas are cloned from
  // the *original* blocks, whose terminators must stay untouched.
  for (unsigned K = 0; K + 1 < Latches.size(); ++K) {
    Instruction *Term = Latches[K]->getTerminator();
    for (unsigned J = 0, E = Term->getNumBlockOperands(); J != E; ++J)
      if (Term->getBlockOperand(J) == H)
        Term->setBlockOperand(J, Headers[K + 1]);
  }

  // The real back edge now leaves the last replica's latch.
  for (Instruction *Phi : HeaderPhis) {
    for (unsigned J = 0, E = Phi->getNumBlockOperands(); J != E; ++J) {
      if (Phi->getBlockOperand(J) == LT) {
        Phi->setBlockOperand(J, Latches.back());
        Phi->setOperand(J, Maps.back().lookup(LatchIncoming[Phi]));
      }
    }
  }

  // SSA reconstruction for uses of loop-defined values outside the loop.
  std::unordered_set<const BasicBlock *> Inside;
  for (const auto &Iter : R.Iterations)
    for (BasicBlock *BB : Iter)
      Inside.insert(BB);

  for (BasicBlock *BB : Body) {
    for (Instruction *D : *BB) {
      if (!D->producesValue())
        continue;
      std::vector<Instruction *> Outside;
      for (Instruction *U : D->users())
        if (!Inside.count(U->getParent()))
          Outside.push_back(U);
      if (Outside.empty())
        continue;

      SSAUpdater Updater(F, D->getName() + ".out", M->getConstant(0));
      Updater.addAvailableValue(BB, D);
      // Each replica provides its own definition of the value. Header
      // phis are special: their replica-K "clone" is a value living in an
      // earlier block, so register it against the replica header instead.
      unsigned BI = unsigned(std::find(Body.begin(), Body.end(), BB) -
                             Body.begin());
      for (unsigned K = 1; K < R.Iterations.size(); ++K) {
        Value *CV = Maps[K].lookup(D);
        BasicBlock *CB = R.Iterations[K][BI];
        if (auto *CI = dyn_cast<Instruction>(CV);
            CI && CI->getParent() == CB)
          Updater.addAvailableValue(CB, CI);
        else
          Updater.addAvailableValue(R.Iterations[K].front(), CV);
      }

      for (Instruction *U : Outside) {
        for (unsigned J = 0, E = U->getNumOperands(); J != E; ++J) {
          if (U->getOperand(J) != D)
            continue;
          if (U->getOpcode() == Opcode::Phi) {
            BasicBlock *In = U->getBlockOperand(J);
            if (Inside.count(In))
              continue; // Set correctly during cloning.
            U->setOperand(J, Updater.getValueAtExit(In));
          } else {
            U->setOperand(J, Updater.getValueAtEntry(U->getParent()));
          }
        }
      }
      Updater.simplifyInsertedPhis();
    }
  }

  R.Unrolled = true;
  return R;
}

unsigned wario::unrollStandardLoops(Function &F, unsigned Factor,
                                    unsigned MaxBodyInsts) {
  if (F.isDeclaration() || Factor < 2)
    return 0;
  unsigned Unrolled = 0;
  std::unordered_set<BasicBlock *> DoneHeaders;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    DominatorTree DT(F);
    LoopInfo LI(F, DT);
    for (Loop *L : LI.loops()) {
      if (DoneHeaders.count(L->getHeader()))
        continue;
      if (!L->getSubLoops().empty() || !L->getLatch())
        continue;
      unsigned BodySize = 0;
      bool HasSideEffects = false;
      for (BasicBlock *BB : L->blocks()) {
        BodySize += unsigned(BB->size());
        for (Instruction *I : *BB)
          if (I->getOpcode() == Opcode::Call ||
              I->getOpcode() == Opcode::Out ||
              I->getOpcode() == Opcode::Checkpoint)
            HasSideEffects = true;
      }
      if (HasSideEffects || BodySize > MaxBodyInsts)
        continue;
      DoneHeaders.insert(L->getHeader());
      UnrollResult UR = unrollLoop(*L, Factor);
      if (UR.Unrolled)
        ++Unrolled;
      Progress = true; // CFG changed (even on failure paths); recompute.
      break;
    }
  }
  return Unrolled;
}

unsigned wario::unrollStandardLoops(Module &M, unsigned Factor,
                                    unsigned MaxBodyInsts) {
  unsigned N = 0;
  for (auto &F : M.functions())
    N += unrollStandardLoops(*F, Factor, MaxBodyInsts);
  return N;
}
