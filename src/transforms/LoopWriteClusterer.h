//===----------------------------------------------------------------------===//
///
/// \file
/// Loop Write Clusterer (paper Algorithm 1 / Figure 3): unrolls candidate
/// loops by a factor N and postpones the write halves of their WAR
/// violations to the loop latch, so one checkpoint resolves the WARs of N
/// iterations. Early exits get compensating write-backs; reads that may
/// depend on a postponed write are guarded with compare+select chains.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_TRANSFORMS_LOOPWRITECLUSTERER_H
#define WARIO_TRANSFORMS_LOOPWRITECLUSTERER_H

#include "analysis/AliasAnalysis.h"

namespace wario {

struct LoopWriteClustererOptions {
  /// Unroll factor N. The paper evaluates N in [1, 35] and defaults to 8
  /// (Section 5.2.4); N <= 1 disables the pass.
  unsigned UnrollFactor = 8;
  AliasPrecision Precision = AliasPrecision::Precise;
};

struct LoopWriteClustererStats {
  unsigned LoopsTransformed = 0;
  unsigned StoresPostponed = 0;
  unsigned ExitCopies = 0;     ///< Compensating stores on early exits.
  unsigned RuntimeChecks = 0;  ///< compare+select pairs inserted.
};

/// Runs the Loop Write Clusterer over every candidate loop of \p F.
LoopWriteClustererStats
runLoopWriteClusterer(Function &F, const LoopWriteClustererOptions &Opts);

/// Module-wide convenience wrapper.
LoopWriteClustererStats
runLoopWriteClusterer(Module &M, const LoopWriteClustererOptions &Opts);

} // namespace wario

#endif // WARIO_TRANSFORMS_LOOPWRITECLUSTERER_H
