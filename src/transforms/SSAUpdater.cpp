#include "transforms/SSAUpdater.h"

using namespace wario;

SSAUpdater::SSAUpdater(Function &F, std::string Name, Value *Default)
    : F(F), Name(std::move(Name)), Default(Default) {
  assert(Default && "SSAUpdater needs a default value");
}

void SSAUpdater::addAvailableValue(BasicBlock *BB, Value *V) {
  AtExit[BB] = V;
}

Value *SSAUpdater::getValueAtExit(BasicBlock *BB) {
  auto It = AtExit.find(BB);
  if (It != AtExit.end())
    return It->second;
  return getValueAtEntry(BB);
}

Value *SSAUpdater::getValueAtEntry(BasicBlock *BB) {
  auto It = AtEntry.find(BB);
  if (It != AtEntry.end())
    return It->second;

  const auto &PredList = BB->predecessors();
  std::vector<BasicBlock *> Preds(PredList.begin(), PredList.end());
  if (Preds.empty()) {
    AtEntry[BB] = Default;
    return Default;
  }

  // Braun-style: place a phi placeholder first and memoize it, so cyclic
  // queries (loops) resolve to the phi instead of recursing forever. Phis
  // that turn out trivial are cleaned up by simplifyInsertedPhis().
  IRBuilder IRB(F.getParent());
  assert(!BB->empty() && "querying a block with no instructions");
  IRB.setInsertPoint(BB->front());
  Instruction *Phi = IRB.createPhi(Name);
  AtEntry[BB] = Phi;
  InsertedPhis.push_back(Phi);
  for (BasicBlock *P : Preds)
    IRBuilder::addPhiIncoming(Phi, getValueAtExit(P), P);
  return Phi;
}

void SSAUpdater::simplifyInsertedPhis() {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (Instruction *&Phi : InsertedPhis) {
      if (!Phi)
        continue;
      Value *Common = nullptr;
      bool Trivial = true;
      for (unsigned I = 0, E = Phi->getNumOperands(); I != E; ++I) {
        Value *V = Phi->getOperand(I);
        if (V == Phi)
          continue;
        if (Common && V != Common) {
          Trivial = false;
          break;
        }
        Common = V;
      }
      if (!Trivial || !Common)
        continue;
      Phi->replaceAllUsesWith(Common);
      F.eraseInstruction(Phi);
      Phi = nullptr;
      Changed = true;
    }
  }
}
