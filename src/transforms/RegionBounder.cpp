#include "transforms/RegionBounder.h"

#include "analysis/LoopInfo.h"
#include "ir/IRBuilder.h"
#include "transforms/Utils.h"

#include <unordered_set>

using namespace wario;

uint64_t wario::estimateCycles(const Instruction &I) {
  switch (I.getOpcode()) {
  case Opcode::Load:
  case Opcode::Store:
    return 2;
  case Opcode::UDiv:
  case Opcode::SDiv:
  case Opcode::URem:
  case Opcode::SRem:
    return 6;
  case Opcode::Br:
  case Opcode::Jmp:
  case Opcode::Ret:
  case Opcode::Call:
    return 3; // Branch plus pipeline refill.
  case Opcode::Checkpoint:
    return 40;
  case Opcode::Select:
  case Opcode::ICmp:
  case Opcode::Out:
    return 2;
  case Opcode::Phi:
    return 0; // Lowered to copies accounted at the branches.
  default:
    return 1;
  }
}

namespace {

/// Extra cycles a speculative undo-logged store spends over a plain
/// store (mirrors cycles::SpecLogStore in the emulator's cycle model).
constexpr uint64_t SpecLogCost = 4;

bool hasRegionCut(const Loop &L, const RegionBounderOptions &Opts) {
  for (BasicBlock *BB : L.blocks())
    for (Instruction *I : *BB) {
      if (I->getOpcode() == Opcode::Call)
        return true;
      if (I->getOpcode() != Opcode::Checkpoint)
        continue;
      // Under the rollback strategies no WAR checkpoints exist, so any
      // checkpoint seen here is a bounder-inserted *conditional* one —
      // it only fires when its own loop's counter fills, so it does not
      // statically cut an enclosing loop's accumulation. Idempotent
      // mode keeps the historical behavior (any checkpoint cuts).
      if (Opts.Strat == CheckpointStrategy::Idempotent)
        return true;
    }
  return false;
}

uint64_t bodyCycles(const Loop &L, const RegionBounderOptions &Opts) {
  uint64_t Sum = 0;
  for (BasicBlock *BB : L.blocks())
    for (Instruction *I : *BB) {
      Sum += estimateCycles(*I);
      if (Opts.Strat == CheckpointStrategy::Speculative &&
          I->getOpcode() == Opcode::Store && I->isSpecLogged())
        Sum += SpecLogCost;
    }
  return Sum;
}

/// Threads the register counter through loop \p L.
void boundOne(Function &F, Loop &L, uint64_t PerIter, uint64_t Budget) {
  Module *M = F.getParent();
  BasicBlock *H = L.getHeader();
  BasicBlock *LT = L.getLatch();
  assert(LT && "candidate loops have a unique latch");
  BasicBlock *Pre = ensurePreheader(L);

  // Dedicated back-edge block, then the conditional checkpoint diamond.
  BasicBlock *NB = splitEdge(LT, H);
  IRBuilder IRB(M);

  // The counter phi lives at the header; k' = k + PerIter in the latch.
  IRB.setInsertPoint(H->front());
  Instruction *K = IRB.createPhi("rb.k");

  IRB.setInsertPoint(LT->getTerminator());
  Instruction *K2 =
      IRB.createAdd(K, IRB.getInt(int32_t(PerIter)), "rb.k2");
  Instruction *Cmp = IRB.createICmp(CmpPred::UGE, K2,
                                    IRB.getInt(int32_t(Budget)), "rb.due");

  // NB: [jmp H]  =>  [br cmp, CkBB, H]; CkBB: [checkpoint; jmp H].
  BasicBlock *CkBB = F.createBlockAfter(NB, H->getName() + ".rb");
  Instruction *OldJmp = NB->getTerminator();
  assert(OldJmp && OldJmp->getOpcode() == Opcode::Jmp);
  F.eraseInstruction(OldJmp);
  IRB.setInsertPoint(NB);
  IRB.createBr(Cmp, CkBB, H);
  IRB.setInsertPoint(CkBB);
  IRB.createCheckpoint()->setCheckpointCause(CheckpointCause::MiddleEndWar);
  IRB.createJmp(H);

  // Header phis gain the CkBB predecessor, mirroring their NB value.
  for (Instruction *Phi : H->phis()) {
    if (Phi == K)
      continue;
    Value *V = Phi->getPhiIncomingFor(NB);
    IRBuilder::addPhiIncoming(Phi, V, CkBB);
  }
  // The counter: 0 on entry and after a checkpoint, k' otherwise.
  IRBuilder::addPhiIncoming(K, M->getConstant(0), Pre);
  IRBuilder::addPhiIncoming(K, K2, NB);
  IRBuilder::addPhiIncoming(K, M->getConstant(0), CkBB);
}

} // namespace

RegionBounderStats wario::boundRegions(Function &F,
                                       const RegionBounderOptions &Opts) {
  RegionBounderStats Stats;
  if (F.isDeclaration())
    return Stats;
  std::unordered_set<BasicBlock *> Done;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    DominatorTree DT(F);
    LoopInfo LI(F, DT);
    for (Loop *L : LI.loops()) {
      if (Done.count(L->getHeader()))
        continue;
      // Idempotent mode bounds only innermost loops (the historical
      // Section 6 extension — outer accumulation is cut by WAR
      // checkpoints anyway). The rollback strategies have no WAR
      // checkpoints, so a cut-free *nest* accumulates across its short
      // inner loops while every per-loop counter resets; bounding the
      // outer loops too (per-iteration estimate counts each subloop
      // body once) is their forward-progress guarantee.
      if (Opts.Strat == CheckpointStrategy::Idempotent &&
          !L->getSubLoops().empty())
        continue;
      if (!L->getLatch())
        continue;
      if (hasRegionCut(*L, Opts))
        continue;
      Done.insert(L->getHeader());
      // The IR-level estimate undercounts the final machine code
      // (instruction selection, spills, phi copies roughly triple it);
      // scale so the budget is honored in emulated cycles.
      constexpr uint64_t BackendExpansionFactor = 3;
      uint64_t PerIter = std::max<uint64_t>(
          1, bodyCycles(*L, Opts) * BackendExpansionFactor);
      if (PerIter >= Opts.MaxRegionCycles)
        continue; // One iteration already busts the budget; a register
                  // checkpoint cannot help a body this large.
      boundOne(F, *L, PerIter, Opts.MaxRegionCycles);
      ++Stats.LoopsBounded;
      Progress = true; // CFG changed; recompute analyses.
      break;
    }
  }
  return Stats;
}

RegionBounderStats wario::boundRegions(Module &M,
                                       const RegionBounderOptions &Opts) {
  RegionBounderStats Total;
  for (auto &F : M.functions())
    Total.LoopsBounded += boundRegions(*F, Opts).LoopsBounded;
  return Total;
}
