#include "transforms/Utils.h"

#include "ir/ConstEval.h"
#include "ir/IRBuilder.h"

#include <unordered_set>

using namespace wario;

BasicBlock *wario::splitEdge(BasicBlock *From, BasicBlock *To) {
  Function *F = From->getParent();
  BasicBlock *NB = F->createBlockAfter(From, From->getName() + ".split");
  Instruction *Term = From->getTerminator();
  assert(Term && "cannot split an edge from an unterminated block");
  [[maybe_unused]] unsigned Hits = 0;
  for (unsigned I = 0, E = Term->getNumBlockOperands(); I != E; ++I) {
    if (Term->getBlockOperand(I) == To) {
      Term->setBlockOperand(I, NB);
      ++Hits;
    }
  }
  assert(Hits == 1 && "splitEdge expects a unique From->To edge; "
                      "canonicalize duplicate-target branches first");
  IRBuilder IRB(F->getParent());
  IRB.setInsertPoint(NB);
  IRB.createJmp(To);
  for (Instruction *Phi : To->phis()) {
    for (unsigned I = 0, E = Phi->getNumBlockOperands(); I != E; ++I)
      if (Phi->getBlockOperand(I) == From)
        Phi->setBlockOperand(I, NB);
  }
  return NB;
}

BasicBlock *wario::ensurePreheader(Loop &L) {
  if (BasicBlock *Pre = L.getPreheader())
    return Pre;

  BasicBlock *H = L.getHeader();
  Function *F = H->getParent();
  std::vector<BasicBlock *> Outside;
  for (BasicBlock *P : H->predecessors())
    if (!L.contains(P))
      Outside.push_back(P);
  assert(!Outside.empty() && "loop header with no outside predecessor");

  BasicBlock *PH = F->createBlockAfter(Outside.front(),
                                       H->getName() + ".preheader");
  IRBuilder IRB(F->getParent());

  // Merge outside incoming phi values in the preheader when there are
  // several outside predecessors.
  for (Instruction *Phi : H->phis()) {
    if (Outside.size() == 1) {
      for (unsigned I = 0, E = Phi->getNumBlockOperands(); I != E; ++I)
        if (Phi->getBlockOperand(I) == Outside.front())
          Phi->setBlockOperand(I, PH);
      continue;
    }
    IRB.setInsertPoint(PH);
    Instruction *Merged = IRB.createPhi(Phi->getName() + ".pre");
    // Collect and remove the outside entries.
    for (BasicBlock *P : Outside) {
      Value *V = Phi->getPhiIncomingFor(P);
      IRBuilder::addPhiIncoming(Merged, V, P);
      Phi->removePhiIncomingFor(P);
    }
    IRBuilder::addPhiIncoming(Phi, Merged, PH);
  }

  for (BasicBlock *P : Outside) {
    Instruction *Term = P->getTerminator();
    for (unsigned I = 0, E = Term->getNumBlockOperands(); I != E; ++I)
      if (Term->getBlockOperand(I) == H)
        Term->setBlockOperand(I, PH);
  }
  IRB.setInsertPoint(PH);
  IRB.createJmp(H);
  return PH;
}

bool wario::ensureDedicatedExits(Loop &L) {
  bool Changed = false;
  for (auto &[E, X] : L.getExitEdges()) {
    bool Dedicated = X->predecessors().size() == 1;
    if (!Dedicated) {
      splitEdge(E, X);
      Changed = true;
    }
  }
  return Changed;
}

bool wario::removeUnreachableBlocks(Function &F) {
  if (F.isDeclaration())
    return false;
  std::unordered_set<BasicBlock *> Reachable;
  std::vector<BasicBlock *> Work{F.getEntryBlock()};
  Reachable.insert(F.getEntryBlock());
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    for (BasicBlock *S : BB->successors())
      if (Reachable.insert(S).second)
        Work.push_back(S);
  }
  if (Reachable.size() == F.size())
    return false;

  std::vector<BasicBlock *> Dead;
  for (BasicBlock *BB : F)
    if (!Reachable.count(BB))
      Dead.push_back(BB);

  // Phis in reachable blocks may name dead predecessors.
  for (BasicBlock *BB : F) {
    if (!Reachable.count(BB))
      continue;
    for (Instruction *Phi : BB->phis())
      for (int I = int(Phi->getNumBlockOperands()) - 1; I >= 0; --I)
        if (!Reachable.count(Phi->getBlockOperand(unsigned(I)))) {
          Phi->removeOperand(unsigned(I));
          Phi->removeBlockOperand(unsigned(I));
        }
  }

  // Break def-use edges among dead instructions, then erase the blocks.
  for (BasicBlock *BB : Dead)
    for (Instruction *I : *BB)
      I->dropAllOperands();
  for (BasicBlock *BB : Dead) {
    while (!BB->empty()) {
      Instruction *I = BB->back();
      assert(!I->hasUsers() && "dead block defines a value used by "
                               "reachable code");
      BB->remove(I);
    }
  }
  for (BasicBlock *BB : Dead)
    F.eraseBlock(BB);
  return true;
}

namespace {

/// Turns `br c, T, T` into `jmp T`, and folds constant conditions.
bool canonicalizeBranches(Function &F) {
  bool Changed = false;
  for (BasicBlock *BB : F) {
    Instruction *Term = BB->getTerminator();
    if (!Term || Term->getOpcode() != Opcode::Br)
      continue;
    BasicBlock *Then = Term->getBlockOperand(0);
    BasicBlock *Else = Term->getBlockOperand(1);
    BasicBlock *Taken = nullptr;
    if (Then == Else) {
      Taken = Then;
      // Duplicate incoming edge collapses to one; drop one phi entry.
      for (Instruction *Phi : Taken->phis()) {
        assert(Phi->getPhiIncomingFor(BB) && "missing phi entry");
        Phi->removePhiIncomingFor(BB);
      }
    } else if (auto *C = dyn_cast<Constant>(Term->getOperand(0))) {
      Taken = C->getValue() != 0 ? Then : Else;
      BasicBlock *Dropped = C->getValue() != 0 ? Else : Then;
      for (Instruction *Phi : Dropped->phis())
        Phi->removePhiIncomingFor(BB);
    }
    if (!Taken)
      continue;
    Function *Fn = BB->getParent();
    Term->removeFromParent();
    Term->dropAllOperands();
    IRBuilder IRB(Fn->getParent());
    IRB.setInsertPoint(BB);
    IRB.createJmp(Taken);
    Changed = true;
  }
  return Changed;
}

/// Folds a block containing only `jmp S` by retargeting its predecessors.
bool foldForwarders(Function &F) {
  bool Changed = false;
  for (BasicBlock *BB : F) {
    if (BB == F.getEntryBlock() || BB->size() != 1)
      continue;
    Instruction *Term = BB->getTerminator();
    if (!Term || Term->getOpcode() != Opcode::Jmp)
      continue;
    BasicBlock *S = Term->getBlockOperand(0);
    if (S == BB)
      continue;
    const auto &PredList = BB->predecessors();
    std::vector<BasicBlock *> Preds(PredList.begin(), PredList.end());
    if (Preds.empty())
      continue; // Unreachable; handled elsewhere.
    // If the successor has phis, retargeting is only simple when BB has a
    // single predecessor that is not already a predecessor of S.
    if (!S->phis().empty()) {
      if (Preds.size() != 1)
        continue;
      BasicBlock *P = Preds.front();
      bool AlreadyPred = false;
      for (BasicBlock *SP : S->predecessors())
        if (SP == P)
          AlreadyPred = true;
      if (AlreadyPred)
        continue;
      for (Instruction *Phi : S->phis())
        for (unsigned I = 0, E = Phi->getNumBlockOperands(); I != E; ++I)
          if (Phi->getBlockOperand(I) == BB)
            Phi->setBlockOperand(I, P);
    }
    for (BasicBlock *P : Preds) {
      Instruction *PTerm = P->getTerminator();
      for (unsigned I = 0, E = PTerm->getNumBlockOperands(); I != E; ++I)
        if (PTerm->getBlockOperand(I) == BB)
          PTerm->setBlockOperand(I, S);
    }
    Changed = true;
    // BB is now unreachable; removeUnreachableBlocks cleans it up.
  }
  return Changed;
}

/// Merges S into B when B->S is the only edge in and out.
bool mergeLinearPairs(Function &F) {
  bool Changed = false;
  for (BasicBlock *BB : F) {
    Instruction *Term = BB->getTerminator();
    if (!Term || Term->getOpcode() != Opcode::Jmp)
      continue;
    BasicBlock *S = Term->getBlockOperand(0);
    if (S == BB || S == F.getEntryBlock() || S->predecessors().size() != 1)
      continue;
    // Replace single-incoming phis with their value.
    for (Instruction *Phi : S->phis()) {
      assert(Phi->getNumOperands() == 1 && "phi/pred mismatch");
      Value *V = Phi->getOperand(0);
      Phi->replaceAllUsesWith(V);
      F.eraseInstruction(Phi);
    }
    F.eraseInstruction(Term);
    while (!S->empty()) {
      Instruction *I = S->front();
      S->remove(I);
      BB->push_back(I);
    }
    // S's successors now flow from BB.
    if (Instruction *NewTerm = BB->getTerminator())
      for (unsigned I = 0, E = NewTerm->getNumBlockOperands(); I != E; ++I)
        for (Instruction *Phi : NewTerm->getBlockOperand(I)->phis())
          for (unsigned J = 0, PE = Phi->getNumBlockOperands(); J != PE; ++J)
            if (Phi->getBlockOperand(J) == S)
              Phi->setBlockOperand(J, BB);
    F.eraseBlock(S);
    Changed = true;
    break; // Block list mutated; restart the scan.
  }
  return Changed;
}

} // namespace

bool wario::simplifyCFG(Function &F) {
  if (F.isDeclaration())
    return false;
  bool Any = false;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    Changed |= canonicalizeBranches(F);
    Changed |= foldForwarders(F);
    Changed |= removeUnreachableBlocks(F);
    while (mergeLinearPairs(F))
      Changed = true;
    Any |= Changed;
  }
  return Any;
}

bool wario::eliminateDeadCode(Function &F) {
  if (F.isDeclaration())
    return false;
  bool Any = false;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<Instruction *> Dead;
    for (BasicBlock *BB : F)
      for (Instruction *I : *BB) {
        if (!I->producesValue() || I->hasUsers())
          continue;
        if (I->getOpcode() == Opcode::Call)
          continue; // Calls have side effects.
        Dead.push_back(I);
      }
    for (Instruction *I : Dead)
      F.eraseInstruction(I);
    Changed = !Dead.empty();
    Any |= Changed;
  }
  return Any;
}

bool wario::foldConstants(Function &F) {
  if (F.isDeclaration())
    return false;
  Module *M = F.getParent();
  bool Any = false;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : F) {
      for (auto It = BB->begin(); It != BB->end();) {
        Instruction *I = *It;
        ++It;
        Value *Repl = nullptr;

        if (I->isBinaryOp()) {
          auto *A = dyn_cast<Constant>(I->getOperand(0));
          auto *B = dyn_cast<Constant>(I->getOperand(1));
          if (A && B) {
            if (auto R = constEvalBinary(I->getOpcode(), A->getZExtValue(),
                                         B->getZExtValue()))
              Repl = M->getConstant(int32_t(*R));
          } else if (B) {
            uint32_t BV = B->getZExtValue();
            Opcode Op = I->getOpcode();
            bool IdentZero = BV == 0 && (Op == Opcode::Add ||
                                         Op == Opcode::Sub ||
                                         Op == Opcode::Or ||
                                         Op == Opcode::Xor ||
                                         Op == Opcode::Shl ||
                                         Op == Opcode::LShr ||
                                         Op == Opcode::AShr);
            if (IdentZero || (BV == 1 && Op == Opcode::Mul))
              Repl = I->getOperand(0);
            else if (BV == 0 && (Op == Opcode::Mul || Op == Opcode::And))
              Repl = M->getConstant(0);
          } else if (A) {
            uint32_t AV = A->getZExtValue();
            Opcode Op = I->getOpcode();
            if (AV == 0 && (Op == Opcode::Add || Op == Opcode::Or ||
                            Op == Opcode::Xor))
              Repl = I->getOperand(1);
            else if (AV == 0 && (Op == Opcode::Mul || Op == Opcode::And))
              Repl = M->getConstant(0);
            else if (AV == 1 && Op == Opcode::Mul)
              Repl = I->getOperand(1);
          }
        } else if (I->getOpcode() == Opcode::ICmp) {
          auto *A = dyn_cast<Constant>(I->getOperand(0));
          auto *B = dyn_cast<Constant>(I->getOperand(1));
          if (A && B)
            Repl = M->getConstant(constEvalPred(I->getPredicate(),
                                                A->getZExtValue(),
                                                B->getZExtValue())
                                      ? 1
                                      : 0);
        } else if (I->getOpcode() == Opcode::Select) {
          if (auto *C = dyn_cast<Constant>(I->getOperand(0)))
            Repl = C->getValue() != 0 ? I->getOperand(1) : I->getOperand(2);
          else if (I->getOperand(1) == I->getOperand(2))
            Repl = I->getOperand(1);
        } else if (I->getOpcode() == Opcode::Phi) {
          // Trivial phi: all incoming values equal (ignoring self).
          Value *Common = nullptr;
          bool Trivial = true;
          for (unsigned J = 0, E = I->getNumOperands(); J != E; ++J) {
            Value *V = I->getOperand(J);
            if (V == I)
              continue;
            if (Common && V != Common) {
              Trivial = false;
              break;
            }
            Common = V;
          }
          if (Trivial && Common)
            Repl = Common;
        }

        if (Repl && Repl != I) {
          I->replaceAllUsesWith(Repl);
          F.eraseInstruction(I);
          Changed = true;
        }
      }
    }
    Any |= Changed;
  }
  return Any;
}

void wario::cleanup(Function &F) {
  if (F.isDeclaration())
    return;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    Changed |= foldConstants(F);
    Changed |= eliminateDeadCode(F);
    Changed |= simplifyCFG(F);
  }
}

void wario::cleanupModule(Module &M) {
  for (auto &F : M.functions())
    cleanup(*F);
}
