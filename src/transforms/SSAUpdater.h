//===----------------------------------------------------------------------===//
///
/// \file
/// SSA reconstruction helper in the spirit of llvm::SSAUpdater: given the
/// definitions of one "variable" in several blocks, computes the reaching
/// value at any program point, inserting phi nodes on demand.
///
/// Used by Mem2Reg (promoting stack slots to SSA values) and by the loop
/// unroller (rewriting uses outside the loop after body duplication).
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_TRANSFORMS_SSAUPDATER_H
#define WARIO_TRANSFORMS_SSAUPDATER_H

#include "ir/IRBuilder.h"

#include <unordered_map>

namespace wario {

/// Tracks one variable's definitions and materializes its value anywhere.
class SSAUpdater {
public:
  /// \p F is the function being rewritten; \p Name is used for created
  /// phis; \p Default is the value when no definition reaches (an
  /// uninitialized read) — typically constant 0.
  SSAUpdater(Function &F, std::string Name, Value *Default);

  /// Declares that \p V is the live-out definition of the variable in
  /// \p BB. At most one per block (callers pass the last def per block).
  void addAvailableValue(BasicBlock *BB, Value *V);

  bool hasValueFor(const BasicBlock *BB) const {
    return AtExit.count(BB) != 0;
  }

  /// The variable's value on entry to \p BB (inserting phis as needed).
  Value *getValueAtEntry(BasicBlock *BB);

  /// The variable's value at the end of \p BB.
  Value *getValueAtExit(BasicBlock *BB);

  /// After all queries: erases inserted phis that turned out trivial
  /// (all incoming values identical or self-references).
  void simplifyInsertedPhis();

private:
  Function &F;
  std::string Name;
  Value *Default;
  std::unordered_map<const BasicBlock *, Value *> AtExit;  // Explicit defs.
  std::unordered_map<const BasicBlock *, Value *> AtEntry; // Memoized.
  std::vector<Instruction *> InsertedPhis;
};

} // namespace wario

#endif // WARIO_TRANSFORMS_SSAUPDATER_H
