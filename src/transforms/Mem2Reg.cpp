#include "transforms/Mem2Reg.h"

#include "transforms/SSAUpdater.h"

using namespace wario;

namespace {

/// A promotable alloca: 4 bytes, accessed only by direct full-word loads
/// and stores (and never stored *as a value*, i.e. its address does not
/// escape).
bool isPromotable(const Instruction *Alloca) {
  if (Alloca->getAllocaSize() > 4)
    return false;
  for (const Instruction *U : Alloca->users()) {
    switch (U->getOpcode()) {
    case Opcode::Load:
      if (U->getAccessSize() != 4)
        return false;
      break;
    case Opcode::Store:
      if (U->getStoredValue() == Alloca || U->getAccessSize() != 4)
        return false;
      break;
    default:
      return false;
    }
  }
  return true;
}

void promoteOne(Function &F, Instruction *Alloca) {
  Module *M = F.getParent();
  SSAUpdater Updater(F, Alloca->getName(), M->getConstant(0));

  // Pass 1: register each block's live-out definition (its last store).
  for (BasicBlock *BB : F) {
    Value *Last = nullptr;
    for (Instruction *I : *BB)
      if (I->getOpcode() == Opcode::Store && I->getAddressOperand() == Alloca)
        Last = I->getStoredValue();
    if (Last)
      Updater.addAvailableValue(BB, Last);
  }

  // Pass 2: rewrite loads using the value that reaches them, tracking the
  // running value within each block.
  std::vector<Instruction *> ToErase;
  for (BasicBlock *BB : F) {
    Value *Current = nullptr;
    for (Instruction *I : *BB) {
      if (I->getOpcode() == Opcode::Load && I->getAddressOperand() == Alloca) {
        Value *V = Current ? Current : Updater.getValueAtEntry(BB);
        I->replaceAllUsesWith(V);
        ToErase.push_back(I);
      } else if (I->getOpcode() == Opcode::Store &&
                 I->getAddressOperand() == Alloca) {
        Current = I->getStoredValue();
        ToErase.push_back(I);
      }
    }
  }

  for (Instruction *I : ToErase)
    F.eraseInstruction(I);
  Updater.simplifyInsertedPhis();
  assert(!Alloca->hasUsers() && "alloca still used after promotion");
  F.eraseInstruction(Alloca);
}

} // namespace

unsigned wario::promoteAllocasToSSA(Function &F) {
  if (F.isDeclaration())
    return 0;
  unsigned Promoted = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<Instruction *> Candidates;
    for (Instruction *I : *F.getEntryBlock())
      if (I->getOpcode() == Opcode::Alloca && isPromotable(I))
        Candidates.push_back(I);
    for (Instruction *A : Candidates) {
      promoteOne(F, A);
      ++Promoted;
      Changed = true;
    }
  }
  return Promoted;
}

unsigned wario::promoteAllocasToSSA(Module &M) {
  unsigned N = 0;
  for (auto &F : M.functions())
    N += promoteAllocasToSSA(*F);
  return N;
}
