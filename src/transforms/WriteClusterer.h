//===----------------------------------------------------------------------===//
///
/// \file
/// Write Clusterer (paper Section 3.1.2): within each basic block, sinks
/// the write halves of independent WAR violations next to each other so
/// that the checkpoint inserter's hitting set can resolve the whole
/// cluster with one checkpoint. Unlike the Loop Write Clusterer it never
/// inserts runtime checks — a store is only sunk across instructions it
/// provably does not interact with.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_TRANSFORMS_WRITECLUSTERER_H
#define WARIO_TRANSFORMS_WRITECLUSTERER_H

#include "analysis/AliasAnalysis.h"

namespace wario {

/// Runs write clustering on every block of \p F. Returns the number of
/// stores sunk.
unsigned runWriteClusterer(Function &F, const AliasAnalysis &AA);

/// Module-wide convenience wrapper.
unsigned runWriteClusterer(Module &M, const AliasAnalysis &AA);

} // namespace wario

#endif // WARIO_TRANSFORMS_WRITECLUSTERER_H
