//===----------------------------------------------------------------------===//
///
/// \file
/// Promotes non-escaping, directly-accessed allocas to SSA values.
///
/// This mirrors clang -O2/-O3 behavior the paper's pipeline relies on:
/// scalar locals live in registers, so the residual memory traffic — and
/// therefore the residual WAR violations — concern genuinely memory-
/// resident data (globals, arrays, spills).
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_TRANSFORMS_MEM2REG_H
#define WARIO_TRANSFORMS_MEM2REG_H

#include "ir/Module.h"

namespace wario {

/// Promotes every promotable alloca in \p F. An alloca is promotable when
/// all its uses are whole-slot, 4-byte loads and stores of the slot address
/// itself (no geps, no escapes). Returns the number promoted.
unsigned promoteAllocasToSSA(Function &F);

/// Runs promoteAllocasToSSA on every function.
unsigned promoteAllocasToSSA(Module &M);

} // namespace wario

#endif // WARIO_TRANSFORMS_MEM2REG_H
