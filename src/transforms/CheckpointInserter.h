//===----------------------------------------------------------------------===//
///
/// \file
/// PDG Checkpoint Inserter (paper Section 3.1.2): breaks every remaining
/// WAR violation by inserting register checkpoints, choosing locations
/// with a greedy minimum hitting set over each violation's set of
/// resolving program points (after de Kruijf et al., cited as [11]).
///
/// The same component also implements the baselines: with conservative
/// aliasing it reproduces Ratchet's over-instrumentation; with the
/// PerWrite strategy it reproduces naive before-every-write placement
/// (used as an ablation of the hitting set).
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_TRANSFORMS_CHECKPOINTINSERTER_H
#define WARIO_TRANSFORMS_CHECKPOINTINSERTER_H

#include "analysis/AliasAnalysis.h"

namespace wario {

/// How checkpoint locations are chosen.
enum class PlacementStrategy {
  HittingSet, ///< Greedy min hitting set, loop-depth-weighted costs.
  PerWrite,   ///< One checkpoint immediately before every WAR write.
};

struct CheckpointInserterOptions {
  AliasPrecision Precision = AliasPrecision::Precise;
  PlacementStrategy Strategy = PlacementStrategy::HittingSet;
  /// How unresolved WARs are handled. Idempotent breaks them with
  /// checkpoints (the placement machinery below). Differential leaves
  /// them unbroken — the runtime's dirty-page journal rolls uncommitted
  /// state back at reboot, so no placement runs at all. Speculative
  /// marks each unresolved WAR write as undo-logged (Instruction::
  /// isSpecLogged) instead of inserting checkpoints.
  CheckpointStrategy Mode = CheckpointStrategy::Idempotent;
  /// Negative-control knob for the speculative mode: when false, WAR
  /// writes are NOT marked for logging, so rollback is provably
  /// incomplete and the fault injector must catch it.
  bool SpecLogWars = true;
  /// Weight candidate locations by 4^loop-depth (ablation knob; the
  /// paper's hitting set costs locations "primarily depending on the
  /// loop depth").
  bool DepthWeightedCost = true;
  /// Negative-control knob for the crash-consistency fault injector
  /// (src/verify/): when false, WARs are detected and counted but the
  /// resolution step is skipped entirely — no breaking checkpoints are
  /// inserted, so the compiled program is deliberately NOT idempotent.
  bool ResolveWars = true;
};

struct CheckpointInserterStats {
  unsigned WarsFound = 0;      ///< WAR violations detected.
  unsigned WarsAlreadyCut = 0; ///< Resolved by existing cuts (calls etc).
  unsigned Inserted = 0;       ///< Checkpoints inserted.
  unsigned StoresMarked = 0;   ///< WAR writes marked !log (speculative).
};

/// Inserts middle-end WAR checkpoints into \p F.
CheckpointInserterStats
insertCheckpoints(Function &F, const CheckpointInserterOptions &Opts);

/// Module-wide convenience wrapper.
CheckpointInserterStats
insertCheckpoints(Module &M, const CheckpointInserterOptions &Opts);

} // namespace wario

#endif // WARIO_TRANSFORMS_CHECKPOINTINSERTER_H
