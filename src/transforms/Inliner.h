//===----------------------------------------------------------------------===//
///
/// \file
/// Call-site inlining, the mechanism behind the paper's Expander pass
/// (Section 3.1.2): every function call forces checkpoints at the callee's
/// entry and exit, so strategic inlining removes forced checkpoints and
/// exposes the callee's WARs to the write-clustering passes.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_TRANSFORMS_INLINER_H
#define WARIO_TRANSFORMS_INLINER_H

#include "ir/Module.h"

namespace wario {

/// Inlines one call site. Returns false (leaving the IR unchanged) when
/// the callee is a declaration, the call is directly recursive, or the
/// callee never returns.
bool inlineCall(Instruction *Call);

/// Inlines every call site in the module whose callee's body has at most
/// \p MaxCalleeSize instructions, repeating until a fixed point (directly
/// recursive calls are never inlined). Returns the number of sites
/// inlined. Used with a small threshold as the pre-pipeline
/// "-always-inline"-style sweep from Section 4.6.
unsigned inlineSmallFunctions(Module &M, unsigned MaxCalleeSize);

} // namespace wario

#endif // WARIO_TRANSFORMS_INLINER_H
