//===----------------------------------------------------------------------===//
///
/// \file
/// CFG and cleanup utilities shared by the WARio transformations.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_TRANSFORMS_UTILS_H
#define WARIO_TRANSFORMS_UTILS_H

#include "analysis/LoopInfo.h"

namespace wario {

/// Splits the CFG edge From->To by inserting a fresh block containing only
/// a jump. Phi nodes in \p To are retargeted. Returns the new block.
///
/// If the terminator of \p From targets \p To more than once, every such
/// edge is routed through the one new block.
BasicBlock *splitEdge(BasicBlock *From, BasicBlock *To);

/// Ensures \p L has a preheader (a unique outside predecessor of the
/// header whose only successor is the header); creates one if needed.
/// Returns it. Invalidates analyses if it mutates the CFG.
BasicBlock *ensurePreheader(Loop &L);

/// Ensures every exit edge of \p L targets a block whose predecessors are
/// all inside the loop and which has exactly one predecessor ("dedicated"
/// exits, one block per exit edge). Returns true if the CFG changed.
bool ensureDedicatedExits(Loop &L);

/// Deletes blocks unreachable from the entry. Returns true if changed.
bool removeUnreachableBlocks(Function &F);

/// Folds jumps to empty forwarder blocks, merges single-pred/single-succ
/// straight-line pairs, and turns constant conditional branches into
/// jumps. Returns true if anything changed.
bool simplifyCFG(Function &F);

/// Removes value-producing instructions with no users and no side effects
/// (including dead loads; loads have no side effects in this IR).
/// Iterates to a fixed point. Returns true if anything changed.
bool eliminateDeadCode(Function &F);

/// Folds instructions with all-constant operands and simplifies trivial
/// phis (all incoming values identical or self). Returns true if changed.
bool foldConstants(Function &F);

/// Runs the standard cleanup sequence (constant folding, DCE, CFG
/// simplification) to a combined fixed point.
void cleanup(Function &F);
void cleanupModule(Module &M);

} // namespace wario

#endif // WARIO_TRANSFORMS_UTILS_H
