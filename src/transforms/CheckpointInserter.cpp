#include "transforms/CheckpointInserter.h"

#include "analysis/MemoryDependence.h"
#include "ir/IRBuilder.h"

#include <algorithm>
#include <map>
#include <unordered_set>

using namespace wario;

namespace {

/// True for instructions that end an idempotent region: an executed
/// checkpoint, or a call (the callee's entry checkpoint fires before any
/// of its stores).
bool isRegionCut(const Instruction *I) {
  return I->getOpcode() == Opcode::Checkpoint ||
         I->getOpcode() == Opcode::Call;
}

/// Exact instruction-granular check: does every execution path from just
/// after \p R to \p W pass a region cut? Mid-block branching is impossible
/// in this IR, so a per-block linear scan composed with block-level BFS is
/// exact.
bool warIsCut(const Instruction *R, const Instruction *W) {
  enum ScanResult { FoundW, Blocked, FellThrough };
  auto Scan = [&](BasicBlock::const_iterator It,
                  BasicBlock::const_iterator End) {
    for (; It != End; ++It) {
      if (*It == W)
        return FoundW;
      if (isRegionCut(*It))
        return Blocked;
    }
    return FellThrough;
  };

  const BasicBlock *RB = R->getParent();
  auto StartIt = std::find(RB->begin(), RB->end(), R);
  assert(StartIt != RB->end());
  ++StartIt;

  std::vector<const BasicBlock *> Work;
  std::unordered_set<const BasicBlock *> Visited;
  switch (Scan(StartIt, RB->end())) {
  case FoundW:
    return false;
  case Blocked:
    return true;
  case FellThrough:
    for (const BasicBlock *S : RB->successors())
      if (Visited.insert(S).second)
        Work.push_back(S);
    break;
  }
  while (!Work.empty()) {
    const BasicBlock *BB = Work.back();
    Work.pop_back();
    switch (Scan(BB->begin(), BB->end())) {
    case FoundW:
      return false;
    case Blocked:
      continue;
    case FellThrough:
      for (const BasicBlock *S : BB->successors())
        if (Visited.insert(S).second)
          Work.push_back(S);
      break;
    }
  }
  return true;
}

/// The program points (each "immediately before instruction X") at which
/// a checkpoint provably resolves the WAR (R, W).
///
/// Every returned point lies on all R->W paths. Blocks are only entered
/// at their head and only left at their terminator, so:
///  - when R and W share a block with R first, any point in (R, W] works
///    for both the fall-through and any wrap-around path;
///  - when they share a block with W first (loop-carried), any point
///    after R (the block cannot be left early) and any point from the
///    block head to W (every re-entry passes it) works;
///  - when R is in a different block, every R->W path finishes with a
///    head-of-block(W) -> W segment, so every point up to W in W's block
///    qualifies. This is what lets one checkpoint resolve a whole cluster
///    of writes parked at a loop latch.
std::vector<Instruction *> resolvingPoints(Instruction *R, Instruction *W,
                                           bool Carried) {
  std::vector<Instruction *> Points;
  BasicBlock *RB = R->getParent(), *WB = W->getParent();
  auto PushRange = [&](BasicBlock::iterator It, BasicBlock::iterator End) {
    for (; It != End; ++It)
      if ((*It)->getOpcode() != Opcode::Phi)
        Points.push_back(*It);
  };
  if (RB == WB) {
    auto RIt = std::find(RB->begin(), RB->end(), R);
    auto WIt = std::find(RB->begin(), RB->end(), W);
    assert(RIt != RB->end() && WIt != RB->end());
    bool RFirst = false;
    for (auto It = RB->begin(); It != RB->end(); ++It) {
      if (*It == R) {
        RFirst = true;
        break;
      }
      if (*It == W)
        break;
    }
    if (RFirst && !Carried) {
      // The direct fall-through instance: any point in (R, W].
      PushRange(std::next(RIt), std::next(WIt));
    } else {
      // Wrap-around instance (either order): the path leaves the block
      // past R and re-enters at its head before W.
      PushRange(std::next(RIt), RB->end());
      PushRange(RB->begin(), std::next(WIt));
    }
    return Points;
  }
  auto WIt = std::find(WB->begin(), WB->end(), W);
  assert(WIt != WB->end());
  PushRange(WB->begin(), std::next(WIt));
  return Points;
}

} // namespace

CheckpointInserterStats
wario::insertCheckpoints(Function &F, const CheckpointInserterOptions &Opts) {
  CheckpointInserterStats Stats;
  if (F.isDeclaration())
    return Stats;

  AliasAnalysis AA(Opts.Precision);
  DominatorTree DT(F);
  LoopInfo LI(F, DT);
  MemoryDependence MD(F, AA, LI);

  std::vector<const MemDep *> Wars = MD.wars();
  Stats.WarsFound = unsigned(Wars.size());

  struct War {
    Instruction *R;
    Instruction *W;
    bool Carried;
  };
  std::vector<War> Unresolved;
  for (const MemDep *D : Wars) {
    if (warIsCut(D->Src, D->Dst)) {
      ++Stats.WarsAlreadyCut;
      continue;
    }
    Unresolved.push_back({D->Src, D->Dst, D->LoopCarried});
  }
  if (Unresolved.empty())
    return Stats;
  if (Opts.Mode == CheckpointStrategy::Differential)
    return Stats; // Reboot rolls the dirty-page journal back past every
                  // uncommitted write, so unbroken WARs are harmless.
  if (Opts.Mode == CheckpointStrategy::Speculative) {
    // Speculative execution past the hazard: mark each WAR-completing
    // store for the emulator's word-granular undo log instead of
    // cutting the region.
    if (!Opts.SpecLogWars)
      return Stats; // Negative control: speculate without logging.
    std::unordered_set<Instruction *> Marked;
    for (const War &V : Unresolved)
      if (Marked.insert(V.W).second) {
        assert(V.W->getOpcode() == Opcode::Store &&
               "WAR writer must be a store");
        V.W->setSpecLogged(true);
        ++Stats.StoresMarked;
      }
    return Stats;
  }
  if (!Opts.ResolveWars)
    return Stats;

  IRBuilder IRB(F.getParent());
  auto InsertBefore = [&](Instruction *X) {
    IRB.setInsertPoint(X);
    Instruction *C = IRB.createCheckpoint();
    C->setCheckpointCause(CheckpointCause::MiddleEndWar);
    ++Stats.Inserted;
  };

  if (Opts.Strategy == PlacementStrategy::PerWrite) {
    std::unordered_set<Instruction *> Done;
    for (const War &V : Unresolved)
      if (Done.insert(V.W).second)
        InsertBefore(V.W);
    return Stats;
  }

  // Greedy minimum hitting set. Candidate points are keyed by the
  // instruction they precede; cost grows with loop depth so the greedy
  // choice prefers resolving many WARs with one checkpoint outside hot
  // loops when possible.
  std::map<unsigned, Instruction *> PointById; // Deterministic iteration.
  std::unordered_map<Instruction *, std::vector<unsigned>> Covers;
  for (unsigned Idx = 0; Idx != Unresolved.size(); ++Idx) {
    const War &V = Unresolved[Idx];
    for (Instruction *P : resolvingPoints(V.R, V.W, V.Carried)) {
      PointById[P->getId()] = P;
      Covers[P].push_back(Idx);
    }
  }

  auto CostOf = [&](Instruction *P) -> double {
    if (!Opts.DepthWeightedCost)
      return 1.0;
    unsigned Depth = std::min(LI.getLoopDepth(P->getParent()), 8u);
    double C = 1.0;
    for (unsigned I = 0; I != Depth; ++I)
      C *= 4.0;
    return C;
  };

  std::vector<bool> Resolved(Unresolved.size(), false);
  unsigned Remaining = unsigned(Unresolved.size());
  while (Remaining != 0) {
    Instruction *Best = nullptr;
    double BestScore = -1.0;
    unsigned BestCount = 0;
    for (auto &[Id, P] : PointById) {
      unsigned Count = 0;
      for (unsigned Idx : Covers[P])
        if (!Resolved[Idx])
          ++Count;
      if (Count == 0)
        continue;
      double Score = double(Count) / CostOf(P);
      if (Score > BestScore) {
        BestScore = Score;
        Best = P;
        BestCount = Count;
      }
    }
    assert(Best && "hitting set failed to cover remaining WARs");
    (void)BestCount;
    InsertBefore(Best);
    for (unsigned Idx : Covers[Best])
      if (!Resolved[Idx]) {
        Resolved[Idx] = true;
        --Remaining;
      }
  }
  return Stats;
}

CheckpointInserterStats
wario::insertCheckpoints(Module &M, const CheckpointInserterOptions &Opts) {
  CheckpointInserterStats Total;
  for (auto &F : M.functions()) {
    CheckpointInserterStats S = insertCheckpoints(*F, Opts);
    Total.WarsFound += S.WarsFound;
    Total.WarsAlreadyCut += S.WarsAlreadyCut;
    Total.Inserted += S.Inserted;
    Total.StoresMarked += S.StoresMarked;
  }
  return Total;
}
