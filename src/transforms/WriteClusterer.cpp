#include "transforms/WriteClusterer.h"

#include "ir/Module.h"

#include <algorithm>
#include <unordered_set>

using namespace wario;

namespace {

/// Stores in \p BB that complete a WAR violation within the block: some
/// earlier load in the same block may read the address they overwrite.
std::vector<Instruction *> warWritesInBlock(BasicBlock *BB,
                                            const AliasAnalysis &AA) {
  std::vector<Instruction *> Loads;
  std::vector<Instruction *> Writes;
  for (Instruction *I : *BB) {
    if (I->getOpcode() == Opcode::Load) {
      Loads.push_back(I);
      continue;
    }
    if (I->getOpcode() != Opcode::Store)
      continue;
    for (Instruction *R : Loads) {
      if (AA.alias(R, I) != AliasResult::NoAlias) {
        Writes.push_back(I);
        break;
      }
    }
  }
  return Writes;
}

/// Attempts to sink \p W down to immediately before the next WAR write in
/// its block. Returns true if it moved.
bool sinkWARWrite(Instruction *W,
                  const std::unordered_set<Instruction *> &WARWrites,
                  const AliasAnalysis &AA) {
  BasicBlock *BB = W->getParent();
  auto It = std::find(BB->begin(), BB->end(), W);
  assert(It != BB->end());
  ++It;
  for (; It != BB->end(); ++It) {
    Instruction *X = *It;
    if (WARWrites.count(X)) {
      // Reached the next cluster seed; park W right before it.
      W->moveBefore(X);
      return true;
    }
    switch (X->getOpcode()) {
    case Opcode::Load:
      if (AA.alias(X, W) != AliasResult::NoAlias)
        return false; // Would reorder a read of the stored location.
      break;
    case Opcode::Store:
      if (AA.alias(X, W) != AliasResult::NoAlias)
        return false; // Would reorder same-location writes.
      break;
    case Opcode::Call:
    case Opcode::Out:
    case Opcode::Checkpoint:
      return false; // Side effects / region cuts: do not cross.
    default:
      if (X->isTerminator())
        return false;
      break; // Pure arithmetic: safe to cross.
    }
  }
  return false;
}

} // namespace

unsigned wario::runWriteClusterer(Function &F, const AliasAnalysis &AA) {
  if (F.isDeclaration())
    return 0;
  unsigned Sunk = 0;
  for (BasicBlock *BB : F) {
    std::vector<Instruction *> Writes = warWritesInBlock(BB, AA);
    if (Writes.size() < 2)
      continue;
    std::unordered_set<Instruction *> WriteSet(Writes.begin(), Writes.end());
    // Later writes settle first so earlier ones can chain up behind them.
    for (auto It = Writes.rbegin(); It != Writes.rend(); ++It)
      if (sinkWARWrite(*It, WriteSet, AA))
        ++Sunk;
  }
  return Sunk;
}

unsigned wario::runWriteClusterer(Module &M, const AliasAnalysis &AA) {
  unsigned N = 0;
  for (auto &F : M.functions())
    N += runWriteClusterer(*F, AA);
  return N;
}
