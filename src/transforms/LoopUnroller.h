//===----------------------------------------------------------------------===//
///
/// \file
/// Partial loop unrolling by a compile-time factor N, as used by the Loop
/// Write Clusterer (paper Section 3.1.2, "Loop Unrolling"). The body is
/// replicated N-1 times; each replica keeps its exit checks, producing the
/// "early exit" structure of Figure 3 that ModifyExits later compensates.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_TRANSFORMS_LOOPUNROLLER_H
#define WARIO_TRANSFORMS_LOOPUNROLLER_H

#include "analysis/LoopInfo.h"

namespace wario {

/// Outcome of unrollLoop.
struct UnrollResult {
  bool Unrolled = false;
  /// Iterations[k] lists iteration k's blocks in loop-body RPO;
  /// Iterations[0] is the original body.
  std::vector<std::vector<BasicBlock *>> Iterations;

  /// All body blocks of the unrolled loop, iteration-major.
  std::vector<BasicBlock *> allBlocks() const {
    std::vector<BasicBlock *> All;
    for (const auto &It : Iterations)
      All.insert(All.end(), It.begin(), It.end());
    return All;
  }
};

/// Unrolls \p L by factor \p N (N >= 2).
///
/// Requirements (checked; returns Unrolled=false when unmet): innermost
/// loop, unique latch, and a body free of calls. The function ensures a
/// preheader and dedicated exits itself (a CFG mutation even on failure
/// paths that return early, so callers should recompute analyses).
///
/// After a successful unroll, every use of a loop-defined value outside
/// the loop is rewired through SSA reconstruction, and exit-block phis
/// carry one incoming entry per replica.
UnrollResult unrollLoop(Loop &L, unsigned N);

/// Loop-body blocks in reverse post-order of the body DAG (back edges to
/// the header removed): a topological order of one iteration.
std::vector<BasicBlock *> loopBodyRPO(Loop &L);

/// The ordinary -O3-style unroller, applied to *every* build (the paper
/// applies the user-specified optimization level to all environments,
/// Section 4.6). Unrolls innermost, call-free loops whose body has at
/// most \p MaxBodyInsts instructions by \p Factor. Loops the Loop Write
/// Clusterer already expanded exceed the cap and are left alone.
/// Returns the number of loops unrolled.
unsigned unrollStandardLoops(Function &F, unsigned Factor,
                             unsigned MaxBodyInsts);
unsigned unrollStandardLoops(Module &M, unsigned Factor = 4,
                             unsigned MaxBodyInsts = 40);

} // namespace wario

#endif // WARIO_TRANSFORMS_LOOPUNROLLER_H
