//===----------------------------------------------------------------------===//
///
/// \file
/// Instruction/block cloning primitives shared by the loop unroller and
/// the inliner.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_TRANSFORMS_CLONING_H
#define WARIO_TRANSFORMS_CLONING_H

#include "ir/Function.h"

#include <unordered_map>

namespace wario {

/// Remapping table from original values to their clones. Values absent
/// from the table map to themselves (constants, globals, out-of-region
/// definitions).
class ValueMapper {
public:
  void map(const Value *From, Value *To) { Table[From] = To; }

  Value *lookup(Value *V) const {
    auto It = Table.find(V);
    return It == Table.end() ? V : It->second;
  }

  bool contains(const Value *V) const { return Table.count(V) != 0; }

private:
  std::unordered_map<const Value *, Value *> Table;
};

/// Creates a detached copy of \p I (same opcode, payload, and name) inside
/// \p F's arena, with operands remapped through \p VM. Block operands are
/// copied verbatim; the caller retargets them.
Instruction *cloneInstruction(const Instruction *I, Function &F,
                              const ValueMapper &VM);

} // namespace wario

#endif // WARIO_TRANSFORMS_CLONING_H
