//===----------------------------------------------------------------------===//
///
/// \file
/// Expander (paper Sections 3.1.2 and 4.3): aggressively inlines calls to
/// pointer-manipulating functions that sit inside innermost loops. A call
/// in a loop forces an entry and an exit checkpoint per iteration and
/// blocks the Loop Write Clusterer (calls disqualify candidate loops), so
/// expanding such calls both removes forced checkpoints and unlocks write
/// clustering.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_TRANSFORMS_EXPANDER_H
#define WARIO_TRANSFORMS_EXPANDER_H

#include "ir/Module.h"

namespace wario {

struct ExpanderOptions {
  /// Callee size cap (instructions). The paper notes the Expander's
  /// heuristic is profile-free and can occasionally inline unprofitably;
  /// the cap keeps worst-case code growth bounded.
  unsigned MaxCalleeSize = 600;
};

struct ExpanderStats {
  unsigned CandidateFunctions = 0;
  unsigned CallsInlined = 0;
};

/// Runs the Expander over the whole module.
ExpanderStats runExpander(Module &M, const ExpanderOptions &Opts = {});

} // namespace wario

#endif // WARIO_TRANSFORMS_EXPANDER_H
