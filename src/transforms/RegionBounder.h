//===----------------------------------------------------------------------===//
///
/// \file
/// Region Bounder — an implementation of the paper's Section 6 future
/// work ("Location-specific Checkpoints"): guarantee that no idempotent
/// region exceeds a target cycle budget, so devices with very small
/// storage capacitors can still make forward progress.
///
/// WAR-free loops (table initialization, output folding, search loops)
/// contain no checkpoints at all, so their regions grow with the trip
/// count. The paper's related work notes that counter-based loop
/// checkpointing "does not work when the main memory is NV" — because a
/// counter kept in NVM would itself be a WAR. The trick here is that our
/// counter is an SSA value: it lives in a register, is saved and
/// restored *by* the checkpoint like any other register, and never
/// touches memory. Each candidate loop gets
///
///   k' = k + perIterationCycles
///   if (k' >= budget) { checkpoint; k'' = 0 }
///
/// folded into its latch, bounding the region at ~budget cycles with one
/// compare+branch of steady-state overhead per iteration.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_TRANSFORMS_REGIONBOUNDER_H
#define WARIO_TRANSFORMS_REGIONBOUNDER_H

#include "ir/Module.h"

namespace wario {

struct RegionBounderOptions {
  /// Target maximum idempotent region length, in (estimated) cycles.
  uint64_t MaxRegionCycles = 20'000;
  /// Active checkpoint strategy. The rollback strategies leave WAR
  /// loops checkpoint-free, so the bounder is their only in-loop region
  /// cut; under Speculative the per-iteration estimate also charges
  /// undo-logged stores their extra runtime cost (cycles::SpecLogStore)
  /// so the budget stays honored in emulated cycles.
  CheckpointStrategy Strat = CheckpointStrategy::Idempotent;
};

struct RegionBounderStats {
  unsigned LoopsBounded = 0;
};

/// Bounds every cut-free loop of \p F. Run after the clustering passes
/// and before (or after) the checkpoint inserter — the inserted
/// checkpoints also count as region cuts for later passes.
RegionBounderStats boundRegions(Function &F,
                                const RegionBounderOptions &Opts);
RegionBounderStats boundRegions(Module &M, const RegionBounderOptions &Opts);

/// The static per-instruction cycle estimate the bounder uses (a
/// conservative mirror of the emulator's cycle model).
uint64_t estimateCycles(const Instruction &I);

} // namespace wario

#endif // WARIO_TRANSFORMS_REGIONBOUNDER_H
