#include "transforms/Expander.h"

#include "analysis/LoopInfo.h"
#include "transforms/Inliner.h"

#include <unordered_set>

using namespace wario;

namespace {

/// Heuristic from Section 4.3: a function "contains pointers" when one of
/// its arguments flows (directly or through address arithmetic) into the
/// address of a load or store.
bool usesArgumentAsPointer(const Function &F) {
  if (F.isDeclaration())
    return false;
  std::vector<const Value *> Work;
  std::unordered_set<const Value *> Seen;
  for (unsigned I = 0, E = F.getNumParams(); I != E; ++I) {
    Work.push_back(F.getArg(I));
    Seen.insert(F.getArg(I));
  }
  while (!Work.empty()) {
    const Value *V = Work.back();
    Work.pop_back();
    for (const Instruction *U : V->users()) {
      if (U->isMemoryAccess() && U->getAddressOperand() == V)
        return true;
      if (U->getOpcode() == Opcode::Gep || U->getOpcode() == Opcode::Add ||
          U->getOpcode() == Opcode::Phi || U->getOpcode() == Opcode::Select)
        if (Seen.insert(U).second)
          Work.push_back(U);
    }
  }
  return false;
}

} // namespace

ExpanderStats wario::runExpander(Module &M, const ExpanderOptions &Opts) {
  ExpanderStats Stats;

  // Phase 1: candidate list.
  std::unordered_set<const Function *> Candidates;
  for (const auto &F : M.functions())
    if (usesArgumentAsPointer(*F)) {
      Candidates.insert(F);
      ++Stats.CandidateFunctions;
    }
  if (Candidates.empty())
    return Stats;

  // Phase 2: expand candidate calls inside innermost loops. Inlining
  // mutates the CFG, so re-derive analyses after each expansion.
  for (auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    bool Progress = true;
    while (Progress) {
      Progress = false;
      DominatorTree DT(*F);
      LoopInfo LI(*F, DT);
      for (BasicBlock *BB : *F) {
        Loop *L = LI.getLoopFor(BB);
        if (!L || !L->getSubLoops().empty())
          continue; // Only calls in innermost loops.
        for (Instruction *I : *BB) {
          if (I->getOpcode() != Opcode::Call)
            continue;
          Function *Callee = I->getCallee();
          if (!Candidates.count(Callee) || Callee == F ||
              Callee->countInstructions() > Opts.MaxCalleeSize)
            continue;
          if (inlineCall(I)) {
            ++Stats.CallsInlined;
            Progress = true;
            break;
          }
        }
        if (Progress)
          break;
      }
    }
  }
  return Stats;
}
