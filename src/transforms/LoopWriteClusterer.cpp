#include "transforms/LoopWriteClusterer.h"


#include "analysis/MemoryDependence.h"
#include "ir/IRBuilder.h"
#include "ir/Cloning.h"
#include "transforms/LoopUnroller.h"
#include "transforms/Utils.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace wario;

namespace {

/// Analysis bundle recomputed between loop transformations (each
/// transformation rewrites the CFG).
struct Analyses {
  DominatorTree DT;
  DominatorTree PDT;
  LoopInfo LI;
  MemoryDependence MD;

  /// The comma trick drops AA's memoized results before MD re-queries:
  /// the rewrite that forced this rebuild may have deleted Values whose
  /// pointers (the cache keys) a later allocation could reuse.
  Analyses(Function &F, const AliasAnalysis &AA)
      : DT(F), PDT(F, /*Post=*/true), LI(F, DT),
        MD(F, (AA.invalidate(), AA), LI) {}
};

/// Paper Algorithm 1, IsCandidate: innermost, unique latch, call-free
/// body, at least one WAR whose write the latch post-dominates — and the
/// latch must post-dominate *every* WAR write, or the loop is rejected.
bool isCandidate(Loop &L, const Analyses &A) {
  if (!L.getSubLoops().empty())
    return false;
  BasicBlock *Latch = L.getLatch();
  if (!Latch)
    return false;
  for (BasicBlock *BB : L.blocks())
    for (Instruction *I : *BB) {
      switch (I->getOpcode()) {
      case Opcode::Call:
      case Opcode::Out:
      case Opcode::Checkpoint:
        return false; // Forced checkpoints / side effects in the body.
      default:
        break;
      }
    }
  std::vector<const MemDep *> Wars = A.MD.warsIn(L);
  if (Wars.empty())
    return false;
  for (const MemDep *D : Wars)
    if (!A.PDT.dominates(Latch, D->Dst->getParent()))
      return false;
  return true;
}

/// Per-instruction position in the unrolled body, iteration-major; used
/// as "original program order" after unrolling.
using OrderMap = std::unordered_map<const Instruction *, unsigned>;

OrderMap numberBody(const std::vector<BasicBlock *> &Blocks) {
  OrderMap Order;
  unsigned N = 0;
  for (BasicBlock *BB : Blocks)
    for (Instruction *I : *BB)
      Order[I] = N++;
  return Order;
}

class LoopTransformer {
public:
  LoopTransformer(Function &F, const AliasAnalysis &AA,
                  LoopWriteClustererStats &Stats)
      : F(F), M(F.getParent()), AA(AA), Stats(Stats) {}

  /// Transforms the (already unrolled) loop with header \p Header.
  /// Returns false if no store could be postponed.
  bool run(const UnrollResult &UR) {
    Body = UR.allBlocks();
    BodySet.insert(Body.begin(), Body.end());
    Order = numberBody(Body);

    Analyses A(F, AA);
    Loop *L = A.LI.getLoopFor(Body.front());
    assert(L && L->getHeader() == Body.front() &&
           "unrolled loop lost its header");
    BasicBlock *Latch = L->getLatch();
    assert(Latch && "unrolled loop lost its unique latch");
    Instruction *LatchTerm = Latch->getTerminator();

    // Collect the unrolled loop's WAR writes and dependent reads.
    std::vector<const MemDep *> Wars = A.MD.warsIn(*L);
    std::vector<Instruction *> Postponed;
    std::unordered_set<Instruction *> PostponedSet;
    for (const MemDep *D : Wars) {
      Instruction *W = D->Dst;
      if (!BodySet.count(W->getParent()) || PostponedSet.count(W))
        continue;
      Postponed.push_back(W);
      PostponedSet.insert(W);
    }
    if (Postponed.empty())
      return false;

    // Exit edges of the unrolled loop.
    std::vector<std::pair<BasicBlock *, BasicBlock *>> Exits =
        L->getExitEdges();

    // Iteratively drop stores whose postponement cannot be compensated.
    dropUnsupportedStores(A, *L, Latch, LatchTerm, Exits, Postponed,
                          PostponedSet);
    if (Postponed.empty())
      return false;

    std::sort(Postponed.begin(), Postponed.end(),
              [&](Instruction *X, Instruction *Y) {
                return Order.at(X) < Order.at(Y);
              });

    // Dependent reads must be instrumented before the stores move (the
    // checks are inserted at the read, using the store's operands).
    instrumentReads(A, *L, Postponed, PostponedSet);

    // Early exits get compensating copies of every postponed store that
    // dominates them.
    addExitCopies(A, Exits, Postponed);

    // Finally postpone: move the stores, in original order, to the latch.
    for (Instruction *W : Postponed) {
      W->moveBeforeTerminator(Latch);
      ++Stats.StoresPostponed;
    }

    // Place the cluster checkpoint (Figure 3, final form): one checkpoint
    // immediately before the first clustered store resolves the WARs of
    // all N merged iterations. Inserting it here also marks the loop as
    // transformed for later passes (a checkpoint in the body disqualifies
    // it from further unrolling or clustering).
    IRBuilder IRB(M);
    IRB.setInsertPoint(Postponed.front());
    IRB.createCheckpoint()->setCheckpointCause(
        CheckpointCause::MiddleEndWar);
    (void)LatchTerm;
    return true;
  }

private:
  /// A store S must not be overtaken by an aliasing stationary store, must
  /// dominate or be disjoint from every exit it "precedes", and every
  /// dependent read must be dominated by it (so the runtime check is
  /// meaningful). Violations remove S from the postponed set; removal can
  /// create new stationary stores, so iterate to a fixed point.
  void dropUnsupportedStores(
      Analyses &A, Loop &L, BasicBlock *Latch, Instruction *LatchTerm,
      const std::vector<std::pair<BasicBlock *, BasicBlock *>> &Exits,
      std::vector<Instruction *> &Postponed,
      std::unordered_set<Instruction *> &PostponedSet) {
    (void)L;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (auto It = Postponed.begin(); It != Postponed.end();) {
        Instruction *W = *It;
        bool Drop = false;

        // (a0) W must dominate the latch: postponing may only move a
        // store that executes on *every* latch-reaching iteration, or a
        // conditional store would become unconditional. (The paper's
        // IsCandidate phrases this as the latch post-dominating the
        // write, which a rejoining branch arm also satisfies — dominance
        // is the sound direction.)
        if (!A.DT.dominates(W, LatchTerm))
          Drop = true;

        // (a) Operands must be available at the latch insertion point.
        for (unsigned J = 0; J != W->getNumOperands() && !Drop; ++J)
          if (auto *Def = dyn_cast<Instruction>(W->getOperand(J)))
            if (!A.DT.dominates(Def, LatchTerm))
              Drop = true;

        // (b) No stationary aliasing store W could overtake when sinking
        // (order on some forward path would flip).
        for (BasicBlock *BB : Body) {
          if (Drop)
            break;
          for (Instruction *S : *BB) {
            if (S->getOpcode() != Opcode::Store || PostponedSet.count(S) ||
                S == W)
              continue;
            if (onForwardPath(A, W, S) &&
                AA.alias(S, W) != AliasResult::NoAlias)
              Drop = true;
          }
        }

        // (c) Exits W forward-reaches must be dominated by W, or the
        // compensating copy cannot be placed.
        for (auto &[E, X] : Exits) {
          (void)X;
          if (Drop)
            break;
          Instruction *ETerm = E->getTerminator();
          if (A.DT.dominates(W, ETerm))
            continue; // Copy is well-defined.
          if (W->getParent() == E ||
              A.MD.reachability().forwardReaches(W->getParent(), E))
            Drop = true; // Reachable but conditional: cannot compensate.
        }

        // (d) Dependent reads must be dominated by W, or the runtime
        // check would consult a store that never "executed".
        if (!Drop) {
          for (BasicBlock *BB : Body) {
            if (Drop)
              break;
            for (Instruction *R : *BB) {
              if (R->getOpcode() != Opcode::Load)
                continue;
              if (AA.alias(R, W) == AliasResult::NoAlias)
                continue;
              if (!onForwardPath(A, W, R) || A.DT.dominates(W, R))
                continue;
              Drop = true;
              break;
            }
          }
        }

        if (Drop) {
          PostponedSet.erase(W);
          It = Postponed.erase(It);
          Changed = true;
        } else {
          ++It;
        }
      }

      // (e) Break-even guard (paper Section 3.1.2): a read needing more
      // than a few compare+select pairs costs more than the checkpoint it
      // saves. Un-postpone the stores feeding such reads. Must-alias
      // forwarding is free and exempt.
      if (!Changed) {
        for (BasicBlock *BB : Body) {
          for (Instruction *R : *BB) {
            if (R->getOpcode() != Opcode::Load)
              continue;
            bool PureForward = false;
            std::vector<Instruction *> Deps =
                depsForRead(A, R, Postponed, PureForward);
            if (PureForward || Deps.size() <= MaxChecksPerRead)
              continue;
            for (Instruction *W : Deps) {
              PostponedSet.erase(W);
              Postponed.erase(
                  std::find(Postponed.begin(), Postponed.end(), W));
            }
            Changed = true;
            break;
          }
          if (Changed)
            break;
        }
      }
    }
    (void)Latch;
  }

  static constexpr unsigned MaxChecksPerRead = 4;

  /// True if execution can flow from \p W to \p R without taking the
  /// unrolled loop's back edge.
  bool onForwardPath(Analyses &A, Instruction *W, Instruction *R) {
    if (W->getParent() == R->getParent())
      return Order.at(W) < Order.at(R);
    return A.MD.reachability().forwardReaches(W->getParent(),
                                              R->getParent());
  }

  /// Postponed stores the read \p R may depend on, in original program
  /// order. When the latest one must-alias R (so its value statically
  /// shadows all earlier ones), only that store is returned with
  /// \p PureForward set: the read forwards with no runtime check.
  std::vector<Instruction *>
  depsForRead(Analyses &A, Instruction *R,
              const std::vector<Instruction *> &Postponed,
              bool &PureForward) {
    std::vector<Instruction *> Deps;
    for (Instruction *W : Postponed) {
      if (AA.alias(R, W) == AliasResult::NoAlias)
        continue;
      if (!onForwardPath(A, W, R))
        continue; // Carried around the back edge: cluster runs first.
      Deps.push_back(W);
    }
    std::sort(Deps.begin(), Deps.end(), [&](Instruction *X, Instruction *Y) {
      return Order.at(X) < Order.at(Y);
    });
    PureForward = false;
    if (!Deps.empty() && AA.alias(R, Deps.back()) == AliasResult::MustAlias &&
        A.DT.dominates(Deps.back(), R)) {
      // Store-to-load forwarding: the latest store writes exactly this
      // location on every path, shadowing all earlier aliasing stores.
      PureForward = true;
      Deps = {Deps.back()};
    }
    return Deps;
  }

  /// Paper Algorithm 1, InstrumentReads: after each dependent read, chain
  /// `cmp = (raddr == waddr); sel = cmp ? wval : prev` per aliasing
  /// postponed store (in store order, so the latest store wins), then
  /// rewire the read's users to the final select.
  void instrumentReads(Analyses &A, Loop &L,
                       const std::vector<Instruction *> &Postponed,
                       const std::unordered_set<Instruction *> &PostponedSet) {
    (void)L;
    (void)PostponedSet;
    IRBuilder IRB(M);
    for (BasicBlock *BB : Body) {
      // Snapshot: instrumentation inserts instructions into the block.
      std::vector<Instruction *> Loads;
      for (Instruction *I : *BB)
        if (I->getOpcode() == Opcode::Load)
          Loads.push_back(I);
      for (Instruction *R : Loads) {
        bool PureForward = false;
        std::vector<Instruction *> Deps =
            depsForRead(A, R, Postponed, PureForward);
        if (Deps.empty())
          continue;
        for ([[maybe_unused]] Instruction *W : Deps)
          assert(A.DT.dominates(W, R) &&
                 "unsupported store left in postponed set");

        Value *Final = R;
        std::vector<Instruction *> Chain;
        if (PureForward) {
          // The latest store must-aliases the read on every path: the
          // read's value is simply the stored register (the now-dead
          // load is cleaned up by DCE).
          Final = Deps.back()->getStoredValue();
        } else {
          // Insert the chain right after the load (a load is never a
          // block terminator, so a next instruction always exists).
          auto Pos = std::find(R->getParent()->begin(),
                               R->getParent()->end(), R);
          ++Pos;
          assert(Pos != R->getParent()->end() &&
                 "load terminates a block?");
          for (Instruction *W : Deps) {
            IRB.setInsertPoint(*Pos);
            Instruction *Cmp =
                IRB.createICmp(CmpPred::EQ, R->getAddressOperand(),
                               W->getAddressOperand(), "wchk");
            Instruction *Sel =
                IRB.createSelect(Cmp, W->getStoredValue(), Final, "wfwd");
            Chain.push_back(Cmp);
            Chain.push_back(Sel);
            Final = Sel;
            ++Stats.RuntimeChecks;
          }
        }

        // Rewire users of R (outside the chain) to the final value.
        std::vector<Instruction *> Users(R->users().begin(),
                                         R->users().end());
        std::unordered_set<Instruction *> ChainSet(Chain.begin(),
                                                   Chain.end());
        for (Instruction *U : Users) {
          if (ChainSet.count(U))
            continue;
          for (unsigned J = 0, E = U->getNumOperands(); J != E; ++J)
            if (U->getOperand(J) == R)
              U->setOperand(J, Final);
        }
      }
    }
  }

  /// Paper Algorithm 1, ModifyExits: each exit edge gets a fresh block
  /// carrying copies (in original order) of every postponed store that
  /// dominates the exiting branch.
  void addExitCopies(
      Analyses &A,
      const std::vector<std::pair<BasicBlock *, BasicBlock *>> &Exits,
      const std::vector<Instruction *> &Postponed) {
    ValueMapper Identity;
    for (auto &[E, X] : Exits) {
      Instruction *ETerm = E->getTerminator();
      std::vector<Instruction *> Needed;
      for (Instruction *W : Postponed)
        if (A.DT.dominates(W, ETerm))
          Needed.push_back(W);
      if (Needed.empty())
        continue;
      BasicBlock *NB = splitEdge(E, X);
      Instruction *NTerm = NB->getTerminator();
      // As in Figure 3's final form, each early exit carries its own
      // checkpoint ahead of the compensating stores.
      IRBuilder IRB(M);
      IRB.setInsertPoint(NTerm);
      IRB.createCheckpoint()->setCheckpointCause(
          CheckpointCause::MiddleEndWar);
      for (Instruction *W : Needed) {
        Instruction *Copy = cloneInstruction(W, F, Identity);
        Copy->moveBefore(NTerm);
        ++Stats.ExitCopies;
      }
    }
  }

  Function &F;
  Module *M;
  const AliasAnalysis &AA;
  LoopWriteClustererStats &Stats;
  std::vector<BasicBlock *> Body;
  std::unordered_set<const BasicBlock *> BodySet;
  OrderMap Order;
};

} // namespace

LoopWriteClustererStats
wario::runLoopWriteClusterer(Function &F,
                             const LoopWriteClustererOptions &Opts) {
  LoopWriteClustererStats Stats;
  if (F.isDeclaration() || Opts.UnrollFactor < 1)
    return Stats;
  AliasAnalysis AA(Opts.Precision);
  std::unordered_set<BasicBlock *> DoneHeaders;

  bool Progress = true;
  while (Progress) {
    Progress = false;
    Analyses A(F, AA);
    for (Loop *L : A.LI.loops()) {
      if (DoneHeaders.count(L->getHeader()))
        continue;
      if (!isCandidate(*L, A))
        continue;
      DoneHeaders.insert(L->getHeader());

      if (Opts.UnrollFactor < 2) {
        // N=1: clustering without unrolling (the Figure 6 baseline).
        UnrollResult UR;
        UR.Unrolled = true;
        UR.Iterations.push_back(loopBodyRPO(*L));
        LoopTransformer T(F, AA, Stats);
        if (T.run(UR))
          ++Stats.LoopsTransformed;
        Progress = true;
        break; // CFG changed; recompute analyses.
      }

      UnrollResult UR = unrollLoop(*L, Opts.UnrollFactor);
      if (!UR.Unrolled) {
        Progress = true; // unrollLoop may still have changed the CFG
        break;           // (preheader/exit splitting); recompute.
      }
      LoopTransformer T(F, AA, Stats);
      if (T.run(UR))
        ++Stats.LoopsTransformed;
      Progress = true;
      break;
    }
  }
  return Stats;
}

LoopWriteClustererStats
wario::runLoopWriteClusterer(Module &M,
                             const LoopWriteClustererOptions &Opts) {
  LoopWriteClustererStats Total;
  for (auto &F : M.functions()) {
    LoopWriteClustererStats S = runLoopWriteClusterer(*F, Opts);
    Total.LoopsTransformed += S.LoopsTransformed;
    Total.StoresPostponed += S.StoresPostponed;
    Total.ExitCopies += S.ExitCopies;
    Total.RuntimeChecks += S.RuntimeChecks;
  }
  return Total;
}
