#include "transforms/Inliner.h"

#include "ir/Cloning.h"
#include "ir/IRBuilder.h"

using namespace wario;

bool wario::inlineCall(Instruction *Call) {
  assert(Call->getOpcode() == Opcode::Call && "not a call site");
  Function *Callee = Call->getCallee();
  BasicBlock *B = Call->getParent();
  Function &Caller = *B->getParent();
  Module *M = Caller.getParent();
  if (Callee->isDeclaration() || Callee == &Caller)
    return false;

  // Collect return sites up front; a never-returning callee with a used
  // return value cannot be inlined with this scheme.
  std::vector<Instruction *> CalleeRets;
  for (BasicBlock *BB : *Callee)
    if (Instruction *T = BB->getTerminator(); T && T->getOpcode() == Opcode::Ret)
      CalleeRets.push_back(T);
  if (CalleeRets.empty() && Callee->returnsValue())
    return false;

  // 1. Split the caller block after the call site.
  BasicBlock *After = Caller.createBlockAfter(B, B->getName() + ".ret");
  {
    std::vector<Instruction *> Trailing;
    bool Seen = false;
    for (Instruction *I : *B) {
      if (Seen)
        Trailing.push_back(I);
      if (I == Call)
        Seen = true;
    }
    for (Instruction *I : Trailing) {
      I->removeFromParent();
      After->push_back(I);
    }
  }
  // Phi entries in B's old successors now flow from After.
  for (BasicBlock *S : After->successors())
    for (Instruction *Phi : S->phis())
      for (unsigned J = 0, E = Phi->getNumBlockOperands(); J != E; ++J)
        if (Phi->getBlockOperand(J) == B)
          Phi->setBlockOperand(J, After);

  // 2. Clone the callee body (two passes: materialize, then remap).
  ValueMapper VM;
  for (unsigned I = 0, E = Callee->getNumParams(); I != E; ++I)
    VM.map(Callee->getArg(I), Call->getOperand(I));

  std::unordered_map<const BasicBlock *, BasicBlock *> BMap;
  BasicBlock *InsertAfter = B;
  for (BasicBlock *BB : *Callee) {
    BasicBlock *NB = Caller.createBlockAfter(
        InsertAfter, Callee->getName() + "." + BB->getName());
    BMap[BB] = NB;
    InsertAfter = NB;
  }

  ValueMapper Identity;
  std::vector<Instruction *> Cloned;
  for (BasicBlock *BB : *Callee) {
    BasicBlock *NB = BMap[BB];
    for (Instruction *I : *BB) {
      Instruction *NI = cloneInstruction(I, Caller, Identity);
      VM.map(I, NI);
      Cloned.push_back(NI);
      if (NI->getOpcode() == Opcode::Alloca) {
        // Hoist to the caller's entry so static frame layout still sees
        // every slot exactly once.
        BasicBlock *Entry = Caller.getEntryBlock();
        Entry->insert(Entry->begin(), NI);
      } else {
        NB->push_back(NI);
      }
      for (unsigned J = 0, E = NI->getNumBlockOperands(); J != E; ++J)
        NI->setBlockOperand(J, BMap.at(NI->getBlockOperand(J)));
    }
  }
  for (Instruction *NI : Cloned)
    for (unsigned J = 0, E = NI->getNumOperands(); J != E; ++J)
      NI->setOperand(J, VM.lookup(NI->getOperand(J)));

  // 3. Rewrite cloned returns into jumps to After, collecting values.
  IRBuilder IRB(M);
  std::vector<std::pair<Value *, BasicBlock *>> RetVals;
  for (Instruction *OrigRet : CalleeRets) {
    auto *NR = cast<Instruction>(VM.lookup(OrigRet));
    BasicBlock *RB = NR->getParent();
    if (Callee->returnsValue())
      RetVals.emplace_back(NR->getOperand(0), RB);
    Caller.eraseInstruction(NR);
    IRB.setInsertPoint(RB);
    IRB.createJmp(After);
  }

  // 4. Replace the call's value and reroute control.
  if (Callee->returnsValue() && Call->hasUsers()) {
    Value *Result = nullptr;
    if (RetVals.size() == 1) {
      Result = RetVals.front().first;
    } else {
      // Insert the merge phi at the head of After.
      IRB.setInsertPoint(After->front());
      Instruction *Phi = IRB.createPhi(Callee->getName() + ".ret");
      for (auto &[V, RB] : RetVals)
        IRBuilder::addPhiIncoming(Phi, V, RB);
      Result = Phi;
    }
    Call->replaceAllUsesWith(Result);
  }
  Caller.eraseInstruction(Call);
  IRB.setInsertPoint(B);
  IRB.createJmp(BMap.at(Callee->getEntryBlock()));
  return true;
}

unsigned wario::inlineSmallFunctions(Module &M, unsigned MaxCalleeSize) {
  unsigned Inlined = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto &F : M.functions()) {
      if (F->isDeclaration())
        continue;
      std::vector<Instruction *> Sites;
      for (BasicBlock *BB : *F)
        for (Instruction *I : *BB)
          if (I->getOpcode() == Opcode::Call &&
              !I->getCallee()->isDeclaration() &&
              I->getCallee() != F &&
              I->getCallee()->countInstructions() <= MaxCalleeSize)
            Sites.push_back(I);
      for (Instruction *Site : Sites)
        if (inlineCall(Site)) {
          ++Inlined;
          Changed = true;
        }
    }
  }
  return Inlined;
}
