#include "transforms/Cloning.h"

using namespace wario;

Instruction *wario::cloneInstruction(const Instruction *I, Function &F,
                                     const ValueMapper &VM) {
  std::vector<Value *> Ops;
  Ops.reserve(I->getNumOperands());
  for (unsigned J = 0, E = I->getNumOperands(); J != E; ++J)
    Ops.push_back(VM.lookup(I->getOperand(J)));

  auto NI = std::make_unique<Instruction>(I->getOpcode(), std::move(Ops));
  NI->setName(I->getName());
  switch (I->getOpcode()) {
  case Opcode::Alloca:
    NI->setAllocaSize(I->getAllocaSize());
    break;
  case Opcode::Load:
    NI->setAccessSize(I->getAccessSize());
    NI->setSignedLoad(I->isSignedLoad());
    break;
  case Opcode::Store:
    NI->setAccessSize(I->getAccessSize());
    break;
  case Opcode::Gep:
    NI->setGepScale(I->getGepScale());
    NI->setGepOffset(I->getGepOffset());
    break;
  case Opcode::ICmp:
    NI->setPredicate(I->getPredicate());
    break;
  case Opcode::Call:
    NI->setCallee(I->getCallee());
    break;
  case Opcode::Checkpoint:
    NI->setCheckpointCause(I->getCheckpointCause());
    break;
  default:
    break;
  }
  for (unsigned J = 0, E = I->getNumBlockOperands(); J != E; ++J)
    NI->addBlockOperand(I->getBlockOperand(J));
  return F.adopt(std::move(NI));
}
