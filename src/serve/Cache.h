//===----------------------------------------------------------------------===//
///
/// \file
/// The shared multi-tenant staged result cache behind both the serving
/// daemon (src/serve/Server.h) and the experiment harness
/// (bench/Harness.h). Promoted out of bench/Harness.cpp so one resident
/// process can amortize compilation artifacts across heavy multi-client
/// traffic — the DietCode serving-compiler shape: a store keyed by
/// canonicalized compile configurations.
///
/// Four levels, each keyed by the option values themselves (defaulted
/// <=> over every field, so any option difference is a key difference):
///
///   front    frontend + front half     per (tenant, workload)
///   mid      middle-end IR             per (tenant, workload, MiddleEndConfig)
///   compile  machine module            per (tenant, workload, PipelineOptions)
///   run      emulation result          per (tenant, workload, PO, EmulatorOptions)
///
/// Tenancy: every key carries the requesting tenant's namespace, so two
/// tenants submitting identical options get distinct entries and can
/// never observe each other's cache state (not even as a hit/miss timing
/// difference).
///
/// Eviction: entries across all four levels share one LRU list and one
/// byte budget (0 = unbounded). Publishing an entry accounts its
/// approximate footprint and evicts least-recently-used entries until
/// the total fits the budget again; the most-recently-used entry is
/// never evicted, so a single oversized artifact still serves. Values
/// are handed out as shared_ptr, which makes eviction safe by
/// construction: holders keep their artifact alive, the cache merely
/// forgets it (a later lookup recomputes — results are pure functions
/// of the key, so recomputation is invisible except to the wall clock).
///
/// Concurrency: a slot is filled exactly once by the thread that claimed
/// it; concurrent requesters of the same key block on the slot and count
/// as hits. Hit/miss/eviction counters per level are exposed through
/// counters() and the daemon's `stats` request.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_SERVE_CACHE_H
#define WARIO_SERVE_CACHE_H

#include "driver/Pipeline.h"
#include "emu/Emulator.h"

#include <functional>
#include <memory>
#include <string>

namespace wario::serve {

/// Everything one (workload, pipeline, emulator) request produces. On
/// failure (unknown workload, frontend diagnostics, emulation error)
/// Error is non-empty and Emu.Ok is false; failures are cached like
/// successes — they are just as deterministic, and negative caching
/// keeps a misbehaving client from re-running the frontend per request.
struct RunResult {
  PipelineStats Pipeline;
  EmulatorResult Emu;
  unsigned TextBytes = 0;
  std::string Error;
};

/// A compiled cell before emulation: what the compile level stores.
/// Requests differing only in emulator options share one CompileResult.
struct CompileResult {
  MModule MM;
  PipelineStats Pipeline;
  unsigned TextBytes = 0;
  std::string Error;
};

/// One cache request: a tenant's workload compiled under a full pipeline
/// configuration and emulated under an emulator configuration.
struct CacheRequest {
  std::string Tenant; ///< Namespace; "" is the default tenant.
  std::string Workload;
  PipelineOptions PO;
  EmulatorOptions EO;
};

/// The four store levels, in dependency order (indexes into the counter
/// arrays below).
enum CacheLevel : unsigned {
  LevelFront = 0,
  LevelMid = 1,
  LevelCompile = 2,
  LevelRun = 3,
  NumCacheLevels = 4,
};

/// Pipeline stages the cache times (hook granularity for --timing).
enum class CacheStage { Frontend, FrontHalf, MiddleEnd, Backend, Emulate,
                        Clone };

/// Which levels answered from cache for one request. A level not
/// consulted (e.g. the compile level under a run-level hit) stays false.
struct Provenance {
  bool FrontHit = false;
  bool MidHit = false;
  bool CompileHit = false;
  bool RunHit = false;

  /// Wire form: bit 0 = front .. bit 3 = run.
  uint8_t bits() const {
    return uint8_t(FrontHit) | uint8_t(MidHit) << 1 |
           uint8_t(CompileHit) << 2 | uint8_t(RunHit) << 3;
  }
  static Provenance fromBits(uint8_t B) {
    return Provenance{(B & 1) != 0, (B & 2) != 0, (B & 4) != 0,
                      (B & 8) != 0};
  }
  bool operator==(const Provenance &) const = default;
};

/// Snapshot of the cache's accounting, per level and in bytes.
struct CacheCounters {
  uint64_t Hits[NumCacheLevels] = {};
  uint64_t Misses[NumCacheLevels] = {};
  uint64_t Evictions[NumCacheLevels] = {};
  uint64_t BytesUsed = 0;    ///< Approximate bytes of resident entries.
  uint64_t ByteBudget = 0;   ///< Configured budget (0 = unbounded).
  uint64_t BytesEvicted = 0; ///< Cumulative bytes reclaimed.
  uint64_t Entries = 0;      ///< Resident (published) entries.
  bool operator==(const CacheCounters &) const = default;
};

struct CacheConfig {
  /// Byte budget shared by all four levels; 0 = never evict.
  size_t ByteBudget = 0;

  /// Optional instrumentation: seconds actually spent computing a stage
  /// (cache-served stages never fire) and hits answered per level. Both
  /// may be called from any worker thread and must not call back into
  /// the cache.
  std::function<void(CacheStage, double)> OnStage;
  std::function<void(CacheLevel, uint64_t)> OnHit;

  /// Run-level emulation policy. The default runs emulate() on the
  /// compiled module; the bench harness substitutes its
  /// snapshot-chain-reusing path. The CompileResult is passed as a
  /// shared_ptr so the policy can pin the module beyond eviction (the
  /// harness's recorded chains borrow it). Results must be
  /// byte-identical to plain emulate() — the cache memoizes whatever
  /// this returns.
  std::function<EmulatorResult(const std::shared_ptr<const CompileResult> &,
                               const CacheRequest &,
                               const EmulatorOptions &)>
      Emulate;
};

/// The emulator options a request actually runs under: PlainC builds
/// carry no checkpoints, so WAR "violations" are expected and non-fatal
/// there. Shared by the cache, the harness's uncached reference path,
/// and the soak test's cold-recompute oracle.
EmulatorOptions effectiveOptions(const PipelineOptions &PO,
                                 const EmulatorOptions &EO);

/// Deduplicating, mutex-guarded, staged, byte-budgeted store. Thread
/// safe; see the file comment for the slot/eviction contract.
class StagedCache {
public:
  explicit StagedCache(CacheConfig Config = {});
  ~StagedCache();
  StagedCache(const StagedCache &) = delete;
  StagedCache &operator=(const StagedCache &) = delete;

  /// Full lookup-or-compute through all four levels.
  std::shared_ptr<const RunResult> run(const CacheRequest &R,
                                       Provenance *Prov = nullptr);

  /// Compile-level lookup-or-compute (no emulation); R.EO is ignored.
  std::shared_ptr<const CompileResult> compileCell(const CacheRequest &R,
                                                   Provenance *Prov = nullptr);

  CacheCounters counters() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace wario::serve

#endif // WARIO_SERVE_CACHE_H
