#include "serve/Client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace wario;
using namespace wario::serve;

namespace {

void setError(std::string *Error, const std::string &Msg) {
  if (Error)
    *Error = Msg;
}

} // namespace

Client::~Client() { close(); }

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool Client::connect(const std::string &SocketPath, std::string *Error) {
  close();
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    setError(Error, "socket path too long: " + SocketPath);
    return false;
  }
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    setError(Error, std::string("socket: ") + std::strerror(errno));
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    setError(Error, "connect " + SocketPath + ": " + std::strerror(errno));
    close();
    return false;
  }
  return true;
}

bool Client::transact(const std::vector<uint8_t> &FrameBytes, uint64_t Id,
                      MsgType Want, std::vector<uint8_t> &Body,
                      std::string *Error) {
  if (Fd < 0) {
    setError(Error, "not connected");
    return false;
  }
  if (!writeFrame(Fd, FrameBytes)) {
    setError(Error, "write failed (daemon gone?)");
    close();
    return false;
  }
  // Single outstanding request, so the next matching-id frame is ours;
  // skip anything else (a well-behaved server sends nothing else, but a
  // stray reply must not wedge the client on the wrong type).
  std::vector<uint8_t> Payload;
  for (;;) {
    FrameReadStatus St = readFrame(Fd, Payload);
    if (St != FrameReadStatus::Ok) {
      setError(Error, St == FrameReadStatus::TooBig
                          ? "oversized reply frame"
                          : "connection closed awaiting reply");
      close();
      return false;
    }
    std::optional<Frame> F = parseFrame(Payload);
    if (!F) {
      setError(Error, "malformed reply frame");
      close();
      return false;
    }
    if (F->Id != Id)
      continue;
    if (F->Type == MsgType::ErrorReply) {
      std::optional<std::string> Msg = decodeErrorReply(F->Body);
      setError(Error, "server error: " + (Msg ? *Msg : "<undecodable>"));
      return false;
    }
    if (F->Type != Want) {
      setError(Error, "unexpected reply type");
      return false;
    }
    Body = std::move(F->Body);
    return true;
  }
}

bool Client::ping(std::string *Error) {
  const uint64_t Id = NextId++;
  std::vector<uint8_t> Body;
  return transact(encodePing(Id), Id, MsgType::Pong, Body, Error);
}

bool Client::run(const RunRequestMsg &M, RunReplyMsg &Reply,
                 std::string *Error) {
  const uint64_t Id = NextId++;
  std::vector<uint8_t> Body;
  if (!transact(encodeRunRequest(Id, M), Id, MsgType::RunReply, Body, Error))
    return false;
  std::optional<RunReplyMsg> R = decodeRunReply(Body);
  if (!R) {
    setError(Error, "undecodable RunReply body");
    return false;
  }
  Reply = std::move(*R);
  return true;
}

bool Client::stats(StatsReplyMsg &Reply, std::string *Error) {
  const uint64_t Id = NextId++;
  std::vector<uint8_t> Body;
  if (!transact(encodeStatsRequest(Id), Id, MsgType::StatsReply, Body, Error))
    return false;
  std::optional<StatsReplyMsg> R = decodeStatsReply(Body);
  if (!R) {
    setError(Error, "undecodable StatsReply body");
    return false;
  }
  Reply = std::move(*R);
  return true;
}
