//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-and-simulate service: a long-lived daemon accepting
/// framed requests (src/serve/Protocol.h) over a Unix-domain socket,
/// serving every connection from one shared multi-tenant StagedCache.
///
/// Threading model: one reader thread per connection parses frames;
/// run requests are scheduled on a shared ThreadPool, so heavy compiles
/// from one client cannot starve another's cache hits, and replies go
/// out in completion order (the request id lets clients pipeline). With
/// a one-job pool no worker threads exist (ThreadPool runs tasks only at
/// wait()), so requests execute inline on the reader thread — still
/// correct, just serialized per connection.
///
/// The cache is the tenancy boundary: requests carry a tenant namespace,
/// and identical options under two tenants occupy two entries. The cache
/// byte budget (ServerOptions::CacheBytes) is the only resource cap —
/// artifacts evict LRU-first; see src/serve/Cache.h.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_SERVE_SERVER_H
#define WARIO_SERVE_SERVER_H

#include "serve/Protocol.h"

#include <memory>
#include <string>

namespace wario::serve {

struct ServerOptions {
  /// Filesystem path to bind (unlinked on start and on stop).
  std::string SocketPath;
  /// Cache byte budget (0 = unbounded).
  size_t CacheBytes = 0;
  /// Worker pool width (0 = defaultJobs(); 1 = inline execution).
  unsigned Jobs = 0;
};

/// The daemon core, embeddable in-process (the soak test runs it in the
/// test binary; tools/wario_served.cpp wraps it in a process).
class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server(); ///< Calls stop().
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds, listens, and starts the accept loop. False + \p Error on
  /// failure (e.g. the path is taken by a live daemon).
  bool start(std::string *Error = nullptr);

  /// Stops accepting, severs every connection, drains in-flight
  /// requests, and joins all threads. Idempotent.
  void stop();

  const std::string &socketPath() const;

  /// Service-level accounting (what a StatsRequest returns).
  StatsReplyMsg stats() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace wario::serve

#endif // WARIO_SERVE_SERVER_H
