#include "serve/Protocol.h"

#include <bit>
#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

using namespace wario;
using namespace wario::serve;

uint64_t wario::serve::fnv1a(const uint8_t *Data, size_t Size) {
  uint64_t H = 1469598103934665603ull;
  for (size_t I = 0; I != Size; ++I)
    H = (H ^ Data[I]) * 1099511628211ull;
  return H;
}

uint64_t wario::serve::fnv1aU64s(const std::vector<uint64_t> &Vals) {
  uint64_t H = 1469598103934665603ull;
  for (uint64_t V : Vals)
    for (int B = 0; B != 8; ++B)
      H = (H ^ uint8_t(V >> (8 * B))) * 1099511628211ull;
  return H;
}

RunReplyMsg wario::serve::makeRunReply(const RunResult &R, Provenance Prov) {
  RunReplyMsg M;
  M.Ok = R.Error.empty();
  M.Error = R.Error;
  M.ReturnValue = R.Emu.ReturnValue;
  M.Output = R.Emu.Output;
  M.TotalCycles = R.Emu.TotalCycles;
  M.InstructionsExecuted = R.Emu.InstructionsExecuted;
  M.CheckpointsExecuted = R.Emu.CheckpointsExecuted;
  M.CauseMiddleEndWar = R.Emu.Causes.MiddleEndWar;
  M.CauseBackendSpill = R.Emu.Causes.BackendSpill;
  M.CauseFunctionEntry = R.Emu.Causes.FunctionEntry;
  M.CauseFunctionExit = R.Emu.Causes.FunctionExit;
  M.PowerFailures = R.Emu.PowerFailures;
  M.InterruptsTaken = R.Emu.InterruptsTaken;
  M.WarViolations = R.Emu.WarViolations;
  M.TextBytes = R.TextBytes;
  M.MemHash = fnv1a(R.Emu.FinalMemory.data(), R.Emu.FinalMemory.size());
  M.RegionCount = R.Emu.RegionSizes.size();
  M.RegionHash = fnv1aU64s(R.Emu.RegionSizes);
  M.FrontendSeconds = R.Pipeline.FrontendSeconds;
  M.FrontHalfSeconds = R.Pipeline.FrontHalfSeconds;
  M.MiddleEndSeconds = R.Pipeline.MiddleEndSeconds;
  M.BackendSeconds = R.Pipeline.BackendSeconds;
  M.EmulateSeconds = R.Pipeline.EmulateSeconds;
  M.ProvenanceBits = Prov.bits();
  return M;
}

//===----------------------------------------------------------------------===//
// Byte readers/writers
//===----------------------------------------------------------------------===//

namespace {

struct Writer {
  std::vector<uint8_t> Buf;

  void u8(uint8_t V) { Buf.push_back(V); }
  void u32(uint32_t V) {
    for (int B = 0; B != 4; ++B)
      Buf.push_back(uint8_t(V >> (8 * B)));
  }
  void u64(uint64_t V) {
    for (int B = 0; B != 8; ++B)
      Buf.push_back(uint8_t(V >> (8 * B)));
  }
  void i32(int32_t V) { u32(uint32_t(V)); }
  void f64(double V) { u64(std::bit_cast<uint64_t>(V)); }
  void str(const std::string &S) {
    u32(uint32_t(S.size()));
    Buf.insert(Buf.end(), S.begin(), S.end());
  }
  void vecU64(const std::vector<uint64_t> &V) {
    u32(uint32_t(V.size()));
    for (uint64_t X : V)
      u64(X);
  }
  void vecI32(const std::vector<int32_t> &V) {
    u32(uint32_t(V.size()));
    for (int32_t X : V)
      i32(X);
  }
};

/// Bounds-checked cursor: every read clamps to the buffer; the first
/// out-of-range read latches Failed and every later read returns zero
/// values, so decoders can read straight through and check once.
struct Reader {
  const uint8_t *P;
  const uint8_t *End;
  bool Failed = false;

  explicit Reader(const std::vector<uint8_t> &B)
      : P(B.data()), End(B.data() + B.size()) {}

  bool take(size_t N) {
    if (Failed || size_t(End - P) < N) {
      Failed = true;
      return false;
    }
    return true;
  }
  uint8_t u8() {
    if (!take(1))
      return 0;
    return *P++;
  }
  uint32_t u32() {
    if (!take(4))
      return 0;
    uint32_t V = 0;
    for (int B = 0; B != 4; ++B)
      V |= uint32_t(*P++) << (8 * B);
    return V;
  }
  uint64_t u64() {
    if (!take(8))
      return 0;
    uint64_t V = 0;
    for (int B = 0; B != 8; ++B)
      V |= uint64_t(*P++) << (8 * B);
    return V;
  }
  int32_t i32() { return int32_t(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    uint32_t N = u32();
    if (!take(N))
      return {};
    std::string S(reinterpret_cast<const char *>(P), N);
    P += N;
    return S;
  }
  std::vector<uint64_t> vecU64() {
    uint32_t N = u32();
    // Element count is validated against the remaining bytes before
    // allocating: a forged count must not trigger a huge allocation.
    if (!take(size_t(N) * 8))
      return {};
    std::vector<uint64_t> V(N);
    for (uint32_t I = 0; I != N; ++I) {
      uint64_t X = 0;
      for (int B = 0; B != 8; ++B)
        X |= uint64_t(*P++) << (8 * B);
      V[I] = X;
    }
    return V;
  }
  std::vector<int32_t> vecI32() {
    uint32_t N = u32();
    if (!take(size_t(N) * 4))
      return {};
    std::vector<int32_t> V(N);
    for (uint32_t I = 0; I != N; ++I) {
      uint32_t X = 0;
      for (int B = 0; B != 4; ++B)
        X |= uint32_t(*P++) << (8 * B);
      V[I] = int32_t(X);
    }
    return V;
  }
  bool done() const { return !Failed && P == End; }
};

std::vector<uint8_t> finishFrame(MsgType T, uint64_t Id, Writer Body) {
  Writer F;
  F.u32(uint32_t(Body.Buf.size() + 10)); // version + type + id.
  F.u8(ProtocolVersion);
  F.u8(uint8_t(T));
  F.u64(Id);
  F.Buf.insert(F.Buf.end(), Body.Buf.begin(), Body.Buf.end());
  return std::move(F.Buf);
}

void putPower(Writer &W, const PowerSchedule &P) {
  W.u64(P.fixedPeriod());
  W.vecU64(P.traceDurations());
  W.str(P.name());
}

/// Reconstructs a schedule exactly (every state the factories can build
/// round-trips: fixed() always names itself "fixed", and trace({}, "fixed")
/// is bitwise the continuous schedule).
PowerSchedule getPower(Reader &R) {
  uint64_t Period = R.u64();
  std::vector<uint64_t> Durations = R.vecU64();
  std::string Name = R.str();
  if (!Durations.empty())
    return PowerSchedule::trace(std::move(Durations), std::move(Name));
  if (Period != 0)
    return PowerSchedule::fixed(Period);
  return Name == "fixed" ? PowerSchedule::continuous()
                         : PowerSchedule::trace({}, std::move(Name));
}

} // namespace

//===----------------------------------------------------------------------===//
// Message codecs
//===----------------------------------------------------------------------===//

std::vector<uint8_t> wario::serve::encodeRunRequest(uint64_t Id,
                                                    const RunRequestMsg &M) {
  Writer W;
  W.str(M.Tenant);
  W.str(M.Workload);
  W.u8(uint8_t(M.PO.Env));
  W.u8(uint8_t(M.PO.Strat));
  W.u32(M.PO.UnrollFactor);
  W.u8(uint8_t(M.PO.MiddleEndHittingSet) |
       uint8_t(M.PO.DepthWeightedCost) << 1 |
       uint8_t(M.PO.ForceConservativeAA) << 2 |
       uint8_t(M.PO.BoundRegions) << 3 |
       uint8_t(M.PO.ResolveMiddleEndWars) << 4 |
       uint8_t(M.PO.DiffFullRollback) << 5 |
       uint8_t(M.PO.SpecLogWars) << 6);
  W.u64(M.PO.MaxRegionCycles);
  putPower(W, M.EO.Power);
  W.u64(M.EO.InterruptPeriod);
  W.u64(M.EO.MaxCycles);
  W.u32(M.EO.MaxStalledBoots);
  W.u8(uint8_t(M.EO.CollectRegionSizes) | uint8_t(M.EO.WarIsFatal) << 1 |
       uint8_t(M.EO.CollectEventTrace) << 2);
  W.u64(M.EO.TraceWindowLo);
  W.u64(M.EO.TraceWindowHi);
  W.u8(uint8_t(M.EO.Engine));
  return finishFrame(MsgType::RunRequest, Id, std::move(W));
}

std::optional<RunRequestMsg>
wario::serve::decodeRunRequest(const std::vector<uint8_t> &Body) {
  Reader R(Body);
  RunRequestMsg M;
  M.Tenant = R.str();
  M.Workload = R.str();
  uint8_t Env = R.u8();
  uint8_t Strat = R.u8();
  M.PO.UnrollFactor = R.u32();
  uint8_t PFlags = R.u8();
  M.PO.MiddleEndHittingSet = PFlags & 1;
  M.PO.DepthWeightedCost = PFlags & 2;
  M.PO.ForceConservativeAA = PFlags & 4;
  M.PO.BoundRegions = PFlags & 8;
  M.PO.ResolveMiddleEndWars = PFlags & 16;
  M.PO.DiffFullRollback = PFlags & 32;
  M.PO.SpecLogWars = PFlags & 64;
  M.PO.MaxRegionCycles = R.u64();
  M.EO.Power = getPower(R);
  M.EO.InterruptPeriod = R.u64();
  M.EO.MaxCycles = R.u64();
  M.EO.MaxStalledBoots = R.u32();
  uint8_t EFlags = R.u8();
  M.EO.CollectRegionSizes = EFlags & 1;
  M.EO.WarIsFatal = EFlags & 2;
  M.EO.CollectEventTrace = EFlags & 4;
  M.EO.TraceWindowLo = R.u64();
  M.EO.TraceWindowHi = R.u64();
  uint8_t Engine = R.u8();
  if (!R.done())
    return std::nullopt;
  if (Env > uint8_t(Environment::WarioExpander))
    return std::nullopt;
  M.PO.Env = Environment(Env);
  if (Strat > uint8_t(CheckpointStrategy::Speculative))
    return std::nullopt;
  M.PO.Strat = CheckpointStrategy(Strat);
  if (Engine > uint8_t(EngineKind::Threaded))
    return std::nullopt;
  M.EO.Engine = EngineKind(Engine);
  return M;
}

std::vector<uint8_t> wario::serve::encodeRunReply(uint64_t Id,
                                                  const RunReplyMsg &M) {
  Writer W;
  W.u8(M.Ok);
  W.str(M.Error);
  W.i32(M.ReturnValue);
  W.vecI32(M.Output);
  W.u64(M.TotalCycles);
  W.u64(M.InstructionsExecuted);
  W.u64(M.CheckpointsExecuted);
  W.u64(M.CauseMiddleEndWar);
  W.u64(M.CauseBackendSpill);
  W.u64(M.CauseFunctionEntry);
  W.u64(M.CauseFunctionExit);
  W.u32(M.PowerFailures);
  W.u64(M.InterruptsTaken);
  W.u64(M.WarViolations);
  W.u32(M.TextBytes);
  W.u64(M.MemHash);
  W.u64(M.RegionCount);
  W.u64(M.RegionHash);
  W.f64(M.FrontendSeconds);
  W.f64(M.FrontHalfSeconds);
  W.f64(M.MiddleEndSeconds);
  W.f64(M.BackendSeconds);
  W.f64(M.EmulateSeconds);
  W.u8(M.ProvenanceBits);
  return finishFrame(MsgType::RunReply, Id, std::move(W));
}

std::optional<RunReplyMsg>
wario::serve::decodeRunReply(const std::vector<uint8_t> &Body) {
  Reader R(Body);
  RunReplyMsg M;
  M.Ok = R.u8();
  M.Error = R.str();
  M.ReturnValue = R.i32();
  M.Output = R.vecI32();
  M.TotalCycles = R.u64();
  M.InstructionsExecuted = R.u64();
  M.CheckpointsExecuted = R.u64();
  M.CauseMiddleEndWar = R.u64();
  M.CauseBackendSpill = R.u64();
  M.CauseFunctionEntry = R.u64();
  M.CauseFunctionExit = R.u64();
  M.PowerFailures = R.u32();
  M.InterruptsTaken = R.u64();
  M.WarViolations = R.u64();
  M.TextBytes = R.u32();
  M.MemHash = R.u64();
  M.RegionCount = R.u64();
  M.RegionHash = R.u64();
  M.FrontendSeconds = R.f64();
  M.FrontHalfSeconds = R.f64();
  M.MiddleEndSeconds = R.f64();
  M.BackendSeconds = R.f64();
  M.EmulateSeconds = R.f64();
  M.ProvenanceBits = R.u8();
  if (!R.done())
    return std::nullopt;
  return M;
}

std::vector<uint8_t> wario::serve::encodeStatsRequest(uint64_t Id) {
  return finishFrame(MsgType::StatsRequest, Id, Writer{});
}

std::vector<uint8_t> wario::serve::encodeStatsReply(uint64_t Id,
                                                    const StatsReplyMsg &M) {
  Writer W;
  for (unsigned L = 0; L != NumCacheLevels; ++L)
    W.u64(M.Counters.Hits[L]);
  for (unsigned L = 0; L != NumCacheLevels; ++L)
    W.u64(M.Counters.Misses[L]);
  for (unsigned L = 0; L != NumCacheLevels; ++L)
    W.u64(M.Counters.Evictions[L]);
  W.u64(M.Counters.BytesUsed);
  W.u64(M.Counters.ByteBudget);
  W.u64(M.Counters.BytesEvicted);
  W.u64(M.Counters.Entries);
  W.u64(M.RequestsServed);
  W.u64(M.ConnectionsAccepted);
  return finishFrame(MsgType::StatsReply, Id, std::move(W));
}

std::optional<StatsReplyMsg>
wario::serve::decodeStatsReply(const std::vector<uint8_t> &Body) {
  Reader R(Body);
  StatsReplyMsg M;
  for (unsigned L = 0; L != NumCacheLevels; ++L)
    M.Counters.Hits[L] = R.u64();
  for (unsigned L = 0; L != NumCacheLevels; ++L)
    M.Counters.Misses[L] = R.u64();
  for (unsigned L = 0; L != NumCacheLevels; ++L)
    M.Counters.Evictions[L] = R.u64();
  M.Counters.BytesUsed = R.u64();
  M.Counters.ByteBudget = R.u64();
  M.Counters.BytesEvicted = R.u64();
  M.Counters.Entries = R.u64();
  M.RequestsServed = R.u64();
  M.ConnectionsAccepted = R.u64();
  if (!R.done())
    return std::nullopt;
  return M;
}

std::vector<uint8_t> wario::serve::encodeErrorReply(uint64_t Id,
                                                    const std::string &Msg) {
  Writer W;
  W.str(Msg);
  return finishFrame(MsgType::ErrorReply, Id, std::move(W));
}

std::optional<std::string>
wario::serve::decodeErrorReply(const std::vector<uint8_t> &Body) {
  Reader R(Body);
  std::string S = R.str();
  if (!R.done())
    return std::nullopt;
  return S;
}

std::vector<uint8_t> wario::serve::encodePing(uint64_t Id) {
  return finishFrame(MsgType::Ping, Id, Writer{});
}

std::vector<uint8_t> wario::serve::encodePong(uint64_t Id) {
  return finishFrame(MsgType::Pong, Id, Writer{});
}

std::optional<Frame>
wario::serve::parseFrame(const std::vector<uint8_t> &Payload) {
  if (Payload.size() < 10)
    return std::nullopt;
  Reader R(Payload);
  uint8_t Version = R.u8();
  uint8_t Type = R.u8();
  uint64_t Id = R.u64();
  if (Version != ProtocolVersion)
    return std::nullopt;
  if (Type < uint8_t(MsgType::RunRequest) || Type > uint8_t(MsgType::Pong))
    return std::nullopt;
  Frame F;
  F.Type = MsgType(Type);
  F.Id = Id;
  F.Body.assign(Payload.begin() + 10, Payload.end());
  return F;
}

//===----------------------------------------------------------------------===//
// Socket I/O
//===----------------------------------------------------------------------===//

namespace {

enum class FullRead { Ok, CleanEof, MidEof, Error };

/// Reads exactly \p N bytes, distinguishing a clean close before the
/// first byte from a close mid-read.
FullRead readFull(int Fd, uint8_t *Buf, size_t N) {
  size_t Got = 0;
  while (Got < N) {
    ssize_t R = ::read(Fd, Buf + Got, N - Got);
    if (R == 0)
      return Got == 0 ? FullRead::CleanEof : FullRead::MidEof;
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return FullRead::Error;
    }
    Got += size_t(R);
  }
  return FullRead::Ok;
}

} // namespace

FrameReadStatus wario::serve::readFrame(int Fd,
                                        std::vector<uint8_t> &Payload) {
  uint8_t LenBuf[4];
  switch (readFull(Fd, LenBuf, 4)) {
  case FullRead::Ok: break;
  case FullRead::CleanEof: return FrameReadStatus::Eof;
  case FullRead::MidEof: return FrameReadStatus::Truncated;
  case FullRead::Error: return FrameReadStatus::IoError;
  }
  uint32_t Len = uint32_t(LenBuf[0]) | uint32_t(LenBuf[1]) << 8 |
                 uint32_t(LenBuf[2]) << 16 | uint32_t(LenBuf[3]) << 24;
  if (Len > MaxFrameBytes)
    return FrameReadStatus::TooBig;
  Payload.resize(Len);
  if (Len == 0)
    return FrameReadStatus::Ok;
  switch (readFull(Fd, Payload.data(), Len)) {
  case FullRead::Ok: return FrameReadStatus::Ok;
  case FullRead::CleanEof:
  case FullRead::MidEof: return FrameReadStatus::Truncated;
  case FullRead::Error: return FrameReadStatus::IoError;
  }
  return FrameReadStatus::IoError;
}

bool wario::serve::writeFrame(int Fd, const std::vector<uint8_t> &Frame) {
  size_t Sent = 0;
  while (Sent < Frame.size()) {
    ssize_t W = ::send(Fd, Frame.data() + Sent, Frame.size() - Sent,
                       MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Sent += size_t(W);
  }
  return true;
}
