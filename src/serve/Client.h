//===----------------------------------------------------------------------===//
///
/// \file
/// A synchronous client for the wario-served protocol: one connection,
/// one outstanding request at a time (the loadgen gets concurrency from
/// many clients, not pipelining). Each call blocks until the matching
/// reply arrives; an ErrorReply or an id mismatch surfaces as a failed
/// call with the server's message in \p Error.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_SERVE_CLIENT_H
#define WARIO_SERVE_CLIENT_H

#include "serve/Protocol.h"

namespace wario::serve {

class Client {
public:
  Client() = default;
  ~Client(); ///< Closes the connection if open.
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to a daemon's Unix-domain socket. False + \p Error if the
  /// path does not exist or nothing is listening.
  bool connect(const std::string &SocketPath, std::string *Error = nullptr);
  void close();
  bool connected() const { return Fd >= 0; }

  /// Round-trips a Ping. A false return means the connection is dead.
  bool ping(std::string *Error = nullptr);

  /// Runs one compile-and-simulate request; blocks for the reply.
  /// False + \p Error on transport failure or a protocol ErrorReply.
  /// A reply with Reply.Ok == false is still a *successful* call — the
  /// request was served; the pipeline or emulation failed server-side.
  bool run(const RunRequestMsg &M, RunReplyMsg &Reply,
           std::string *Error = nullptr);

  /// Fetches the daemon's cache/service counters.
  bool stats(StatsReplyMsg &Reply, std::string *Error = nullptr);

private:
  /// Sends \p Frame and reads frames until one matches \p Id with type
  /// \p Want (ErrorReply for the id also terminates, as a failure).
  bool transact(const std::vector<uint8_t> &Frame, uint64_t Id, MsgType Want,
                std::vector<uint8_t> &Body, std::string *Error);

  int Fd = -1;
  uint64_t NextId = 1;
};

} // namespace wario::serve

#endif // WARIO_SERVE_CLIENT_H
