#include "serve/Cache.h"

#include "workloads/Workloads.h"
#include "ir/Cloning.h"

#include <chrono>
#include <condition_variable>
#include <list>
#include <map>
#include <mutex>

using namespace wario;
using namespace wario::serve;

EmulatorOptions wario::serve::effectiveOptions(const PipelineOptions &PO,
                                               const EmulatorOptions &EOpts) {
  EmulatorOptions EO = EOpts;
  if (PO.Env == Environment::PlainC)
    EO.WarIsFatal = false;
  return EO;
}

namespace {

/// Times a scope and reports it to the optional stage hook.
class ScopeTimer {
public:
  ScopeTimer(CacheStage S, const std::function<void(CacheStage, double)> &Hook)
      : S(S), Hook(Hook), Start(std::chrono::steady_clock::now()) {}
  ~ScopeTimer() {
    if (Hook)
      Hook(S, seconds());
  }
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  }

private:
  CacheStage S;
  const std::function<void(CacheStage, double)> &Hook;
  std::chrono::steady_clock::time_point Start;
};

//===----------------------------------------------------------------------===//
// Artifacts and keys
//===----------------------------------------------------------------------===//

/// Frontend + front-half artifact: one per (tenant, workload). The module
/// is the pristine post-front-half IR; every pipeline configuration
/// clones it. On failure M is null and Error says why.
struct FrontArtifact {
  std::unique_ptr<Module> M;
  PipelineStats Stats;
  std::string Error;
};

/// Post-middle-end artifact: the module is read-only from here on — the
/// back end takes it const — so configurations differing only in
/// back-end flags share it directly.
struct MidArtifact {
  std::unique_ptr<Module> M;
  PipelineStats Stats;
  std::string Error;
};

struct FrontKey {
  std::string Tenant, Workload;
  auto operator<=>(const FrontKey &) const = default;
};

struct MidKey {
  std::string Tenant, Workload;
  MiddleEndConfig MC;
  auto operator<=>(const MidKey &) const = default;
};

struct CompileKey {
  std::string Tenant, Workload;
  PipelineOptions PO;
  auto operator<=>(const CompileKey &) const = default;
};

struct RunKey {
  std::string Tenant, Workload;
  PipelineOptions PO;
  EmulatorOptions EO;
  auto operator<=>(const RunKey &) const = default;
};

//===----------------------------------------------------------------------===//
// Approximate footprints
//===----------------------------------------------------------------------===//
// Byte accounting is approximate by design: the budget bounds the order
// of magnitude of residency, it is not an allocator audit. Each estimate
// covers the fields that actually dominate (arena slabs, instruction
// vectors, the final NVM image).

size_t moduleBytes(const Module *M) {
  return M ? M->getContext().bytesUsed() + 4096 : 256;
}

size_t mmoduleBytes(const MModule &MM) {
  size_t N = MM.InitImage.size() + 1024;
  for (const MFunction &F : MM.Functions)
    for (const MBasicBlock &BB : F.Blocks)
      N += BB.Insts.size() * sizeof(MInst) + sizeof(MBasicBlock);
  return N;
}

size_t emuResultBytes(const EmulatorResult &R) {
  size_t N = R.FinalMemory.size() + R.Output.size() * sizeof(int32_t) +
             R.RegionSizes.size() * sizeof(uint64_t) +
             R.Commits.size() * sizeof(EmulatorResult::CommitEvent) +
             R.StoreCycles.size() * sizeof(uint64_t) + R.Error.size() + 512;
  for (const std::string &S : R.WarReports)
    N += S.size();
  for (const std::string &S : R.Window)
    N += S.size();
  return N;
}

//===----------------------------------------------------------------------===//
// Slots and the LRU index
//===----------------------------------------------------------------------===//

/// Common LRU bookkeeping of a cache entry. Bytes/InLru/LruIt are
/// guarded by the cache mutex; the slot synchronization below is
/// per-slot.
struct EntryBase {
  unsigned Level = 0;
  size_t Bytes = 0;
  bool InLru = false;
  std::list<EntryBase *>::iterator LruIt;
  std::function<void()> EraseFromMap; ///< Drops the owning map's ref.
  virtual ~EntryBase() = default;
};

/// A cache slot: filled exactly once by the thread that claimed it;
/// other threads (and later lookups) block on Ready. The value is a
/// shared_ptr so eviction can never invalidate a holder.
template <typename V> struct Slot : EntryBase {
  std::mutex M;
  std::condition_variable CV;
  bool Ready = false;
  std::shared_ptr<const V> Val;

  void publish(std::shared_ptr<const V> Value) {
    {
      std::lock_guard<std::mutex> Lock(M);
      Val = std::move(Value);
      Ready = true;
    }
    CV.notify_all();
  }
  std::shared_ptr<const V> get() {
    std::unique_lock<std::mutex> Lock(M);
    CV.wait(Lock, [this] { return Ready; });
    return Val;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// The cache
//===----------------------------------------------------------------------===//

struct StagedCache::Impl {
  const CacheConfig Config;

  /// Guards the four maps, the LRU list, and the counters — not the
  /// slots' contents (each slot has its own mutex/CV).
  mutable std::mutex Mutex;
  std::map<FrontKey, std::shared_ptr<Slot<FrontArtifact>>> Front;
  std::map<MidKey, std::shared_ptr<Slot<MidArtifact>>> Mid;
  std::map<CompileKey, std::shared_ptr<Slot<CompileResult>>> Compile;
  std::map<RunKey, std::shared_ptr<Slot<RunResult>>> Run;
  std::list<EntryBase *> Lru; ///< Front = most recently used.
  CacheCounters Ctr;

  explicit Impl(CacheConfig C) : Config(std::move(C)) {
    Ctr.ByteBudget = Config.ByteBudget;
  }

  /// Claims or finds the slot for \p Key. Returns the slot (shared: it
  /// outlives eviction while any claimer holds it) and whether this
  /// caller must compute it.
  template <typename MapT, typename KeyT>
  auto claim(MapT &Map, const KeyT &Key, unsigned Level, bool *HitFlag)
      -> std::pair<typename MapT::mapped_type, bool> {
    typename MapT::mapped_type S;
    bool Mine = false;
    uint64_t Hit = 0;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      auto [It, Inserted] = Map.try_emplace(Key);
      if (Inserted) {
        using SlotT = typename MapT::mapped_type::element_type;
        It->second = std::make_shared<SlotT>();
        It->second->Level = Level;
        It->second->EraseFromMap = [&Map, Key] { Map.erase(Key); };
        ++Ctr.Misses[Level];
        Mine = true;
      } else {
        ++Ctr.Hits[Level];
        Hit = 1;
        if (HitFlag)
          *HitFlag = true;
        if (It->second->InLru) // Unpublished slots are not in the LRU yet.
          Lru.splice(Lru.begin(), Lru, It->second->LruIt);
      }
      S = It->second;
    }
    if (Hit && Config.OnHit)
      Config.OnHit(CacheLevel(Level), Hit);
    return {std::move(S), Mine};
  }

  /// Books a freshly published entry into the LRU and the byte total,
  /// then evicts from the cold end until the budget holds again. The
  /// most-recently-used entry (the one just booked) is never evicted.
  void account(EntryBase &E, size_t Bytes) {
    std::lock_guard<std::mutex> Lock(Mutex);
    E.Bytes = Bytes;
    Lru.push_front(&E);
    E.LruIt = Lru.begin();
    E.InLru = true;
    Ctr.BytesUsed += Bytes;
    ++Ctr.Entries;
    while (Config.ByteBudget && Ctr.BytesUsed > Config.ByteBudget &&
           Lru.size() > 1) {
      EntryBase *Cold = Lru.back();
      Lru.pop_back();
      Cold->InLru = false;
      Ctr.BytesUsed -= Cold->Bytes;
      Ctr.BytesEvicted += Cold->Bytes;
      ++Ctr.Evictions[Cold->Level];
      --Ctr.Entries;
      Cold->EraseFromMap(); // May destroy *Cold: last use of the pointer.
    }
  }

  std::shared_ptr<const FrontArtifact> frontFor(const std::string &Tenant,
                                                const std::string &Name,
                                                Provenance *Prov) {
    auto [S, Mine] = claim(Front, FrontKey{Tenant, Name}, LevelFront,
                           Prov ? &Prov->FrontHit : nullptr);
    if (Mine) {
      auto A = std::make_shared<FrontArtifact>();
      {
        ScopeTimer T(CacheStage::Frontend, Config.OnStage);
        if (const Workload *W = findWorkload(Name)) {
          DiagnosticEngine Diags;
          A->M = buildWorkloadIR(*W, Diags);
          if (!A->M)
            A->Error = "frontend failure on " + Name + ":\n" +
                       Diags.formatAll();
        } else {
          A->Error = "unknown workload '" + Name + "'";
        }
        A->Stats.FrontendSeconds = T.seconds();
      }
      if (A->M) {
        runFrontHalf(*A->M, A->Stats);
        if (Config.OnStage)
          Config.OnStage(CacheStage::FrontHalf, A->Stats.FrontHalfSeconds);
      }
      size_t Bytes = moduleBytes(A->M.get()) + A->Error.size();
      S->publish(std::move(A));
      account(*S, Bytes);
    }
    return S->get();
  }

  std::shared_ptr<const MidArtifact> midFor(const CacheRequest &R,
                                            Provenance *Prov) {
    auto [S, Mine] = claim(Mid,
                           MidKey{R.Tenant, R.Workload,
                                  middleEndConfig(R.PO)},
                           LevelMid, Prov ? &Prov->MidHit : nullptr);
    if (Mine) {
      std::shared_ptr<const FrontArtifact> F =
          frontFor(R.Tenant, R.Workload, Prov);
      auto A = std::make_shared<MidArtifact>();
      A->Error = F->Error;
      if (F->M) {
        {
          ScopeTimer T(CacheStage::Clone, Config.OnStage);
          A->M = cloneModule(*F->M);
        }
        A->Stats = F->Stats;
        runMiddleEnd(*A->M, R.PO, A->Stats);
        if (Config.OnStage)
          Config.OnStage(CacheStage::MiddleEnd, A->Stats.MiddleEndSeconds);
        // Warm the lazy CFG caches now: the back end reads this module
        // const, possibly from several threads at once, and
        // predecessors() would otherwise mutate under them.
        for (const auto &Fn : A->M->functions())
          Fn->ensureCFG();
      }
      size_t Bytes = moduleBytes(A->M.get()) + A->Error.size();
      S->publish(std::move(A));
      account(*S, Bytes);
    }
    return S->get();
  }

  std::shared_ptr<const CompileResult> compileFor(const CacheRequest &R,
                                                  Provenance *Prov) {
    auto [S, Mine] = claim(Compile, CompileKey{R.Tenant, R.Workload, R.PO},
                           LevelCompile, Prov ? &Prov->CompileHit : nullptr);
    if (Mine) {
      std::shared_ptr<const MidArtifact> M = midFor(R, Prov);
      auto A = std::make_shared<CompileResult>();
      A->Error = M->Error;
      if (M->M) {
        A->Pipeline = M->Stats;
        A->MM = runBackendStage(*M->M, R.PO, A->Pipeline);
        if (Config.OnStage)
          Config.OnStage(CacheStage::Backend, A->Pipeline.BackendSeconds);
        A->TextBytes = A->MM.textSizeBytes();
      }
      size_t Bytes = mmoduleBytes(A->MM) + A->Error.size();
      S->publish(std::move(A));
      account(*S, Bytes);
    }
    return S->get();
  }

  std::shared_ptr<const RunResult> runFor(const CacheRequest &R,
                                          Provenance *Prov) {
    auto [S, Mine] = claim(Run, RunKey{R.Tenant, R.Workload, R.PO, R.EO},
                           LevelRun, Prov ? &Prov->RunHit : nullptr);
    if (Mine) {
      std::shared_ptr<const CompileResult> CR = compileFor(R, Prov);
      auto Res = std::make_shared<RunResult>();
      Res->Pipeline = CR->Pipeline;
      Res->TextBytes = CR->TextBytes;
      Res->Error = CR->Error;
      if (Res->Error.empty()) {
        ScopeTimer T(CacheStage::Emulate, Config.OnStage);
        EmulatorOptions EO = effectiveOptions(R.PO, R.EO);
        Res->Emu = Config.Emulate ? Config.Emulate(CR, R, EO)
                                  : emulate(CR->MM, EO);
        Res->Pipeline.EmulateSeconds = T.seconds();
        if (!Res->Emu.Ok)
          Res->Error = "emulation failure on " + R.Workload + " @ " +
                       environmentName(R.PO.Env) + ": " + Res->Emu.Error;
      } else {
        Res->Emu.Ok = false;
        Res->Emu.Error = Res->Error;
      }
      size_t Bytes = emuResultBytes(Res->Emu) + sizeof(RunResult);
      S->publish(std::move(Res));
      account(*S, Bytes);
    }
    return S->get();
  }
};

StagedCache::StagedCache(CacheConfig Config)
    : I(std::make_unique<Impl>(std::move(Config))) {}
StagedCache::~StagedCache() = default;

std::shared_ptr<const RunResult> StagedCache::run(const CacheRequest &R,
                                                  Provenance *Prov) {
  if (Prov)
    *Prov = Provenance{}; // Per-request provenance: start from no-hits.
  return I->runFor(R, Prov);
}

std::shared_ptr<const CompileResult>
StagedCache::compileCell(const CacheRequest &R, Provenance *Prov) {
  if (Prov)
    *Prov = Provenance{};
  return I->compileFor(R, Prov);
}

CacheCounters StagedCache::counters() const {
  std::lock_guard<std::mutex> Lock(I->Mutex);
  return I->Ctr;
}
