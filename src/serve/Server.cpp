#include "serve/Server.h"

#include "support/ThreadPool.h"

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <list>
#include <mutex>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace wario;
using namespace wario::serve;

namespace {

/// One accepted connection. The reader thread owns Fd's read side; any
/// thread may reply, serialized by WriteMutex (replies are written
/// atomically per frame, so pipelined responses never interleave).
/// Pending counts pool-scheduled requests not yet replied to; the reader
/// drains it to zero before closing the fd, so no task ever writes to a
/// closed (and possibly reused) descriptor.
struct Connection {
  int Fd = -1;
  std::mutex WriteMutex;
  std::thread Reader;
  std::mutex PendingMutex;
  std::condition_variable PendingCV;
  unsigned Pending = 0;

  void beginRequest() {
    std::lock_guard<std::mutex> Lock(PendingMutex);
    ++Pending;
  }
  void endRequest() {
    {
      std::lock_guard<std::mutex> Lock(PendingMutex);
      --Pending;
    }
    PendingCV.notify_all();
  }
  void drainRequests() {
    std::unique_lock<std::mutex> Lock(PendingMutex);
    PendingCV.wait(Lock, [this] { return Pending == 0; });
  }
};

} // namespace

struct Server::Impl {
  const ServerOptions Opts;
  StagedCache Cache;
  ThreadPool Pool;
  const bool Inline; ///< One-job pools run tasks only at wait(): go inline.

  int ListenFd = -1;
  std::thread Acceptor;
  std::atomic<bool> Stopping{false};
  bool Started = false;

  std::mutex ConnMutex;
  std::list<std::shared_ptr<Connection>> Conns;
  /// Thread handles of readers that already exited (a reader cannot
  /// destroy its own joinable std::thread); reaped on the next accept
  /// and at stop().
  std::list<std::thread> Graveyard;
  std::condition_variable ConnsEmptyCV; ///< Signaled as readers retire.

  std::atomic<uint64_t> RequestsServed{0};
  std::atomic<uint64_t> ConnectionsAccepted{0};

  explicit Impl(ServerOptions O)
      : Opts(std::move(O)), Cache(CacheConfig{Opts.CacheBytes, {}, {}, {}}),
        Pool(Opts.Jobs), Inline(Pool.jobCount() <= 1) {}

  bool start(std::string *Error) {
    auto Fail = [&](const std::string &Msg) {
      if (Error)
        *Error = Msg + ": " + std::strerror(errno);
      if (ListenFd >= 0) {
        ::close(ListenFd);
        ListenFd = -1;
      }
      return false;
    };
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    if (Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
      if (Error)
        *Error = "socket path too long: " + Opts.SocketPath;
      return false;
    }
    std::strncpy(Addr.sun_path, Opts.SocketPath.c_str(),
                 sizeof(Addr.sun_path) - 1);
    ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ListenFd < 0)
      return Fail("socket");
    ::unlink(Opts.SocketPath.c_str()); // Stale path from a dead daemon.
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
               sizeof(Addr)) < 0)
      return Fail("bind " + Opts.SocketPath);
    if (::listen(ListenFd, 64) < 0)
      return Fail("listen");
    Started = true;
    Acceptor = std::thread([this] { acceptLoop(); });
    return true;
  }

  void acceptLoop() {
    for (;;) {
      int Fd = ::accept(ListenFd, nullptr, nullptr);
      if (Fd < 0) {
        if (errno == EINTR)
          continue;
        return; // Listen socket closed: shutting down.
      }
      if (Stopping.load()) {
        ::close(Fd);
        return;
      }
      ConnectionsAccepted.fetch_add(1);
      auto C = std::make_shared<Connection>();
      C->Fd = Fd;
      std::list<std::thread> Dead;
      {
        std::lock_guard<std::mutex> Lock(ConnMutex);
        Conns.push_back(C);
        Dead.splice(Dead.begin(), Graveyard);
        // Spawn under the lock: the reader's retirement block also takes
        // ConnMutex, so C->Reader is always assigned before the reader
        // can move it to the graveyard (a short-lived connection could
        // otherwise retire an empty handle and leak the real one).
        C->Reader = std::thread([this, C] { serveConnection(C); });
      }
      for (std::thread &T : Dead) // Reap finished readers off-lock.
        T.join();
    }
  }

  void reply(const std::shared_ptr<Connection> &C,
             const std::vector<uint8_t> &Frame) {
    std::lock_guard<std::mutex> Lock(C->WriteMutex);
    if (C->Fd >= 0)
      writeFrame(C->Fd, Frame); // Failure: reader sees the close, exits.
  }

  void handleRun(const std::shared_ptr<Connection> &C, uint64_t Id,
                 const RunRequestMsg &M) {
    Provenance Prov;
    std::shared_ptr<const RunResult> R =
        Cache.run({M.Tenant, M.Workload, M.PO, M.EO}, &Prov);
    // Count before replying: a client that has our reply in hand must
    // see itself reflected in an immediately-following stats request.
    RequestsServed.fetch_add(1);
    reply(C, encodeRunReply(Id, makeRunReply(*R, Prov)));
  }

  StatsReplyMsg statsNow() {
    StatsReplyMsg S;
    S.Counters = Cache.counters();
    S.RequestsServed = RequestsServed.load();
    S.ConnectionsAccepted = ConnectionsAccepted.load();
    return S;
  }

  void dispatch(const std::shared_ptr<Connection> &C, Frame F) {
    switch (F.Type) {
    case MsgType::Ping:
      reply(C, encodePong(F.Id));
      return;
    case MsgType::StatsRequest:
      reply(C, encodeStatsReply(F.Id, statsNow()));
      return;
    case MsgType::RunRequest: {
      std::optional<RunRequestMsg> M = decodeRunRequest(F.Body);
      if (!M) {
        reply(C, encodeErrorReply(F.Id, "undecodable RunRequest body"));
        return;
      }
      // The compile+emulate runs on the shared pool so one connection's
      // heavy misses don't block its own (or anyone's) later cache hits.
      if (Inline) {
        handleRun(C, F.Id, *M);
      } else {
        C->beginRequest();
        Pool.submit([this, C, Id = F.Id, Msg = std::move(*M)] {
          handleRun(C, Id, Msg);
          C->endRequest();
        });
      }
      return;
    }
    default:
      // A syntactically valid frame of a type only servers send.
      reply(C, encodeErrorReply(F.Id, "unexpected message type"));
      return;
    }
  }

  void serveConnection(std::shared_ptr<Connection> C) {
    std::vector<uint8_t> Payload;
    for (;;) {
      FrameReadStatus St = readFrame(C->Fd, Payload);
      if (St == FrameReadStatus::Ok) {
        if (std::optional<Frame> F = parseFrame(Payload)) {
          dispatch(C, std::move(*F));
          continue;
        }
        reply(C, encodeErrorReply(0, "malformed frame header"));
        break; // No resync point after corrupt framing.
      }
      if (St == FrameReadStatus::TooBig) {
        reply(C, encodeErrorReply(0, "frame exceeds 4 MiB limit"));
        break;
      }
      break; // Eof / Truncated / IoError: peer is gone.
    }
    // Wait for this connection's scheduled requests to finish replying,
    // then retire: close the fd (under the write mutex, so stop() never
    // shutdowns a recycled descriptor) and move the thread handle to the
    // graveyard (a thread cannot join itself).
    C->drainRequests();
    {
      std::lock_guard<std::mutex> Lock(C->WriteMutex);
      ::close(C->Fd);
      C->Fd = -1;
    }
    {
      std::lock_guard<std::mutex> Lock(ConnMutex);
      for (auto It = Conns.begin(); It != Conns.end(); ++It)
        if (It->get() == C.get()) {
          Graveyard.push_back(std::move(C->Reader));
          Conns.erase(It);
          break;
        }
    }
    ConnsEmptyCV.notify_all();
  }

  void stop() {
    if (!Started)
      return;
    if (Stopping.exchange(true))
      return;
    // Close the listen socket: unblocks accept(), no new connections.
    ::shutdown(ListenFd, SHUT_RDWR);
    ::close(ListenFd);
    if (Acceptor.joinable())
      Acceptor.join();
    // Sever every live connection's socket so its reader drains out and
    // retires itself; then wait for the list to empty and reap the
    // handles. Joining via C->Reader directly would race the reader
    // moving its own handle into the graveyard.
    {
      std::lock_guard<std::mutex> Lock(ConnMutex);
      for (const std::shared_ptr<Connection> &C : Conns) {
        std::lock_guard<std::mutex> WLock(C->WriteMutex);
        if (C->Fd >= 0)
          ::shutdown(C->Fd, SHUT_RDWR);
      }
    }
    std::list<std::thread> Dead;
    {
      std::unique_lock<std::mutex> Lock(ConnMutex);
      ConnsEmptyCV.wait(Lock, [this] { return Conns.empty(); });
      Dead.splice(Dead.begin(), Graveyard);
    }
    for (std::thread &T : Dead)
      T.join();
    Pool.wait(); // Belt: readers already drained their own requests.
    ::unlink(Opts.SocketPath.c_str());
    Started = false;
  }
};

Server::Server(ServerOptions Opts) : I(std::make_unique<Impl>(std::move(Opts))) {}
Server::~Server() { stop(); }

bool Server::start(std::string *Error) { return I->start(Error); }
void Server::stop() { I->stop(); }
const std::string &Server::socketPath() const { return I->Opts.SocketPath; }
StatsReplyMsg Server::stats() const { return I->statsNow(); }
