//===----------------------------------------------------------------------===//
///
/// \file
/// The framed wire protocol between wario-served and its clients
/// (tools/wario_served.cpp, tools/wario_loadgen.cpp, src/serve/Client.h).
///
/// Transport: a Unix-domain stream socket carrying length-prefixed
/// frames. Each frame is
///
///   [u32 payload length (LE)] [payload]
///   payload = [u8 version] [u8 MsgType] [u64 request id] [body]
///
/// All integers are little-endian; strings are a u32 length followed by
/// raw bytes; vectors are a u32 element count followed by the elements;
/// doubles travel as their IEEE-754 bit pattern in a u64. The payload
/// length excludes the 4-byte prefix and is capped at MaxFrameBytes —
/// an oversized length is a protocol error, not an allocation request.
///
/// Request ids are chosen by the client and echoed verbatim in the
/// response, so clients may pipeline requests over one connection; the
/// server replies in completion order, not arrival order.
///
/// Error handling contract: a frame that decodes as a valid header but
/// an undecodable body earns an ErrorReply with the echoed id and the
/// connection stays usable; a frame that violates the framing itself
/// (bad version, oversized or truncated payload) earns a best-effort
/// ErrorReply with id 0 and the connection is closed — after corrupt
/// framing there is no resynchronization point.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_SERVE_PROTOCOL_H
#define WARIO_SERVE_PROTOCOL_H

#include "serve/Cache.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace wario::serve {

/// Version 2 added the checkpoint-strategy axis to RunRequestMsg: a
/// Strat byte after Env, and PFlags bits 5/6 carrying DiffFullRollback
/// and SpecLogWars. Peers reject any other version outright (no
/// negotiation — both ends ship from this tree).
inline constexpr uint8_t ProtocolVersion = 2;

/// Hard ceiling on one frame's payload. Large artifacts (final memory
/// images) never travel: replies carry hashes instead.
inline constexpr uint32_t MaxFrameBytes = 4u << 20;

enum class MsgType : uint8_t {
  RunRequest = 1, ///< body: RunRequestMsg
  RunReply = 2,   ///< body: RunReplyMsg
  StatsRequest = 3, ///< empty body
  StatsReply = 4,   ///< body: StatsReplyMsg
  ErrorReply = 5,   ///< body: one string (protocol-level failure)
  Ping = 6,         ///< empty body
  Pong = 7,         ///< empty body
};

/// One compile-and-simulate request: a tenant's workload under a full
/// pipeline + emulator configuration (the power schedule rides inside
/// EmulatorOptions).
struct RunRequestMsg {
  std::string Tenant;
  std::string Workload;
  PipelineOptions PO;
  EmulatorOptions EO;
  bool operator==(const RunRequestMsg &) const = default;
};

/// Everything a RunRequest produces, flattened for the wire. Bulk fields
/// (final memory image, per-region sizes) are summarized as FNV-1a
/// hashes — byte-identity checks work, megabyte payloads don't travel.
struct RunReplyMsg {
  bool Ok = false;        ///< False on any pipeline or emulation failure.
  std::string Error;      ///< Empty iff Ok.
  int32_t ReturnValue = 0;
  std::vector<int32_t> Output;
  uint64_t TotalCycles = 0;
  uint64_t InstructionsExecuted = 0;
  uint64_t CheckpointsExecuted = 0;
  uint64_t CauseMiddleEndWar = 0;
  uint64_t CauseBackendSpill = 0;
  uint64_t CauseFunctionEntry = 0;
  uint64_t CauseFunctionExit = 0;
  uint32_t PowerFailures = 0;
  uint64_t InterruptsTaken = 0;
  uint64_t WarViolations = 0;
  uint32_t TextBytes = 0;
  uint64_t MemHash = 0;      ///< FNV-1a over EmulatorResult::FinalMemory.
  uint64_t RegionCount = 0;  ///< Entries in RegionSizes.
  uint64_t RegionHash = 0;   ///< FNV-1a over RegionSizes as LE u64 bytes.
  /// Wall-clock seconds this request actually spent computing each stage
  /// (zero for stages answered from cache).
  double FrontendSeconds = 0;
  double FrontHalfSeconds = 0;
  double MiddleEndSeconds = 0;
  double BackendSeconds = 0;
  double EmulateSeconds = 0;
  /// Which cache levels answered (Provenance::bits form).
  uint8_t ProvenanceBits = 0;
  bool operator==(const RunReplyMsg &) const = default;
};

/// Cache and service accounting, answering a StatsRequest.
struct StatsReplyMsg {
  CacheCounters Counters;
  uint64_t RequestsServed = 0;
  uint64_t ConnectionsAccepted = 0;
  bool operator==(const StatsReplyMsg &) const = default;
};

/// A parsed frame header + raw body (everything after the request id).
struct Frame {
  MsgType Type = MsgType::ErrorReply;
  uint64_t Id = 0;
  std::vector<uint8_t> Body;
};

/// FNV-1a 64-bit over a byte range (the hash behind MemHash/RegionHash;
/// also what the soak test's cold oracle recomputes).
uint64_t fnv1a(const uint8_t *Data, size_t Size);
uint64_t fnv1aU64s(const std::vector<uint64_t> &Vals);

/// Builds a RunReplyMsg from a cache result (hashing the bulk fields).
RunReplyMsg makeRunReply(const RunResult &R, Provenance Prov);

//===----------------------------------------------------------------------===//
// Encoding (always succeeds; returns a complete frame incl. the prefix)
//===----------------------------------------------------------------------===//

std::vector<uint8_t> encodeRunRequest(uint64_t Id, const RunRequestMsg &M);
std::vector<uint8_t> encodeRunReply(uint64_t Id, const RunReplyMsg &M);
std::vector<uint8_t> encodeStatsRequest(uint64_t Id);
std::vector<uint8_t> encodeStatsReply(uint64_t Id, const StatsReplyMsg &M);
std::vector<uint8_t> encodeErrorReply(uint64_t Id, const std::string &Msg);
std::vector<uint8_t> encodePing(uint64_t Id);
std::vector<uint8_t> encodePong(uint64_t Id);

//===----------------------------------------------------------------------===//
// Decoding (every reader is bounds-checked; failure returns nullopt and
// never reads past the buffer — malformed input must not crash a daemon)
//===----------------------------------------------------------------------===//

/// Parses a payload (frame minus the length prefix) into header + body.
/// Rejects unknown versions, unknown message types, and short payloads.
std::optional<Frame> parseFrame(const std::vector<uint8_t> &Payload);

std::optional<RunRequestMsg> decodeRunRequest(const std::vector<uint8_t> &Body);
std::optional<RunReplyMsg> decodeRunReply(const std::vector<uint8_t> &Body);
std::optional<StatsReplyMsg> decodeStatsReply(const std::vector<uint8_t> &Body);
std::optional<std::string> decodeErrorReply(const std::vector<uint8_t> &Body);

//===----------------------------------------------------------------------===//
// Blocking frame I/O over a connected socket
//===----------------------------------------------------------------------===//

enum class FrameReadStatus {
  Ok,        ///< Payload filled with one complete frame payload.
  Eof,       ///< Clean close at a frame boundary.
  TooBig,    ///< Length prefix exceeded MaxFrameBytes.
  Truncated, ///< Peer closed mid-frame.
  IoError,   ///< read() failed.
};

/// Reads one length-prefixed frame payload from \p Fd.
FrameReadStatus readFrame(int Fd, std::vector<uint8_t> &Payload);

/// Writes one complete frame (as produced by the encoders); loops until
/// everything is sent. Returns false on any write error (the caller
/// closes the connection; SIGPIPE is suppressed).
bool writeFrame(int Fd, const std::vector<uint8_t> &Frame);

} // namespace wario::serve

#endif // WARIO_SERVE_PROTOCOL_H
