//===----------------------------------------------------------------------===//
///
/// \file
/// Lexer for the C subset accepted by the WARio front end (Section 3.1.1:
/// "WARio takes the C code of a project ... and converts it to IR").
///
/// The subset covers what the evaluation benchmarks need: the integer
/// type family, pointers, multi-dimensional arrays, all integer
/// operators, full statement-level control flow, and functions. No
/// preprocessor, structs, floats, or strings.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_FRONTEND_LEXER_H
#define WARIO_FRONTEND_LEXER_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace wario {

enum class TokKind : uint8_t {
  End,
  Identifier,
  IntLiteral,
  // Keywords.
  KwVoid, KwChar, KwShort, KwInt, KwLong, KwUnsigned, KwSigned,
  KwConst, KwStatic, KwVolatile,
  KwIf, KwElse, KwWhile, KwFor, KwDo, KwBreak, KwContinue, KwReturn,
  KwSizeof,
  // Punctuation and operators.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Semicolon, Comma,
  Plus, Minus, Star, Slash, Percent,
  Amp, Pipe, Caret, Tilde, Bang,
  Shl, Shr,
  Lt, Gt, Le, Ge, EqEq, NotEq,
  AmpAmp, PipePipe,
  Question, Colon,
  Assign,
  PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign,
  ShlAssign, ShrAssign, AmpAssign, PipeAssign, CaretAssign,
  PlusPlus, MinusMinus,
};

const char *tokKindName(TokKind K);

struct Token {
  TokKind Kind = TokKind::End;
  SourceLoc Loc;
  std::string Text;   ///< Identifier spelling.
  uint64_t IntValue = 0;
};

/// Tokenizes \p Source. Errors (bad characters, unterminated comments)
/// are reported to \p Diags; lexing continues where possible.
std::vector<Token> tokenize(const std::string &Source,
                            DiagnosticEngine &Diags);

} // namespace wario

#endif // WARIO_FRONTEND_LEXER_H
