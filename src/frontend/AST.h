//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax tree and type table for the C subset front end.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_FRONTEND_AST_H
#define WARIO_FRONTEND_AST_H

#include "frontend/Lexer.h"

#include <cassert>
#include <memory>

namespace wario {

/// A type in the C subset: void, sized integers, pointers, and constant-
/// length arrays. Types are interned in a TypeTable and referenced by id.
struct CType {
  enum class Kind : uint8_t { Void, Int, Ptr, Array };
  Kind K = Kind::Void;
  unsigned Bits = 0;  ///< 8, 16 or 32 for Int.
  bool Signed = true; ///< For Int.
  int Elem = -1;      ///< Element/pointee type id for Ptr/Array.
  uint32_t ArrayLen = 0;

  bool operator==(const CType &O) const {
    return K == O.K && Bits == O.Bits && Signed == O.Signed &&
           Elem == O.Elem && ArrayLen == O.ArrayLen;
  }
};

/// Interns types and answers layout queries.
class TypeTable {
public:
  TypeTable() {
    // Fixed well-known ids.
    VoidId = intern({CType::Kind::Void, 0, true, -1, 0});
    IntId = intern({CType::Kind::Int, 32, true, -1, 0});
    UIntId = intern({CType::Kind::Int, 32, false, -1, 0});
  }

  int intern(const CType &T) {
    for (unsigned I = 0; I != Types.size(); ++I)
      if (Types[I] == T)
        return int(I);
    Types.push_back(T);
    return int(Types.size()) - 1;
  }

  const CType &get(int Id) const {
    assert(Id >= 0 && Id < int(Types.size()) && "bad type id");
    return Types[unsigned(Id)];
  }

  int voidTy() const { return VoidId; }
  int intTy() const { return IntId; }
  int uintTy() const { return UIntId; }
  int makeInt(unsigned Bits, bool Signed) {
    return intern({CType::Kind::Int, Bits, Signed, -1, 0});
  }
  int ptrTo(int Elem) {
    return intern({CType::Kind::Ptr, 0, true, Elem, 0});
  }
  int arrayOf(int Elem, uint32_t Len) {
    return intern({CType::Kind::Array, 0, true, Elem, Len});
  }

  uint32_t sizeOf(int Id) const {
    const CType &T = get(Id);
    switch (T.K) {
    case CType::Kind::Void: return 0;
    case CType::Kind::Int: return T.Bits / 8;
    case CType::Kind::Ptr: return 4;
    case CType::Kind::Array: return T.ArrayLen * sizeOf(T.Elem);
    }
    return 0;
  }

  bool isInt(int Id) const { return get(Id).K == CType::Kind::Int; }
  bool isPtr(int Id) const { return get(Id).K == CType::Kind::Ptr; }
  bool isArray(int Id) const { return get(Id).K == CType::Kind::Array; }
  bool isVoid(int Id) const { return get(Id).K == CType::Kind::Void; }

  /// Array-to-pointer decay; other types unchanged.
  int decay(int Id) {
    const CType &T = get(Id);
    if (T.K == CType::Kind::Array)
      return ptrTo(T.Elem);
    return Id;
  }

  std::string name(int Id) const {
    const CType &T = get(Id);
    switch (T.K) {
    case CType::Kind::Void: return "void";
    case CType::Kind::Int:
      return std::string(T.Signed ? "" : "unsigned ") +
             (T.Bits == 8 ? "char" : T.Bits == 16 ? "short" : "int");
    case CType::Kind::Ptr: return name(T.Elem) + "*";
    case CType::Kind::Array:
      return name(T.Elem) + "[" + std::to_string(T.ArrayLen) + "]";
    }
    return "?";
  }

private:
  std::vector<CType> Types;
  int VoidId, IntId, UIntId;
};

/// An expression node.
struct Expr {
  enum class Kind : uint8_t {
    IntLit,     ///< IntValue.
    Ident,      ///< Name.
    Unary,      ///< Op in {-, ~, !, *, &}; Kids[0].
    Binary,     ///< Arithmetic/comparison/logical; Kids[0], Kids[1].
    Assign,     ///< Kids[0] = Kids[1].
    CompoundAssign, ///< Kids[0] Op= Kids[1].
    IncDec,     ///< Op in {++, --}; IsPrefix; Kids[0].
    Call,       ///< Name(Kids...).
    Index,      ///< Kids[0][Kids[1]].
    Ternary,    ///< Kids[0] ? Kids[1] : Kids[2].
    Cast,       ///< (TypeId)Kids[0].
    SizeofType, ///< sizeof(TypeId).
    Comma,      ///< Kids[0], Kids[1].
  };
  Kind K;
  SourceLoc Loc;
  uint64_t IntValue = 0;
  std::string Name;
  TokKind Op = TokKind::End;
  bool IsPrefix = false;
  int TypeId = -1; ///< For Cast/SizeofType.
  std::vector<std::unique_ptr<Expr>> Kids;
};

/// A statement node.
struct Stmt {
  enum class Kind : uint8_t {
    Block,    ///< Body.
    Decl,     ///< Name : TypeId, optional E (scalar init) or InitList.
    ExprStmt, ///< E.
    If,       ///< E, S1 (then), S2 (optional else).
    While,    ///< E, S1.
    DoWhile,  ///< S1, E.
    For,      ///< S1 (init, may be null), E (cond, may be null),
              ///< E2 (step, may be null), S2 (body).
    Break,
    Continue,
    Return,   ///< Optional E.
    Empty,
  };
  Kind K;
  SourceLoc Loc;
  std::string Name;
  int TypeId = -1;
  std::unique_ptr<Expr> E, E2;
  std::unique_ptr<Stmt> S1, S2;
  std::vector<std::unique_ptr<Stmt>> Body;
  std::vector<std::unique_ptr<Expr>> InitList;
};

/// A module-level variable with a constant (flattened) initializer.
struct GlobalDecl {
  std::string Name;
  int TypeId;
  std::vector<int64_t> InitValues; ///< Flattened; empty => zero-init.
  SourceLoc Loc;
};

struct ParamDecl {
  std::string Name;
  int TypeId;
};

struct FunctionDecl {
  std::string Name;
  int RetTypeId;
  std::vector<ParamDecl> Params;
  std::unique_ptr<Stmt> Body; ///< Null for forward declarations.
  SourceLoc Loc;
};

/// One parsed source file (the subset has no preprocessor; multi-file
/// projects concatenate sources, mirroring the paper's whole-program IR).
struct TranslationUnit {
  TypeTable Types;
  std::vector<GlobalDecl> Globals;
  std::vector<FunctionDecl> Functions;
};

} // namespace wario

#endif // WARIO_FRONTEND_AST_H
