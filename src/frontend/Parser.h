//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the C subset.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_FRONTEND_PARSER_H
#define WARIO_FRONTEND_PARSER_H

#include "frontend/AST.h"

namespace wario {

/// Parses \p Source into a TranslationUnit. On error, diagnostics are
/// reported and the result may be partial; callers must check
/// \p Diags.hasErrors().
std::unique_ptr<TranslationUnit> parseC(const std::string &Source,
                                        DiagnosticEngine &Diags);

} // namespace wario

#endif // WARIO_FRONTEND_PARSER_H
