//===----------------------------------------------------------------------===//
///
/// \file
/// IR generation from the C-subset AST.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_FRONTEND_CODEGEN_H
#define WARIO_FRONTEND_CODEGEN_H

#include "frontend/AST.h"
#include "ir/Module.h"

namespace wario {

/// Lowers a translation unit to an IR module. Returns null after
/// reporting diagnostics on semantic errors.
std::unique_ptr<Module> generateIR(TranslationUnit &TU,
                                   const std::string &ModuleName,
                                   DiagnosticEngine &Diags);

} // namespace wario

#endif // WARIO_FRONTEND_CODEGEN_H
