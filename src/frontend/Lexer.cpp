#include "frontend/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace wario;

const char *wario::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::End: return "end of input";
  case TokKind::Identifier: return "identifier";
  case TokKind::IntLiteral: return "integer literal";
  case TokKind::KwVoid: return "'void'";
  case TokKind::KwChar: return "'char'";
  case TokKind::KwShort: return "'short'";
  case TokKind::KwInt: return "'int'";
  case TokKind::KwLong: return "'long'";
  case TokKind::KwUnsigned: return "'unsigned'";
  case TokKind::KwSigned: return "'signed'";
  case TokKind::KwConst: return "'const'";
  case TokKind::KwStatic: return "'static'";
  case TokKind::KwVolatile: return "'volatile'";
  case TokKind::KwIf: return "'if'";
  case TokKind::KwElse: return "'else'";
  case TokKind::KwWhile: return "'while'";
  case TokKind::KwFor: return "'for'";
  case TokKind::KwDo: return "'do'";
  case TokKind::KwBreak: return "'break'";
  case TokKind::KwContinue: return "'continue'";
  case TokKind::KwReturn: return "'return'";
  case TokKind::KwSizeof: return "'sizeof'";
  case TokKind::LParen: return "'('";
  case TokKind::RParen: return "')'";
  case TokKind::LBrace: return "'{'";
  case TokKind::RBrace: return "'}'";
  case TokKind::LBracket: return "'['";
  case TokKind::RBracket: return "']'";
  case TokKind::Semicolon: return "';'";
  case TokKind::Comma: return "','";
  case TokKind::Plus: return "'+'";
  case TokKind::Minus: return "'-'";
  case TokKind::Star: return "'*'";
  case TokKind::Slash: return "'/'";
  case TokKind::Percent: return "'%'";
  case TokKind::Amp: return "'&'";
  case TokKind::Pipe: return "'|'";
  case TokKind::Caret: return "'^'";
  case TokKind::Tilde: return "'~'";
  case TokKind::Bang: return "'!'";
  case TokKind::Shl: return "'<<'";
  case TokKind::Shr: return "'>>'";
  case TokKind::Lt: return "'<'";
  case TokKind::Gt: return "'>'";
  case TokKind::Le: return "'<='";
  case TokKind::Ge: return "'>='";
  case TokKind::EqEq: return "'=='";
  case TokKind::NotEq: return "'!='";
  case TokKind::AmpAmp: return "'&&'";
  case TokKind::PipePipe: return "'||'";
  case TokKind::Question: return "'?'";
  case TokKind::Colon: return "':'";
  case TokKind::Assign: return "'='";
  case TokKind::PlusAssign: return "'+='";
  case TokKind::MinusAssign: return "'-='";
  case TokKind::StarAssign: return "'*='";
  case TokKind::SlashAssign: return "'/='";
  case TokKind::PercentAssign: return "'%='";
  case TokKind::ShlAssign: return "'<<='";
  case TokKind::ShrAssign: return "'>>='";
  case TokKind::AmpAssign: return "'&='";
  case TokKind::PipeAssign: return "'|='";
  case TokKind::CaretAssign: return "'^='";
  case TokKind::PlusPlus: return "'++'";
  case TokKind::MinusMinus: return "'--'";
  }
  return "<bad token>";
}

namespace {

const std::unordered_map<std::string, TokKind> &keywords() {
  static const std::unordered_map<std::string, TokKind> Map = {
      {"void", TokKind::KwVoid},         {"char", TokKind::KwChar},
      {"short", TokKind::KwShort},       {"int", TokKind::KwInt},
      {"long", TokKind::KwLong},         {"unsigned", TokKind::KwUnsigned},
      {"signed", TokKind::KwSigned},     {"const", TokKind::KwConst},
      {"static", TokKind::KwStatic},     {"volatile", TokKind::KwVolatile},
      {"if", TokKind::KwIf},             {"else", TokKind::KwElse},
      {"while", TokKind::KwWhile},       {"for", TokKind::KwFor},
      {"do", TokKind::KwDo},             {"break", TokKind::KwBreak},
      {"continue", TokKind::KwContinue}, {"return", TokKind::KwReturn},
      {"sizeof", TokKind::KwSizeof},
  };
  return Map;
}

class LexerImpl {
public:
  LexerImpl(const std::string &Source, DiagnosticEngine &Diags)
      : Src(Source), Diags(Diags) {}

  std::vector<Token> run() {
    std::vector<Token> Toks;
    while (true) {
      skipTrivia();
      Token T = next();
      Toks.push_back(T);
      if (T.Kind == TokKind::End)
        break;
    }
    return Toks;
  }

private:
  char peek(unsigned Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = peek();
    ++Pos;
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }
  SourceLoc here() const { return {Line, Col}; }

  void skipTrivia() {
    while (true) {
      char C = peek();
      if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
        advance();
        continue;
      }
      if (C == '/' && peek(1) == '/') {
        while (peek() != '\n' && peek() != '\0')
          advance();
        continue;
      }
      if (C == '/' && peek(1) == '*') {
        SourceLoc Start = here();
        advance();
        advance();
        while (!(peek() == '*' && peek(1) == '/')) {
          if (peek() == '\0') {
            Diags.error(Start, "unterminated block comment");
            return;
          }
          advance();
        }
        advance();
        advance();
        continue;
      }
      return;
    }
  }

  Token make(TokKind K, SourceLoc Loc) {
    Token T;
    T.Kind = K;
    T.Loc = Loc;
    return T;
  }

  Token next() {
    SourceLoc Loc = here();
    char C = peek();
    if (C == '\0')
      return make(TokKind::End, Loc);

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Ident;
      while (std::isalnum(static_cast<unsigned char>(peek())) ||
             peek() == '_')
        Ident += advance();
      auto It = keywords().find(Ident);
      if (It != keywords().end())
        return make(It->second, Loc);
      Token T = make(TokKind::Identifier, Loc);
      T.Text = std::move(Ident);
      return T;
    }

    if (std::isdigit(static_cast<unsigned char>(C)))
      return lexNumber(Loc);

    if (C == '\'')
      return lexCharLiteral(Loc);

    return lexPunct(Loc);
  }

  Token lexNumber(SourceLoc Loc) {
    Token T = make(TokKind::IntLiteral, Loc);
    uint64_t V = 0;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      advance();
      advance();
      bool Any = false;
      while (std::isxdigit(static_cast<unsigned char>(peek()))) {
        char D = advance();
        unsigned Digit = std::isdigit(static_cast<unsigned char>(D))
                             ? unsigned(D - '0')
                             : unsigned(std::tolower(D) - 'a') + 10;
        V = V * 16 + Digit;
        Any = true;
      }
      if (!Any)
        Diags.error(Loc, "hexadecimal literal needs at least one digit");
    } else {
      while (std::isdigit(static_cast<unsigned char>(peek())))
        V = V * 10 + uint64_t(advance() - '0');
    }
    // Integer suffixes are accepted and ignored (everything is 32-bit).
    while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L')
      advance();
    if (V > 0xFFFFFFFFull)
      Diags.error(Loc, "integer literal does not fit in 32 bits");
    T.IntValue = V;
    return T;
  }

  Token lexCharLiteral(SourceLoc Loc) {
    advance(); // opening quote
    Token T = make(TokKind::IntLiteral, Loc);
    char C = advance();
    if (C == '\\') {
      char E = advance();
      switch (E) {
      case 'n': T.IntValue = '\n'; break;
      case 't': T.IntValue = '\t'; break;
      case 'r': T.IntValue = '\r'; break;
      case '0': T.IntValue = 0; break;
      case '\\': T.IntValue = '\\'; break;
      case '\'': T.IntValue = '\''; break;
      default:
        Diags.error(Loc, "unsupported escape sequence");
      }
    } else {
      T.IntValue = uint64_t(uint8_t(C));
    }
    if (peek() == '\'')
      advance();
    else
      Diags.error(Loc, "unterminated character literal");
    return T;
  }

  Token lexPunct(SourceLoc Loc) {
    char C = advance();
    auto Two = [&](char Next, TokKind Long, TokKind Short) {
      if (peek() == Next) {
        advance();
        return make(Long, Loc);
      }
      return make(Short, Loc);
    };
    switch (C) {
    case '(': return make(TokKind::LParen, Loc);
    case ')': return make(TokKind::RParen, Loc);
    case '{': return make(TokKind::LBrace, Loc);
    case '}': return make(TokKind::RBrace, Loc);
    case '[': return make(TokKind::LBracket, Loc);
    case ']': return make(TokKind::RBracket, Loc);
    case ';': return make(TokKind::Semicolon, Loc);
    case ',': return make(TokKind::Comma, Loc);
    case '?': return make(TokKind::Question, Loc);
    case ':': return make(TokKind::Colon, Loc);
    case '~': return make(TokKind::Tilde, Loc);
    case '+':
      if (peek() == '+') {
        advance();
        return make(TokKind::PlusPlus, Loc);
      }
      return Two('=', TokKind::PlusAssign, TokKind::Plus);
    case '-':
      if (peek() == '-') {
        advance();
        return make(TokKind::MinusMinus, Loc);
      }
      return Two('=', TokKind::MinusAssign, TokKind::Minus);
    case '*': return Two('=', TokKind::StarAssign, TokKind::Star);
    case '/': return Two('=', TokKind::SlashAssign, TokKind::Slash);
    case '%': return Two('=', TokKind::PercentAssign, TokKind::Percent);
    case '!': return Two('=', TokKind::NotEq, TokKind::Bang);
    case '=': return Two('=', TokKind::EqEq, TokKind::Assign);
    case '^': return Two('=', TokKind::CaretAssign, TokKind::Caret);
    case '&':
      if (peek() == '&') {
        advance();
        return make(TokKind::AmpAmp, Loc);
      }
      return Two('=', TokKind::AmpAssign, TokKind::Amp);
    case '|':
      if (peek() == '|') {
        advance();
        return make(TokKind::PipePipe, Loc);
      }
      return Two('=', TokKind::PipeAssign, TokKind::Pipe);
    case '<':
      if (peek() == '<') {
        advance();
        return Two('=', TokKind::ShlAssign, TokKind::Shl);
      }
      return Two('=', TokKind::Le, TokKind::Lt);
    case '>':
      if (peek() == '>') {
        advance();
        return Two('=', TokKind::ShrAssign, TokKind::Shr);
      }
      return Two('=', TokKind::Ge, TokKind::Gt);
    default:
      Diags.error(Loc, std::string("unexpected character '") + C + "'");
      return next();
    }
  }

  const std::string &Src;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1, Col = 1;
};

} // namespace

std::vector<Token> wario::tokenize(const std::string &Source,
                                   DiagnosticEngine &Diags) {
  LexerImpl L(Source, Diags);
  return L.run();
}
