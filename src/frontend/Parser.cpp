#include "frontend/Parser.h"

#include <optional>

using namespace wario;

namespace {

/// Binding powers for binary operators (higher binds tighter).
int binaryPrec(TokKind K) {
  switch (K) {
  case TokKind::PipePipe: return 1;
  case TokKind::AmpAmp: return 2;
  case TokKind::Pipe: return 3;
  case TokKind::Caret: return 4;
  case TokKind::Amp: return 5;
  case TokKind::EqEq:
  case TokKind::NotEq: return 6;
  case TokKind::Lt:
  case TokKind::Gt:
  case TokKind::Le:
  case TokKind::Ge: return 7;
  case TokKind::Shl:
  case TokKind::Shr: return 8;
  case TokKind::Plus:
  case TokKind::Minus: return 9;
  case TokKind::Star:
  case TokKind::Slash:
  case TokKind::Percent: return 10;
  default: return -1;
  }
}

bool isAssignOp(TokKind K) {
  switch (K) {
  case TokKind::Assign:
  case TokKind::PlusAssign:
  case TokKind::MinusAssign:
  case TokKind::StarAssign:
  case TokKind::SlashAssign:
  case TokKind::PercentAssign:
  case TokKind::ShlAssign:
  case TokKind::ShrAssign:
  case TokKind::AmpAssign:
  case TokKind::PipeAssign:
  case TokKind::CaretAssign:
    return true;
  default:
    return false;
  }
}

bool startsType(TokKind K) {
  switch (K) {
  case TokKind::KwVoid:
  case TokKind::KwChar:
  case TokKind::KwShort:
  case TokKind::KwInt:
  case TokKind::KwLong:
  case TokKind::KwUnsigned:
  case TokKind::KwSigned:
  case TokKind::KwConst:
  case TokKind::KwStatic:
  case TokKind::KwVolatile:
    return true;
  default:
    return false;
  }
}

class Parser {
public:
  Parser(std::vector<Token> Toks, DiagnosticEngine &Diags)
      : Toks(std::move(Toks)), Diags(Diags),
        TU(std::make_unique<TranslationUnit>()) {}

  std::unique_ptr<TranslationUnit> run() {
    while (!at(TokKind::End) && !Diags.hasErrors())
      parseTopLevel();
    return std::move(TU);
  }

private:
  // --- Token plumbing ---------------------------------------------------------
  const Token &peek(unsigned Ahead = 0) const {
    unsigned I = std::min<size_t>(Pos + Ahead, Toks.size() - 1);
    return Toks[I];
  }
  bool at(TokKind K) const { return peek().Kind == K; }
  Token consume() { return Toks[std::min(Pos++, Toks.size() - 1)]; }
  bool accept(TokKind K) {
    if (!at(K))
      return false;
    consume();
    return true;
  }
  Token expect(TokKind K) {
    if (at(K))
      return consume();
    Diags.error(peek().Loc, std::string("expected ") + tokKindName(K) +
                                ", found " + tokKindName(peek().Kind));
    return peek();
  }

  TypeTable &types() { return TU->Types; }

  // --- Types ---------------------------------------------------------------------
  /// Parses declaration specifiers into a base type id.
  int parseDeclSpec() {
    SourceLoc Loc = peek().Loc;
    bool SawUnsigned = false, SawSigned = false, SawBase = false;
    unsigned Bits = 32;
    bool IsVoid = false;
    bool Any = false;
    while (true) {
      switch (peek().Kind) {
      case TokKind::KwConst:
      case TokKind::KwStatic:
      case TokKind::KwVolatile:
        consume();
        continue;
      case TokKind::KwUnsigned:
        SawUnsigned = true;
        consume();
        Any = true;
        continue;
      case TokKind::KwSigned:
        SawSigned = true;
        consume();
        Any = true;
        continue;
      case TokKind::KwVoid:
        IsVoid = true;
        SawBase = true;
        consume();
        Any = true;
        continue;
      case TokKind::KwChar:
        Bits = 8;
        SawBase = true;
        consume();
        Any = true;
        continue;
      case TokKind::KwShort:
        Bits = 16;
        SawBase = true;
        consume();
        Any = true;
        // Allow "short int".
        accept(TokKind::KwInt);
        continue;
      case TokKind::KwLong:
        Bits = 32;
        SawBase = true;
        consume();
        Any = true;
        accept(TokKind::KwInt);
        continue;
      case TokKind::KwInt:
        Bits = 32;
        SawBase = true;
        consume();
        Any = true;
        continue;
      default:
        break;
      }
      break;
    }
    if (!Any) {
      Diags.error(Loc, "expected a type");
      return types().intTy();
    }
    if (IsVoid)
      return types().voidTy();
    // Plain char is unsigned (ARM AAPCS convention); "signed char" opts in.
    bool Signed = Bits == 8 ? SawSigned : !SawUnsigned;
    if (SawUnsigned)
      Signed = false;
    (void)SawBase;
    return types().makeInt(Bits, Signed);
  }

  /// Parses '*'* name suffix-dims; returns the full type and name.
  std::pair<int, std::string> parseDeclarator(int Base) {
    while (accept(TokKind::Star))
      Base = types().ptrTo(Base);
    Token Name = expect(TokKind::Identifier);
    std::vector<uint32_t> Dims;
    while (accept(TokKind::LBracket)) {
      std::unique_ptr<Expr> DimE = parseAssign();
      std::optional<int64_t> V = evalConst(DimE.get());
      if (!V || *V <= 0) {
        Diags.error(Name.Loc, "array dimension must be a positive "
                              "constant expression");
        V = 1;
      }
      Dims.push_back(uint32_t(*V));
      expect(TokKind::RBracket);
    }
    for (auto It = Dims.rbegin(); It != Dims.rend(); ++It)
      Base = types().arrayOf(Base, *It);
    return {Base, Name.Text};
  }

  // --- Constant expressions ---------------------------------------------------------
  std::optional<int64_t> evalConst(const Expr *E) {
    if (!E)
      return std::nullopt;
    switch (E->K) {
    case Expr::Kind::IntLit:
      return int64_t(int32_t(E->IntValue));
    case Expr::Kind::SizeofType:
      return int64_t(types().sizeOf(E->TypeId));
    case Expr::Kind::Cast:
      return evalConst(E->Kids[0].get());
    case Expr::Kind::Unary: {
      std::optional<int64_t> V = evalConst(E->Kids[0].get());
      if (!V)
        return std::nullopt;
      int32_t X = int32_t(*V);
      switch (E->Op) {
      case TokKind::Minus: return int64_t(int32_t(-uint32_t(X)));
      case TokKind::Tilde: return int64_t(~X);
      case TokKind::Bang: return int64_t(X == 0 ? 1 : 0);
      default: return std::nullopt;
      }
    }
    case Expr::Kind::Binary: {
      std::optional<int64_t> A = evalConst(E->Kids[0].get());
      std::optional<int64_t> B = evalConst(E->Kids[1].get());
      if (!A || !B)
        return std::nullopt;
      uint32_t X = uint32_t(*A), Y = uint32_t(*B);
      int32_t SX = int32_t(X), SY = int32_t(Y);
      switch (E->Op) {
      case TokKind::Plus: return int64_t(int32_t(X + Y));
      case TokKind::Minus: return int64_t(int32_t(X - Y));
      case TokKind::Star: return int64_t(int32_t(X * Y));
      case TokKind::Slash:
        return SY == 0 ? std::nullopt
                       : std::optional<int64_t>(int64_t(SX / SY));
      case TokKind::Percent:
        return SY == 0 ? std::nullopt
                       : std::optional<int64_t>(int64_t(SX % SY));
      case TokKind::Shl: return int64_t(int32_t(X << (Y & 31)));
      case TokKind::Shr: return int64_t(int32_t(X >> (Y & 31)));
      case TokKind::Amp: return int64_t(int32_t(X & Y));
      case TokKind::Pipe: return int64_t(int32_t(X | Y));
      case TokKind::Caret: return int64_t(int32_t(X ^ Y));
      case TokKind::Lt: return SX < SY;
      case TokKind::Gt: return SX > SY;
      case TokKind::Le: return SX <= SY;
      case TokKind::Ge: return SX >= SY;
      case TokKind::EqEq: return X == Y;
      case TokKind::NotEq: return X != Y;
      case TokKind::AmpAmp: return (X && Y) ? 1 : 0;
      case TokKind::PipePipe: return (X || Y) ? 1 : 0;
      default: return std::nullopt;
      }
    }
    case Expr::Kind::Ternary: {
      std::optional<int64_t> C = evalConst(E->Kids[0].get());
      if (!C)
        return std::nullopt;
      return evalConst(E->Kids[*C != 0 ? 1 : 2].get());
    }
    default:
      return std::nullopt;
    }
  }

  // --- Top level ------------------------------------------------------------------------
  void parseTopLevel() {
    int Base = parseDeclSpec();
    // Function or global(s).
    bool First = true;
    while (true) {
      auto [Ty, Name] = parseDeclarator(Base);
      if (First && at(TokKind::LParen)) {
        parseFunctionRest(Ty, Name);
        return;
      }
      First = false;
      parseGlobalRest(Ty, Name);
      if (accept(TokKind::Comma))
        continue;
      expect(TokKind::Semicolon);
      return;
    }
  }

  void parseFunctionRest(int RetTy, std::string Name) {
    SourceLoc Loc = peek().Loc;
    expect(TokKind::LParen);
    FunctionDecl FD;
    FD.Name = std::move(Name);
    FD.RetTypeId = RetTy;
    FD.Loc = Loc;
    if (at(TokKind::KwVoid) && peek(1).Kind == TokKind::RParen) {
      consume();
    } else if (!at(TokKind::RParen)) {
      do {
        int PBase = parseDeclSpec();
        auto [PTy, PName] = parseDeclarator(PBase);
        // Array parameters decay to pointers.
        PTy = types().decay(PTy);
        FD.Params.push_back({std::move(PName), PTy});
      } while (accept(TokKind::Comma));
    }
    expect(TokKind::RParen);
    if (accept(TokKind::Semicolon)) {
      TU->Functions.push_back(std::move(FD)); // Forward declaration.
      return;
    }
    FD.Body = parseBlock();
    TU->Functions.push_back(std::move(FD));
  }

  void parseGlobalRest(int Ty, std::string Name) {
    GlobalDecl GD;
    GD.Name = std::move(Name);
    GD.TypeId = Ty;
    GD.Loc = peek().Loc;
    if (accept(TokKind::Assign))
      parseGlobalInit(Ty, GD.InitValues);
    TU->Globals.push_back(std::move(GD));
  }

  /// Parses a constant initializer for \p Ty, flattening into \p Out and
  /// zero-filling to the type's full element count.
  void parseGlobalInit(int Ty, std::vector<int64_t> &Out) {
    size_t Before = Out.size();
    parseInitInto(Ty, Out);
    size_t Want = elementCount(Ty);
    if (Out.size() - Before > Want)
      Diags.error(peek().Loc, "too many initializers");
    Out.resize(Before + Want, 0);
  }

  size_t elementCount(int Ty) {
    const CType &T = types().get(Ty);
    if (T.K == CType::Kind::Array)
      return T.ArrayLen * elementCount(T.Elem);
    return 1;
  }

  void parseInitInto(int Ty, std::vector<int64_t> &Out) {
    const CType &T = types().get(Ty);
    if (T.K == CType::Kind::Array && accept(TokKind::LBrace)) {
      size_t Start = Out.size();
      if (!at(TokKind::RBrace)) {
        uint32_t Index = 0;
        do {
          if (at(TokKind::RBrace))
            break; // Trailing comma.
          if (at(TokKind::LBrace)) {
            // Nested initializer for one element row.
            std::vector<int64_t> Row;
            parseInitInto(T.Elem, Row);
            Row.resize(elementCount(T.Elem), 0);
            Out.insert(Out.end(), Row.begin(), Row.end());
          } else {
            std::unique_ptr<Expr> E = parseAssign();
            std::optional<int64_t> V = evalConst(E.get());
            if (!V) {
              Diags.error(E ? E->Loc : peek().Loc,
                          "global initializer must be constant");
              V = 0;
            }
            Out.push_back(*V);
          }
          ++Index;
        } while (accept(TokKind::Comma));
        (void)Index;
      }
      expect(TokKind::RBrace);
      size_t Want = elementCount(Ty);
      if (Out.size() - Start > Want)
        Diags.error(peek().Loc, "too many initializers in array");
      Out.resize(Start + Want, 0);
      return;
    }
    // Scalar initializer.
    std::unique_ptr<Expr> E = parseAssign();
    std::optional<int64_t> V = evalConst(E.get());
    if (!V) {
      Diags.error(E ? E->Loc : peek().Loc,
                  "global initializer must be constant");
      V = 0;
    }
    Out.push_back(*V);
  }

  // --- Statements ------------------------------------------------------------------------
  std::unique_ptr<Stmt> parseBlock() {
    auto S = std::make_unique<Stmt>();
    S->K = Stmt::Kind::Block;
    S->Loc = peek().Loc;
    expect(TokKind::LBrace);
    while (!at(TokKind::RBrace) && !at(TokKind::End) && !Diags.hasErrors())
      parseStmtInto(S->Body);
    expect(TokKind::RBrace);
    return S;
  }

  /// Parses one statement; declarations may expand into several.
  void parseStmtInto(std::vector<std::unique_ptr<Stmt>> &Out) {
    if (startsType(peek().Kind)) {
      parseLocalDecls(Out);
      return;
    }
    Out.push_back(parseStmt());
  }

  void parseLocalDecls(std::vector<std::unique_ptr<Stmt>> &Out) {
    int Base = parseDeclSpec();
    do {
      auto [Ty, Name] = parseDeclarator(Base);
      auto D = std::make_unique<Stmt>();
      D->K = Stmt::Kind::Decl;
      D->Loc = peek().Loc;
      D->Name = std::move(Name);
      D->TypeId = Ty;
      if (accept(TokKind::Assign)) {
        if (at(TokKind::LBrace)) {
          // Local array initializer: elements become explicit stores.
          expect(TokKind::LBrace);
          if (!at(TokKind::RBrace)) {
            do {
              if (at(TokKind::RBrace))
                break;
              D->InitList.push_back(parseAssign());
            } while (accept(TokKind::Comma));
          }
          expect(TokKind::RBrace);
        } else {
          D->E = parseAssign();
        }
      }
      Out.push_back(std::move(D));
    } while (accept(TokKind::Comma));
    expect(TokKind::Semicolon);
  }

  std::unique_ptr<Stmt> parseStmt() {
    SourceLoc Loc = peek().Loc;
    auto Make = [&](Stmt::Kind K) {
      auto S = std::make_unique<Stmt>();
      S->K = K;
      S->Loc = Loc;
      return S;
    };
    switch (peek().Kind) {
    case TokKind::LBrace:
      return parseBlock();
    case TokKind::Semicolon:
      consume();
      return Make(Stmt::Kind::Empty);
    case TokKind::KwIf: {
      consume();
      auto S = Make(Stmt::Kind::If);
      expect(TokKind::LParen);
      S->E = parseExpr();
      expect(TokKind::RParen);
      S->S1 = parseStmt();
      if (accept(TokKind::KwElse))
        S->S2 = parseStmt();
      return S;
    }
    case TokKind::KwWhile: {
      consume();
      auto S = Make(Stmt::Kind::While);
      expect(TokKind::LParen);
      S->E = parseExpr();
      expect(TokKind::RParen);
      S->S1 = parseStmt();
      return S;
    }
    case TokKind::KwDo: {
      consume();
      auto S = Make(Stmt::Kind::DoWhile);
      S->S1 = parseStmt();
      expect(TokKind::KwWhile);
      expect(TokKind::LParen);
      S->E = parseExpr();
      expect(TokKind::RParen);
      expect(TokKind::Semicolon);
      return S;
    }
    case TokKind::KwFor: {
      consume();
      expect(TokKind::LParen);
      // A for with a declaration initializer desugars to
      // { decls; for(;cond;step) body }.
      std::vector<std::unique_ptr<Stmt>> Decls;
      auto S = Make(Stmt::Kind::For);
      if (startsType(peek().Kind)) {
        parseLocalDecls(Decls);
      } else if (!at(TokKind::Semicolon)) {
        auto Init = Make(Stmt::Kind::ExprStmt);
        Init->E = parseExpr();
        S->S1 = std::move(Init);
        expect(TokKind::Semicolon);
      } else {
        expect(TokKind::Semicolon);
      }
      if (!at(TokKind::Semicolon))
        S->E = parseExpr();
      expect(TokKind::Semicolon);
      if (!at(TokKind::RParen))
        S->E2 = parseExpr();
      expect(TokKind::RParen);
      S->S2 = parseStmt();
      if (Decls.empty())
        return S;
      auto Wrap = Make(Stmt::Kind::Block);
      for (auto &D : Decls)
        Wrap->Body.push_back(std::move(D));
      Wrap->Body.push_back(std::move(S));
      return Wrap;
    }
    case TokKind::KwBreak:
      consume();
      expect(TokKind::Semicolon);
      return Make(Stmt::Kind::Break);
    case TokKind::KwContinue:
      consume();
      expect(TokKind::Semicolon);
      return Make(Stmt::Kind::Continue);
    case TokKind::KwReturn: {
      consume();
      auto S = Make(Stmt::Kind::Return);
      if (!at(TokKind::Semicolon))
        S->E = parseExpr();
      expect(TokKind::Semicolon);
      return S;
    }
    default: {
      auto S = Make(Stmt::Kind::ExprStmt);
      S->E = parseExpr();
      expect(TokKind::Semicolon);
      return S;
    }
    }
  }

  // --- Expressions ----------------------------------------------------------------------
  std::unique_ptr<Expr> makeExpr(Expr::Kind K, SourceLoc Loc) {
    auto E = std::make_unique<Expr>();
    E->K = K;
    E->Loc = Loc;
    return E;
  }

  std::unique_ptr<Expr> parseExpr() {
    std::unique_ptr<Expr> E = parseAssign();
    while (at(TokKind::Comma)) {
      SourceLoc Loc = consume().Loc;
      auto C = makeExpr(Expr::Kind::Comma, Loc);
      C->Kids.push_back(std::move(E));
      C->Kids.push_back(parseAssign());
      E = std::move(C);
    }
    return E;
  }

  std::unique_ptr<Expr> parseAssign() {
    std::unique_ptr<Expr> LHS = parseTernary();
    if (!isAssignOp(peek().Kind))
      return LHS;
    Token Op = consume();
    auto E = makeExpr(Op.Kind == TokKind::Assign
                          ? Expr::Kind::Assign
                          : Expr::Kind::CompoundAssign,
                      Op.Loc);
    E->Op = Op.Kind;
    E->Kids.push_back(std::move(LHS));
    E->Kids.push_back(parseAssign());
    return E;
  }

  std::unique_ptr<Expr> parseTernary() {
    std::unique_ptr<Expr> Cond = parseBinary(0);
    if (!at(TokKind::Question))
      return Cond;
    SourceLoc Loc = consume().Loc;
    auto E = makeExpr(Expr::Kind::Ternary, Loc);
    E->Kids.push_back(std::move(Cond));
    E->Kids.push_back(parseExpr());
    expect(TokKind::Colon);
    E->Kids.push_back(parseAssign());
    return E;
  }

  std::unique_ptr<Expr> parseBinary(int MinPrec) {
    std::unique_ptr<Expr> LHS = parseUnary();
    while (true) {
      int Prec = binaryPrec(peek().Kind);
      if (Prec < 0 || Prec < MinPrec)
        return LHS;
      Token Op = consume();
      std::unique_ptr<Expr> RHS = parseBinary(Prec + 1);
      auto E = makeExpr(Expr::Kind::Binary, Op.Loc);
      E->Op = Op.Kind;
      E->Kids.push_back(std::move(LHS));
      E->Kids.push_back(std::move(RHS));
      LHS = std::move(E);
    }
  }

  /// True if '(' at the current position begins a cast.
  bool atCast() const {
    return at(TokKind::LParen) && startsType(peek(1).Kind);
  }

  std::unique_ptr<Expr> parseUnary() {
    SourceLoc Loc = peek().Loc;
    switch (peek().Kind) {
    case TokKind::Minus:
    case TokKind::Tilde:
    case TokKind::Bang:
    case TokKind::Star:
    case TokKind::Amp: {
      Token Op = consume();
      auto E = makeExpr(Expr::Kind::Unary, Loc);
      E->Op = Op.Kind;
      E->Kids.push_back(parseUnary());
      return E;
    }
    case TokKind::Plus: // Unary plus is a no-op.
      consume();
      return parseUnary();
    case TokKind::PlusPlus:
    case TokKind::MinusMinus: {
      Token Op = consume();
      auto E = makeExpr(Expr::Kind::IncDec, Loc);
      E->Op = Op.Kind;
      E->IsPrefix = true;
      E->Kids.push_back(parseUnary());
      return E;
    }
    case TokKind::KwSizeof: {
      consume();
      expect(TokKind::LParen);
      auto E = makeExpr(Expr::Kind::SizeofType, Loc);
      int Base = parseDeclSpec();
      while (accept(TokKind::Star))
        Base = types().ptrTo(Base);
      E->TypeId = Base;
      expect(TokKind::RParen);
      return E;
    }
    case TokKind::LParen:
      if (atCast()) {
        consume();
        int Base = parseDeclSpec();
        while (accept(TokKind::Star))
          Base = types().ptrTo(Base);
        expect(TokKind::RParen);
        auto E = makeExpr(Expr::Kind::Cast, Loc);
        E->TypeId = Base;
        E->Kids.push_back(parseUnary());
        return E;
      }
      return parsePostfix(parsePrimary());
    default:
      return parsePostfix(parsePrimary());
    }
  }

  std::unique_ptr<Expr> parsePrimary() {
    SourceLoc Loc = peek().Loc;
    if (at(TokKind::IntLiteral)) {
      Token T = consume();
      auto E = makeExpr(Expr::Kind::IntLit, Loc);
      E->IntValue = T.IntValue;
      return E;
    }
    if (at(TokKind::Identifier)) {
      Token T = consume();
      if (at(TokKind::LParen)) {
        consume();
        auto E = makeExpr(Expr::Kind::Call, Loc);
        E->Name = T.Text;
        if (!at(TokKind::RParen)) {
          do {
            E->Kids.push_back(parseAssign());
          } while (accept(TokKind::Comma));
        }
        expect(TokKind::RParen);
        return E;
      }
      auto E = makeExpr(Expr::Kind::Ident, Loc);
      E->Name = T.Text;
      return E;
    }
    if (accept(TokKind::LParen)) {
      std::unique_ptr<Expr> E = parseExpr();
      expect(TokKind::RParen);
      return E;
    }
    Diags.error(Loc, std::string("expected an expression, found ") +
                         tokKindName(peek().Kind));
    consume();
    return makeExpr(Expr::Kind::IntLit, Loc);
  }

  std::unique_ptr<Expr> parsePostfix(std::unique_ptr<Expr> E) {
    while (true) {
      SourceLoc Loc = peek().Loc;
      if (accept(TokKind::LBracket)) {
        auto I = makeExpr(Expr::Kind::Index, Loc);
        I->Kids.push_back(std::move(E));
        I->Kids.push_back(parseExpr());
        expect(TokKind::RBracket);
        E = std::move(I);
        continue;
      }
      if (at(TokKind::PlusPlus) || at(TokKind::MinusMinus)) {
        Token Op = consume();
        auto I = makeExpr(Expr::Kind::IncDec, Loc);
        I->Op = Op.Kind;
        I->IsPrefix = false;
        I->Kids.push_back(std::move(E));
        E = std::move(I);
        continue;
      }
      return E;
    }
  }

  std::vector<Token> Toks;
  size_t Pos = 0;
  DiagnosticEngine &Diags;
  std::unique_ptr<TranslationUnit> TU;
};

} // namespace

std::unique_ptr<TranslationUnit> wario::parseC(const std::string &Source,
                                               DiagnosticEngine &Diags) {
  std::vector<Token> Toks = tokenize(Source, Diags);
  if (Diags.hasErrors())
    return std::make_unique<TranslationUnit>();
  Parser P(std::move(Toks), Diags);
  return P.run();
}
