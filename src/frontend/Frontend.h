//===----------------------------------------------------------------------===//
///
/// \file
/// One-call front end: C subset source text -> IR module.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_FRONTEND_FRONTEND_H
#define WARIO_FRONTEND_FRONTEND_H

#include "frontend/CodeGen.h"
#include "frontend/Parser.h"

namespace wario {

/// Compiles \p Source to IR. Returns null on any diagnostic error;
/// details are in \p Diags.
inline std::unique_ptr<Module> compileC(const std::string &Source,
                                        const std::string &ModuleName,
                                        DiagnosticEngine &Diags) {
  std::unique_ptr<TranslationUnit> TU = parseC(Source, Diags);
  if (Diags.hasErrors())
    return nullptr;
  return generateIR(*TU, ModuleName, Diags);
}

} // namespace wario

#endif // WARIO_FRONTEND_FRONTEND_H
