#include "frontend/CodeGen.h"

#include "ir/IRBuilder.h"

#include <unordered_map>

using namespace wario;

namespace {

/// An rvalue: a 32-bit SSA value plus its C type (already decayed).
struct RValue {
  Value *V = nullptr;
  int TypeId = -1;
};

/// An lvalue: the object's address plus the object type (arrays allowed).
struct LValue {
  Value *Addr = nullptr;
  int TypeId = -1;
};

class CodeGen {
public:
  CodeGen(TranslationUnit &TU, const std::string &Name,
          DiagnosticEngine &Diags)
      : TU(TU), Types(TU.Types), Diags(Diags),
        M(std::make_unique<Module>(Name)), IRB(M.get()) {}

  std::unique_ptr<Module> run() {
    declareGlobals();
    declareFunctions();
    for (FunctionDecl &FD : TU.Functions)
      if (FD.Body)
        genFunction(FD);
    if (Diags.hasErrors())
      return nullptr;
    return std::move(M);
  }

private:
  // --- Declarations ---------------------------------------------------------
  /// Scalar element width of a (possibly nested) array type.
  uint32_t scalarSize(int TypeId) {
    const CType &T = Types.get(TypeId);
    if (T.K == CType::Kind::Array)
      return scalarSize(T.Elem);
    return Types.sizeOf(TypeId);
  }

  void declareGlobals() {
    for (GlobalDecl &GD : TU.Globals) {
      if (M->getGlobal(GD.Name)) {
        Diags.error(GD.Loc, "redefinition of global '" + GD.Name + "'");
        continue;
      }
      uint32_t Size = Types.sizeOf(GD.TypeId);
      std::vector<uint8_t> Image;
      if (!GD.InitValues.empty()) {
        uint32_t Elem = scalarSize(GD.TypeId);
        Image.reserve(Size);
        for (int64_t V : GD.InitValues)
          for (uint32_t B = 0; B != Elem; ++B)
            Image.push_back(uint8_t(uint64_t(V) >> (8 * B)));
        Image.resize(Size, 0);
      }
      GlobalVariable *G = M->createGlobal(GD.Name, Size, std::move(Image));
      GlobalTypes[G] = GD.TypeId;
    }
  }

  void declareFunctions() {
    for (FunctionDecl &FD : TU.Functions) {
      Function *Existing = M->getFunction(FD.Name);
      if (Existing) {
        if (Existing->getNumParams() != FD.Params.size())
          Diags.error(FD.Loc, "conflicting declaration of '" + FD.Name +
                                  "'");
        continue;
      }
      if (FD.Params.size() > 4)
        Diags.error(FD.Loc,
                    "function '" + FD.Name +
                        "' has more than 4 parameters (register-only "
                        "calling convention)");
      bool ReturnsVal = !Types.isVoid(FD.RetTypeId);
      Function *F = M->createFunction(FD.Name, unsigned(FD.Params.size()),
                                      ReturnsVal);
      FuncDecls[F] = &FD;
    }
  }

  // --- Function bodies --------------------------------------------------------
  struct LocalVar {
    Value *Addr;
    int TypeId;
  };

  void genFunction(FunctionDecl &FD) {
    Function *F = M->getFunction(FD.Name);
    assert(F);
    if (!F->isDeclaration()) {
      Diags.error(FD.Loc, "redefinition of function '" + FD.Name + "'");
      return;
    }
    CurFn = F;
    CurDecl = &FD;
    Scopes.clear();
    Scopes.emplace_back();
    BreakTargets.clear();
    ContinueTargets.clear();

    BasicBlock *Entry = F->createBlock("entry");
    IRB.setInsertPoint(Entry);

    // Parameters become stack slots so they are addressable/assignable;
    // mem2reg promotes the scalar ones later.
    for (unsigned I = 0; I != FD.Params.size(); ++I) {
      const ParamDecl &P = FD.Params[I];
      Instruction *Slot =
          IRB.createAlloca(Types.sizeOf(P.TypeId), P.Name + ".addr");
      IRB.createStore(F->getArg(I), Slot,
                      uint8_t(Types.sizeOf(P.TypeId)));
      declare(P.Name, {Slot, P.TypeId}, FD.Loc);
    }

    genStmt(FD.Body.get());

    // Fall-off-the-end: implicit return.
    if (!IRB.getInsertBlock()->getTerminator()) {
      if (Types.isVoid(FD.RetTypeId))
        IRB.createRet();
      else
        IRB.createRet(IRB.getInt(0));
    }
    CurFn = nullptr;
  }

  // --- Scopes -------------------------------------------------------------------
  void declare(const std::string &Name, LocalVar V, SourceLoc Loc) {
    if (Scopes.back().count(Name)) {
      Diags.error(Loc, "redefinition of '" + Name + "'");
      return;
    }
    Scopes.back()[Name] = V;
  }

  const LocalVar *lookupLocal(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto F = It->find(Name);
      if (F != It->end())
        return &F->second;
    }
    return nullptr;
  }

  // --- Statement generation ---------------------------------------------------------
  /// Starts a fresh block for code after a terminator (unreachable code;
  /// cleaned up by removeUnreachableBlocks later).
  void ensureOpenBlock() {
    if (IRB.getInsertBlock()->getTerminator()) {
      BasicBlock *Dead = CurFn->createBlock("dead");
      IRB.setInsertPoint(Dead);
    }
  }

  void genStmt(Stmt *S) {
    if (!S || Diags.hasErrors())
      return;
    ensureOpenBlock();
    switch (S->K) {
    case Stmt::Kind::Block: {
      Scopes.emplace_back();
      for (auto &Child : S->Body)
        genStmt(Child.get());
      Scopes.pop_back();
      return;
    }
    case Stmt::Kind::Decl:
      genDecl(S);
      return;
    case Stmt::Kind::ExprStmt:
      genRValue(S->E.get());
      return;
    case Stmt::Kind::If: {
      BasicBlock *Then = CurFn->createBlock("if.then");
      BasicBlock *Else = S->S2 ? CurFn->createBlock("if.else") : nullptr;
      BasicBlock *End = CurFn->createBlock("if.end");
      genCond(S->E.get(), Then, Else ? Else : End);
      IRB.setInsertPoint(Then);
      genStmt(S->S1.get());
      if (!IRB.getInsertBlock()->getTerminator())
        IRB.createJmp(End);
      if (Else) {
        IRB.setInsertPoint(Else);
        genStmt(S->S2.get());
        if (!IRB.getInsertBlock()->getTerminator())
          IRB.createJmp(End);
      }
      IRB.setInsertPoint(End);
      return;
    }
    case Stmt::Kind::While: {
      BasicBlock *Cond = CurFn->createBlock("while.cond");
      BasicBlock *Body = CurFn->createBlock("while.body");
      BasicBlock *End = CurFn->createBlock("while.end");
      IRB.createJmp(Cond);
      IRB.setInsertPoint(Cond);
      genCond(S->E.get(), Body, End);
      BreakTargets.push_back(End);
      ContinueTargets.push_back(Cond);
      IRB.setInsertPoint(Body);
      genStmt(S->S1.get());
      if (!IRB.getInsertBlock()->getTerminator())
        IRB.createJmp(Cond);
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      IRB.setInsertPoint(End);
      return;
    }
    case Stmt::Kind::DoWhile: {
      BasicBlock *Body = CurFn->createBlock("do.body");
      BasicBlock *Cond = CurFn->createBlock("do.cond");
      BasicBlock *End = CurFn->createBlock("do.end");
      IRB.createJmp(Body);
      BreakTargets.push_back(End);
      ContinueTargets.push_back(Cond);
      IRB.setInsertPoint(Body);
      genStmt(S->S1.get());
      if (!IRB.getInsertBlock()->getTerminator())
        IRB.createJmp(Cond);
      IRB.setInsertPoint(Cond);
      genCond(S->E.get(), Body, End);
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      IRB.setInsertPoint(End);
      return;
    }
    case Stmt::Kind::For: {
      genStmt(S->S1.get());
      ensureOpenBlock();
      BasicBlock *Cond = CurFn->createBlock("for.cond");
      BasicBlock *Body = CurFn->createBlock("for.body");
      BasicBlock *Step = CurFn->createBlock("for.step");
      BasicBlock *End = CurFn->createBlock("for.end");
      IRB.createJmp(Cond);
      IRB.setInsertPoint(Cond);
      if (S->E)
        genCond(S->E.get(), Body, End);
      else
        IRB.createJmp(Body);
      BreakTargets.push_back(End);
      ContinueTargets.push_back(Step);
      IRB.setInsertPoint(Body);
      genStmt(S->S2.get());
      if (!IRB.getInsertBlock()->getTerminator())
        IRB.createJmp(Step);
      IRB.setInsertPoint(Step);
      if (S->E2)
        genRValue(S->E2.get());
      IRB.createJmp(Cond);
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      IRB.setInsertPoint(End);
      return;
    }
    case Stmt::Kind::Break:
      if (BreakTargets.empty())
        Diags.error(S->Loc, "'break' outside of a loop");
      else
        IRB.createJmp(BreakTargets.back());
      return;
    case Stmt::Kind::Continue:
      if (ContinueTargets.empty())
        Diags.error(S->Loc, "'continue' outside of a loop");
      else
        IRB.createJmp(ContinueTargets.back());
      return;
    case Stmt::Kind::Return: {
      bool IsVoid = Types.isVoid(CurDecl->RetTypeId);
      if (S->E) {
        if (IsVoid) {
          Diags.error(S->Loc, "void function returns a value");
          return;
        }
        RValue V = genRValue(S->E.get());
        IRB.createRet(V.V);
      } else {
        if (!IsVoid) {
          Diags.error(S->Loc, "non-void function returns no value");
          return;
        }
        IRB.createRet();
      }
      return;
    }
    case Stmt::Kind::Empty:
      return;
    }
  }

  void genDecl(Stmt *S) {
    uint32_t Size = Types.sizeOf(S->TypeId);
    Instruction *Slot = IRB.createAlloca(Size, S->Name);
    // Allocas must live in the entry block for static frame layout.
    if (Slot->getParent() != CurFn->getEntryBlock())
      Slot->moveBefore(CurFn->getEntryBlock()->front());
    declare(S->Name, {Slot, S->TypeId}, S->Loc);

    if (S->E) {
      RValue Init = genRValue(S->E.get());
      storeTo({Slot, S->TypeId}, Init, S->Loc);
    } else if (!S->InitList.empty()) {
      if (!Types.isArray(S->TypeId)) {
        Diags.error(S->Loc, "brace initializer on a non-array");
        return;
      }
      int Elem = Types.get(S->TypeId).Elem;
      uint32_t ElemSize = Types.sizeOf(Elem);
      if (S->InitList.size() > Types.get(S->TypeId).ArrayLen) {
        Diags.error(S->Loc, "too many initializers");
        return;
      }
      for (unsigned I = 0; I != S->InitList.size(); ++I) {
        RValue V = genRValue(S->InitList[I].get());
        Instruction *Addr =
            IRB.createGep(Slot, nullptr, 1, int32_t(I * ElemSize),
                          S->Name + ".init");
        IRB.createStore(V.V, Addr, uint8_t(ElemSize));
      }
      // Remaining elements are zero-filled, matching C semantics.
      for (uint32_t I = uint32_t(S->InitList.size());
           I != Types.get(S->TypeId).ArrayLen; ++I) {
        Instruction *Addr = IRB.createGep(
            Slot, nullptr, 1, int32_t(I * ElemSize), S->Name + ".zero");
        IRB.createStore(IRB.getInt(0), Addr, uint8_t(ElemSize));
      }
    }
  }

  // --- Conditions with short-circuiting -----------------------------------------------
  void genCond(Expr *E, BasicBlock *TrueBB, BasicBlock *FalseBB) {
    if (Diags.hasErrors())
      return;
    if (E->K == Expr::Kind::Binary && E->Op == TokKind::AmpAmp) {
      BasicBlock *Mid = CurFn->createBlock("land.rhs");
      genCond(E->Kids[0].get(), Mid, FalseBB);
      IRB.setInsertPoint(Mid);
      genCond(E->Kids[1].get(), TrueBB, FalseBB);
      return;
    }
    if (E->K == Expr::Kind::Binary && E->Op == TokKind::PipePipe) {
      BasicBlock *Mid = CurFn->createBlock("lor.rhs");
      genCond(E->Kids[0].get(), TrueBB, Mid);
      IRB.setInsertPoint(Mid);
      genCond(E->Kids[1].get(), TrueBB, FalseBB);
      return;
    }
    if (E->K == Expr::Kind::Unary && E->Op == TokKind::Bang) {
      genCond(E->Kids[0].get(), FalseBB, TrueBB);
      return;
    }
    RValue V = genRValue(E);
    if (Diags.hasErrors())
      return;
    Value *Flag = V.V;
    // Reuse a comparison result directly; otherwise test against zero.
    auto *I = dyn_cast<Instruction>(Flag);
    if (!I || I->getOpcode() != Opcode::ICmp)
      Flag = IRB.createICmp(CmpPred::NE, Flag, IRB.getInt(0), "tobool");
    IRB.createBr(Flag, TrueBB, FalseBB);
  }

  // --- Expression generation ------------------------------------------------------------
  uint8_t accessSize(int TypeId) {
    uint32_t S = Types.sizeOf(TypeId);
    assert(S == 1 || S == 2 || S == 4);
    return uint8_t(S);
  }

  /// Loads from an lvalue, applying array decay.
  RValue loadFrom(LValue LV, SourceLoc Loc) {
    (void)Loc;
    if (Types.isArray(LV.TypeId))
      return {LV.Addr, Types.decay(LV.TypeId)};
    const CType &T = Types.get(LV.TypeId);
    bool SignExtend = T.K == CType::Kind::Int && T.Signed && T.Bits < 32;
    Instruction *L =
        IRB.createLoad(LV.Addr, accessSize(LV.TypeId), SignExtend, "ld");
    return {L, LV.TypeId};
  }

  void storeTo(LValue LV, RValue V, SourceLoc Loc) {
    if (Types.isArray(LV.TypeId)) {
      Diags.error(Loc, "cannot assign to an array");
      return;
    }
    IRB.createStore(V.V, LV.Addr, accessSize(LV.TypeId));
  }

  /// Applies C value conversion when the target is a sub-word integer.
  RValue convertTo(RValue V, int TargetTy) {
    const CType &T = Types.get(TargetTy);
    if (T.K != CType::Kind::Int || T.Bits == 32)
      return {V.V, TargetTy};
    unsigned Shift = 32 - T.Bits;
    Instruction *Up = IRB.createBinary(Opcode::Shl, V.V,
                                       IRB.getInt(int32_t(Shift)), "cv");
    Instruction *Down = IRB.createBinary(
        T.Signed ? Opcode::AShr : Opcode::LShr, Up,
        IRB.getInt(int32_t(Shift)), "cv");
    return {Down, TargetTy};
  }

  bool isUnsignedTy(int TypeId) {
    const CType &T = Types.get(TypeId);
    if (T.K == CType::Kind::Ptr)
      return true;
    return T.K == CType::Kind::Int && !T.Signed;
  }

  RValue genRValue(Expr *E) {
    if (Diags.hasErrors() || !E)
      return {IRB.getInt(0), Types.intTy()};
    switch (E->K) {
    case Expr::Kind::IntLit: {
      int Ty = E->IntValue > 0x7FFFFFFF ? Types.uintTy() : Types.intTy();
      return {IRB.getInt(int32_t(uint32_t(E->IntValue))), Ty};
    }
    case Expr::Kind::Ident: {
      LValue LV = genLValue(E);
      if (Diags.hasErrors())
        return {IRB.getInt(0), Types.intTy()};
      return loadFrom(LV, E->Loc);
    }
    case Expr::Kind::Index:
    case Expr::Kind::Unary:
      if (E->K == Expr::Kind::Unary && E->Op == TokKind::Amp) {
        LValue LV = genLValue(E->Kids[0].get());
        if (Diags.hasErrors())
          return {IRB.getInt(0), Types.intTy()};
        int Ty = Types.isArray(LV.TypeId)
                     ? Types.decay(LV.TypeId)
                     : Types.ptrTo(LV.TypeId);
        return {LV.Addr, Ty};
      }
      if (E->K == Expr::Kind::Unary && E->Op != TokKind::Star)
        return genUnary(E);
      // Deref and indexing: form the lvalue then load.
      {
        LValue LV = genLValue(E);
        if (Diags.hasErrors())
          return {IRB.getInt(0), Types.intTy()};
        return loadFrom(LV, E->Loc);
      }
    case Expr::Kind::Binary:
      return genBinary(E);
    case Expr::Kind::Assign: {
      LValue LV = genLValue(E->Kids[0].get());
      RValue RHS = genRValue(E->Kids[1].get());
      if (Diags.hasErrors())
        return {IRB.getInt(0), Types.intTy()};
      RValue Conv = convertTo(RHS, LV.TypeId);
      storeTo(LV, Conv, E->Loc);
      return Conv;
    }
    case Expr::Kind::CompoundAssign: {
      LValue LV = genLValue(E->Kids[0].get());
      if (Diags.hasErrors())
        return {IRB.getInt(0), Types.intTy()};
      RValue Old = loadFrom(LV, E->Loc);
      RValue RHS = genRValue(E->Kids[1].get());
      RValue New = applyBinary(compoundBase(E->Op), Old, RHS, E->Loc);
      RValue Conv = convertTo(New, LV.TypeId);
      storeTo(LV, Conv, E->Loc);
      return Conv;
    }
    case Expr::Kind::IncDec: {
      LValue LV = genLValue(E->Kids[0].get());
      if (Diags.hasErrors())
        return {IRB.getInt(0), Types.intTy()};
      RValue Old = loadFrom(LV, E->Loc);
      RValue One{IRB.getInt(1), Types.intTy()};
      RValue New = applyBinary(E->Op == TokKind::PlusPlus ? TokKind::Plus
                                                          : TokKind::Minus,
                               Old, One, E->Loc);
      RValue Conv = convertTo(New, LV.TypeId);
      storeTo(LV, Conv, E->Loc);
      return E->IsPrefix ? Conv : Old;
    }
    case Expr::Kind::Call:
      return genCall(E);
    case Expr::Kind::Ternary: {
      BasicBlock *TBB = CurFn->createBlock("cond.true");
      BasicBlock *FBB = CurFn->createBlock("cond.false");
      BasicBlock *End = CurFn->createBlock("cond.end");
      genCond(E->Kids[0].get(), TBB, FBB);
      IRB.setInsertPoint(TBB);
      RValue TV = genRValue(E->Kids[1].get());
      BasicBlock *TEnd = IRB.getInsertBlock();
      IRB.createJmp(End);
      IRB.setInsertPoint(FBB);
      RValue FV = genRValue(E->Kids[2].get());
      BasicBlock *FEnd = IRB.getInsertBlock();
      IRB.createJmp(End);
      IRB.setInsertPoint(End);
      if (Diags.hasErrors())
        return {IRB.getInt(0), Types.intTy()};
      Instruction *Phi = IRB.createPhi("cond");
      IRBuilder::addPhiIncoming(Phi, TV.V, TEnd);
      IRBuilder::addPhiIncoming(Phi, FV.V, FEnd);
      return {Phi, TV.TypeId};
    }
    case Expr::Kind::Cast: {
      RValue V = genRValue(E->Kids[0].get());
      if (Diags.hasErrors())
        return {IRB.getInt(0), Types.intTy()};
      return convertTo(V, E->TypeId);
    }
    case Expr::Kind::SizeofType:
      return {IRB.getInt(int32_t(Types.sizeOf(E->TypeId))),
              Types.uintTy()};
    case Expr::Kind::Comma: {
      genRValue(E->Kids[0].get());
      return genRValue(E->Kids[1].get());
    }
    }
    Diags.error(E->Loc, "unsupported expression");
    return {IRB.getInt(0), Types.intTy()};
  }

  RValue genUnary(Expr *E) {
    RValue V = genRValue(E->Kids[0].get());
    if (Diags.hasErrors())
      return {IRB.getInt(0), Types.intTy()};
    switch (E->Op) {
    case TokKind::Minus:
      return {IRB.createSub(IRB.getInt(0), V.V, "neg"), V.TypeId};
    case TokKind::Tilde:
      return {IRB.createBinary(Opcode::Xor, V.V, IRB.getInt(-1), "not"),
              V.TypeId};
    case TokKind::Bang:
      return {IRB.createICmp(CmpPred::EQ, V.V, IRB.getInt(0), "lnot"),
              Types.intTy()};
    default:
      Diags.error(E->Loc, "unsupported unary operator");
      return V;
    }
  }

  static TokKind compoundBase(TokKind K) {
    switch (K) {
    case TokKind::PlusAssign: return TokKind::Plus;
    case TokKind::MinusAssign: return TokKind::Minus;
    case TokKind::StarAssign: return TokKind::Star;
    case TokKind::SlashAssign: return TokKind::Slash;
    case TokKind::PercentAssign: return TokKind::Percent;
    case TokKind::ShlAssign: return TokKind::Shl;
    case TokKind::ShrAssign: return TokKind::Shr;
    case TokKind::AmpAssign: return TokKind::Amp;
    case TokKind::PipeAssign: return TokKind::Pipe;
    case TokKind::CaretAssign: return TokKind::Caret;
    default: return K;
    }
  }

  RValue genBinary(Expr *E) {
    // Short-circuit operators as values: materialize through a phi.
    if (E->Op == TokKind::AmpAmp || E->Op == TokKind::PipePipe) {
      BasicBlock *TBB = CurFn->createBlock("scc.true");
      BasicBlock *FBB = CurFn->createBlock("scc.false");
      BasicBlock *End = CurFn->createBlock("scc.end");
      genCond(E, TBB, FBB);
      IRB.setInsertPoint(TBB);
      IRB.createJmp(End);
      IRB.setInsertPoint(FBB);
      IRB.createJmp(End);
      IRB.setInsertPoint(End);
      Instruction *Phi = IRB.createPhi("scc");
      IRBuilder::addPhiIncoming(Phi, IRB.getInt(1), TBB);
      IRBuilder::addPhiIncoming(Phi, IRB.getInt(0), FBB);
      return {Phi, Types.intTy()};
    }
    RValue L = genRValue(E->Kids[0].get());
    RValue R = genRValue(E->Kids[1].get());
    return applyBinary(E->Op, L, R, E->Loc);
  }

  RValue applyBinary(TokKind Op, RValue L, RValue R, SourceLoc Loc) {
    if (Diags.hasErrors())
      return {IRB.getInt(0), Types.intTy()};
    bool LPtr = Types.isPtr(L.TypeId), RPtr = Types.isPtr(R.TypeId);

    // Pointer arithmetic.
    if (Op == TokKind::Plus && (LPtr || RPtr) && !(LPtr && RPtr)) {
      RValue Ptr = LPtr ? L : R;
      RValue Idx = LPtr ? R : L;
      int Elem = Types.get(Ptr.TypeId).Elem;
      Instruction *G = IRB.createGep(Ptr.V, Idx.V,
                                     int32_t(Types.sizeOf(Elem)), 0, "pa");
      return {G, Ptr.TypeId};
    }
    if (Op == TokKind::Minus && LPtr && !RPtr) {
      int Elem = Types.get(L.TypeId).Elem;
      Instruction *Neg = IRB.createSub(IRB.getInt(0), R.V, "nidx");
      Instruction *G =
          IRB.createGep(L.V, Neg, int32_t(Types.sizeOf(Elem)), 0, "pa");
      return {G, L.TypeId};
    }
    if (Op == TokKind::Minus && LPtr && RPtr) {
      int Elem = Types.get(L.TypeId).Elem;
      Instruction *Diff = IRB.createSub(L.V, R.V, "pd");
      Instruction *Div = IRB.createBinary(
          Opcode::SDiv, Diff, IRB.getInt(int32_t(Types.sizeOf(Elem))),
          "pdiv");
      return {Div, Types.intTy()};
    }

    bool Unsigned = isUnsignedTy(L.TypeId) || isUnsignedTy(R.TypeId);
    int ResultTy = Unsigned ? Types.uintTy() : Types.intTy();
    switch (Op) {
    case TokKind::Plus:
      return {IRB.createAdd(L.V, R.V, "add"), ResultTy};
    case TokKind::Minus:
      return {IRB.createSub(L.V, R.V, "sub"), ResultTy};
    case TokKind::Star:
      return {IRB.createMul(L.V, R.V, "mul"), ResultTy};
    case TokKind::Slash:
      return {IRB.createBinary(Unsigned ? Opcode::UDiv : Opcode::SDiv, L.V,
                               R.V, "div"),
              ResultTy};
    case TokKind::Percent:
      return {IRB.createBinary(Unsigned ? Opcode::URem : Opcode::SRem, L.V,
                               R.V, "rem"),
              ResultTy};
    case TokKind::Shl:
      return {IRB.createBinary(Opcode::Shl, L.V, R.V, "shl"), L.TypeId};
    case TokKind::Shr:
      return {IRB.createBinary(isUnsignedTy(L.TypeId) ? Opcode::LShr
                                                      : Opcode::AShr,
                               L.V, R.V, "shr"),
              L.TypeId};
    case TokKind::Amp:
      return {IRB.createBinary(Opcode::And, L.V, R.V, "and"), ResultTy};
    case TokKind::Pipe:
      return {IRB.createBinary(Opcode::Or, L.V, R.V, "or"), ResultTy};
    case TokKind::Caret:
      return {IRB.createBinary(Opcode::Xor, L.V, R.V, "xor"), ResultTy};
    case TokKind::Lt:
    case TokKind::Gt:
    case TokKind::Le:
    case TokKind::Ge:
    case TokKind::EqEq:
    case TokKind::NotEq: {
      CmpPred P;
      switch (Op) {
      case TokKind::Lt: P = Unsigned ? CmpPred::ULT : CmpPred::SLT; break;
      case TokKind::Gt: P = Unsigned ? CmpPred::UGT : CmpPred::SGT; break;
      case TokKind::Le: P = Unsigned ? CmpPred::ULE : CmpPred::SLE; break;
      case TokKind::Ge: P = Unsigned ? CmpPred::UGE : CmpPred::SGE; break;
      case TokKind::EqEq: P = CmpPred::EQ; break;
      default: P = CmpPred::NE; break;
      }
      return {IRB.createICmp(P, L.V, R.V, "cmp"), Types.intTy()};
    }
    default:
      Diags.error(Loc, "unsupported binary operator");
      return {IRB.getInt(0), Types.intTy()};
    }
  }

  RValue genCall(Expr *E) {
    // The output-port builtin.
    if (E->Name == "__out") {
      if (E->Kids.size() != 1) {
        Diags.error(E->Loc, "__out takes exactly one argument");
        return {IRB.getInt(0), Types.intTy()};
      }
      RValue V = genRValue(E->Kids[0].get());
      IRB.createOut(V.V);
      return {IRB.getInt(0), Types.intTy()};
    }
    Function *Callee = M->getFunction(E->Name);
    if (!Callee) {
      Diags.error(E->Loc, "call to undeclared function '" + E->Name + "'");
      return {IRB.getInt(0), Types.intTy()};
    }
    if (Callee->getNumParams() != E->Kids.size()) {
      Diags.error(E->Loc, "wrong number of arguments to '" + E->Name +
                              "'");
      return {IRB.getInt(0), Types.intTy()};
    }
    std::vector<Value *> Args;
    const FunctionDecl *FD = FuncDecls.at(Callee);
    for (unsigned I = 0; I != E->Kids.size(); ++I) {
      RValue A = genRValue(E->Kids[I].get());
      if (Diags.hasErrors())
        return {IRB.getInt(0), Types.intTy()};
      Args.push_back(convertTo(A, FD->Params[I].TypeId).V);
    }
    Instruction *C = IRB.createCall(Callee, std::move(Args), E->Name);
    return {Callee->returnsValue() ? static_cast<Value *>(C)
                                   : static_cast<Value *>(IRB.getInt(0)),
            FD->RetTypeId};
  }

  // --- Lvalues ---------------------------------------------------------------------------
  LValue genLValue(Expr *E) {
    if (Diags.hasErrors())
      return {IRB.getInt(0), Types.intTy()};
    switch (E->K) {
    case Expr::Kind::Ident: {
      if (const LocalVar *LV = lookupLocal(E->Name))
        return {LV->Addr, LV->TypeId};
      if (GlobalVariable *G = M->getGlobal(E->Name))
        return {G, GlobalTypes.at(G)};
      Diags.error(E->Loc, "use of undeclared identifier '" + E->Name +
                              "'");
      return {IRB.getInt(0), Types.intTy()};
    }
    case Expr::Kind::Unary:
      if (E->Op == TokKind::Star) {
        RValue P = genRValue(E->Kids[0].get());
        if (Diags.hasErrors())
          return {IRB.getInt(0), Types.intTy()};
        if (!Types.isPtr(P.TypeId)) {
          Diags.error(E->Loc, "dereference of a non-pointer");
          return {IRB.getInt(0), Types.intTy()};
        }
        return {P.V, Types.get(P.TypeId).Elem};
      }
      break;
    case Expr::Kind::Index: {
      RValue Base = genRValue(E->Kids[0].get()); // Decays arrays.
      RValue Idx = genRValue(E->Kids[1].get());
      if (Diags.hasErrors())
        return {IRB.getInt(0), Types.intTy()};
      if (!Types.isPtr(Base.TypeId)) {
        Diags.error(E->Loc, "subscript of a non-pointer/array");
        return {IRB.getInt(0), Types.intTy()};
      }
      int Elem = Types.get(Base.TypeId).Elem;
      Instruction *Addr = IRB.createGep(
          Base.V, Idx.V, int32_t(Types.sizeOf(Elem)), 0, "idx");
      return {Addr, Elem};
    }
    default:
      break;
    }
    Diags.error(E->Loc, "expression is not assignable");
    return {IRB.getInt(0), Types.intTy()};
  }

  TranslationUnit &TU;
  TypeTable &Types;
  DiagnosticEngine &Diags;
  std::unique_ptr<Module> M;
  IRBuilder IRB;

  Function *CurFn = nullptr;
  const FunctionDecl *CurDecl = nullptr;
  std::vector<std::unordered_map<std::string, LocalVar>> Scopes;
  std::vector<BasicBlock *> BreakTargets, ContinueTargets;
  std::unordered_map<const GlobalVariable *, int> GlobalTypes;
  std::unordered_map<const Function *, const FunctionDecl *> FuncDecls;
};

} // namespace

std::unique_ptr<Module> wario::generateIR(TranslationUnit &TU,
                                          const std::string &ModuleName,
                                          DiagnosticEngine &Diags) {
  if (Diags.hasErrors())
    return nullptr;
  CodeGen CG(TU, ModuleName, Diags);
  return CG.run();
}
