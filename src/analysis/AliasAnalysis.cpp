#include "analysis/AliasAnalysis.h"

#include <unordered_set>

using namespace wario;

namespace {

/// True if the address of \p Alloca can leak out of direct address
/// arithmetic: stored to memory, passed to a call, or combined through
/// non-Gep arithmetic. Non-escaping allocas cannot alias unknown pointers.
bool addressEscapes(const Instruction *Alloca) {
  std::vector<const Value *> Work{Alloca};
  std::unordered_set<const Value *> Seen;
  while (!Work.empty()) {
    const Value *V = Work.back();
    Work.pop_back();
    if (!Seen.insert(V).second)
      continue;
    for (const Instruction *U : V->users()) {
      switch (U->getOpcode()) {
      case Opcode::Load:
        break; // Reading through the pointer does not leak it.
      case Opcode::Store:
        if (U->getStoredValue() == V)
          return true; // The pointer itself is written to memory.
        break;
      case Opcode::Gep:
      case Opcode::Phi:
      case Opcode::Select:
        Work.push_back(U); // Derived pointer; keep following.
        break;
      default:
        return true; // Calls, arithmetic, returns: assume it escapes.
      }
    }
  }
  return false;
}

} // namespace

namespace {

/// SCEV-lite: strips constant additions from an index expression, so the
/// unrolled `w[t]`, `w[t+1]`, ... all decompose to the same symbolic base
/// plus distinct constant offsets. Returns the underlying value and
/// accumulates the constant into \p Offset.
const Value *stripConstantAdds(const Value *V, int64_t &Offset) {
  for (unsigned Guard = 0; Guard != 16; ++Guard) {
    const auto *I = dyn_cast<Instruction>(V);
    if (!I)
      return V;
    if (I->getOpcode() == Opcode::Add) {
      if (const auto *C = dyn_cast<Constant>(I->getOperand(1))) {
        Offset += C->getValue();
        V = I->getOperand(0);
        continue;
      }
      if (const auto *C = dyn_cast<Constant>(I->getOperand(0))) {
        Offset += C->getValue();
        V = I->getOperand(1);
        continue;
      }
      return V;
    }
    if (I->getOpcode() == Opcode::Sub) {
      if (const auto *C = dyn_cast<Constant>(I->getOperand(1))) {
        Offset -= C->getValue();
        V = I->getOperand(0);
        continue;
      }
      return V;
    }
    return V;
  }
  return V;
}

} // namespace

MemLocation AliasAnalysis::decompose(const Value *Addr,
                                     unsigned Depth) const {
  MemLocation Loc;
  if (Depth > 16)
    return Loc; // Give up on deep chains / phi cycles.

  if (const auto *G = dyn_cast<GlobalVariable>(Addr)) {
    Loc.Base = G;
    Loc.HasConstOffset = true;
    return Loc;
  }
  const auto *I = dyn_cast<Instruction>(Addr);
  if (!I)
    return Loc; // Arguments, constants: unknown.

  if (I->getOpcode() == Opcode::Alloca) {
    Loc.Base = I;
    Loc.HasConstOffset = true;
    return Loc;
  }

  if (I->getOpcode() == Opcode::Gep) {
    MemLocation Inner = decompose(I->getGepBase(), Depth + 1);
    if (!Inner.isIdentified())
      return Loc;
    Value *Index = I->getGepIndex();
    // Fold a constant index into the offset.
    int64_t Extra = I->getGepOffset();
    if (const auto *CIdx = dyn_cast<Constant>(Index ? Index : nullptr)) {
      Extra += int64_t(CIdx->getValue()) * I->getGepScale();
      Index = nullptr;
    }
    if (!Index) {
      if (Inner.HasConstOffset) {
        Loc.Base = Inner.Base;
        Loc.HasConstOffset = true;
        Loc.ConstOffset = Inner.ConstOffset + int32_t(Extra);
        return Loc;
      }
      // Constant offset on top of a variable index.
      if (Precision == AliasPrecision::Conservative)
        return Loc;
      Loc.Base = Inner.Base;
      Loc.Index = Inner.Index;
      Loc.Scale = Inner.Scale;
      Loc.ConstOffset = Inner.ConstOffset + int32_t(Extra);
      return Loc;
    }
    // Variable index. The conservative level models the baseline: it
    // cannot see through variable subscripts at all.
    if (Precision == AliasPrecision::Conservative)
      return Loc;
    Loc.Base = Inner.Base;
    if (Inner.HasConstOffset) {
      // SCEV-lite: fold constant addends of the index into the byte
      // offset (i and i+2 share the symbolic base i).
      int64_t IdxOffset = 0;
      const Value *IdxBase = stripConstantAdds(Index, IdxOffset);
      Loc.Index = IdxBase;
      Loc.Scale = I->getGepScale();
      Loc.ConstOffset = Inner.ConstOffset + int32_t(Extra) +
                        int32_t(IdxOffset * I->getGepScale());
    }
    // else: two variable indices; keep only the base.
    return Loc;
  }

  if (Precision == AliasPrecision::Precise &&
      (I->getOpcode() == Opcode::Phi || I->getOpcode() == Opcode::Select)) {
    // If every incoming pointer shares one base, the result does too.
    unsigned First = I->getOpcode() == Opcode::Select ? 1 : 0;
    const Value *CommonBase = nullptr;
    for (unsigned J = First, E = I->getNumOperands(); J != E; ++J) {
      MemLocation Sub = decompose(I->getOperand(J), Depth + 1);
      if (!Sub.isIdentified())
        return Loc;
      if (CommonBase && Sub.Base != CommonBase)
        return Loc;
      CommonBase = Sub.Base;
    }
    Loc.Base = CommonBase; // Offset unknown.
    return Loc;
  }

  return Loc; // Loads, calls, arithmetic results: unknown.
}

MemLocation AliasAnalysis::getLocation(const Value *Addr) const {
  if (!CacheEnabled)
    return decompose(Addr, 0);
  auto It = LocationCache.find(Addr);
  if (It != LocationCache.end())
    return It->second;
  MemLocation Loc = decompose(Addr, 0);
  LocationCache.emplace(Addr, Loc);
  return Loc;
}

AliasResult AliasAnalysis::alias(const Value *AddrA, uint8_t SizeA,
                                 const Value *AddrB, uint8_t SizeB,
                                 bool CrossIteration) const {
  if (!CacheEnabled)
    return aliasUncached(AddrA, SizeA, AddrB, SizeB, CrossIteration);
  // alias() is symmetric in its two accesses, so canonicalize the key:
  // lower pointer first (sizes travel with their address; tie-break on
  // size when both addresses are the same Value).
  QueryKey K{AddrA, AddrB, SizeA, SizeB, CrossIteration};
  if (AddrB < AddrA || (AddrA == AddrB && SizeB < SizeA)) {
    std::swap(K.A, K.B);
    std::swap(K.SizeA, K.SizeB);
  }
  auto It = QueryCache.find(K);
  if (It != QueryCache.end())
    return It->second;
  AliasResult R = aliasUncached(AddrA, SizeA, AddrB, SizeB, CrossIteration);
  QueryCache.emplace(K, R);
  return R;
}

AliasResult AliasAnalysis::aliasUncached(const Value *AddrA, uint8_t SizeA,
                                         const Value *AddrB, uint8_t SizeB,
                                         bool CrossIteration) const {
  if (AddrA == AddrB && !CrossIteration)
    return SizeA == SizeB ? AliasResult::MustAlias : AliasResult::MayAlias;

  MemLocation A = getLocation(AddrA);
  MemLocation B = getLocation(AddrB);

  if (A.isIdentified() && B.isIdentified()) {
    if (A.Base != B.Base)
      return AliasResult::NoAlias; // Distinct identified objects.
    if (A.HasConstOffset && B.HasConstOffset) {
      // Loop-invariant addresses: iteration context is irrelevant.
      int64_t LoA = A.ConstOffset, HiA = LoA + SizeA;
      int64_t LoB = B.ConstOffset, HiB = LoB + SizeB;
      if (HiA <= LoB || HiB <= LoA)
        return AliasResult::NoAlias;
      if (LoA == LoB && SizeA == SizeB)
        return AliasResult::MustAlias;
      return AliasResult::MayAlias;
    }
    if (!A.HasConstOffset && !B.HasConstOffset && A.Index && B.Index &&
        A.Index == B.Index && A.Scale == B.Scale) {
      if (!CrossIteration) {
        // Same iteration: the symbolic index denotes one runtime value,
        // so constant-offset range reasoning applies directly.
        int64_t LoA = A.ConstOffset, HiA = LoA + SizeA;
        int64_t LoB = B.ConstOffset, HiB = LoB + SizeB;
        if (HiA <= LoB || HiB <= LoA)
          return AliasResult::NoAlias;
        if (LoA == LoB && SizeA == SizeB)
          return AliasResult::MustAlias;
        return AliasResult::MayAlias;
      }
      // Different iterations: addresses are S*i + oA vs S*j + oB for
      // arbitrary integers i, j. They stay disjoint for every (i, j)
      // exactly when the offset residues keep the ranges apart within
      // one stride.
      int64_t S = A.Scale;
      if (S < 0)
        S = -S;
      if (S > 0 && SizeA <= S && SizeB <= S) {
        int64_t D = (B.ConstOffset - A.ConstOffset) % S;
        if (D < 0)
          D += S;
        // Range A occupies [0, SizeA) mod S; B starts at D.
        if (D >= SizeA && D <= S - SizeB)
          return AliasResult::NoAlias;
      }
      return AliasResult::MayAlias;
    }
    return AliasResult::MayAlias;
  }

  // One side unknown. A non-escaping alloca cannot be reached through an
  // unknown pointer (precise level only; the baseline lacks this power).
  if (Precision == AliasPrecision::Precise) {
    const MemLocation &Known = A.isIdentified() ? A : B;
    if (Known.isIdentified()) {
      if (const auto *AI = dyn_cast<Instruction>(Known.Base))
        if (AI->getOpcode() == Opcode::Alloca && !addressEscapes(AI))
          return AliasResult::NoAlias;
    }
  }
  return AliasResult::MayAlias;
}

AliasResult AliasAnalysis::alias(const Instruction *A,
                                 const Instruction *B,
                                 bool CrossIteration) const {
  assert(A->isMemoryAccess() && B->isMemoryAccess() &&
         "alias query on non-memory instructions");
  return alias(A->getAddressOperand(), A->getAccessSize(),
               B->getAddressOperand(), B->getAccessSize(),
               CrossIteration);
}
