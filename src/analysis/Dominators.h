//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator and post-dominator trees, via the Cooper-Harvey-Kennedy
/// iterative algorithm.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_ANALYSIS_DOMINATORS_H
#define WARIO_ANALYSIS_DOMINATORS_H

#include "ir/Function.h"

#include <unordered_map>

namespace wario {

/// Dominator tree over the reachable blocks of a function.
///
/// With \p Post = true this computes the post-dominator tree instead,
/// using a virtual exit node that all Ret-terminated blocks lead to
/// (blocks on infinite loops with no path to any exit get no parent).
class DominatorTree {
public:
  explicit DominatorTree(const Function &F, bool Post = false);

  /// True if \p A dominates (post-dominates) \p B. A block dominates
  /// itself. Returns false if either block is unreachable (resp. cannot
  /// reach an exit).
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

  /// Instruction-granular dominance: within one block, list order decides;
  /// an instruction dominates itself.
  bool dominates(const Instruction *A, const Instruction *B) const;

  /// The immediate dominator, or nullptr for the root / unreachable blocks.
  BasicBlock *getIDom(const BasicBlock *BB) const;

  /// True if \p BB was reachable when the tree was built (for post mode:
  /// can reach an exit).
  bool contains(const BasicBlock *BB) const {
    return Info.count(BB) != 0;
  }

  /// Blocks in reverse post-order of the (forward) CFG walk used to build
  /// the tree. For post-dominators this is an RPO of the reversed CFG.
  const std::vector<BasicBlock *> &getRPO() const { return RPO; }

  bool isPostDom() const { return Post; }

private:
  struct Node {
    BasicBlock *IDom = nullptr;
    unsigned RPONum = 0;
    // DFS-in/out numbering of the dominator tree for O(1) queries.
    unsigned In = 0, Out = 0;
  };

  bool Post;
  std::vector<BasicBlock *> RPO;
  std::unordered_map<const BasicBlock *, Node> Info;
};

} // namespace wario

#endif // WARIO_ANALYSIS_DOMINATORS_H
