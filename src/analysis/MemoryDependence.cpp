#include "analysis/MemoryDependence.h"

using namespace wario;

CFGReachability::CFGReachability(const Function &F, const LoopInfo &LI) {
  unsigned N = 0;
  for (const BasicBlock *BB : F)
    Index[BB] = N++;
  Full.assign(N, std::vector<bool>(N, false));
  Forward.assign(N, std::vector<bool>(N, false));

  // BFS from every block; N is small for embedded code.
  for (const BasicBlock *Start : F) {
    unsigned S = Index.at(Start);
    for (int UseBackEdges = 0; UseBackEdges != 2; ++UseBackEdges) {
      auto &Row = UseBackEdges ? Full[S] : Forward[S];
      std::vector<const BasicBlock *> Work{Start};
      while (!Work.empty()) {
        const BasicBlock *BB = Work.back();
        Work.pop_back();
        for (const BasicBlock *Succ : BB->successors()) {
          if (!UseBackEdges && LI.isBackEdge(BB, Succ))
            continue;
          unsigned T = Index.at(Succ);
          if (Row[T])
            continue;
          Row[T] = true;
          Work.push_back(Succ);
        }
      }
    }
  }
}

bool CFGReachability::reaches(const BasicBlock *From,
                              const BasicBlock *To) const {
  return Full[Index.at(From)][Index.at(To)];
}

bool CFGReachability::forwardReaches(const BasicBlock *From,
                                     const BasicBlock *To) const {
  return Forward[Index.at(From)][Index.at(To)];
}

MemoryDependence::MemoryDependence(const Function &F, const AliasAnalysis &AA,
                                   const LoopInfo &LI)
    : Reach(F, LI) {
  // Collect memory accesses with their block positions, in program order.
  struct Access {
    Instruction *I;
    const BasicBlock *BB;
    unsigned Pos;
    bool IsLoad; ///< Hoisted out of the O(N^2) pair loop below.
  };
  std::vector<Access> Accesses;
  for (const BasicBlock *BB : F) {
    unsigned Pos = 0;
    for (Instruction *I : *BB) {
      if (I->isMemoryAccess())
        Accesses.push_back({I, BB, Pos, I->getOpcode() == Opcode::Load});
      ++Pos;
    }
  }

  // X can execute and Y follow within the same iteration instance
  // (no back edge on the path).
  auto DirectFollow = [&](const Access &X, const Access &Y) {
    if (X.BB == Y.BB)
      return X.Pos < Y.Pos;
    return Reach.forwardReaches(X.BB, Y.BB);
  };
  // X can execute and Y follow around at least one back edge. Both
  // sitting in any common loop suffices for that to be realizable.
  auto CarriedFollow = [&](const Access &X, const Access &Y) {
    if (X.BB == Y.BB)
      return Reach.onCycle(X.BB);
    if (!Reach.reaches(X.BB, Y.BB))
      return false;
    Loop *LX = LI.getLoopFor(X.BB);
    for (Loop *L = LX; L; L = L->getParent())
      if (L->contains(Y.BB))
        return true;
    return !Reach.forwardReaches(X.BB, Y.BB); // Reachable only via cycle.
  };

  // A pair can produce *two* dependences: a direct one (same iteration
  // instance: index expressions denote the same values) and a carried one
  // (different iterations: cross-iteration aliasing). Both matter — e.g.
  // `w[t] = f(w[t+3])` has no direct WAR (disjoint within an iteration)
  // but a real carried WAR three iterations later.
  // AA memoizes each symmetric (address, size) pair verdict, so the
  // second half of this ordered-pair sweep costs hash lookups only.
  for (const Access &A : Accesses) {
    for (const Access &B : Accesses) {
      if (A.I == B.I)
        continue;
      if (A.IsLoad && B.IsLoad)
        continue;
      DepKind Kind = A.IsLoad   ? DepKind::WAR
                     : B.IsLoad ? DepKind::RAW
                                : DepKind::WAW;
      if (DirectFollow(A, B)) {
        AliasResult AR = AA.alias(A.I, B.I, /*CrossIteration=*/false);
        if (AR != AliasResult::NoAlias)
          Deps.push_back({A.I, B.I, Kind, /*LoopCarried=*/false, AR});
      }
      if (CarriedFollow(A, B)) {
        AliasResult AR = AA.alias(A.I, B.I, /*CrossIteration=*/true);
        if (AR != AliasResult::NoAlias)
          Deps.push_back({A.I, B.I, Kind, /*LoopCarried=*/true, AR});
      }
    }
  }
}

std::vector<const MemDep *> MemoryDependence::wars() const {
  std::vector<const MemDep *> Result;
  for (const MemDep &D : Deps)
    if (D.Kind == DepKind::WAR)
      Result.push_back(&D);
  return Result;
}

std::vector<const MemDep *> MemoryDependence::warsIn(const Loop &L) const {
  std::vector<const MemDep *> Result;
  for (const MemDep &D : Deps)
    if (D.Kind == DepKind::WAR && L.contains(D.Src) && L.contains(D.Dst))
      Result.push_back(&D);
  return Result;
}

std::vector<const MemDep *> MemoryDependence::rawsIn(const Loop &L) const {
  std::vector<const MemDep *> Result;
  for (const MemDep &D : Deps)
    if (D.Kind == DepKind::RAW && L.contains(D.Src) && L.contains(D.Dst))
      Result.push_back(&D);
  return Result;
}
