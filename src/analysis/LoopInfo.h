//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection and the Loop abstraction consumed by the Loop
/// Write Clusterer (WARio Algorithm 1) and the loop unroller.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_ANALYSIS_LOOPINFO_H
#define WARIO_ANALYSIS_LOOPINFO_H

#include "analysis/Dominators.h"

#include <memory>
#include <unordered_set>

namespace wario {

/// One natural loop: header plus the blocks that can reach a latch without
/// leaving through the header.
class Loop {
public:
  BasicBlock *getHeader() const { return Header; }
  Loop *getParent() const { return Parent; }
  const std::vector<Loop *> &getSubLoops() const { return SubLoops; }
  unsigned getDepth() const { return Depth; }

  bool contains(const BasicBlock *BB) const { return Blocks.count(BB) != 0; }
  bool contains(const Instruction *I) const {
    return I->getParent() && contains(I->getParent());
  }
  const std::vector<BasicBlock *> &blocks() const { return BlockList; }

  /// The unique in-loop predecessor of the header, or nullptr if the loop
  /// has multiple latches.
  BasicBlock *getLatch() const;

  /// All latches (in-loop predecessors of the header).
  std::vector<BasicBlock *> getLatches() const;

  /// The unique out-of-loop predecessor of the header, or nullptr.
  BasicBlock *getPreheader() const;

  /// Edges leaving the loop, as (exiting block, outside successor) pairs.
  std::vector<std::pair<BasicBlock *, BasicBlock *>> getExitEdges() const;

private:
  friend class LoopInfo;

  BasicBlock *Header = nullptr;
  Loop *Parent = nullptr;
  std::vector<Loop *> SubLoops;
  unsigned Depth = 1;
  std::unordered_set<const BasicBlock *> Blocks;
  std::vector<BasicBlock *> BlockList; // Deterministic order.
};

/// Finds all natural loops of a function.
class LoopInfo {
public:
  LoopInfo(const Function &F, const DominatorTree &DT);

  /// All loops, outermost first, in a deterministic order.
  const std::vector<Loop *> &loops() const { return AllLoops; }

  /// Innermost loop containing \p BB, or nullptr.
  Loop *getLoopFor(const BasicBlock *BB) const {
    auto It = BlockMap.find(BB);
    return It == BlockMap.end() ? nullptr : It->second;
  }

  /// Loop nesting depth of \p BB (0 = not in any loop).
  unsigned getLoopDepth(const BasicBlock *BB) const {
    Loop *L = getLoopFor(BB);
    return L ? L->getDepth() : 0;
  }

  /// True if the CFG edge From->To is a back edge of some natural loop.
  bool isBackEdge(const BasicBlock *From, const BasicBlock *To) const {
    return BackEdges.count({From, To}) != 0;
  }

private:
  struct PairHash {
    size_t operator()(
        const std::pair<const BasicBlock *, const BasicBlock *> &P) const {
      return std::hash<const void *>()(P.first) * 31 ^
             std::hash<const void *>()(P.second);
    }
  };

  std::vector<std::unique_ptr<Loop>> Storage;
  std::vector<Loop *> AllLoops;
  std::unordered_map<const BasicBlock *, Loop *> BlockMap;
  std::unordered_set<std::pair<const BasicBlock *, const BasicBlock *>,
                     PairHash>
      BackEdges;
};

} // namespace wario

#endif // WARIO_ANALYSIS_LOOPINFO_H
