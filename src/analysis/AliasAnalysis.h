//===----------------------------------------------------------------------===//
///
/// \file
/// Alias analysis with two precision levels.
///
/// The paper's Ratchet baseline uses LLVM's built-in aliasing while WARio
/// and R-PDG use NOELLE's PDG (built on richer alias analyses). We model
/// that split with two precision levels:
///
///  - Conservative: resolves address expressions only through Gep chains
///    with constant offsets; any variable-indexed access has an unknown
///    base and may-aliases everything. This over-approximates aggressively,
///    like the baseline the paper reports as "disproportionately" over-
///    instrumented.
///  - Precise: tracks bases through variable-indexed Geps, phis and
///    selects, distinguishes identified objects (globals, allocas), and
///    reasons about constant-offset ranges and matching index expressions.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_ANALYSIS_ALIASANALYSIS_H
#define WARIO_ANALYSIS_ALIASANALYSIS_H

#include "ir/Function.h"

#include <unordered_map>
#include <unordered_set>

namespace wario {

enum class AliasResult { NoAlias, MayAlias, MustAlias };

enum class AliasPrecision {
  Conservative, ///< Models the Ratchet baseline's aliasing.
  Precise,      ///< Models the NOELLE PDG used by R-PDG and WARio.
};

/// A decomposed memory address: an identified base object (or unknown)
/// plus either a constant byte offset or a variable index expression.
struct MemLocation {
  /// The identified base (GlobalVariable or Alloca instruction), or
  /// nullptr when the base could not be resolved.
  const Value *Base = nullptr;
  /// True if the full address is Base + ConstOffset.
  bool HasConstOffset = false;
  int32_t ConstOffset = 0;
  /// For single variable-indexed addresses: Base + Index*Scale + Offset.
  const Value *Index = nullptr;
  int32_t Scale = 1;

  bool isIdentified() const { return Base != nullptr; }
};

/// Per-function alias queries at a configurable precision.
///
/// Queries are pure functions of the IR, so results are memoized: address
/// decompositions per Value, and pair verdicts per canonicalized
/// (AddrA, SizeA, AddrB, SizeB, CrossIteration) key — alias() is
/// symmetric, so (A, B) and (B, A) share one entry. The O(N²)
/// access-pair loop in MemoryDependence therefore never re-computes a
/// query it (or any earlier pass holding the same AliasAnalysis) already
/// issued. The caches key on Value pointers: invalidate() (or a fresh
/// AliasAnalysis) is required after the IR is mutated. Instances are not
/// thread-safe; use one per thread.
class AliasAnalysis {
public:
  explicit AliasAnalysis(AliasPrecision P, bool EnableCache = true)
      : Precision(P), CacheEnabled(EnableCache) {}

  AliasPrecision getPrecision() const { return Precision; }

  /// Drops all memoized results (call after mutating the IR).
  void invalidate() const {
    LocationCache.clear();
    QueryCache.clear();
  }

  /// Decomposes the address \p Addr (as used by a load/store).
  MemLocation getLocation(const Value *Addr) const;

  /// May/must/no-alias verdict for two accesses of \p SizeA and \p SizeB
  /// bytes at the given addresses.
  ///
  /// \p CrossIteration matters when address expressions involve loop-
  /// variant values: with it set, the two accesses may execute in
  /// *different* iterations, so a shared symbolic index denotes two
  /// different runtime values. Equal symbolic addresses then only
  /// MayAlias, and constant-offset disjointness weakens to a
  /// residue-class argument (a[2i] vs a[2i'+1] still cannot collide).
  AliasResult alias(const Value *AddrA, uint8_t SizeA, const Value *AddrB,
                    uint8_t SizeB, bool CrossIteration = false) const;

  /// Convenience: verdict for two memory-access instructions.
  AliasResult alias(const Instruction *A, const Instruction *B,
                    bool CrossIteration = false) const;

private:
  MemLocation decompose(const Value *Addr, unsigned Depth) const;
  AliasResult aliasUncached(const Value *AddrA, uint8_t SizeA,
                            const Value *AddrB, uint8_t SizeB,
                            bool CrossIteration) const;

  /// Canonicalized pair-query key: the lower pointer first (alias() is
  /// symmetric), sizes in matching order, plus the cross-iteration flag.
  struct QueryKey {
    const Value *A;
    const Value *B;
    uint8_t SizeA;
    uint8_t SizeB;
    bool Cross;
    bool operator==(const QueryKey &O) const {
      return A == O.A && B == O.B && SizeA == O.SizeA && SizeB == O.SizeB &&
             Cross == O.Cross;
    }
  };
  struct QueryKeyHash {
    size_t operator()(const QueryKey &K) const {
      size_t H = std::hash<const void *>()(K.A);
      H = H * 1000003u ^ std::hash<const void *>()(K.B);
      H = H * 1000003u ^
          (size_t(K.SizeA) << 10 | size_t(K.SizeB) << 2 | size_t(K.Cross));
      return H;
    }
  };

  AliasPrecision Precision;
  bool CacheEnabled;
  mutable std::unordered_map<const Value *, MemLocation> LocationCache;
  mutable std::unordered_map<QueryKey, AliasResult, QueryKeyHash> QueryCache;
};

} // namespace wario

#endif // WARIO_ANALYSIS_ALIASANALYSIS_H
