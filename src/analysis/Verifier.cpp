#include "analysis/Verifier.h"

#include "analysis/Dominators.h"
#include "ir/IRPrinter.h"

#include <algorithm>
#include <sstream>

using namespace wario;

namespace {

class VerifierImpl {
public:
  explicit VerifierImpl(const Function &F) : F(F) {}

  bool run() {
    if (F.isDeclaration())
      return true;
    checkStructure();
    if (Bad) // Dominance checks need a structurally sound CFG.
      return false;
    checkSSA();
    return !Bad;
  }

  std::string errors() const { return OS.str(); }

private:
  void fail(const std::string &Msg) {
    OS << "in @" << F.getName() << ": " << Msg << '\n';
    Bad = true;
  }
  void failAt(const Instruction *I, const std::string &Msg) {
    OS << "in @" << F.getName() << ", at '" << printInstruction(*I)
       << "': " << Msg << '\n';
    Bad = true;
  }

  void checkStructure() {
    if (!F.getEntryBlock()->predecessors().empty())
      fail("entry block has predecessors");

    for (const BasicBlock *BB : F) {
      if (!BB->getTerminator()) {
        fail("block '" + BB->getName() + "' has no terminator");
        continue;
      }
      bool SeenNonPhi = false;
      for (const Instruction *I : *BB) {
        if (I->isTerminator() && I != BB->back())
          failAt(I, "terminator in the middle of a block");
        if (I->getOpcode() == Opcode::Phi) {
          if (SeenNonPhi)
            failAt(I, "phi after a non-phi instruction");
        } else {
          SeenNonPhi = true;
        }
        checkInstruction(I);
      }
    }
  }

  void checkInstruction(const Instruction *I) {
    auto RequireOps = [&](unsigned N) {
      if (I->getNumOperands() != N)
        failAt(I, "expected " + std::to_string(N) + " operands, has " +
                      std::to_string(I->getNumOperands()));
    };
    switch (I->getOpcode()) {
    case Opcode::Alloca:
      RequireOps(0);
      // Static frame layout (and single-execution semantics) require all
      // allocas to sit in the entry block.
      if (I->getParent() != F.getEntryBlock())
        failAt(I, "alloca outside the entry block");
      break;
    case Opcode::Load:
    case Opcode::Jmp:
      if (I->getOpcode() == Opcode::Load)
        RequireOps(1);
      if (I->getOpcode() == Opcode::Jmp && I->getNumBlockOperands() != 1)
        failAt(I, "jmp needs exactly one target");
      break;
    case Opcode::Store:
      RequireOps(2);
      break;
    case Opcode::Gep:
      if (I->getNumOperands() < 1 || I->getNumOperands() > 2)
        failAt(I, "gep needs a base and at most one index");
      break;
    case Opcode::ICmp:
      RequireOps(2);
      break;
    case Opcode::Select:
      RequireOps(3);
      break;
    case Opcode::Call:
      if (!I->getCallee())
        failAt(I, "call without callee");
      else if (I->getNumOperands() != I->getCallee()->getNumParams())
        failAt(I, "call arity mismatch");
      break;
    case Opcode::Br:
      RequireOps(1);
      if (I->getNumBlockOperands() != 2)
        failAt(I, "br needs exactly two targets");
      break;
    case Opcode::Ret:
      if (F.returnsValue() && I->getNumOperands() != 1)
        failAt(I, "ret must carry a value in a value-returning function");
      if (!F.returnsValue() && I->getNumOperands() != 0)
        failAt(I, "ret carries a value in a void function");
      break;
    case Opcode::Phi: {
      if (I->getNumOperands() != I->getNumBlockOperands()) {
        failAt(I, "phi value/block operand count mismatch");
        break;
      }
      // Incoming blocks must be exactly the predecessors, each once.
      std::vector<const BasicBlock *> Preds(
          I->getParent()->predecessors().begin(),
          I->getParent()->predecessors().end());
      std::vector<const BasicBlock *> Incoming;
      for (unsigned J = 0, E = I->getNumBlockOperands(); J != E; ++J)
        Incoming.push_back(I->getBlockOperand(J));
      std::sort(Preds.begin(), Preds.end());
      std::sort(Incoming.begin(), Incoming.end());
      if (Preds != Incoming)
        failAt(I, "phi incoming blocks do not match predecessors");
      break;
    }
    default:
      if (I->isBinaryOp())
        RequireOps(2);
      break;
    }

    for (unsigned J = 0, E = I->getNumOperands(); J != E; ++J) {
      const Value *Op = I->getOperand(J);
      if (const auto *OpI = dyn_cast<Instruction>(Op)) {
        if (!OpI->producesValue())
          failAt(I, "operand does not produce a value");
        if (!OpI->getParent())
          failAt(I, "operand instruction is detached");
      }
      if (const auto *A = dyn_cast<Argument>(Op))
        if (A->getParent() != &F)
          failAt(I, "argument of a different function used as operand");
    }
  }

  void checkSSA() {
    DominatorTree DT(F);
    for (const BasicBlock *BB : F) {
      if (!DT.contains(BB))
        continue; // Skip unreachable code.
      for (const Instruction *I : *BB) {
        for (unsigned J = 0, E = I->getNumOperands(); J != E; ++J) {
          const auto *Def = dyn_cast<Instruction>(I->getOperand(J));
          if (!Def || !DT.contains(Def->getParent()))
            continue;
          if (I->getOpcode() == Opcode::Phi) {
            // The def must dominate the end of the incoming block.
            const BasicBlock *In = I->getBlockOperand(J);
            if (!DT.contains(In))
              continue;
            const Instruction *Term = In->getTerminator();
            if (!DT.dominates(Def, Term))
              failAt(I, "phi incoming value does not dominate incoming "
                        "block terminator");
          } else if (!DT.dominates(Def, I) || Def == I) {
            failAt(I, "operand '" + printInstruction(*Def) +
                          "' does not dominate use");
          }
        }
      }
    }
  }

  const Function &F;
  std::ostringstream OS;
  bool Bad = false;
};

} // namespace

bool wario::verifyFunction(const Function &F, std::string *Errors) {
  VerifierImpl V(F);
  bool Ok = V.run();
  if (!Ok && Errors)
    *Errors += V.errors();
  return Ok;
}

bool wario::verifyModule(const Module &M, std::string *Errors) {
  bool Ok = true;
  for (const auto &F : M.functions())
    Ok &= verifyFunction(*F, Errors);
  return Ok;
}
