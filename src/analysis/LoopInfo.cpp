#include "analysis/LoopInfo.h"

#include <algorithm>

using namespace wario;

BasicBlock *Loop::getLatch() const {
  std::vector<BasicBlock *> Latches = getLatches();
  return Latches.size() == 1 ? Latches.front() : nullptr;
}

std::vector<BasicBlock *> Loop::getLatches() const {
  std::vector<BasicBlock *> Latches;
  for (BasicBlock *P : Header->predecessors())
    if (contains(P))
      Latches.push_back(P);
  return Latches;
}

BasicBlock *Loop::getPreheader() const {
  BasicBlock *Pre = nullptr;
  for (BasicBlock *P : Header->predecessors()) {
    if (contains(P))
      continue;
    if (Pre)
      return nullptr; // Multiple outside predecessors.
    Pre = P;
  }
  if (!Pre)
    return nullptr;
  // A proper preheader branches only into the loop.
  if (Pre->successors().size() != 1)
    return nullptr;
  return Pre;
}

std::vector<std::pair<BasicBlock *, BasicBlock *>> Loop::getExitEdges() const {
  std::vector<std::pair<BasicBlock *, BasicBlock *>> Edges;
  for (BasicBlock *BB : BlockList)
    for (BasicBlock *S : BB->successors())
      if (!contains(S))
        Edges.emplace_back(BB, S);
  return Edges;
}

LoopInfo::LoopInfo(const Function &F, const DominatorTree &DT) {
  assert(!DT.isPostDom() && "LoopInfo needs a forward dominator tree");
  if (F.isDeclaration())
    return;

  // 1. Find back edges: U -> H where H dominates U.
  std::vector<std::pair<BasicBlock *, BasicBlock *>> Backs;
  for (BasicBlock *U : const_cast<Function &>(F)) {
    if (!DT.contains(U))
      continue; // Skip unreachable blocks.
    for (BasicBlock *H : U->successors())
      if (DT.dominates(H, U)) {
        Backs.emplace_back(U, H);
        BackEdges.insert({U, H});
      }
  }

  // 2. Group back edges by header and build one loop per header from the
  // union of its natural-loop bodies.
  std::unordered_map<BasicBlock *, Loop *> HeaderLoop;
  for (auto &[U, H] : Backs) {
    Loop *L = HeaderLoop[H];
    if (!L) {
      Storage.push_back(std::make_unique<Loop>());
      L = Storage.back().get();
      L->Header = H;
      HeaderLoop[H] = L;
    }
    // Walk backwards from U, stopping at H.
    std::vector<BasicBlock *> Work{U};
    L->Blocks.insert(H);
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      if (!L->Blocks.insert(BB).second)
        continue;
      for (BasicBlock *P : BB->predecessors())
        if (DT.contains(P))
          Work.push_back(P);
    }
  }

  // Deterministic block lists: function block order.
  for (auto &LPtr : Storage) {
    for (BasicBlock *BB : const_cast<Function &>(F))
      if (LPtr->Blocks.count(BB))
        LPtr->BlockList.push_back(BB);
  }

  // 3. Nesting: loop A is inside loop B iff B contains A's header and
  // A != B. Parent = smallest strict superset.
  for (auto &A : Storage) {
    Loop *Best = nullptr;
    for (auto &B : Storage) {
      if (A.get() == B.get() || !B->Blocks.count(A->Header))
        continue;
      if (!Best || B->Blocks.size() < Best->Blocks.size())
        Best = B.get();
    }
    A->Parent = Best;
    if (Best)
      Best->SubLoops.push_back(A.get());
  }
  for (auto &L : Storage) {
    unsigned D = 1;
    for (Loop *P = L->Parent; P; P = P->Parent)
      ++D;
    L->Depth = D;
  }

  // 4. Block -> innermost loop map.
  for (auto &L : Storage)
    for (const BasicBlock *BB : L->BlockList) {
      Loop *&Slot = BlockMap[BB];
      if (!Slot || L->Depth > Slot->Depth)
        Slot = L.get();
    }

  // 5. Deterministic overall order: by depth, then by header order in the
  // function (outermost loops first).
  for (auto &L : Storage)
    AllLoops.push_back(L.get());
  std::unordered_map<const BasicBlock *, unsigned> BlockOrder;
  unsigned Idx = 0;
  for (BasicBlock *BB : const_cast<Function &>(F))
    BlockOrder[BB] = Idx++;
  std::sort(AllLoops.begin(), AllLoops.end(), [&](Loop *A, Loop *B) {
    if (A->Depth != B->Depth)
      return A->Depth < B->Depth;
    return BlockOrder[A->Header] < BlockOrder[B->Header];
  });
}
