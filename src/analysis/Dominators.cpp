#include "analysis/Dominators.h"

#include <algorithm>
#include <functional>

using namespace wario;

namespace {

/// Neighbor accessor that hides the direction of the walk.
std::vector<BasicBlock *> nexts(const BasicBlock *BB, bool Post) {
  if (!Post)
    return BB->successors();
  const auto &P = BB->predecessors();
  return {P.begin(), P.end()};
}
std::vector<BasicBlock *> prevs(const BasicBlock *BB, bool Post) {
  if (!Post) {
    const auto &P = BB->predecessors();
    return {P.begin(), P.end()};
  }
  return BB->successors();
}

} // namespace

DominatorTree::DominatorTree(const Function &F, bool Post) : Post(Post) {
  if (F.isDeclaration())
    return;
  F.ensureCFG();

  // Collect roots: the entry block, or every exit block in post mode.
  std::vector<BasicBlock *> Roots;
  if (!Post) {
    Roots.push_back(F.getEntryBlock());
  } else {
    for (BasicBlock *BB : const_cast<Function &>(F))
      if (BB->successors().empty())
        Roots.push_back(BB);
  }

  // Post-order DFS over the walk direction, then reverse.
  std::unordered_map<const BasicBlock *, unsigned> State; // 0 new 1 open 2 done
  std::vector<BasicBlock *> PostOrder;
  std::function<void(BasicBlock *)> DFS = [&](BasicBlock *BB) {
    State[BB] = 1;
    for (BasicBlock *S : nexts(BB, Post))
      if (State[S] == 0)
        DFS(S);
    State[BB] = 2;
    PostOrder.push_back(BB);
  };
  for (BasicBlock *R : Roots)
    if (State[R] == 0)
      DFS(R);
  RPO.assign(PostOrder.rbegin(), PostOrder.rend());

  for (unsigned I = 0; I != RPO.size(); ++I)
    Info[RPO[I]].RPONum = I;

  // Cooper-Harvey-Kennedy iteration. Roots hang off a virtual super-root
  // represented as nullptr, so climbing above a root yields nullptr and
  // intersect() of nodes under different roots converges to the super-root.
  std::unordered_map<const BasicBlock *, bool> Processed;
  for (BasicBlock *R : Roots)
    Processed[R] = true;

  // Intersect two (possibly virtual) dominator-tree ancestors by climbing
  // RPO numbers. nullptr is the virtual super-root and absorbs everything.
  auto Intersect = [&](BasicBlock *A, BasicBlock *B) -> BasicBlock * {
    while (A != B) {
      if (!A || !B)
        return nullptr;
      while (A != B && Info[A].RPONum > Info[B].RPONum) {
        A = Info[A].IDom;
        if (!A)
          return nullptr;
      }
      while (A != B && Info[B].RPONum > Info[A].RPONum) {
        B = Info[B].IDom;
        if (!B)
          return nullptr;
      }
      if (A != B && Info[A].RPONum == Info[B].RPONum)
        return nullptr; // Two distinct roots: meet at the super-root.
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : RPO) {
      if (std::find(Roots.begin(), Roots.end(), BB) != Roots.end())
        continue;
      BasicBlock *NewIDom = nullptr;
      bool HaveFirst = false;
      bool VirtualRooted = false;
      for (BasicBlock *P : prevs(BB, Post)) {
        if (!Info.count(P) || !Processed[P])
          continue;
        if (!HaveFirst) {
          NewIDom = P;
          HaveFirst = true;
          continue;
        }
        NewIDom = Intersect(NewIDom, P);
        if (!NewIDom) {
          VirtualRooted = true;
          break;
        }
      }
      if (!HaveFirst)
        continue; // No processed predecessor yet; try next iteration.
      BasicBlock *Final = VirtualRooted ? nullptr : NewIDom;
      if (!Processed[BB] || Info[BB].IDom != Final) {
        Info[BB].IDom = Final;
        Processed[BB] = true;
        Changed = true;
      }
    }
  }

  // Drop nodes that were never processed (unreachable in walk direction).
  for (auto It = Info.begin(); It != Info.end();) {
    if (!Processed[It->first] &&
        std::find(Roots.begin(), Roots.end(), It->first) == Roots.end())
      It = Info.erase(It);
    else
      ++It;
  }

  // Assign DFS in/out numbers over the dominator tree for O(1) queries.
  std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>> Children;
  std::vector<BasicBlock *> TreeRoots;
  for (auto &[BB, N] : Info) {
    if (N.IDom)
      Children[N.IDom].push_back(const_cast<BasicBlock *>(BB));
    else
      TreeRoots.push_back(const_cast<BasicBlock *>(BB));
  }
  // Deterministic order.
  auto ByRPO = [&](BasicBlock *A, BasicBlock *B) {
    return Info[A].RPONum < Info[B].RPONum;
  };
  std::sort(TreeRoots.begin(), TreeRoots.end(), ByRPO);
  for (auto &[BB, Kids] : Children)
    std::sort(Kids.begin(), Kids.end(), ByRPO);

  unsigned Clock = 1;
  std::function<void(BasicBlock *)> Number = [&](BasicBlock *BB) {
    Info[BB].In = Clock++;
    for (BasicBlock *C : Children[BB])
      Number(C);
    Info[BB].Out = Clock++;
  };
  for (BasicBlock *R : TreeRoots)
    Number(R);
}

bool DominatorTree::dominates(const BasicBlock *A,
                              const BasicBlock *B) const {
  auto AIt = Info.find(A), BIt = Info.find(B);
  if (AIt == Info.end() || BIt == Info.end())
    return false;
  return AIt->second.In <= BIt->second.In &&
         BIt->second.Out <= AIt->second.Out;
}

bool DominatorTree::dominates(const Instruction *A,
                              const Instruction *B) const {
  const BasicBlock *ABB = A->getParent(), *BBB = B->getParent();
  assert(ABB && BBB && "dominance query on detached instructions");
  if (ABB != BBB)
    return dominates(ABB, BBB);
  if (A == B)
    return true;
  // Same block: list order decides (reversed meaning for post-dominance).
  for (const Instruction *I : *ABB) {
    if (I == A)
      return !Post;
    if (I == B)
      return Post;
  }
  assert(false && "instructions not found in their parent block");
  return false;
}

BasicBlock *DominatorTree::getIDom(const BasicBlock *BB) const {
  auto It = Info.find(BB);
  return It == Info.end() ? nullptr : It->second.IDom;
}
