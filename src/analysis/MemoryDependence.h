//===----------------------------------------------------------------------===//
///
/// \file
/// Memory dependence analysis: the slice of a Program Dependence Graph the
/// WARio passes consume. For every ordered pair of load/store instructions
/// that can execute one after the other and may touch the same address, it
/// records a WAR, RAW or WAW dependence, flagged as loop-carried when the
/// later access is only reachable around a back edge.
///
/// Cross-function effects need no modeling here: every function entry and
/// exit carries a forced checkpoint (as in Ratchet), so no idempotent
/// region ever spans a call boundary.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_ANALYSIS_MEMORYDEPENDENCE_H
#define WARIO_ANALYSIS_MEMORYDEPENDENCE_H

#include "analysis/AliasAnalysis.h"
#include "analysis/LoopInfo.h"

namespace wario {

enum class DepKind { WAR, RAW, WAW };

/// One memory dependence: Src can execute before Dst and the accesses may
/// overlap.
struct MemDep {
  Instruction *Src;
  Instruction *Dst;
  DepKind Kind;
  /// True when Dst is reachable from Src only via a loop back edge.
  bool LoopCarried;
  AliasResult Alias;
};

/// Block-level reachability over a function CFG, with and without back
/// edges. Built once per function; O(blocks^2) bits.
class CFGReachability {
public:
  CFGReachability(const Function &F, const LoopInfo &LI);

  /// True if a path with at least one edge leads from \p From to \p To.
  bool reaches(const BasicBlock *From, const BasicBlock *To) const;
  /// Same, but using no loop back edges.
  bool forwardReaches(const BasicBlock *From, const BasicBlock *To) const;
  /// True if \p BB lies on a cycle.
  bool onCycle(const BasicBlock *BB) const { return reaches(BB, BB); }

private:
  std::unordered_map<const BasicBlock *, unsigned> Index;
  std::vector<std::vector<bool>> Full;    // [from][to]
  std::vector<std::vector<bool>> Forward; // [from][to]
};

/// Computes all memory dependences of a function.
class MemoryDependence {
public:
  MemoryDependence(const Function &F, const AliasAnalysis &AA,
                   const LoopInfo &LI);

  const std::vector<MemDep> &deps() const { return Deps; }

  /// All WAR dependences (Src = the read, Dst = the write).
  std::vector<const MemDep *> wars() const;

  /// WAR dependences entirely inside loop \p L.
  std::vector<const MemDep *> warsIn(const Loop &L) const;

  /// RAW dependences entirely inside loop \p L (Src = write, Dst = read).
  std::vector<const MemDep *> rawsIn(const Loop &L) const;

  const CFGReachability &reachability() const { return Reach; }

private:
  CFGReachability Reach;
  std::vector<MemDep> Deps;
};

} // namespace wario

#endif // WARIO_ANALYSIS_MEMORYDEPENDENCE_H
