//===----------------------------------------------------------------------===//
///
/// \file
/// IR verifier: structural and SSA-dominance well-formedness checks, run
/// between passes in tests and debug pipelines.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_ANALYSIS_VERIFIER_H
#define WARIO_ANALYSIS_VERIFIER_H

#include "ir/Module.h"

#include <string>

namespace wario {

/// Verifies one function. Returns true if well-formed; otherwise false,
/// appending human-readable problems to \p Errors (if non-null).
bool verifyFunction(const Function &F, std::string *Errors = nullptr);

/// Verifies every function of a module.
bool verifyModule(const Module &M, std::string *Errors = nullptr);

} // namespace wario

#endif // WARIO_ANALYSIS_VERIFIER_H
