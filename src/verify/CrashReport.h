//===----------------------------------------------------------------------===//
///
/// \file
/// Structured result of a crash-consistency fault-injection campaign
/// (src/verify/FaultInjector.h): what was tested, what diverged from the
/// continuous-power golden run, and — after bisection — the minimal crash
/// point that still reproduces each divergence.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_VERIFY_CRASHREPORT_H
#define WARIO_VERIFY_CRASHREPORT_H

#include "emu/ThreadedEngine.h"

#include <cstdint>
#include <string>
#include <vector>

namespace wario::verify {

/// One NVM byte whose end state differs between the golden run and a
/// crash-injected run.
struct AddrDiff {
  uint32_t Addr = 0;
  uint8_t Golden = 0;
  uint8_t Crashed = 0;
};

/// How a crash-injected run diverged from the golden run.
enum class DivergenceKind {
  NvmMismatch,    ///< Final NVM image differs (outside the ckpt range).
  ReturnMismatch, ///< main()'s return value differs.
  OutputMismatch, ///< Golden output is not a subsequence of the crash
                  ///< run's output (re-execution may replay out-writes —
                  ///< at-least-once semantics — but never alter them).
  RunError,       ///< The crash-injected run itself failed (stalled
                  ///< boots, WAR abort, out-of-bounds access, ...).
};

const char *divergenceKindName(DivergenceKind K);

struct Divergence {
  uint64_t CrashCycle = 0;   ///< Injected on-period budget (active cycles).
  uint64_t MinimalCycle = 0; ///< Earliest diverging budget found by
                             ///< bisection (== CrashCycle when disabled).
  /// Id of the last checkpoint the golden run committed before the
  /// minimal crash point (-1: crash precedes every commit).
  int RegionId = -1;
  DivergenceKind Kind = DivergenceKind::NvmMismatch;
  std::string Detail;          ///< Kind-specific one-liner.
  std::vector<AddrDiff> Addrs; ///< First few diverging NVM bytes.
  /// Golden-run instructions surrounding the minimal crash point.
  std::vector<std::string> Window;
};

struct CrashReport {
  /// The campaign ran: the golden run completed. (A dirty campaign —
  /// divergences found — still has Ok == true; see clean().)
  bool Ok = false;
  std::string Error; ///< Set when !Ok.

  // Caller-provided metadata, echoed into format().
  std::string Workload;
  std::string Config;
  std::string Mode;

  uint64_t GoldenCycles = 0;  ///< Golden run length (== active cycles).
  uint64_t GoldenCommits = 0; ///< Checkpoints the golden run committed.
  int32_t GoldenReturn = 0;
  unsigned CandidatePoints = 0; ///< Crash points the mode generated.
  unsigned PointsTested = 0;    ///< After any deterministic cap.
  unsigned EmulationsRun = 0;   ///< Including golden + bisection probes.
  std::vector<Divergence> Divergences;

  // Campaign-engine statistics, shared across the reports of one combined
  // runCrashCampaigns() call. EmulationsRun above stays the *logical*
  // per-mode count (so format() is byte-stable across engine changes);
  // these record what the snapshot/replay engine actually executed.
  unsigned UnionPoints = 0;  ///< Distinct crash points fanned out.
  unsigned SharedPoints = 0; ///< Duplicate mode points collapsed away.
  unsigned PhysicalRuns = 0; ///< Emulator executions incl. golden/probes.
  unsigned ResumedRuns = 0;  ///< Runs that started from a snapshot.
  unsigned SplicedRuns = 0;  ///< Runs that adopted the golden tail.
  unsigned Snapshots = 0;    ///< Snapshots the golden recording took.
  size_t SnapshotBytes = 0;  ///< Chain footprint (journal + final copy).
  /// Execution engine the campaign's emulations selected (resolved
  /// against WARIO_ENGINE at campaign start) and its dispatch counters,
  /// summed over every emulation including golden and probes. Like the
  /// fields above these stay out of format(): reports are byte-identical
  /// across engines, the stats only say which engine did the work.
  std::string Engine;
  EngineStats Dispatch;

  bool clean() const { return Ok && Divergences.empty(); }

  /// Multi-line human-readable report (stable across runs: everything in
  /// it is deterministic).
  std::string format() const;
};

} // namespace wario::verify

#endif // WARIO_VERIFY_CRASHREPORT_H
