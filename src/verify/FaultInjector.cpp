#include "verify/FaultInjector.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <optional>
#include <sstream>

using namespace wario;
using namespace wario::verify;

namespace {

/// Deterministic xorshift32 for the stratified sampler (same generator
/// family as the synthetic harvester traces; campaigns must be
/// reproducible from the seed alone).
struct XorShift {
  uint32_t State;
  explicit XorShift(uint32_t Seed) : State(Seed ? Seed : 1) {}
  uint32_t next() {
    State ^= State << 13;
    State ^= State >> 17;
    State ^= State << 5;
    return State;
  }
};

/// A power schedule that fails exactly once, at active-cycle budget
/// \p CrashCycle, and then stays up for the rest of the run.
PowerSchedule singleCrash(uint64_t CrashCycle) {
  return PowerSchedule::trace({CrashCycle, UINT64_MAX}, "single-crash");
}

/// Golden output must survive re-execution as a subsequence: a crash can
/// legitimately *replay* out-writes (at-least-once semantics) but must
/// never alter, reorder, or drop them.
bool isSubsequence(const std::vector<int32_t> &Needle,
                   const std::vector<int32_t> &Hay) {
  size_t I = 0;
  for (int32_t V : Hay)
    if (I < Needle.size() && Needle[I] == V)
      ++I;
  return I == Needle.size();
}

std::string hexByte(uint8_t B) {
  char Buf[8];
  std::snprintf(Buf, sizeof(Buf), "0x%02x", B);
  return Buf;
}

std::string hexAddr(uint32_t A) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "0x%x", A);
  return Buf;
}

/// Compares one crash-injected run against the golden run. Returns the
/// divergence (without bisection detail) or nullopt when consistent.
std::optional<Divergence> compareRun(const EmulatorResult &Golden,
                                     const EmulatorResult &Crashed,
                                     uint64_t CrashCycle,
                                     unsigned MaxReportedAddrs) {
  Divergence D;
  D.CrashCycle = D.MinimalCycle = CrashCycle;
  if (!Crashed.Ok) {
    D.Kind = DivergenceKind::RunError;
    D.Detail = Crashed.Error;
    return D;
  }
  if (Crashed.ReturnValue != Golden.ReturnValue) {
    D.Kind = DivergenceKind::ReturnMismatch;
    std::ostringstream OS;
    OS << "golden returned " << Golden.ReturnValue << ", crash run returned "
       << Crashed.ReturnValue;
    D.Detail = OS.str();
    return D;
  }
  // Final NVM image, minus the checkpoint scratch range: two runs that
  // committed different checkpoints legitimately differ there.
  size_t N = std::min(Golden.FinalMemory.size(), Crashed.FinalMemory.size());
  unsigned Diffs = 0;
  for (size_t A = 0; A != N; ++A) {
    if (A >= ckpt::Base && A < ckpt::End)
      continue;
    if (Golden.FinalMemory[A] == Crashed.FinalMemory[A])
      continue;
    if (Diffs++ < MaxReportedAddrs)
      D.Addrs.push_back(
          {uint32_t(A), Golden.FinalMemory[A], Crashed.FinalMemory[A]});
  }
  if (Diffs) {
    D.Kind = DivergenceKind::NvmMismatch;
    std::ostringstream OS;
    OS << Diffs << " diverging NVM bytes (first " << D.Addrs.size()
       << " listed)";
    D.Detail = OS.str();
    return D;
  }
  if (!isSubsequence(Golden.Output, Crashed.Output)) {
    D.Kind = DivergenceKind::OutputMismatch;
    std::ostringstream OS;
    OS << "golden output (" << Golden.Output.size()
       << " values) is not a subsequence of the crash run's output ("
       << Crashed.Output.size() << " values)";
    D.Detail = OS.str();
    return D;
  }
  return std::nullopt;
}

} // namespace

const char *wario::verify::campaignModeName(CampaignMode M) {
  switch (M) {
  case CampaignMode::RegionBoundaries: return "region-boundaries";
  case CampaignMode::Stratified: return "stratified";
  case CampaignMode::Adversarial: return "adversarial";
  }
  return "?";
}

const char *wario::verify::divergenceKindName(DivergenceKind K) {
  switch (K) {
  case DivergenceKind::NvmMismatch: return "nvm-mismatch";
  case DivergenceKind::ReturnMismatch: return "return-mismatch";
  case DivergenceKind::OutputMismatch: return "output-mismatch";
  case DivergenceKind::RunError: return "run-error";
  }
  return "?";
}

CrashReport wario::verify::runCrashCampaign(const MModule &MM,
                                            const FaultInjectorOptions &Opts) {
  CrashReport R;
  R.Workload = Opts.Workload;
  R.Config = Opts.Config;
  R.Mode = campaignModeName(Opts.Mode);

  // 1. Golden run: continuous power, event trace on.
  EmulatorOptions GoldenEO = Opts.BaseEO;
  GoldenEO.Power = PowerSchedule::continuous();
  GoldenEO.CollectEventTrace = true;
  GoldenEO.CollectRegionSizes = false;
  GoldenEO.TraceWindowLo = GoldenEO.TraceWindowHi = 0;
  EmulatorResult Golden = emulate(MM, GoldenEO, Opts.Entry);
  ++R.EmulationsRun;
  if (!Golden.Ok) {
    R.Error = "golden run failed: " + Golden.Error;
    return R;
  }
  R.Ok = true;
  R.GoldenCycles = Golden.TotalCycles;
  R.GoldenCommits = Golden.Commits.size();
  R.GoldenReturn = Golden.ReturnValue;

  // 2. Crash points per mode (active-cycle on-period budgets).
  std::vector<uint64_t> Points;
  switch (Opts.Mode) {
  case CampaignMode::RegionBoundaries:
    Points.push_back(1); // During the initial boot: cold-restart path.
    for (const EmulatorResult::CommitEvent &C : Golden.Commits) {
      Points.push_back(C.BeginCycle); // Immediately before the commit.
      Points.push_back(C.EndCycle);   // Immediately after the commit.
    }
    break;
  case CampaignMode::Stratified: {
    XorShift Rng(Opts.Seed);
    uint64_t Range = std::max<uint64_t>(R.GoldenCycles, 1);
    unsigned Samples = std::max(Opts.Samples, 1u);
    for (unsigned S = 0; S != Samples; ++S) {
      uint64_t Lo = 1 + Range * S / Samples;
      uint64_t Hi = std::max(1 + Range * (S + 1) / Samples, Lo + 1);
      Points.push_back(Lo + Rng.next() % (Hi - Lo));
    }
    break;
  }
  case CampaignMode::Adversarial:
    for (const EmulatorResult::CommitEvent &C : Golden.Commits)
      Points.push_back(C.BeginCycle); // The commit almost happened.
    for (uint64_t S : Golden.StoreCycles)
      Points.push_back(S); // The store just landed.
    break;
  }
  std::sort(Points.begin(), Points.end());
  Points.erase(std::unique(Points.begin(), Points.end()), Points.end());
  R.CandidatePoints = unsigned(Points.size());

  // Deterministic evenly-strided cap — never silent: the report shows
  // candidates vs tested.
  if (Opts.MaxPoints && Points.size() > Opts.MaxPoints) {
    std::vector<uint64_t> Kept;
    Kept.reserve(Opts.MaxPoints);
    for (unsigned I = 0; I != Opts.MaxPoints; ++I)
      Kept.push_back(Points[size_t(I) * Points.size() / Opts.MaxPoints]);
    Kept.erase(std::unique(Kept.begin(), Kept.end()), Kept.end());
    Points = std::move(Kept);
  }
  R.PointsTested = unsigned(Points.size());

  // 3. Campaign fan-out. Injected runs never need the event trace.
  EmulatorOptions RunEO = Opts.BaseEO;
  RunEO.CollectEventTrace = false;
  RunEO.CollectRegionSizes = false;
  RunEO.TraceWindowLo = RunEO.TraceWindowHi = 0;
  auto RunAt = [&](uint64_t CrashCycle) {
    EmulatorOptions EO = RunEO;
    EO.Power = singleCrash(CrashCycle);
    return emulate(MM, EO, Opts.Entry);
  };

  std::vector<std::optional<Divergence>> Found(Points.size());
  parallelFor(
      Points.size(),
      [&](size_t J) {
        Found[J] = compareRun(Golden, RunAt(Points[J]), Points[J],
                              Opts.MaxReportedAddrs);
      },
      Opts.Jobs);
  R.EmulationsRun += unsigned(Points.size());

  // 4. Collect in ascending crash-cycle order; minimize the first few.
  for (size_t J = 0; J != Points.size(); ++J) {
    if (!Found[J])
      continue;
    Divergence D = *Found[J];
    if (R.Divergences.size() < Opts.MaxDivergences) {
      if (Opts.Bisect) {
        // Find the earliest diverging budget at or below the injected
        // one. Budget 0 crashes before any instruction executes and a
        // cold restart must always be consistent, so it anchors the
        // clean side; the loop maintains (Lo clean, Hi diverging).
        uint64_t Lo = 0, Hi = D.CrashCycle;
        Divergence AtHi = D;
        while (Hi - Lo > 1) {
          uint64_t Mid = Lo + (Hi - Lo) / 2;
          std::optional<Divergence> P = compareRun(
              Golden, RunAt(Mid), Mid, Opts.MaxReportedAddrs);
          ++R.EmulationsRun;
          if (P) {
            Hi = Mid;
            AtHi = *P;
          } else {
            Lo = Mid;
          }
        }
        AtHi.CrashCycle = D.CrashCycle;
        AtHi.MinimalCycle = Hi;
        D = AtHi;
      }
      // Last checkpoint the golden run had committed before the crash.
      int Region = -1;
      for (const EmulatorResult::CommitEvent &C : Golden.Commits) {
        if (C.EndCycle > D.MinimalCycle)
          break;
        ++Region;
      }
      D.RegionId = Region;
      // Golden instruction window around the minimal crash point.
      EmulatorOptions WinEO = GoldenEO;
      WinEO.CollectEventTrace = false;
      WinEO.TraceWindowLo = D.MinimalCycle > Opts.WindowRadius
                                ? D.MinimalCycle - Opts.WindowRadius
                                : 0;
      WinEO.TraceWindowHi = D.MinimalCycle + Opts.WindowRadius;
      D.Window = emulate(MM, WinEO, Opts.Entry).Window;
      ++R.EmulationsRun;
    }
    R.Divergences.push_back(std::move(D));
  }
  return R;
}

std::string CrashReport::format() const {
  std::ostringstream OS;
  OS << "crash-consistency report: workload=" << Workload
     << " config=" << Config << " mode=" << Mode << "\n";
  if (!Ok) {
    OS << "  campaign failed: " << Error << "\n";
    return OS.str();
  }
  OS << "  golden: " << GoldenCycles << " cycles, " << GoldenCommits
     << " commits, return " << GoldenReturn << "\n";
  OS << "  points: " << CandidatePoints << " candidate, " << PointsTested
     << " tested; emulations: " << EmulationsRun << "\n";
  if (Divergences.empty()) {
    OS << "  verdict: CONSISTENT\n";
    return OS.str();
  }
  OS << "  verdict: DIVERGED at " << Divergences.size() << " of "
     << PointsTested << " points\n";
  for (size_t I = 0; I != Divergences.size(); ++I) {
    const Divergence &D = Divergences[I];
    OS << "  divergence #" << I << ": injected @" << D.CrashCycle
       << ", minimized @" << D.MinimalCycle << ", region ";
    if (D.RegionId < 0)
      OS << "pre-first-commit";
    else
      OS << D.RegionId;
    OS << ", kind " << divergenceKindName(D.Kind) << "\n";
    if (!D.Detail.empty())
      OS << "    detail: " << D.Detail << "\n";
    for (const AddrDiff &A : D.Addrs)
      OS << "    nvm " << hexAddr(A.Addr) << ": golden " << hexByte(A.Golden)
         << " crashed " << hexByte(A.Crashed) << "\n";
    if (!D.Window.empty()) {
      OS << "    window:\n";
      for (const std::string &W : D.Window)
        OS << "      " << W << "\n";
    }
  }
  return OS.str();
}
