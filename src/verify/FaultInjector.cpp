#include "verify/FaultInjector.h"

#include "emu/Snapshot.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <optional>
#include <sstream>

using namespace wario;
using namespace wario::verify;

namespace {

/// Deterministic xorshift32 for the stratified sampler (same generator
/// family as the synthetic harvester traces; campaigns must be
/// reproducible from the seed alone).
struct XorShift {
  uint32_t State;
  explicit XorShift(uint32_t Seed) : State(Seed ? Seed : 1) {}
  uint32_t next() {
    State ^= State << 13;
    State ^= State >> 17;
    State ^= State << 5;
    return State;
  }
};

/// A power schedule that fails exactly once, at active-cycle budget
/// \p CrashCycle, and then stays up for the rest of the run.
PowerSchedule singleCrash(uint64_t CrashCycle) {
  return PowerSchedule::trace({CrashCycle, UINT64_MAX}, "single-crash");
}

/// Golden output must survive re-execution as a subsequence: a crash can
/// legitimately *replay* out-writes (at-least-once semantics) but must
/// never alter, reorder, or drop them.
bool isSubsequence(const std::vector<int32_t> &Needle,
                   const std::vector<int32_t> &Hay) {
  size_t I = 0;
  for (int32_t V : Hay)
    if (I < Needle.size() && Needle[I] == V)
      ++I;
  return I == Needle.size();
}

std::string hexByte(uint8_t B) {
  char Buf[8];
  std::snprintf(Buf, sizeof(Buf), "0x%02x", B);
  return Buf;
}

std::string hexAddr(uint32_t A) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "0x%x", A);
  return Buf;
}

/// Compares one crash-injected run against the golden run. Returns the
/// divergence (without bisection detail) or nullopt when consistent.
/// \p NvmKnownEqual: the run tail-spliced against the golden snapshot
/// chain, so its final NVM image *is* the golden image by construction
/// (and was elided — see ReplayPlan::OmitFinalMemoryOnSplice).
std::optional<Divergence> compareRun(const EmulatorResult &Golden,
                                     const EmulatorResult &Crashed,
                                     uint64_t CrashCycle,
                                     unsigned MaxReportedAddrs,
                                     bool NvmKnownEqual = false) {
  Divergence D;
  D.CrashCycle = D.MinimalCycle = CrashCycle;
  if (!Crashed.Ok) {
    D.Kind = DivergenceKind::RunError;
    D.Detail = Crashed.Error;
    return D;
  }
  if (Crashed.ReturnValue != Golden.ReturnValue) {
    D.Kind = DivergenceKind::ReturnMismatch;
    std::ostringstream OS;
    OS << "golden returned " << Golden.ReturnValue << ", crash run returned "
       << Crashed.ReturnValue;
    D.Detail = OS.str();
    return D;
  }
  // Final NVM image, minus the checkpoint scratch range: two runs that
  // committed different checkpoints legitimately differ there.
  size_t N = NvmKnownEqual
                 ? 0
                 : std::min(Golden.FinalMemory.size(),
                            Crashed.FinalMemory.size());
  unsigned Diffs = 0;
  for (size_t A = 0; A != N; ++A) {
    if (A >= ckpt::Base && A < ckpt::End)
      continue;
    if (Golden.FinalMemory[A] == Crashed.FinalMemory[A])
      continue;
    if (Diffs++ < MaxReportedAddrs)
      D.Addrs.push_back(
          {uint32_t(A), Golden.FinalMemory[A], Crashed.FinalMemory[A]});
  }
  if (Diffs) {
    D.Kind = DivergenceKind::NvmMismatch;
    std::ostringstream OS;
    OS << Diffs << " diverging NVM bytes (first " << D.Addrs.size()
       << " listed)";
    D.Detail = OS.str();
    return D;
  }
  if (!isSubsequence(Golden.Output, Crashed.Output)) {
    D.Kind = DivergenceKind::OutputMismatch;
    std::ostringstream OS;
    OS << "golden output (" << Golden.Output.size()
       << " values) is not a subsequence of the crash run's output ("
       << Crashed.Output.size() << " values)";
    D.Detail = OS.str();
    return D;
  }
  return std::nullopt;
}

} // namespace

const char *wario::verify::campaignModeName(CampaignMode M) {
  switch (M) {
  case CampaignMode::RegionBoundaries: return "region-boundaries";
  case CampaignMode::Stratified: return "stratified";
  case CampaignMode::Adversarial: return "adversarial";
  }
  return "?";
}

const char *wario::verify::divergenceKindName(DivergenceKind K) {
  switch (K) {
  case DivergenceKind::NvmMismatch: return "nvm-mismatch";
  case DivergenceKind::ReturnMismatch: return "return-mismatch";
  case DivergenceKind::OutputMismatch: return "output-mismatch";
  case DivergenceKind::RunError: return "run-error";
  }
  return "?";
}

namespace {

/// Crash points for one campaign mode — identical point selection (and
/// cap) to the original single-mode campaigns, so combined campaigns
/// report the same CandidatePoints/PointsTested per mode.
std::vector<uint64_t> modePoints(CampaignMode Mode,
                                 const EmulatorResult &Golden,
                                 const FaultInjectorOptions &Opts,
                                 unsigned &CandidatePoints) {
  std::vector<uint64_t> Points;
  switch (Mode) {
  case CampaignMode::RegionBoundaries:
    Points.push_back(1); // During the initial boot: cold-restart path.
    for (const EmulatorResult::CommitEvent &C : Golden.Commits) {
      Points.push_back(C.BeginCycle); // Immediately before the commit.
      Points.push_back(C.EndCycle);   // Immediately after the commit.
    }
    break;
  case CampaignMode::Stratified: {
    XorShift Rng(Opts.Seed);
    uint64_t Range = std::max<uint64_t>(Golden.TotalCycles, 1);
    unsigned Samples = std::max(Opts.Samples, 1u);
    for (unsigned S = 0; S != Samples; ++S) {
      uint64_t Lo = 1 + Range * S / Samples;
      uint64_t Hi = std::max(1 + Range * (S + 1) / Samples, Lo + 1);
      Points.push_back(Lo + Rng.next() % (Hi - Lo));
    }
    break;
  }
  case CampaignMode::Adversarial:
    for (const EmulatorResult::CommitEvent &C : Golden.Commits)
      Points.push_back(C.BeginCycle); // The commit almost happened.
    for (uint64_t S : Golden.StoreCycles)
      Points.push_back(S); // The store just landed.
    break;
  }
  std::sort(Points.begin(), Points.end());
  Points.erase(std::unique(Points.begin(), Points.end()), Points.end());
  CandidatePoints = unsigned(Points.size());

  // Deterministic evenly-strided cap — never silent: the report shows
  // candidates vs tested.
  if (Opts.MaxPoints && Points.size() > Opts.MaxPoints) {
    std::vector<uint64_t> Kept;
    Kept.reserve(Opts.MaxPoints);
    for (unsigned I = 0; I != Opts.MaxPoints; ++I)
      Kept.push_back(Points[size_t(I) * Points.size() / Opts.MaxPoints]);
    Kept.erase(std::unique(Kept.begin(), Kept.end()), Kept.end());
    Points = std::move(Kept);
  }
  return Points;
}

} // namespace

CrashReport wario::verify::runCrashCampaign(const MModule &MM,
                                            const FaultInjectorOptions &Opts) {
  return runCrashCampaigns(MM, Opts, {Opts.Mode}).front();
}

std::vector<CrashReport>
wario::verify::runCrashCampaigns(const MModule &MM,
                                 const FaultInjectorOptions &Opts,
                                 const std::vector<CampaignMode> &Modes) {
  std::vector<CrashReport> Reports(Modes.size());
  for (size_t I = 0; I != Modes.size(); ++I) {
    Reports[I].Workload = Opts.Workload;
    Reports[I].Config = Opts.Config;
    Reports[I].Mode = campaignModeName(Modes[I]);
  }
  if (Modes.empty())
    return Reports;

  const bool Snaps = Opts.UseSnapshots && snapshotsEnabled();
  Emulator E(MM);

  // Resolve the execution engine once for the stat line; the emulations
  // themselves resolve per run (same answer — the environment does not
  // change mid-campaign). Stats sum over every emulation of the campaign
  // and are all-zero under the interpreter.
  const char *EngName = engineName(resolveEngine(Opts.BaseEO.Engine));
  EngineStats Dispatch;

  // 1. Golden run: continuous power, event trace on. With snapshots
  // enabled this same run doubles as the recording run — record() is
  // result-identical to run(), so the reports cannot tell the difference.
  EmulatorOptions GoldenEO = Opts.BaseEO;
  GoldenEO.Power = PowerSchedule::continuous();
  GoldenEO.CollectEventTrace = true;
  GoldenEO.CollectRegionSizes = false;
  GoldenEO.TraceWindowLo = GoldenEO.TraceWindowHi = 0;
  SnapshotChain Chain;
  EmulatorResult Golden =
      Snaps ? E.record(GoldenEO, SnapshotSchedule{}, Chain, Opts.Entry,
                       nullptr, &Dispatch)
            : E.run(GoldenEO, Opts.Entry, nullptr, &Dispatch);
  for (CrashReport &R : Reports)
    ++R.EmulationsRun;
  if (!Golden.Ok) {
    for (CrashReport &R : Reports) {
      R.Error = "golden run failed: " + Golden.Error;
      R.Engine = EngName;
      R.Dispatch = Dispatch;
    }
    return Reports;
  }
  for (CrashReport &R : Reports) {
    R.Ok = true;
    R.GoldenCycles = Golden.TotalCycles;
    R.GoldenCommits = Golden.Commits.size();
    R.GoldenReturn = Golden.ReturnValue;
  }

  // 2. Crash points per mode, then deduplicated across modes: the modes
  // deliberately overlap (every adversarial pre-commit point is also a
  // region-boundary point), and each distinct budget is injected once.
  std::vector<std::vector<uint64_t>> ModeP(Modes.size());
  unsigned TotalModePoints = 0;
  for (size_t I = 0; I != Modes.size(); ++I) {
    ModeP[I] = modePoints(Modes[I], Golden, Opts, Reports[I].CandidatePoints);
    Reports[I].PointsTested = unsigned(ModeP[I].size());
    TotalModePoints += unsigned(ModeP[I].size());
  }
  std::vector<uint64_t> Union;
  Union.reserve(TotalModePoints);
  for (const std::vector<uint64_t> &P : ModeP)
    Union.insert(Union.end(), P.begin(), P.end());
  std::sort(Union.begin(), Union.end());
  Union.erase(std::unique(Union.begin(), Union.end()), Union.end());

  // 3. Fan-out over the union, once per distinct point. Injected runs
  // never need the event trace. With snapshots: resume from the
  // governing snapshot of the crash budget and splice the golden tail
  // once the post-crash state reconverges (the compare then skips the
  // elided NVM image — it equals the golden image by construction).
  EmulatorOptions RunEO = Opts.BaseEO;
  RunEO.CollectEventTrace = false;
  RunEO.CollectRegionSizes = false;
  RunEO.TraceWindowLo = RunEO.TraceWindowHi = 0;
  std::atomic<unsigned> Physical{1}; // The golden run.
  std::atomic<unsigned> Resumed{0}, Spliced{0};
  auto RunPoint = [&](uint64_t CrashCycle, EmulatorScratch *Scr,
                      EngineStats *St) -> std::optional<Divergence> {
    EmulatorOptions EO = RunEO;
    EO.Power = singleCrash(CrashCycle);
    ++Physical;
    if (!Snaps)
      return compareRun(Golden, E.run(EO, Opts.Entry, nullptr, St),
                        CrashCycle, Opts.MaxReportedAddrs);
    ReplayPlan Plan;
    Plan.Chain = &Chain;
    Plan.AllowTailSplice = true;
    Plan.OmitFinalMemoryOnSplice = true;
    ReplayOutcome Out;
    EmulatorResult Res = E.replay(EO, Plan, Opts.Entry, Scr, &Out, St);
    Resumed += Out.Resumed;
    Spliced += Out.Spliced;
    return compareRun(Golden, Res, CrashCycle, Opts.MaxReportedAddrs,
                      /*NvmKnownEqual=*/Out.Spliced);
  };

  // Per-slot stats, summed after the barrier: the sum is order-stable
  // without any cross-worker synchronization.
  std::vector<std::optional<Divergence>> UnionFound(Union.size());
  std::vector<EngineStats> UnionStats(Union.size());
  parallelFor(
      Union.size(),
      [&](size_t J) {
        thread_local EmulatorScratch Scr;
        UnionFound[J] = RunPoint(Union[J], &Scr, &UnionStats[J]);
      },
      Opts.Jobs);
  for (const EngineStats &S : UnionStats)
    Dispatch += S;

  // Probe memo: the union results seed it; bisection probes (often shared
  // between modes hitting the same divergence) extend it sequentially.
  std::map<uint64_t, std::optional<Divergence>> Memo;
  for (size_t J = 0; J != Union.size(); ++J)
    Memo.emplace(Union[J], std::move(UnionFound[J]));
  EmulatorScratch SeqScr;
  auto ProbeAt = [&](uint64_t C) -> const std::optional<Divergence> & {
    auto It = Memo.find(C);
    if (It == Memo.end())
      It = Memo.emplace(C, RunPoint(C, &SeqScr, &Dispatch)).first;
    return It->second;
  };

  // 4. Per mode: collect in ascending crash-cycle order; minimize the
  // first few. EmulationsRun counts every *logical* emulation of the
  // mode's standalone campaign — fan-out, probes, windows — whether or
  // not the memo already had the (deterministic, identical) answer.
  for (size_t MI = 0; MI != Modes.size(); ++MI) {
    CrashReport &R = Reports[MI];
    R.EmulationsRun += unsigned(ModeP[MI].size());
    for (uint64_t C : ModeP[MI]) {
      const std::optional<Divergence> &Found = Memo.at(C);
      if (!Found)
        continue;
      Divergence D = *Found;
      if (R.Divergences.size() < Opts.MaxDivergences) {
        if (Opts.Bisect) {
          // Find the earliest diverging budget at or below the injected
          // one. Budget 0 crashes before any instruction executes and a
          // cold restart must always be consistent, so it anchors the
          // clean side; the loop maintains (Lo clean, Hi diverging).
          uint64_t Lo = 0, Hi = D.CrashCycle;
          Divergence AtHi = D;
          while (Hi - Lo > 1) {
            uint64_t Mid = Lo + (Hi - Lo) / 2;
            const std::optional<Divergence> &P = ProbeAt(Mid);
            ++R.EmulationsRun;
            if (P) {
              Hi = Mid;
              AtHi = *P;
            } else {
              Lo = Mid;
            }
          }
          AtHi.CrashCycle = D.CrashCycle;
          AtHi.MinimalCycle = Hi;
          D = AtHi;
        }
        // Last checkpoint the golden run had committed before the crash.
        int Region = -1;
        for (const EmulatorResult::CommitEvent &C2 : Golden.Commits) {
          if (C2.EndCycle > D.MinimalCycle)
            break;
          ++Region;
        }
        D.RegionId = Region;
        // Golden instruction window around the minimal crash point. With
        // snapshots: resume just before the window and stop right after
        // it (the Window vector is complete by then; nothing later in
        // the run can change it).
        EmulatorOptions WinEO = GoldenEO;
        WinEO.CollectEventTrace = false;
        WinEO.TraceWindowLo = D.MinimalCycle > Opts.WindowRadius
                                  ? D.MinimalCycle - Opts.WindowRadius
                                  : 0;
        WinEO.TraceWindowHi = D.MinimalCycle + Opts.WindowRadius;
        ++Physical;
        if (Snaps) {
          ReplayPlan WinPlan;
          WinPlan.Chain = &Chain;
          WinPlan.StopAtActiveCycle = WinEO.TraceWindowHi + 1;
          D.Window = E.replay(WinEO, WinPlan, Opts.Entry, &SeqScr, nullptr,
                              &Dispatch)
                         .Window;
        } else {
          D.Window = E.run(WinEO, Opts.Entry, nullptr, &Dispatch).Window;
        }
        ++R.EmulationsRun;
      }
      R.Divergences.push_back(std::move(D));
    }
  }

  for (CrashReport &R : Reports) {
    R.UnionPoints = unsigned(Union.size());
    R.SharedPoints = TotalModePoints - unsigned(Union.size());
    R.PhysicalRuns = Physical.load();
    R.ResumedRuns = Resumed.load();
    R.SplicedRuns = Spliced.load();
    R.Snapshots = unsigned(Chain.size());
    R.SnapshotBytes = Chain.bytes();
    R.Engine = EngName;
    R.Dispatch = Dispatch;
  }
  return Reports;
}

std::string CrashReport::format() const {
  std::ostringstream OS;
  OS << "crash-consistency report: workload=" << Workload
     << " config=" << Config << " mode=" << Mode << "\n";
  if (!Ok) {
    OS << "  campaign failed: " << Error << "\n";
    return OS.str();
  }
  OS << "  golden: " << GoldenCycles << " cycles, " << GoldenCommits
     << " commits, return " << GoldenReturn << "\n";
  OS << "  points: " << CandidatePoints << " candidate, " << PointsTested
     << " tested; emulations: " << EmulationsRun << "\n";
  if (Divergences.empty()) {
    OS << "  verdict: CONSISTENT\n";
    return OS.str();
  }
  OS << "  verdict: DIVERGED at " << Divergences.size() << " of "
     << PointsTested << " points\n";
  for (size_t I = 0; I != Divergences.size(); ++I) {
    const Divergence &D = Divergences[I];
    OS << "  divergence #" << I << ": injected @" << D.CrashCycle
       << ", minimized @" << D.MinimalCycle << ", region ";
    if (D.RegionId < 0)
      OS << "pre-first-commit";
    else
      OS << D.RegionId;
    OS << ", kind " << divergenceKindName(D.Kind) << "\n";
    if (!D.Detail.empty())
      OS << "    detail: " << D.Detail << "\n";
    for (const AddrDiff &A : D.Addrs)
      OS << "    nvm " << hexAddr(A.Addr) << ": golden " << hexByte(A.Golden)
         << " crashed " << hexByte(A.Crashed) << "\n";
    if (!D.Window.empty()) {
      OS << "    window:\n";
      for (const std::string &W : D.Window)
        OS << "      " << W << "\n";
    }
  }
  return OS.str();
}
