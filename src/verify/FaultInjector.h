//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-consistency fault-injection engine.
///
/// WARio's correctness claim is that the inserted checkpoints make every
/// region idempotent: a power failure at *any* cycle must re-execute to
/// the same NVM end state and program output as an uninterrupted run
/// (the memory-consistency property formalized by Surbatovich et al.).
/// The emulator's WAR monitor checks a sufficient static condition at
/// runtime; this engine checks the property itself, adversarially:
///
///  1. run the module once under continuous power with the event trace
///     enabled — the *golden* run (end state, output, return value, and
///     the cycle stamps of every checkpoint commit and NVM store);
///  2. pick crash points (active-cycle budgets) per campaign mode:
///       - RegionBoundaries: immediately before and immediately after
///         every checkpoint commit (exhaustive over region boundaries);
///       - Stratified: N seeded, deterministic samples, one per equal
///         stratum of the golden cycle range;
///       - Adversarial: immediately before every commit and immediately
///         after every NVM store (where a WAR write has just landed);
///  3. re-run once per point with a power schedule that fails exactly
///     there and then stays up, fanning out over the src/support
///     ThreadPool (WARIO_JOBS honored);
///  4. differentially compare each run against the golden run — final
///     NVM image (minus the ckpt scratch range), return value, and
///     output (golden must be a subsequence of the crash run's output:
///     re-execution may replay out-writes but never alter them);
///  5. on divergence, bisect down to the earliest crash budget that
///     still diverges and emit a structured CrashReport naming the
///     region, the diverging addresses, and the golden instruction
///     window around the minimal crash point.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_VERIFY_FAULTINJECTOR_H
#define WARIO_VERIFY_FAULTINJECTOR_H

#include "emu/Emulator.h"
#include "verify/CrashReport.h"

namespace wario::verify {

enum class CampaignMode {
  RegionBoundaries, ///< Exhaustive over checkpoint-commit boundaries.
  Stratified,       ///< Seeded uniform sample per equal cycle stratum.
  Adversarial,      ///< Pre-commit + post-NVM-store placement.
};

const char *campaignModeName(CampaignMode M);

struct FaultInjectorOptions {
  CampaignMode Mode = CampaignMode::RegionBoundaries;
  /// Stratified mode: number of strata (= samples over the cycle range).
  unsigned Samples = 64;
  /// Stratified mode: RNG seed; equal seeds give identical crash points.
  uint32_t Seed = 0x5EED;
  /// Deterministic cap on tested points (0 = untested-point count is
  /// unbounded). When a mode generates more candidates, an evenly-strided
  /// subset is kept and the report records candidates vs tested.
  unsigned MaxPoints = 2048;
  /// Base emulator configuration for the golden and the injected runs.
  /// Power must be continuous (the injector owns the schedule); set
  /// WarIsFatal = false when campaigning against a deliberately weakened
  /// build (PipelineOptions::ResolveMiddleEndWars = false).
  EmulatorOptions BaseEO;
  std::string Entry = "main";
  /// Bisect each divergence to the earliest diverging crash budget.
  bool Bisect = true;
  /// Stop bisecting/reporting after this many divergences (all are still
  /// counted; only the first few are minimized in detail).
  unsigned MaxDivergences = 4;
  unsigned MaxReportedAddrs = 8;
  /// Golden instruction window radius (cycles) around the minimal point.
  uint64_t WindowRadius = 24;
  /// Worker threads for the campaign fan-out (0 = WARIO_JOBS / cores).
  unsigned Jobs = 0;
  /// Use the emulator's snapshot/restore engine (src/emu/Snapshot.h):
  /// record a snapshot chain during the golden run, resume each injected
  /// run from the governing snapshot of its crash budget, and splice the
  /// golden tail once the post-crash state reconverges. Reports are
  /// byte-identical either way; this (and the WARIO_SNAPSHOTS=0 override,
  /// see snapshotsEnabled()) only trades wall-clock for memory.
  bool UseSnapshots = true;
  /// Metadata echoed into the report.
  std::string Workload;
  std::string Config;
};

/// Runs a fault-injection campaign over \p MM. Deterministic: equal
/// modules and options produce byte-identical reports regardless of Jobs.
CrashReport runCrashCampaign(const MModule &MM,
                             const FaultInjectorOptions &Opts);

/// Runs one campaign per entry of \p Modes over a single shared golden
/// run, deduplicating crash points across modes before the fan-out
/// (adversarial pre-commit/post-store points frequently coincide with
/// exhaustive region-boundary points; each distinct point is injected
/// once). Every returned report is byte-identical to what a standalone
/// runCrashCampaign() of that mode would produce — the dedup savings
/// appear only in the engine statistics (UnionPoints/SharedPoints/
/// PhysicalRuns). Opts.Mode is ignored.
std::vector<CrashReport> runCrashCampaigns(const MModule &MM,
                                           const FaultInjectorOptions &Opts,
                                           const std::vector<CampaignMode> &Modes);

} // namespace wario::verify

#endif // WARIO_VERIFY_FAULTINJECTOR_H
