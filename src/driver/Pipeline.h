//===----------------------------------------------------------------------===//
///
/// \file
/// The "iclang" pipeline (paper Section 4.6): orchestrates the middle-end
/// and back-end transformations for each evaluated software environment.
///
/// Environments follow Section 5.1.3:
///  - PlainC: uninstrumented reference (cannot survive power failures).
///  - Ratchet: conservative aliasing, no clustering, legacy back end
///    (stack-slot sharing + per-write spill checkpoints, plain epilogs).
///  - RPDG: Ratchet placement driven by the precise PDG.
///  - EpilogOnly / WriteClustererOnly / LoopWriteClustererOnly: individual
///    WARio transformations on top of R-PDG (the isolated bars of Fig. 4).
///  - WarioComplete: all WARio transformations except the Expander.
///  - WarioExpander: WARio + Expander.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_DRIVER_PIPELINE_H
#define WARIO_DRIVER_PIPELINE_H

#include "backend/Backend.h"
#include "transforms/CheckpointInserter.h"
#include "transforms/Expander.h"
#include "transforms/LoopWriteClusterer.h"

namespace wario {

enum class Environment {
  PlainC,
  Ratchet,
  RPDG,
  EpilogOnly,
  WriteClustererOnly,
  LoopWriteClustererOnly,
  WarioComplete,
  WarioExpander,
};

const char *environmentName(Environment E);

/// Reverse lookup for CLI and wire use (wario-served requests and the
/// load generator's --envs flag name environments as strings). Accepts
/// the environmentName() form and the bench table short form ("wario",
/// "r-pdg", "epilog-opt", ...). Returns false on unknown names.
bool environmentFromName(const std::string &Name, Environment &Out);

/// All evaluated environments, in the paper's presentation order.
std::vector<Environment> allEnvironments();

struct PipelineOptions {
  Environment Env = Environment::WarioComplete;
  /// Loop Write Clusterer unroll factor N (paper default 8).
  unsigned UnrollFactor = 8;
  /// Ablation: disable the loop-depth-weighted hitting set in favor of
  /// checkpoint-per-WAR-write placement.
  bool MiddleEndHittingSet = true;
  /// Ablation: uniform candidate costs instead of 4^loop-depth.
  bool DepthWeightedCost = true;
  /// Ablation: force the Ratchet-grade conservative aliasing even for
  /// WARio environments (isolates the PDG's contribution).
  bool ForceConservativeAA = false;
  /// Extension (paper Section 6 future work): bound idempotent region
  /// length with register-counter checkpoints in cut-free loops.
  bool BoundRegions = false;
  uint64_t MaxRegionCycles = 20'000;
  /// The checkpoint strategy axis of the bench matrix (orthogonal to
  /// Env): Idempotent is the paper's WAR-breaking placement;
  /// Differential and Speculative are the related-work rollback
  /// strategies (docs/STRATEGIES.md). Both rollback strategies force
  /// region bounding on — without WAR checkpoints, cut-free loops are
  /// their only forward-progress mechanism inside long loops.
  CheckpointStrategy Strat = CheckpointStrategy::Idempotent;
  /// Negative control (Differential): when false, the emulator's reboot
  /// rollback drops the journal without restoring any page, so
  /// uncommitted writes survive and the fault injector must observe a
  /// divergence (docs/STRATEGIES.md, bench/verify_crash).
  bool DiffFullRollback = true;
  /// Negative control (Speculative): when false, WAR writes execute
  /// speculatively WITHOUT undo logging — rollback is incomplete and the
  /// fault injector must observe a divergence.
  bool SpecLogWars = true;
  /// Negative control for the crash-consistency fault injector
  /// (src/verify/): skip the middle-end hitting-set WAR resolution, so
  /// detected WARs are left unbroken. Run the result with
  /// EmulatorOptions::WarIsFatal = false; the fault injector must find a
  /// state divergence on such a build — that is what proves the checker
  /// has teeth (bench/verify_crash, tests/CrashConsistencyTest).
  bool ResolveMiddleEndWars = true;

  /// Ordered by the full configuration so result caches can key on the
  /// actual options instead of caller-provided tags (bench/Harness.cpp).
  auto operator<=>(const PipelineOptions &) const = default;
};

struct PipelineStats {
  unsigned InlinedPrepass = 0;
  unsigned RegionsBounded = 0;
  unsigned AllocasPromoted = 0;
  LoopWriteClustererStats LoopClusterer;
  ExpanderStats Expander;
  unsigned StoresSunk = 0;
  CheckpointInserterStats MiddleEnd;
  BackendStats Backend;

  /// Wall-clock seconds actually spent per stage (zero for stages served
  /// from a cache). The pipeline fills the compile stages; the bench
  /// harness fills FrontendSeconds/EmulateSeconds and accumulates all of
  /// them for --timing.
  double FrontendSeconds = 0;
  double FrontHalfSeconds = 0;
  double MiddleEndSeconds = 0;
  double BackendSeconds = 0;
  double EmulateSeconds = 0;
};

/// The knobs that actually feed the middle end, derived from an
/// environment + options. Two option sets with equal MiddleEndConfig
/// produce identical post-middle-end IR from the same input module, which
/// is what makes the middle-end stage cacheable (e.g. R-PDG and
/// epilog-optimizer differ only in the back end).
struct MiddleEndConfig {
  bool Instrumented = false;
  bool ConservativeAA = false;
  bool LoopCluster = false;
  bool Expand = false;
  bool Cluster = false;
  /// Loop Write Clusterer factor; canonically 0 when LoopCluster is off
  /// (the option is never read then).
  unsigned UnrollFactor = 0;
  bool HittingSet = false;
  bool DepthWeightedCost = false;
  bool ResolveWars = false;
  bool BoundRegions = false;
  uint64_t MaxRegionCycles = 0;
  /// Strategy mode for the checkpoint inserter / region bounder
  /// (canonically Idempotent for plain C). The placement knobs above
  /// (HittingSet, DepthWeightedCost, ResolveWars) are canonicalized to
  /// their defaults for the rollback strategies — no placement runs.
  CheckpointStrategy Strat = CheckpointStrategy::Idempotent;
  /// Canonically true except under Strat == Speculative (negative
  /// control; only read there).
  bool SpecLogWars = true;

  auto operator<=>(const MiddleEndConfig &) const = default;
};

MiddleEndConfig middleEndConfig(const PipelineOptions &Opts);

/// Backend lowering flags for an environment (also canonical: equal
/// configs lower identically).
BackendOptions backendConfig(const PipelineOptions &Opts);

/// --- Staged compilation -----------------------------------------------------
/// compile() is the composition of three stages so the experiment harness
/// can cache each stage's artifact separately (see bench/Harness.h):
///
///   frontend (workloads)  ->  front half  ->  middle end  ->  back end
///        Module                 Module          Module         MModule
///
/// The front half is environment-independent; the middle end depends only
/// on middleEndConfig(Opts); the back end only on backendConfig(Opts).

/// Environment-independent front half: inline prepass + scalar promotion
/// + cleanup (the opt -always-inline -inline / -mem2reg prepass of paper
/// Section 4.6). Mutates \p M in place.
void runFrontHalf(Module &M, PipelineStats &S);

/// Environment-specific middle end (paper Figure 2 order), mutating \p M
/// in place. Expects \p M to be front-half output.
void runMiddleEnd(Module &M, const PipelineOptions &Opts, PipelineStats &S);

/// Lowers middle-end output through the back end. Read-only on \p M, so
/// one cached middle-end module can feed several backend configurations
/// (warm the CFG caches first when sharing across threads; see
/// Module-level note in bench/Harness.cpp).
MModule runBackendStage(const Module &M, const PipelineOptions &Opts,
                        PipelineStats &S);

/// Compiles \p M (mutated in place) to a machine module for the given
/// environment: runFrontHalf + runMiddleEnd + runBackendStage.
MModule compile(Module &M, const PipelineOptions &Opts,
                PipelineStats *Stats = nullptr);

} // namespace wario

#endif // WARIO_DRIVER_PIPELINE_H
