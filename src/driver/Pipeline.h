//===----------------------------------------------------------------------===//
///
/// \file
/// The "iclang" pipeline (paper Section 4.6): orchestrates the middle-end
/// and back-end transformations for each evaluated software environment.
///
/// Environments follow Section 5.1.3:
///  - PlainC: uninstrumented reference (cannot survive power failures).
///  - Ratchet: conservative aliasing, no clustering, legacy back end
///    (stack-slot sharing + per-write spill checkpoints, plain epilogs).
///  - RPDG: Ratchet placement driven by the precise PDG.
///  - EpilogOnly / WriteClustererOnly / LoopWriteClustererOnly: individual
///    WARio transformations on top of R-PDG (the isolated bars of Fig. 4).
///  - WarioComplete: all WARio transformations except the Expander.
///  - WarioExpander: WARio + Expander.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_DRIVER_PIPELINE_H
#define WARIO_DRIVER_PIPELINE_H

#include "backend/Backend.h"
#include "transforms/CheckpointInserter.h"
#include "transforms/Expander.h"
#include "transforms/LoopWriteClusterer.h"

namespace wario {

enum class Environment {
  PlainC,
  Ratchet,
  RPDG,
  EpilogOnly,
  WriteClustererOnly,
  LoopWriteClustererOnly,
  WarioComplete,
  WarioExpander,
};

const char *environmentName(Environment E);

/// All evaluated environments, in the paper's presentation order.
std::vector<Environment> allEnvironments();

struct PipelineOptions {
  Environment Env = Environment::WarioComplete;
  /// Loop Write Clusterer unroll factor N (paper default 8).
  unsigned UnrollFactor = 8;
  /// Ablation: disable the loop-depth-weighted hitting set in favor of
  /// checkpoint-per-WAR-write placement.
  bool MiddleEndHittingSet = true;
  /// Ablation: uniform candidate costs instead of 4^loop-depth.
  bool DepthWeightedCost = true;
  /// Ablation: force the Ratchet-grade conservative aliasing even for
  /// WARio environments (isolates the PDG's contribution).
  bool ForceConservativeAA = false;
  /// Extension (paper Section 6 future work): bound idempotent region
  /// length with register-counter checkpoints in cut-free loops.
  bool BoundRegions = false;
  uint64_t MaxRegionCycles = 20'000;
};

struct PipelineStats {
  unsigned InlinedPrepass = 0;
  unsigned RegionsBounded = 0;
  unsigned AllocasPromoted = 0;
  LoopWriteClustererStats LoopClusterer;
  ExpanderStats Expander;
  unsigned StoresSunk = 0;
  CheckpointInserterStats MiddleEnd;
  BackendStats Backend;
};

/// Compiles \p M (mutated in place) to a machine module for the given
/// environment.
MModule compile(Module &M, const PipelineOptions &Opts,
                PipelineStats *Stats = nullptr);

} // namespace wario

#endif // WARIO_DRIVER_PIPELINE_H
