#include "driver/Pipeline.h"

#include "support/ThreadPool.h"
#include "transforms/Inliner.h"
#include "transforms/LoopUnroller.h"
#include "transforms/Mem2Reg.h"
#include "transforms/RegionBounder.h"
#include "transforms/Utils.h"
#include "transforms/WriteClusterer.h"

#include <chrono>

using namespace wario;

namespace {

/// Adds the scope's wall-clock duration to a PipelineStats stage field.
class StageTimer {
public:
  explicit StageTimer(double &Sink)
      : Sink(Sink), Start(std::chrono::steady_clock::now()) {}
  ~StageTimer() {
    Sink += std::chrono::duration<double>(
                std::chrono::steady_clock::now() - Start)
                .count();
  }

private:
  double &Sink;
  std::chrono::steady_clock::time_point Start;
};

/// Results of the function-local middle-end passes for one function.
/// The parallel phases fill one slot per function; totals are reduced
/// sequentially in function order afterwards, so stats are identical
/// for every WARIO_JOBS value.
struct PerFunctionStats {
  LoopWriteClustererStats LWC;
  unsigned AllocasPromoted = 0;
  unsigned StoresSunk = 0;
  CheckpointInserterStats Checkpoints;
  unsigned RegionsBounded = 0;
};

} // namespace

const char *wario::environmentName(Environment E) {
  switch (E) {
  case Environment::PlainC: return "plain-c";
  case Environment::Ratchet: return "ratchet";
  case Environment::RPDG: return "r-pdg";
  case Environment::EpilogOnly: return "epilog-optimizer";
  case Environment::WriteClustererOnly: return "write-clusterer";
  case Environment::LoopWriteClustererOnly: return "loop-write-clusterer";
  case Environment::WarioComplete: return "wario";
  case Environment::WarioExpander: return "wario+expander";
  }
  return "<bad environment>";
}

bool wario::environmentFromName(const std::string &Name, Environment &Out) {
  static const struct {
    const char *Alias;
    Environment E;
  } Table[] = {
      {"plain-c", Environment::PlainC},
      {"ratchet", Environment::Ratchet},
      {"r-pdg", Environment::RPDG},
      {"rpdg", Environment::RPDG},
      {"epilog-optimizer", Environment::EpilogOnly},
      {"epilog-opt", Environment::EpilogOnly},
      {"write-clusterer", Environment::WriteClustererOnly},
      {"write-cl", Environment::WriteClustererOnly},
      {"loop-write-clusterer", Environment::LoopWriteClustererOnly},
      {"loop-cl", Environment::LoopWriteClustererOnly},
      {"wario", Environment::WarioComplete},
      {"wario+expander", Environment::WarioExpander},
      {"wario+exp", Environment::WarioExpander},
  };
  for (const auto &Row : Table)
    if (Name == Row.Alias) {
      Out = Row.E;
      return true;
    }
  return false;
}

std::vector<Environment> wario::allEnvironments() {
  return {Environment::PlainC,
          Environment::Ratchet,
          Environment::RPDG,
          Environment::EpilogOnly,
          Environment::WriteClustererOnly,
          Environment::LoopWriteClustererOnly,
          Environment::WarioComplete,
          Environment::WarioExpander};
}

MiddleEndConfig wario::middleEndConfig(const PipelineOptions &Opts) {
  Environment E = Opts.Env;
  MiddleEndConfig C;
  C.Instrumented = E != Environment::PlainC;
  if (!C.Instrumented)
    return C; // All other knobs are never read for plain C.
  C.ConservativeAA =
      E == Environment::Ratchet || Opts.ForceConservativeAA;
  C.LoopCluster = E == Environment::LoopWriteClustererOnly ||
                  E == Environment::WarioComplete ||
                  E == Environment::WarioExpander;
  C.Expand = E == Environment::WarioExpander;
  C.Cluster = E == Environment::WriteClustererOnly ||
              E == Environment::WarioComplete ||
              E == Environment::WarioExpander;
  C.UnrollFactor = C.LoopCluster ? Opts.UnrollFactor : 0;
  C.Strat = Opts.Strat;
  if (C.Strat == CheckpointStrategy::Idempotent) {
    C.HittingSet = Opts.MiddleEndHittingSet;
    C.DepthWeightedCost = Opts.DepthWeightedCost;
    C.ResolveWars = Opts.ResolveMiddleEndWars;
  } else {
    // The placement machinery never runs for the rollback strategies;
    // canonicalize its knobs so option sets differing only in unread
    // placement flags share one middle-end artifact.
    C.HittingSet = true;
    C.DepthWeightedCost = true;
    C.ResolveWars = true;
  }
  C.SpecLogWars =
      C.Strat == CheckpointStrategy::Speculative ? Opts.SpecLogWars : true;
  // The rollback strategies leave WAR loops checkpoint-free, so the
  // region bounder is their only in-loop forward-progress mechanism and
  // is forced on.
  C.BoundRegions =
      Opts.BoundRegions || C.Strat != CheckpointStrategy::Idempotent;
  C.MaxRegionCycles = C.BoundRegions ? Opts.MaxRegionCycles : 0;
  return C;
}

BackendOptions wario::backendConfig(const PipelineOptions &Opts) {
  Environment E = Opts.Env;
  bool Instrumented = E != Environment::PlainC;
  bool LegacyBackend =
      E == Environment::Ratchet || E == Environment::RPDG;
  BackendOptions BO;
  BO.InsertCheckpoints = Instrumented;
  BO.StackSlotSharing = LegacyBackend;
  BO.HittingSetSpill = Instrumented && !LegacyBackend &&
                       E != Environment::EpilogOnly;
  BO.EpilogOptimizer = E == Environment::EpilogOnly ||
                       E == Environment::WarioComplete ||
                       E == Environment::WarioExpander;
  BO.Strat = Instrumented ? Opts.Strat : CheckpointStrategy::Idempotent;
  BO.DiffFullRollback = BO.Strat == CheckpointStrategy::Differential
                            ? Opts.DiffFullRollback
                            : true;
  return BO;
}

void wario::runFrontHalf(Module &M, PipelineStats &S) {
  // Shared "-O3" front half: basic inlining (the opt -always-inline
  // -inline prepass of Section 4.6), scalar promotion, and cleanup.
  // Inlining rewrites bodies across function boundaries and must stay
  // sequential; promotion and cleanup are function-local and fan out.
  StageTimer T(S.FrontHalfSeconds);
  S.InlinedPrepass = inlineSmallFunctions(M, /*MaxCalleeSize=*/24);
  const auto &Fns = M.functions();
  std::vector<unsigned> Promoted(Fns.size(), 0);
  parallelFor(Fns.size(), [&](size_t I) {
    Promoted[I] = promoteAllocasToSSA(*Fns[I]);
    cleanup(*Fns[I]);
  });
  for (unsigned N : Promoted)
    S.AllocasPromoted += N;
}

void wario::runMiddleEnd(Module &M, const PipelineOptions &Opts,
                         PipelineStats &S) {
  StageTimer T(S.MiddleEndSeconds);
  MiddleEndConfig C = middleEndConfig(Opts);
  const auto &Fns = M.functions();

  // Every middle-end pass except the Expander is function-local, and
  // each function allocates from its own arena, interns constants/types
  // through the context's value-keyed maps, and assigns ids from its own
  // counter — so per-function work commutes and the fan-out below is
  // byte-identical for every WARIO_JOBS value. The Expander rewrites
  // call sites across function boundaries; it stays sequential and acts
  // as the barrier between the two parallel phases.

  if (!C.Instrumented) {
    parallelFor(Fns.size(), [&](size_t I) {
      unrollStandardLoops(*Fns[I], /*Factor=*/4, /*MaxBodyInsts=*/40);
      cleanup(*Fns[I]);
    });
    return;
  }
  AliasPrecision Precision = C.ConservativeAA
                                 ? AliasPrecision::Conservative
                                 : AliasPrecision::Precise;
  std::vector<PerFunctionStats> FS(Fns.size());

  // Phase A (Figure 2 order): Loop Write Clusterer, then the
  // user-specified optimization level (-O3's unroller, Section 4.6).
  parallelFor(Fns.size(), [&](size_t I) {
    Function &F = *Fns[I];
    if (C.LoopCluster) {
      LoopWriteClustererOptions LWC;
      LWC.UnrollFactor = C.UnrollFactor;
      LWC.Precision = Precision;
      FS[I].LWC = runLoopWriteClusterer(F, LWC);
      cleanup(F);
    }
    unrollStandardLoops(F, /*Factor=*/4, /*MaxBodyInsts=*/40);
    cleanup(F);
  });

  // Module-level barrier: the Expander clones callee bodies into
  // callers, then the new allocas are promoted function-locally.
  if (C.Expand) {
    S.Expander = runExpander(M);
    parallelFor(Fns.size(), [&](size_t I) {
      FS[I].AllocasPromoted = promoteAllocasToSSA(*Fns[I]);
      cleanup(*Fns[I]);
    });
  }

  // Phase B: Write Clusterer, PDG Checkpoint Inserter, region bounding.
  CheckpointInserterOptions CI;
  CI.Precision = Precision;
  CI.Strategy = C.HittingSet ? PlacementStrategy::HittingSet
                             : PlacementStrategy::PerWrite;
  CI.DepthWeightedCost = C.DepthWeightedCost;
  CI.ResolveWars = C.ResolveWars;
  CI.Mode = C.Strat;
  CI.SpecLogWars = C.SpecLogWars;
  RegionBounderOptions RB;
  RB.MaxRegionCycles = C.MaxRegionCycles;
  RB.Strat = C.Strat;
  parallelFor(Fns.size(), [&](size_t I) {
    Function &F = *Fns[I];
    if (C.Cluster) {
      AliasAnalysis AA(Precision);
      FS[I].StoresSunk = runWriteClusterer(F, AA);
    }
    FS[I].Checkpoints = insertCheckpoints(F, CI);
    if (C.BoundRegions)
      FS[I].RegionsBounded = boundRegions(F, RB).LoopsBounded;
  });

  // Sequential reduction in function order.
  for (const PerFunctionStats &P : FS) {
    S.LoopClusterer.LoopsTransformed += P.LWC.LoopsTransformed;
    S.LoopClusterer.StoresPostponed += P.LWC.StoresPostponed;
    S.LoopClusterer.ExitCopies += P.LWC.ExitCopies;
    S.LoopClusterer.RuntimeChecks += P.LWC.RuntimeChecks;
    S.AllocasPromoted += P.AllocasPromoted;
    S.StoresSunk += P.StoresSunk;
    S.MiddleEnd.WarsFound += P.Checkpoints.WarsFound;
    S.MiddleEnd.WarsAlreadyCut += P.Checkpoints.WarsAlreadyCut;
    S.MiddleEnd.Inserted += P.Checkpoints.Inserted;
    S.MiddleEnd.StoresMarked += P.Checkpoints.StoresMarked;
    S.RegionsBounded += P.RegionsBounded;
  }
}

MModule wario::runBackendStage(const Module &M, const PipelineOptions &Opts,
                               PipelineStats &S) {
  StageTimer T(S.BackendSeconds);
  return runBackend(M, backendConfig(Opts), &S.Backend);
}

MModule wario::compile(Module &M, const PipelineOptions &Opts,
                       PipelineStats *Stats) {
  PipelineStats Local;
  PipelineStats &S = Stats ? *Stats : Local;
  runFrontHalf(M, S);
  runMiddleEnd(M, Opts, S);
  return runBackendStage(M, Opts, S);
}
