#include "driver/Pipeline.h"

#include "transforms/Inliner.h"
#include "transforms/LoopUnroller.h"
#include "transforms/Mem2Reg.h"
#include "transforms/RegionBounder.h"
#include "transforms/Utils.h"
#include "transforms/WriteClusterer.h"

#include <chrono>

using namespace wario;

namespace {

/// Adds the scope's wall-clock duration to a PipelineStats stage field.
class StageTimer {
public:
  explicit StageTimer(double &Sink)
      : Sink(Sink), Start(std::chrono::steady_clock::now()) {}
  ~StageTimer() {
    Sink += std::chrono::duration<double>(
                std::chrono::steady_clock::now() - Start)
                .count();
  }

private:
  double &Sink;
  std::chrono::steady_clock::time_point Start;
};

} // namespace

const char *wario::environmentName(Environment E) {
  switch (E) {
  case Environment::PlainC: return "plain-c";
  case Environment::Ratchet: return "ratchet";
  case Environment::RPDG: return "r-pdg";
  case Environment::EpilogOnly: return "epilog-optimizer";
  case Environment::WriteClustererOnly: return "write-clusterer";
  case Environment::LoopWriteClustererOnly: return "loop-write-clusterer";
  case Environment::WarioComplete: return "wario";
  case Environment::WarioExpander: return "wario+expander";
  }
  return "<bad environment>";
}

std::vector<Environment> wario::allEnvironments() {
  return {Environment::PlainC,
          Environment::Ratchet,
          Environment::RPDG,
          Environment::EpilogOnly,
          Environment::WriteClustererOnly,
          Environment::LoopWriteClustererOnly,
          Environment::WarioComplete,
          Environment::WarioExpander};
}

MiddleEndConfig wario::middleEndConfig(const PipelineOptions &Opts) {
  Environment E = Opts.Env;
  MiddleEndConfig C;
  C.Instrumented = E != Environment::PlainC;
  if (!C.Instrumented)
    return C; // All other knobs are never read for plain C.
  C.ConservativeAA =
      E == Environment::Ratchet || Opts.ForceConservativeAA;
  C.LoopCluster = E == Environment::LoopWriteClustererOnly ||
                  E == Environment::WarioComplete ||
                  E == Environment::WarioExpander;
  C.Expand = E == Environment::WarioExpander;
  C.Cluster = E == Environment::WriteClustererOnly ||
              E == Environment::WarioComplete ||
              E == Environment::WarioExpander;
  C.UnrollFactor = C.LoopCluster ? Opts.UnrollFactor : 0;
  C.HittingSet = Opts.MiddleEndHittingSet;
  C.DepthWeightedCost = Opts.DepthWeightedCost;
  C.ResolveWars = Opts.ResolveMiddleEndWars;
  C.BoundRegions = Opts.BoundRegions;
  C.MaxRegionCycles = Opts.BoundRegions ? Opts.MaxRegionCycles : 0;
  return C;
}

BackendOptions wario::backendConfig(const PipelineOptions &Opts) {
  Environment E = Opts.Env;
  bool Instrumented = E != Environment::PlainC;
  bool LegacyBackend =
      E == Environment::Ratchet || E == Environment::RPDG;
  BackendOptions BO;
  BO.InsertCheckpoints = Instrumented;
  BO.StackSlotSharing = LegacyBackend;
  BO.HittingSetSpill = Instrumented && !LegacyBackend &&
                       E != Environment::EpilogOnly;
  BO.EpilogOptimizer = E == Environment::EpilogOnly ||
                       E == Environment::WarioComplete ||
                       E == Environment::WarioExpander;
  return BO;
}

void wario::runFrontHalf(Module &M, PipelineStats &S) {
  // Shared "-O3" front half: basic inlining (the opt -always-inline
  // -inline prepass of Section 4.6), scalar promotion, and cleanup.
  StageTimer T(S.FrontHalfSeconds);
  S.InlinedPrepass = inlineSmallFunctions(M, /*MaxCalleeSize=*/24);
  S.AllocasPromoted = promoteAllocasToSSA(M);
  cleanupModule(M);
}

void wario::runMiddleEnd(Module &M, const PipelineOptions &Opts,
                         PipelineStats &S) {
  StageTimer T(S.MiddleEndSeconds);
  MiddleEndConfig C = middleEndConfig(Opts);

  if (!C.Instrumented) {
    unrollStandardLoops(M);
    cleanupModule(M);
    return;
  }
  AliasPrecision Precision = C.ConservativeAA
                                 ? AliasPrecision::Conservative
                                 : AliasPrecision::Precise;

  // Middle end (Figure 2 order: Loop Write Clusterer, Expander,
  // Write Clusterer, PDG Checkpoint Inserter).
  if (C.LoopCluster) {
    LoopWriteClustererOptions LWC;
    LWC.UnrollFactor = C.UnrollFactor;
    LWC.Precision = Precision;
    S.LoopClusterer = runLoopWriteClusterer(M, LWC);
    cleanupModule(M);
  }
  // The user-specified optimization level (-O3's unroller) runs after
  // the Loop Write Clusterer and before the Expander (Section 4.6).
  unrollStandardLoops(M);
  cleanupModule(M);
  if (C.Expand) {
    S.Expander = runExpander(M);
    S.AllocasPromoted += promoteAllocasToSSA(M);
    cleanupModule(M);
  }
  if (C.Cluster) {
    AliasAnalysis AA(Precision);
    S.StoresSunk = runWriteClusterer(M, AA);
  }
  CheckpointInserterOptions CI;
  CI.Precision = Precision;
  CI.Strategy = C.HittingSet ? PlacementStrategy::HittingSet
                             : PlacementStrategy::PerWrite;
  CI.DepthWeightedCost = C.DepthWeightedCost;
  CI.ResolveWars = C.ResolveWars;
  S.MiddleEnd = insertCheckpoints(M, CI);

  if (C.BoundRegions) {
    RegionBounderOptions RB;
    RB.MaxRegionCycles = C.MaxRegionCycles;
    S.RegionsBounded = boundRegions(M, RB).LoopsBounded;
  }
}

MModule wario::runBackendStage(const Module &M, const PipelineOptions &Opts,
                               PipelineStats &S) {
  StageTimer T(S.BackendSeconds);
  return runBackend(M, backendConfig(Opts), &S.Backend);
}

MModule wario::compile(Module &M, const PipelineOptions &Opts,
                       PipelineStats *Stats) {
  PipelineStats Local;
  PipelineStats &S = Stats ? *Stats : Local;
  runFrontHalf(M, S);
  runMiddleEnd(M, Opts, S);
  return runBackendStage(M, Opts, S);
}
