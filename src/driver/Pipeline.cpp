#include "driver/Pipeline.h"

#include "transforms/Inliner.h"
#include "transforms/LoopUnroller.h"
#include "transforms/Mem2Reg.h"
#include "transforms/RegionBounder.h"
#include "transforms/Utils.h"
#include "transforms/WriteClusterer.h"

using namespace wario;

const char *wario::environmentName(Environment E) {
  switch (E) {
  case Environment::PlainC: return "plain-c";
  case Environment::Ratchet: return "ratchet";
  case Environment::RPDG: return "r-pdg";
  case Environment::EpilogOnly: return "epilog-optimizer";
  case Environment::WriteClustererOnly: return "write-clusterer";
  case Environment::LoopWriteClustererOnly: return "loop-write-clusterer";
  case Environment::WarioComplete: return "wario";
  case Environment::WarioExpander: return "wario+expander";
  }
  return "<bad environment>";
}

std::vector<Environment> wario::allEnvironments() {
  return {Environment::PlainC,
          Environment::Ratchet,
          Environment::RPDG,
          Environment::EpilogOnly,
          Environment::WriteClustererOnly,
          Environment::LoopWriteClustererOnly,
          Environment::WarioComplete,
          Environment::WarioExpander};
}

MModule wario::compile(Module &M, const PipelineOptions &Opts,
                       PipelineStats *Stats) {
  PipelineStats Local;
  PipelineStats &S = Stats ? *Stats : Local;
  Environment E = Opts.Env;

  // --- Shared "-O3" front half: basic inlining (the opt -always-inline
  // -inline prepass of Section 4.6), scalar promotion, and cleanup.
  S.InlinedPrepass = inlineSmallFunctions(M, /*MaxCalleeSize=*/24);
  S.AllocasPromoted = promoteAllocasToSSA(M);
  cleanupModule(M);

  bool Instrumented = E != Environment::PlainC;
  if (!Instrumented) {
    unrollStandardLoops(M);
    cleanupModule(M);
  }
  AliasPrecision Precision =
      (E == Environment::Ratchet || Opts.ForceConservativeAA)
          ? AliasPrecision::Conservative
          : AliasPrecision::Precise;

  // --- Middle end (Figure 2 order: Loop Write Clusterer, Expander,
  // Write Clusterer, PDG Checkpoint Inserter).
  if (Instrumented) {
    bool LoopCluster = E == Environment::LoopWriteClustererOnly ||
                       E == Environment::WarioComplete ||
                       E == Environment::WarioExpander;
    bool Expand = E == Environment::WarioExpander;
    bool Cluster = E == Environment::WriteClustererOnly ||
                   E == Environment::WarioComplete ||
                   E == Environment::WarioExpander;

    if (LoopCluster) {
      LoopWriteClustererOptions LWC;
      LWC.UnrollFactor = Opts.UnrollFactor;
      LWC.Precision = Precision;
      S.LoopClusterer = runLoopWriteClusterer(M, LWC);
      cleanupModule(M);
    }
    // The user-specified optimization level (-O3's unroller) runs after
    // the Loop Write Clusterer and before the Expander (Section 4.6).
    unrollStandardLoops(M);
    cleanupModule(M);
    if (Expand) {
      S.Expander = runExpander(M);
      S.AllocasPromoted += promoteAllocasToSSA(M);
      cleanupModule(M);
    }
    if (Cluster) {
      AliasAnalysis AA(Precision);
      S.StoresSunk = runWriteClusterer(M, AA);
    }
    CheckpointInserterOptions CI;
    CI.Precision = Precision;
    CI.Strategy = Opts.MiddleEndHittingSet ? PlacementStrategy::HittingSet
                                           : PlacementStrategy::PerWrite;
    CI.DepthWeightedCost = Opts.DepthWeightedCost;
    S.MiddleEnd = insertCheckpoints(M, CI);

    if (Opts.BoundRegions) {
      RegionBounderOptions RB;
      RB.MaxRegionCycles = Opts.MaxRegionCycles;
      S.RegionsBounded = boundRegions(M, RB).LoopsBounded;
    }
  }

  // --- Back end.
  BackendOptions BO;
  BO.InsertCheckpoints = Instrumented;
  bool LegacyBackend =
      E == Environment::Ratchet || E == Environment::RPDG;
  BO.StackSlotSharing = LegacyBackend;
  BO.HittingSetSpill = Instrumented && !LegacyBackend &&
                       E != Environment::EpilogOnly;
  BO.EpilogOptimizer = E == Environment::EpilogOnly ||
                       E == Environment::WarioComplete ||
                       E == Environment::WarioExpander;
  return runBackend(M, BO, &S.Backend);
}
