#include "workloads/Workloads.h"

#include "frontend/Frontend.h"
#include "workloads/WorkloadSources.h"

using namespace wario;

const std::vector<Workload> &wario::allWorkloads() {
  static const std::vector<Workload> Workloads = {
      {"coremark", coremarkSource()},
      {"sha", shaSource()},
      {"crc", crcSource()},
      {"aes", aesSource()},
      {"dijkstra", dijkstraSource()},
      {"picojpeg", picojpegSource()},
  };
  return Workloads;
}

const Workload *wario::findWorkload(const std::string &Name) {
  for (const Workload &W : allWorkloads())
    if (W.Name == Name)
      return &W;
  return nullptr;
}

const Workload &wario::getWorkload(const std::string &Name) {
  if (const Workload *W = findWorkload(Name))
    return *W;
  assert(false && "unknown workload name");
  return allWorkloads().front();
}

std::unique_ptr<Module> wario::buildWorkloadIR(const Workload &W,
                                               DiagnosticEngine &Diags) {
  return compileC(W.Source, W.Name, Diags);
}
