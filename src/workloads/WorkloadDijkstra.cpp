//===----------------------------------------------------------------------===//
///
/// \file
/// MiBench-style Dijkstra: repeated single-source shortest paths over a
/// dense adjacency matrix. Few WAR violations occur (distance relaxations
/// are guarded by branches), so — as in the paper — no WARio
/// transformation moves the needle much on this benchmark.
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadSources.h"

const char *wario::dijkstraSource() {
  return R"CSRC(
/* Dijkstra over a 24-node random dense graph, all-pairs style. */

int adj[24][24];
int dist[24];
int visited[24];
unsigned int rng_state = 0xD1357A22;

unsigned int rng_next(void) {
  rng_state ^= rng_state << 13;
  rng_state ^= rng_state >> 17;
  rng_state ^= rng_state << 5;
  return rng_state;
}

void build_graph(void) {
  for (int i = 0; i < 24; i++) {
    for (int j = 0; j < 24; j++) {
      if (i == j) {
        adj[i][j] = 0;
      } else {
        int w = (int)(rng_next() % 97) + 1;
        if (w > 80)
          w = 0x0FFFFFFF; /* "no edge" */
        adj[i][j] = w;
      }
    }
  }
}

int shortest_from(int src) {
  for (int i = 0; i < 24; i++) {
    dist[i] = 0x0FFFFFFF;
    visited[i] = 0;
  }
  dist[src] = 0;
  for (int iter = 0; iter < 24; iter++) {
    int u = -1;
    int best = 0x10000000;
    for (int i = 0; i < 24; i++) {
      if (!visited[i] && dist[i] < best) {
        best = dist[i];
        u = i;
      }
    }
    if (u < 0)
      break;
    visited[u] = 1;
    for (int v = 0; v < 24; v++) {
      int alt = dist[u] + adj[u][v];
      if (alt < dist[v])
        dist[v] = alt;
    }
  }
  int sum = 0;
  for (int i = 0; i < 24; i++)
    if (dist[i] < 0x0FFFFFFF)
      sum += dist[i];
  return sum;
}

int main(void) {
  build_graph();
  unsigned int mix = 0;
  for (int src = 0; src < 24; src++) {
    int s = shortest_from(src);
    mix = mix * 131 + (unsigned int)s;
  }
  return (int)(mix & 0x7FFFFFFF);
}
)CSRC";
}
