//===----------------------------------------------------------------------===//
///
/// \file
/// MiBench-style CRC-32: a static 256-entry table (as in MiBench's
/// telecomm/CRC32, which ships the table precomputed), then packet-by-
/// packet checksumming through a per-packet function call. The call-heavy
/// structure is what makes CRC profit from the epilog optimizer rather
/// than from write clustering, as in the paper.
///
/// The table literal is generated here at source-construction time with
/// the same polynomial MiBench uses.
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadSources.h"

#include <cstdint>
#include <cstdio>
#include <string>

const char *wario::crcSource() {
  static std::string Source = [] {
    std::string Table;
    for (unsigned N = 0; N != 256; ++N) {
      uint32_t C = N;
      for (int K = 0; K != 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      char Buf[16];
      std::snprintf(Buf, sizeof(Buf), "0x%08X,", C);
      Table += Buf;
      if (N % 6 == 5)
        Table += "\n  ";
    }
    return std::string(R"CSRC(
/* CRC-32 (IEEE 802.3 polynomial), static table as in MiBench telecomm. */

unsigned int crc_table[256] = {
  )CSRC") + Table + R"CSRC(
};

unsigned char packet[256];
unsigned int packet_crcs[64];
unsigned int rng_state = 0xC0FFEE01;

unsigned int rng_next(void) {
  rng_state ^= rng_state << 13;
  rng_state ^= rng_state >> 17;
  rng_state ^= rng_state << 5;
  return rng_state;
}

unsigned int crc_update(unsigned int crc, unsigned char *buf, int len) {
  unsigned int c = crc ^ 0xFFFFFFFF;
  for (int i = 0; i < len; i++)
    c = crc_table[(c ^ buf[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFF;
}

void fill_packet(int len) {
  for (int i = 0; i < len; i++)
    packet[i] = (unsigned char)(rng_next() >> 13);
}

int main(void) {
  unsigned int mix = 0;
  for (int p = 0; p < 64; p++) {
    int len = 64 + (int)(rng_next() & 127);
    fill_packet(len);
    unsigned int crc = crc_update(0, packet, len);
    packet_crcs[p] = crc;
    mix ^= crc + p;
    mix = (mix << 1) | (mix >> 31);
  }
  /* Fold the stored per-packet results back in. */
  for (int p = 0; p < 64; p++)
    mix += packet_crcs[p] >> (p & 15);
  return (int)(mix & 0x7FFFFFFF);
}
)CSRC";
  }();
  return Source.c_str();
}
