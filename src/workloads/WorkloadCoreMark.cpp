//===----------------------------------------------------------------------===//
///
/// \file
/// CoreMark-like workload with the benchmark's three classic kernels —
/// linked-list processing (via index-linked parallel arrays, as the
/// subset has no structs), matrix operations, and a character-driven
/// state machine — validated by a CRC-16 mix, like EEMBC CoreMark.
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadSources.h"

const char *wario::coremarkSource() {
  return R"CSRC(
/* CoreMark-like mix: list + matrix + state machine + crc16. */

int list_next[64];
int list_data[64];
int mat_a[10][10];
int mat_b[10][10];
int mat_c[10][10];
unsigned char input[256];
unsigned int rng_state = 0xC07E3A7C;

unsigned int rng_next(void) {
  rng_state ^= rng_state << 13;
  rng_state ^= rng_state >> 17;
  rng_state ^= rng_state << 5;
  return rng_state;
}

unsigned int crc16(unsigned int crc, unsigned int data) {
  for (int i = 0; i < 16; i++) {
    int bit = (crc & 1) ^ (data & 1);
    crc >>= 1;
    data >>= 1;
    if (bit)
      crc ^= 0xA001;
  }
  return crc;
}

/* --- Linked list over parallel arrays ------------------------------- */

void list_init(void) {
  for (int i = 0; i < 64; i++) {
    list_next[i] = i + 1;
    list_data[i] = (int)(rng_next() & 0xFFFF);
  }
  list_next[63] = -1;
}

int list_find(int head, int value) {
  int steps = 0;
  int cur = head;
  while (cur >= 0) {
    if (list_data[cur] == value)
      return steps;
    cur = list_next[cur];
    steps++;
  }
  return -steps;
}

/* Reverse the list, returning the new head (classic pointer chasing). */
int list_reverse(int head) {
  int prev = -1;
  int cur = head;
  while (cur >= 0) {
    int nxt = list_next[cur];
    list_next[cur] = prev;
    prev = cur;
    cur = nxt;
  }
  return prev;
}

/* --- Matrix kernels --------------------------------------------------- */

void matrix_init(void) {
  for (int i = 0; i < 10; i++)
    for (int j = 0; j < 10; j++) {
      mat_a[i][j] = (int)(rng_next() & 255) - 128;
      mat_b[i][j] = (int)(rng_next() & 255) - 128;
    }
}

void matrix_mul(void) {
  for (int i = 0; i < 10; i++)
    for (int j = 0; j < 10; j++) {
      int acc = 0;
      for (int k = 0; k < 10; k++)
        acc += mat_a[i][k] * mat_b[k][j];
      mat_c[i][j] = acc;
    }
}

void matrix_bitops(void) {
  for (int i = 0; i < 10; i++)
    for (int j = 0; j < 10; j++)
      mat_a[i][j] = (mat_a[i][j] >> 1) ^ mat_c[j][i];
}

/* --- State machine ------------------------------------------------------ */
/* Scans "numbers" in the input: states: 0 start, 1 int, 2 hex, 3 junk. */

int sm_counts[4];

void state_machine(void) {
  for (int i = 0; i < 4; i++)
    sm_counts[i] = 0;
  int state = 0;
  for (int i = 0; i < 256; i++) {
    unsigned char c = input[i];
    if (state == 0) {
      if (c >= '0' && c <= '9')
        state = 1;
      else if (c == 'x')
        state = 2;
      else
        state = 3;
    } else if (state == 1) {
      if (c >= '0' && c <= '9')
        state = 1;
      else if (c == ',')
        state = 0;
      else
        state = 3;
    } else if (state == 2) {
      int hex = (c >= '0' && c <= '9') ||
                (c >= 'a' && c <= 'f');
      if (hex)
        state = 2;
      else if (c == ',')
        state = 0;
      else
        state = 3;
    } else {
      if (c == ',')
        state = 0;
    }
    sm_counts[state]++;
  }
}

int main(void) {
  unsigned int crc = 0xFFFF;

  list_init();
  int head = 0;
  for (int round = 0; round < 8; round++) {
    int needle = list_data[(round * 17) & 63];
    crc = crc16(crc, (unsigned int)list_find(head, needle));
    head = list_reverse(head);
    crc = crc16(crc, (unsigned int)head);
  }

  matrix_init();
  for (int round = 0; round < 4; round++) {
    matrix_mul();
    matrix_bitops();
    crc = crc16(crc, (unsigned int)mat_c[round][round]);
  }

  for (int i = 0; i < 256; i++) {
    unsigned int r = rng_next() & 15;
    unsigned char c;
    if (r < 6)
      c = (unsigned char)('0' + (r & 7));
    else if (r < 8)
      c = 'x';
    else if (r < 10)
      c = ',';
    else if (r < 12)
      c = (unsigned char)('a' + (r & 3));
    else
      c = ' ';
    input[i] = c;
  }
  for (int round = 0; round < 4; round++) {
    state_machine();
    for (int s = 0; s < 4; s++)
      crc = crc16(crc, (unsigned int)sm_counts[s]);
  }

  return (int)(crc & 0x7FFFFFFF);
}
)CSRC";
}
