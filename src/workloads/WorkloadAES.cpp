//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny-AES-style AES-128 ECB encryption. The 16-byte state matrix lives
/// in NVM and every round transformation (SubBytes, ShiftRows,
/// MixColumns, AddRoundKey) read-modify-writes it in loops — the other
/// big Loop Write Clusterer winner in the paper (~70% middle-end
/// checkpoint reduction).
///
/// The S-box is generated at startup from the AES field inverse (the
/// usual static table would be 256 literals; generating it keeps the
/// algorithm equivalent and adds a realistic init phase).
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadSources.h"

const char *wario::aesSource() {
  return R"CSRC(
/* AES-128, ECB, encrypt-only; structure follows kokke/tiny-AES-c. */

unsigned char sbox[256];
unsigned char round_key[176];
unsigned char state[16];
unsigned char plain[256];
unsigned char cipher[256];
unsigned int rng_state = 0xAE5AE511;

unsigned int rng_next(void) {
  rng_state ^= rng_state << 13;
  rng_state ^= rng_state >> 17;
  rng_state ^= rng_state << 5;
  return rng_state;
}

unsigned char xtime(unsigned char x) {
  return (unsigned char)((x << 1) ^ ((x >> 7) * 0x1B));
}

unsigned char gmul(unsigned char a, unsigned char b) {
  unsigned char p = 0;
  for (int i = 0; i < 8; i++) {
    if (b & 1)
      p ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return p;
}

/* Build the S-box: multiplicative inverse in GF(2^8), then affine map. */
void build_sbox(void) {
  /* p and q run through all non-zero field elements as 3^k and 3^-k. */
  unsigned char p = 1;
  unsigned char q = 1;
  do {
    p = (unsigned char)(p ^ (p << 1) ^ ((p >> 7) * 0x1B));
    /* divide q by 3 (multiply by inverse generator) */
    q ^= (unsigned char)(q << 1);
    q ^= (unsigned char)(q << 2);
    q ^= (unsigned char)(q << 4);
    q ^= (unsigned char)((q >> 7) * 0x09);
    sbox[p] = (unsigned char)((q ^ (unsigned char)(q << 1) ^
                               (unsigned char)(q << 2) ^
                               (unsigned char)(q << 3) ^
                               (unsigned char)(q << 4) ^
                               (unsigned char)(q >> 7) ^
                               (unsigned char)(q >> 6) ^
                               (unsigned char)(q >> 5) ^
                               (unsigned char)(q >> 4) ^ 0x63));
  } while (p != 1);
  sbox[0] = 0x63;
}

void key_expansion(unsigned char *key) {
  for (int i = 0; i < 16; i++)
    round_key[i] = key[i];
  for (int i = 4; i < 44; i++) {
    unsigned char t0 = round_key[(i - 1) * 4 + 0];
    unsigned char t1 = round_key[(i - 1) * 4 + 1];
    unsigned char t2 = round_key[(i - 1) * 4 + 2];
    unsigned char t3 = round_key[(i - 1) * 4 + 3];
    if ((i & 3) == 0) {
      /* RotWord + SubWord + Rcon. */
      unsigned char tmp = t0;
      t0 = sbox[t1];
      t1 = sbox[t2];
      t2 = sbox[t3];
      t3 = sbox[tmp];
      unsigned char rcon = 1;
      int rounds = i / 4 - 1;
      for (int r = 0; r < rounds; r++)
        rcon = xtime(rcon);
      t0 ^= rcon;
    }
    round_key[i * 4 + 0] = (unsigned char)(round_key[(i - 4) * 4 + 0] ^ t0);
    round_key[i * 4 + 1] = (unsigned char)(round_key[(i - 4) * 4 + 1] ^ t1);
    round_key[i * 4 + 2] = (unsigned char)(round_key[(i - 4) * 4 + 2] ^ t2);
    round_key[i * 4 + 3] = (unsigned char)(round_key[(i - 4) * 4 + 3] ^ t3);
  }
}

void add_round_key(int round) {
  for (int i = 0; i < 16; i++)
    state[i] ^= round_key[round * 16 + i];
}

void sub_bytes(void) {
  for (int i = 0; i < 16; i++)
    state[i] = sbox[state[i]];
}

void shift_rows(void) {
  /* Row r rotates left by r (state is column-major as in tiny-AES). */
  unsigned char t = state[1];
  state[1] = state[5]; state[5] = state[9];
  state[9] = state[13]; state[13] = t;

  t = state[2]; state[2] = state[10]; state[10] = t;
  t = state[6]; state[6] = state[14]; state[14] = t;

  t = state[3]; state[3] = state[15]; state[15] = state[11];
  state[11] = state[7]; state[7] = t;
}

void mix_columns(void) {
  for (int c = 0; c < 4; c++) {
    unsigned char a0 = state[c * 4 + 0];
    unsigned char a1 = state[c * 4 + 1];
    unsigned char a2 = state[c * 4 + 2];
    unsigned char a3 = state[c * 4 + 3];
    state[c * 4 + 0] = (unsigned char)(gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3);
    state[c * 4 + 1] = (unsigned char)(a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3);
    state[c * 4 + 2] = (unsigned char)(a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3));
    state[c * 4 + 3] = (unsigned char)(gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2));
  }
}

void encrypt_block(void) {
  add_round_key(0);
  for (int round = 1; round < 10; round++) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(10);
}

int main(void) {
  unsigned char key[16];
  build_sbox();
  for (int i = 0; i < 16; i++)
    key[i] = (unsigned char)(rng_next() >> 21);
  key_expansion(key);
  for (int i = 0; i < 256; i++)
    plain[i] = (unsigned char)(rng_next() >> 11);

  for (int b = 0; b < 16; b++) {
    for (int i = 0; i < 16; i++)
      state[i] = plain[b * 16 + i];
    encrypt_block();
    for (int i = 0; i < 16; i++)
      cipher[b * 16 + i] = state[i];
  }

  unsigned int mix = 0;
  for (int i = 0; i < 256; i++)
    mix = mix * 31 + cipher[i];
  return (int)(mix & 0x7FFFFFFF);
}
)CSRC";
}
