//===----------------------------------------------------------------------===//
///
/// \file
/// picojpeg-like decoder kernel: a bit-reader driven Huffman-style
/// decode of (run, level) coefficient pairs, zig-zag placement,
/// dequantization, and the separable integer IDCT that dominates
/// picojpeg's cycle profile — writing decoded 8x8 blocks into a
/// framebuffer. The in-place row/column IDCT passes carry the WARs.
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadSources.h"

const char *wario::picojpegSource() {
  return R"CSRC(
/* JPEG-flavored block decoder: bitstream -> coefficients -> IDCT. */

unsigned char stream[2048];
int block[64];
unsigned char frame[24][64]; /* 24 blocks of 8x8 output pixels. */
int quant[64];
int zigzag[64];
unsigned int rng_state = 0x1DC7BEEF;

int bit_pos = 0;

unsigned int rng_next(void) {
  rng_state ^= rng_state << 13;
  rng_state ^= rng_state >> 17;
  rng_state ^= rng_state << 5;
  return rng_state;
}

int read_bits(int n) {
  int v = 0;
  for (int i = 0; i < n; i++) {
    int byte = bit_pos >> 3;
    int bit = 7 - (bit_pos & 7);
    v = (v << 1) | ((stream[byte] >> bit) & 1);
    bit_pos++;
  }
  return v;
}

void build_tables(void) {
  /* Zig-zag scan order (computed, not a 64-literal table). */
  int idx = 0;
  for (int s = 0; s < 15; s++) {
    if (s & 1) {
      int r = s < 8 ? 0 : s - 7;
      int c = s - r;
      while (c >= 0 && r < 8) {
        if (c < 8) {
          zigzag[idx] = r * 8 + c;
          idx++;
        }
        r++;
        c--;
      }
    } else {
      int c = s < 8 ? 0 : s - 7;
      int r = s - c;
      while (r >= 0 && c < 8) {
        if (r < 8) {
          zigzag[idx] = r * 8 + c;
          idx++;
        }
        c++;
        r--;
      }
    }
  }
  for (int i = 0; i < 64; i++)
    quant[i] = 1 + ((i * 7) & 31);
}

/* Huffman-flavored decode: a unary run length, then a sized level. */
int decode_block(void) {
  for (int i = 0; i < 64; i++)
    block[i] = 0;
  int pos = 0;
  int nonzero = 0;
  while (pos < 64) {
    int run = 0;
    while (run < 12 && read_bits(1))
      run++;
    pos += run;
    if (pos >= 64)
      break;
    int size = read_bits(3);
    if (size == 0)
      break; /* EOB */
    int level = read_bits(size) - (1 << (size - 1));
    if (level >= 0)
      level++;
    block[zigzag[pos]] = level * quant[pos];
    nonzero++;
    pos++;
  }
  return nonzero;
}

/* Separable integer IDCT (butterfly-free teaching form, in place). */
void idct_rows(void) {
  for (int r = 0; r < 8; r++) {
    int t0 = block[r * 8 + 0] + block[r * 8 + 4];
    int t1 = block[r * 8 + 0] - block[r * 8 + 4];
    int t2 = block[r * 8 + 2] + (block[r * 8 + 6] >> 1);
    int t3 = (block[r * 8 + 2] >> 1) - block[r * 8 + 6];
    int t4 = block[r * 8 + 1] + block[r * 8 + 7];
    int t5 = block[r * 8 + 3] + block[r * 8 + 5];
    int t6 = block[r * 8 + 1] - block[r * 8 + 7];
    int t7 = block[r * 8 + 3] - block[r * 8 + 5];
    block[r * 8 + 0] = t0 + t2 + t4;
    block[r * 8 + 1] = t1 + t3 + t5;
    block[r * 8 + 2] = t1 - t3 + t6;
    block[r * 8 + 3] = t0 - t2 + t7;
    block[r * 8 + 4] = t0 - t2 - t7;
    block[r * 8 + 5] = t1 - t3 - t6;
    block[r * 8 + 6] = t1 + t3 - t5;
    block[r * 8 + 7] = t0 + t2 - t4;
  }
}

void idct_cols(void) {
  for (int c = 0; c < 8; c++) {
    int t0 = block[0 * 8 + c] + block[4 * 8 + c];
    int t1 = block[0 * 8 + c] - block[4 * 8 + c];
    int t2 = block[2 * 8 + c] + (block[6 * 8 + c] >> 1);
    int t3 = (block[2 * 8 + c] >> 1) - block[6 * 8 + c];
    int t4 = block[1 * 8 + c] + block[7 * 8 + c];
    int t5 = block[3 * 8 + c] + block[5 * 8 + c];
    int t6 = block[1 * 8 + c] - block[7 * 8 + c];
    int t7 = block[3 * 8 + c] - block[5 * 8 + c];
    block[0 * 8 + c] = (t0 + t2 + t4) >> 3;
    block[1 * 8 + c] = (t1 + t3 + t5) >> 3;
    block[2 * 8 + c] = (t1 - t3 + t6) >> 3;
    block[3 * 8 + c] = (t0 - t2 + t7) >> 3;
    block[4 * 8 + c] = (t0 - t2 - t7) >> 3;
    block[5 * 8 + c] = (t1 - t3 - t6) >> 3;
    block[6 * 8 + c] = (t1 + t3 - t5) >> 3;
    block[7 * 8 + c] = (t0 + t2 - t4) >> 3;
  }
}

void store_block(int b) {
  for (int i = 0; i < 64; i++) {
    int v = block[i] + 128;
    if (v < 0)
      v = 0;
    if (v > 255)
      v = 255;
    frame[b][i] = (unsigned char)v;
  }
}

int main(void) {
  for (int i = 0; i < 2048; i++)
    stream[i] = (unsigned char)(rng_next() >> 17);
  build_tables();
  int total_nonzero = 0;
  for (int b = 0; b < 24; b++) {
    total_nonzero += decode_block();
    idct_rows();
    idct_cols();
    store_block(b);
  }
  unsigned int mix = (unsigned int)total_nonzero;
  for (int b = 0; b < 24; b++)
    for (int i = 0; i < 64; i++)
      mix = mix * 31 + frame[b][i];
  return (int)(mix & 0x7FFFFFFF);
}
)CSRC";
}
