//===----------------------------------------------------------------------===//
///
/// \file
/// C-subset source text of each benchmark (one definition per file).
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_WORKLOADS_WORKLOADSOURCES_H
#define WARIO_WORKLOADS_WORKLOADSOURCES_H

namespace wario {

const char *coremarkSource();
const char *shaSource();
const char *crcSource();
const char *aesSource();
const char *dijkstraSource();
const char *picojpegSource();

} // namespace wario

#endif // WARIO_WORKLOADS_WORKLOADSOURCES_H
