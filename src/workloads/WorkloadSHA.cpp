//===----------------------------------------------------------------------===//
///
/// \file
/// MiBench-style SHA-1: the 80-word message schedule and the five-word
/// digest state live in NVM and are read-modify-written in tight loops —
/// the dense consecutive-WAR structure that profits most from the Loop
/// Write Clusterer (paper Section 5.2.2: ~60% middle-end checkpoint
/// reduction for SHA).
///
//===----------------------------------------------------------------------===//

#include "workloads/WorkloadSources.h"

const char *wario::shaSource() {
  return R"CSRC(
/* SHA-1 over a pseudo-random message, block by block. */

unsigned int sha_h[5];
unsigned int sha_w[80];
unsigned char message[1024];
unsigned int rng_state = 0x5EED5EED;

unsigned int rng_next(void) {
  rng_state ^= rng_state << 13;
  rng_state ^= rng_state >> 17;
  rng_state ^= rng_state << 5;
  return rng_state;
}

unsigned int rol(unsigned int x, int n) {
  return (x << n) | (x >> (32 - n));
}

void sha_init(void) {
  sha_h[0] = 0x67452301;
  sha_h[1] = 0xEFCDAB89;
  sha_h[2] = 0x98BADCFE;
  sha_h[3] = 0x10325476;
  sha_h[4] = 0xC3D2E1F0;
}

/* Process one 64-byte block starting at message[off]. */
void sha_transform(int off) {
  /* Message schedule: load 16 words big-endian... */
  for (int t = 0; t < 16; t++) {
    int b = off + t * 4;
    sha_w[t] = ((unsigned int)message[b] << 24) |
               ((unsigned int)message[b + 1] << 16) |
               ((unsigned int)message[b + 2] << 8) |
               (unsigned int)message[b + 3];
  }
  /* ...then expand to 80 (reads then writes on sha_w: WARs). */
  for (int t = 16; t < 80; t++)
    sha_w[t] = rol(sha_w[t - 3] ^ sha_w[t - 8] ^ sha_w[t - 14] ^
                   sha_w[t - 16], 1);

  unsigned int a = sha_h[0];
  unsigned int b = sha_h[1];
  unsigned int c = sha_h[2];
  unsigned int d = sha_h[3];
  unsigned int e = sha_h[4];

  for (int t = 0; t < 80; t++) {
    unsigned int f;
    unsigned int k;
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDC;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6;
    }
    unsigned int tmp = rol(a, 5) + f + e + k + sha_w[t];
    e = d;
    d = c;
    c = rol(b, 30);
    b = a;
    a = tmp;
  }

  /* Digest update: read-modify-write of each NVM word (5 WARs). */
  sha_h[0] += a;
  sha_h[1] += b;
  sha_h[2] += c;
  sha_h[3] += d;
  sha_h[4] += e;
}

int main(void) {
  for (int i = 0; i < 1024; i++)
    message[i] = (unsigned char)(rng_next() >> 9);
  sha_init();
  for (int blk = 0; blk < 16; blk++)
    sha_transform(blk * 64);
  unsigned int mix = 0;
  for (int i = 0; i < 5; i++)
    mix ^= sha_h[i] >> (i + 1);
  return (int)(mix & 0x7FFFFFFF);
}
)CSRC";
}
