//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark suite of the paper's evaluation (Section 5.1.2), written
/// in the C subset and compiled by the WARio front end at run time:
///
///  - CoreMark-like: list operations, matrix work, and a state machine
///    with a CRC-16 result mix (EEMBC CoreMark's structure).
///  - SHA-1 and CRC-32 from MiBench's security/telecomm sets.
///  - Dijkstra from MiBench's network set.
///  - Tiny AES-128 (kokke/tiny-AES-c structure).
///  - picojpeg-like: Huffman-style bit decoding + dequantization +
///    integer IDCT, the hot kernels of richgel999/picojpeg.
///
/// Each program finishes by returning a checksum that depends on every
/// computed result, so any corruption (WAR or compiler bug) changes it.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_WORKLOADS_WORKLOADS_H
#define WARIO_WORKLOADS_WORKLOADS_H

#include "ir/Module.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <vector>

namespace wario {

struct Workload {
  std::string Name;
  const char *Source;
};

/// All six benchmarks, in the paper's presentation order.
const std::vector<Workload> &allWorkloads();

/// The named benchmark (assert-fails on unknown names).
const Workload &getWorkload(const std::string &Name);

///// Non-asserting lookup: nullptr on unknown names. The serving daemon
/// validates client-supplied workload names with this — a bad request
/// must produce an error response, never abort the process.
const Workload *findWorkload(const std::string &Name);

/// Compiles a workload to a fresh IR module (each pipeline run mutates
/// its module, so benchmarks recompile per environment).
std::unique_ptr<Module> buildWorkloadIR(const Workload &W,
                                        DiagnosticEngine &Diags);

} // namespace wario

#endif // WARIO_WORKLOADS_WORKLOADS_H
