//===----------------------------------------------------------------------===//
///
/// \file
/// wario-loadgen: drives a wario-served daemon with N concurrent
/// connections issuing a deterministic mix of compile-and-simulate
/// requests, and reports throughput (requests/s) with p50/p99 latency.
///
///   wario_loadgen --socket PATH [options]     # against a live daemon
///   wario_loadgen --serve [options]           # self-contained: spins an
///                                             # in-process daemon first
///
/// The request mix is a pure function of the global request index, so a
/// run is reproducible regardless of thread interleaving: workloads,
/// environments, power schedules, and tenants all cycle on fixed
/// strides. Repeated indices are cache hits by design — a serving
/// daemon's steady state is mostly hits, and that is what the benchmark
/// measures (bench/emit_bench_json.sh records the --json output).
///
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace wario;
using namespace wario::serve;

namespace {

struct LoadgenOptions {
  std::string SocketPath; ///< Empty with --serve: a temp path is chosen.
  bool Serve = false;     ///< Start an in-process daemon.
  unsigned Connections = 4;
  unsigned RequestsPerConnection = 32;
  std::vector<std::string> Workloads = {"crc", "sha", "dijkstra"};
  size_t CacheBytes = size_t(256) << 20; ///< --serve daemon's budget.
  unsigned Jobs = 0;                     ///< --serve daemon's pool width.
  bool Json = false;
};

[[noreturn]] void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--socket PATH | --serve) [options]\n"
      "  --socket PATH      connect to a running wario_served\n"
      "  --serve            start an in-process daemon on a temp socket\n"
      "  --connections N    concurrent client connections (default 4)\n"
      "  --requests N       requests per connection (default 32)\n"
      "  --workloads A,B,C  workload mix (default crc,sha,dijkstra)\n"
      "  --cache-bytes N    --serve daemon cache budget (default 256 MiB)\n"
      "  --jobs N           --serve daemon pool width (default hardware)\n"
      "  --json             machine-readable one-line summary on stdout\n",
      Argv0);
  std::exit(2);
}

uint64_t parseU64(const char *Argv0, const char *Flag, const char *Val) {
  char *End = nullptr;
  uint64_t N = std::strtoull(Val, &End, 10);
  if (!*Val || *End) {
    std::fprintf(stderr, "%s: %s wants a number, got '%s'\n", Argv0, Flag,
                 Val);
    std::exit(2);
  }
  return N;
}

std::vector<std::string> splitCsv(const std::string &S) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t Comma = S.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = S.size();
    if (Comma > Pos)
      Out.push_back(S.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return Out;
}

/// The deterministic mix: request \p Idx (global, across connections)
/// maps to one fixed configuration. Strides are coprime-ish so the cross
/// product gets covered without any one dimension aliasing another.
RunRequestMsg requestFor(const LoadgenOptions &Opts, uint64_t Idx) {
  static const Environment Envs[] = {Environment::PlainC, Environment::Ratchet,
                                     Environment::WarioComplete};
  RunRequestMsg M;
  M.Tenant = (Idx / 2) % 2 ? "tenant-b" : "tenant-a";
  M.Workload = Opts.Workloads[Idx % Opts.Workloads.size()];
  M.PO.Env = Envs[(Idx / 3) % (sizeof(Envs) / sizeof(Envs[0]))];
  // Every fifth request simulates intermittent power; the rest run on
  // continuous power (a serving mix is mostly quick verification runs).
  if (Idx % 5 == 4)
    M.EO.Power = PowerSchedule::fixed(2'000'000);
  return M;
}

struct WorkerResult {
  std::vector<double> LatencyMs;
  uint64_t Errors = 0; ///< Transport failures + Ok=false replies.
  std::string FirstError;
};

void runWorker(const LoadgenOptions &Opts, const std::string &Socket,
               unsigned ConnIdx, WorkerResult &Out) {
  Client C;
  std::string Error;
  if (!C.connect(Socket, &Error)) {
    Out.Errors = Opts.RequestsPerConnection;
    Out.FirstError = Error;
    return;
  }
  Out.LatencyMs.reserve(Opts.RequestsPerConnection);
  for (unsigned I = 0; I != Opts.RequestsPerConnection; ++I) {
    const uint64_t Idx =
        uint64_t(ConnIdx) * Opts.RequestsPerConnection + I;
    RunRequestMsg M = requestFor(Opts, Idx);
    RunReplyMsg Reply;
    auto T0 = std::chrono::steady_clock::now();
    bool Sent = C.run(M, Reply, &Error);
    auto T1 = std::chrono::steady_clock::now();
    if (!Sent || !Reply.Ok) {
      ++Out.Errors;
      if (Out.FirstError.empty())
        Out.FirstError = Sent ? Reply.Error : Error;
      if (!Sent)
        return; // Connection is dead; no point hammering it.
      continue;
    }
    Out.LatencyMs.push_back(
        std::chrono::duration<double, std::milli>(T1 - T0).count());
  }
}

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t I = static_cast<size_t>(P * double(Sorted.size() - 1) + 0.5);
  return Sorted[std::min(I, Sorted.size() - 1)];
}

} // namespace

int main(int argc, char **argv) {
  LoadgenOptions Opts;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc)
        usage(argv[0]);
      return argv[++I];
    };
    if (Arg == "--socket")
      Opts.SocketPath = Next();
    else if (Arg == "--serve")
      Opts.Serve = true;
    else if (Arg == "--connections")
      Opts.Connections =
          static_cast<unsigned>(parseU64(argv[0], "--connections", Next()));
    else if (Arg == "--requests")
      Opts.RequestsPerConnection =
          static_cast<unsigned>(parseU64(argv[0], "--requests", Next()));
    else if (Arg == "--workloads")
      Opts.Workloads = splitCsv(Next());
    else if (Arg == "--cache-bytes")
      Opts.CacheBytes = parseU64(argv[0], "--cache-bytes", Next());
    else if (Arg == "--jobs")
      Opts.Jobs = static_cast<unsigned>(parseU64(argv[0], "--jobs", Next()));
    else if (Arg == "--json")
      Opts.Json = true;
    else
      usage(argv[0]);
  }
  // --serve and --socket are mutually exclusive; one is required.
  if (Opts.Serve == !Opts.SocketPath.empty())
    usage(argv[0]);
  if (Opts.Connections == 0 || Opts.Workloads.empty())
    usage(argv[0]);

  std::unique_ptr<Server> Daemon;
  std::string Socket = Opts.SocketPath;
  if (Opts.Serve) {
    Socket = "/tmp/wario_loadgen_" + std::to_string(::getpid()) + ".sock";
    Daemon = std::make_unique<Server>(
        ServerOptions{Socket, Opts.CacheBytes, Opts.Jobs});
    std::string Error;
    if (!Daemon->start(&Error)) {
      std::fprintf(stderr, "wario_loadgen: %s\n", Error.c_str());
      return 1;
    }
  }

  std::vector<WorkerResult> Results(Opts.Connections);
  auto Wall0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> Workers;
    Workers.reserve(Opts.Connections);
    for (unsigned I = 0; I != Opts.Connections; ++I)
      Workers.emplace_back(runWorker, std::cref(Opts), std::cref(Socket), I,
                           std::ref(Results[I]));
    for (std::thread &T : Workers)
      T.join();
  }
  double WallS = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - Wall0)
                     .count();

  std::vector<double> Lat;
  uint64_t Errors = 0;
  std::string FirstError;
  for (const WorkerResult &R : Results) {
    Lat.insert(Lat.end(), R.LatencyMs.begin(), R.LatencyMs.end());
    Errors += R.Errors;
    if (FirstError.empty())
      FirstError = R.FirstError;
  }
  std::sort(Lat.begin(), Lat.end());
  const uint64_t Done = Lat.size();
  const double Rps = WallS > 0 ? double(Done) / WallS : 0;
  const double P50 = percentile(Lat, 0.50);
  const double P99 = percentile(Lat, 0.99);

  uint64_t Hits = 0, Misses = 0, Evictions = 0;
  if (Daemon) {
    StatsReplyMsg S = Daemon->stats();
    for (int L = 0; L != NumCacheLevels; ++L) {
      Hits += S.Counters.Hits[L];
      Misses += S.Counters.Misses[L];
      Evictions += S.Counters.Evictions[L];
    }
    Daemon->stop();
  } else {
    Client C;
    StatsReplyMsg S;
    if (C.connect(Socket) && C.stats(S)) {
      for (int L = 0; L != NumCacheLevels; ++L) {
        Hits += S.Counters.Hits[L];
        Misses += S.Counters.Misses[L];
        Evictions += S.Counters.Evictions[L];
      }
    }
  }

  if (Opts.Json) {
    std::printf("{\"loadgen\": {\"connections\": %u, \"requests\": %llu, "
                "\"errors\": %llu, \"wall_s\": %.3f, \"rps\": %.1f, "
                "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"cache_hits\": %llu, "
                "\"cache_misses\": %llu, \"cache_evictions\": %llu}}\n",
                Opts.Connections, static_cast<unsigned long long>(Done),
                static_cast<unsigned long long>(Errors), WallS, Rps, P50, P99,
                static_cast<unsigned long long>(Hits),
                static_cast<unsigned long long>(Misses),
                static_cast<unsigned long long>(Evictions));
  } else {
    std::printf("%llu requests over %u connections in %.2fs: %.1f req/s, "
                "p50 %.3f ms, p99 %.3f ms\n",
                static_cast<unsigned long long>(Done), Opts.Connections,
                WallS, Rps, P50, P99);
    std::printf("cache: %llu hits, %llu misses, %llu evictions\n",
                static_cast<unsigned long long>(Hits),
                static_cast<unsigned long long>(Misses),
                static_cast<unsigned long long>(Evictions));
  }
  if (Errors) {
    std::fprintf(stderr, "wario_loadgen: %llu request(s) failed: %s\n",
                 static_cast<unsigned long long>(Errors), FirstError.c_str());
    return 1;
  }
  return 0;
}
