//===----------------------------------------------------------------------===//
///
/// \file
/// wario-served: the compile-and-simulate daemon. Binds a Unix-domain
/// socket and serves framed requests (src/serve/Protocol.h) from one
/// shared multi-tenant cache until SIGINT/SIGTERM.
///
///   wario_served --socket /tmp/wario.sock [--cache-bytes N] [--jobs N]
///
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace wario::serve;

namespace {

[[noreturn]] void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [--cache-bytes N] [--jobs N]\n"
               "  --socket PATH     Unix-domain socket path to bind\n"
               "  --cache-bytes N   shared cache byte budget (0 = unbounded)\n"
               "  --jobs N          worker pool width (0 = hardware default)\n",
               Argv0);
  std::exit(2);
}

uint64_t parseU64(const char *Argv0, const char *Flag, const char *Val) {
  char *End = nullptr;
  uint64_t N = std::strtoull(Val, &End, 10);
  if (!*Val || *End) {
    std::fprintf(stderr, "%s: %s wants a number, got '%s'\n", Argv0, Flag,
                 Val);
    std::exit(2);
  }
  return N;
}

} // namespace

int main(int argc, char **argv) {
  ServerOptions Opts;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc)
        usage(argv[0]);
      return argv[++I];
    };
    if (Arg == "--socket")
      Opts.SocketPath = Next();
    else if (Arg == "--cache-bytes")
      Opts.CacheBytes = parseU64(argv[0], "--cache-bytes", Next());
    else if (Arg == "--jobs")
      Opts.Jobs = static_cast<unsigned>(parseU64(argv[0], "--jobs", Next()));
    else
      usage(argv[0]);
  }
  if (Opts.SocketPath.empty())
    usage(argv[0]);

  // Block the shutdown signals in every thread the server spawns, then
  // sigwait for them here: no async-signal-safety contortions needed.
  sigset_t Sigs;
  sigemptyset(&Sigs);
  sigaddset(&Sigs, SIGINT);
  sigaddset(&Sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &Sigs, nullptr);

  Server S(Opts);
  std::string Error;
  if (!S.start(&Error)) {
    std::fprintf(stderr, "wario_served: %s\n", Error.c_str());
    return 1;
  }
  std::fprintf(stderr, "wario_served: listening on %s (cache %zu bytes)\n",
               S.socketPath().c_str(), Opts.CacheBytes);

  int Sig = 0;
  sigwait(&Sigs, &Sig);
  std::fprintf(stderr, "wario_served: %s, draining\n", strsignal(Sig));
  S.stop();

  StatsReplyMsg Stats = S.stats();
  std::fprintf(stderr,
               "wario_served: served %llu requests over %llu connections\n",
               static_cast<unsigned long long>(Stats.RequestsServed),
               static_cast<unsigned long long>(Stats.ConnectionsAccepted));
  return 0;
}
