#!/usr/bin/env bash
# Documentation lint (registered as the `check_docs` ctest test).
#
# Two checks over the user-facing docs (README.md, DESIGN.md,
# EXPERIMENTS.md, docs/ARCHITECTURE.md, docs/STRATEGIES.md):
#
#   1. every repo file path a doc references must exist — docs rot by
#      pointing at renamed/deleted files, and this catches it in CI;
#   2. every fenced ```sh / ```bash block must parse (bash -n) — command
#      typos in the docs fail the suite, not the reader.
#
# Paths under build/ (generated), paths containing globs or <placeholders>,
# and URLs are ignored.
#
# Usage: tools/check_docs.sh [repo-root]   (default: the script's parent)

set -u

root=${1:-$(cd "$(dirname "$0")/.." && pwd)}
cd "$root" || exit 2

docs=(README.md DESIGN.md EXPERIMENTS.md docs/ARCHITECTURE.md docs/STRATEGIES.md)
errors=0

for doc in "${docs[@]}"; do
  if [ ! -f "$doc" ]; then
    echo "check_docs: FAIL: documented entry point $doc is missing"
    errors=$((errors + 1))
  fi
done

# --- Check 1: referenced paths exist ---------------------------------------
# Candidate references: top-level doc/config names and anything shaped like
# dir/file under the repo's source directories.
path_re='\b(src|bench|tests|tools|docs|examples|\.claude)/[A-Za-z0-9_./*<>-]+|\b(README|DESIGN|EXPERIMENTS|PAPER|PAPERS|ROADMAP|CHANGES|SNIPPETS|MEMORY)\.md\b|\bCMakeLists\.txt\b'

checked=0
for doc in "${docs[@]}"; do
  [ -f "$doc" ] || continue
  while IFS= read -r ref; do
    # Strip trailing punctuation and :line suffixes picked up from prose.
    ref=${ref%%:*}
    ref=${ref%.}
    ref=${ref%,}
    ref=${ref%\)}
    ref=${ref%\`}
    ref=${ref%/}
    case "$ref" in
      ''|*'*'*|*'<'*|*'>'*|build/*) continue ;; # globs, placeholders, generated
    esac
    checked=$((checked + 1))
    # Accept build-target shorthand: docs say `bench/verify_crash` for
    # the binary built from bench/verify_crash.cpp (same for headers).
    if [ ! -e "$ref" ] && [ ! -e "$ref.cpp" ] && [ ! -e "$ref.h" ]; then
      echo "check_docs: FAIL: $doc references missing path: $ref"
      errors=$((errors + 1))
    fi
  done < <(grep -oE "$path_re" "$doc" | sort -u)
done

# --- Check 2: fenced shell blocks parse ------------------------------------
blocks=0
for doc in "${docs[@]}"; do
  [ -f "$doc" ] || continue
  # Emit each ```sh / ```bash block separated by \0, then bash -n each.
  while IFS= read -r -d '' block; do
    blocks=$((blocks + 1))
    if ! err=$(printf '%s\n' "$block" | bash -n 2>&1); then
      echo "check_docs: FAIL: $doc has a shell block that does not parse:"
      printf '%s\n' "$block" | sed 's/^/    | /'
      printf '%s\n' "$err" | sed 's/^/    /'
      errors=$((errors + 1))
    fi
  done < <(awk '
    /^```(sh|bash)[ \t]*$/ { fence = 1; next }
    /^```/ { if (fence) printf "%s", "\0"; fence = 0; next }
    fence { print }
  ' "$doc")
done

if [ "$checked" -eq 0 ]; then
  echo "check_docs: FAIL: extracted no path references (lint is broken)"
  errors=$((errors + 1))
fi

if [ "$errors" -ne 0 ]; then
  echo "check_docs: $errors problem(s) across ${docs[*]}"
  exit 1
fi
echo "check_docs: OK: $checked path reference(s) exist, $blocks shell block(s) parse"
