#!/usr/bin/env bash
# The one CI entry point (also what .github/workflows/ci.yml runs):
#
#   1. configure + build the default tree, run the full ctest suite;
#   2. differential-engine pass: the `engine`-labeled equivalence suite
#      (trace + threaded engines vs interpreter oracle) on the default
#      tree, then once more under each WARIO_ENGINE kill-switch setting
#      (interp / threaded / trace) to prove the environment override
#      changes nothing observable; then the `strategy` suite
#      (rollback-strategy crash campaigns, negative controls,
#      and golden differences — docs/STRATEGIES.md);
#   3. rebuild under ThreadSanitizer and run the `tsan`-labeled tests
#      (the bench harness's parallel matrix driver);
#   4. rebuild under AddressSanitizer and run the `asan`-labeled tests
#      (module cloning, cache keying, snapshot page journal);
#   5. release-configuration pass: build -DCMAKE_BUILD_TYPE=Release and
#      run the `asan`- and `engine`-labeled subsets there plus a
#      one-workload bench smoke. The default tree keeps asserts on;
#      this pass is what catches NDEBUG-only bugs (assert-side-effects,
#      codepaths that only assert-guard an invariant) and broken
#      release benchmark binaries before a BENCH recording does;
#   6. re-run the docs lint standalone so a docs-only failure is
#      reported even if a build step above broke first.
#
# The default-tree pass includes the `crash` label (the fault-injection
# campaigns, the long pole of the suite). Set WARIO_CI_FAST=1 to exclude
# it — and to trim the differential-engine matrix to one workload — for
# a quick local pre-push check.
#
# Usage: tools/ci.sh [build-root]   (default: build; sanitizer trees go
# to <build-root>/tsan and <build-root>/asan)

set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$root/build"}
jobs=$(nproc 2>/dev/null || echo 4)

label_excludes=""
if [ "${WARIO_CI_FAST:-0}" = "1" ]; then
  label_excludes="-LE crash"
fi

echo "==> default build + full suite"
cmake -B "$build" -S "$root"
cmake --build "$build" -j "$jobs"
ctest --test-dir "$build" --output-on-failure -j "$jobs" $label_excludes

echo "==> differential engine suite (engine label, all WARIO_ENGINE settings)"
ctest --test-dir "$build" --output-on-failure -j "$jobs" -L engine
for eng in interp threaded trace; do
  WARIO_ENGINE=$eng \
    ctest --test-dir "$build" --output-on-failure -j "$jobs" -L engine
done

echo "==> serve suite + loadgen smoke"
ctest --test-dir "$build" --output-on-failure -j "$jobs" -L serve
WARIO_CI_FAST=1 "$build/tools/wario_loadgen" --serve --connections 1 \
  --requests 4 --workloads crc

echo "==> strategy suite (rollback-strategy campaigns + golden differences)"
ctest --test-dir "$build" --output-on-failure -j "$jobs" -L strategy

echo "==> tsan build + tsan/serve-labeled tests"
cmake -B "$build/tsan" -S "$root" -DWARIO_SANITIZE=thread
cmake --build "$build/tsan" -j "$jobs"
ctest --test-dir "$build/tsan" --output-on-failure -j "$jobs" -L 'tsan|serve'

echo "==> asan build + asan-labeled tests"
cmake -B "$build/asan" -S "$root" -DWARIO_SANITIZE=address
cmake --build "$build/asan" -j "$jobs"
ctest --test-dir "$build/asan" --output-on-failure -j "$jobs" -L asan

echo "==> release build + asan/engine subsets + bench smoke"
cmake -B "$build/release" -S "$root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build/release" -j "$jobs"
ctest --test-dir "$build/release" --output-on-failure -j "$jobs" \
  -L 'asan|engine'
"$build/release/bench/micro_compiler" \
  --benchmark_filter='BM_Arena|BM_ModuleTeardown|BM_StageCloneModule' \
  --benchmark_min_time=0.05

echo "==> docs lint"
"$root/tools/check_docs.sh" "$root"

echo "ci: all passes green"
