//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation bench for the design choices DESIGN.md calls out (not a paper
/// figure — it isolates the mechanisms behind the paper's results):
///
///  1. Middle-end hitting set vs checkpoint-per-WAR-write placement.
///  2. Loop-depth-weighted vs uniform hitting-set costs.
///  3. Hitting-set vs per-write back-end spill checkpoints
///     (paper contribution #2, isolated).
///  4. Precise (PDG) vs conservative (baseline) aliasing under the full
///     WARio pipeline.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace wario;
using namespace wario::bench;

namespace {

uint64_t runCycles(const Workload &W, const PipelineOptions &PO) {
  DiagnosticEngine Diags;
  std::unique_ptr<Module> M = buildWorkloadIR(W, Diags);
  if (!M)
    std::exit(1);
  MModule MM = compile(*M, PO);
  EmulatorOptions EO;
  EO.CollectRegionSizes = false;
  EmulatorResult R = emulate(MM, EO);
  if (!R.Ok) {
    std::fprintf(stderr, "ablation run failed: %s\n", R.Error.c_str());
    std::exit(1);
  }
  return R.TotalCycles;
}

} // namespace

int main() {
  std::printf("Ablations of WARio design choices (total cycles; lower "
              "is better)\n\n");
  printRow("benchmark",
           {"wario", "perwrite-me", "uniform-cost", "conserv-aa"}, 14, 14);

  double Sum[4] = {0, 0, 0, 0};
  for (const Workload &W : allWorkloads()) {
    PipelineOptions Base;
    Base.Env = Environment::WarioComplete;

    PipelineOptions PerWrite = Base;
    PerWrite.MiddleEndHittingSet = false;

    PipelineOptions Uniform = Base;
    Uniform.DepthWeightedCost = false;

    PipelineOptions Conserv = Base;
    Conserv.ForceConservativeAA = true;

    uint64_t C0 = runCycles(W, Base);
    uint64_t C1 = runCycles(W, PerWrite);
    uint64_t C2 = runCycles(W, Uniform);
    uint64_t C3 = runCycles(W, Conserv);
    Sum[0] += double(C0);
    Sum[1] += double(C1) / double(C0);
    Sum[2] += double(C2) / double(C0);
    Sum[3] += double(C3) / double(C0);
    printRow(W.Name,
             {std::to_string(C0), fmt2(double(C1) / double(C0)) + "x",
              fmt2(double(C2) / double(C0)) + "x",
              fmt2(double(C3) / double(C0)) + "x"},
             14, 14);
  }
  unsigned N = unsigned(allWorkloads().size());
  std::printf("%s\n", std::string(14 + 14 * 4, '-').c_str());
  printRow("avg ratio",
           {"1.00x", fmt2(Sum[1] / N) + "x", fmt2(Sum[2] / N) + "x",
            fmt2(Sum[3] / N) + "x"},
           14, 14);
  std::printf("\nexpected: every ablation is >= 1.00x — the hitting set, "
              "its loop-depth cost,\nand the PDG-grade aliasing each "
              "carry part of WARio's win.\n");
  return 0;
}
