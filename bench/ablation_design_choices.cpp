//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation bench for the design choices DESIGN.md calls out (not a paper
/// figure — it isolates the mechanisms behind the paper's results):
///
///  1. Middle-end hitting set vs checkpoint-per-WAR-write placement.
///  2. Loop-depth-weighted vs uniform hitting-set costs.
///  3. Hitting-set vs per-write back-end spill checkpoints
///     (paper contribution #2, isolated).
///  4. Precise (PDG) vs conservative (baseline) aliasing under the full
///     WARio pipeline.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace wario;
using namespace wario::bench;

namespace {

/// The four ablation cells of one workload. The cache keys on every
/// PipelineOptions field, so flipping an ablation flag is enough to get a
/// distinct cell.
std::vector<MatrixCell> ablationCells(const std::string &Name) {
  MatrixCell Base = cell(Name, Environment::WarioComplete);
  Base.EO.CollectRegionSizes = false;

  MatrixCell PerWrite = Base;
  PerWrite.PO.MiddleEndHittingSet = false;

  MatrixCell Uniform = Base;
  Uniform.PO.DepthWeightedCost = false;

  MatrixCell Conserv = Base;
  Conserv.PO.ForceConservativeAA = true;

  return {Base, PerWrite, Uniform, Conserv};
}

} // namespace

int main(int argc, char **argv) {
  initHarness(argc, argv);
  std::printf("Ablations of WARio design choices (total cycles; lower "
              "is better)\n\n");
  printRow("benchmark",
           {"wario", "perwrite-me", "uniform-cost", "conserv-aa"}, 14, 14);

  // Prewarm all 4 variants of every workload in one parallel sweep.
  std::vector<MatrixCell> Cells;
  for (const Workload &W : allWorkloads())
    for (const MatrixCell &C : ablationCells(W.Name))
      Cells.push_back(C);
  runMatrix(Cells);

  double Sum[4] = {0, 0, 0, 0};
  for (const Workload &W : allWorkloads()) {
    std::vector<MatrixCell> WC = ablationCells(W.Name);
    uint64_t C0 = globalCache().run(WC[0])->Emu.TotalCycles;
    uint64_t C1 = globalCache().run(WC[1])->Emu.TotalCycles;
    uint64_t C2 = globalCache().run(WC[2])->Emu.TotalCycles;
    uint64_t C3 = globalCache().run(WC[3])->Emu.TotalCycles;
    Sum[0] += double(C0);
    Sum[1] += double(C1) / double(C0);
    Sum[2] += double(C2) / double(C0);
    Sum[3] += double(C3) / double(C0);
    printRow(W.Name,
             {std::to_string(C0), fmt2(double(C1) / double(C0)) + "x",
              fmt2(double(C2) / double(C0)) + "x",
              fmt2(double(C3) / double(C0)) + "x"},
             14, 14);
  }
  unsigned N = unsigned(allWorkloads().size());
  std::printf("%s\n", std::string(14 + 14 * 4, '-').c_str());
  printRow("avg ratio",
           {"1.00x", fmt2(Sum[1] / N) + "x", fmt2(Sum[2] / N) + "x",
            fmt2(Sum[3] / N) + "x"},
           14, 14);
  std::printf("\nexpected: every ablation is >= 1.00x — the hitting set, "
              "its loop-depth cost,\nand the PDG-grade aliasing each "
              "carry part of WARio's win.\n");
  return 0;
}
