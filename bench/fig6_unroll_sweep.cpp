//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates paper Figure 6: the effect of the Loop Write Clusterer
/// unroll factor N on (a) executed middle-end / back-end checkpoints as a
/// percentage of the N=1 baseline and (b) execution-time overhead
/// reduction, for the three benchmarks the paper sweeps (SHA, Tiny AES,
/// CoreMark).
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace wario;
using namespace wario::bench;

int main(int argc, char **argv) {
  initHarness(argc, argv);
  std::printf("Figure 6: loop write clusterer unroll factor sweep "
              "(WARio complete)\n\n");
  const std::vector<unsigned> Factors = {1, 2, 4, 6, 8, 10, 15, 20, 25,
                                         30, 35};
  const std::vector<std::string> Benches = {"sha", "aes", "coremark"};

  // Prewarm every (bench, unroll-factor) cell in one parallel sweep; the
  // unroll factor is part of the cache key.
  std::vector<MatrixCell> Cells;
  for (const std::string &Name : Benches) {
    Cells.push_back(cell(Name, Environment::PlainC));
    for (unsigned N : Factors)
      Cells.push_back(cell(Name, Environment::WarioComplete, N));
  }
  runMatrix(Cells);

  for (const std::string &Name : Benches) {
    double PlainCycles =
        double(cachedRun(Name, Environment::PlainC)->Emu.TotalCycles);

    struct Point {
      unsigned N;
      uint64_t Middle, Backend;
      double Overhead;
    };
    std::vector<Point> Points;
    for (unsigned N : Factors) {
      std::shared_ptr<const RunResult> R =
          globalCache().run(cell(Name, Environment::WarioComplete, N));
      Points.push_back({N, R->Emu.Causes.MiddleEndWar,
                        R->Emu.Causes.BackendSpill,
                        double(R->Emu.TotalCycles) / PlainCycles - 1.0});
    }
    const Point &Base = Points.front(); // N=1.

    std::printf("%s (N=1 baseline: %llu middle-end, %llu back-end "
                "checkpoints, overhead %.2fx)\n",
                Name.c_str(),
                static_cast<unsigned long long>(Base.Middle),
                static_cast<unsigned long long>(Base.Backend),
                Base.Overhead);
    printRow("  N", {"middle-end %", "back-end %", "overhead cut %"}, 6,
             16);
    for (const Point &P : Points) {
      double MidPct = Base.Middle
                          ? 100.0 * double(P.Middle) / double(Base.Middle)
                          : 0.0;
      std::string BeStr =
          Base.Backend
              ? fmtPct(100.0 * double(P.Backend) / double(Base.Backend))
              : (P.Backend ? "+" + std::to_string(P.Backend) + " abs"
                           : "0");
      double Cut = Base.Overhead > 0
                       ? 100.0 * (Base.Overhead - P.Overhead) /
                             Base.Overhead
                       : 0.0;
      printRow("  " + std::to_string(P.N),
               {fmtPct(MidPct), BeStr, fmtPct(Cut)}, 6, 16);
    }
    std::printf("\n");
  }
  std::printf("expected shape: N=2 already helps; gains flatten around "
              "N=8 (the paper's default);\nvery large N stops paying as "
              "back-end spill checkpoints grow.\n");
  return 0;
}
