//===----------------------------------------------------------------------===//
///
/// \file
/// Extension experiment (not a paper figure): the Region Bounder
/// implements Section 6's "Location-specific Checkpoints" future work.
/// For each benchmark it reports the largest idempotent region, the
/// minimum power-on time that region implies, and the execution-time
/// price of capping regions at 20k cycles.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <algorithm>

using namespace wario;
using namespace wario::bench;

namespace {

uint64_t maxRegion(const EmulatorResult &R) {
  uint64_t Max = 0;
  for (uint64_t S : R.RegionSizes)
    Max = std::max(Max, S);
  return Max;
}

} // namespace

int main(int argc, char **argv) {
  initHarness(argc, argv);
  std::printf("Extension: Region Bounder (paper Section 6 future work)\n"
              "WARio vs WARio + 20k-cycle region cap\n\n");
  printRow("benchmark",
           {"max-region", "capped", "on-time@8MHz", "time cost"}, 14, 18);

  // Prewarm base + bounded builds in one parallel sweep (BoundRegions and
  // MaxRegionCycles are part of the cache key like every other option).
  auto BoundedCell = [](const std::string &Name) {
    MatrixCell C = cell(Name, Environment::WarioComplete);
    C.PO.BoundRegions = true;
    C.PO.MaxRegionCycles = 20'000;
    return C;
  };
  std::vector<MatrixCell> Cells;
  for (const Workload &W : allWorkloads()) {
    Cells.push_back(cell(W.Name, Environment::WarioComplete));
    Cells.push_back(BoundedCell(W.Name));
  }
  runMatrix(Cells);

  for (const Workload &W : allWorkloads()) {
    std::shared_ptr<const RunResult> Base =
        cachedRun(W.Name, Environment::WarioComplete);
    std::shared_ptr<const RunResult> CappedRun =
        globalCache().run(BoundedCell(W.Name));
    const EmulatorResult &Capped = CappedRun->Emu;
    if (!Capped.Ok || Capped.ReturnValue != Base->Emu.ReturnValue) {
      std::fprintf(stderr, "bounded %s diverged!\n", W.Name.c_str());
      return 1;
    }

    uint64_t M0 = maxRegion(Base->Emu), M1 = maxRegion(Capped);
    double Cost = 100.0 *
                  (double(Capped.TotalCycles) -
                   double(Base->Emu.TotalCycles)) /
                  double(Base->Emu.TotalCycles);
    char OnTime[32];
    std::snprintf(OnTime, sizeof(OnTime), "%.2fms->%.2fms",
                  double(M0) / 8e3, double(M1) / 8e3);
    printRow(W.Name,
             {std::to_string(M0), std::to_string(M1), OnTime,
              fmtPct(Cost, true)},
             14, 18);
  }
  std::printf("\nthe register-counter checkpoints cap every WAR-free "
              "*innermost* loop's region,\nshrinking the minimum viable "
              "storage capacitor for a small steady-state cost —\nthe "
              "trade the paper's Section 6 anticipates. Known limit: the "
              "counter resets at\nloop entry, so nested cut-free nests "
              "(picojpeg's inlined bit-reader) can still\nexceed the "
              "budget; threading one virtual clock through whole "
              "functions is future\nwork here exactly as it is in the "
              "paper.\n");
  return 0;
}
