//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates paper Figure 4: execution time of every benchmark under
/// every software environment, normalized to the uninstrumented C build,
/// plus the headline averages ("checkpoint overhead compared to Ratchet /
/// R-PDG").
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace wario;
using namespace wario::bench;

int main(int argc, char **argv) {
  initHarness(argc, argv);
  std::printf("Figure 4: normalized execution time (lower is better; "
              "1.00 = uninstrumented C)\n\n");

  std::vector<Environment> Envs = allEnvironments();

  // WARIO_STRATEGIES=1 appends the checkpoint-strategy columns
  // (docs/STRATEGIES.md); default output is strategy-free.
  std::vector<CheckpointStrategy> Strats;
  if (strategiesEnabled())
    Strats = {CheckpointStrategy::Differential,
              CheckpointStrategy::Speculative};

  // One parallel sweep over the whole matrix; the loops below then read
  // from the shared cache.
  std::vector<MatrixCell> Cells;
  for (const Workload &W : allWorkloads()) {
    for (Environment E : Envs)
      Cells.push_back(cell(W.Name, E));
    for (CheckpointStrategy S : Strats)
      Cells.push_back(strategyCell(W.Name, S));
  }
  runMatrix(Cells);

  std::vector<std::string> Heads;
  for (Environment E : Envs)
    Heads.push_back(shortEnvName(E));
  for (CheckpointStrategy S : Strats)
    Heads.push_back(strategyColName(S));
  printRow("benchmark", Heads, 12, 14);

  // Per-environment mean of normalized times and of checkpoint overheads
  // (normalized time - 1).
  std::map<Environment, double> SumNorm, SumOverhead;
  std::map<CheckpointStrategy, double> StratNorm, StratOverhead;

  for (const Workload &W : allWorkloads()) {
    double Plain =
        double(cachedRun(W.Name, Environment::PlainC)->Emu.TotalCycles);
    std::vector<std::string> Vals;
    for (Environment E : Envs) {
      double T = double(cachedRun(W.Name, E)->Emu.TotalCycles);
      double Norm = T / Plain;
      SumNorm[E] += Norm;
      SumOverhead[E] += Norm - 1.0;
      Vals.push_back(fmt2(Norm));
    }
    for (CheckpointStrategy S : Strats) {
      double T = double(
          globalCache().run(strategyCell(W.Name, S))->Emu.TotalCycles);
      double Norm = T / Plain;
      StratNorm[S] += Norm;
      StratOverhead[S] += Norm - 1.0;
      Vals.push_back(fmt2(Norm));
    }
    printRow(W.Name, Vals, 12, 14);
  }

  unsigned N = unsigned(allWorkloads().size());
  std::vector<std::string> Avg;
  for (Environment E : Envs)
    Avg.push_back(fmt2(SumNorm[E] / N));
  for (CheckpointStrategy S : Strats)
    Avg.push_back(fmt2(StratNorm[S] / N));
  std::printf("%s\n",
              std::string(12 + 14 * (Envs.size() + Strats.size()), '-')
                  .c_str());
  printRow("average", Avg, 12, 14);

  double RatchetOvh = SumOverhead[Environment::Ratchet] / N;
  double RpdgOvh = SumOverhead[Environment::RPDG] / N;
  double WarioOvh = SumOverhead[Environment::WarioComplete] / N;
  double WarioExpOvh = SumOverhead[Environment::WarioExpander] / N;

  std::printf("\ncheckpoint overhead vs Ratchet:  WARio %s, "
              "WARio+Expander %s   (paper: -58.3%% avg, up to -88%%)\n",
              fmtPct(100.0 * (WarioOvh - RatchetOvh) / RatchetOvh, true)
                  .c_str(),
              fmtPct(100.0 * (WarioExpOvh - RatchetOvh) / RatchetOvh, true)
                  .c_str());
  std::printf("checkpoint overhead vs R-PDG:    WARio %s, "
              "WARio+Expander %s   (paper: -44.7%% avg)\n",
              fmtPct(100.0 * (WarioOvh - RpdgOvh) / RpdgOvh, true).c_str(),
              fmtPct(100.0 * (WarioExpOvh - RpdgOvh) / RpdgOvh, true)
                  .c_str());
  for (CheckpointStrategy S : Strats) {
    double Ovh = StratOverhead[S] / N;
    std::printf("checkpoint overhead vs Ratchet:  %s %s\n",
                strategyColName(S),
                fmtPct(100.0 * (Ovh - RatchetOvh) / RatchetOvh, true)
                    .c_str());
  }
  return 0;
}
