//===----------------------------------------------------------------------===//
///
/// \file
/// Shared harness for the experiment regenerators: compiles each
/// (workload, environment, unroll-factor) cell, runs the emulator, and
/// caches results behind one deduplicating, thread-safe store so every
/// Fig/Table regenerator shares a single parallel sweep (runMatrix).
/// Also provides the table formatting used across all paper
/// figures/tables.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_BENCH_HARNESS_H
#define WARIO_BENCH_HARNESS_H

#include "driver/Pipeline.h"
#include "emu/Emulator.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace wario::bench {

/// Everything one (workload, environment) run produces.
struct RunResult {
  PipelineStats Pipeline;
  EmulatorResult Emu;
  unsigned TextBytes = 0;
};

/// One cell of the experiment matrix: a workload compiled under a full
/// pipeline configuration and emulated under a power/interrupt
/// configuration.
///
/// The result cache keys on (Workload, PO.Env, PO.UnrollFactor, Tag).
/// Cells that vary any *other* pipeline or emulator field (ablation
/// flags, power schedules, ...) must carry a distinct Tag, or they will
/// dedup against the default-configured cell.
struct MatrixCell {
  std::string Workload;
  PipelineOptions PO;
  EmulatorOptions EO;
  std::string Tag;
};

/// Convenience: the default cell for (workload, environment, unroll).
MatrixCell cell(const std::string &Workload, Environment Env,
                unsigned UnrollFactor = 8);

/// Deduplicating, mutex-guarded store of run results. runMatrix computes
/// all missing cells concurrently (parallelFor over defaultJobs()
/// workers — override the width with WARIO_JOBS); cells already present,
/// or duplicated within one call, are computed exactly once. Returned
/// pointers stay valid for the cache's lifetime.
class ResultCache {
public:
  ResultCache();
  ~ResultCache();
  ResultCache(const ResultCache &) = delete;
  ResultCache &operator=(const ResultCache &) = delete;

  /// Computes every not-yet-cached cell in parallel and returns the
  /// results in cell order.
  std::vector<const RunResult *> runMatrix(const std::vector<MatrixCell> &Cells);

  /// Single-cell lookup-or-compute.
  const RunResult &run(const MatrixCell &Cell);

private:
  struct Entry;
  using Key = std::tuple<std::string, Environment, unsigned, std::string>;

  std::mutex Mutex;
  std::map<Key, std::unique_ptr<Entry>> Map;
};

/// The process-lifetime cache shared by all regenerators.
ResultCache &globalCache();

/// Prewarms the global cache for \p Cells in one parallel sweep and
/// returns the results in cell order.
std::vector<const RunResult *> runMatrix(const std::vector<MatrixCell> &Cells);

/// Compiles \p W under \p Cell.PO and runs it to completion under
/// \p Cell.EO. Aborts the process with a message on any failure —
/// experiment regenerators have no use for partial data.
RunResult runOne(const Workload &W, const MatrixCell &Cell);

/// Back-compat convenience used by older regenerator code.
RunResult runOne(const Workload &W, Environment Env,
                 const EmulatorOptions &EOpts = {},
                 unsigned UnrollFactor = 8);

/// Process-lifetime cache of continuous-power runs (a view over
/// globalCache()).
const RunResult &cachedRun(const std::string &Workload, Environment Env);

/// Compiles only (no emulation); for code-size measurements.
MModule compileOnly(const Workload &W, Environment Env,
                    PipelineStats *Stats = nullptr,
                    unsigned UnrollFactor = 8);

/// Prints an aligned row: first column \p Width0 wide, then each value
/// right-aligned to \p Width.
void printRow(const std::string &Head, const std::vector<std::string> &Vals,
              int Width0 = 22, int Width = 12);

/// Formats "x.xx" / "+x.x%" style numbers.
std::string fmt2(double V);
std::string fmtPct(double V, bool ForceSign = false);

/// Column-friendly short environment names.
const char *shortEnvName(Environment E);

} // namespace wario::bench

#endif // WARIO_BENCH_HARNESS_H
