//===----------------------------------------------------------------------===//
///
/// \file
/// Shared harness for the experiment regenerators: compiles each
/// (workload, environment, unroll-factor) cell, runs the emulator, and
/// caches results behind one deduplicating, thread-safe store so every
/// Fig/Table regenerator shares a single parallel sweep (runMatrix).
///
/// The store is *staged*: compilation artifacts are cached per pipeline
/// stage (frontend + front half per workload, middle end per middle-end
/// configuration, machine module per full pipeline configuration) and
/// emulation results per (compiled module, emulator configuration). Cells
/// that differ only in power schedule or interrupt period therefore reuse
/// the compiled machine module and only re-emulate; cells that differ
/// only in back-end flags reuse the middle-end IR; and every cell of one
/// workload shares a single frontend + front-half run via cloneModule().
///
/// Every cache key is derived from the actual PipelineOptions /
/// EmulatorOptions field values. (An earlier revision keyed on
/// (workload, env, unroll) plus a caller-provided string tag; forgetting
/// the tag silently deduped distinct cells against the default
/// configuration. Option-derived keys make that collision impossible.)
///
/// Also provides the table formatting used across all paper
/// figures/tables, and a --timing flag (initHarness) that prints a
/// per-stage wall-clock summary to stderr on exit.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_BENCH_HARNESS_H
#define WARIO_BENCH_HARNESS_H

#include "driver/Pipeline.h"
#include "emu/Emulator.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace wario::bench {

/// Everything one (workload, environment) run produces.
struct RunResult {
  PipelineStats Pipeline;
  EmulatorResult Emu;
  unsigned TextBytes = 0;
};

/// A compiled cell before emulation: what the compile-level cache stores.
/// Cells differing only in emulator options share one CompileResult.
struct CompileResult {
  MModule MM;
  PipelineStats Pipeline;
  unsigned TextBytes = 0;
};

/// One cell of the experiment matrix: a workload compiled under a full
/// pipeline configuration and emulated under a power/interrupt
/// configuration. The cache keys on every field of PO and EO — two cells
/// that differ in *any* option never share a result entry.
struct MatrixCell {
  std::string Workload;
  PipelineOptions PO;
  EmulatorOptions EO;
};

/// Convenience: the default cell for (workload, environment, unroll).
MatrixCell cell(const std::string &Workload, Environment Env,
                unsigned UnrollFactor = 8);

/// Deduplicating, mutex-guarded, staged store of compilation artifacts
/// and run results. runMatrix computes all missing cells concurrently
/// (parallelFor over defaultJobs() workers — override the width with
/// WARIO_JOBS); cells already present, or duplicated within one call, are
/// computed exactly once, and cells sharing a stage artifact compute that
/// stage exactly once. Returned pointers stay valid for the cache's
/// lifetime.
class ResultCache {
public:
  ResultCache();
  ~ResultCache();
  ResultCache(const ResultCache &) = delete;
  ResultCache &operator=(const ResultCache &) = delete;

  /// Computes every not-yet-cached cell in parallel and returns the
  /// results in cell order.
  std::vector<const RunResult *> runMatrix(const std::vector<MatrixCell> &Cells);

  /// Single-cell lookup-or-compute.
  const RunResult &run(const MatrixCell &Cell);

  /// Compile-level lookup-or-compute (no emulation); for code-size
  /// measurements and the cold/warm-cache microbenchmarks.
  const CompileResult &compileCell(const std::string &Workload,
                                   const PipelineOptions &PO);

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

/// The process-lifetime cache shared by all regenerators.
ResultCache &globalCache();

/// Prewarms the global cache for \p Cells in one parallel sweep and
/// returns the results in cell order.
std::vector<const RunResult *> runMatrix(const std::vector<MatrixCell> &Cells);

/// Compiles \p W under \p Cell.PO and runs it to completion under
/// \p Cell.EO, bypassing every cache (one fresh frontend-to-emulator
/// pass). Aborts the process with a message on any failure — experiment
/// regenerators have no use for partial data.
RunResult runOne(const Workload &W, const MatrixCell &Cell);

/// Back-compat convenience used by older regenerator code.
RunResult runOne(const Workload &W, Environment Env,
                 const EmulatorOptions &EOpts = {},
                 unsigned UnrollFactor = 8);

/// Process-lifetime cache of continuous-power runs (a view over
/// globalCache()).
const RunResult &cachedRun(const std::string &Workload, Environment Env);

/// Compiles only (no emulation); for code-size measurements.
MModule compileOnly(const Workload &W, Environment Env,
                    PipelineStats *Stats = nullptr,
                    unsigned UnrollFactor = 8);

/// Regenerator entry hook: parses harness flags. `--timing` prints a
/// per-stage wall-clock and cache-hit summary to stderr when the process
/// exits (stdout stays byte-identical either way).
void initHarness(int argc, char **argv);

/// Prints an aligned row: first column \p Width0 wide, then each value
/// right-aligned to \p Width.
void printRow(const std::string &Head, const std::vector<std::string> &Vals,
              int Width0 = 22, int Width = 12);

/// Formats "x.xx" / "+x.x%" style numbers.
std::string fmt2(double V);
std::string fmtPct(double V, bool ForceSign = false);

/// Column-friendly short environment names.
const char *shortEnvName(Environment E);

} // namespace wario::bench

#endif // WARIO_BENCH_HARNESS_H
