//===----------------------------------------------------------------------===//
///
/// \file
/// Shared harness for the experiment regenerators: compiles each
/// (workload, environment, unroll-factor) cell, runs the emulator, and
/// caches results behind one deduplicating, thread-safe store so every
/// Fig/Table regenerator shares a single parallel sweep (runMatrix).
///
/// The store itself is serve::StagedCache (src/serve/Cache.h) — the same
/// four-level staged cache behind the wario-served daemon, promoted out
/// of this harness. This wrapper adds the pieces only regenerators want:
///
///  - a hard failure policy (regenerators have no use for partial data,
///    so any cached error aborts the process with a message),
///  - snapshot-chain reuse (a continuous-power cell records a chain as a
///    by-product of its run; power-schedule siblings replay from it
///    instead of re-executing the shared prefix — results byte-identical
///    to plain emulate() on every path),
///  - the --timing stage/hit accounting (initHarness).
///
/// Results come back as shared_ptr: entries stay valid for as long as a
/// caller holds them even if the cache evicts (globalCache() runs under
/// a byte budget — WARIO_CACHE_BYTES, default 512 MiB; a fresh
/// ResultCache defaults to unbounded).
///
/// Every cache key is derived from the actual PipelineOptions /
/// EmulatorOptions field values. (An earlier revision keyed on
/// (workload, env, unroll) plus a caller-provided string tag; forgetting
/// the tag silently deduped distinct cells against the default
/// configuration. Option-derived keys make that collision impossible.)
///
/// Also provides the table formatting used across all paper
/// figures/tables.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_BENCH_HARNESS_H
#define WARIO_BENCH_HARNESS_H

#include "serve/Cache.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace wario::bench {

/// Everything one (workload, environment) run produces. Shared with the
/// serving daemon; the harness's failure policy guarantees Error is
/// empty on every result it hands out.
using RunResult = serve::RunResult;

/// A compiled cell before emulation: what the compile-level cache stores.
/// Cells differing only in emulator options share one CompileResult.
using CompileResult = serve::CompileResult;

/// One cell of the experiment matrix: a workload compiled under a full
/// pipeline configuration and emulated under a power/interrupt
/// configuration. The cache keys on every field of PO and EO — two cells
/// that differ in *any* option never share a result entry.
struct MatrixCell {
  std::string Workload;
  PipelineOptions PO;
  EmulatorOptions EO;
};

/// Convenience: the default cell for (workload, environment, unroll).
MatrixCell cell(const std::string &Workload, Environment Env,
                unsigned UnrollFactor = 8);

/// True when WARIO_STRATEGIES=1: the regenerators append the wario-diff
/// and wario-spec checkpoint-strategy columns (docs/STRATEGIES.md). Off
/// by default so golden outputs stay byte-identical to the strategy-free
/// matrix.
bool strategiesEnabled();

/// The default cell for a non-idempotent checkpoint strategy: the full
/// WARio pipeline (Env = WarioComplete) with the strategy axis set.
MatrixCell strategyCell(const std::string &Workload, CheckpointStrategy S,
                        unsigned UnrollFactor = 8);

/// Column-friendly strategy names ("wario-diff", "wario-spec").
const char *strategyColName(CheckpointStrategy S);

/// Deduplicating, mutex-guarded, staged store of compilation artifacts
/// and run results. runMatrix computes all missing cells concurrently
/// (parallelFor over defaultJobs() workers — override the width with
/// WARIO_JOBS); cells already present, or duplicated within one call, are
/// computed exactly once, and cells sharing a stage artifact compute that
/// stage exactly once. Returned pointers stay valid for as long as the
/// caller holds them (shared ownership survives eviction).
class ResultCache {
public:
  /// \p ByteBudget bounds the resident artifact footprint across all
  /// four cache levels (0 = unbounded; evicted entries recompute on the
  /// next request).
  explicit ResultCache(size_t ByteBudget = 0);
  ~ResultCache();
  ResultCache(const ResultCache &) = delete;
  ResultCache &operator=(const ResultCache &) = delete;

  /// Computes every not-yet-cached cell in parallel and returns the
  /// results in cell order.
  std::vector<std::shared_ptr<const RunResult>>
  runMatrix(const std::vector<MatrixCell> &Cells);

  /// Single-cell lookup-or-compute.
  std::shared_ptr<const RunResult> run(const MatrixCell &Cell);

  /// Compile-level lookup-or-compute (no emulation); for code-size
  /// measurements and the cold/warm-cache microbenchmarks.
  std::shared_ptr<const CompileResult>
  compileCell(const std::string &Workload, const PipelineOptions &PO);

  /// Hit/miss/eviction and byte accounting of the underlying store.
  serve::CacheCounters counters() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

/// The process-lifetime cache shared by all regenerators, bounded by
/// WARIO_CACHE_BYTES (default 512 MiB, 0 = unbounded).
ResultCache &globalCache();

/// Prewarms the global cache for \p Cells in one parallel sweep and
/// returns the results in cell order.
std::vector<std::shared_ptr<const RunResult>>
runMatrix(const std::vector<MatrixCell> &Cells);

/// Compiles \p W under \p Cell.PO and runs it to completion under
/// \p Cell.EO, bypassing every cache (one fresh frontend-to-emulator
/// pass). Aborts the process with a message on any failure — experiment
/// regenerators have no use for partial data.
RunResult runOne(const Workload &W, const MatrixCell &Cell);

/// Back-compat convenience used by older regenerator code.
RunResult runOne(const Workload &W, Environment Env,
                 const EmulatorOptions &EOpts = {},
                 unsigned UnrollFactor = 8);

/// Process-lifetime cache of continuous-power runs (a view over
/// globalCache()).
std::shared_ptr<const RunResult> cachedRun(const std::string &Workload,
                                           Environment Env);

/// Compiles only (no emulation); for code-size measurements.
MModule compileOnly(const Workload &W, Environment Env,
                    PipelineStats *Stats = nullptr,
                    unsigned UnrollFactor = 8);

/// Regenerator entry hook: parses harness flags. `--timing` prints a
/// per-stage wall-clock and cache-hit summary to stderr when the process
/// exits (stdout stays byte-identical either way).
void initHarness(int argc, char **argv);

/// Prints an aligned row: first column \p Width0 wide, then each value
/// right-aligned to \p Width.
void printRow(const std::string &Head, const std::vector<std::string> &Vals,
              int Width0 = 22, int Width = 12);

/// Formats "x.xx" / "+x.x%" style numbers.
std::string fmt2(double V);
std::string fmtPct(double V, bool ForceSign = false);

/// Column-friendly short environment names.
const char *shortEnvName(Environment E);

} // namespace wario::bench

#endif // WARIO_BENCH_HARNESS_H
