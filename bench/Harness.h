//===----------------------------------------------------------------------===//
///
/// \file
/// Shared harness for the experiment regenerators: compiles each
/// (workload, environment) pair, runs the emulator, caches results, and
/// provides the table formatting used across all paper figures/tables.
///
//===----------------------------------------------------------------------===//

#ifndef WARIO_BENCH_HARNESS_H
#define WARIO_BENCH_HARNESS_H

#include "driver/Pipeline.h"
#include "emu/Emulator.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace wario::bench {

/// Everything one (workload, environment) run produces.
struct RunResult {
  PipelineStats Pipeline;
  EmulatorResult Emu;
  unsigned TextBytes = 0;
};

/// Compiles \p W for \p Env (optionally overriding the unroll factor) and
/// runs it to completion under \p EOpts. Aborts the process with a
/// message on any failure — experiment regenerators have no use for
/// partial data.
RunResult runOne(const Workload &W, Environment Env,
                 const EmulatorOptions &EOpts = {},
                 unsigned UnrollFactor = 8);

/// Process-lifetime cache of continuous-power runs.
const RunResult &cachedRun(const std::string &Workload, Environment Env);

/// Compiles only (no emulation); for code-size measurements.
MModule compileOnly(const Workload &W, Environment Env,
                    PipelineStats *Stats = nullptr,
                    unsigned UnrollFactor = 8);

/// Prints an aligned row: first column \p Width0 wide, then each value
/// right-aligned to \p Width.
void printRow(const std::string &Head, const std::vector<std::string> &Vals,
              int Width0 = 22, int Width = 12);

/// Formats "x.xx" / "+x.x%" style numbers.
std::string fmt2(double V);
std::string fmtPct(double V, bool ForceSign = false);

/// Column-friendly short environment names.
const char *shortEnvName(Environment E);

} // namespace wario::bench

#endif // WARIO_BENCH_HARNESS_H
