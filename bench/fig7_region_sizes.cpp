//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates paper Figure 7: the distribution of idempotent region
/// sizes (clock cycles between consecutive executed checkpoints) for
/// Ratchet, R-PDG, and WARio (complete), per benchmark — median, mean,
/// 75th percentile, and maximum, as in the paper's box plots.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <algorithm>

using namespace wario;
using namespace wario::bench;

namespace {

struct Summary {
  uint64_t Median, P75, Max;
  double Mean;
};

Summary summarize(std::vector<uint64_t> V) {
  Summary S{0, 0, 0, 0.0};
  if (V.empty())
    return S;
  std::sort(V.begin(), V.end());
  S.Median = V[V.size() / 2];
  S.P75 = V[V.size() * 3 / 4];
  S.Max = V.back();
  double Sum = 0;
  for (uint64_t X : V)
    Sum += double(X);
  S.Mean = Sum / double(V.size());
  return S;
}

} // namespace

int main(int argc, char **argv) {
  initHarness(argc, argv);
  std::printf("Figure 7: idempotent region sizes in clock cycles "
              "(between executed checkpoints)\n\n");
  const std::vector<Environment> Envs = {
      Environment::Ratchet, Environment::RPDG, Environment::WarioComplete};

  // Prewarm the matrix in one parallel sweep.
  std::vector<MatrixCell> Cells;
  for (const Workload &W : allWorkloads())
    for (Environment E : Envs)
      Cells.push_back(cell(W.Name, E));
  runMatrix(Cells);

  for (const Workload &W : allWorkloads()) {
    std::printf("%s\n", W.Name.c_str());
    printRow("  environment", {"median", "mean", "p75", "max"}, 24, 12);
    for (Environment E : Envs) {
      Summary S = summarize(cachedRun(W.Name, E)->Emu.RegionSizes);
      printRow("  " + std::string(environmentName(E)),
               {std::to_string(S.Median), fmt2(S.Mean),
                std::to_string(S.P75), std::to_string(S.Max)},
               24, 12);
    }
    // Required on-time for the largest region, as the paper reports
    // (45000 cycles -> 5.6 ms @ 8 MHz, 0.9 ms @ 50 MHz).
    Summary SW =
        summarize(cachedRun(W.Name, Environment::WarioComplete)
                      ->Emu.RegionSizes);
    std::printf("  WARio max region => min on-time %.2f ms @ 8 MHz, "
                "%.3f ms @ 50 MHz\n\n",
                double(SW.Max) / 8e3, double(SW.Max) / 50e3);
  }
  std::printf("expected shape: medians stay small while means/p75 grow "
              "some — WARio removes\ncheckpoints where regions are small "
              "(loop bodies, epilogs) and leaves the large\nregions "
              "alone, so required power-on time barely moves.\n");
  return 0;
}
