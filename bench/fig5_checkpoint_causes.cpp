//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates paper Figure 5: executed checkpoints by cause (middle-end
/// WAR, back-end WAR, function entry, function exit), per benchmark and
/// environment, relative to R-PDG = 100%. Ratchet is reported separately
/// (as in the paper, where its bars are off-scale).
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace wario;
using namespace wario::bench;

int main(int argc, char **argv) {
  initHarness(argc, argv);
  std::printf("Figure 5: executed checkpoints by cause, %% of R-PDG "
              "total (per benchmark)\n\n");

  std::vector<Environment> Envs = {
      Environment::RPDG,          Environment::EpilogOnly,
      Environment::WriteClustererOnly,
      Environment::LoopWriteClustererOnly,
      Environment::WarioComplete, Environment::WarioExpander,
  };

  // Prewarm the whole (workload, environment) matrix in parallel.
  std::vector<MatrixCell> Cells;
  for (const Workload &W : allWorkloads()) {
    for (Environment E : Envs)
      Cells.push_back(cell(W.Name, E));
    Cells.push_back(cell(W.Name, Environment::Ratchet));
  }
  runMatrix(Cells);

  for (const Workload &W : allWorkloads()) {
    double Base =
        double(cachedRun(W.Name, Environment::RPDG)->Emu.CheckpointsExecuted);
    std::printf("%s (R-PDG executes %.0f checkpoints = 100%%)\n",
                W.Name.c_str(), Base);
    printRow("  environment",
             {"middle-end", "back-end", "fn-entry", "fn-exit", "total"},
             24, 12);
    for (Environment E : Envs) {
      const CheckpointCauses &C = cachedRun(W.Name, E)->Emu.Causes;
      auto Pct = [&](uint64_t V) { return fmtPct(100.0 * double(V) / Base); };
      printRow("  " + std::string(environmentName(E)),
               {Pct(C.MiddleEndWar), Pct(C.BackendSpill),
                Pct(C.FunctionEntry), Pct(C.FunctionExit),
                Pct(C.total())},
               24, 12);
    }
    double Ratchet = double(
        cachedRun(W.Name, Environment::Ratchet)->Emu.CheckpointsExecuted);
    std::printf("  (Ratchet total: %s of R-PDG — off-scale, as in the "
                "paper)\n\n",
                fmtPct(100.0 * Ratchet / Base).c_str());
  }
  std::printf("expected shape: clustering slashes the middle-end slice "
              "(most for sha/aes),\nthe back-end slice grows in exchange, "
              "and the epilog optimizer removes fn-exit\ncheckpoints "
              "(most visible for crc).\n");
  return 0;
}
