//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates paper Table 2: modeled .text size increase of Ratchet,
/// WARio, and WARio+Expander over the uninstrumented C build.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace wario;
using namespace wario::bench;

int main(int argc, char **argv) {
  initHarness(argc, argv);
  std::printf("Table 2: code-size increase vs uninstrumented C "
              "(modeled Thumb-2 encoding)\n\n");
  printRow("benchmark",
           {"plain(B)", "Ratchet", "WARio(N=1)", "WARio", "WARio+Exp"},
           14, 12);

  // Prewarm the matrix in one parallel sweep. The N=1 WARio build is a
  // distinct cell: the unroll factor is part of the cache key.
  std::vector<MatrixCell> Cells;
  for (const Workload &W : allWorkloads()) {
    for (Environment E : {Environment::PlainC, Environment::Ratchet,
                          Environment::WarioComplete,
                          Environment::WarioExpander})
      Cells.push_back(cell(W.Name, E));
    Cells.push_back(cell(W.Name, Environment::WarioComplete, 1));
  }
  runMatrix(Cells);

  double SR = 0, SW1 = 0, SW = 0, SWE = 0;
  for (const Workload &W : allWorkloads()) {
    double P = double(cachedRun(W.Name, Environment::PlainC)->TextBytes);
    double R = double(cachedRun(W.Name, Environment::Ratchet)->TextBytes);
    double W1 = double(
        globalCache()
            .run(cell(W.Name, Environment::WarioComplete, 1))
            ->TextBytes);
    double Wa =
        double(cachedRun(W.Name, Environment::WarioComplete)->TextBytes);
    double We =
        double(cachedRun(W.Name, Environment::WarioExpander)->TextBytes);
    double DR = 100.0 * (R - P) / P;
    double DW1 = 100.0 * (W1 - P) / P;
    double DW = 100.0 * (Wa - P) / P;
    double DWE = 100.0 * (We - P) / P;
    SR += DR;
    SW1 += DW1;
    SW += DW;
    SWE += DWE;
    printRow(W.Name,
             {std::to_string(unsigned(P)), fmtPct(DR, true),
              fmtPct(DW1, true), fmtPct(DW, true), fmtPct(DWE, true)},
             14, 12);
  }
  unsigned N = unsigned(allWorkloads().size());
  std::printf("%s\n", std::string(14 + 12 * 5, '-').c_str());
  printRow("average",
           {"", fmtPct(SR / N, true), fmtPct(SW1 / N, true),
            fmtPct(SW / N, true), fmtPct(SWE / N, true)},
           14, 12);
  std::printf(
      "\n(paper averages: Ratchet +18.4%%, WARio +18.7%%, WARio+Expander "
      "+32.9%%.)\n"
      "The paper claim to check is WARio(N=1) vs Ratchet: removing "
      "checkpoints costs no\ncode — each checkpoint site is a single "
      "instruction. The full-WARio column is\ndominated by the N=8 "
      "unrolling itself, which looms large here because these\n"
      "benchmarks are tiny and loop-dominated (the paper's full MiBench "
      "builds amortize\nunrolled loops over much more straight-line "
      "code). See EXPERIMENTS.md.\n");
  return 0;
}
