//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates paper Table 1: difference in the total number of executed
/// checkpoints, WARio and WARio+Expander vs Ratchet.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace wario;
using namespace wario::bench;

int main(int argc, char **argv) {
  initHarness(argc, argv);
  std::printf("Table 1: executed checkpoints vs Ratchet\n\n");

  // WARIO_STRATEGIES=1 appends the checkpoint-strategy columns
  // (docs/STRATEGIES.md); default output is strategy-free.
  std::vector<CheckpointStrategy> Strats;
  if (strategiesEnabled())
    Strats = {CheckpointStrategy::Differential,
              CheckpointStrategy::Speculative};

  std::vector<std::string> Heads = {"WARio", "WARio+Expander"};
  for (CheckpointStrategy S : Strats)
    Heads.push_back(strategyColName(S));
  Heads.push_back("(paper WARio)");
  printRow("benchmark", Heads, 14, 16);

  // Paper's reported WARio column, for shape comparison.
  const std::map<std::string, const char *> Paper = {
      {"coremark", "-36.6%"}, {"sha", "-88.6%"},      {"crc", "-33.5%"},
      {"aes", "-74.5%"},      {"dijkstra", "-18.7%"}, {"picojpeg", "-33.6%"},
  };

  // Prewarm the matrix in one parallel sweep.
  std::vector<MatrixCell> Cells;
  for (const Workload &W : allWorkloads()) {
    for (Environment E : {Environment::Ratchet, Environment::WarioComplete,
                          Environment::WarioExpander})
      Cells.push_back(cell(W.Name, E));
    for (CheckpointStrategy S : Strats)
      Cells.push_back(strategyCell(W.Name, S));
  }
  runMatrix(Cells);

  double SumW = 0, SumWE = 0;
  std::map<CheckpointStrategy, double> SumS;
  for (const Workload &W : allWorkloads()) {
    double R = double(
        cachedRun(W.Name, Environment::Ratchet)->Emu.CheckpointsExecuted);
    double Wa = double(cachedRun(W.Name, Environment::WarioComplete)
                           ->Emu.CheckpointsExecuted);
    double We = double(cachedRun(W.Name, Environment::WarioExpander)
                           ->Emu.CheckpointsExecuted);
    double DW = 100.0 * (Wa - R) / R;
    double DWE = 100.0 * (We - R) / R;
    SumW += DW;
    SumWE += DWE;
    std::vector<std::string> Vals = {fmtPct(DW, true), fmtPct(DWE, true)};
    // Raw executed-checkpoint counts on stderr for bench recordings
    // (bench/emit_bench_json.sh); stdout stays the delta table.
    if (!Strats.empty())
      std::fprintf(stderr, "[table1-counts] %s ratchet=%.0f wario=%.0f",
                   W.Name.c_str(), R, Wa);
    for (CheckpointStrategy S : Strats) {
      double C = double(globalCache()
                            .run(strategyCell(W.Name, S))
                            ->Emu.CheckpointsExecuted);
      double DS = 100.0 * (C - R) / R;
      SumS[S] += DS;
      Vals.push_back(fmtPct(DS, true));
      std::fprintf(stderr, " %s=%.0f", strategyColName(S), C);
    }
    if (!Strats.empty())
      std::fprintf(stderr, "\n");
    Vals.push_back(Paper.at(W.Name));
    printRow(W.Name, Vals, 14, 16);
  }
  unsigned N = unsigned(allWorkloads().size());
  std::printf("%s\n",
              std::string(14 + 16 * (3 + Strats.size()), '-').c_str());
  std::vector<std::string> Avg = {fmtPct(SumW / N, true),
                                  fmtPct(SumWE / N, true)};
  for (CheckpointStrategy S : Strats)
    Avg.push_back(fmtPct(SumS[S] / N, true));
  Avg.push_back("-47.6%");
  printRow("average", Avg, 14, 16);
  return 0;
}
