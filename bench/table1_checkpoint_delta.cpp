//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates paper Table 1: difference in the total number of executed
/// checkpoints, WARio and WARio+Expander vs Ratchet.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace wario;
using namespace wario::bench;

int main(int argc, char **argv) {
  initHarness(argc, argv);
  std::printf("Table 1: executed checkpoints vs Ratchet\n\n");
  printRow("benchmark", {"WARio", "WARio+Expander", "(paper WARio)"}, 14,
           16);

  // Paper's reported WARio column, for shape comparison.
  const std::map<std::string, const char *> Paper = {
      {"coremark", "-36.6%"}, {"sha", "-88.6%"},      {"crc", "-33.5%"},
      {"aes", "-74.5%"},      {"dijkstra", "-18.7%"}, {"picojpeg", "-33.6%"},
  };

  // Prewarm the matrix in one parallel sweep.
  std::vector<MatrixCell> Cells;
  for (const Workload &W : allWorkloads())
    for (Environment E : {Environment::Ratchet, Environment::WarioComplete,
                          Environment::WarioExpander})
      Cells.push_back(cell(W.Name, E));
  runMatrix(Cells);

  double SumW = 0, SumWE = 0;
  for (const Workload &W : allWorkloads()) {
    double R = double(
        cachedRun(W.Name, Environment::Ratchet)->Emu.CheckpointsExecuted);
    double Wa = double(cachedRun(W.Name, Environment::WarioComplete)
                           ->Emu.CheckpointsExecuted);
    double We = double(cachedRun(W.Name, Environment::WarioExpander)
                           ->Emu.CheckpointsExecuted);
    double DW = 100.0 * (Wa - R) / R;
    double DWE = 100.0 * (We - R) / R;
    SumW += DW;
    SumWE += DWE;
    printRow(W.Name,
             {fmtPct(DW, true), fmtPct(DWE, true), Paper.at(W.Name)}, 14,
             16);
  }
  unsigned N = unsigned(allWorkloads().size());
  std::printf("%s\n", std::string(14 + 16 * 3, '-').c_str());
  printRow("average",
           {fmtPct(SumW / N, true), fmtPct(SumWE / N, true), "-47.6%"},
           14, 16);
  return 0;
}
