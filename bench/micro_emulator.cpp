//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks of the emulator hot path, built to
/// quantify the pre-decoded flat-dispatch rewrite (dense instruction
/// array, pre-resolved branch targets, epoch-stamped WAR tracking)
/// against pathological regressions. The headline counter is emulated
/// instructions per second; bench/emit_bench_json.sh snapshots it (and
/// the other counters) into a BENCH_*.json for the perf trajectory.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <benchmark/benchmark.h>

using namespace wario;
using namespace wario::bench;

namespace {

/// One compiled workload per emulator-bound benchmark, built once.
const MModule &compiledWorkload(const std::string &Name, Environment Env) {
  static std::map<std::pair<std::string, Environment>, MModule> Cache;
  auto Key = std::make_pair(Name, Env);
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;
  DiagnosticEngine Diags;
  auto M = buildWorkloadIR(getWorkload(Name), Diags);
  if (!M) {
    std::fprintf(stderr, "frontend failure on %s\n", Name.c_str());
    std::exit(1);
  }
  PipelineOptions PO;
  PO.Env = Env;
  return Cache.emplace(Key, compile(*M, PO)).first->second;
}

void runEmulatorBench(benchmark::State &State, const std::string &Name,
                      Environment Env, const EmulatorOptions &EO) {
  const MModule &MM = compiledWorkload(Name, Env);
  uint64_t Instructions = 0, Cycles = 0;
  for (auto _ : State) {
    EmulatorResult R = emulate(MM, EO);
    if (!R.Ok) {
      State.SkipWithError(R.Error.c_str());
      return;
    }
    Instructions += R.InstructionsExecuted;
    Cycles += R.TotalCycles;
    benchmark::DoNotOptimize(R.ReturnValue);
  }
  State.counters["insts/s"] = benchmark::Counter(
      double(Instructions), benchmark::Counter::kIsRate);
  State.counters["emu_cycles/s"] =
      benchmark::Counter(double(Cycles), benchmark::Counter::kIsRate);
}

EmulatorOptions continuousNoRegions() {
  EmulatorOptions EO;
  EO.CollectRegionSizes = false;
  return EO;
}

void BM_EmulatorContinuous_CRC(benchmark::State &State) {
  runEmulatorBench(State, "crc", Environment::WarioComplete,
                   continuousNoRegions());
}
BENCHMARK(BM_EmulatorContinuous_CRC);

void BM_EmulatorContinuous_SHA(benchmark::State &State) {
  runEmulatorBench(State, "sha", Environment::WarioComplete,
                   continuousNoRegions());
}
BENCHMARK(BM_EmulatorContinuous_SHA);

void BM_EmulatorContinuous_AES(benchmark::State &State) {
  runEmulatorBench(State, "aes", Environment::WarioComplete,
                   continuousNoRegions());
}
BENCHMARK(BM_EmulatorContinuous_AES);

/// PlainC has no checkpoints: the longest regions, so the WAR monitor's
/// first-access tracking dominates — the epoch-array's best case.
void BM_EmulatorPlainC_CRC(benchmark::State &State) {
  EmulatorOptions EO = continuousNoRegions();
  EO.WarIsFatal = false;
  runEmulatorBench(State, "crc", Environment::PlainC, EO);
}
BENCHMARK(BM_EmulatorPlainC_CRC);

/// Frequent power failures exercise reboot/restore and region resets.
void BM_EmulatorIntermittent_CRC(benchmark::State &State) {
  EmulatorOptions EO = continuousNoRegions();
  EO.Power = PowerSchedule::fixed(100'000);
  runEmulatorBench(State, "crc", Environment::WarioComplete, EO);
}
BENCHMARK(BM_EmulatorIntermittent_CRC);

/// Interrupts exercise checkpoint commit + exception stacking.
void BM_EmulatorInterrupts_CRC(benchmark::State &State) {
  EmulatorOptions EO = continuousNoRegions();
  EO.InterruptPeriod = 10'000;
  runEmulatorBench(State, "crc", Environment::WarioComplete, EO);
}
BENCHMARK(BM_EmulatorInterrupts_CRC);

} // namespace

BENCHMARK_MAIN();
