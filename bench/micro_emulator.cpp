//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks of the emulator hot path, built to
/// quantify the pre-decoded flat-dispatch rewrite (dense instruction
/// array, pre-resolved branch targets, epoch-stamped WAR tracking)
/// against pathological regressions. The headline counter is emulated
/// instructions per second; bench/emit_bench_json.sh snapshots it (and
/// the other counters) into a BENCH_*.json for the perf trajectory.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "emu/Snapshot.h"
#include "emu/ThreadedEngine.h"

#include <algorithm>
#include <benchmark/benchmark.h>

using namespace wario;
using namespace wario::bench;

namespace {

/// One compiled workload per emulator-bound benchmark, built once.
const MModule &compiledWorkload(const std::string &Name, Environment Env) {
  static std::map<std::pair<std::string, Environment>, MModule> Cache;
  auto Key = std::make_pair(Name, Env);
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;
  DiagnosticEngine Diags;
  auto M = buildWorkloadIR(getWorkload(Name), Diags);
  if (!M) {
    std::fprintf(stderr, "frontend failure on %s\n", Name.c_str());
    std::exit(1);
  }
  PipelineOptions PO;
  PO.Env = Env;
  return Cache.emplace(Key, compile(*M, PO)).first->second;
}

void runEmulatorBench(benchmark::State &State, const std::string &Name,
                      Environment Env, const EmulatorOptions &EO) {
  const MModule &MM = compiledWorkload(Name, Env);
  Emulator E(MM);
  uint64_t Instructions = 0, Cycles = 0;
  EngineStats St;
  EmulatorScratch Scratch;
  for (auto _ : State) {
    EmulatorResult R = E.run(EO, "main", &Scratch, &St);
    if (!R.Ok) {
      State.SkipWithError(R.Error.c_str());
      return;
    }
    Instructions += R.InstructionsExecuted;
    Cycles += R.TotalCycles;
    benchmark::DoNotOptimize(R.ReturnValue);
  }
  State.counters["insts/s"] = benchmark::Counter(
      double(Instructions), benchmark::Counter::kIsRate);
  State.counters["emu_cycles/s"] =
      benchmark::Counter(double(Cycles), benchmark::Counter::kIsRate);
  // Engine-dispatch economics (all zero under WARIO_ENGINE=interp):
  // how many dispatches the fused stream needed, what fraction were
  // superinstructions, and the share of instructions they covered.
  State.counters["dispatches/s"] =
      benchmark::Counter(double(St.Dispatches), benchmark::Counter::kIsRate);
  if (St.Dispatches) {
    State.counters["fused_dispatch_pct"] =
        100.0 * double(St.FusedDispatches) / double(St.Dispatches);
    State.counters["fusion_hit_pct"] =
        100.0 * double(St.FusedInstructions) /
        double(std::max<uint64_t>(St.ThreadedInstructions, 1));
  }
  // Hot-trace layer (all zero unless WARIO_ENGINE resolves to trace):
  // superblocks stitched, straight-line entries, guard exits, and
  // margin/event invalidations.
  if (St.TracesBuilt || St.SuperblockDispatches) {
    State.counters["traces_built"] = double(St.TracesBuilt);
    State.counters["sb_dispatches/s"] = benchmark::Counter(
        double(St.SuperblockDispatches), benchmark::Counter::kIsRate);
    State.counters["sb_side_exit_pct"] =
        100.0 * double(St.SideExits) /
        double(std::max<uint64_t>(St.SuperblockDispatches, 1));
    State.counters["sb_invalidations"] = double(St.Invalidations);
  }
}

EmulatorOptions continuousNoRegions() {
  EmulatorOptions EO;
  EO.CollectRegionSizes = false;
  return EO;
}

void BM_EmulatorContinuous_CRC(benchmark::State &State) {
  runEmulatorBench(State, "crc", Environment::WarioComplete,
                   continuousNoRegions());
}
BENCHMARK(BM_EmulatorContinuous_CRC);

void BM_EmulatorContinuous_SHA(benchmark::State &State) {
  runEmulatorBench(State, "sha", Environment::WarioComplete,
                   continuousNoRegions());
}
BENCHMARK(BM_EmulatorContinuous_SHA);

void BM_EmulatorContinuous_AES(benchmark::State &State) {
  runEmulatorBench(State, "aes", Environment::WarioComplete,
                   continuousNoRegions());
}
BENCHMARK(BM_EmulatorContinuous_AES);

/// Same-run engine matrix: each workload under an explicitly pinned
/// engine, so one benchmark invocation yields trace-vs-interp (and
/// threaded-vs-interp) ratios with machine noise common to both sides.
/// The Continuous rows above stay on EngineKind::Auto for trajectory
/// comparability with earlier BENCH_pr*.json snapshots.
void runEngineBench(benchmark::State &State, const std::string &Name,
                    EngineKind Engine) {
  EmulatorOptions EO = continuousNoRegions();
  EO.Engine = Engine;
  runEmulatorBench(State, Name, Environment::WarioComplete, EO);
}

#define WARIO_ENGINE_BENCH(W, NAME, KIND)                                      \
  void BM_Engine_##NAME##_##W(benchmark::State &State) {                       \
    runEngineBench(State, #W, EngineKind::KIND);                               \
  }                                                                            \
  BENCHMARK(BM_Engine_##NAME##_##W);
#define WARIO_ENGINE_BENCHES(W)                                                \
  WARIO_ENGINE_BENCH(W, Interp, Interp)                                        \
  WARIO_ENGINE_BENCH(W, Threaded, Threaded)                                    \
  WARIO_ENGINE_BENCH(W, Trace, Trace)
WARIO_ENGINE_BENCHES(crc)
WARIO_ENGINE_BENCHES(sha)
WARIO_ENGINE_BENCHES(aes)
#undef WARIO_ENGINE_BENCHES
#undef WARIO_ENGINE_BENCH

/// PlainC has no checkpoints: the longest regions, so the WAR monitor's
/// first-access tracking dominates — the epoch-array's best case.
void BM_EmulatorPlainC_CRC(benchmark::State &State) {
  EmulatorOptions EO = continuousNoRegions();
  EO.WarIsFatal = false;
  runEmulatorBench(State, "crc", Environment::PlainC, EO);
}
BENCHMARK(BM_EmulatorPlainC_CRC);

/// Frequent power failures exercise reboot/restore and region resets.
void BM_EmulatorIntermittent_CRC(benchmark::State &State) {
  EmulatorOptions EO = continuousNoRegions();
  EO.Power = PowerSchedule::fixed(100'000);
  runEmulatorBench(State, "crc", Environment::WarioComplete, EO);
}
BENCHMARK(BM_EmulatorIntermittent_CRC);

/// Interrupts exercise checkpoint commit + exception stacking.
void BM_EmulatorInterrupts_CRC(benchmark::State &State) {
  EmulatorOptions EO = continuousNoRegions();
  EO.InterruptPeriod = 10'000;
  runEmulatorBench(State, "crc", Environment::WarioComplete, EO);
}
BENCHMARK(BM_EmulatorInterrupts_CRC);

/// Snapshot-recording overhead: a golden run that journals the full
/// snapshot chain, measured against BM_EmulatorContinuous_CRC. The
/// chain is rebuilt every iteration; snapshot_bytes reports its size.
void BM_SnapshotRecord_CRC(benchmark::State &State) {
  const MModule &MM = compiledWorkload("crc", Environment::WarioComplete);
  Emulator E(MM);
  EmulatorOptions EO = continuousNoRegions();
  uint64_t Instructions = 0;
  size_t ChainBytes = 0, ChainSnaps = 0;
  for (auto _ : State) {
    SnapshotChain Chain;
    EmulatorResult R = E.record(EO, SnapshotSchedule{}, Chain);
    if (!R.Ok || !Chain.valid()) {
      State.SkipWithError("record failed");
      return;
    }
    Instructions += R.InstructionsExecuted;
    ChainBytes = Chain.bytes();
    ChainSnaps = Chain.size();
    benchmark::DoNotOptimize(R.ReturnValue);
  }
  State.counters["insts/s"] = benchmark::Counter(
      double(Instructions), benchmark::Counter::kIsRate);
  State.counters["snapshot_bytes"] = double(ChainBytes);
  State.counters["snapshots"] = double(ChainSnaps);
}
BENCHMARK(BM_SnapshotRecord_CRC);

/// Resume-vs-cold at a late crash point: the fault-injector inner loop.
/// Record once outside timing, then replay a run that crashes at 90% of
/// the golden run; with \p Warm the replay resumes from the governing
/// snapshot (and tail-splices), without it the same work runs cold.
void runLateCrashBench(benchmark::State &State, bool Warm) {
  const MModule &MM = compiledWorkload("crc", Environment::WarioComplete);
  Emulator E(MM);
  EmulatorOptions Base = continuousNoRegions();
  SnapshotChain Chain;
  EmulatorResult Golden = E.record(Base, SnapshotSchedule{}, Chain);
  if (!Golden.Ok || !Chain.valid()) {
    State.SkipWithError("golden record failed");
    return;
  }
  EmulatorOptions EO = Base;
  EO.Power =
      PowerSchedule::trace({Golden.TotalCycles * 9 / 10, UINT64_MAX}, "late");
  ReplayPlan Plan;
  Plan.Chain = Warm ? &Chain : nullptr;
  Plan.AllowTailSplice = true;
  Plan.OmitFinalMemoryOnSplice = true;
  EmulatorScratch Scratch;
  uint64_t Instructions = 0;
  for (auto _ : State) {
    EmulatorResult R = E.replay(EO, Plan, "main", &Scratch);
    if (!R.Ok) {
      State.SkipWithError(R.Error.c_str());
      return;
    }
    Instructions += R.InstructionsExecuted;
    benchmark::DoNotOptimize(R.ReturnValue);
  }
  State.counters["insts/s"] = benchmark::Counter(
      double(Instructions), benchmark::Counter::kIsRate);
}

void BM_LateCrashCold_CRC(benchmark::State &State) {
  runLateCrashBench(State, /*Warm=*/false);
}
BENCHMARK(BM_LateCrashCold_CRC);

void BM_LateCrashResumed_CRC(benchmark::State &State) {
  runLateCrashBench(State, /*Warm=*/true);
}
BENCHMARK(BM_LateCrashResumed_CRC);

} // namespace

// Hand-rolled main instead of BENCHMARK_MAIN(): stamps this tree's
// build type into the JSON context. google-benchmark's own
// library_build_type field describes how *libbenchmark* was built, not
// this binary, and emit_bench_json.sh keys its debug-recording guard on
// the wario_build_type field added here.
int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::AddCustomContext("wario_build_type", WARIO_BUILD_TYPE);
#ifdef NDEBUG
  benchmark::AddCustomContext("wario_assertions", "off");
#else
  benchmark::AddCustomContext("wario_assertions", "on");
#endif
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
