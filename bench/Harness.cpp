#include "Harness.h"

#include "support/ThreadPool.h"

#include <condition_variable>
#include <cstdlib>

using namespace wario;
using namespace wario::bench;

MatrixCell wario::bench::cell(const std::string &Workload, Environment Env,
                              unsigned UnrollFactor) {
  MatrixCell C;
  C.Workload = Workload;
  C.PO.Env = Env;
  C.PO.UnrollFactor = UnrollFactor;
  return C;
}

RunResult wario::bench::runOne(const Workload &W, const MatrixCell &Cell) {
  DiagnosticEngine Diags;
  std::unique_ptr<Module> M = buildWorkloadIR(W, Diags);
  if (!M) {
    std::fprintf(stderr, "frontend failure on %s:\n%s\n", W.Name.c_str(),
                 Diags.formatAll().c_str());
    std::exit(1);
  }
  RunResult R;
  MModule MM = compile(*M, Cell.PO, &R.Pipeline);
  R.TextBytes = MM.textSizeBytes();

  EmulatorOptions EO = Cell.EO;
  if (Cell.PO.Env == Environment::PlainC)
    EO.WarIsFatal = false;
  R.Emu = emulate(MM, EO);
  if (!R.Emu.Ok) {
    std::fprintf(stderr, "emulation failure on %s @ %s: %s\n",
                 W.Name.c_str(), environmentName(Cell.PO.Env),
                 R.Emu.Error.c_str());
    std::exit(1);
  }
  if (Cell.PO.Env != Environment::PlainC && R.Emu.WarViolations != 0) {
    std::fprintf(stderr, "WAR violations on %s @ %s\n", W.Name.c_str(),
                 environmentName(Cell.PO.Env));
    std::exit(1);
  }
  return R;
}

RunResult wario::bench::runOne(const Workload &W, Environment Env,
                               const EmulatorOptions &EOpts,
                               unsigned UnrollFactor) {
  MatrixCell C = cell(W.Name, Env, UnrollFactor);
  C.EO = EOpts;
  return runOne(W, C);
}

/// A cache slot: filled exactly once by the thread that claimed it;
/// other threads (and later runMatrix calls) block on Ready.
struct ResultCache::Entry {
  std::mutex M;
  std::condition_variable CV;
  bool Ready = false;
  RunResult R;

  void publish(RunResult Result) {
    {
      std::lock_guard<std::mutex> Lock(M);
      R = std::move(Result);
      Ready = true;
    }
    CV.notify_all();
  }
  const RunResult &get() {
    std::unique_lock<std::mutex> Lock(M);
    CV.wait(Lock, [this] { return Ready; });
    return R;
  }
};

// Out of line: Entry must be complete where the map is destroyed.
ResultCache::ResultCache() = default;
ResultCache::~ResultCache() = default;

std::vector<const RunResult *>
ResultCache::runMatrix(const std::vector<MatrixCell> &Cells) {
  // Claim phase: one Entry per unique key; remember which cells this
  // call must compute itself.
  struct Claimed {
    Entry *E;
    const MatrixCell *Cell;
  };
  std::vector<Entry *> Slots(Cells.size());
  std::vector<Claimed> Mine;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (size_t I = 0; I != Cells.size(); ++I) {
      const MatrixCell &C = Cells[I];
      Key K{C.Workload, C.PO.Env, C.PO.UnrollFactor, C.Tag};
      auto [It, Inserted] = Map.try_emplace(std::move(K));
      if (Inserted) {
        It->second = std::make_unique<Entry>();
        Mine.push_back({It->second.get(), &C});
      }
      Slots[I] = It->second.get();
    }
  }

  // Sweep phase: every claimed cell is an independent compile+emulate,
  // so a flat parallelFor balances them; runOne touches no shared state.
  parallelFor(Mine.size(), [&](size_t I) {
    const MatrixCell &C = *Mine[I].Cell;
    Mine[I].E->publish(runOne(getWorkload(C.Workload), C));
  });

  std::vector<const RunResult *> Out(Cells.size());
  for (size_t I = 0; I != Cells.size(); ++I)
    Out[I] = &Slots[I]->get();
  return Out;
}

const RunResult &ResultCache::run(const MatrixCell &Cell) {
  return *runMatrix({Cell}).front();
}

ResultCache &wario::bench::globalCache() {
  static ResultCache Cache;
  return Cache;
}

std::vector<const RunResult *>
wario::bench::runMatrix(const std::vector<MatrixCell> &Cells) {
  return globalCache().runMatrix(Cells);
}

const RunResult &wario::bench::cachedRun(const std::string &Name,
                                         Environment Env) {
  return globalCache().run(cell(Name, Env));
}

MModule wario::bench::compileOnly(const Workload &W, Environment Env,
                                  PipelineStats *Stats,
                                  unsigned UnrollFactor) {
  DiagnosticEngine Diags;
  std::unique_ptr<Module> M = buildWorkloadIR(W, Diags);
  if (!M) {
    std::fprintf(stderr, "frontend failure on %s:\n%s\n", W.Name.c_str(),
                 Diags.formatAll().c_str());
    std::exit(1);
  }
  PipelineOptions PO;
  PO.Env = Env;
  PO.UnrollFactor = UnrollFactor;
  return compile(*M, PO, Stats);
}

void wario::bench::printRow(const std::string &Head,
                            const std::vector<std::string> &Vals,
                            int Width0, int Width) {
  std::printf("%-*s", Width0, Head.c_str());
  for (const std::string &V : Vals)
    std::printf("%*s", Width, V.c_str());
  std::printf("\n");
}

std::string wario::bench::fmt2(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2f", V);
  return Buf;
}

std::string wario::bench::fmtPct(double V, bool ForceSign) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), ForceSign ? "%+.1f%%" : "%.1f%%", V);
  return Buf;
}

const char *wario::bench::shortEnvName(Environment E) {
  switch (E) {
  case Environment::PlainC: return "plain-c";
  case Environment::Ratchet: return "ratchet";
  case Environment::RPDG: return "r-pdg";
  case Environment::EpilogOnly: return "epilog-opt";
  case Environment::WriteClustererOnly: return "write-cl";
  case Environment::LoopWriteClustererOnly: return "loop-cl";
  case Environment::WarioComplete: return "wario";
  case Environment::WarioExpander: return "wario+exp";
  }
  return "?";
}
